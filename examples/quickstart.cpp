// Quickstart: build two sparse matrices and a mask, multiply under the mask,
// and inspect the result.
//
//   c = m .* (a · b)      — only positions present in `m` are computed.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/masked_spgemm.hpp"
#include "core/plan.hpp"
#include "matrix/build.hpp"
#include "semiring/semirings.hpp"

int main() {
  using IT = int32_t;
  using VT = double;

  // A 4x4 example straight out of the paper's Fig. 1: the mask admits only a
  // few positions of the product; everything else is never computed.
  auto a = msx::csr_from_dense<IT, VT>({
      {1, 0, 2, 0},
      {0, 3, 0, 0},
      {4, 0, 0, 5},
      {0, 6, 7, 0},
  });
  auto b = msx::csr_from_dense<IT, VT>({
      {0, 1, 0, 2},
      {3, 0, 0, 0},
      {0, 4, 5, 0},
      {6, 0, 0, 7},
  });
  auto mask = msx::csr_from_dense<IT, VT>({
      {1, 1, 0, 0},
      {0, 0, 0, 1},
      {1, 0, 0, 1},
      {0, 1, 1, 0},
  });

  // Default options: Auto algorithm selection, one-phase construction.
  auto c = msx::masked_spgemm<msx::PlusTimes<VT>>(a, b, mask);

  std::printf("C = mask .* (A*B):\n");
  for (IT i = 0; i < c.nrows(); ++i) {
    const auto row = c.row(i);
    std::printf("  row %d:", i);
    for (IT p = 0; p < row.size(); ++p) {
      std::printf("  (col %d) = %g", row.cols[p], row.vals[p]);
    }
    std::printf("\n");
  }

  // Pick a specific algorithm and the complemented mask: compute exactly the
  // product entries the mask does NOT admit.
  msx::MaskedOptions opts;
  opts.algo = msx::MaskedAlgo::kMSA;
  opts.kind = msx::MaskKind::kComplement;
  auto not_c = msx::masked_spgemm<msx::PlusTimes<VT>>(a, b, mask, opts);
  std::printf("\n¬mask .* (A*B) has %zu entries (disjoint from C's %zu).\n",
              not_c.nnz(), c.nnz());

  // Every algorithm family gives the same answer; pick by density regime
  // (see DESIGN.md / Fig. 7): MSA/Hash for comparable densities, Inner for
  // sparse masks, Heap for sparse inputs, MCA as the compact novel scheme.
  for (auto algo : {msx::MaskedAlgo::kHash, msx::MaskedAlgo::kMCA,
                    msx::MaskedAlgo::kHeap, msx::MaskedAlgo::kInner}) {
    msx::MaskedOptions o;
    o.algo = algo;
    auto c2 = msx::masked_spgemm<msx::PlusTimes<VT>>(a, b, mask, o);
    std::printf("%-8s -> nnz=%zu %s\n", msx::to_string(algo), c2.nnz(),
                c2 == c ? "(identical)" : "(MISMATCH!)");
  }

  // Calling the same product repeatedly? Plan it once: the plan resolves
  // Auto, caches B's CSC copy for the pull-based families and keeps the
  // per-thread accumulators warm, so execute() pays no per-call setup.
  auto plan = msx::masked_plan<msx::PlusTimes<VT>>(a, b, mask);
  auto c3 = plan.execute();
  std::printf("\nplan (resolved to %s) -> nnz=%zu %s\n",
              msx::to_string(plan.algo()), c3.nnz(),
              c3 == c ? "(identical)" : "(MISMATCH!)");

  // Iterations that change numerics but not sparsity refresh values in
  // place — the structure caches (CSC pattern, symbolic rowptr) survive.
  std::vector<VT> scaled(b.values().begin(), b.values().end());
  for (auto& v : scaled) v *= 10.0;
  auto c4 = plan.execute_values({}, scaled);
  std::printf("execute_values(B*10) -> first row value %g (was %g)\n",
              c4.nnz() ? c4.values()[0] : 0.0,
              c3.nnz() ? c3.values()[0] : 0.0);
  return 0;
}
