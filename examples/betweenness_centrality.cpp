// Batched betweenness centrality (paper §8.4): forward sweep with a
// complemented mask, backward dependency sweep with a regular mask.
//
// Usage:
//   ./betweenness_centrality                       # R-MAT scale 11, batch 16
//   ./betweenness_centrality --batch 64 --algo hash
//   ./betweenness_centrality --mtx graph.mtx
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "apps/bc.hpp"
#include "common/cli.hpp"
#include "gen/rmat.hpp"
#include "matrix/mm_io.hpp"
#include "matrix/ops.hpp"

using IT = int32_t;
using VT = double;

int main(int argc, char** argv) {
  msx::ArgParser args(argc, argv);
  const int batch = static_cast<int>(args.get_int("batch", 16));
  const std::string mtx = args.get_string("mtx", "");
  const int scale = static_cast<int>(args.get_int("rmat-scale", 11));

  msx::CSRMatrix<IT, VT> graph;
  if (!mtx.empty()) {
    auto raw = msx::read_matrix_market_file<IT, VT>(mtx);
    graph = msx::symmetrize_pattern(msx::remove_diagonal(raw));
  } else {
    graph = msx::rmat<IT, VT>(scale, 3);
  }
  std::printf("graph: %d vertices, %zu directed edges; batch = %d sources\n",
              graph.nrows(), graph.nnz(), batch);

  std::vector<IT> sources;
  for (int q = 0; q < batch; ++q) {
    sources.push_back(static_cast<IT>((q * 7919 + 13) % graph.nrows()));
  }

  msx::MaskedOptions opts;
  opts.algo = msx::algo_from_string(args.get_string("algo", "msa"));

  const auto result = msx::betweenness_centrality(graph, sources, opts);
  std::printf("\nBFS depth reached : %d\n", result.depth);
  std::printf("forward sweep     : %.4f s (complemented Masked SpGEMM)\n",
              result.seconds_forward);
  std::printf("backward sweep    : %.4f s (masked SpGEMM)\n",
              result.seconds_backward);
  std::printf("MTEPS             : %.2f\n",
              result.mteps(graph.nnz() / 2, sources.size()));

  // Top-5 most central vertices under this source batch.
  std::vector<IT> order(static_cast<std::size_t>(graph.nrows()));
  std::iota(order.begin(), order.end(), IT{0});
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](IT x, IT y) {
                      return result.centrality[static_cast<std::size_t>(x)] >
                             result.centrality[static_cast<std::size_t>(y)];
                    });
  std::printf("\ntop-5 central vertices:\n");
  for (int r = 0; r < 5; ++r) {
    const IT v = order[static_cast<std::size_t>(r)];
    std::printf("  #%d vertex %d  (score %.2f)\n", r + 1, v,
                result.centrality[static_cast<std::size_t>(v)]);
  }
  return 0;
}
