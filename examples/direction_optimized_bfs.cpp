// Direction-optimized BFS — the primitive that motivated masked products
// (paper §4): per-level switching between push (frontier-driven masked
// SpGEVM, MSA accumulator) and pull (unvisited-driven dot products, Inner).
//
// Usage:
//   ./direction_optimized_bfs                        # R-MAT scale 13
//   ./direction_optimized_bfs --rmat-scale 15 --alpha 8
#include <cstdio>

#include "apps/dobfs.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "gen/rmat.hpp"

using IT = int32_t;
using VT = double;

int main(int argc, char** argv) {
  msx::ArgParser args(argc, argv);
  const int scale = static_cast<int>(args.get_int("rmat-scale", 13));
  const double alpha = args.get_double("alpha", 4.0);
  IT source = static_cast<IT>(args.get_int("source", -1));

  auto graph = msx::rmat<IT, VT>(scale, 99);
  if (source < 0 || graph.row_nnz(source) == 0) {
    // Default / isolated source: use the max-degree vertex so the traversal
    // actually explores the giant component.
    source = 0;
    for (IT v = 1; v < graph.nrows(); ++v) {
      if (graph.row_nnz(v) > graph.row_nnz(source)) source = v;
    }
  }
  std::printf("graph: %d vertices, %zu directed edges; source %d (deg %d)\n",
              graph.nrows(), graph.nnz(), source, graph.row_nnz(source));

  struct Run {
    const char* name;
    msx::BFSDirection dir;
  };
  const Run runs[] = {
      {"push-only (MSA SpGEVM)", msx::BFSDirection::kPushOnly},
      {"pull-only (Inner SpGEVM)", msx::BFSDirection::kPullOnly},
      {"adaptive (Beamer switch)", msx::BFSDirection::kAdaptive},
  };
  std::vector<std::int32_t> reference_levels;
  for (const auto& run : runs) {
    msx::WallTimer t;
    const auto r = msx::direction_optimized_bfs(graph, source, run.dir, alpha);
    const double s = t.seconds();
    std::size_t reached = 0;
    for (auto l : r.levels) reached += (l >= 0);
    std::printf("%-26s %.4fs  depth=%d  reached=%zu  push=%d pull=%d\n",
                run.name, s, r.depth, reached, r.push_levels, r.pull_levels);
    if (reference_levels.empty()) {
      reference_levels = r.levels;
    } else if (reference_levels != r.levels) {
      std::printf("  ERROR: levels differ from push-only reference!\n");
      return 1;
    }
  }
  std::printf("\nall three traversals produced identical levels.\n");
  return 0;
}
