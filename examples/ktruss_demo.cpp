// k-truss decomposition demo (paper §8.3): iterated masked SpGEMM with
// pruning until a fixed point.
//
// Usage:
//   ./ktruss_demo                       # R-MAT scale 11, k = 5
//   ./ktruss_demo --k 7 --rmat-scale 13
//   ./ktruss_demo --mtx graph.mtx --algo inner
#include <cstdio>

#include "apps/ktruss.hpp"
#include "common/cli.hpp"
#include "core/flops.hpp"
#include "gen/rmat.hpp"
#include "matrix/mm_io.hpp"
#include "matrix/ops.hpp"

using IT = int32_t;
using VT = double;

int main(int argc, char** argv) {
  msx::ArgParser args(argc, argv);
  const int k = static_cast<int>(args.get_int("k", 5));
  const std::string mtx = args.get_string("mtx", "");
  const int scale = static_cast<int>(args.get_int("rmat-scale", 11));

  msx::CSRMatrix<IT, VT> graph;
  if (!mtx.empty()) {
    auto raw = msx::read_matrix_market_file<IT, VT>(mtx);
    graph = msx::symmetrize_pattern(msx::remove_diagonal(raw));
  } else {
    graph = msx::rmat<IT, VT>(scale, 7);
  }
  std::printf("graph: %d vertices, %zu directed edges; k = %d\n",
              graph.nrows(), graph.nnz(), k);

  msx::MaskedOptions opts;
  opts.algo = msx::algo_from_string(args.get_string("algo", "auto"));

  // ktruss plans the masked product once outside its pruning loop (the
  // plan resolves `auto` against the full graph, then every iteration
  // rebinds the shrinking edge set and reuses the warm accumulators).
  const auto result = msx::ktruss(graph, k, opts);
  std::printf("\n%d-truss found after %d pruning iterations\n", k,
              result.iterations);
  std::printf("algorithm       : %s (resolved once by the plan)\n",
              msx::to_string(result.algo));
  std::printf("edges kept      : %zu of %zu (%.1f%%)\n",
              result.remaining_edges, graph.nnz(),
              graph.nnz() ? 100.0 * static_cast<double>(result.remaining_edges) /
                                static_cast<double>(graph.nnz())
                          : 0.0);
  std::printf("spgemm time     : %.4f s over %zu multiplies (%.3f GFLOPS)\n",
              result.seconds_spgemm, result.multiplies,
              msx::gflops(result.multiplies, result.seconds_spgemm));

  // Degree histogram of the truss core (top five degrees).
  if (result.remaining_edges > 0) {
    IT max_deg = 0;
    for (IT i = 0; i < result.truss.nrows(); ++i) {
      max_deg = std::max(max_deg, result.truss.row_nnz(i));
    }
    std::printf("max degree inside the truss core: %d\n", max_deg);
  }
  return 0;
}
