// Triangle counting on a generated or user-supplied graph (paper §8.2).
//
// Usage:
//   ./triangle_counting                      # R-MAT scale 12 demo
//   ./triangle_counting --rmat-scale 14
//   ./triangle_counting --mtx path/to/graph.mtx
//   ./triangle_counting --algo hash          # msa|hash|mca|heap|heapdot|inner
//   ./triangle_counting --schedule flopbalanced --cost-model flops
//                                            # static|dynamic|guided|flopbalanced
#include <cstdio>

#include "apps/tricount.hpp"
#include "common/cli.hpp"
#include "core/flops.hpp"
#include "gen/rmat.hpp"
#include "matrix/mm_io.hpp"
#include "matrix/ops.hpp"

using IT = int32_t;
using VT = double;

int main(int argc, char** argv) {
  msx::ArgParser args(argc, argv);
  const std::string mtx = args.get_string("mtx", "");
  const int scale = static_cast<int>(args.get_int("rmat-scale", 12));

  msx::CSRMatrix<IT, VT> graph;
  if (!mtx.empty()) {
    std::printf("loading %s ...\n", mtx.c_str());
    auto raw = msx::read_matrix_market_file<IT, VT>(mtx);
    graph = msx::symmetrize_pattern(msx::remove_diagonal(raw));
  } else {
    std::printf("generating R-MAT scale %d (Graph500 parameters) ...\n",
                scale);
    graph = msx::rmat<IT, VT>(scale, 42);
  }
  std::printf("graph: %d vertices, %zu directed edges\n", graph.nrows(),
              graph.nnz());

  msx::MaskedOptions opts;
  opts.algo = msx::algo_from_string(args.get_string("algo", "auto"));
  opts.phases = args.get_bool("two-phase", false)
                    ? msx::PhaseMode::kTwoPhase
                    : msx::PhaseMode::kOnePhase;
  // The "auto" default resolves to the flop-balanced partition; any
  // explicit schedule is honoured as-is.
  opts.schedule =
      msx::schedule_from_string(args.get_string("schedule", "auto"));
  opts.cost_model =
      msx::cost_model_from_string(args.get_string("cost-model", "auto"));

  const auto result = msx::triangle_count(graph, opts);
  std::printf("\ntriangles          : %llu\n",
              static_cast<unsigned long long>(result.triangles));
  std::printf("masked SpGEMM time : %.4f s\n", result.seconds_spgemm);
  std::printf("total time         : %.4f s (relabel + extract + reduce)\n",
              result.seconds_total);
  std::printf("multiplies         : %zu (%.3f GFLOPS)\n", result.multiplies,
              msx::gflops(result.multiplies, result.seconds_spgemm));
  return 0;
}
