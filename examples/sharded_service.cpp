// sharded_service — a router fronting a fleet of masked-SpGEMM shards
// (ISSUE 4 tentpole demo).
//
// Spins up N shard instances (each a ServiceShard: wire server loop over a
// BatchExecutor + structure-keyed PlanCache), fronts them with a ShardRouter
// that consistent-hashes the PlanCache's structure fingerprint, and serves a
// mixed request stream:
//
//   * every request's result is verified bit-identical to a direct
//     masked_spgemm call;
//   * fingerprint affinity keeps each structure on one shard, so the warm
//     hit rate stays high (first sight of a structure is the only miss);
//   * killing a shard mid-stream (--kill) demonstrates failover: its keys
//     rehash to the next shard on the ring, everyone else keeps their home.
//
// Transports: loopback shard instances by default (one process, zero
// setup); --unix PATHPREFIX serves each shard on a Unix socket instead, so
// routers in other processes can connect to the same fleet.
//
// Usage:
//   ./sharded_service                         # 4 shards, 96 requests
//   ./sharded_service --shards 8 --requests 256 --kill 1
//   ./sharded_service --unix /tmp/msx-shard   # sockets at /tmp/msx-shard.N
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/masked_spgemm.hpp"
#include "gen/erdos_renyi.hpp"
#include "service/router.hpp"
#include "service/shard.hpp"

using IT = int32_t;
using VT = double;
using SR = msx::PlusTimes<VT>;
using Mat = msx::CSRMatrix<IT, VT>;
using Shard = msx::service::ServiceShard<SR, IT, VT>;
using Router = msx::service::ShardRouter<SR, IT, VT>;

int main(int argc, char** argv) {
  msx::ArgParser args(argc, argv);
  const int nshards = static_cast<int>(args.get_int("shards", 4));
  const int nrequests = static_cast<int>(args.get_int("requests", 96));
  const int ncatalog = static_cast<int>(args.get_int("catalog", 8));
  const int kill = static_cast<int>(args.get_int("kill", -1));
  const std::string unix_prefix = args.get_string("unix", "");

  // --- fleet ---
  msx::service::ShardConfig cfg;
  cfg.limits.max_pending_jobs = 256;  // bounded queue: overload degrades
  cfg.limits.admission = msx::AdmissionPolicy::kReject;  // ... to kOverloaded
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<msx::service::ShardEndpoint> endpoints;
  for (int i = 0; i < nshards; ++i) {
    shards.push_back(std::make_unique<Shard>(cfg));
    if (unix_prefix.empty()) {
      auto listener = std::make_unique<msx::service::LoopbackListener>();
      auto* raw = listener.get();
      shards.back()->serve(std::move(listener));
      endpoints.push_back({"shard-" + std::to_string(i),
                           [raw] { return raw->connect(); }});
    } else {
      const std::string path = unix_prefix + "." + std::to_string(i);
      shards.back()->serve(msx::service::listen_unix(path));
      endpoints.push_back({path, [path] {
                             return msx::service::connect_unix(path);
                           }});
    }
  }
  Router router(endpoints);
  std::printf("sharded_service: %d shards (%s transport), %d requests over "
              "%d structures\n",
              nshards, unix_prefix.empty() ? "loopback" : "unix-socket",
              nrequests, ncatalog);

  // --- catalog of recurring request structures ---
  struct Entry {
    Mat a, b, m;
  };
  std::vector<Entry> catalog;
  for (int k = 0; k < ncatalog; ++k) {
    const IT rows = 140 + 28 * static_cast<IT>(k);
    catalog.push_back({
        msx::erdos_renyi<IT, VT>(rows, rows, 6, 500 + k),
        msx::erdos_renyi<IT, VT>(rows, rows, 6, 600 + k),
        msx::erdos_renyi<IT, VT>(rows, rows, 8, 700 + k),
    });
  }
  std::printf("\naffinity map (structure -> shard):");
  for (int k = 0; k < ncatalog; ++k) {
    std::printf(" %d->%d", k,
                router.route(catalog[static_cast<std::size_t>(k)].a,
                             catalog[static_cast<std::size_t>(k)].b,
                             catalog[static_cast<std::size_t>(k)].m));
  }
  std::printf("\n");

  // --- mixed stream, verified bit-identical ---
  msx::WallTimer timer;
  int mismatches = 0;
  for (int r = 0; r < nrequests; ++r) {
    auto& e = catalog[static_cast<std::size_t>((r * 5 + 1) % ncatalog)];
    // Fresh numerics each request (structure — and so affinity — is stable).
    auto vals = e.a.mutable_values();
    for (std::size_t p = 0; p < vals.size(); ++p) {
      vals[p] = 1.0 + static_cast<double>((p + static_cast<std::size_t>(r)) % 9);
    }
    if (kill >= 0 && kill < nshards && r == nrequests / 2) {
      std::printf("killing shard %d mid-stream (failover rehash)\n", kill);
      shards[static_cast<std::size_t>(kill)]->stop();
      router.mark_down(static_cast<std::size_t>(kill));
    }
    const auto want = msx::masked_spgemm<SR>(e.a, e.b, e.m);
    const auto got = router.request(e.a, e.b, e.m);
    if (!(got == want)) ++mismatches;
  }
  const double seconds = timer.seconds();

  // --- report ---
  const auto rs = router.stats();
  std::printf("\n%-10s %10s %10s %10s %10s\n", "shard", "requests", "warm%",
              "jobs", "cacheMB");
  for (int i = 0; i < nshards; ++i) {
    if (kill >= 0 && i == kill) {
      std::printf("%-10s %10llu %10s %10s %10s   (killed)\n",
                  ("shard-" + std::to_string(i)).c_str(),
                  static_cast<unsigned long long>(
                      rs.routed[static_cast<std::size_t>(i)]),
                  "-", "-", "-");
      continue;
    }
    const auto st = router.shard_stats(static_cast<std::size_t>(i));
    std::printf("%-10s %10llu %10.0f %10llu %10.2f\n",
                ("shard-" + std::to_string(i)).c_str(),
                static_cast<unsigned long long>(
                    rs.routed[static_cast<std::size_t>(i)]),
                100.0 * st.warm_hit_rate(),
                static_cast<unsigned long long>(st.jobs_completed),
                static_cast<double>(st.cache_bytes) / (1024.0 * 1024.0));
  }
  std::printf("\n%d requests in %.3fs (%.1f requests/s), %d mismatches, "
              "%llu failovers, %llu overload reroutes\n",
              nrequests, seconds, nrequests / seconds, mismatches,
              static_cast<unsigned long long>(rs.failovers),
              static_cast<unsigned long long>(rs.overload_reroutes));
  if (mismatches != 0) {
    std::printf("FAILED: service results diverged from direct calls\n");
    return 1;
  }
  std::printf("every service result was bit-identical to the direct "
              "masked_spgemm call\n");
  return 0;
}
