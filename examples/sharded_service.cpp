// sharded_service — a pipelined MaskedClient fronting a fleet of
// masked-SpGEMM shards (ISSUE 4 service layer, ISSUE 5 client API).
//
// Spins up N shard instances (each a ServiceShard: wire server loop over a
// BatchExecutor + structure-keyed PlanCache), fronts them with a
// MaskedClient session over the ShardedBackend, and serves a mixed request
// stream:
//
//   * each catalog structure is REGISTERED once per shard connection — the
//     stationary operands cross the wire once, then every submit ships only
//     the refreshed A;
//   * submits are pipelined (bounded in-flight depth) over one connection
//     per shard, completions matched by request id;
//   * every result is verified bit-identical to a direct masked_spgemm call;
//   * killing a shard mid-stream (--kill) demonstrates failover: its
//     in-flight requests re-submit to the next shard on the ring (where the
//     structures re-register lazily) — nothing lost, nothing duplicated.
//
// Transports: loopback shard instances by default (one process, zero
// setup); --unix PATHPREFIX serves each shard on a Unix socket instead, so
// clients in other processes can connect to the same fleet.
//
// Usage:
//   ./sharded_service                         # 4 shards, 96 requests
//   ./sharded_service --shards 8 --requests 256 --kill 1
//   ./sharded_service --unix /tmp/msx-shard   # sockets at /tmp/msx-shard.N
//   ./sharded_service --trace out.json        # + one traced 2D product:
//       a forced 2-shard 2D panel product is run with request tracing on and
//       the merged client + shard + executor span timeline is written as
//       Chrome trace-event JSON (load in Perfetto / chrome://tracing)
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "client/client.hpp"
#include "client/sharded_backend.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/masked_spgemm.hpp"
#include "gen/erdos_renyi.hpp"
#include "obs/trace.hpp"
#include "service/shard.hpp"

using IT = int32_t;
using VT = double;
using SR = msx::PlusTimes<VT>;
using Mat = msx::CSRMatrix<IT, VT>;
using Shard = msx::service::ServiceShard<SR, IT, VT>;
namespace mc = msx::client;

int main(int argc, char** argv) {
  msx::ArgParser args(argc, argv);
  const int nshards = static_cast<int>(args.get_int("shards", 4));
  const int nrequests = static_cast<int>(args.get_int("requests", 96));
  const int ncatalog = static_cast<int>(args.get_int("catalog", 8));
  const int kill = static_cast<int>(args.get_int("kill", -1));
  const std::string unix_prefix = args.get_string("unix", "");
  const std::string trace_path = args.get_string("trace", "");

  // --- fleet ---
  msx::service::ShardConfig cfg;
  cfg.limits.max_pending_jobs = 256;  // bounded queue: overload degrades
  cfg.limits.admission = msx::AdmissionPolicy::kReject;  // ... to kOverloaded
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<msx::service::ShardEndpoint> endpoints;
  for (int i = 0; i < nshards; ++i) {
    cfg.name = "shard-" + std::to_string(i);  // trace/metrics component label
    shards.push_back(std::make_unique<Shard>(cfg));
    if (unix_prefix.empty()) {
      auto listener = std::make_unique<msx::service::LoopbackListener>();
      auto* raw = listener.get();
      shards.back()->serve(std::move(listener));
      endpoints.push_back({"shard-" + std::to_string(i),
                           [raw] { return raw->connect(); }});
    } else {
      const std::string path = unix_prefix + "." + std::to_string(i);
      shards.back()->serve(msx::service::listen_unix(path));
      endpoints.push_back({path, [path] {
                             return msx::service::connect_unix(path);
                           }});
    }
  }
  auto backend = std::make_shared<mc::ShardedBackend<SR, IT, VT>>(endpoints);
  mc::MaskedClient<SR, IT, VT> client(backend);
  auto session = client.open_session({.max_in_flight = 16});
  std::printf("sharded_service: %d shards (%s transport), %d requests over "
              "%d structures, 16 in flight\n",
              nshards, unix_prefix.empty() ? "loopback" : "unix-socket",
              nrequests, ncatalog);

  // --- catalog of recurring request structures, registered once ---
  struct Entry {
    Mat a;
    std::shared_ptr<const Mat> b, m;
    mc::StructureHandle<IT, VT> handle;
  };
  std::vector<Entry> catalog;
  for (int k = 0; k < ncatalog; ++k) {
    const IT rows = 140 + 28 * static_cast<IT>(k);
    Entry e;
    e.a = msx::erdos_renyi<IT, VT>(rows, rows, 6, 500 + k);
    e.b = std::make_shared<const Mat>(
        msx::erdos_renyi<IT, VT>(rows, rows, 6, 600 + k));
    e.m = std::make_shared<const Mat>(
        msx::erdos_renyi<IT, VT>(rows, rows, 8, 700 + k));
    e.handle =
        session.register_structure(mc::StructureSpec<IT, VT>(e.b).mask(e.m));
    catalog.push_back(std::move(e));
  }

  // --- pipelined stream, verified bit-identical ---
  msx::WallTimer timer;
  int mismatches = 0;
  std::vector<std::pair<Mat, std::future<mc::ClientResult<IT, VT>>>> inflight;
  for (int r = 0; r < nrequests; ++r) {
    auto& e = catalog[static_cast<std::size_t>((r * 5 + 1) % ncatalog)];
    // Fresh numerics each request (structure — and so affinity — is stable).
    auto vals = e.a.mutable_values();
    for (std::size_t p = 0; p < vals.size(); ++p) {
      vals[p] = 1.0 + static_cast<double>((p + static_cast<std::size_t>(r)) % 9);
    }
    if (kill >= 0 && kill < nshards && r == nrequests / 2) {
      std::printf("killing shard %d mid-stream (in-flight failover)\n", kill);
      shards[static_cast<std::size_t>(kill)]->stop();
    }
    inflight.emplace_back(msx::masked_spgemm<SR>(e.a, *e.b, *e.m),
                          session.submit(e.a, e.handle));
  }
  for (auto& [want, fut] : inflight) {
    auto res = fut.get();
    if (!res.ok() || !(res.matrix == want)) ++mismatches;
  }
  const double seconds = timer.seconds();

  // --- report ---
  const auto bs = backend->stats();
  std::printf("\n%-10s %10s %10s %10s %10s %10s\n", "shard", "ok", "warm%",
              "jobs", "regs", "cacheMB");
  for (int i = 0; i < nshards; ++i) {
    if (kill >= 0 && i == kill) {
      std::printf("%-10s %10llu %10s %10s %10s %10s   (killed)\n",
                  ("shard-" + std::to_string(i)).c_str(),
                  static_cast<unsigned long long>(
                      bs.routed[static_cast<std::size_t>(i)]),
                  "-", "-", "-", "-");
      continue;
    }
    const auto st = backend->shard_stats(static_cast<std::size_t>(i));
    std::printf("%-10s %10llu %10.0f %10llu %10llu %10.2f\n",
                ("shard-" + std::to_string(i)).c_str(),
                static_cast<unsigned long long>(
                    bs.routed[static_cast<std::size_t>(i)]),
                100.0 * st.warm_hit_rate(),
                static_cast<unsigned long long>(st.jobs_completed),
                static_cast<unsigned long long>(st.registrations),
                static_cast<double>(st.cache_bytes) / (1024.0 * 1024.0));
  }
  std::printf("\n%d requests in %.3fs (%.1f requests/s), %d mismatches, "
              "%llu failover re-submissions, %llu overload reroutes\n",
              nrequests, seconds, nrequests / seconds, mismatches,
              static_cast<unsigned long long>(bs.failover_resubmits),
              static_cast<unsigned long long>(bs.overload_reroutes));
  if (mismatches != 0) {
    std::printf("FAILED: service results diverged from direct calls\n");
    return 1;
  }
  std::printf("every pipelined result was bit-identical to the direct "
              "masked_spgemm call\n");

  // --- optional: one traced, forced-2D product -> Chrome trace JSON ---
  if (!trace_path.empty()) {
    if (nshards < 2) {
      std::printf("--trace needs at least 2 shards (have %d)\n", nshards);
      return 1;
    }
    // Trace exactly one request so the file holds a single trace id whose
    // spans cover the client (submit, wire.send, 2d.scatter, 2d.merge),
    // every shard that served a panel (shard.request) and the executor
    // phases under them (exec.queue, exec.run, phase.*). Loopback shards
    // live in this process, so collect_spans() sees all components at once.
    msx::obs::set_trace_enabled(true);
    msx::obs::clear_spans();
    auto& e = catalog[0];
    // Replicated panels make every shard a candidate; the load-scored
    // placement then spreads the panel tasks across the fleet, so the trace
    // shows more than one shard track.
    auto traced_handle = session.register_structure(
        mc::StructureSpec<IT, VT>(e.b).mask(e.m).replicate(nshards));
    mc::SubmitOptions traced;
    traced.masked.dist = msx::Dist2D::kForce;
    traced.masked.dist_row_panels = 2;
    traced.masked.dist_col_panels = 2 * nshards;
    auto res = session.submit(e.a, traced_handle, traced).get();
    msx::obs::set_trace_enabled(false);
    if (!res.ok() ||
        !(res.matrix == msx::masked_spgemm<SR>(e.a, *e.b, *e.m))) {
      std::printf("FAILED: traced 2D product diverged from the direct call\n");
      return 1;
    }
    const auto spans = msx::obs::collect_spans();
    if (!msx::obs::write_chrome_trace(trace_path)) {
      std::printf("FAILED: could not write trace to %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("wrote %zu spans (one 2D product across the fleet) to %s — "
                "open in Perfetto or chrome://tracing\n",
                spans.size(), trace_path.c_str());
  }
  return 0;
}
