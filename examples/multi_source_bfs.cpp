// Multi-source BFS — the paper's motivating masked primitive in pure form
// (§1): each level is F ← ¬Visited .* (F·A); the complemented mask is the
// "filter to avoid rediscovery of previously discovered vertices".
//
// Usage:
//   ./multi_source_bfs                       # R-MAT scale 12, 4 sources
//   ./multi_source_bfs --sources 8 --algo hash
//   ./multi_source_bfs --sources 32 --chunk 4   # chunked, batched through
//                                               # the runtime BatchExecutor
#include <cstdio>
#include <vector>

#include "apps/bfs.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "gen/rmat.hpp"
#include "matrix/ops.hpp"
#include "runtime/batch.hpp"

using IT = int32_t;
using VT = double;

int main(int argc, char** argv) {
  msx::ArgParser args(argc, argv);
  const int nsources = static_cast<int>(args.get_int("sources", 4));
  const int scale = static_cast<int>(args.get_int("rmat-scale", 12));
  const int chunk = static_cast<int>(args.get_int("chunk", 0));

  auto graph = msx::rmat<IT, VT>(scale, 11);
  std::printf("graph: %d vertices, %zu directed edges; %d BFS sources\n",
              graph.nrows(), graph.nnz(), nsources);

  std::vector<IT> sources;
  for (int q = 0; q < nsources; ++q) {
    sources.push_back(static_cast<IT>((q * 104729) % graph.nrows()));
  }

  msx::MaskedOptions opts;
  opts.algo = msx::algo_from_string(args.get_string("algo", "msa"));

  msx::WallTimer timer;
  msx::BFSResult result;
  if (chunk > 0) {
    // Chunked path: per-chunk level products run concurrently through the
    // runtime's batch executor (levels are bit-identical to the monolithic
    // call below).
    msx::BatchExecutor<msx::PlusPair<std::int64_t>, IT, std::int64_t> exec;
    result = msx::multi_source_bfs(graph, sources, exec,
                                   static_cast<std::size_t>(chunk), opts);
    const auto st = exec.stats();
    std::printf("executor: %d pool threads, %llu small / %llu wide jobs\n",
                exec.pool_threads(),
                static_cast<unsigned long long>(st.small_jobs),
                static_cast<unsigned long long>(st.wide_jobs));
  } else {
    result = msx::multi_source_bfs(graph, sources, opts);
  }
  const double seconds = timer.seconds();

  const auto n = static_cast<std::size_t>(graph.nrows());
  std::printf("\ndeepest level: %d   time: %.4f s\n", result.depth, seconds);
  for (std::size_t q = 0; q < sources.size(); ++q) {
    std::size_t reached = 0;
    std::int64_t level_sum = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const auto lvl = result.levels[q * n + v];
      if (lvl >= 0) {
        ++reached;
        level_sum += lvl;
      }
    }
    std::printf("  source %-8d reached %zu/%zu vertices, mean depth %.2f\n",
                sources[q], reached, n,
                reached ? static_cast<double>(level_sum) /
                              static_cast<double>(reached)
                        : 0.0);
  }
  return 0;
}
