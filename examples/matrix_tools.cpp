// Matrix toolbox: generate / load / inspect / convert sparse matrices with
// the library's substrate API — useful for preparing inputs for the benches
// (e.g. writing a generated R-MAT graph to MatrixMarket for reuse, or
// summarizing a SuiteSparse download before running triangle counting).
//
// Usage:
//   ./matrix_tools --gen rmat --scale 12 --out graph.mtx
//   ./matrix_tools --gen er --n 4096 --degree 16 --out er.mtx
//   ./matrix_tools --in graph.mtx            # print summary statistics
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "matrix/convert.hpp"
#include "matrix/mm_io.hpp"
#include "matrix/ops.hpp"
#include "matrix/stats.hpp"

using IT = int32_t;
using VT = double;

namespace {

void summarize(const msx::CSRMatrix<IT, VT>& a, const std::string& name) {
  const auto s = msx::matrix_stats(a);
  std::printf("%s: %d x %d, %zu nonzeros (density %.2e)\n", name.c_str(),
              s.nrows, s.ncols, s.nnz, s.density);
  if (a.nrows() == 0) return;
  std::printf(
      "  row degree: min %d, max %d, mean %.2f, stddev %.2f, skew %.1fx; "
      "%zu empty rows\n",
      s.min_degree, s.max_degree, s.mean_degree, s.degree_stddev,
      s.degree_skew, s.empty_rows);
  std::printf("  bandwidth: %d   pattern symmetric: %s\n", s.bandwidth,
              msx::is_pattern_symmetric(a) ? "yes" : "no");
  const auto hist = msx::degree_histogram(a);
  std::printf("  degree histogram (0, then pow2 buckets):");
  for (auto c : hist) std::printf(" %zu", c);
  std::printf("\n");
  std::string why;
  std::printf("  CSR invariants: %s%s\n", a.validate(&why) ? "ok" : "BROKEN: ",
              why.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  msx::ArgParser args(argc, argv);
  const std::string in = args.get_string("in", "");
  const std::string out = args.get_string("out", "");
  const std::string gen = args.get_string("gen", in.empty() ? "rmat" : "");

  msx::CSRMatrix<IT, VT> a;
  std::string name;
  if (!in.empty()) {
    a = msx::read_matrix_market_file<IT, VT>(in);
    name = in;
  } else if (gen == "rmat") {
    const int scale = static_cast<int>(args.get_int("scale", 12));
    a = msx::rmat<IT, VT>(scale, args.get_int("seed", 42));
    name = "rmat-s" + std::to_string(scale);
  } else if (gen == "er") {
    const IT n = static_cast<IT>(args.get_int("n", 4096));
    const IT degree = static_cast<IT>(args.get_int("degree", 16));
    a = msx::erdos_renyi<IT, VT>(
        n, n, degree, static_cast<std::uint64_t>(args.get_int("seed", 42)));
    name = "er-n" + std::to_string(n) + "-d" + std::to_string(degree);
  } else {
    std::fprintf(stderr, "unknown generator '%s' (use rmat|er or --in)\n",
                 gen.c_str());
    return 1;
  }

  summarize(a, name);

  if (args.get_bool("symmetrize", false)) {
    a = msx::symmetrize_pattern(msx::remove_diagonal(a));
    summarize(a, name + " (symmetrized)");
  }
  if (args.get_bool("transpose", false)) {
    a = msx::transpose(a);
    summarize(a, name + "^T");
  }
  if (!out.empty()) {
    msx::write_matrix_market_file(out, a, args.get_bool("pattern", false));
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}
