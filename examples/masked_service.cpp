// masked_service — simulated request traffic against the concurrent runtime,
// consumed through the unified client API (ISSUE 3 runtime, ISSUE 5 client).
//
// Models a masked-product service: a catalog of recurring request shapes
// (small analytics queries plus a few heavy reports), a stream of requests
// drawn from the catalog with fresh numeric values, and two ways to serve
// them:
//
//   * sequential — a loop of stateless masked_spgemm calls (each re-plans
//     and forks its own OpenMP team), and
//   * client    — a MaskedClient session over the LocalBackend: stationary
//     operands registered once per shape, submits pipelined with bounded
//     in-flight depth, small requests run serial one per pool worker, heavy
//     ones get the whole pool, and the structure-keyed PlanCache serves
//     repeats without re-planning. Interactive-priority requests jump the
//     batch queue.
//
// Usage:
//   ./masked_service                          # defaults: 96 requests
//   ./masked_service --requests 256 --catalog 12 --threads 8
#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "client/client.hpp"
#include "client/local_backend.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/masked_spgemm.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"

using IT = int32_t;
using VT = double;
using Mat = msx::CSRMatrix<IT, VT>;
using SR = msx::PlusTimes<VT>;
namespace mc = msx::client;

int main(int argc, char** argv) {
  msx::ArgParser args(argc, argv);
  const int nrequests = static_cast<int>(args.get_int("requests", 96));
  const int ncatalog = static_cast<int>(args.get_int("catalog", 8));
  const int threads = static_cast<int>(args.get_int("threads", 0));

  // Catalog: mostly small shapes, every fourth one heavy enough for the
  // wide lane. A's pattern is fixed per shape (values vary per request), so
  // the plan cache fingerprints recur.
  struct Shape {
    Mat a;
    std::shared_ptr<const Mat> b, m;
  };
  std::vector<Shape> catalog;
  for (int k = 0; k < ncatalog; ++k) {
    const bool heavy = (k % 4) == 3;
    const IT rows = heavy ? 1500 : 160 + 32 * static_cast<IT>(k);
    const IT deg = heavy ? 12 : 6;
    catalog.push_back({
        msx::erdos_renyi<IT, VT>(rows, rows, deg, 100 + k),
        std::make_shared<const Mat>(
            msx::erdos_renyi<IT, VT>(rows, rows, deg, 200 + k)),
        std::make_shared<const Mat>(
            msx::erdos_renyi<IT, VT>(rows, rows, deg + 2, 300 + k)),
    });
  }

  auto pick = [&](int r) -> Shape& {
    return catalog[static_cast<std::size_t>((r * 7 + 3) % ncatalog)];
  };
  auto refresh_values = [](Mat& mat, int salt) {
    auto vals = mat.mutable_values();
    for (std::size_t p = 0; p < vals.size(); ++p) {
      vals[p] = 1.0 + static_cast<double>((p + static_cast<std::size_t>(salt)) % 7);
    }
  };

  std::printf("masked_service: %d requests over %d catalog shapes\n",
              nrequests, ncatalog);

  // --- sequential baseline ---
  msx::WallTimer seq_timer;
  std::size_t seq_nnz = 0;
  for (int r = 0; r < nrequests; ++r) {
    Shape& s = pick(r);
    refresh_values(s.a, r);
    seq_nnz += msx::masked_spgemm<SR>(s.a, *s.b, *s.m).nnz();
  }
  const double seq_seconds = seq_timer.seconds();

  // --- client over the local runtime ---
  msx::BatchLimits limits;
  limits.pool_threads = threads;
  auto backend = std::make_shared<mc::LocalBackend<SR, IT, VT>>(limits);
  mc::MaskedClient<SR, IT, VT> client(backend);
  auto session = client.open_session({.max_in_flight = 32});

  // Register each shape's stationary operands once; warm the plan cache with
  // one pass (a deployed service reaches this state after the first
  // occurrence of each shape).
  std::vector<mc::StructureHandle<IT, VT>> handles;
  {
    std::vector<std::future<mc::ClientResult<IT, VT>>> warm;
    for (auto& s : catalog) {
      handles.push_back(
          session.register_structure(mc::StructureSpec<IT, VT>(s.b).mask(s.m)));
      warm.push_back(session.submit(s.a, handles.back()));
    }
    for (auto& f : warm) f.get().value();
  }

  msx::WallTimer run_timer;
  std::vector<std::future<mc::ClientResult<IT, VT>>> inflight;
  for (int r = 0; r < nrequests; ++r) {
    Shape& s = pick(r);
    refresh_values(s.a, r);
    inflight.push_back(session.submit(
        s.a, handles[static_cast<std::size_t>((r * 7 + 3) % ncatalog)]));
  }
  std::size_t run_nnz = 0;
  for (auto& f : inflight) run_nnz += f.get().value().nnz();
  const double run_seconds = run_timer.seconds();

  if (seq_nnz != run_nnz) {
    std::printf("MISMATCH: sequential nnz %zu != client nnz %zu\n", seq_nnz,
                run_nnz);
    return 1;
  }

  const auto st = backend->executor().stats();
  std::printf("\n%-12s %10s %12s\n", "path", "seconds", "requests/s");
  std::printf("%-12s %10.4f %12.1f\n", "sequential", seq_seconds,
              nrequests / seq_seconds);
  std::printf("%-12s %10.4f %12.1f\n", "client", run_seconds,
              nrequests / run_seconds);
  std::printf("\nspeedup: %.2fx with %d pool threads (inter-job parallelism "
              "needs real cores;\nthe plan-cache savings show even on one)\n",
              seq_seconds / run_seconds, backend->executor().pool_threads());
  std::printf("jobs: %llu small, %llu wide; plan cache: %.0f%% hit rate "
              "(%llu hits, %llu misses, %llu grows, %llu instances)\n",
              static_cast<unsigned long long>(st.small_jobs),
              static_cast<unsigned long long>(st.wide_jobs),
              100.0 * st.cache.hit_rate(),
              static_cast<unsigned long long>(st.cache.hits),
              static_cast<unsigned long long>(st.cache.misses),
              static_cast<unsigned long long>(st.cache.grows),
              static_cast<unsigned long long>(st.cache.instances));
  return 0;
}
