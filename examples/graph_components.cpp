// Connected components via masked label propagation on the (min, first)
// semiring — every round pushes only the labels that changed (the frontier),
// the masked-traversal pattern from the paper's introduction.
//
// Usage:
//   ./graph_components                       # R-MAT scale 13
//   ./graph_components --mtx graph.mtx
#include <algorithm>
#include <cstdio>
#include <map>

#include "apps/connected_components.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "gen/rmat.hpp"
#include "matrix/mm_io.hpp"
#include "matrix/ops.hpp"

using IT = int32_t;
using VT = double;

int main(int argc, char** argv) {
  msx::ArgParser args(argc, argv);
  const std::string mtx = args.get_string("mtx", "");
  const int scale = static_cast<int>(args.get_int("rmat-scale", 13));

  msx::CSRMatrix<IT, VT> graph;
  if (!mtx.empty()) {
    auto raw = msx::read_matrix_market_file<IT, VT>(mtx);
    graph = msx::symmetrize_pattern(msx::remove_diagonal(raw));
  } else {
    graph = msx::rmat<IT, VT>(scale, 5);
  }
  std::printf("graph: %d vertices, %zu directed edges\n", graph.nrows(),
              graph.nnz());

  msx::WallTimer t;
  const auto r = msx::connected_components(graph);
  std::printf("components: %lld   rounds: %d   time: %.4f s\n",
              static_cast<long long>(r.num_components), r.rounds, t.seconds());

  // Size distribution of the five largest components.
  std::map<std::int64_t, std::size_t> sizes;
  for (auto l : r.labels) ++sizes[l];
  std::vector<std::size_t> by_size;
  for (const auto& [label, count] : sizes) by_size.push_back(count);
  std::sort(by_size.rbegin(), by_size.rend());
  std::printf("largest components:");
  for (std::size_t k = 0; k < std::min<std::size_t>(5, by_size.size()); ++k) {
    std::printf(" %zu", by_size[k]);
  }
  std::printf("  (of %zu total)\n", by_size.size());
  return 0;
}
