// Figure 7: best-performing scheme across the (mask degree × input degree)
// grid on Erdős–Rényi matrices.
//
// The paper varies the degree of the mask (x: 1..1024) and of A and B
// (y: 1..128) for dimensions 2^12..2^22 and colours each cell by the winning
// scheme. Expected regimes (§8.1): Inner when the mask is much sparser than
// the inputs; Heap/HeapDot when the inputs are much sparser than the mask;
// MSA/Hash when the densities are comparable (MSA on smaller matrices, Hash
// on larger ones).
//
// With --json[=PATH] each grid cell becomes a record carrying, alongside the
// winning scheme, the per-execution-mode columns of the adaptive engine
// (ISSUE 10): Hash forced to sparse / bitmap / dense plus the auto planner —
// the per-cell data behind the mode-boundary picture the planner's cost
// model encodes.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "gen/erdos_renyi.hpp"

using namespace msx;
using namespace msx::bench;

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv);
  ArgParser args(argc, argv);
  // Dimensions to sweep: exponents of 2. Paper: 12..22; default here: 12, 14.
  const int dim_lo = static_cast<int>(args.get_int("dim-lo", 12));
  const int dim_hi = static_cast<int>(args.get_int("dim-hi", 14));
  const int deg_in_max = static_cast<int>(args.get_int("deg-in-max", 64));
  const int deg_m_max = static_cast<int>(args.get_int("deg-m-max", 256));

  print_header("fig7_density_grid — winning scheme vs mask/input density",
               "Fig. 7 (§8.1)", cfg);

  auto schemes = our_schemes(/*include_two_phase=*/false);

  // The adaptive mode columns: Hash-1P under each forced accumulator mode,
  // plus the auto planner. Only timed when the JSON artifact is requested —
  // the ASCII grid stays the paper's figure.
  struct ModeColumn {
    const char* key;
    AdaptiveMode mode;
  };
  const std::vector<ModeColumn> mode_columns{
      {"seconds_mode_sparse", AdaptiveMode::kForceSparse},
      {"seconds_mode_bitmap", AdaptiveMode::kForceBitmap},
      {"seconds_mode_dense", AdaptiveMode::kForceDense},
      {"seconds_mode_auto", AdaptiveMode::kAuto},
  };

  BenchJsonFile artifact("fig7_density_grid", cfg);

  for (int dim = dim_lo; dim <= dim_hi; dim += 2) {
    const IT n = IT{1} << dim;
    std::printf("\ndimension = 2^%d x 2^%d\n", dim, dim);
    std::printf("%-10s", "deg(A,B)\\deg(M)");
    for (int dm = 1; dm <= deg_m_max; dm *= 4) std::printf("%10d", dm);
    std::printf("\n");

    for (int din = 1; din <= deg_in_max; din *= 4) {
      std::printf("%-10d", din);
      auto a = erdos_renyi<IT, VT>(n, n, static_cast<IT>(din), 101);
      auto b = erdos_renyi<IT, VT>(n, n, static_cast<IT>(din), 102);
      for (int dm = 1; dm <= deg_m_max; dm *= 4) {
        auto m = erdos_renyi<IT, VT>(n, n, static_cast<IT>(dm), 103);
        std::string best = "-";
        double best_t = nan_time();
        for (const auto& s : schemes) {
          const double t =
              time_masked_spgemm<PlusTimes<VT>>(a, b, m, s.opts, cfg);
          if (std::isnan(t)) continue;
          if (std::isnan(best_t) || t < best_t) {
            best_t = t;
            best = s.name;
          }
        }
        std::printf("%10s", best.substr(0, best.find('-')).c_str());
        if (cfg.json) {
          JsonObject record;
          record.field("dim_log2", dim)
              .field("deg_in", din)
              .field("deg_mask", dm)
              .field("best_scheme", best)
              .field("best_seconds", best_t);
          for (const auto& col : mode_columns) {
            MaskedOptions o;
            o.algo = MaskedAlgo::kHash;
            o.adaptive = col.mode;
            record.field(col.key,
                         time_masked_spgemm<PlusTimes<VT>>(a, b, m, o, cfg));
          }
          artifact.add(record);
        }
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nExpected shape (paper Fig. 7): Inner in the lower-right region\n"
      "(sparse mask, dense inputs); Heap/HeapDot upper-left (dense mask,\n"
      "sparse inputs); MSA/Hash along the comparable-density diagonal.\n");
  if (!artifact.write(cfg.resolved_json_path("BENCH_fig7_density_grid.json"))) {
    return 1;
  }
  return 0;
}
