// Ablation (§4.3): the push/pull asymptotic crossover.
//
// "When both the input matrices get denser, the push-based row-by-row
// algorithms get expensive quadratically with d ... pull-based dot-product
// algorithm gets expensive only linearly with d. On the other hand, when the
// mask gets asymptotically sparser than the input ... pull-based algorithms
// tend to outperform push-based algorithms." This bench sweeps input degree
// at fixed mask degree and reports the empirical crossover.
#include <cstdio>

#include "bench_common.hpp"
#include "gen/erdos_renyi.hpp"

using namespace msx;
using namespace msx::bench;

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv);
  print_header("ablation_push_pull_crossover — Inner vs MSA vs input degree",
               "§4.3 (high-level comparison)", cfg);

  const IT n = IT{1} << (12 + cfg.scale_shift);
  const IT dm = 4;  // fixed sparse mask
  auto m = erdos_renyi<IT, VT>(n, n, dm, 9);

  Table table({"deg_in", "msa1p_ms", "inner1p_ms", "pull/push"});
  const char* crossover = "none";
  bool pull_ahead = false;
  for (IT din : {IT{1}, IT{2}, IT{4}, IT{8}, IT{16}, IT{32}, IT{64},
                 IT{128}}) {
    auto a = erdos_renyi<IT, VT>(n, n, din, 1);
    auto b = erdos_renyi<IT, VT>(n, n, din, 2);
    auto b_csc = csr_to_csc(b);
    MaskedOptions push;
    push.algo = MaskedAlgo::kMSA;
    push.threads = cfg.threads;
    MaskedOptions pull;
    pull.algo = MaskedAlgo::kInner;
    pull.threads = cfg.threads;

    const double t_push =
        time_masked_spgemm<PlusTimes<VT>>(a, b, m, push, cfg);
    const auto pull_stats = measure(
        [&] {
          auto c = masked_spgemm_with_csc<PlusTimes<VT>>(a, b, b_csc, m, pull);
          (void)c;
        },
        cfg.measure());
    const double t_pull = best_seconds(pull_stats);

    if (!pull_ahead && t_pull < t_push) {
      pull_ahead = true;
      static std::string label;
      label = "deg_in=" + std::to_string(din);
      crossover = label.c_str();
    }
    table.add_row({std::to_string(din), Table::num(t_push * 1e3, 3),
                   Table::num(t_pull * 1e3, 3),
                   Table::num(t_pull / t_push, 2)});
  }
  table.print();
  std::printf("\nempirical pull-takes-over point: %s\n", crossover);
  std::printf("Expected shape (§4.3): push cost grows ~quadratically in the\n"
              "input degree at fixed mask, pull only linearly, so Inner\n"
              "overtakes MSA once the inputs are dense enough.\n");
  return 0;
}
