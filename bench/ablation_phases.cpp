// Ablation (§6, §8): one-phase vs two-phase output construction.
//
// The paper's cross-cutting observation: "computing the Masked SpGEMM in a
// single phase usually performs better than approaches in which a symbolic
// multiplication is run prior to actual multiplication, in stark contrast
// with the conventions of plain SpGEMM". This bench reports the 2P/1P
// runtime ratio per algorithm per workload (ratio > 1 means 1P wins).
#include <cstdio>

#include "bench_common.hpp"

using namespace msx;
using namespace msx::bench;

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv, /*default_scale_shift=*/-2);
  print_header("ablation_phases — 2P/1P runtime ratio per algorithm",
               "§6 / §8 (1P-vs-2P discussion)", cfg);

  const std::vector<MaskedAlgo> algos{
      MaskedAlgo::kMSA,  MaskedAlgo::kHash,    MaskedAlgo::kMCA,
      MaskedAlgo::kHeap, MaskedAlgo::kHeapDot, MaskedAlgo::kInner};

  std::vector<std::string> headers{"graph"};
  for (auto a : algos) headers.push_back(std::string(to_string(a)) + "_2P/1P");
  Table table(headers);

  double product_of_ratios = 1.0;
  int ratio_count = 0;
  for (const auto& workload : graph_suite(cfg.scale_shift)) {
    const auto lower = prepare_tc_lower(workload.make());
    std::vector<std::string> row{workload.name};
    for (auto algo : algos) {
      MaskedOptions o1;
      o1.algo = algo;
      o1.phases = PhaseMode::kOnePhase;
      MaskedOptions o2 = o1;
      o2.phases = PhaseMode::kTwoPhase;
      const double t1 = time_masked_spgemm<PlusPair<std::int64_t>>(
          lower, lower, lower, o1, cfg);
      const double t2 = time_masked_spgemm<PlusPair<std::int64_t>>(
          lower, lower, lower, o2, cfg);
      const double ratio = t2 / t1;
      product_of_ratios *= ratio;
      ++ratio_count;
      row.push_back(Table::num(ratio, 2));
    }
    table.add_row(std::move(row));
  }
  table.print();
  const double geomean =
      std::pow(product_of_ratios, 1.0 / std::max(1, ratio_count));
  std::printf("\ngeometric-mean 2P/1P ratio: %.2fx", geomean);
  std::printf("  (paper: 1P usually wins, i.e. ratio > 1)\n");
  return 0;
}
