// Figure 1 motivation: plain SpGEMM followed by masking vs masked SpGEMM.
//
// "A simple way to perform Masked SpGEMM is to compute the multiplication as
// if the mask does not exist and then apply the mask to the output matrix,
// which causes unnecessary computation if the overlap between the output
// matrix and the mask is low." This bench quantifies that waste as a
// function of mask density: as the mask gets sparser, the fused masked
// kernels pull ahead of compute-then-mask by growing factors.
#include <cstdio>

#include "baseline/then_mask.hpp"
#include "bench_common.hpp"
#include "gen/erdos_renyi.hpp"

using namespace msx;
using namespace msx::bench;

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv);
  print_header("fig1_motivation — plain-then-mask vs masked SpGEMM",
               "Fig. 1 (motivating example)", cfg);

  const IT n = IT{1} << (12 + cfg.scale_shift);
  const IT d_in = 16;
  auto a = erdos_renyi<IT, VT>(n, n, d_in, 1);
  auto b = erdos_renyi<IT, VT>(n, n, d_in, 2);

  Table table({"mask_degree", "then_mask_s", "msa1p_s", "hash1p_s",
               "speedup_msa", "speedup_hash"});
  for (IT dm : {IT{1}, IT{4}, IT{16}, IT{64}, IT{256}}) {
    auto m = erdos_renyi<IT, VT>(n, n, dm, 3);

    const auto naive = measure(
        [&] {
          auto c = spgemm_then_mask<PlusTimes<VT>>(a, b, m);
          (void)c;
        },
        cfg.measure());

    MaskedOptions msa;
    msa.algo = MaskedAlgo::kMSA;
    MaskedOptions hash;
    hash.algo = MaskedAlgo::kHash;
    const double t_naive = best_seconds(naive);
    const double t_msa = time_masked_spgemm<PlusTimes<VT>>(a, b, m, msa, cfg);
    const double t_hash =
        time_masked_spgemm<PlusTimes<VT>>(a, b, m, hash, cfg);

    table.add_row({std::to_string(dm), Table::num(t_naive, 5),
                   Table::num(t_msa, 5), Table::num(t_hash, 5),
                   Table::num(t_naive / t_msa, 2),
                   Table::num(t_naive / t_hash, 2)});
  }
  table.print();
  std::printf("\nExpected shape (paper): fused masked SpGEMM wins, and the\n"
              "advantage grows as the mask gets sparser relative to A·B.\n");
  return 0;
}
