// micro_streaming — sustained mutation+query traffic on a live structure
// (ISSUE 7 tentpole). Two measurements:
//
//   1. Core delta rebind: a warm two-phase plan absorbs an edge batch
//      touching <=5% of B's rows via MaskedPlan::apply_delta (sparse
//      re-symbolic over touched rows, retained partition, spliced 2P
//      rowptr) versus building a fresh plan on the mutated matrix. The
//      acceptance gate: the patch is measurably cheaper than the re-plan
//      and untouched partition blocks provably skip re-symbolic
//      (blocks_refreshed < blocks_total in the emitted DeltaStats).
//
//   2. Service mix: a LocalBackend session interleaves Session::update
//      calls with pipelined submits — the steady-state shape of a
//      dynamic-graph service — and reports sustained ops/sec plus how many
//      version transitions the plan cache served by migrating a warm plan
//      (delta_migrations) instead of planning cold.
//
//   ./bench_micro_streaming [--rows N] [--degree D] [--touched T]
//       [--rounds R] [--structures K] [--inflight F] [--threads T]
//       [--reps R] [--json[=PATH]]
#include <cstdint>
#include <cstdio>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "client/client.hpp"
#include "client/local_backend.hpp"
#include "core/delta.hpp"
#include "core/masked_spgemm.hpp"
#include "gen/erdos_renyi.hpp"
#include "matrix/build.hpp"
#include "runtime/batch.hpp"

using namespace msx;
using namespace msx::bench;
namespace mc = msx::client;

namespace {

// Banded A (row i references columns i-2..i+2): output rows touched by a
// row-local delta on B stay local, so untouched partition blocks can prove
// they kept their symbolic state. A random A would smear every delta across
// the whole row space and hide the sparsity the patch exploits.
Mat banded(IT n) {
  std::vector<Triple<IT, VT>> t;
  for (IT i = 0; i < n; ++i) {
    for (IT j = std::max<IT>(0, i - 2); j <= std::min<IT>(n - 1, i + 2); ++j) {
      t.push_back({i, j, 1.0 + static_cast<VT>((i + j) % 3)});
    }
  }
  return csr_from_triples<IT, VT>(n, n, std::move(t), DuplicatePolicy::kError);
}

// `salt` varies the edited columns so successive batches against the same
// structure keep producing genuinely new matrix generations.
EdgeDelta<IT, VT> front_batch(IT n, IT touched, IT salt = 0) {
  EdgeDelta<IT, VT> d;
  for (IT r = 0; r < touched; ++r) {
    d.insert(r, (r * 13 + salt) % n, 1.0);
    if (r % 3 == 0) d.erase(r, (r * 7 + salt) % n);  // mostly absent: no-ops
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv);
  ArgParser args(argc, argv);
  const IT rows = static_cast<IT>(
      args.get_int("rows", 4000 << (cfg.scale_shift > 0 ? cfg.scale_shift : 0)));
  const int degree = static_cast<int>(args.get_int("degree", 8));
  const IT touched = static_cast<IT>(
      args.get_int("touched", std::max<long long>(1, rows / 100)));
  const int rounds = static_cast<int>(args.get_int("rounds", 24));
  const int nstructures = static_cast<int>(args.get_int("structures", 4));
  const int inflight = static_cast<int>(args.get_int("inflight", 8));
  print_header("micro_streaming — delta rebind (apply_delta on a warm plan) "
               "vs full re-plan, then a sustained mutation+query mix",
               "ISSUE 7 (streaming dynamic-graph serving)", cfg);

  using SRt = PlusTimes<VT>;
  MaskedOptions opts;
  opts.algo = MaskedAlgo::kMSA;
  opts.phases = PhaseMode::kTwoPhase;
  opts.schedule = Schedule::kFlopBalanced;
  opts.threads = cfg.threads;

  const Mat a = banded(rows);
  const Mat b = erdos_renyi<IT, VT>(rows, rows, degree, 71);
  const Mat m = erdos_renyi<IT, VT>(rows, rows, degree + 2, 72);
  const auto delta = front_batch(rows, touched);
  const Mat b2 = apply_edge_delta(b, delta);

  // --- 1. delta rebind vs fresh plan on the mutated operands ---------------
  double best_patch = nan_time();
  double best_replan = nan_time();
  DeltaStats stats{};
  for (int rep = 0; rep < std::max(1, cfg.reps); ++rep) {
    auto plan = masked_plan<SRt>(a, b, m, opts);
    auto warm = plan.execute();  // populates the 2P symbolic cache
    stats = plan.apply_delta(delta);
    const double patch_seconds = plan.last_delta_seconds();

    WallTimer replan_timer;
    auto cold = masked_plan<SRt>(a, b2, m, opts);
    const double replan_seconds = replan_timer.seconds();

    // The patched plan must be bit-identical to the cold one.
    if (!(plan.execute() == cold.execute())) {
      std::fprintf(stderr, "patched plan diverged from cold plan\n");
      return 1;
    }
    (void)warm;
    if (std::isnan(best_patch) || patch_seconds < best_patch) {
      best_patch = patch_seconds;
    }
    if (std::isnan(best_replan) || replan_seconds < best_replan) {
      best_replan = replan_seconds;
    }
  }
  const double speedup = best_replan / best_patch;

  Table table({"path", "structural seconds", "speedup"});
  table.add_row({"full-replan", Table::num(best_replan * 1e3, 3) + "ms",
                 "1.00x"});
  table.add_row({"delta-rebind", Table::num(best_patch * 1e3, 3) + "ms",
                 Table::num(speedup, 2) + "x"});
  table.print();
  std::printf("\n%lld of %lld B rows touched (%.1f%%); %zu output rows "
              "re-symbolic; %d of %d partition blocks refreshed "
              "(untouched blocks kept their widths); partition %s, "
              "2P rowptr %s\n",
              static_cast<long long>(touched), static_cast<long long>(rows),
              100.0 * static_cast<double>(touched) / static_cast<double>(rows),
              stats.out_rows_resymbolic, stats.blocks_refreshed,
              stats.blocks_total, stats.partition_kept ? "kept" : "rebuilt",
              stats.symbolic_patched ? "spliced" : "rebuilt");

  // --- 2. sustained mutation+query mix over the client API -----------------
  BatchLimits limits;
  limits.pool_threads = cfg.threads;
  BatchExecutor<SRt, IT, VT> exec(limits);
  auto backend = std::make_shared<mc::LocalBackend<SRt, IT, VT>>(exec);
  mc::MaskedClient<SRt, IT, VT> client(backend);
  auto session = client.open_session(
      {.max_in_flight = static_cast<std::size_t>(inflight)});

  const IT srows = 512;
  std::vector<std::shared_ptr<const Mat>> qa;
  std::vector<mc::StructureHandle<IT, VT>> handles;
  for (int k = 0; k < nstructures; ++k) {
    auto sb = std::make_shared<const Mat>(
        erdos_renyi<IT, VT>(srows, srows, degree, 81 + k));
    auto sm = std::make_shared<const Mat>(
        erdos_renyi<IT, VT>(srows, srows, degree + 2, 91 + k));
    qa.push_back(std::make_shared<const Mat>(
        erdos_renyi<IT, VT>(srows, srows, degree, 101 + k)));
    handles.push_back(session.register_structure(
        mc::StructureSpec<IT, VT>(std::move(sb)).mask(std::move(sm))));
  }
  // Warm every structure's plan once so round 1 already migrates.
  for (int k = 0; k < nstructures; ++k) {
    if (!session.submit(qa[static_cast<std::size_t>(k)],
                        handles[static_cast<std::size_t>(k)]).get().ok()) {
      std::fprintf(stderr, "warmup submit failed\n");
      return 1;
    }
  }

  std::uint64_t ops = 0;
  WallTimer mix_timer;
  for (int r = 0; r < rounds; ++r) {
    // One structure mutates per round; every structure answers queries.
    const auto k = static_cast<std::size_t>(r % nstructures);
    handles[k] = session.update(
        handles[k], front_batch(srows, srows / 64, static_cast<IT>(r)));
    ++ops;
    std::vector<std::future<mc::ClientResult<IT, VT>>> futures;
    for (int q = 0; q < nstructures; ++q) {
      futures.push_back(session.submit(qa[static_cast<std::size_t>(q)],
                                       handles[static_cast<std::size_t>(q)]));
    }
    for (auto& f : futures) {
      if (!f.get().ok()) {
        std::fprintf(stderr, "query against live structure failed\n");
        return 1;
      }
      ++ops;
    }
  }
  const double mix_seconds = mix_timer.seconds();
  const auto cache = exec.stats().cache;
  const double ops_rate = static_cast<double>(ops) / mix_seconds;

  std::printf("\nservice mix: %llu ops (updates + queries) in %.3fms — "
              "%.1f ops/s; %llu version transitions served by warm-plan "
              "migration\n",
              static_cast<unsigned long long>(ops), mix_seconds * 1e3,
              ops_rate,
              static_cast<unsigned long long>(cache.delta_migrations));

  BenchJsonFile artifact("micro_streaming", cfg);
  JsonObject record;
  record.field("rows", static_cast<long long>(rows))
      .field("degree", degree)
      .field("touched", static_cast<long long>(touched))
      .field("rounds", rounds)
      .field("structures", nstructures)
      .field("inflight", inflight)
      .field("patch_seconds", best_patch)
      .field("replan_seconds", best_replan)
      .field("patch_speedup", speedup)
      .field("out_rows_resymbolic",
             static_cast<long long>(stats.out_rows_resymbolic))
      .field("blocks_refreshed", stats.blocks_refreshed)
      .field("blocks_total", stats.blocks_total)
      .field("partition_kept", stats.partition_kept ? 1 : 0)
      .field("symbolic_patched", stats.symbolic_patched ? 1 : 0)
      .field("mix_ops_per_sec", ops_rate)
      .field("delta_migrations",
             static_cast<long long>(cache.delta_migrations));
  artifact.add(record);
  if (!artifact.write(cfg.resolved_json_path("BENCH_micro_streaming.json"))) {
    return 1;
  }

  // Acceptance: the patch beats the re-plan on a <=5% batch, untouched
  // blocks provably skipped re-symbolic, and the service mix migrated
  // plans across versions instead of planning cold.
  const bool ok = speedup >= 1.2 && stats.symbolic_patched &&
                  stats.partition_kept &&
                  stats.blocks_refreshed < stats.blocks_total &&
                  cache.delta_migrations > 0;
  return ok ? 0 : 2;
}
