// Google-benchmark microbenchmarks of the four accumulators (§5.2–§5.5):
// per-row prepare/insert/gather costs in isolation, outside the full SpGEMM
// driver. These expose the constants behind the paper's cost model: MSA's
// O(ncols) working set vs Hash's O(nnz(m)) table vs MCA's rank array vs the
// heap's log factor.
#include <benchmark/benchmark.h>

#include <vector>

#include "accum/hash.hpp"
#include "accum/kmerge_heap.hpp"
#include "accum/mca.hpp"
#include "accum/msa.hpp"
#include "common/random.hpp"

namespace {

using IT = int32_t;
using VT = double;
constexpr auto kAdd = [](VT a, VT b) { return a + b; };

// Synthetic row workload: mask of `mask_nnz` sorted keys out of `ncols`
// columns, `inserts` insertions of which ~half hit the mask.
struct RowWorkload {
  std::vector<IT> mask;
  std::vector<IT> keys;
  IT ncols;
};

RowWorkload make_workload(IT ncols, IT mask_nnz, IT inserts) {
  msx::Xoshiro256 rng(42);
  RowWorkload w;
  w.ncols = ncols;
  w.mask.reserve(static_cast<std::size_t>(mask_nnz));
  const IT stride = std::max<IT>(1, ncols / std::max<IT>(1, mask_nnz));
  for (IT k = 0; k < mask_nnz; ++k) w.mask.push_back(k * stride);
  for (IT i = 0; i < inserts; ++i) {
    if (i % 2 == 0) {
      w.keys.push_back(
          w.mask[rng.next_below(w.mask.size())]);
    } else {
      w.keys.push_back(static_cast<IT>(
          rng.next_below(static_cast<std::uint64_t>(ncols))));
    }
  }
  return w;
}

void BM_MSA_Row(benchmark::State& state) {
  const auto w = make_workload(static_cast<IT>(state.range(0)),
                               static_cast<IT>(state.range(1)), 4096);
  msx::MSAMasked<IT, VT> acc;
  acc.init(w.ncols);
  std::vector<IT> out_cols(w.mask.size());
  std::vector<VT> out_vals(w.mask.size());
  for (auto _ : state) {
    acc.prepare(w.mask);
    for (IT k : w.keys) {
      acc.insert(k, [] { return 1.0; }, kAdd);
    }
    benchmark::DoNotOptimize(
        acc.gather_and_reset(w.mask, out_cols.data(), out_vals.data()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.keys.size()));
}

void BM_Hash_Row(benchmark::State& state) {
  const auto w = make_workload(static_cast<IT>(state.range(0)),
                               static_cast<IT>(state.range(1)), 4096);
  msx::HashMasked<IT, VT> acc;
  std::vector<IT> out_cols(w.mask.size());
  std::vector<VT> out_vals(w.mask.size());
  for (auto _ : state) {
    acc.prepare(w.mask);
    for (IT k : w.keys) {
      acc.insert(k, [] { return 1.0; }, kAdd);
    }
    benchmark::DoNotOptimize(
        acc.gather(w.mask, out_cols.data(), out_vals.data()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.keys.size()));
}

void BM_MCA_Row(benchmark::State& state) {
  // MCA receives rank indices directly (the kernel's merge precomputes
  // them); model that with ranks cycling over the mask.
  const auto mask_nnz = static_cast<IT>(state.range(1));
  msx::MCAAccumulator<IT, VT> acc;
  std::vector<IT> mask;
  for (IT k = 0; k < mask_nnz; ++k) mask.push_back(k * 3);
  std::vector<IT> out_cols(mask.size());
  std::vector<VT> out_vals(mask.size());
  for (auto _ : state) {
    acc.prepare(mask_nnz);
    for (IT i = 0; i < 4096; ++i) {
      acc.insert(i % mask_nnz, [] { return 1.0; }, kAdd);
    }
    benchmark::DoNotOptimize(
        acc.gather(mask, out_cols.data(), out_vals.data()));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}

void BM_KMergeHeap_PushPop(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  msx::Xoshiro256 rng(7);
  std::vector<IT> cols(k);
  for (auto& c : cols) c = static_cast<IT>(rng.next_below(1 << 20));
  for (auto _ : state) {
    msx::KMergeHeap<IT> heap;
    heap.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      heap.push({cols[i], 0, 1, static_cast<IT>(i)});
    }
    while (!heap.empty()) {
      benchmark::DoNotOptimize(heap.top().col);
      heap.pop();
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(k));
}

}  // namespace

// args: (ncols, mask_nnz)
BENCHMARK(BM_MSA_Row)->Args({1 << 12, 64})->Args({1 << 16, 64})
    ->Args({1 << 20, 64})->Args({1 << 16, 1024});
BENCHMARK(BM_Hash_Row)->Args({1 << 12, 64})->Args({1 << 16, 64})
    ->Args({1 << 20, 64})->Args({1 << 16, 1024});
BENCHMARK(BM_MCA_Row)->Args({0, 64})->Args({0, 1024});
BENCHMARK(BM_KMergeHeap_PushPop)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

BENCHMARK_MAIN();
