// Shared infrastructure for the figure-reproduction benchmarks.
//
// Every bench binary:
//  * prints a header with system info and its effective parameters,
//  * runs with laptop-safe defaults,
//  * accepts env/CLI knobs (--reps/MSX_REPS, --scale-shift/MSX_SCALE_SHIFT,
//    --threads/MSX_THREADS, ...) to scale toward the paper's configurations.
#pragma once

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/system_info.hpp"
#include "core/masked_spgemm.hpp"
#include "core/options.hpp"
#include "core/plan.hpp"
#include "gen/suite.hpp"
#include "matrix/ops.hpp"
#include "profile/measure.hpp"
#include "profile/perf_profile.hpp"
#include "profile/table.hpp"
#include "semiring/semirings.hpp"

namespace msx::bench {

using IT = SuiteIndex;
using VT = SuiteValue;
using Mat = SuiteMatrix;

inline double nan_time() { return std::numeric_limits<double>::quiet_NaN(); }

struct SchemeSpec {
  std::string name;
  MaskedOptions opts;
};

// The paper's 12 proposed schemes: {MSA, Hash, MCA, Heap, HeapDot, Inner} ×
// {1P, 2P} (§8: "In total, we evaluate 14 algorithms, 10 of which are
// proposed in this work, 2 are based on the previous work").
inline std::vector<SchemeSpec> our_schemes(bool include_two_phase = true) {
  std::vector<SchemeSpec> schemes;
  for (auto algo : {MaskedAlgo::kMSA, MaskedAlgo::kHash, MaskedAlgo::kMCA,
                    MaskedAlgo::kHeap, MaskedAlgo::kHeapDot,
                    MaskedAlgo::kInner}) {
    MaskedOptions o;
    o.algo = algo;
    o.phases = PhaseMode::kOnePhase;
    schemes.push_back({scheme_name(algo, o.phases), o});
    if (include_two_phase) {
      o.phases = PhaseMode::kTwoPhase;
      schemes.push_back({scheme_name(algo, o.phases), o});
    }
  }
  return schemes;
}

// Schemes that support the complemented mask (everything but MCA).
inline std::vector<SchemeSpec> complement_schemes(bool include_two_phase) {
  std::vector<SchemeSpec> schemes;
  for (auto algo : {MaskedAlgo::kMSA, MaskedAlgo::kHash}) {
    MaskedOptions o;
    o.algo = algo;
    o.phases = PhaseMode::kOnePhase;
    schemes.push_back({scheme_name(algo, o.phases), o});
    if (include_two_phase) {
      o.phases = PhaseMode::kTwoPhase;
      schemes.push_back({scheme_name(algo, o.phases), o});
    }
  }
  return schemes;
}

// Common bench configuration gathered from CLI/environment.
struct BenchConfig {
  int reps = 3;
  int warmup = 1;
  int scale_shift = 0;   // workload-suite size knob
  int threads = 0;       // 0 = OpenMP default
  bool csv = false;      // emit machine-readable CSV blocks as well

  static BenchConfig parse(int argc, char** argv,
                           int default_scale_shift = 0) {
    ArgParser args(argc, argv);
    BenchConfig cfg;
    cfg.reps = static_cast<int>(args.get_int("reps", 3));
    cfg.warmup = static_cast<int>(args.get_int("warmup", 1));
    cfg.scale_shift =
        static_cast<int>(args.get_int("scale-shift", default_scale_shift));
    cfg.threads = static_cast<int>(args.get_int("threads", 0));
    cfg.csv = args.get_bool("csv", false);
    return cfg;
  }

  MeasureConfig measure() const {
    MeasureConfig m;
    m.warmup = warmup;
    m.reps = reps;
    return m;
  }
};

inline void print_header(const char* title, const char* paper_ref,
                         const BenchConfig& cfg) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("host: %s\n", system_info_line().c_str());
  std::printf("config: reps=%d warmup=%d scale_shift=%d threads=%d\n",
              cfg.reps, cfg.warmup, cfg.scale_shift,
              cfg.threads > 0 ? cfg.threads : max_threads());
  std::printf("==============================================================\n");
}

// Times one masked SpGEMM configuration; returns NaN if the scheme rejects
// the configuration (e.g. MCA × complement). Planned once outside the timed
// region: the measured kernel excludes algorithm resolution, B's CSC
// transpose and workspace allocation, matching the paper's assumption that
// B is already column-major for the pull-based schemes. The two-phase
// symbolic cache is invalidated inside the timed region so 2P reps pay the
// symbolic pass every call — otherwise the 1P-vs-2P comparisons of §8 would
// measure numeric-only 2P time.
template <class SR>
double time_masked_spgemm(const Mat& a, const Mat& b, const Mat& m,
                          MaskedOptions opts, const BenchConfig& cfg) {
  opts.threads = cfg.threads;
  try {
    auto plan = masked_plan<SR>(a, b, m, opts);
    const auto stats = measure(
        [&] {
          plan.invalidate_symbolic_cache();
          auto c = plan.execute();
          (void)c;
        },
        cfg.measure());
    return best_seconds(stats);
  } catch (const std::invalid_argument&) {
    return nan_time();
  }
}

// Triangle-counting preparation (§8.2): relabel by non-increasing degree and
// take the strictly-lower-triangular part; the timed kernel is then
// L .* (L·L) on plus-pair.
inline Mat prepare_tc_lower(const Mat& graph) {
  const auto perm = degree_order_desc(graph);
  return tril_strict(permute_symmetric(graph, perm));
}

// Renders the profile figures the way the paper's plots read: one series
// per scheme plus the ASCII plot, and optionally CSV.
inline void report_profiles(const ProfileInput& input, const BenchConfig& cfg,
                            double x_max = 2.4) {
  auto series = performance_profiles(input, x_max);
  std::printf("\nPerformance profile (fraction of %zu cases within factor x "
              "of best):\n",
              input.cases.size());
  print_profiles_ascii(series, x_max);
  if (cfg.csv) {
    std::printf("\nCSV:\n");
    print_profiles_csv(series);
  }
}

}  // namespace msx::bench
