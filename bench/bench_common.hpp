// Shared infrastructure for the figure-reproduction benchmarks.
//
// Every bench binary:
//  * prints a header with system info and its effective parameters,
//  * runs with laptop-safe defaults,
//  * accepts env/CLI knobs (--reps/MSX_REPS, --scale-shift/MSX_SCALE_SHIFT,
//    --threads/MSX_THREADS, ...) to scale toward the paper's configurations.
#pragma once

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/system_info.hpp"
#include "core/masked_spgemm.hpp"
#include "core/options.hpp"
#include "core/plan.hpp"
#include "gen/suite.hpp"
#include "matrix/ops.hpp"
#include "profile/measure.hpp"
#include "profile/perf_profile.hpp"
#include "profile/table.hpp"
#include "semiring/semirings.hpp"

namespace msx::bench {

using IT = SuiteIndex;
using VT = SuiteValue;
using Mat = SuiteMatrix;

inline double nan_time() { return std::numeric_limits<double>::quiet_NaN(); }

struct SchemeSpec {
  std::string name;
  MaskedOptions opts;
};

// The paper's 12 proposed schemes: {MSA, Hash, MCA, Heap, HeapDot, Inner} ×
// {1P, 2P} (§8: "In total, we evaluate 14 algorithms, 10 of which are
// proposed in this work, 2 are based on the previous work").
inline std::vector<SchemeSpec> our_schemes(bool include_two_phase = true) {
  std::vector<SchemeSpec> schemes;
  for (auto algo : {MaskedAlgo::kMSA, MaskedAlgo::kHash, MaskedAlgo::kMCA,
                    MaskedAlgo::kHeap, MaskedAlgo::kHeapDot,
                    MaskedAlgo::kInner}) {
    MaskedOptions o;
    o.algo = algo;
    o.phases = PhaseMode::kOnePhase;
    schemes.push_back({scheme_name(algo, o.phases), o});
    if (include_two_phase) {
      o.phases = PhaseMode::kTwoPhase;
      schemes.push_back({scheme_name(algo, o.phases), o});
    }
  }
  return schemes;
}

// Schemes that support the complemented mask (everything but MCA).
inline std::vector<SchemeSpec> complement_schemes(bool include_two_phase) {
  std::vector<SchemeSpec> schemes;
  for (auto algo : {MaskedAlgo::kMSA, MaskedAlgo::kHash}) {
    MaskedOptions o;
    o.algo = algo;
    o.phases = PhaseMode::kOnePhase;
    schemes.push_back({scheme_name(algo, o.phases), o});
    if (include_two_phase) {
      o.phases = PhaseMode::kTwoPhase;
      schemes.push_back({scheme_name(algo, o.phases), o});
    }
  }
  return schemes;
}

// Common bench configuration gathered from CLI/environment.
struct BenchConfig {
  int reps = 3;
  int warmup = 1;
  int scale_shift = 0;   // workload-suite size knob
  int threads = 0;       // 0 = OpenMP default
  bool csv = false;      // emit machine-readable CSV blocks as well
  bool json = false;     // write a BENCH_*.json artifact (--json[=path])
  std::string json_path; // explicit --json=path; empty = bench default name

  static BenchConfig parse(int argc, char** argv,
                           int default_scale_shift = 0) {
    ArgParser args(argc, argv);
    BenchConfig cfg;
    cfg.reps = static_cast<int>(args.get_int("reps", 3));
    cfg.warmup = static_cast<int>(args.get_int("warmup", 1));
    cfg.scale_shift =
        static_cast<int>(args.get_int("scale-shift", default_scale_shift));
    cfg.threads = static_cast<int>(args.get_int("threads", 0));
    cfg.csv = args.get_bool("csv", false);
    if (args.has("json")) {
      const std::string path = args.get_string("json", "");
      // Truthy/falsey values toggle the artifact (so MSX_JSON=0 disables
      // it); anything else is the output path. A bare --json keeps the
      // bench's default file name.
      if (path == "0" || path == "false" || path == "no" || path == "off") {
        cfg.json = false;
      } else {
        cfg.json = true;
        if (path != "" && path != "1" && path != "true" && path != "yes" &&
            path != "on") {
          cfg.json_path = path;
        }
      }
    }
    return cfg;
  }

  MeasureConfig measure() const {
    MeasureConfig m;
    m.warmup = warmup;
    m.reps = reps;
    return m;
  }

  // Output path for the JSON artifact; empty when --json was not given.
  std::string resolved_json_path(const char* dflt) const {
    if (!json) return {};
    return json_path.empty() ? dflt : json_path;
  }
};

// --- JSON artifacts (CI perf trajectory; see .github/workflows/ci.yml) ---
//
// A BENCH_*.json file is {"meta": {"bench", "host", "threads", "reps",
// "warmup", "scale_shift"}, "records": [{...}, ...]}. Flat records,
// string/number/null values — just enough structure for a dashboard or a jq
// query, no dependency.

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// One flat JSON object, built field by field. NaN (the "scheme rejected this
// configuration" marker) becomes null — JSON has no NaN literal.
class JsonObject {
 public:
  JsonObject& field(const char* key, const std::string& v) {
    return raw(key, "\"" + json_escape(v) + "\"");
  }
  JsonObject& field(const char* key, const char* v) {
    return field(key, std::string(v));
  }
  JsonObject& field(const char* key, double v) {
    if (std::isnan(v)) return raw(key, "null");
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return raw(key, buf);
  }
  JsonObject& field(const char* key, long long v) {
    return raw(key, std::to_string(v));
  }
  JsonObject& field(const char* key, int v) {
    return field(key, static_cast<long long>(v));
  }
  std::string str() const { return "{" + body_ + "}"; }

 private:
  JsonObject& raw(const char* key, const std::string& value) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + json_escape(key) + "\":" + value;
    return *this;
  }
  std::string body_;
};

// Collects records and writes the artifact file.
class BenchJsonFile {
 public:
  BenchJsonFile(const char* bench, const BenchConfig& cfg) {
    meta_.field("bench", bench)
        .field("host", system_info_line())
        .field("threads", cfg.threads > 0 ? cfg.threads : max_threads())
        .field("reps", cfg.reps)
        .field("warmup", cfg.warmup)
        .field("scale_shift", cfg.scale_shift);
  }

  void add(const JsonObject& record) { records_.push_back(record.str()); }

  // Writes to `path` (no-op on empty path, e.g. --json not given). Returns
  // false and reports on I/O failure so CI fails loudly, not with a missing
  // artifact.
  bool write(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write JSON artifact: %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\"meta\":%s,\"records\":[", meta_.str().c_str());
    for (std::size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "%s%s", i == 0 ? "" : ",", records_[i].c_str());
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("\nJSON artifact written to %s (%zu records)\n", path.c_str(),
                records_.size());
    return true;
  }

 private:
  JsonObject meta_;
  std::vector<std::string> records_;
};

inline void print_header(const char* title, const char* paper_ref,
                         const BenchConfig& cfg) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("host: %s\n", system_info_line().c_str());
  std::printf("config: reps=%d warmup=%d scale_shift=%d threads=%d\n",
              cfg.reps, cfg.warmup, cfg.scale_shift,
              cfg.threads > 0 ? cfg.threads : max_threads());
  std::printf("==============================================================\n");
}

// Times one masked SpGEMM configuration; returns NaN if the scheme rejects
// the configuration (e.g. MCA × complement). Planned once outside the timed
// region: the measured kernel excludes algorithm resolution, B's CSC
// transpose and workspace allocation, matching the paper's assumption that
// B is already column-major for the pull-based schemes. The two-phase
// symbolic cache is invalidated inside the timed region so 2P reps pay the
// symbolic pass every call — otherwise the 1P-vs-2P comparisons of §8 would
// measure numeric-only 2P time. The flop-balanced row partition is
// deliberately NOT invalidated: it is schedule infrastructure shared by both
// phase modes, and the iterative workloads these benches model reuse it
// across calls (the point of caching it in the plan). Benches that must
// charge its build per call can add plan.invalidate_partition_cache().
template <class SR>
double time_masked_spgemm(const Mat& a, const Mat& b, const Mat& m,
                          MaskedOptions opts, const BenchConfig& cfg) {
  opts.threads = cfg.threads;
  try {
    auto plan = masked_plan<SR>(a, b, m, opts);
    const auto stats = measure(
        [&] {
          plan.invalidate_symbolic_cache();
          auto c = plan.execute();
          (void)c;
        },
        cfg.measure());
    return best_seconds(stats);
  } catch (const std::invalid_argument&) {
    return nan_time();
  }
}

// Triangle-counting preparation (§8.2): relabel by non-increasing degree and
// take the strictly-lower-triangular part; the timed kernel is then
// L .* (L·L) on plus-pair.
inline Mat prepare_tc_lower(const Mat& graph) {
  const auto perm = degree_order_desc(graph);
  return tril_strict(permute_symmetric(graph, perm));
}

// Renders the profile figures the way the paper's plots read: one series
// per scheme plus the ASCII plot, and optionally CSV.
inline void report_profiles(const ProfileInput& input, const BenchConfig& cfg,
                            double x_max = 2.4) {
  auto series = performance_profiles(input, x_max);
  std::printf("\nPerformance profile (fraction of %zu cases within factor x "
              "of best):\n",
              input.cases.size());
  print_profiles_ascii(series, x_max);
  if (cfg.csv) {
    std::printf("\nCSV:\n");
    print_profiles_csv(series);
  }
}

}  // namespace msx::bench
