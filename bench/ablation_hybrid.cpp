// Ablation (§9 future work): the per-row Hybrid selector vs fixed schemes.
//
// On workloads whose rows mix pull-friendly (heavy input row, thin mask row)
// and push-friendly (thin input row, heavy mask row) profiles, any fixed
// scheme is wrong for half the rows; the Hybrid kernel picks per row.
#include <cstdio>

#include "bench_common.hpp"
#include "gen/erdos_renyi.hpp"
#include "matrix/build.hpp"

using namespace msx;
using namespace msx::bench;

namespace {

// Adversarial workload: alternating row profiles.
Mat mixed_matrix(IT n, IT heavy, IT light, std::uint64_t seed, bool invert) {
  std::vector<Triple<IT, VT>> t;
  Xoshiro256 rng(seed);
  for (IT i = 0; i < n; ++i) {
    const bool is_heavy = ((i % 2 == 0) != invert);
    const IT deg = is_heavy ? heavy : light;
    for (IT k = 0; k < deg; ++k) {
      t.push_back({i, static_cast<IT>(rng.next_below(
                          static_cast<std::uint64_t>(n))),
                   1.0});
    }
  }
  return csr_from_triples<IT, VT>(n, n, std::move(t), DuplicatePolicy::kLast);
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv);
  print_header("ablation_hybrid — per-row hybrid vs fixed schemes",
               "§9 (future work: hybrid algorithms)", cfg);

  const IT n = IT{1} << (12 + cfg.scale_shift);
  auto a = mixed_matrix(n, 64, 2, 1, false);
  auto b = erdos_renyi<IT, VT>(n, n, 8, 2);
  auto m = mixed_matrix(n, 64, 2, 3, true);  // mask heavy where A is light
  auto b_csc = csr_to_csc(b);

  Table table({"scheme", "seconds", "vs_hybrid"});
  double hybrid_t = 0.0;
  std::vector<std::pair<std::string, double>> results;
  for (auto algo : {MaskedAlgo::kHybrid, MaskedAlgo::kMSA, MaskedAlgo::kHash,
                    MaskedAlgo::kMCA, MaskedAlgo::kInner, MaskedAlgo::kHeap}) {
    MaskedOptions o;
    o.algo = algo;
    o.threads = cfg.threads;
    const auto stats = measure(
        [&] {
          auto c = masked_spgemm_with_csc<PlusTimes<VT>>(a, b, b_csc, m, o);
          (void)c;
        },
        cfg.measure());
    const double t = best_seconds(stats);
    if (algo == MaskedAlgo::kHybrid) hybrid_t = t;
    results.emplace_back(scheme_name(algo, PhaseMode::kOnePhase), t);
  }
  for (const auto& [name, t] : results) {
    table.add_row({name, Table::num(t, 5), Table::num(t / hybrid_t, 2)});
  }
  table.print();
  std::printf("\nExpected shape: Hybrid at or near the best fixed scheme on\n"
              "mixed-profile rows; fixed schemes pay on their bad half.\n");
  return 0;
}
