// Figure 10: Triangle Counting GFLOPS as a function of R-MAT scale.
//
// Paper: scales 8–20, Graph500 parameters, GFLOPS = 2·flops/time; MSA-1P
// obtains the highest rates, Hash-1P and MCA-1P similar trends; the SS:GB
// baselines start far behind and SS:SAXPY closes in at large scales.
#include <cstdio>

#include "baseline/ssgb_like.hpp"
#include "bench_common.hpp"
#include "core/flops.hpp"
#include "gen/rmat.hpp"

using namespace msx;
using namespace msx::bench;

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv);
  ArgParser args(argc, argv);
  const int scale_lo = static_cast<int>(args.get_int("rmat-lo", 8));
  const int scale_hi = static_cast<int>(args.get_int("rmat-hi", 13));
  print_header("fig10_tc_rmat_scale — TC GFLOPS vs R-MAT scale",
               "Fig. 10 (§8.2)", cfg);

  std::vector<SchemeSpec> schemes;
  for (auto algo : {MaskedAlgo::kMSA, MaskedAlgo::kHash, MaskedAlgo::kMCA}) {
    MaskedOptions o;
    o.algo = algo;
    schemes.push_back({scheme_name(algo, PhaseMode::kOnePhase), o});
  }

  std::vector<std::string> headers{"scale", "n", "nnz(L)", "mflops"};
  for (const auto& s : schemes) headers.push_back(s.name + "_gflops");
  headers.push_back("SS:SAXPY_gflops");
  headers.push_back("SS:DOT_gflops");
  Table table(headers);

  for (int scale = scale_lo; scale <= scale_hi; ++scale) {
    const auto graph = rmat<IT, VT>(scale, 42);
    const auto lower = prepare_tc_lower(graph);
    const std::size_t mult = total_flops(lower, lower);

    std::vector<std::string> row{std::to_string(scale),
                                 std::to_string(graph.nrows()),
                                 std::to_string(lower.nnz()),
                                 Table::num(static_cast<double>(mult) / 1e6, 2)};
    for (const auto& s : schemes) {
      const double t = time_masked_spgemm<PlusPair<std::int64_t>>(
          lower, lower, lower, s.opts, cfg);
      row.push_back(Table::num(gflops(mult, t), 3));
    }
    {
      const auto stats = measure(
          [&] {
            auto c = ss_saxpy_like<PlusPair<std::int64_t>>(lower, lower, lower);
            (void)c;
          },
          cfg.measure());
      row.push_back(Table::num(gflops(mult, best_seconds(stats)), 3));
    }
    {
      const auto stats = measure(
          [&] {
            auto c = ss_dot_like<PlusPair<std::int64_t>>(lower, lower, lower);
            (void)c;
          },
          cfg.measure());
      row.push_back(Table::num(gflops(mult, best_seconds(stats)), 3));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\nExpected shape (paper Fig. 10): MSA-1P on top, Hash/MCA-1P\n"
              "close with the same growth trend; baselines weakest at small\n"
              "scales with SS:SAXPY catching up as scale grows.\n");
  return 0;
}
