// Figure 13: k-truss — our best schemes vs the SS:GB-like baselines.
//
// Paper: MSA-1P and Inner-1P perform significantly better than the SS:GB
// schemes on both platforms.
#include <cstdio>

#include "apps/ktruss.hpp"
#include "baseline/ssgb_like.hpp"
#include "bench_common.hpp"
#include "core/flops.hpp"
#include "matrix/ops.hpp"

using namespace msx;
using namespace msx::bench;

namespace {

// k-truss loop with the Masked SpGEMM swapped for a baseline; returns the
// summed baseline-call seconds (mirrors KTrussResult.seconds_spgemm).
double ktruss_with_baseline(const Mat& graph, int k, bool dot) {
  using SR = PlusPair<std::int64_t>;
  CSRMatrix<IT, std::int64_t> a(
      graph.nrows(), graph.ncols(),
      std::vector<IT>(graph.rowptr().begin(), graph.rowptr().end()),
      std::vector<IT>(graph.colidx().begin(), graph.colidx().end()),
      std::vector<std::int64_t>(graph.nnz(), 1));
  const auto need = static_cast<std::int64_t>(k - 2);
  double total = 0.0;
  while (true) {
    WallTimer t;
    auto support = dot ? ss_dot_like<SR>(a, a, a)
                       : ss_saxpy_like<SR>(a, a, a);
    total += t.seconds();
    auto pruned = filter(support, [&](IT, IT, const std::int64_t& v) {
      return v >= need;
    });
    const bool converged = (pruned.nnz() == a.nnz());
    a = spones(pruned);
    if (converged || a.nnz() == 0) break;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv, /*default_scale_shift=*/-2);
  ArgParser args(argc, argv);
  const int k = static_cast<int>(args.get_int("k", 5));
  print_header("fig13_ktruss_vs_baselines — MSA/Inner/Hash-1P vs SS:GB-like",
               "Fig. 13 (§8.3)", cfg);

  std::vector<SchemeSpec> schemes;
  for (auto algo :
       {MaskedAlgo::kMSA, MaskedAlgo::kInner, MaskedAlgo::kHash,
        MaskedAlgo::kMCA}) {
    MaskedOptions o;
    o.algo = algo;
    schemes.push_back({scheme_name(algo, PhaseMode::kOnePhase), o});
  }

  ProfileInput input;
  for (const auto& s : schemes) input.schemes.push_back(s.name);
  input.schemes.push_back("SS:SAXPY");
  input.schemes.push_back("SS:DOT");
  input.seconds.assign(input.schemes.size(), {});

  for (const auto& workload : graph_suite(cfg.scale_shift)) {
    const auto graph = workload.make();
    input.cases.push_back(workload.name);
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      MaskedOptions o = schemes[s].opts;
      o.threads = cfg.threads;
      double best = nan_time();
      for (int rep = 0; rep < cfg.reps; ++rep) {
        const double t = ktruss(graph, k, o).seconds_spgemm;
        if (std::isnan(best) || t < best) best = t;
      }
      input.seconds[s].push_back(best);
    }
    for (int b = 0; b < 2; ++b) {
      double best = nan_time();
      for (int rep = 0; rep < cfg.reps; ++rep) {
        const double t = ktruss_with_baseline(graph, k, /*dot=*/b == 1);
        if (std::isnan(best) || t < best) best = t;
      }
      input.seconds[schemes.size() + static_cast<std::size_t>(b)].push_back(
          best);
    }
  }
  report_profiles(input, cfg, /*x_max=*/1.8);
  std::printf("\nExpected shape (paper Fig. 13): MSA-1P and Inner-1P\n"
              "significantly ahead of both baselines.\n");
  return 0;
}
