// Figure 14: k-truss GFLOPS vs R-MAT scale.
//
// Paper: Inner and SS:DOT increase their rate well with scale (pull-based
// algorithms shine: each pruning round sparsifies the mask); "algorithms
// deemed inefficient for plain SpGEMM can attain quite good performance when
// mask becomes part of the multiplication".
#include <cstdio>

#include "apps/ktruss.hpp"
#include "bench_common.hpp"
#include "core/flops.hpp"
#include "gen/rmat.hpp"

using namespace msx;
using namespace msx::bench;

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv);
  ArgParser args(argc, argv);
  const int scale_lo = static_cast<int>(args.get_int("rmat-lo", 8));
  const int scale_hi = static_cast<int>(args.get_int("rmat-hi", 12));
  const int k = static_cast<int>(args.get_int("k", 5));
  print_header("fig14_ktruss_rmat_scale — k-truss GFLOPS vs R-MAT scale",
               "Fig. 14 (§8.3)", cfg);
  std::printf("k = %d; metric: sum(flops of all Masked SpGEMM) / total "
              "Masked SpGEMM time\n\n", k);

  std::vector<SchemeSpec> schemes;
  for (auto algo : {MaskedAlgo::kMSA, MaskedAlgo::kHash, MaskedAlgo::kInner,
                    MaskedAlgo::kMCA}) {
    MaskedOptions o;
    o.algo = algo;
    schemes.push_back({scheme_name(algo, PhaseMode::kOnePhase), o});
  }

  std::vector<std::string> headers{"scale", "n", "iterations"};
  for (const auto& s : schemes) headers.push_back(s.name + "_gflops");
  Table table(headers);

  for (int scale = scale_lo; scale <= scale_hi; ++scale) {
    const auto graph = rmat<IT, VT>(scale, 42);
    int iters = 0;
    std::vector<std::string> row{std::to_string(scale),
                                 std::to_string(graph.nrows()), ""};
    for (const auto& s : schemes) {
      MaskedOptions o = s.opts;
      o.threads = cfg.threads;
      double best_rate = 0.0;
      for (int rep = 0; rep < cfg.reps; ++rep) {
        const auto r = ktruss(graph, k, o);
        iters = r.iterations;
        best_rate = std::max(best_rate, gflops(r.multiplies, r.seconds_spgemm));
      }
      row.push_back(Table::num(best_rate, 3));
    }
    row[2] = std::to_string(iters);
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\nExpected shape (paper Fig. 14): pull-based Inner improves\n"
              "its GFLOPS rate with scale and becomes competitive with (or\n"
              "better than) the push-based schemes.\n");
  return 0;
}
