// Figure 12: k-truss (k=5) — performance profiles of the proposed schemes.
//
// Paper: MSA performs best on Haswell; Inner is competitive (the mask gets
// sparser as pruning proceeds); heap-based methods are noncompetitive. The
// metric follows §8.3: total time of all Masked SpGEMM calls.
#include <cstdio>

#include "apps/ktruss.hpp"
#include "bench_common.hpp"

using namespace msx;
using namespace msx::bench;

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv, /*default_scale_shift=*/-2);
  ArgParser args(argc, argv);
  const int k = static_cast<int>(args.get_int("k", 5));
  print_header("fig12_ktruss_profiles — k-truss, our schemes",
               "Fig. 12 (§8.3)", cfg);
  std::printf("k = %d\n", k);

  const auto schemes = our_schemes(/*include_two_phase=*/true);
  ProfileInput input;
  for (const auto& s : schemes) input.schemes.push_back(s.name);
  input.seconds.assign(schemes.size(), {});

  Table table({"graph", "iterations", "kept_edges", "best_scheme"});
  for (const auto& workload : graph_suite(cfg.scale_shift)) {
    const auto graph = workload.make();
    input.cases.push_back(workload.name);

    std::string best;
    double best_t = nan_time();
    int iters = 0;
    std::size_t kept = 0;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      MaskedOptions o = schemes[s].opts;
      o.threads = cfg.threads;
      double t = nan_time();
      try {
        // Measure the summed Masked-SpGEMM time inside the k-truss solve;
        // best over reps.
        for (int rep = 0; rep < cfg.reps; ++rep) {
          auto r = ktruss(graph, k, o);
          iters = r.iterations;
          kept = r.remaining_edges;
          if (std::isnan(t) || r.seconds_spgemm < t) t = r.seconds_spgemm;
        }
      } catch (const std::invalid_argument&) {
        t = nan_time();
      }
      input.seconds[s].push_back(t);
      if (!std::isnan(t) && (std::isnan(best_t) || t < best_t)) {
        best_t = t;
        best = schemes[s].name;
      }
    }
    table.add_row({workload.name, std::to_string(iters),
                   std::to_string(kept), best});
  }
  table.print();
  report_profiles(input, cfg, /*x_max=*/1.8);
  std::printf("\nExpected shape (paper Fig. 12): MSA-1P leads; Inner is\n"
              "competitive because pruning sparsifies the mask; 1P > 2P;\n"
              "heap-based schemes noncompetitive.\n");
  return 0;
}
