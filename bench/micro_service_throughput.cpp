// micro_service_throughput — end-to-end requests/sec of the sharded service
// (MaskedClient session → wire protocol → loopback shards →
// BatchExecutor/PlanCache) versus a sequential loop of stateless
// masked_spgemm calls (ISSUE 4 acceptance: ≥2 shards, results bit-identical,
// ≥90% warm plan-cache hit rate on repeated structures; ISSUE 5 retrofit:
// the traffic rides the pipelined client, not blocking router calls).
//
//   ./bench_micro_service_throughput [--requests N] [--structures K]
//       [--shards S] [--inflight D] [--threads T] [--reps R] [--json[=PATH]]
//
// The workload models service traffic: K recurring structures requested
// round-robin with fresh numeric values. Each structure's stationary
// operands are registered once per shard connection; per request only the
// refreshed A crosses the wire, and the shard's warm PlanCache serves the
// product. Structure affinity (the routing point) keeps every structure on
// one shard.
#include <cstdint>
#include <cstdio>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "client/client.hpp"
#include "client/sharded_backend.hpp"
#include "gen/erdos_renyi.hpp"
#include "service/shard.hpp"

using namespace msx;
using namespace msx::bench;
using namespace msx::service;
namespace mc = msx::client;

namespace {

struct Catalog {
  std::vector<Mat> a;
  std::vector<std::shared_ptr<const Mat>> b, m;
};

Catalog make_catalog(int k, int scale_shift) {
  const IT base = static_cast<IT>(128 << (scale_shift > 0 ? scale_shift : 0));
  Catalog c;
  for (int i = 0; i < k; ++i) {
    const IT rows = base + 24 * static_cast<IT>(i);
    c.a.push_back(erdos_renyi<IT, VT>(rows, rows, 6, 411 + i));
    c.b.push_back(std::make_shared<const Mat>(
        erdos_renyi<IT, VT>(rows, rows, 6, 421 + i)));
    c.m.push_back(std::make_shared<const Mat>(
        erdos_renyi<IT, VT>(rows, rows, 8, 431 + i)));
  }
  return c;
}

void refresh(Mat& mat, int salt) {
  auto vals = mat.mutable_values();
  for (std::size_t p = 0; p < vals.size(); ++p) {
    vals[p] = 1.0 + static_cast<double>((p + static_cast<std::size_t>(salt)) % 5);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv);
  ArgParser args(argc, argv);
  const int requests = static_cast<int>(args.get_int("requests", 96));
  const int nstructures = static_cast<int>(args.get_int("structures", 12));
  const int nshards = static_cast<int>(args.get_int("shards", 4));
  const int inflight = static_cast<int>(args.get_int("inflight", 16));
  print_header("micro_service_throughput — sharded service (client session + "
               "wire + loopback shards) vs sequential masked_spgemm loop",
               "ISSUE 4 (sharded service layer) / ISSUE 5 (client API)", cfg);

  using SRt = PlusTimes<VT>;
  auto catalog = make_catalog(nstructures, cfg.scale_shift);
  MaskedOptions opts;

  Table table({"path", "seconds", "requests/s", "speedup"});
  BenchJsonFile artifact("micro_service_throughput", cfg);

  double best_seq = nan_time();
  double best_svc = nan_time();
  double warm_rate = 0.0;
  std::vector<std::uint64_t> routed;

  for (int rep = 0; rep < std::max(1, cfg.reps); ++rep) {
    // --- sequential baseline ---
    WallTimer seq_timer;
    std::size_t seq_nnz = 0;
    for (int r = 0; r < requests; ++r) {
      const auto s = static_cast<std::size_t>(r % nstructures);
      refresh(catalog.a[s], r);
      seq_nnz +=
          masked_spgemm<SRt>(catalog.a[s], *catalog.b[s], *catalog.m[s], opts)
              .nnz();
    }
    const double seq_seconds = seq_timer.seconds();

    // --- sharded service via the pipelined client ---
    ShardConfig shard_cfg;
    shard_cfg.limits.pool_threads = cfg.threads;
    std::vector<std::unique_ptr<ServiceShard<SRt, IT, VT>>> shards;
    std::vector<ShardEndpoint> endpoints;
    for (int i = 0; i < nshards; ++i) {
      shards.push_back(
          std::make_unique<ServiceShard<SRt, IT, VT>>(shard_cfg));
      auto listener = std::make_unique<LoopbackListener>();
      auto* raw = listener.get();
      shards.back()->serve(std::move(listener));
      endpoints.push_back(ShardEndpoint{"shard-" + std::to_string(i),
                                        [raw] { return raw->connect(); }});
    }
    auto backend =
        std::make_shared<mc::ShardedBackend<SRt, IT, VT>>(endpoints);
    mc::MaskedClient<SRt, IT, VT> client(backend);
    auto session = client.open_session(
        {.max_in_flight = static_cast<std::size_t>(inflight)});

    // Register every structure, then verify correctness once: service
    // result vs direct call, bit-identical.
    std::vector<mc::StructureHandle<IT, VT>> handles;
    for (std::size_t s = 0; s < catalog.a.size(); ++s) {
      handles.push_back(session.register_structure(
          mc::StructureSpec<IT, VT>(catalog.b[s]).mask(catalog.m[s])));
      const auto want =
          masked_spgemm<SRt>(catalog.a[s], *catalog.b[s], *catalog.m[s], opts);
      auto got = session.submit(catalog.a[s], handles[s]).get();
      if (!got.ok() || !(got.matrix == want)) {
        std::fprintf(stderr, "service result mismatch on structure %zu\n", s);
        return 1;
      }
    }
    // Stats snapshot after the warm pass: the timed round's hit rate is the
    // delta beyond it.
    std::uint64_t warm_hits = 0, warm_lookups = 0;
    for (int i = 0; i < nshards; ++i) {
      const auto st = backend->shard_stats(static_cast<std::size_t>(i));
      warm_hits += st.cache_hits;
      warm_lookups += st.cache_hits + st.cache_misses + st.cache_grows;
    }

    WallTimer svc_timer;
    std::size_t svc_nnz = 0;
    {
      std::vector<std::future<mc::ClientResult<IT, VT>>> futures;
      futures.reserve(static_cast<std::size_t>(requests));
      for (int r = 0; r < requests; ++r) {
        const auto s = static_cast<std::size_t>(r % nstructures);
        refresh(catalog.a[s], r);
        futures.push_back(session.submit(catalog.a[s], handles[s]));
      }
      for (auto& f : futures) svc_nnz += f.get().value().nnz();
    }
    const double svc_seconds = svc_timer.seconds();

    // Result patterns depend only on structure (values here are positive,
    // no cancellation), so the nnz totals of both passes must agree.
    if (svc_nnz != seq_nnz) {
      std::fprintf(stderr, "service nnz mismatch: %zu vs %zu\n", svc_nnz,
                   seq_nnz);
      return 1;
    }

    std::uint64_t hits = 0, lookups = 0;
    for (int i = 0; i < nshards; ++i) {
      const auto st = backend->shard_stats(static_cast<std::size_t>(i));
      hits += st.cache_hits;
      lookups += st.cache_hits + st.cache_misses + st.cache_grows;
    }
    warm_rate = lookups > warm_lookups
                    ? static_cast<double>(hits - warm_hits) /
                          static_cast<double>(lookups - warm_lookups)
                    : 0.0;
    routed = backend->stats().routed;

    if (std::isnan(best_seq) || seq_seconds < best_seq) best_seq = seq_seconds;
    if (std::isnan(best_svc) || svc_seconds < best_svc) best_svc = svc_seconds;
  }

  // Client-observed submit->completion percentiles for the service path
  // (the sequential baseline never goes through a Session). Zero when
  // MSX_METRICS=0.
  double lat_p50 = 0.0, lat_p95 = 0.0, lat_p99 = 0.0;
  if (const obs::Histogram* h = obs::Registry::global().find_histogram(
          "msx_client_request_seconds");
      h != nullptr && h->count() > 0) {
    lat_p50 = h->quantile(0.50);
    lat_p95 = h->quantile(0.95);
    lat_p99 = h->quantile(0.99);
  }

  const double seq_rate = requests / best_seq;
  const double svc_rate = requests / best_svc;
  const double speedup = best_seq / best_svc;
  table.add_row({"sequential", Table::num(best_seq * 1e3, 3) + "ms",
                 Table::num(seq_rate, 1), "1.00x"});
  table.add_row({"service", Table::num(best_svc * 1e3, 3) + "ms",
                 Table::num(svc_rate, 1), Table::num(speedup, 2) + "x"});
  table.print();

  std::printf("\n%d requests over %d structures; %d shards, %d in flight; "
              "warm plan-cache hit rate %.0f%% (acceptance: >=90%%)\n",
              requests, nstructures, nshards, inflight, 100.0 * warm_rate);
  std::printf("affinity spread (ok responses per shard):");
  for (std::size_t i = 0; i < routed.size(); ++i) {
    std::printf(" %llu", static_cast<unsigned long long>(routed[i]));
  }
  std::printf("\n");
  std::printf("service request latency p50 %.3fms / p95 %.3fms / "
              "p99 %.3fms\n",
              lat_p50 * 1e3, lat_p95 * 1e3, lat_p99 * 1e3);

  JsonObject record;
  record.field("requests", requests)
      .field("structures", nstructures)
      .field("shards", nshards)
      .field("inflight", inflight)
      .field("sequential_seconds", best_seq)
      .field("service_seconds", best_svc)
      .field("requests_per_sec_sequential", seq_rate)
      .field("requests_per_sec_service", svc_rate)
      .field("speedup", speedup)
      .field("warm_hit_rate", warm_rate)
      .field("latency_p50_seconds", lat_p50)
      .field("latency_p95_seconds", lat_p95)
      .field("latency_p99_seconds", lat_p99);
  artifact.add(record);
  if (!artifact.write(
          cfg.resolved_json_path("BENCH_micro_service_throughput.json"))) {
    return 1;
  }
  return warm_rate >= 0.9 ? 0 : 2;
}
