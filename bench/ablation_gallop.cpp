// Ablation (extension): two-pointer vs galloping intersection inside the
// pull-based Inner algorithm.
//
// The two-pointer merge is O(|u| + |B col|); galloping is
// O(min log max) — better when the operand lengths are strongly
// asymmetric, worse (by constant factors) when they are balanced.
#include <cstdio>

#include "bench_common.hpp"
#include "gen/erdos_renyi.hpp"

using namespace msx;
using namespace msx::bench;

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv);
  print_header("ablation_gallop — Inner: two-pointer vs galloping dots",
               "§4.1 (Inner) intersection-strategy extension", cfg);

  const IT n = IT{1} << (12 + cfg.scale_shift);
  Table table({"deg_A", "deg_B", "two_ptr_ms", "gallop_ms", "gallop/two_ptr"});
  const std::pair<IT, IT> shapes[] = {
      {2, 2},    // both short: two-pointer should win
      {2, 128},  // short rows vs long columns: gallop should win
      {128, 2},  // long rows vs short columns: gallop should win
      {32, 32},  // balanced mid-size
  };
  for (const auto& [da, db] : shapes) {
    auto a = erdos_renyi<IT, VT>(n, n, da, 1);
    auto b = erdos_renyi<IT, VT>(n, n, db, 2);
    auto m = erdos_renyi<IT, VT>(n, n, 8, 3);
    auto b_csc = csr_to_csc(b);
    double times[2];
    for (int g = 0; g < 2; ++g) {
      MaskedOptions o;
      o.algo = MaskedAlgo::kInner;
      o.inner_gallop = (g == 1);
      o.threads = cfg.threads;
      const auto stats = measure(
          [&] {
            auto c = masked_spgemm_with_csc<PlusTimes<VT>>(a, b, b_csc, m, o);
            (void)c;
          },
          cfg.measure());
      times[g] = best_seconds(stats);
    }
    table.add_row({std::to_string(da), std::to_string(db),
                   Table::num(times[0] * 1e3, 3),
                   Table::num(times[1] * 1e3, 3),
                   Table::num(times[1] / times[0], 2)});
  }
  table.print();
  std::printf("\nExpected shape: galloping pays on asymmetric operand\n"
              "lengths, two-pointer on balanced ones.\n");
  return 0;
}
