// Ablation (§2.2 challenge iv): row-scheduling policies under load imbalance.
//
// The paper parallelizes coarsely across rows, noting "plenty of
// coarse-grained parallelism across rows to avoid any load imbalance". The
// OpenMP schedules hand out *rows*; on skewed (R-MAT) degree distributions a
// handful of hub rows still serialize the tail. Schedule::kFlopBalanced
// (ISSUE 2) partitions by estimated *flops* instead — this ablation compares
// all four policies per algorithm and reports the flop-balanced speedup over
// the best row-oriented OpenMP schedule.
//
//   ./bench_ablation_schedule [--scale-shift N] [--reps R] [--threads T]
//                             [--algos msa,hash,heap] [--json[=PATH]]
//
// --json writes BENCH_ablation_schedule.json for the CI bench-artifacts
// step. RMAT scale is 12 + scale-shift (use --scale-shift 6 for the paper
// scale-18 configuration). Timings follow the plan/execute model: the
// flop-balanced partition is built once at warmup and reused across reps
// (iterative-workload usage); the 2P symbolic cache, by contrast, is
// invalidated per rep (see time_masked_spgemm).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"

using namespace msx;
using namespace msx::bench;

namespace {

std::vector<MaskedAlgo> parse_algos(int argc, char** argv) {
  ArgParser args(argc, argv);
  std::vector<MaskedAlgo> algos;
  std::stringstream list(args.get_string("algos", "msa,hash,heap"));
  std::string name;
  while (std::getline(list, name, ',')) {
    if (!name.empty()) algos.push_back(algo_from_string(name));
  }
  return algos;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv);
  const auto algos = parse_algos(argc, argv);
  print_header(
      "ablation_schedule — static/dynamic/guided/flop-balanced scheduling",
      "§2.2 (load imbalance) / §3 (row parallelism) / ISSUE 2", cfg);

  const int scale = 12 + cfg.scale_shift;
  auto skewed = rmat<IT, VT>(scale, 7);
  auto uniform = erdos_renyi<IT, VT>(skewed.nrows(), skewed.nrows(),
                                     static_cast<IT>(16), 8);
  // Tiny workload: its work estimate sits below kAutoScheduleTinyWork, so
  // the kAuto column should track static (partition build skipped), while
  // on the large workloads it should track flopbal. This is the measurement
  // behind the ~1e5 cutoff (core/options.hpp).
  auto tiny = erdos_renyi<IT, VT>(512, 512, static_cast<IT>(6), 9);
  std::printf("rmat scale %d: %lld rows, %zu nnz; tiny er: %lld rows, %zu "
              "nnz\n",
              scale, static_cast<long long>(skewed.nrows()), skewed.nnz(),
              static_cast<long long>(tiny.nrows()), tiny.nnz());

  const std::vector<Schedule> schedules{
      Schedule::kStatic, Schedule::kDynamic, Schedule::kGuided,
      Schedule::kFlopBalanced, Schedule::kAuto};

  Table table({"graph", "algo", "static", "dynamic", "guided", "flopbal",
               "auto", "best-omp/flopbal"});
  BenchJsonFile artifact("ablation_schedule", cfg);

  struct Workload {
    const char* name;
    const Mat* mat;
  };
  const Workload workloads[] = {{"rmat(skewed)", &skewed},
                                {"er(uniform)", &uniform},
                                {"er(tiny)", &tiny}};
  for (const auto& w : workloads) {
    const auto lower = prepare_tc_lower(*w.mat);
    for (auto algo : algos) {
      std::vector<std::string> row{w.name, to_string(algo)};
      JsonObject record;
      record.field("graph", w.name)
          .field("scale", scale)
          .field("algo", to_string(algo));
      double best_omp = nan_time();
      double flopbal = nan_time();
      for (auto sched : schedules) {
        MaskedOptions o;
        o.algo = algo;
        o.schedule = sched;
        const double t = time_masked_spgemm<PlusPair<std::int64_t>>(
            lower, lower, lower, o, cfg);
        row.push_back(Table::num(t * 1e3, 3) + "ms");
        record.field(to_string(sched), t);
        if (sched == Schedule::kFlopBalanced) {
          flopbal = t;
        } else if (sched != Schedule::kAuto &&
                   (std::isnan(best_omp) || t < best_omp)) {
          best_omp = t;
        }
      }
      const double speedup = best_omp / flopbal;
      record.field("speedup_vs_best_omp", speedup);
      row.push_back(Table::num(speedup, 2) + "x");
      table.add_row(std::move(row));
      artifact.add(record);
    }
  }
  table.print();
  std::printf(
      "\nExpected shape: schedules tie on uniform degrees; dynamic/guided\n"
      "beat static on skewed degrees, and the flop-balanced partition beats\n"
      "all row-oriented schedules once hub rows dominate (scale >= 18).\n"
      "On er(tiny) the auto column should track static — the kAuto\n"
      "tiny-input cutoff (core/options.hpp) skips the partition build — and\n"
      "track flopbal on the larger workloads.\n");
  if (!artifact.write(cfg.resolved_json_path("BENCH_ablation_schedule.json"))) {
    return 1;
  }
  return 0;
}
