// Ablation (§2.2 challenge iv): OpenMP loop schedules under load imbalance.
//
// The paper parallelizes coarsely across rows, noting "plenty of
// coarse-grained parallelism across rows to avoid any load imbalance". This
// holds for dynamic/guided schedules; static scheduling on a skewed (R-MAT)
// degree distribution shows the imbalance the claim glosses over.
#include <cstdio>

#include "bench_common.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"

using namespace msx;
using namespace msx::bench;

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv);
  print_header("ablation_schedule — static/dynamic/guided row scheduling",
               "§2.2 (load imbalance) / §3 (row parallelism)", cfg);

  const int scale = 12 + cfg.scale_shift;
  auto skewed = rmat<IT, VT>(scale, 7);
  auto uniform = erdos_renyi<IT, VT>(skewed.nrows(), skewed.nrows(),
                                     static_cast<IT>(16), 8);

  Table table({"graph", "algo", "static", "dynamic", "guided"});
  struct Workload {
    const char* name;
    const Mat* mat;
  };
  const Workload workloads[] = {{"rmat(skewed)", &skewed},
                                {"er(uniform)", &uniform}};
  for (const auto& w : workloads) {
    const auto lower = prepare_tc_lower(*w.mat);
    for (auto algo : {MaskedAlgo::kMSA, MaskedAlgo::kHash}) {
      std::vector<std::string> row{w.name, to_string(algo)};
      for (auto sched :
           {Schedule::kStatic, Schedule::kDynamic, Schedule::kGuided}) {
        MaskedOptions o;
        o.algo = algo;
        o.schedule = sched;
        const double t = time_masked_spgemm<PlusPair<std::int64_t>>(
            lower, lower, lower, o, cfg);
        row.push_back(Table::num(t * 1e3, 3) + "ms");
      }
      table.add_row(std::move(row));
    }
  }
  table.print();
  std::printf("\nExpected shape: schedules tie on uniform degrees; dynamic/\n"
              "guided win on skewed degrees where static suffers stragglers.\n");
  return 0;
}
