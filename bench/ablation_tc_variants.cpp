// Ablation (extension): masked triangle-counting formulations.
//
// sum(L ⊙ L·L), sum(L ⊙ L·U) and sum(U ⊙ U·U) count the same triangles with
// different operand/mask shapes, so their flops — and the best algorithm —
// differ on skewed graphs. The degree-descending relabeling (§8.2) makes L's
// heavy rows short, which is exactly why the paper's L·L variant is fast.
#include <cstdio>

#include "apps/tricount.hpp"
#include "bench_common.hpp"
#include "core/flops.hpp"
#include "gen/rmat.hpp"

using namespace msx;
using namespace msx::bench;

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv);
  ArgParser args(argc, argv);
  const int scale = static_cast<int>(args.get_int("rmat-scale", 12));
  print_header("ablation_tc_variants — L*L vs L*U vs U*U formulations",
               "§8.2 formulation choice (extension)", cfg);

  const auto graph = rmat<IT, VT>(scale, 42);
  std::printf("graph: rmat scale %d, n=%d, nnz=%zu\n\n", scale, graph.nrows(),
              graph.nnz());

  const struct {
    const char* name;
    TriCountVariant variant;
  } variants[] = {
      {"L .* (L*L)", TriCountVariant::kLL},
      {"L .* (L*U)", TriCountVariant::kLU},
      {"U .* (U*U)", TriCountVariant::kUU},
  };

  Table table({"formulation", "triangles", "mflops", "msa1p_ms", "gflops"});
  for (const auto& v : variants) {
    MaskedOptions o;
    o.algo = MaskedAlgo::kMSA;
    o.threads = cfg.threads;
    TriCountResult best;
    best.seconds_spgemm = 0.0;
    for (int rep = 0; rep < cfg.reps; ++rep) {
      auto r = triangle_count(graph, o, v.variant);
      if (rep == 0 || r.seconds_spgemm < best.seconds_spgemm) best = r;
    }
    table.add_row(
        {v.name, std::to_string(best.triangles),
         Table::num(static_cast<double>(best.multiplies) / 1e6, 2),
         Table::num(best.seconds_spgemm * 1e3, 3),
         Table::num(gflops(best.multiplies, best.seconds_spgemm), 3)});
  }
  table.print();
  std::printf("\nExpected shape: identical triangle counts; flops and time\n"
              "differ by formulation, with the paper's L*(L*L) choice among\n"
              "the cheapest after degree relabeling.\n");
  return 0;
}
