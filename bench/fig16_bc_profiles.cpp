// Figure 16: Betweenness Centrality — performance profiles (MSA/Hash ×
// 1P/2P vs the SS:SAXPY-like baseline).
//
// Paper: "MSA-1P obtains the best performance in all test instances. 1P
// schemes again outperform 2P." MCA is excluded (no complement support);
// Heap/Inner/SS:DOT were excluded as prohibitively slow.
#include <cstdio>

#include "apps/bc.hpp"
#include "baseline/ssgb_like.hpp"
#include "bench_common.hpp"
#include "matrix/build.hpp"

using namespace msx;
using namespace msx::bench;

namespace {

// BC with every masked product replaced by the SS:SAXPY-like baseline.
double bc_with_saxpy(const Mat& graph, const std::vector<IT>& sources) {
  const IT n = graph.nrows();
  const IT batch = static_cast<IT>(sources.size());
  using DMat = CSRMatrix<IT, double>;
  const DMat a(n, n,
               std::vector<IT>(graph.rowptr().begin(), graph.rowptr().end()),
               std::vector<IT>(graph.colidx().begin(), graph.colidx().end()),
               std::vector<double>(graph.nnz(), 1.0));
  std::vector<Triple<IT, double>> seeds;
  for (IT q = 0; q < batch; ++q) {
    seeds.push_back({q, sources[static_cast<std::size_t>(q)], 1.0});
  }
  DMat frontier = csr_from_triples<IT, double>(batch, n, std::move(seeds));
  DMat numsp = frontier;
  std::vector<DMat> levels{frontier};

  WallTimer t;
  while (true) {
    auto next = ss_saxpy_like<PlusTimes<double>>(frontier, a, numsp,
                                                 MaskKind::kComplement);
    if (next.nnz() == 0) break;
    numsp = ewise_add(numsp, next);
    levels.push_back(next);
    frontier = std::move(next);
  }
  std::vector<double> delta(static_cast<std::size_t>(batch) *
                                static_cast<std::size_t>(n),
                            0.0);
  for (std::size_t d = levels.size() - 1; d >= 1; --d) {
    DMat w = levels[d];
    {
      auto vals = w.mutable_values();
      const auto rp = w.rowptr();
      const auto ci = w.colidx();
      for (IT q = 0; q < batch; ++q) {
        for (IT p = rp[q]; p < rp[q + 1]; ++p) {
          const auto idx =
              static_cast<std::size_t>(q) * static_cast<std::size_t>(n) +
              static_cast<std::size_t>(ci[p]);
          vals[p] = (1.0 + delta[idx]) / vals[p];
        }
      }
    }
    auto w2 = ss_saxpy_like<PlusTimes<double>>(w, a, levels[d - 1]);
    const auto rp2 = w2.rowptr();
    const auto ci2 = w2.colidx();
    const auto vl2 = w2.values();
    for (IT q = 0; q < batch; ++q) {
      const auto prow = levels[d - 1].row(q);
      IT pp = 0;
      for (IT p = rp2[q]; p < rp2[q + 1]; ++p) {
        while (prow.cols[pp] != ci2[p]) ++pp;
        delta[static_cast<std::size_t>(q) * static_cast<std::size_t>(n) +
              static_cast<std::size_t>(ci2[p])] += vl2[p] * prow.vals[pp];
      }
    }
  }
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv, /*default_scale_shift=*/-3);
  ArgParser args(argc, argv);
  const int batch = static_cast<int>(args.get_int("batch", 32));
  print_header("fig16_bc_profiles — BC: MSA/Hash 1P/2P vs SS:SAXPY-like",
               "Fig. 16 (§8.4)", cfg);
  std::printf("batch = %d\n", batch);

  const auto schemes = complement_schemes(/*include_two_phase=*/true);
  ProfileInput input;
  for (const auto& s : schemes) input.schemes.push_back(s.name);
  input.schemes.push_back("SS:SAXPY");
  input.seconds.assign(input.schemes.size(), {});

  for (const auto& workload : graph_suite(cfg.scale_shift)) {
    const auto graph = workload.make();
    input.cases.push_back(workload.name);
    std::vector<IT> sources;
    for (int q = 0; q < batch; ++q) {
      sources.push_back(static_cast<IT>((q * 131) % graph.nrows()));
    }
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      MaskedOptions o = schemes[s].opts;
      o.threads = cfg.threads;
      double best = nan_time();
      for (int rep = 0; rep < cfg.reps; ++rep) {
        const double t =
            betweenness_centrality(graph, sources, o).seconds_total;
        if (std::isnan(best) || t < best) best = t;
      }
      input.seconds[s].push_back(best);
    }
    {
      double best = nan_time();
      for (int rep = 0; rep < cfg.reps; ++rep) {
        const double t = bc_with_saxpy(graph, sources);
        if (std::isnan(best) || t < best) best = t;
      }
      input.seconds[schemes.size()].push_back(best);
    }
  }
  report_profiles(input, cfg, /*x_max=*/1.5);
  std::printf("\nExpected shape (paper Fig. 16): MSA-1P best everywhere;\n"
              "1P beats 2P; the saxpy baseline trails.\n");
  return 0;
}
