// Micro-benchmark of the plan/execute split (ISSUE 1 acceptance): shows that
// plan reuse eliminates the per-call CSC rebuild and workspace allocation the
// stateless API pays, for the pull-based families in particular.
//
// For each scheme it reports:
//   stateless  — per-call time of masked_spgemm (transpose + workspaces paid
//                every call for Inner/Hybrid),
//   plan setup — one-time masked_plan construction (operand copies, kAuto,
//                CSC transpose, kernel bind),
//   exec #1/#2 — plan.execute() wall time for the first and second call,
//   setup #1/#2 — lazy setup inside those calls (workspace-pool allocation);
//                ~0 on the second call is the reuse guarantee.
//
//   ./bench_micro_plan_reuse [--scale-shift N] [--reps R] [--threads T]
//                            [--json[=PATH]]
//
// --json writes BENCH_micro_plan_reuse.json for the CI bench-artifacts step.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "gen/erdos_renyi.hpp"

using namespace msx;
using namespace msx::bench;

int main(int argc, char** argv) {
  auto cfg = BenchConfig::parse(argc, argv);
  print_header("micro_plan_reuse — plan/execute vs stateless masked_spgemm",
               "ISSUE 1 acceptance (plan reuse amortization)", cfg);

  const IT n = cfg.scale_shift >= 0
                   ? static_cast<IT>(4000) << cfg.scale_shift
                   : static_cast<IT>(4000) >> -cfg.scale_shift;
  // Dense-ish inputs with a sparse mask: the pull-based regime where the
  // stateless API's per-call CSC rebuild hurts the most.
  const auto a = erdos_renyi<IT, VT>(n, n, 24, 1);
  const auto b = erdos_renyi<IT, VT>(n, n, 24, 2);
  const auto m = erdos_renyi<IT, VT>(n, n, 3, 3);

  std::vector<SchemeSpec> schemes;
  for (auto algo : {MaskedAlgo::kInner, MaskedAlgo::kHybrid, MaskedAlgo::kMSA,
                    MaskedAlgo::kHash}) {
    for (auto ph : {PhaseMode::kOnePhase, PhaseMode::kTwoPhase}) {
      MaskedOptions o;
      o.algo = algo;
      o.phases = ph;
      o.threads = cfg.threads;
      schemes.push_back({scheme_name(algo, ph), o});
    }
  }

  BenchJsonFile artifact("micro_plan_reuse", cfg);
  std::printf("\n%-10s %12s %12s %12s %12s %12s %12s\n", "scheme",
              "stateless", "plan setup", "exec #1", "setup #1", "exec #2",
              "setup #2");
  for (const auto& s : schemes) {
    // Stateless: every call pays resolution + (for pull) transpose + scratch.
    const auto stateless = measure(
        [&] {
          auto c = masked_spgemm<PlusTimes<VT>>(a, b, m, s.opts);
          (void)c;
        },
        cfg.measure());

    WallTimer t;
    auto plan = masked_plan<PlusTimes<VT>>(a, b, m, s.opts);
    const double plan_setup = t.seconds();

    WallTimer t1;
    auto c1 = plan.execute();
    const double exec1 = t1.seconds();
    const double setup1 = plan.last_execute_setup_seconds();

    WallTimer t2;
    auto c2 = plan.execute();
    const double exec2 = t2.seconds();
    const double setup2 = plan.last_execute_setup_seconds();

    if (!(c1 == c2)) {
      std::printf("%-10s: MISMATCH between plan executions!\n",
                  s.name.c_str());
      return 1;
    }
    std::printf("%-10s %10.3fms %10.3fms %10.3fms %10.6fms %10.3fms %10.6fms\n",
                s.name.c_str(), best_seconds(stateless) * 1e3,
                plan_setup * 1e3, exec1 * 1e3, setup1 * 1e3, exec2 * 1e3,
                setup2 * 1e3);
    JsonObject record;
    record.field("scheme", s.name)
        .field("stateless_s", best_seconds(stateless))
        .field("plan_setup_s", plan_setup)
        .field("exec1_s", exec1)
        .field("setup1_s", setup1)
        .field("exec2_s", exec2)
        .field("setup2_s", setup2);
    artifact.add(record);
  }
  if (!artifact.write(cfg.resolved_json_path("BENCH_micro_plan_reuse.json"))) {
    return 1;
  }

  std::printf(
      "\nsetup #2 ~ 0 and exec #2 <= stateless demonstrate that plan reuse\n"
      "amortizes the CSC rebuild (Inner/Hybrid) and workspace allocation.\n");
  return 0;
}
