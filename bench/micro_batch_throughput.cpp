// micro_batch_throughput — jobs/sec of the concurrent runtime on a batch of
// small masked products versus a sequential loop of stateless masked_spgemm
// calls (ISSUE 3 acceptance: ≥2x on ≥64 small products with 8+ threads,
// warm plan-cache hit rate reported).
//
//   ./bench_micro_batch_throughput [--jobs N] [--structures K] [--reps R]
//                                  [--threads T] [--json[=PATH]]
//
// The workload models service traffic: K distinct small structures, each
// requested jobs/K times with fresh numeric values per request. The
// sequential baseline pays per-call planning and OpenMP region overhead;
// the runtime pays neither once the PlanCache is warm and runs the small
// jobs one-per-worker.
#include <cstdint>
#include <cstdio>
#include <future>
#include <vector>

#include "bench_common.hpp"
#include "gen/erdos_renyi.hpp"
#include "runtime/batch.hpp"

using namespace msx;
using namespace msx::bench;

namespace {

struct Shapes {
  std::vector<Mat> a, b, m;
};

Shapes make_structures(int k, int scale_shift) {
  const IT base = static_cast<IT>(160 << (scale_shift > 0 ? scale_shift : 0));
  Shapes s;
  for (int i = 0; i < k; ++i) {
    const IT rows = base + 24 * static_cast<IT>(i);
    s.a.push_back(erdos_renyi<IT, VT>(rows, rows, 6, 41 + i));
    s.b.push_back(erdos_renyi<IT, VT>(rows, rows, 6, 71 + i));
    s.m.push_back(erdos_renyi<IT, VT>(rows, rows, 8, 91 + i));
  }
  return s;
}

void refresh(Mat& mat, int salt) {
  auto vals = mat.mutable_values();
  for (std::size_t p = 0; p < vals.size(); ++p) {
    vals[p] = 1.0 + static_cast<double>((p + static_cast<std::size_t>(salt)) % 5);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv);
  ArgParser args(argc, argv);
  const int jobs = static_cast<int>(args.get_int("jobs", 96));
  const int nstructures = static_cast<int>(args.get_int("structures", 16));
  print_header("micro_batch_throughput — runtime batch executor vs "
               "sequential masked_spgemm loop",
               "ISSUE 3 (concurrent masked-SpGEMM runtime)", cfg);

  auto shapes = make_structures(nstructures, cfg.scale_shift);
  using SRt = PlusTimes<VT>;
  MaskedOptions opts;
  opts.threads = cfg.threads;
  // MSX_ADAPTIVE engages the per-block adaptive engine on every job; the CI
  // disabled-overhead gate reruns this bench with it pinned off.
  opts.adaptive = adaptive_mode_from_env(AdaptiveMode::kOff);

  // Service usage: the stationary operands (B, the mask) are held shared and
  // cross the submit boundary by reference; only the per-request A is
  // materialized per job.
  std::vector<std::shared_ptr<const Mat>> shared_b, shared_m;
  for (int s = 0; s < nstructures; ++s) {
    shared_b.push_back(std::make_shared<const Mat>(
        shapes.b[static_cast<std::size_t>(s)]));
    shared_m.push_back(std::make_shared<const Mat>(
        shapes.m[static_cast<std::size_t>(s)]));
  }

  Table table({"path", "seconds", "jobs/s", "speedup"});
  BenchJsonFile artifact("micro_batch_throughput", cfg);

  double best_seq = nan_time();
  double best_run = nan_time();
  double hit_rate = 0.0;
  double lat_p50 = 0.0, lat_p95 = 0.0, lat_p99 = 0.0;
  std::uint64_t small_jobs = 0, wide_jobs = 0;
  int pool_threads = 0;

  for (int rep = 0; rep < std::max(1, cfg.reps); ++rep) {
    // --- sequential baseline ---
    WallTimer seq_timer;
    std::size_t seq_nnz = 0;
    for (int j = 0; j < jobs; ++j) {
      const auto s = static_cast<std::size_t>(j % nstructures);
      refresh(shapes.a[s], j);
      seq_nnz += masked_spgemm<SRt>(shapes.a[s], shapes.b[s], shapes.m[s],
                                    opts).nnz();
    }
    const double seq_seconds = seq_timer.seconds();

    // --- runtime: warm the cache, then the timed round ---
    BatchLimits limits;
    limits.pool_threads = cfg.threads;
    BatchExecutor<SRt, IT, VT> exec(limits);
    {
      std::vector<std::future<Mat>> warm;
      for (int s = 0; s < nstructures; ++s) {
        warm.push_back(exec.submit_shared(
            std::make_shared<const Mat>(shapes.a[static_cast<std::size_t>(s)]),
            shared_b[static_cast<std::size_t>(s)],
            shared_m[static_cast<std::size_t>(s)], opts));
      }
      for (auto& f : warm) f.get();
    }
    exec.wait_idle();
    const auto warm_stats = exec.stats();

    WallTimer run_timer;
    std::vector<std::future<Mat>> inflight;
    inflight.reserve(static_cast<std::size_t>(jobs));
    for (int j = 0; j < jobs; ++j) {
      const auto s = static_cast<std::size_t>(j % nstructures);
      refresh(shapes.a[s], j);
      inflight.push_back(exec.submit_shared(
          std::make_shared<const Mat>(shapes.a[s]), shared_b[s], shared_m[s],
          opts));
    }
    std::size_t run_nnz = 0;
    for (auto& f : inflight) run_nnz += f.get().nnz();
    const double run_seconds = run_timer.seconds();

    if (seq_nnz != run_nnz) {
      std::fprintf(stderr, "result mismatch: %zu vs %zu nnz\n", seq_nnz,
                   run_nnz);
      return 1;
    }
    if (std::isnan(best_seq) || seq_seconds < best_seq) best_seq = seq_seconds;
    if (std::isnan(best_run) || run_seconds < best_run) best_run = run_seconds;
    exec.wait_idle();
    const auto st = exec.stats();
    // Hit rate of the timed (warm) round alone: delta against the stats
    // snapshot taken after the warm-up pass.
    const auto warm_lookups = warm_stats.cache.hits + warm_stats.cache.misses +
                              warm_stats.cache.grows;
    const auto total_lookups =
        st.cache.hits + st.cache.misses + st.cache.grows;
    hit_rate = total_lookups > warm_lookups
                   ? static_cast<double>(st.cache.hits - warm_stats.cache.hits) /
                         static_cast<double>(total_lookups - warm_lookups)
                   : 0.0;
    small_jobs = st.small_jobs;
    wide_jobs = st.wide_jobs;
    pool_threads = exec.pool_threads();
    // Queue+run latency percentiles of this rep's jobs (warm-up included;
    // it is a small, fixed fraction). Zero when MSX_METRICS=0.
    if (const obs::Histogram* h = exec.metrics().find_histogram(
            "msx_job_seconds");
        h != nullptr && h->count() > 0) {
      lat_p50 = h->quantile(0.50);
      lat_p95 = h->quantile(0.95);
      lat_p99 = h->quantile(0.99);
    }
  }

  const double seq_rate = jobs / best_seq;
  const double run_rate = jobs / best_run;
  const double speedup = best_seq / best_run;
  table.add_row({"sequential", Table::num(best_seq * 1e3, 3) + "ms",
                 Table::num(seq_rate, 1), "1.00x"});
  table.add_row({"runtime", Table::num(best_run * 1e3, 3) + "ms",
                 Table::num(run_rate, 1), Table::num(speedup, 2) + "x"});
  table.print();
  std::printf("\n%d jobs over %d structures; %d pool threads; warm plan-cache "
              "hit rate %.0f%% (%llu small / %llu wide jobs)\n",
              jobs, nstructures, pool_threads, 100.0 * hit_rate,
              static_cast<unsigned long long>(small_jobs),
              static_cast<unsigned long long>(wide_jobs));
  std::printf("job latency p50 %.3fms / p95 %.3fms / p99 %.3fms\n",
              lat_p50 * 1e3, lat_p95 * 1e3, lat_p99 * 1e3);
  std::printf("acceptance: >=2x jobs/sec on >=64 small products with 8+ "
              "threads (measured %.2fx)\n", speedup);

  JsonObject record;
  record.field("jobs", jobs)
      .field("adaptive", to_string(opts.adaptive))
      .field("structures", nstructures)
      .field("pool_threads", pool_threads)
      .field("sequential_seconds", best_seq)
      .field("runtime_seconds", best_run)
      .field("jobs_per_sec_sequential", seq_rate)
      .field("jobs_per_sec_runtime", run_rate)
      .field("speedup", speedup)
      .field("cache_hit_rate", hit_rate)
      .field("latency_p50_seconds", lat_p50)
      .field("latency_p95_seconds", lat_p95)
      .field("latency_p99_seconds", lat_p99);
  artifact.add(record);
  if (!artifact.write(
          cfg.resolved_json_path("BENCH_micro_batch_throughput.json"))) {
    return 1;
  }
  return 0;
}
