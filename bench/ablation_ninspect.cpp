// Ablation (§5.5): the Heap algorithm's NInspect mask-look-ahead parameter.
//
// NInspect = 0 never inspects (plain k-way merge), 1 checks the current mask
// element (the paper's "Heap"), ∞ proves membership before every push (the
// paper's "HeapDot"). The trade-off: inspection work vs avoided heap pushes;
// which wins depends on the mask/input density ratio.
#include <cstdio>

#include "bench_common.hpp"
#include "gen/erdos_renyi.hpp"

using namespace msx;
using namespace msx::bench;

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv);
  print_header("ablation_ninspect — Heap NInspect parameter sweep",
               "§5.5 (Heap/HeapDot definition)", cfg);

  const IT n = IT{1} << (12 + cfg.scale_shift);
  const std::vector<std::pair<IT, IT>> densities{
      {4, 64},   // sparse inputs, dense mask (heap-friendly)
      {16, 16},  // comparable
      {64, 4},   // dense inputs, sparse mask (inspection pays)
  };
  const std::vector<std::size_t> ninspects{0, 1, 2, 4, 8, kNInspectInfinity};

  std::vector<std::string> headers{"deg_in", "deg_mask"};
  for (auto ni : ninspects) {
    headers.push_back(ni == kNInspectInfinity ? "inf"
                                              : "N=" + std::to_string(ni));
  }
  Table table(headers);

  for (const auto& [din, dm] : densities) {
    auto a = erdos_renyi<IT, VT>(n, n, din, 1);
    auto b = erdos_renyi<IT, VT>(n, n, din, 2);
    auto m = erdos_renyi<IT, VT>(n, n, dm, 3);
    std::vector<std::string> row{std::to_string(din), std::to_string(dm)};
    for (auto ni : ninspects) {
      MaskedOptions o;
      o.algo = MaskedAlgo::kHeap;
      o.heap_ninspect = ni;
      const double t = time_masked_spgemm<PlusTimes<VT>>(a, b, m, o, cfg);
      row.push_back(Table::num(t * 1e3, 3) + "ms");
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\nExpected shape: small NInspect wins when the mask is dense\n"
              "(inspection rarely rejects); large NInspect wins when the\n"
              "mask is sparse (most heap pushes avoided).\n");
  return 0;
}
