// Figure 9: Triangle Counting — our three best schemes vs the
// SuiteSparse:GraphBLAS-like baselines (SS:SAXPY, SS:DOT).
//
// Paper result: "all our algorithms outperform SS:GB algorithms in almost
// all cases."
#include <cstdio>

#include "baseline/ssgb_like.hpp"
#include "bench_common.hpp"

using namespace msx;
using namespace msx::bench;

namespace {

double time_baseline(bool dot, const Mat& l, const BenchConfig& cfg) {
  const auto stats = measure(
      [&] {
        if (dot) {
          auto c = ss_dot_like<PlusPair<std::int64_t>>(l, l, l);
          (void)c;
        } else {
          auto c = ss_saxpy_like<PlusPair<std::int64_t>>(l, l, l);
          (void)c;
        }
      },
      cfg.measure());
  return best_seconds(stats);
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv, /*default_scale_shift=*/-2);
  print_header("fig9_tc_vs_baselines — MSA/Hash/MCA-1P vs SS:GB-like",
               "Fig. 9 (§8.2)", cfg);

  std::vector<SchemeSpec> schemes;
  for (auto algo :
       {MaskedAlgo::kMSA, MaskedAlgo::kHash, MaskedAlgo::kMCA}) {
    MaskedOptions o;
    o.algo = algo;
    schemes.push_back({scheme_name(algo, PhaseMode::kOnePhase), o});
  }

  ProfileInput input;
  for (const auto& s : schemes) input.schemes.push_back(s.name);
  input.schemes.push_back("SS:SAXPY");
  input.schemes.push_back("SS:DOT");
  input.seconds.assign(input.schemes.size(), {});

  for (const auto& workload : graph_suite(cfg.scale_shift)) {
    const auto lower = prepare_tc_lower(workload.make());
    input.cases.push_back(workload.name);
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      input.seconds[s].push_back(time_masked_spgemm<PlusPair<std::int64_t>>(
          lower, lower, lower, schemes[s].opts, cfg));
    }
    input.seconds[schemes.size()].push_back(
        time_baseline(/*dot=*/false, lower, cfg));
    input.seconds[schemes.size() + 1].push_back(
        time_baseline(/*dot=*/true, lower, cfg));
  }
  report_profiles(input, cfg);
  std::printf("\nExpected shape (paper Fig. 9): every proposed scheme's curve\n"
              "dominates both baselines' in almost all cases.\n");
  return 0;
}
