// micro_adaptive — adaptive per-block engine vs every forced mode (ISSUE 10
// acceptance: on the shifting-density sweep the adaptive planner must match
// the fastest forced mode and beat the worst one, with the mode-decision
// counters showing it actually mixed modes; a second execute must re-mode
// from observed timings without a replan).
//
//   ./bench_micro_adaptive [--dim N] [--reps R] [--threads T] [--json[=PATH]]
//
// Three workloads bracket the decision space:
//   dense-mask   high-degree mask and B — bitmap/dense modes win
//   sparse-mask  everything sparse — the hash mode wins
//   shifting     half the rows dense, half sparse — no single mode wins,
//                the per-block planner has to mix
// For each workload the same kHash plan runs with adaptive off / forced
// sparse / forced bitmap / forced dense / auto; outputs are checked
// bit-identical against the off baseline (hard failure otherwise).
#include <cstdio>
#include <string>
#include <vector>

#include "adaptive/feedback.hpp"
#include "adaptive/planner.hpp"
#include "bench_common.hpp"
#include "gen/erdos_renyi.hpp"

using namespace msx;
using namespace msx::bench;

namespace {

struct Workload {
  std::string name;
  Mat a, b, m;
};

// Stacks a dense row region on top of a sparse one, as the k-truss-like
// iteration workloads do once the frontier thins.
Mat stacked_density(IT nrows, IT ncols, IT dense_deg, IT sparse_deg,
                    std::uint64_t seed) {
  const IT half = nrows / 2;
  auto dense = erdos_renyi<IT, VT>(half, ncols, dense_deg, seed);
  auto sparse = erdos_renyi<IT, VT>(nrows - half, ncols, sparse_deg, seed + 1);
  std::vector<IT> rowptr{0};
  std::vector<IT> colidx;
  std::vector<VT> values;
  for (const auto* part : {&dense, &sparse}) {
    for (IT i = 0; i < part->nrows(); ++i) {
      const auto r = part->row(i);
      colidx.insert(colidx.end(), r.cols.begin(), r.cols.end());
      values.insert(values.end(), r.vals.begin(), r.vals.end());
      rowptr.push_back(static_cast<IT>(colidx.size()));
    }
  }
  return Mat(nrows, ncols, std::move(rowptr), std::move(colidx),
             std::move(values));
}

std::vector<Workload> make_workloads(IT dim) {
  std::vector<Workload> w;
  w.push_back({"dense-mask",
               erdos_renyi<IT, VT>(dim, dim, 16, 11),
               erdos_renyi<IT, VT>(dim, dim, dim / 16, 12),
               erdos_renyi<IT, VT>(dim, dim, dim / 8, 13)});
  w.push_back({"sparse-mask",
               erdos_renyi<IT, VT>(dim, dim, 8, 21),
               erdos_renyi<IT, VT>(dim, dim, 6, 22),
               erdos_renyi<IT, VT>(dim, dim, 8, 23)});
  w.push_back({"shifting",
               stacked_density(dim, dim, dim / 8, 3, 31),
               stacked_density(dim, dim, dim / 16, 4, 33),
               erdos_renyi<IT, VT>(dim, dim, dim / 8, 35)});
  return w;
}

struct ModeRun {
  double seconds = 0.0;
  int remodes = 0;
  int hist[adaptive::kBlockModeCount] = {0, 0, 0};
  std::uint64_t feedback_hits = 0;
};

const char* adaptive_name(AdaptiveMode m) { return to_string(m); }

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv);
  ArgParser args(argc, argv);
  const IT dim = static_cast<IT>(
      args.get_int("dim", 1024 << (cfg.scale_shift > 0 ? cfg.scale_shift : 0)));

  print_header("micro_adaptive — per-block mode selection vs forced modes",
               "ISSUE 10 (adaptive per-block execution engine)", cfg);

  using SRt = PlusTimes<VT>;
  const auto modes = std::vector<AdaptiveMode>{
      AdaptiveMode::kOff, AdaptiveMode::kForceSparse,
      AdaptiveMode::kForceBitmap, AdaptiveMode::kForceDense,
      AdaptiveMode::kAuto};

  BenchJsonFile artifact("micro_adaptive", cfg);
  bool accept_match_best = false;
  bool accept_beat_worst = false;
  bool accept_mixed = false;
  bool accept_remoded = false;

  for (const auto& w : make_workloads(dim)) {
    std::printf("\nworkload %s: %lld x %lld, nnz A/B/M = %zu/%zu/%zu\n",
                w.name.c_str(), static_cast<long long>(dim),
                static_cast<long long>(dim), w.a.nnz(), w.b.nnz(), w.m.nnz());
    Table table({"adaptive", "seconds", "vs off", "remodes", "modes s/b/d"});

    Mat baseline;
    std::vector<std::pair<AdaptiveMode, ModeRun>> runs;
    for (auto mode : modes) {
      MaskedOptions o;
      o.algo = MaskedAlgo::kHash;
      o.schedule = Schedule::kFlopBalanced;  // always partition
      o.threads = cfg.threads;
      o.adaptive = mode;
      auto plan = masked_plan<SRt>(w.a, w.b, w.m, o);

      ModeRun run;
      const auto before = adaptive::FeedbackStore::global().stats();
      Mat c = plan.execute();  // warm-up: plans modes, records first timings
      for (int rep = 0; rep < std::max(1, cfg.reps); ++rep) {
        WallTimer t;
        c = plan.execute();
        const double s = t.seconds();
        if (rep == 0 || s < run.seconds) run.seconds = s;
        run.remodes += plan.last_remodes();
      }
      const auto after = adaptive::FeedbackStore::global().stats();
      run.feedback_hits = after.feedback_hits - before.feedback_hits;
      const auto h = plan.adaptive_mode_histogram();
      for (int i = 0; i < adaptive::kBlockModeCount; ++i) run.hist[i] = h[i];

      if (mode == AdaptiveMode::kOff) {
        baseline = std::move(c);
      } else if (!(baseline == c)) {
        std::fprintf(stderr,
                     "BIT-IDENTITY FAILURE: workload %s adaptive=%s\n",
                     w.name.c_str(), adaptive_name(mode));
        return 1;
      }
      runs.emplace_back(mode, run);
    }

    double off_s = 0.0, auto_s = 0.0;
    double best_forced = 0.0, worst_forced = 0.0;
    for (const auto& [mode, run] : runs) {
      if (mode == AdaptiveMode::kOff) off_s = run.seconds;
      if (mode == AdaptiveMode::kAuto) auto_s = run.seconds;
      if (mode == AdaptiveMode::kForceSparse ||
          mode == AdaptiveMode::kForceBitmap ||
          mode == AdaptiveMode::kForceDense) {
        if (best_forced == 0.0 || run.seconds < best_forced) {
          best_forced = run.seconds;
        }
        if (run.seconds > worst_forced) worst_forced = run.seconds;
      }
    }

    for (const auto& [mode, run] : runs) {
      table.add_row({adaptive_name(mode), Table::num(run.seconds * 1e3, 3) + "ms",
                     Table::num(off_s / run.seconds, 2) + "x",
                     std::to_string(run.remodes),
                     std::to_string(run.hist[0]) + "/" +
                         std::to_string(run.hist[1]) + "/" +
                         std::to_string(run.hist[2])});
      JsonObject record;
      record.field("workload", w.name)
          .field("dim", static_cast<long long>(dim))
          .field("adaptive", adaptive_name(mode))
          .field("seconds", run.seconds)
          .field("speedup_vs_off", off_s / run.seconds)
          .field("remodes", run.remodes)
          .field("feedback_hits", static_cast<long long>(run.feedback_hits))
          .field("blocks_sparse", run.hist[0])
          .field("blocks_bitmap", run.hist[1])
          .field("blocks_dense", run.hist[2]);
      artifact.add(record);
    }
    table.print();

    if (w.name == "shifting") {
      // 10% tolerance: "matches the fastest forced mode" under timer noise.
      accept_match_best = auto_s <= best_forced * 1.10;
      accept_beat_worst = auto_s < worst_forced;
      for (const auto& [mode, run] : runs) {
        if (mode != AdaptiveMode::kAuto) continue;
        int used = 0;
        for (int i = 0; i < adaptive::kBlockModeCount; ++i) {
          used += run.hist[i] > 0 ? 1 : 0;
        }
        accept_mixed = used >= 2;
        accept_remoded = run.feedback_hits > 0;
      }
      std::printf("\nshifting-density acceptance:\n"
                  "  auto %.3fms vs best forced %.3fms (<=1.10x: %s)\n"
                  "  auto vs worst forced %.3fms (faster: %s)\n"
                  "  mixed modes in one plan: %s; re-mode used feedback: %s\n",
                  auto_s * 1e3, best_forced * 1e3,
                  accept_match_best ? "PASS" : "FAIL", worst_forced * 1e3,
                  accept_beat_worst ? "PASS" : "FAIL",
                  accept_mixed ? "PASS" : "FAIL",
                  accept_remoded ? "PASS" : "FAIL");
    }
  }

  JsonObject verdict;
  verdict.field("workload", "acceptance")
      .field("adaptive", "auto")
      .field("match_best_forced", accept_match_best ? 1 : 0)
      .field("beat_worst_forced", accept_beat_worst ? 1 : 0)
      .field("mixed_modes", accept_mixed ? 1 : 0)
      .field("feedback_remode", accept_remoded ? 1 : 0);
  artifact.add(verdict);
  if (!artifact.write(cfg.resolved_json_path("BENCH_micro_adaptive.json"))) {
    return 1;
  }
  return 0;
}
