// Figure 15: Betweenness Centrality MTEPS vs R-MAT scale.
//
// Paper: batch size 512, scales 8–20; the push-based schemes (MSA-1P,
// Hash-1P, SS:SAXPY) increase their MTEPS rate with scale; dot-based schemes
// are crippled by the dense mask and per-call transposition. Default batch
// here is 64 (laptop memory); --batch raises it toward the paper's 512.
#include <cstdio>

#include "apps/bc.hpp"
#include "bench_common.hpp"
#include "gen/rmat.hpp"

using namespace msx;
using namespace msx::bench;

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv);
  ArgParser args(argc, argv);
  const int scale_lo = static_cast<int>(args.get_int("rmat-lo", 8));
  const int scale_hi = static_cast<int>(args.get_int("rmat-hi", 11));
  const int batch = static_cast<int>(args.get_int("batch", 64));
  print_header("fig15_bc_rmat_scale — BC MTEPS vs R-MAT scale",
               "Fig. 15 (§8.4)", cfg);
  std::printf("batch = %d (paper: 512); MTEPS = batch*edges/time/1e6\n\n",
              batch);

  const auto schemes = complement_schemes(/*include_two_phase=*/false);

  std::vector<std::string> headers{"scale", "n", "edges"};
  for (const auto& s : schemes) headers.push_back(s.name + "_mteps");
  Table table(headers);

  for (int scale = scale_lo; scale <= scale_hi; ++scale) {
    const auto graph = rmat<IT, VT>(scale, 42);
    const std::size_t edges = graph.nnz() / 2;
    std::vector<IT> sources;
    for (int q = 0; q < batch; ++q) {
      sources.push_back(static_cast<IT>((q * 7919) % graph.nrows()));
    }
    std::vector<std::string> row{std::to_string(scale),
                                 std::to_string(graph.nrows()),
                                 std::to_string(edges)};
    for (const auto& s : schemes) {
      MaskedOptions o = s.opts;
      o.threads = cfg.threads;
      double best = 0.0;
      for (int rep = 0; rep < cfg.reps; ++rep) {
        const auto r = betweenness_centrality(graph, sources, o);
        best = std::max(best, r.mteps(edges, sources.size()));
      }
      row.push_back(Table::num(best, 2));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\nExpected shape (paper Fig. 15): MTEPS grows with scale for\n"
              "the push-based schemes; MSA-1P leads.\n");
  return 0;
}
