// Ablation (extension): MSA state-array layout — one byte per column
// (paper §5.2) vs 2-bit packed bitmap vs the hash table (§5.3).
//
// The paper attributes MSA's large-matrix slowdown to the dense O(ncols)
// arrays falling out of cache ("MSA's worsening cache utilization as the
// matrices get larger", §8.1). Packing the states 4× denser defers that
// point; the hash table avoids it entirely at O(nnz(m)) footprint.
#include <cstdio>

#include "bench_common.hpp"
#include "gen/erdos_renyi.hpp"

using namespace msx;
using namespace msx::bench;

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv);
  print_header(
      "ablation_accumulator_layout — byte MSA vs bitmap MSA vs Hash",
      "§5.2/§5.3 cache-footprint tradeoff (bitmap = extension)", cfg);

  Table table({"ncols", "MSA_ms", "MSAB_ms", "Hash_ms", "MSAB/MSA"});
  for (int dim = 12; dim <= 16 + cfg.scale_shift; dim += 2) {
    const IT n = IT{1} << dim;
    auto a = erdos_renyi<IT, VT>(n, n, 8, 1);
    auto b = erdos_renyi<IT, VT>(n, n, 8, 2);
    auto m = erdos_renyi<IT, VT>(n, n, 8, 3);
    double times[3];
    int k = 0;
    for (auto algo :
         {MaskedAlgo::kMSA, MaskedAlgo::kMSABitmap, MaskedAlgo::kHash}) {
      MaskedOptions o;
      o.algo = algo;
      times[k++] = time_masked_spgemm<PlusTimes<VT>>(a, b, m, o, cfg);
    }
    table.add_row({std::to_string(n), Table::num(times[0] * 1e3, 3),
                   Table::num(times[1] * 1e3, 3),
                   Table::num(times[2] * 1e3, 3),
                   Table::num(times[1] / times[0], 2)});
  }
  table.print();
  std::printf("\nExpected shape: the bitmap's shift/mask overhead costs a\n"
              "little while the state array fits cache and pays off as the\n"
              "matrix grows past it; Hash is size-insensitive.\n");
  return 0;
}
