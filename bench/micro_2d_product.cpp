// micro_2d_product — cooperative multi-shard products (ISSUE 8 tentpole).
// Three measurements over loopback shards, each shard pinned to ONE worker
// thread so a shard models one machine of fixed capacity:
//
//   1. Single-shard baseline: Q pipelined masked products on an oversized
//      RMAT structure against a 1-shard fleet — bounded by one "machine".
//   2. 2D scatter: the same products forced through a 2x2 panel grid over a
//      4-shard fleet with the hot B replicated on 2 shards. Aggregate
//      speedup = baseline seconds / 2D seconds; >1 on any multi-core box
//      because four 1-thread shards compute panels concurrently.
//   3. Replicated-hot-B failover: another burst is scattered and one replica
//      shard is stopped mid-flight; the gate is zero lost panel tasks —
//      every product future resolves with the bit-exact result.
//
//   ./bench_micro_2d_product [--scale S] [--edge-factor E] [--products Q]
//       [--shards N] [--row-panels R] [--col-panels C] [--inflight F]
//       [--reps R] [--json[=PATH]]
#include <cstdint>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "client/client.hpp"
#include "client/sharded_backend.hpp"
#include "core/masked_spgemm.hpp"
#include "gen/rmat.hpp"
#include "service/shard.hpp"

using namespace msx;
using namespace msx::bench;
namespace mc = msx::client;
using msx::service::LoopbackListener;
using msx::service::ServiceShard;
using msx::service::ShardEndpoint;

using SRt = PlusTimes<VT>;
using Shard = ServiceShard<SRt, IT, VT>;
using Sharded = mc::ShardedBackend<SRt, IT, VT>;

namespace {

struct Fleet {
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<ShardEndpoint> endpoints;

  explicit Fleet(int n) {
    service::ShardConfig cfg;
    cfg.limits.pool_threads = 1;  // one shard == one fixed-capacity machine
    for (int i = 0; i < n; ++i) {
      shards.push_back(std::make_unique<Shard>(cfg));
      auto listener = std::make_unique<LoopbackListener>();
      auto* raw = listener.get();
      shards.back()->serve(std::move(listener));
      endpoints.push_back(ShardEndpoint{"shard-" + std::to_string(i),
                                        [raw] { return raw->connect(); }});
    }
  }
};

// Runs Q pipelined products of the prepared A's against one registered
// structure and returns wall seconds; every result is checked bit-exact
// against `want` (the single-shard reference), so both legs of the speedup
// comparison are doing provably identical work.
double run_products(mc::Session<SRt, IT, VT>& session,
                    const mc::StructureHandle<IT, VT>& handle,
                    const std::vector<std::shared_ptr<const Mat>>& as,
                    const std::vector<Mat>& want, const MaskedOptions& mo,
                    int* bad) {
  std::vector<std::future<mc::ClientResult<IT, VT>>> futures;
  WallTimer timer;
  for (const auto& a : as) futures.push_back(session.submit(a, handle,
                                                            {.masked = mo}));
  for (std::size_t q = 0; q < futures.size(); ++q) {
    auto res = futures[q].get();
    if (!res.ok() || !(res.matrix == want[q])) ++*bad;
  }
  return timer.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv);
  ArgParser args(argc, argv);
  const int scale = static_cast<int>(args.get_int("scale", 12));
  const int edge_factor = static_cast<int>(args.get_int("edge-factor", 24));
  const int products = static_cast<int>(args.get_int("products", 8));
  const int nshards = static_cast<int>(args.get_int("shards", 4));
  const int row_panels = static_cast<int>(args.get_int("row-panels", 2));
  const int col_panels = static_cast<int>(args.get_int("col-panels", 2));
  const int inflight = static_cast<int>(args.get_int("inflight", 8));
  print_header("micro_2d_product — one oversized masked product scattered as "
               "an A-row-panel x B-col-panel grid over the fleet, vs the "
               "single-shard bound",
               "ISSUE 8 (2D decomposition, replicated hot panels)", cfg);

  RmatOptions ro;
  ro.edge_factor = edge_factor;
  auto b = std::make_shared<const Mat>(rmat<IT, VT>(scale, 7, ro));
  auto m = std::make_shared<const Mat>(rmat<IT, VT>(scale, 8, ro));
  std::vector<std::shared_ptr<const Mat>> as;
  std::vector<Mat> want;
  MaskedOptions mo;
  mo.threads = 1;  // shard pools are 1 thread; keep the reference honest
  for (int q = 0; q < products; ++q) {
    as.push_back(std::make_shared<const Mat>(
        rmat<IT, VT>(scale, 100 + static_cast<std::uint64_t>(q), ro)));
    want.push_back(masked_spgemm<SRt>(*as.back(), *b, *m, mo));
  }

  MaskedOptions single = mo;
  single.dist = Dist2D::kNever;
  MaskedOptions dist2d = mo;
  dist2d.dist = Dist2D::kForce;
  dist2d.dist_row_panels = row_panels;
  dist2d.dist_col_panels = col_panels;

  // --- 1 + 2: single-shard bound vs 2D scatter ------------------------------
  int bad = 0;
  double best_single = nan_time();
  double best_dist = nan_time();
  std::uint64_t panels = 0;
  for (int rep = 0; rep < std::max(1, cfg.reps); ++rep) {
    {
      Fleet fleet(1);
      auto backend = std::make_shared<Sharded>(fleet.endpoints);
      mc::MaskedClient<SRt, IT, VT> client(backend);
      auto session = client.open_session(
          {.max_in_flight = static_cast<std::size_t>(inflight)});
      auto h = session.register_structure(
          mc::StructureSpec<IT, VT>(b).mask(m));
      (void)session.submit(as[0], h, {.masked = single}).get();  // warm plan
      const double s = run_products(session, h, as, want, single, &bad);
      if (std::isnan(best_single) || s < best_single) best_single = s;
    }
    {
      Fleet fleet(nshards);
      auto backend = std::make_shared<Sharded>(fleet.endpoints);
      mc::MaskedClient<SRt, IT, VT> client(backend);
      auto session = client.open_session(
          {.max_in_flight = static_cast<std::size_t>(inflight)});
      auto h = session.register_structure(
          mc::StructureSpec<IT, VT>(b).mask(m).replicate(2));
      (void)session.submit(as[0], h, {.masked = dist2d}).get();  // warm panels
      const double s = run_products(session, h, as, want, dist2d, &bad);
      if (std::isnan(best_dist) || s < best_dist) best_dist = s;
      panels = backend->stats().dist2d_panels;
    }
  }
  const double speedup = best_single / best_dist;

  Table table({"path", "products", "seconds", "aggregate speedup"});
  table.add_row({"single-shard", Table::num(products, 0),
                 Table::num(best_single, 4), "1.00x"});
  table.add_row({std::to_string(nshards) + "-shard 2D " +
                     std::to_string(row_panels) + "x" +
                     std::to_string(col_panels),
                 Table::num(products, 0), Table::num(best_dist, 4),
                 Table::num(speedup, 2) + "x"});
  table.print();

  // --- 3: replicated hot B, one replica dies mid-scatter --------------------
  int lost = 0;
  double failover_seconds = 0.0;
  {
    Fleet fleet(nshards);
    auto backend = std::make_shared<Sharded>(fleet.endpoints);
    mc::MaskedClient<SRt, IT, VT> client(backend);
    auto session = client.open_session(
        {.max_in_flight = static_cast<std::size_t>(inflight)});
    auto h = session.register_structure(
        mc::StructureSpec<IT, VT>(b).mask(m).replicate(2));
    std::vector<std::future<mc::ClientResult<IT, VT>>> futures;
    WallTimer timer;
    for (const auto& a : as) {
      futures.push_back(session.submit(a, h, {.masked = dist2d}));
    }
    fleet.shards[0]->stop();  // a replica dies with panel tasks in flight
    for (std::size_t q = 0; q < futures.size(); ++q) {
      auto res = futures[q].get();
      if (!res.ok() || !(res.matrix == want[q])) ++lost;
    }
    failover_seconds = timer.seconds();
  }
  std::printf("\nfailover: replica shard stopped mid-scatter; %d of %d "
              "products lost (%.3fs); %llu panel tasks scattered in the "
              "timed 2D runs; %d bit-identity mismatches\n",
              lost, products, failover_seconds,
              static_cast<unsigned long long>(panels), bad);

  BenchJsonFile artifact("micro_2d_product", cfg);
  JsonObject record;
  record.field("scale", scale)
      .field("edge_factor", edge_factor)
      .field("products", products)
      .field("shards", nshards)
      .field("row_panels", row_panels)
      .field("col_panels", col_panels)
      .field("replicas", 2)
      .field("inflight", inflight)
      .field("single_seconds", best_single)
      .field("dist2d_seconds", best_dist)
      .field("dist2d_speedup", speedup)
      .field("dist2d_panels", static_cast<long long>(panels))
      .field("failover_lost", lost)
      .field("failover_seconds", failover_seconds);
  artifact.add(record);
  if (!artifact.write(cfg.resolved_json_path("BENCH_micro_2d_product.json"))) {
    return 1;
  }

  // Acceptance: every result bit-identical, failover lost zero panel tasks,
  // and the 2D path beats the single-shard bound wherever the box actually
  // has more than one core to aggregate (a 1-core runner can only tie).
  const bool multi_core = std::thread::hardware_concurrency() >= 2;
  const bool ok = bad == 0 && lost == 0 && (!multi_core || speedup > 1.0);
  return ok ? 0 : 2;
}
