// micro_async_client — pipelined MaskedClient/ShardedBackend versus the
// blocking ShardRouter::request loop, same shard fleet (ISSUE 5 acceptance:
// the client with 16 in-flight requests reaches ≥1.5x the blocking loop's
// throughput, results bit-identical to direct masked_spgemm).
//
//   ./bench_micro_async_client [--requests N] [--structures K] [--shards S]
//       [--inflight D] [--threads T] [--reps R] [--json[=PATH]]
//
// The workload is the service shape the client API was designed for: a
// large STATIONARY B per structure (the graph / the model), small per-request
// A and mask (the query). The blocking router serializes, checksums and
// re-fingerprints B on every call and waits out each round trip; the client
// registers B once per shard connection, ships only A per submit, and keeps
// D requests in flight — so the speedup holds even on one core, where it is
// pure per-request work removed rather than overlap.
#include <cstdint>
#include <cstdio>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "client/client.hpp"
#include "client/sharded_backend.hpp"
#include "gen/erdos_renyi.hpp"
#include "service/router.hpp"
#include "service/shard.hpp"

using namespace msx;
using namespace msx::bench;
using namespace msx::service;
namespace mc = msx::client;

namespace {

struct Catalog {
  std::vector<Mat> a;
  std::vector<std::shared_ptr<const Mat>> b, m;
};

Catalog make_catalog(int k, int scale_shift) {
  // Stationary B dominates the operand bytes; A and the mask are the small
  // per-request side.
  const IT big = static_cast<IT>(1536 << (scale_shift > 0 ? scale_shift : 0));
  const IT small = static_cast<IT>(160);
  Catalog c;
  for (int i = 0; i < k; ++i) {
    const IT rb = big + 64 * static_cast<IT>(i);
    c.a.push_back(erdos_renyi<IT, VT>(small, rb, 6, 211 + i));
    c.b.push_back(std::make_shared<const Mat>(
        erdos_renyi<IT, VT>(rb, rb, 12, 221 + i)));
    c.m.push_back(std::make_shared<const Mat>(
        erdos_renyi<IT, VT>(small, rb, 10, 231 + i)));
  }
  return c;
}

void refresh(Mat& mat, int salt) {
  auto vals = mat.mutable_values();
  for (std::size_t p = 0; p < vals.size(); ++p) {
    vals[p] = 1.0 + static_cast<double>((p + static_cast<std::size_t>(salt)) % 5);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv);
  ArgParser args(argc, argv);
  const int requests = static_cast<int>(args.get_int("requests", 64));
  const int nstructures = static_cast<int>(args.get_int("structures", 4));
  const int nshards = static_cast<int>(args.get_int("shards", 2));
  const int inflight = static_cast<int>(args.get_int("inflight", 16));
  print_header("micro_async_client — pipelined client (register-once, D in "
               "flight) vs blocking ShardRouter::request loop",
               "ISSUE 5 (unified async client API)", cfg);

  using SRt = PlusTimes<VT>;
  auto catalog = make_catalog(nstructures, cfg.scale_shift);
  MaskedOptions opts;

  Table table({"path", "seconds", "requests/s", "speedup"});
  BenchJsonFile artifact("micro_async_client", cfg);

  double best_block = nan_time();
  double best_pipe = nan_time();

  // One fleet serves both paths (same shard count, same warm caches).
  ShardConfig shard_cfg;
  shard_cfg.limits.pool_threads = cfg.threads;
  std::vector<std::unique_ptr<ServiceShard<SRt, IT, VT>>> shards;
  std::vector<ShardEndpoint> endpoints;
  for (int i = 0; i < nshards; ++i) {
    shards.push_back(std::make_unique<ServiceShard<SRt, IT, VT>>(shard_cfg));
    auto listener = std::make_unique<LoopbackListener>();
    auto* raw = listener.get();
    shards.back()->serve(std::move(listener));
    endpoints.push_back(ShardEndpoint{"shard-" + std::to_string(i),
                                      [raw] { return raw->connect(); }});
  }
  ShardRouter<SRt, IT, VT> router(endpoints);
  auto backend = std::make_shared<mc::ShardedBackend<SRt, IT, VT>>(endpoints);
  mc::MaskedClient<SRt, IT, VT> client(backend);
  auto session = client.open_session(
      {.max_in_flight = static_cast<std::size_t>(inflight)});

  // Register structures and verify both paths bit-identical to direct calls.
  std::vector<mc::StructureHandle<IT, VT>> handles;
  for (std::size_t s = 0; s < catalog.a.size(); ++s) {
    handles.push_back(session.register_structure(
        mc::StructureSpec<IT, VT>(catalog.b[s]).mask(catalog.m[s])));
    const auto want =
        masked_spgemm<SRt>(catalog.a[s], *catalog.b[s], *catalog.m[s], opts);
    const auto via_router =
        router.request(catalog.a[s], *catalog.b[s], *catalog.m[s], opts);
    auto via_client = session.submit(catalog.a[s], handles[s]).get();
    if (!(via_router == want) || !via_client.ok() ||
        !(via_client.matrix == want)) {
      std::fprintf(stderr, "result mismatch on structure %zu\n", s);
      return 1;
    }
  }

  for (int rep = 0; rep < std::max(1, cfg.reps); ++rep) {
    // --- blocking router loop: one outstanding request, B shipped per call.
    WallTimer block_timer;
    std::size_t block_nnz = 0;
    for (int r = 0; r < requests; ++r) {
      const auto s = static_cast<std::size_t>(r % nstructures);
      refresh(catalog.a[s], r);
      block_nnz +=
          router.request(catalog.a[s], *catalog.b[s], *catalog.m[s], opts)
              .nnz();
    }
    const double block_seconds = block_timer.seconds();

    // --- pipelined client: registered B, D requests in flight.
    WallTimer pipe_timer;
    std::size_t pipe_nnz = 0;
    {
      std::vector<std::future<mc::ClientResult<IT, VT>>> futures;
      futures.reserve(static_cast<std::size_t>(requests));
      for (int r = 0; r < requests; ++r) {
        const auto s = static_cast<std::size_t>(r % nstructures);
        refresh(catalog.a[s], r);
        futures.push_back(session.submit(catalog.a[s], handles[s]));
      }
      for (auto& f : futures) pipe_nnz += f.get().value().nnz();
    }
    const double pipe_seconds = pipe_timer.seconds();

    if (block_nnz != pipe_nnz) {
      std::fprintf(stderr, "nnz mismatch: %zu vs %zu\n", block_nnz, pipe_nnz);
      return 1;
    }
    if (std::isnan(best_block) || block_seconds < best_block) {
      best_block = block_seconds;
    }
    if (std::isnan(best_pipe) || pipe_seconds < best_pipe) {
      best_pipe = pipe_seconds;
    }
  }

  // Client-observed submit->completion percentiles for the pipelined path
  // (all sessions in this process share the one global series; the blocking
  // router path never touches it). Zero when MSX_METRICS=0.
  double lat_p50 = 0.0, lat_p95 = 0.0, lat_p99 = 0.0;
  if (const obs::Histogram* h = obs::Registry::global().find_histogram(
          "msx_client_request_seconds");
      h != nullptr && h->count() > 0) {
    lat_p50 = h->quantile(0.50);
    lat_p95 = h->quantile(0.95);
    lat_p99 = h->quantile(0.99);
  }

  const double block_rate = requests / best_block;
  const double pipe_rate = requests / best_pipe;
  const double speedup = best_block / best_pipe;
  table.add_row({"blocking-router", Table::num(best_block * 1e3, 3) + "ms",
                 Table::num(block_rate, 1), "1.00x"});
  table.add_row({"pipelined-client", Table::num(best_pipe * 1e3, 3) + "ms",
                 Table::num(pipe_rate, 1), Table::num(speedup, 2) + "x"});
  table.print();

  std::printf("\n%d requests over %d structures; %d shards, %d in flight "
              "(acceptance: pipelined >= 1.5x blocking)\n",
              requests, nstructures, nshards, inflight);
  std::printf("pipelined request latency p50 %.3fms / p95 %.3fms / "
              "p99 %.3fms\n",
              lat_p50 * 1e3, lat_p95 * 1e3, lat_p99 * 1e3);

  JsonObject record;
  record.field("requests", requests)
      .field("structures", nstructures)
      .field("shards", nshards)
      .field("inflight", inflight)
      .field("blocking_seconds", best_block)
      .field("pipelined_seconds", best_pipe)
      .field("requests_per_sec_blocking", block_rate)
      .field("requests_per_sec_pipelined", pipe_rate)
      .field("speedup", speedup)
      .field("latency_p50_seconds", lat_p50)
      .field("latency_p95_seconds", lat_p95)
      .field("latency_p99_seconds", lat_p99);
  artifact.add(record);
  if (!artifact.write(
          cfg.resolved_json_path("BENCH_micro_async_client.json"))) {
    return 1;
  }
  return speedup >= 1.5 ? 0 : 2;
}
