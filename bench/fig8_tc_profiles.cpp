// Figure 8: Triangle Counting — performance profiles of the 12 proposed
// schemes over the graph suite.
//
// Paper result: MSA-1P wins ~65% of cases, followed by MCA-1P, then
// Inner/Hash; Heap-based schemes trail; each 1P variant beats its 2P
// counterpart. Only the Masked SpGEMM time is measured (§8.2).
#include <cstdio>

#include "bench_common.hpp"

using namespace msx;
using namespace msx::bench;

int main(int argc, char** argv) {
  const auto cfg = BenchConfig::parse(argc, argv, /*default_scale_shift=*/-2);
  print_header("fig8_tc_profiles — triangle counting, our 12 schemes",
               "Fig. 8 (§8.2)", cfg);

  const auto schemes = our_schemes(/*include_two_phase=*/true);
  const auto suite = graph_suite(cfg.scale_shift);

  ProfileInput input;
  for (const auto& s : schemes) input.schemes.push_back(s.name);
  input.seconds.assign(schemes.size(), {});

  Table table({"graph", "n", "nnz", "best_scheme", "best_seconds"});
  for (const auto& workload : suite) {
    const auto graph = workload.make();
    const auto lower = prepare_tc_lower(graph);
    input.cases.push_back(workload.name);

    std::string best;
    double best_t = nan_time();
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const double t = time_masked_spgemm<PlusPair<std::int64_t>>(
          lower, lower, lower, schemes[s].opts, cfg);
      input.seconds[s].push_back(t);
      if (!std::isnan(t) && (std::isnan(best_t) || t < best_t)) {
        best_t = t;
        best = schemes[s].name;
      }
    }
    table.add_row({workload.name, std::to_string(graph.nrows()),
                   std::to_string(graph.nnz()), best, Table::num(best_t, 5)});
  }
  table.print();
  report_profiles(input, cfg);
  std::printf("\nExpected shape (paper Fig. 8): MSA-1P leads (~65%% of wins),\n"
              "MCA-1P second; 1P beats 2P for every algorithm; Heap/HeapDot\n"
              "are the slowest family.\n");
  return 0;
}
