// Google-benchmark microbenchmarks of the full masked-SpGEMM kernels on
// controlled ER inputs — per-scheme throughput at three density regimes.
#include <benchmark/benchmark.h>

#include "core/masked_spgemm.hpp"
#include "gen/erdos_renyi.hpp"
#include "semiring/semirings.hpp"

namespace {

using IT = int32_t;
using VT = double;

struct Fixture {
  msx::CSRMatrix<IT, VT> a, b, m;
  Fixture(IT n, IT din, IT dm)
      : a(msx::erdos_renyi<IT, VT>(n, n, din, 1)),
        b(msx::erdos_renyi<IT, VT>(n, n, din, 2)),
        m(msx::erdos_renyi<IT, VT>(n, n, dm, 3)) {}
};

// range(0): algorithm id; range(1): regime id.
void BM_MaskedSpgemm(benchmark::State& state) {
  static const Fixture regimes[] = {
      Fixture(1 << 12, 8, 8),    // balanced
      Fixture(1 << 12, 64, 2),   // dense inputs, sparse mask (pull regime)
      Fixture(1 << 12, 2, 64),   // sparse inputs, dense mask (heap regime)
  };
  const auto algo = static_cast<msx::MaskedAlgo>(state.range(0));
  const auto& f = regimes[state.range(1)];
  msx::MaskedOptions opts;
  opts.algo = algo;
  for (auto _ : state) {
    auto c = msx::masked_spgemm<msx::PlusTimes<VT>>(f.a, f.b, f.m, opts);
    benchmark::DoNotOptimize(c.nnz());
  }
}

void register_all() {
  using msx::MaskedAlgo;
  const struct {
    MaskedAlgo algo;
    const char* name;
  } algos[] = {
      {MaskedAlgo::kMSA, "MSA"},     {MaskedAlgo::kHash, "Hash"},
      {MaskedAlgo::kMCA, "MCA"},     {MaskedAlgo::kHeap, "Heap"},
      {MaskedAlgo::kHeapDot, "HeapDot"}, {MaskedAlgo::kInner, "Inner"},
      {MaskedAlgo::kHybrid, "Hybrid"},
  };
  const char* regimes[] = {"balanced", "pull_regime", "heap_regime"};
  for (const auto& a : algos) {
    for (int r = 0; r < 3; ++r) {
      std::string name = std::string("BM_MaskedSpgemm/") + a.name + "/" +
                         regimes[r];
      benchmark::RegisterBenchmark(name.c_str(), BM_MaskedSpgemm)
          ->Args({static_cast<std::int64_t>(a.algo),
                  static_cast<std::int64_t>(r)});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
