// Figure 11: Triangle Counting strong scaling (GFLOPS vs thread count) on an
// R-MAT graph.
//
// Paper: R-MAT scale 20 on up to 32 (Haswell) / 68 (KNL) threads, "with all
// algorithms scaling well in all cases". Default scale here is smaller;
// raise with --rmat-scale to approach the paper's configuration.
#include <cstdio>

#include "bench_common.hpp"
#include "core/flops.hpp"
#include "gen/rmat.hpp"

using namespace msx;
using namespace msx::bench;

int main(int argc, char** argv) {
  auto cfg = BenchConfig::parse(argc, argv);
  ArgParser args(argc, argv);
  const int scale = static_cast<int>(args.get_int("rmat-scale", 13));
  print_header("fig11_tc_strong_scaling — TC GFLOPS vs thread count",
               "Fig. 11 (§8.2)", cfg);

  const auto graph = rmat<IT, VT>(scale, 42);
  const auto lower = prepare_tc_lower(graph);
  const std::size_t mult = total_flops(lower, lower);
  std::printf("graph: rmat scale %d, n=%d, nnz(L)=%zu, mflops=%.1f\n\n",
              scale, graph.nrows(), lower.nnz(),
              static_cast<double>(mult) / 1e6);

  std::vector<SchemeSpec> schemes;
  for (auto algo : {MaskedAlgo::kMSA, MaskedAlgo::kHash, MaskedAlgo::kMCA,
                    MaskedAlgo::kInner}) {
    MaskedOptions o;
    o.algo = algo;
    schemes.push_back({scheme_name(algo, PhaseMode::kOnePhase), o});
  }

  std::vector<std::string> headers{"threads"};
  for (const auto& s : schemes) headers.push_back(s.name + "_gflops");
  headers.push_back("MSA-1P_speedup");
  Table table(headers);

  const int hw = max_threads();
  double msa_t1 = 0.0;
  for (int threads = 1; threads <= hw; threads *= 2) {
    cfg.threads = threads;
    std::vector<std::string> row{std::to_string(threads)};
    double msa_t = 0.0;
    for (const auto& s : schemes) {
      const double t = time_masked_spgemm<PlusPair<std::int64_t>>(
          lower, lower, lower, s.opts, cfg);
      if (s.opts.algo == MaskedAlgo::kMSA) msa_t = t;
      row.push_back(Table::num(gflops(mult, t), 3));
    }
    if (threads == 1) msa_t1 = msa_t;
    row.push_back(Table::num(msa_t1 / msa_t, 2));
    table.add_row(std::move(row));
    if (threads < hw && threads * 2 > hw) {
      // also measure the exact hardware thread count
      threads = hw / 2;  // loop doubles it to hw
    }
  }
  table.print();
  std::printf("\nExpected shape (paper Fig. 11): near-linear scaling for all\n"
              "schemes up to the physical core count.\n");
  return 0;
}
