#include "runtime/plan_cache.hpp"

#include <cstring>
#include <list>
#include <unordered_map>

#include "common/platform.hpp"

namespace msx {

// 64-bit streaming hash: 8-byte blocks folded with xor-multiply (splitmix64
// constants), tail bytes padded, finalized with the splitmix64 avalanche.
// Quality is what matters here (the cache key is 2×64 bits of this), not
// cryptographic strength.
std::uint64_t plan_hash_bytes(std::uint64_t seed, const void* data,
                              std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed ^ (static_cast<std::uint64_t>(len) *
                            0x9e3779b97f4a7c15ULL);
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t block;
    std::memcpy(&block, p + i, 8);
    h ^= block;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
  }
  if (i < len) {
    std::uint64_t block = 0;
    std::memcpy(&block, p + i, len - i);
    h ^= block;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

std::uint64_t plan_hash_parts(
    std::uint64_t seed, std::span<const std::span<const std::uint8_t>> parts) {
  std::size_t len = 0;
  for (const auto& part : parts) len += part.size();
  std::uint64_t h = seed ^ (static_cast<std::uint64_t>(len) *
                            0x9e3779b97f4a7c15ULL);
  // An 8-byte staging buffer carries block fragments across part boundaries,
  // so the block sequence is exactly the one plan_hash_bytes sees on the
  // concatenated buffer.
  unsigned char staged[8];
  std::size_t nstaged = 0;
  for (const auto& part : parts) {
    const std::uint8_t* p = part.data();
    std::size_t n = part.size();
    if (nstaged > 0) {
      const std::size_t take = n < 8 - nstaged ? n : 8 - nstaged;
      std::memcpy(staged + nstaged, p, take);
      nstaged += take;
      p += take;
      n -= take;
      if (nstaged < 8) continue;
      std::uint64_t block;
      std::memcpy(&block, staged, 8);
      h ^= block;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 27;
      nstaged = 0;
    }
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      std::uint64_t block;
      std::memcpy(&block, p + i, 8);
      h ^= block;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 27;
    }
    if (i < n) {
      std::memcpy(staged, p + i, n - i);
      nstaged = n - i;
    }
  }
  if (nstaged > 0) {
    std::uint64_t block = 0;
    std::memcpy(&block, staged, nstaged);
    h ^= block;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

namespace detail {

namespace {

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const {
    // The halves are already well-mixed; fold them.
    return static_cast<std::size_t>(k.h1 ^ (k.h2 * 0x9e3779b97f4a7c15ULL));
  }
};

}  // namespace

struct PlanCacheIndex::Impl {
  struct Node {
    PlanKey key;
    std::int64_t slot;
  };
  // MRU at the front.
  std::list<Node> lru;
  std::unordered_map<PlanKey, std::list<Node>::iterator, PlanKeyHash> map;
  std::vector<std::int64_t> free_slots;
  std::int64_t next_slot = 0;
};

PlanCacheIndex::PlanCacheIndex(std::size_t capacity)
    : impl_(std::make_unique<Impl>()), capacity_(capacity) {
  check_arg(capacity > 0, "PlanCache: capacity must be positive");
}

PlanCacheIndex::~PlanCacheIndex() = default;

std::int64_t PlanCacheIndex::find(const PlanKey& key) {
  auto it = impl_->map.find(key);
  if (it == impl_->map.end()) return -1;
  impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
  return it->second->slot;
}

std::int64_t PlanCacheIndex::insert(const PlanKey& key) {
  MSX_ASSERT(impl_->map.find(key) == impl_->map.end());
  std::int64_t slot;
  if (!impl_->free_slots.empty()) {
    slot = impl_->free_slots.back();
    impl_->free_slots.pop_back();
  } else {
    slot = impl_->next_slot++;
  }
  impl_->lru.push_front(Impl::Node{key, slot});
  impl_->map[key] = impl_->lru.begin();
  return slot;
}

std::vector<std::int64_t> PlanCacheIndex::slots_lru() const {
  std::vector<std::int64_t> out;
  out.reserve(impl_->lru.size());
  for (auto it = impl_->lru.rbegin(); it != impl_->lru.rend(); ++it) {
    out.push_back(it->slot);
  }
  return out;
}

void PlanCacheIndex::erase_slot(std::int64_t slot) {
  for (auto it = impl_->lru.begin(); it != impl_->lru.end(); ++it) {
    if (it->slot == slot) {
      impl_->map.erase(it->key);
      impl_->lru.erase(it);
      impl_->free_slots.push_back(slot);
      return;
    }
  }
  MSX_ASSERT(false && "erase_slot: unknown slot");
}

std::size_t PlanCacheIndex::size() const { return impl_->map.size(); }

}  // namespace detail
}  // namespace msx
