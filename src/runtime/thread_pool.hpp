// Persistent thread pool with futures — the worker substrate of the
// concurrent masked-SpGEMM runtime (batch executor + plan cache).
//
// Coexists with the OpenMP paths: pool workers are plain std::threads, so a
// job running on a worker can still enter OpenMP regions (each worker is its
// own OpenMP initial thread), but the runtime's own scheduling never goes
// through OpenMP. That separation is deliberate — it keeps the concurrency
// the runtime introduces fully visible to ThreadSanitizer (std::mutex /
// atomics / futures), which the CI TSan job relies on.
//
// The pool doubles as a TaskArena (common/exec_context.hpp): a large masked
// product can run cooperatively on the calling thread plus every idle
// worker, which is how the batch executor gives wide jobs intra-job
// parallelism without forking an OpenMP team.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/exec_context.hpp"
#include "common/thread_annotations.hpp"

namespace msx {

// Two-level job priority shared by the runtime and the client API: interactive
// work (a user waiting on the answer) is dequeued before batch work wherever a
// queue forms — the thread pool's task queue, the batch executor's wide lane,
// and the sharded client's per-connection send queues. FIFO within a level.
enum class Priority {
  kInteractive,
  kBatch,
};

const char* to_string(Priority p);

class ThreadPool final : public TaskArena {
 public:
  // threads <= 0 picks the OpenMP default (max_threads()), so a pool sized
  // "like the machine" matches what a single OpenMP-parallel call would use.
  explicit ThreadPool(int threads = 0);

  // Drains every queued task (futures stay valid), then joins the workers.
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Index of the calling thread within this pool ([0, size())), or -1 when
  // called from a thread that is not one of this pool's workers.
  int worker_index() const;

  // Enqueues fn and returns a future for its result. Exceptions thrown by fn
  // surface at future.get().
  template <class F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>&>> {
    using R = std::invoke_result_t<std::decay_t<F>&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto future = task->get_future();
    submit_detached([task]() { (*task)(); });
    return future;
  }

  // Fire-and-forget enqueue. The task must not throw (use submit() for
  // fallible work). Interactive tasks are dequeued before batch tasks; order
  // within a level is FIFO.
  void submit_detached(std::function<void()> task,
                       Priority priority = Priority::kBatch);

  // Tasks fully executed so far (stat for tests and the service example).
  std::size_t tasks_executed() const;

  // --- TaskArena ---
  // Cooperative run: the caller executes body(current_slot()) and every
  // worker is offered body once. Workers busy with other tasks skip the
  // offer once the caller has finished; while waiting for stragglers the
  // caller helps drain the regular task queue, so a run() issued from inside
  // a worker (or against a fully busy pool) cannot deadlock.
  int concurrency() const override { return size() + 1; }
  int current_slot() const override { return worker_index() + 1; }
  void run(const std::function<void(int)>& body) override;

 private:
  struct HelperState;

  void worker_loop(int index);
  // Pops one queued task and runs it; returns false if the queues were empty.
  bool try_run_one();
  // Interactive first; caller must have checked have_work_locked().
  std::function<void()> pop_locked() MSX_REQUIRES(mu_);
  bool have_work_locked() const MSX_REQUIRES(mu_) {
    return !queue_hi_.empty() || !queue_.empty();
  }

  std::vector<std::thread> workers_;
  mutable Mutex mu_{LockRank::kThreadPool, "ThreadPool::mu_"};
  CondVar cv_;
  std::deque<std::function<void()>> queue_hi_
      MSX_GUARDED_BY(mu_);                                // kInteractive
  std::deque<std::function<void()>> queue_ MSX_GUARDED_BY(mu_);  // kBatch
  bool stop_ MSX_GUARDED_BY(mu_) = false;
  std::size_t executed_ MSX_GUARDED_BY(mu_) = 0;
};

}  // namespace msx
