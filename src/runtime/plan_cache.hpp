// Structure-keyed LRU plan cache — MaskedPlan reuse across independent
// requests (runtime subsystem, ISSUE 3 tentpole).
//
// The paper's workloads re-issue masked products with recurring structure
// (k-truss rounds, BC sweeps, repeated service queries). A MaskedPlan
// already amortizes setup for a caller that *holds* it; the PlanCache makes
// that transparent: requests are fingerprinted by the structure of
// (A, B, M) plus the options, and a hit leases a ready plan — resolved
// algorithm, cached CSC of B, two-phase symbolic rowptr, flop-balanced
// partition, warm accumulators — instead of planning from scratch.
//
// Concurrency model: leases are exclusive per plan *instance*. When every
// instance of a hot key is busy, acquire() builds an extra instance for the
// same key (bounded in practice by the executor's worker count) rather than
// blocking — a plan-pool, the way connection pools scale a hot endpoint.
// Instance workspaces are additionally leased per run inside the kernel
// (core/kernel_registry.hpp), so even a caller that shares one warmed plan
// across threads never shares accumulators.
//
// Value semantics: the fingerprint covers structure only. A hit must
// therefore refresh the plan's owned numeric values (Lease::reused() tells
// the caller to go through execute_values); the mask contributes only its
// pattern, as everywhere else in the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"
#include "core/delta.hpp"
#include "core/options.hpp"
#include "core/plan.hpp"
#include "matrix/csr.hpp"
#include "semiring/semirings.hpp"

namespace msx {

// 128-bit structure fingerprint (two independently seeded 64-bit streams;
// a collision requires both to collide, so accidental key equality is
// negligible at cache scale).
struct PlanKey {
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;
  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

// Streaming byte hash used to build PlanKey halves (plan_cache.cpp).
std::uint64_t plan_hash_bytes(std::uint64_t seed, const void* data,
                              std::size_t len);

// plan_hash_bytes over the logical concatenation of `parts`, without
// materializing it: bit-identical to hashing one contiguous buffer holding
// the same bytes. This is what lets a scatter-gather frame writer (service
// wire layer) checksum header + rowptr + colidx + values spans in place
// while the receiver verifies the contiguous payload it read.
std::uint64_t plan_hash_parts(std::uint64_t seed,
                              std::span<const std::span<const std::uint8_t>> parts);

struct PlanCacheStats {
  std::uint64_t hits = 0;        // idle instance reused
  std::uint64_t misses = 0;      // unknown structure, plan built
  std::uint64_t grows = 0;       // known structure, all instances busy
  std::uint64_t evictions = 0;   // entries dropped by the LRU policy
  std::uint64_t instances = 0;   // plans currently owned by the cache
  std::uint64_t bytes_held = 0;  // resident bytes of those plans
  // Superseded instances carried forward across a structure update via
  // MaskedPlan::apply_delta instead of a cold rebuild (streaming path).
  std::uint64_t delta_migrations = 0;

  double hit_rate() const {
    const auto total = hits + misses + grows;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

namespace detail {

// Non-template LRU index: key -> slot id plus recency order and the shared
// stats counters. Implemented in plan_cache.cpp; the typed cache below owns
// the plan instances in a parallel structure.
class PlanCacheIndex {
 public:
  explicit PlanCacheIndex(std::size_t capacity);
  ~PlanCacheIndex();
  PlanCacheIndex(const PlanCacheIndex&) = delete;
  PlanCacheIndex& operator=(const PlanCacheIndex&) = delete;

  // Looks the key up, moving it to most-recently-used. Returns the slot id
  // or -1 when absent.
  std::int64_t find(const PlanKey& key);
  // Inserts the key (must be absent) and returns its new slot id.
  std::int64_t insert(const PlanKey& key);
  // Every slot id in least-recently-used-first order — the eviction walk of
  // the typed layer (which skips slots with busy instances and stops once
  // back under capacity).
  std::vector<std::int64_t> slots_lru() const;
  void erase_slot(std::int64_t slot);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t capacity_;
};

}  // namespace detail

// Ancestry of a structure that was just updated by an edge delta: the
// superseded B and the delta that produced the current one. A caller that
// passes this to acquire() lets the cache migrate a warm superseded plan
// forward (MaskedPlan::apply_delta) instead of building cold — the plan
// cache's half of delta rebind. Entries under the old key that are not
// migrated are simply left to age out of the LRU: the content-based key
// means they can only be hit again if the exact old structure is
// re-registered, so "invalidation" of superseded entries is by supersession,
// not by sweep.
template <class IT, class VT>
struct PlanLineage {
  std::shared_ptr<const CSRMatrix<IT, VT>> old_b;
  std::shared_ptr<const EdgeDelta<IT, VT>> delta;
  // delta_touched_rows(*delta), computed ONCE by whoever built the lineage
  // and shared by every consumer — a delta that fans out to several plan
  // instances (or panel shards) must not re-derive it per apply_delta call.
  // Optional: a null pointer just means each consumer computes its own.
  std::shared_ptr<const std::vector<IT>> touched;
};

// Builds the structure fingerprint for (a, b, m, opts). Aliasing is part of
// the key: a plan built with B aliasing A stores one matrix for both and
// refreshes values accordingly, so it must never serve a request with two
// distinct (if structurally identical) operands.
template <class IT, class VT, class MT>
PlanKey plan_fingerprint(const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
                         const CSRMatrix<IT, MT>& m,
                         const MaskedOptions& opts) {
  const bool b_is_a = static_cast<const void*>(&b) == static_cast<const void*>(&a);
  const bool m_is_a = static_cast<const void*>(&m) == static_cast<const void*>(&a);
  const bool m_is_b = static_cast<const void*>(&m) == static_cast<const void*>(&b);

  const std::uint64_t header[] = {
      static_cast<std::uint64_t>(a.nrows()),
      static_cast<std::uint64_t>(a.ncols()),
      static_cast<std::uint64_t>(b.nrows()),
      static_cast<std::uint64_t>(b.ncols()),
      static_cast<std::uint64_t>(m.nrows()),
      static_cast<std::uint64_t>(m.ncols()),
      (b_is_a ? 1u : 0u) | (m_is_a ? 2u : 0u) | (m_is_b ? 4u : 0u),
      static_cast<std::uint64_t>(opts.algo),
      static_cast<std::uint64_t>(opts.phases),
      static_cast<std::uint64_t>(opts.kind),
      static_cast<std::uint64_t>(opts.schedule),
      static_cast<std::uint64_t>(opts.cost_model),
      static_cast<std::uint64_t>(opts.chunk),
      static_cast<std::uint64_t>(opts.threads),
      static_cast<std::uint64_t>(opts.heap_ninspect),
      opts.inner_gallop ? 1u : 0u,
      sizeof(IT),
  };
  // Deliberately absent, like `dist`: opts.adaptive. The adaptive engine is
  // bit-identical to the resolved algorithm, so the knob must not fork the
  // cache; the first request's setting sticks for the cached plan's
  // lifetime (documented in README "Adaptive execution").

  PlanKey key;
  auto mix = [&](const void* data, std::size_t len) {
    key.h1 = plan_hash_bytes(key.h1 ^ 0x9e3779b97f4a7c15ULL, data, len);
    key.h2 = plan_hash_bytes(key.h2 ^ 0xc2b2ae3d27d4eb4fULL, data, len);
  };
  auto mix_span = [&](auto span) {
    mix(span.data(), span.size_bytes());
  };
  mix(header, sizeof(header));
  mix_span(a.rowptr());
  mix_span(a.colidx());
  if (!b_is_a) {
    mix_span(b.rowptr());
    mix_span(b.colidx());
  }
  if (!m_is_a && !m_is_b) {
    mix_span(m.rowptr());
    mix_span(m.colidx());
  }
  return key;
}

// The cache proper: typed over the semiring/index/value triple it serves.
// Thread-safe; one mutex guards the index and instance flags, while plan
// construction and execution happen outside it.
template <class SR, class IT, class VT>
  requires Semiring<SR>
class PlanCache {
 public:
  using Plan = MaskedPlan<SR, IT, VT>;

  // `capacity` bounds distinct structure keys (entry-count LRU); a non-zero
  // `byte_budget` additionally bounds the resident bytes the cached plans
  // hold (operand copies + CSC + symbolic/partition caches) — the LRU walk
  // then evicts cold entries until back under BOTH limits, which is what
  // keeps a cache of a few wide matrices from dwarfing a cache of many small
  // ones (ROADMAP: plan-cache memory budget).
  explicit PlanCache(std::size_t capacity = 64, std::size_t byte_budget = 0)
      : capacity_(capacity == 0 ? 1 : capacity),
        index_(capacity_),
        byte_budget_(byte_budget) {}

  // One cached plan plus its lease flag. shared_ptr-managed so an entry can
  // be evicted while an instance is still leased out — the lease keeps the
  // plan alive and simply drops it on release.
  // busy/owned/bytes are guarded by the OWNING cache's mu_ — a cross-object
  // guard MSX_GUARDED_BY cannot express (the analysis only accepts
  // capabilities reachable from the annotated member's own object), so the
  // contract lives here instead: never touch them without that mutex.
  // `plan` itself is safe to use unlocked while leased (leases are exclusive).
  struct Instance {
    std::unique_ptr<Plan> plan;
    bool busy = false;       // guarded by the owning PlanCache::mu_
    bool owned = false;      // guarded by the owning PlanCache::mu_
    std::size_t bytes = 0;   // guarded by the owning PlanCache::mu_
  };

  // Exclusive handle on one plan instance. Move-only; returns the instance
  // to the cache on destruction. The cache must outlive its leases.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      release();
      cache_ = std::exchange(other.cache_, nullptr);
      rec_ = std::move(other.rec_);
      reused_ = other.reused_;
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    Plan& plan() { return *rec_->plan; }
    // True when the lease hands back a previously built plan: the caller
    // must refresh numeric values (execute_values) since only structure is
    // part of the key.
    bool reused() const { return reused_; }

   private:
    friend class PlanCache;
    Lease(PlanCache* cache, std::shared_ptr<Instance> rec, bool reused)
        : cache_(cache), rec_(std::move(rec)), reused_(reused) {}

    void release() {
      if (cache_ != nullptr && rec_ != nullptr) {
        // The first execute() lazily builds the symbolic rowptr and the row
        // partition, so the plan is heavier now than at insert; re-measure
        // while the caller hands it back so the byte budget accounts what
        // the cache really holds (skipped once evicted — those bytes were
        // already written off).
        const std::size_t bytes = rec_->plan->resident_bytes();
        MutexLock lock(&cache_->mu_);
        if (rec_->owned) {
          cache_->stats_.bytes_held += bytes;
          cache_->stats_.bytes_held -= rec_->bytes;
          rec_->bytes = bytes;
        }
        rec_->busy = false;
      }
      cache_ = nullptr;
      rec_.reset();
    }

    PlanCache* cache_ = nullptr;
    std::shared_ptr<Instance> rec_;
    bool reused_ = false;
  };

  // Leases a plan for the request, building one on miss (or when every
  // cached instance of the key is busy). Safe to call concurrently. When
  // `lineage` is given, a miss first tries to migrate an idle instance of
  // the superseded structure forward via apply_delta — the warm path of a
  // streaming update; a failed migration silently falls back to building
  // cold.
  template <class MT>
  Lease acquire(const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
                const CSRMatrix<IT, MT>& m, const MaskedOptions& opts = {},
                const PlanLineage<IT, VT>* lineage = nullptr) {
    const PlanKey key = plan_fingerprint(a, b, m, opts);
    {
      MutexLock lock(&mu_);
      const std::int64_t slot = index_.find(key);
      if (slot >= 0) {
        for (auto& rec : slots_[static_cast<std::size_t>(slot)].instances) {
          if (!rec->busy) {
            rec->busy = true;
            ++stats_.hits;
            return Lease(this, rec, /*reused=*/true);
          }
        }
        ++stats_.grows;
      } else {
        ++stats_.misses;
      }
    }

    if (lineage != nullptr && lineage->old_b != nullptr &&
        lineage->delta != nullptr) {
      if (auto migrated = try_migrate(key, a, b, m, opts, *lineage);
          migrated.rec_ != nullptr) {
        return migrated;
      }
    }

    // Build outside the lock — planning is the expensive part the cache
    // exists to dodge, and concurrent misses on different keys must overlap.
    auto rec = std::make_shared<Instance>();
    rec->plan = std::make_unique<Plan>(a, b, m, opts);
    rec->busy = true;
    rec->bytes = rec->plan->resident_bytes();

    std::vector<std::shared_ptr<Instance>> evicted;
    {
      MutexLock lock(&mu_);
      std::int64_t slot = index_.find(key);
      if (slot < 0) {
        slot = index_.insert(key);
        if (static_cast<std::size_t>(slot) >= slots_.size()) {
          slots_.resize(static_cast<std::size_t>(slot) + 1);
        }
        slots_[static_cast<std::size_t>(slot)].instances.clear();
      }
      rec->owned = true;
      slots_[static_cast<std::size_t>(slot)].instances.push_back(rec);
      ++stats_.instances;
      stats_.bytes_held += rec->bytes;
      evict_locked(evicted);
    }
    // Evicted plans are destroyed here, outside the lock.
    return Lease(this, std::move(rec), /*reused=*/false);
  }

  PlanCacheStats stats() const {
    MutexLock lock(&mu_);
    return stats_;
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t byte_budget() const { return byte_budget_; }

  // Drops every idle instance and empty entry (busy instances survive until
  // their lease returns; their entries stay).
  void clear() {
    std::vector<std::shared_ptr<Instance>> dropped;
    MutexLock lock(&mu_);
    for (auto cand : index_.slots_lru()) {
      try_drop_slot(cand, dropped);
    }
  }

 private:
  friend class Lease;

  struct Slot {
    std::vector<std::shared_ptr<Instance>> instances;
  };

  // Miss path with lineage: locate the superseded structure's entry (its
  // fingerprint is reconstructed alias-faithfully around the old B), pop one
  // idle instance, patch it forward with apply_delta outside the lock, and
  // re-insert it under the new key. Returns a default Lease (rec_ == null)
  // when no idle superseded instance exists or the patch fails.
  template <class MT>
  Lease try_migrate(const PlanKey& key, const CSRMatrix<IT, VT>& a,
                    const CSRMatrix<IT, VT>& b, const CSRMatrix<IT, MT>& m,
                    const MaskedOptions& opts,
                    const PlanLineage<IT, VT>& lineage) {
    const void* pa = static_cast<const void*>(&a);
    const void* pb = static_cast<const void*>(&b);
    const void* pm = static_cast<const void*>(&m);
    const bool b_is_a = pb == pa;
    const bool m_is_a = pm == pa;
    const bool m_is_b = pm == pb;

    // The old key: same request with the superseded B in place of the new
    // one, preserving the aliasing pattern (aliased operands were one object
    // then too).
    const CSRMatrix<IT, VT>& b_old = *lineage.old_b;
    const CSRMatrix<IT, VT>& a_old = b_is_a ? b_old : a;
    PlanKey old_key;
    if (m_is_a || m_is_b) {
      if constexpr (std::is_same_v<MT, VT>) {
        const CSRMatrix<IT, VT>& m_old = m_is_a ? a_old : b_old;
        old_key = plan_fingerprint(a_old, b_old, m_old, opts);
      } else {
        // An aliased mask implies MT == VT at the submit sites; a mismatch
        // cannot name the old entry, so skip migration.
        return Lease();
      }
    } else {
      old_key = plan_fingerprint(a_old, b_old, m, opts);
    }

    std::shared_ptr<Instance> rec;
    {
      MutexLock lock(&mu_);
      const std::int64_t slot = index_.find(old_key);
      if (slot >= 0) {
        auto& insts = slots_[static_cast<std::size_t>(slot)].instances;
        for (auto it = insts.begin(); it != insts.end(); ++it) {
          if (!(*it)->busy) {
            rec = std::move(*it);
            insts.erase(it);
            --stats_.instances;
            stats_.bytes_held -= rec->bytes;
            rec->owned = false;
            break;
          }
        }
        if (insts.empty()) index_.erase_slot(slot);
      }
    }
    if (rec == nullptr) return Lease();

    try {
      rec->plan->apply_delta(*lineage.delta, lineage.touched.get());
    } catch (...) {
      // Destroy the instance and let the caller build cold.
      return Lease();
    }
    rec->busy = true;
    rec->bytes = rec->plan->resident_bytes();

    std::vector<std::shared_ptr<Instance>> evicted;
    {
      MutexLock lock(&mu_);
      std::int64_t slot = index_.find(key);
      if (slot < 0) {
        slot = index_.insert(key);
        if (static_cast<std::size_t>(slot) >= slots_.size()) {
          slots_.resize(static_cast<std::size_t>(slot) + 1);
        }
        slots_[static_cast<std::size_t>(slot)].instances.clear();
      }
      rec->owned = true;
      slots_[static_cast<std::size_t>(slot)].instances.push_back(rec);
      ++stats_.instances;
      stats_.bytes_held += rec->bytes;
      ++stats_.delta_migrations;
      evict_locked(evicted);
    }
    // reused=true: the migrated plan's owned values predate this request —
    // the caller refreshes numerics via execute_values as on any warm hit.
    return Lease(this, std::move(rec), /*reused=*/true);
  }

  // True while either limit (entry count, byte budget) is exceeded.
  bool over_limits_locked() const MSX_REQUIRES(mu_) {
    if (index_.size() > capacity_) return true;
    return byte_budget_ > 0 && stats_.bytes_held > byte_budget_;
  }

  // Walks slots LRU-first while over the entry-count capacity
  // or the byte budget; an entry is evictable only when none of its
  // instances is leased out, so a busy LRU entry lets the cache exceed its
  // limits softly rather than blocking.
  void evict_locked(std::vector<std::shared_ptr<Instance>>& evicted)
      MSX_REQUIRES(mu_) {
    if (!over_limits_locked()) return;
    for (std::int64_t cand : index_.slots_lru()) {
      if (!over_limits_locked()) break;
      auto& slot = slots_[static_cast<std::size_t>(cand)];
      bool busy = false;
      for (const auto& rec : slot.instances) busy = busy || rec->busy;
      if (busy) continue;
      stats_.instances -= slot.instances.size();
      ++stats_.evictions;
      for (auto& rec : slot.instances) {
        stats_.bytes_held -= rec->bytes;
        rec->owned = false;
        evicted.push_back(std::move(rec));
      }
      slot.instances.clear();
      index_.erase_slot(cand);
    }
  }

  void try_drop_slot(std::int64_t cand,
                     std::vector<std::shared_ptr<Instance>>& dropped)
      MSX_REQUIRES(mu_) {
    auto& slot = slots_[static_cast<std::size_t>(cand)];
    bool busy = false;
    for (const auto& rec : slot.instances) busy = busy || rec->busy;
    if (busy) return;
    stats_.instances -= slot.instances.size();
    for (auto& rec : slot.instances) {
      stats_.bytes_held -= rec->bytes;
      rec->owned = false;
      dropped.push_back(std::move(rec));
    }
    slot.instances.clear();
    index_.erase_slot(cand);
  }

  const std::size_t capacity_;  // mirrors index_.capacity(); lock-free reads
  mutable Mutex mu_{LockRank::kPlanCache, "PlanCache::mu_"};
  detail::PlanCacheIndex index_ MSX_GUARDED_BY(mu_);
  std::size_t byte_budget_ = 0;  // immutable after construction
  std::vector<Slot> slots_ MSX_GUARDED_BY(mu_);
  PlanCacheStats stats_ MSX_GUARDED_BY(mu_);
};

}  // namespace msx
