#include "runtime/batch.hpp"

namespace msx {

JobShape moldable_shape(double estimated_work, double threshold) {
  if (threshold <= 0.0) return JobShape::kSmall;
  return estimated_work < threshold ? JobShape::kSmall : JobShape::kWide;
}

}  // namespace msx
