#include "runtime/thread_pool.hpp"

#include <atomic>
#include <chrono>

#include "common/platform.hpp"

namespace msx {

namespace {

// Worker identity for worker_index()/current_slot(). A plain thread_local
// pair rather than a map: a thread belongs to at most one pool at a time
// (workers never run inside another pool's worker_loop).
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_index = -1;

}  // namespace

const char* to_string(Priority p) {
  switch (p) {
    case Priority::kInteractive: return "interactive";
    case Priority::kBatch: return "batch";
  }
  return "?";
}

ThreadPool::ThreadPool(int threads) {
  const int n = threads > 0 ? threads : max_threads();
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::worker_index() const {
  return tls_pool == this ? tls_index : -1;
}

void ThreadPool::submit_detached(std::function<void()> task,
                                 Priority priority) {
  {
    MutexLock lock(&mu_);
    check_arg(!stop_, "ThreadPool: submit after shutdown");
    (priority == Priority::kInteractive ? queue_hi_ : queue_)
        .push_back(std::move(task));
  }
  cv_.notify_one();
}

std::function<void()> ThreadPool::pop_locked() {
  auto& q = queue_hi_.empty() ? queue_ : queue_hi_;
  auto task = std::move(q.front());
  q.pop_front();
  return task;
}

std::size_t ThreadPool::tasks_executed() const {
  MutexLock lock(&mu_);
  return executed_;
}

void ThreadPool::worker_loop(int index) {
  tls_pool = this;
  tls_index = index;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && !have_work_locked()) cv_.wait(mu_);
      if (!have_work_locked()) return;  // stop_ set and queues drained
      task = pop_locked();
    }
    task();
    {
      MutexLock lock(&mu_);
      ++executed_;
    }
  }
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    MutexLock lock(&mu_);
    if (!have_work_locked()) return false;
    task = pop_locked();
  }
  task();
  {
    MutexLock lock(&mu_);
    ++executed_;
  }
  return true;
}

// State shared between run() and its queued helper offers. Helpers hold the
// shared_ptr, so an offer dequeued after run() has returned (impossible — see
// the pending protocol below — but cheap to make structurally safe) touches
// only this block, never the caller's stack.
struct ThreadPool::HelperState {
  const std::function<void(int)>* body = nullptr;
  std::atomic<bool> cancelled{false};
  std::atomic<int> pending{0};
  Mutex mu{LockRank::kTaskState, "ThreadPool::HelperState::mu"};
  CondVar done;
  std::exception_ptr error MSX_GUARDED_BY(mu);  // first helper exception
};

void ThreadPool::run(const std::function<void(int)>& body) {
  const int nhelpers = size();
  auto state = std::make_shared<HelperState>();
  state->body = &body;
  state->pending.store(nhelpers, std::memory_order_relaxed);

  for (int i = 0; i < nhelpers; ++i) {
    submit_detached([this, state] {
      // Helper offers execute the body only on pool workers: slots 1..N are
      // worker-owned, while slot 0 belongs to the run's caller. A non-worker
      // thread can end up here through another run()'s drain loop
      // (try_run_one below); running the body there would collide with that
      // run's caller on slot 0, so it only retires the offer.
      if (worker_index() >= 0 &&
          !state->cancelled.load(std::memory_order_acquire)) {
        try {
          (*state->body)(current_slot());
        } catch (...) {
          MutexLock lock(&state->mu);
          if (!state->error) state->error = std::current_exception();
        }
      }
      if (state->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        MutexLock lock(&state->mu);
        state->done.notify_all();
      }
    });
  }

  std::exception_ptr caller_error;
  try {
    body(current_slot());
  } catch (...) {
    caller_error = std::current_exception();
  }

  // The caller is done; offers that have not started yet become no-ops.
  // run() still waits for every offer to be *dequeued* (so `body` stays
  // valid), helping with the regular queue in the meantime — that is what
  // makes run() safe from inside a worker and live against a busy pool.
  state->cancelled.store(true, std::memory_order_release);
  while (state->pending.load(std::memory_order_acquire) > 0) {
    if (!try_run_one()) {
      MutexLock lock(&state->mu);
      if (state->pending.load(std::memory_order_acquire) > 0) {
        state->done.wait_for(state->mu, std::chrono::milliseconds(1));
      }
    }
  }

  if (caller_error) std::rethrow_exception(caller_error);
  MutexLock lock(&state->mu);
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace msx
