// BatchExecutor — concurrent masked-SpGEMM service front end (ISSUE 3
// tentpole): submit(A, B, M, options) returns a future; many products run
// concurrently on a persistent thread pool, plans are transparently reused
// through the structure-keyed PlanCache, and a moldable policy decides each
// job's shape:
//
//   * small jobs (estimated work below `wide_work_threshold`) run fully
//     serial — ExecContext::serial(), no OpenMP region, one job per pool
//     worker. At service scale this inter-job parallelism is where the
//     throughput is: per-call parallel-region and planning overheads dwarf
//     the kernels themselves (CombBLAS and the emergent-sparsity MMM work
//     both make this observation for batched sparse products).
//   * wide jobs get the whole pool: a dedicated lane runs one wide job at a
//     time with ExecContext::arena(pool), so its symbolic/numeric passes are
//     executed cooperatively by every pool worker that is not busy with a
//     small job — intra-job parallelism without forking an OpenMP team.
//
// Results are bit-identical to direct masked_spgemm calls with the same
// options: schedules and contexts never change what a row computes, only
// who computes it (tests/runtime/test_runtime_stress.cpp holds the line).
//
// Operands are copied at submit (service semantics: the caller may mutate or
// drop its matrices immediately); aliased operands (k-truss passes the same
// matrix as A, B and mask) are detected by address and stored once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>

#include "common/exec_context.hpp"
#include "common/thread_annotations.hpp"
#include "core/kernel_common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "core/options.hpp"
#include "core/plan.hpp"
#include "matrix/csr.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/thread_pool.hpp"
#include "semiring/semirings.hpp"

namespace msx {

// Which lane a job runs in (moldable scheduling decision).
enum class JobShape {
  kSmall,  // serial on one pool worker (inter-job parallelism)
  kWide,   // whole pool via the wide lane (intra-job parallelism)
};

// Pure policy: small below the threshold, wide at or above it. `threshold`
// <= 0 forces everything small (useful to benchmark the lanes separately).
JobShape moldable_shape(double estimated_work, double threshold);

// What submit() does when the executor is at its admission limits
// (max_pending_jobs / max_pending_bytes): block the caller until capacity
// frees up, or reject immediately with BatchRejected. A service front end
// wants kReject (turn overload into a cheap wire-level "overloaded" response
// the router can failover on); embedded callers usually want kBlock.
enum class AdmissionPolicy {
  kBlock,
  kReject,
};

// Thrown by submit()/submit_shared() under AdmissionPolicy::kReject when the
// executor is at capacity. The job was NOT enqueued (and is not counted in
// stats().submitted).
class BatchRejected : public std::runtime_error {
 public:
  BatchRejected()
      : std::runtime_error(
            "BatchExecutor: admission limits reached (back-pressure)") {}
};

// Per-job queue/run timing, written by the executing worker inside the job
// body — sequenced before the job's future becomes ready, so a caller that
// reads it after future.get() / the completion hook (the shard's sender)
// needs no extra synchronization.
struct JobTiming {
  std::uint64_t queue_ns = 0;  // admission -> execution start
  std::uint64_t run_ns = 0;    // kernel execution (plan + execute)
};

// Per-job submit options beyond the MaskedOptions that shape the product
// itself: queueing priority (interactive jobs are popped before batch jobs in
// both the pool queue and the wide lane) and an optional completion hook.
struct JobOptions {
  Priority priority = Priority::kBatch;
  // Invoked on the executing worker right after the job finishes (success or
  // error) and before the executor's in-flight accounting settles, so
  // wait_idle() returning guarantees every hook has run. The job's future is
  // ready by the time the hook fires — this is the async client's completion
  // seam. Must not throw and must not re-enter the executor.
  std::function<void()> on_complete;
  // When set, the worker stamps the job's queue/run split here (the v5
  // response timing the shard ships back).
  std::shared_ptr<JobTiming> timing;
  // Ambient trace for the job: the worker installs it for the duration, so
  // executor and phase_driver spans parent under the request's timeline.
  obs::TraceContext trace;
};

struct BatchLimits {
  // Pool worker count; <= 0 picks the OpenMP default (max_threads()).
  int pool_threads = 0;
  // Structure keys the plan cache retains (LRU beyond that).
  std::size_t plan_cache_capacity = 64;
  // Moldable cutoff on the O(1) work estimate (detail::estimate_push_work);
  // defaults
  // to the same ~1e5-flops boundary the kAuto schedule uses for its
  // tiny-input decision — below it a product cannot feed even one parallel
  // pass, so running it serial costs nothing and frees the pool.
  double wide_work_threshold = kAutoScheduleTinyWork;
  // Disable to plan every job from scratch (ablation / memory ceiling).
  bool cache_plans = true;
  // Plan-cache byte budget: bytes the cached plans may hold (operand copies,
  // CSC of B, symbolic rowptr, partition) before LRU eviction kicks in even
  // under the entry-count capacity. 0 = entry-count LRU only.
  std::size_t plan_cache_bytes = 0;
  // Bounded-queue admission: maximum in-flight jobs (submitted, not yet
  // completed) and in-flight operand bytes. 0 = unbounded. A single job
  // larger than max_pending_bytes is still admitted when it is alone, so an
  // oversized request degrades to serialization instead of deadlock.
  std::size_t max_pending_jobs = 0;
  std::size_t max_pending_bytes = 0;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
};

struct BatchStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t small_jobs = 0;
  std::uint64_t wide_jobs = 0;
  std::uint64_t interactive_jobs = 0;  // jobs admitted at Priority::kInteractive
  std::uint64_t rejected = 0;          // kReject admissions refused
  std::uint64_t admission_blocks = 0;  // kBlock submits that had to wait
  std::uint64_t pending_jobs = 0;      // in-flight gauge at snapshot time
  std::uint64_t pending_bytes = 0;     // in-flight operand bytes gauge
  PlanCacheStats cache;
};

template <class SR, class IT, class VT>
  requires Semiring<SR>
class BatchExecutor {
 public:
  using output_matrix = CSRMatrix<IT, typename SR::value_type>;
  using Cache = PlanCache<SR, IT, VT>;

  explicit BatchExecutor(const BatchLimits& limits = {})
      : limits_(limits),
        pool_(limits.pool_threads),
        cache_(limits.plan_cache_capacity, limits.plan_cache_bytes),
        wide_thread_([this] { wide_loop(); }) {}

  // Drains every submitted job, then shuts the lanes down.
  ~BatchExecutor() {
    wait_idle();
    {
      MutexLock lock(&mu_);
      wide_stop_ = true;
    }
    wide_cv_.notify_all();
    wide_thread_.join();
    // pool_ destructor drains and joins its workers.
  }

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  // Enqueues C = M .* (A·B) (or the complemented form) and returns a future
  // for the result. Operands are copied (the caller may mutate or drop them
  // immediately); aliases among A/B/M are preserved. Validation errors
  // (shape mismatches, unsupported algorithm/mask combinations) surface at
  // future.get().
  template <class MT>
  std::future<output_matrix> submit(const CSRMatrix<IT, VT>& a,
                                    const CSRMatrix<IT, VT>& b,
                                    const CSRMatrix<IT, MT>& m,
                                    const MaskedOptions& opts = {},
                                    JobOptions job = {}) {
    // Collapse aliases so the plan sees the same aliasing the caller
    // expressed (and the fingerprint keys on it).
    auto ca = std::make_shared<const CSRMatrix<IT, VT>>(a);
    std::shared_ptr<const CSRMatrix<IT, VT>> cb = ca;
    if (static_cast<const void*>(&b) != static_cast<const void*>(&a)) {
      cb = std::make_shared<const CSRMatrix<IT, VT>>(b);
    }
    std::shared_ptr<const CSRMatrix<IT, MT>> cm;
    if constexpr (std::is_same_v<MT, VT>) {
      if (static_cast<const void*>(&m) == static_cast<const void*>(&a)) {
        cm = ca;
      } else if (static_cast<const void*>(&m) ==
                 static_cast<const void*>(&b)) {
        cm = cb;
      }
    }
    if (cm == nullptr) cm = std::make_shared<const CSRMatrix<IT, MT>>(m);
    return submit_shared(std::move(ca), std::move(cb), std::move(cm), opts,
                         std::move(job));
  }

  // Zero-copy form for callers that already hold shared operands (the apps'
  // stationary adjacency matrix, re-submitted every BFS/BC level, must not
  // be copied per job). Aliasing is expressed by passing the same
  // shared_ptr; the matrices must not be mutated while jobs are in flight.
  // `lineage` (optional) names the superseded B and the delta that produced
  // the current one, letting the plan cache migrate a warm superseded plan
  // forward instead of building cold (streaming updates; see PlanLineage).
  template <class MT>
  std::future<output_matrix> submit_shared(
      std::shared_ptr<const CSRMatrix<IT, VT>> a,
      std::shared_ptr<const CSRMatrix<IT, VT>> b,
      std::shared_ptr<const CSRMatrix<IT, MT>> m,
      const MaskedOptions& opts = {}, JobOptions job = {},
      std::shared_ptr<const PlanLineage<IT, VT>> lineage = nullptr) {
    check_arg(a != nullptr && b != nullptr && m != nullptr,
              "BatchExecutor::submit_shared: null operand");
    const JobShape shape = moldable_shape(
        detail::estimate_push_work(static_cast<double>(a->nnz()),
                                   static_cast<double>(b->nnz()),
                                   static_cast<double>(b->nrows())),
        limits_.wide_work_threshold);

    // Operand bytes this job keeps alive while in flight (aliases counted
    // once) — the unit of the byte-bounded admission policy.
    std::size_t job_bytes = a->storage_bytes();
    if (static_cast<const void*>(b.get()) != static_cast<const void*>(a.get()))
      job_bytes += b->storage_bytes();
    if (static_cast<const void*>(m.get()) !=
            static_cast<const void*>(a.get()) &&
        static_cast<const void*>(m.get()) != static_cast<const void*>(b.get()))
      job_bytes += m->storage_bytes();
    admit(job_bytes);

    const std::uint64_t t_enq = obs::now_ns();
    auto task = std::make_shared<std::packaged_task<output_matrix()>>(
        [this, shape, a, b, m, opts, lineage, t_enq, timing = job.timing,
         trace = job.trace]() -> output_matrix {
          const std::uint64_t t_start = obs::now_ns();
          const std::uint64_t queue_ns = t_start - t_enq;
          if (timing != nullptr) timing->queue_ns = queue_ns;
          h_queue_->observe_ns(queue_ns);
          // Install the request's ambient trace so the exec.run span and any
          // phase_driver spans below parent under the request timeline.
          obs::ScopedTraceContext tctx(trace);
          if (obs::trace_enabled()) {
            obs::record_span("exec.queue", trace.id, obs::next_span_id(),
                             trace.parent_span, t_enq, queue_ns,
                             trace.component);
          }
          const auto invoke = [&]() -> output_matrix {
            const auto& ra = *a;
            const auto& rb = b == a ? ra : *b;
            if constexpr (std::is_same_v<MT, VT>) {
              if (static_cast<const void*>(m.get()) ==
                  static_cast<const void*>(a.get())) {
                return run_job(shape, ra, rb, ra, opts, lineage.get());
              }
              if (static_cast<const void*>(m.get()) ==
                  static_cast<const void*>(b.get())) {
                return run_job(shape, ra, rb, rb, opts, lineage.get());
              }
            }
            return run_job(shape, ra, rb, *m, opts, lineage.get());
          };
          try {
            obs::ScopedSpan span("exec.run");
            output_matrix out = invoke();
            const std::uint64_t run_ns = obs::now_ns() - t_start;
            if (timing != nullptr) timing->run_ns = run_ns;
            h_run_->observe_ns(run_ns);
            h_job_->observe_ns(queue_ns + run_ns);
            return out;
          } catch (...) {
            if (timing != nullptr) timing->run_ns = obs::now_ns() - t_start;
            throw;
          }
        });
    auto future = task->get_future();

    {
      MutexLock lock(&mu_);
      ++stats_.submitted;
      if (shape == JobShape::kSmall) {
        ++stats_.small_jobs;
      } else {
        ++stats_.wide_jobs;
      }
      if (job.priority == Priority::kInteractive) ++stats_.interactive_jobs;
    }
    const Priority priority = job.priority;
    auto wrapped = [this, task, job_bytes,
                    on_complete = std::move(job.on_complete)] {
      (*task)();
      // Hook before job_done: wait_idle() returning means every completion
      // hook has fired, which is what lets backends drain deterministically.
      if (on_complete) on_complete();
      job_done(job_bytes);
    };
    if (shape == JobShape::kSmall) {
      pool_.submit_detached(std::move(wrapped), priority);
    } else {
      {
        MutexLock lock(&mu_);
        (priority == Priority::kInteractive ? wide_queue_hi_ : wide_queue_)
            .push_back(std::move(wrapped));
      }
      wide_cv_.notify_one();
    }
    return future;
  }

  // Blocks until every job submitted so far has completed. Note that a
  // job's future becomes ready slightly before the executor's bookkeeping
  // settles — read stats() after wait_idle() when exact completion counts
  // matter.
  void wait_idle() {
    MutexLock lock(&mu_);
    while (outstanding_ != 0) idle_cv_.wait(mu_);
  }

  BatchStats stats() const {
    // One coherent snapshot: the cache counters are read while mu_ is still
    // held (kExecutor -> kPlanCache is the legal acquisition order), so the
    // pending_jobs/pending_bytes gauges can never disagree with the counter
    // fields the way the old read-cache-outside-the-lock snapshot could.
    MutexLock lock(&mu_);
    BatchStats out = stats_;
    out.pending_jobs = outstanding_;
    out.pending_bytes = pending_bytes_;
    out.cache = cache_.stats();
    return out;
  }

  // The executor's metrics registry: live queue/run/total latency
  // histograms plus the BatchStats mirror that publish_metrics() refreshes.
  // Render with a `shard="..."` extra label to scope an in-process fleet.
  obs::Registry& metrics() { return metrics_; }

  // Publishes the current BatchStats snapshot into the registry — the
  // typed struct stays the programmatic view; the registry is the export
  // plane. Call before rendering.
  void publish_metrics() {
    const BatchStats s = stats();
    metrics_.counter("msx_executor_jobs_submitted_total")->set(s.submitted);
    metrics_.counter("msx_executor_jobs_completed_total")->set(s.completed);
    metrics_.counter("msx_executor_jobs_small_total")->set(s.small_jobs);
    metrics_.counter("msx_executor_jobs_wide_total")->set(s.wide_jobs);
    metrics_.counter("msx_executor_jobs_interactive_total")
        ->set(s.interactive_jobs);
    metrics_.counter("msx_executor_rejected_total")->set(s.rejected);
    metrics_.counter("msx_executor_admission_blocks_total")
        ->set(s.admission_blocks);
    metrics_.gauge("msx_executor_pending_jobs")
        ->set(static_cast<double>(s.pending_jobs));
    metrics_.gauge("msx_executor_pending_bytes")
        ->set(static_cast<double>(s.pending_bytes));
    metrics_.counter("msx_plan_cache_hits_total")->set(s.cache.hits);
    metrics_.counter("msx_plan_cache_misses_total")->set(s.cache.misses);
    metrics_.counter("msx_plan_cache_grows_total")->set(s.cache.grows);
    metrics_.counter("msx_plan_cache_evictions_total")->set(s.cache.evictions);
    metrics_.counter("msx_plan_cache_delta_migrations_total")
        ->set(s.cache.delta_migrations);
    metrics_.gauge("msx_plan_cache_instances")
        ->set(static_cast<double>(s.cache.instances));
    metrics_.gauge("msx_plan_cache_bytes_held")
        ->set(static_cast<double>(s.cache.bytes_held));
    metrics_.gauge("msx_plan_cache_hit_rate")->set(s.cache.hit_rate());
  }

  int pool_threads() const { return pool_.size(); }
  ThreadPool& pool() { return pool_; }
  Cache& plan_cache() { return cache_; }

 private:
  template <class MT>
  output_matrix run_job(JobShape shape, const CSRMatrix<IT, VT>& a,
                        const CSRMatrix<IT, VT>& b, const CSRMatrix<IT, MT>& m,
                        const MaskedOptions& opts,
                        const PlanLineage<IT, VT>* lineage = nullptr) {
    // Small jobs must stay off the OpenMP team entirely; plan construction
    // (operand copies, CSC transpose) still routes through shared helpers
    // with OpenMP loops, so pin this worker's team size to 1 for the
    // duration. Wide jobs keep the default (their parallelism comes from
    // the arena, and any incidental OpenMP loop in setup may use the
    // machine).
    ScopedNumThreads omp_guard(shape == JobShape::kSmall ? 1 : 0);
    const ExecContext ctx = shape == JobShape::kSmall
                                ? ExecContext::serial()
                                : ExecContext::arena(pool_);
    if (!limits_.cache_plans) {
      MaskedPlan<SR, IT, VT> plan(a, b, m, opts);
      return plan.execute(ctx);
    }
    auto lease = cache_.acquire(a, b, m, opts, lineage);
    if (!lease.reused()) return lease.plan().execute(ctx);
    // Cache hit: same structure, possibly different numerics — refresh the
    // plan's owned values (O(nnz) copy, which the avoided planning dwarfs).
    const bool b_aliases_a =
        static_cast<const void*>(&b) == static_cast<const void*>(&a);
    return lease.plan().execute_values(
        a.values(), b_aliases_a ? std::span<const VT>{} : b.values(), ctx);
  }

  // Admission control (back-pressure): reserves an in-flight slot and the
  // job's operand bytes, blocking or throwing BatchRejected at the limits.
  // A byte-bounded executor still admits an oversized job once it is alone
  // (outstanding_ == 0), so limits degrade throughput, never liveness.
  void admit(std::size_t job_bytes) {
    MutexLock lock(&mu_);
    if (over_limits_locked(job_bytes)) {
      if (limits_.admission == AdmissionPolicy::kReject) {
        ++stats_.rejected;
        throw BatchRejected();
      }
      ++stats_.admission_blocks;
      while (over_limits_locked(job_bytes)) admit_cv_.wait(mu_);
    }
    ++outstanding_;
    pending_bytes_ += job_bytes;
  }

  // True while admitting job_bytes would exceed max_pending_jobs/bytes.
  bool over_limits_locked(std::size_t job_bytes) const MSX_REQUIRES(mu_) {
    if (limits_.max_pending_jobs > 0 &&
        outstanding_ >= limits_.max_pending_jobs) {
      return true;
    }
    if (limits_.max_pending_bytes > 0 && outstanding_ > 0 &&
        pending_bytes_ + job_bytes > limits_.max_pending_bytes) {
      return true;
    }
    return false;
  }

  void job_done(std::size_t job_bytes) {
    MutexLock lock(&mu_);
    ++stats_.completed;
    pending_bytes_ -= job_bytes;
    if (--outstanding_ == 0) idle_cv_.notify_all();
    admit_cv_.notify_all();
  }

  // The wide lane: one job at a time, each cooperatively executed by the
  // pool. Serializing wide jobs keeps their arena loops from fighting each
  // other for the same workers. Interactive wide jobs are popped before batch
  // ones, FIFO within a level.
  void wide_loop() {
    for (;;) {
      std::function<void()> job;
      {
        MutexLock lock(&mu_);
        while (!wide_stop_ && wide_queue_hi_.empty() && wide_queue_.empty()) {
          wide_cv_.wait(mu_);
        }
        if (wide_queue_hi_.empty() && wide_queue_.empty()) {
          return;  // stopped and drained
        }
        auto& q = wide_queue_hi_.empty() ? wide_queue_ : wide_queue_hi_;
        job = std::move(q.front());
        q.pop_front();
      }
      job();
    }
  }

  BatchLimits limits_;
  ThreadPool pool_;
  Cache cache_;

  // Registry before the handles: default member initializers run in
  // declaration order. Handles are plain atomics — observed lock-free from
  // every worker.
  obs::Registry metrics_;
  obs::Histogram* h_queue_ = metrics_.histogram("msx_executor_queue_seconds");
  obs::Histogram* h_run_ = metrics_.histogram("msx_executor_run_seconds");
  obs::Histogram* h_job_ = metrics_.histogram("msx_job_seconds");

  mutable Mutex mu_{LockRank::kExecutor, "BatchExecutor::mu_"};
  CondVar idle_cv_;
  CondVar wide_cv_;
  CondVar admit_cv_;
  std::deque<std::function<void()>> wide_queue_hi_
      MSX_GUARDED_BY(mu_);  // Priority::kInteractive
  std::deque<std::function<void()>> wide_queue_ MSX_GUARDED_BY(mu_);
  bool wide_stop_ MSX_GUARDED_BY(mu_) = false;
  std::uint64_t outstanding_ MSX_GUARDED_BY(mu_) = 0;
  std::size_t pending_bytes_ MSX_GUARDED_BY(mu_) = 0;
  BatchStats stats_ MSX_GUARDED_BY(mu_);

  std::thread wide_thread_;
};

}  // namespace msx
