// Structural and element-wise operations on CSR matrices.
//
// These are the substrate operations the graph applications are assembled
// from: triangular extraction and degree-relabeling (triangle counting,
// §8.2), value filtering (k-truss pruning, §8.3), element-wise
// multiply/add and reductions (betweenness centrality, §8.4).
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "common/parallel.hpp"
#include "common/platform.hpp"
#include "common/prefix_sum.hpp"
#include "matrix/build.hpp"
#include "matrix/convert.hpp"
#include "matrix/csr.hpp"

namespace msx {

// Out-degree (row nnz) of each row.
template <class IT, class VT>
std::vector<IT> row_degrees(const CSRMatrix<IT, VT>& a) {
  std::vector<IT> deg(static_cast<std::size_t>(a.nrows()));
  for (IT i = 0; i < a.nrows(); ++i) deg[static_cast<std::size_t>(i)] = a.row_nnz(i);
  return deg;
}

// Permutation that sorts vertices by non-increasing degree (ties broken by
// vertex id for determinism). perm[new_id] = old_id.
template <class IT, class VT>
std::vector<IT> degree_order_desc(const CSRMatrix<IT, VT>& a) {
  std::vector<IT> perm(static_cast<std::size_t>(a.nrows()));
  std::iota(perm.begin(), perm.end(), IT{0});
  std::stable_sort(perm.begin(), perm.end(), [&](IT x, IT y) {
    const IT dx = a.row_nnz(x), dy = a.row_nnz(y);
    if (dx != dy) return dx > dy;
    return x < y;
  });
  return perm;
}

// Symmetric relabeling: B = P A Pᵀ where perm[new_id] = old_id.
// Requires a square matrix.
template <class IT, class VT>
CSRMatrix<IT, VT> permute_symmetric(const CSRMatrix<IT, VT>& a,
                                    const std::vector<IT>& perm) {
  check_arg(a.nrows() == a.ncols(), "symmetric permutation needs square matrix");
  check_arg(perm.size() == static_cast<std::size_t>(a.nrows()),
            "permutation size mismatch");
  const IT n = a.nrows();
  std::vector<IT> inv(static_cast<std::size_t>(n));
  for (IT i = 0; i < n; ++i) inv[static_cast<std::size_t>(perm[i])] = i;

  std::vector<IT> rowptr(static_cast<std::size_t>(n) + 1, IT{0});
  for (IT i = 0; i < n; ++i) {
    rowptr[static_cast<std::size_t>(i) + 1] = a.row_nnz(perm[i]);
  }
  counts_to_offsets(rowptr);
  std::vector<IT> colidx(a.nnz());
  std::vector<VT> values(a.nnz());

  parallel_for(IT{0}, n, Schedule::kStatic, [&](IT i) {
    const auto src = a.row(perm[static_cast<std::size_t>(i)]);
    const auto base = static_cast<std::size_t>(rowptr[i]);
    // Relabel columns, then sort the row (relabeling breaks ordering).
    std::vector<std::pair<IT, VT>> entries(static_cast<std::size_t>(src.size()));
    for (IT p = 0; p < src.size(); ++p) {
      entries[static_cast<std::size_t>(p)] = {
          inv[static_cast<std::size_t>(src.cols[p])], src.vals[p]};
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    for (std::size_t p = 0; p < entries.size(); ++p) {
      colidx[base + p] = entries[p].first;
      values[base + p] = entries[p].second;
    }
  });
  return CSRMatrix<IT, VT>(n, n, std::move(rowptr), std::move(colidx),
                           std::move(values));
}

// Keeps entries satisfying pred(row, col, value); drops the rest.
template <class IT, class VT, class Pred>
CSRMatrix<IT, VT> filter(const CSRMatrix<IT, VT>& a, Pred&& pred) {
  std::vector<IT> rowptr(static_cast<std::size_t>(a.nrows()) + 1, IT{0});
  for (IT i = 0; i < a.nrows(); ++i) {
    const auto row = a.row(i);
    IT cnt = 0;
    for (IT p = 0; p < row.size(); ++p) {
      if (pred(i, row.cols[p], row.vals[p])) ++cnt;
    }
    rowptr[static_cast<std::size_t>(i) + 1] = cnt;
  }
  counts_to_offsets(rowptr);
  std::vector<IT> colidx(static_cast<std::size_t>(rowptr.back()));
  std::vector<VT> values(colidx.size());
  for (IT i = 0; i < a.nrows(); ++i) {
    const auto row = a.row(i);
    auto q = static_cast<std::size_t>(rowptr[static_cast<std::size_t>(i)]);
    for (IT p = 0; p < row.size(); ++p) {
      if (pred(i, row.cols[p], row.vals[p])) {
        colidx[q] = row.cols[p];
        values[q] = row.vals[p];
        ++q;
      }
    }
  }
  return CSRMatrix<IT, VT>(a.nrows(), a.ncols(), std::move(rowptr),
                           std::move(colidx), std::move(values));
}

// Strictly-lower-triangular part (col < row).
template <class IT, class VT>
CSRMatrix<IT, VT> tril_strict(const CSRMatrix<IT, VT>& a) {
  return filter(a, [](IT i, IT j, const VT&) { return j < i; });
}

// Strictly-upper-triangular part (col > row).
template <class IT, class VT>
CSRMatrix<IT, VT> triu_strict(const CSRMatrix<IT, VT>& a) {
  return filter(a, [](IT i, IT j, const VT&) { return j > i; });
}

// Removes diagonal entries.
template <class IT, class VT>
CSRMatrix<IT, VT> remove_diagonal(const CSRMatrix<IT, VT>& a) {
  return filter(a, [](IT i, IT j, const VT&) { return i != j; });
}

// Replaces every stored value with one (GraphBLAS "spones").
template <class IT, class VT>
CSRMatrix<IT, VT> spones(const CSRMatrix<IT, VT>& a) {
  std::vector<VT> ones(a.nnz(), VT{1});
  return CSRMatrix<IT, VT>(a.nrows(), a.ncols(),
                           std::vector<IT>(a.rowptr().begin(), a.rowptr().end()),
                           std::vector<IT>(a.colidx().begin(), a.colidx().end()),
                           std::move(ones));
}

// Structural union A + B on (+): values added where both present.
template <class IT, class VT>
CSRMatrix<IT, VT> ewise_add(const CSRMatrix<IT, VT>& a,
                            const CSRMatrix<IT, VT>& b) {
  check_arg(a.nrows() == b.nrows() && a.ncols() == b.ncols(),
            "ewise_add shape mismatch");
  std::vector<IT> rowptr(static_cast<std::size_t>(a.nrows()) + 1, IT{0});
  // Two-pointer merge per row: count pass, then fill pass.
  for (IT i = 0; i < a.nrows(); ++i) {
    const auto ra = a.row(i), rb = b.row(i);
    IT pa = 0, pb = 0, cnt = 0;
    while (pa < ra.size() && pb < rb.size()) {
      const IT ca = ra.cols[pa], cb = rb.cols[pb];
      pa += (ca <= cb);
      pb += (cb <= ca);
      ++cnt;
    }
    cnt += (ra.size() - pa) + (rb.size() - pb);
    rowptr[static_cast<std::size_t>(i) + 1] = cnt;
  }
  counts_to_offsets(rowptr);
  std::vector<IT> colidx(static_cast<std::size_t>(rowptr.back()));
  std::vector<VT> values(colidx.size());
  parallel_for(IT{0}, a.nrows(), Schedule::kStatic, [&](IT i) {
    const auto ra = a.row(i), rb = b.row(i);
    IT pa = 0, pb = 0;
    auto q = static_cast<std::size_t>(rowptr[static_cast<std::size_t>(i)]);
    while (pa < ra.size() && pb < rb.size()) {
      const IT ca = ra.cols[pa], cb = rb.cols[pb];
      if (ca < cb) {
        colidx[q] = ca;
        values[q] = ra.vals[pa++];
      } else if (cb < ca) {
        colidx[q] = cb;
        values[q] = rb.vals[pb++];
      } else {
        colidx[q] = ca;
        values[q] = ra.vals[pa++] + rb.vals[pb++];
      }
      ++q;
    }
    for (; pa < ra.size(); ++pa, ++q) {
      colidx[q] = ra.cols[pa];
      values[q] = ra.vals[pa];
    }
    for (; pb < rb.size(); ++pb, ++q) {
      colidx[q] = rb.cols[pb];
      values[q] = rb.vals[pb];
    }
  });
  return CSRMatrix<IT, VT>(a.nrows(), a.ncols(), std::move(rowptr),
                           std::move(colidx), std::move(values));
}

// Structural intersection with multiplied values: C = A .* B (values a*b).
template <class IT, class VT>
CSRMatrix<IT, VT> ewise_mult(const CSRMatrix<IT, VT>& a,
                             const CSRMatrix<IT, VT>& b) {
  check_arg(a.nrows() == b.nrows() && a.ncols() == b.ncols(),
            "ewise_mult shape mismatch");
  std::vector<IT> rowptr(static_cast<std::size_t>(a.nrows()) + 1, IT{0});
  for (IT i = 0; i < a.nrows(); ++i) {
    const auto ra = a.row(i), rb = b.row(i);
    IT pa = 0, pb = 0, cnt = 0;
    while (pa < ra.size() && pb < rb.size()) {
      const IT ca = ra.cols[pa], cb = rb.cols[pb];
      if (ca == cb) ++cnt;
      pa += (ca <= cb);
      pb += (cb <= ca);
    }
    rowptr[static_cast<std::size_t>(i) + 1] = cnt;
  }
  counts_to_offsets(rowptr);
  std::vector<IT> colidx(static_cast<std::size_t>(rowptr.back()));
  std::vector<VT> values(colidx.size());
  parallel_for(IT{0}, a.nrows(), Schedule::kStatic, [&](IT i) {
    const auto ra = a.row(i), rb = b.row(i);
    IT pa = 0, pb = 0;
    auto q = static_cast<std::size_t>(rowptr[static_cast<std::size_t>(i)]);
    while (pa < ra.size() && pb < rb.size()) {
      const IT ca = ra.cols[pa], cb = rb.cols[pb];
      if (ca == cb) {
        colidx[q] = ca;
        values[q] = ra.vals[pa] * rb.vals[pb];
        ++q;
      }
      pa += (ca <= cb);
      pb += (cb <= ca);
    }
  });
  return CSRMatrix<IT, VT>(a.nrows(), a.ncols(), std::move(rowptr),
                           std::move(colidx), std::move(values));
}

// Symmetrizes the pattern: returns A | Aᵀ with value 1 everywhere.
template <class IT, class VT>
CSRMatrix<IT, VT> symmetrize_pattern(const CSRMatrix<IT, VT>& a) {
  check_arg(a.nrows() == a.ncols(), "symmetrize needs a square matrix");
  std::vector<Triple<IT, VT>> triples;
  triples.reserve(2 * a.nnz());
  for (IT i = 0; i < a.nrows(); ++i) {
    const auto row = a.row(i);
    for (IT p = 0; p < row.size(); ++p) {
      triples.push_back({i, row.cols[p], VT{1}});
      triples.push_back({row.cols[p], i, VT{1}});
    }
  }
  return csr_from_triples<IT, VT>(a.nrows(), a.ncols(), std::move(triples),
                                  DuplicatePolicy::kLast);
}

// True iff the nonzero pattern is symmetric.
template <class IT, class VT>
bool is_pattern_symmetric(const CSRMatrix<IT, VT>& a) {
  if (a.nrows() != a.ncols()) return false;
  auto t = transpose(a);
  return std::equal(a.rowptr().begin(), a.rowptr().end(), t.rowptr().begin()) &&
         std::equal(a.colidx().begin(), a.colidx().end(), t.colidx().begin());
}

// Sum of all stored values.
template <class IT, class VT>
VT reduce_sum(const CSRMatrix<IT, VT>& a) {
  VT sum{};
  for (const VT& v : a.values()) sum = sum + v;
  return sum;
}

// True iff both matrices have the same shape and pattern (values ignored).
template <class IT, class VT, class VT2>
bool pattern_equal(const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT2>& b) {
  return a.nrows() == b.nrows() && a.ncols() == b.ncols() &&
         std::equal(a.rowptr().begin(), a.rowptr().end(), b.rowptr().begin()) &&
         std::equal(a.colidx().begin(), a.colidx().end(), b.colidx().begin());
}

}  // namespace msx
