#include "matrix/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/platform.hpp"

namespace msx::detail {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

MMHeader mm_read_header(std::istream& in) {
  std::string line;
  check_arg(static_cast<bool>(std::getline(in, line)),
            "empty MatrixMarket stream");
  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  check_arg(tag == "%%MatrixMarket", "missing MatrixMarket banner");
  check_arg(lower(object) == "matrix", "only 'matrix' objects supported");
  check_arg(lower(format) == "coordinate",
            "only 'coordinate' format supported");

  MMHeader h;
  const std::string f = lower(field);
  check_arg(f == "real" || f == "integer" || f == "pattern" || f == "double",
            "unsupported MatrixMarket field: " + field);
  h.pattern = (f == "pattern");

  const std::string s = lower(symmetry);
  check_arg(s == "general" || s == "symmetric",
            "unsupported MatrixMarket symmetry: " + symmetry);
  h.symmetric = (s == "symmetric");

  // Skip comments / blank lines, then read the size line.
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream sizes(line);
    check_arg(static_cast<bool>(sizes >> h.nrows >> h.ncols >> h.nnz),
              "malformed MatrixMarket size line");
    return h;
  }
  check_arg(false, "MatrixMarket stream missing size line");
  return h;  // unreachable
}

bool mm_read_entry(std::istream& in, bool pattern, long long& r, long long& c,
                   double& v) {
  if (!(in >> r >> c)) return false;
  if (pattern) {
    v = 1.0;
  } else if (!(in >> v)) {
    return false;
  }
  return true;
}

void mm_write_header(std::ostream& out, bool pattern, long long nrows,
                     long long ncols, long long nnz) {
  out << "%%MatrixMarket matrix coordinate "
      << (pattern ? "pattern" : "real") << " general\n";
  out << "% written by msx (masked SpGEMM reproduction)\n";
  out << nrows << ' ' << ncols << ' ' << nnz << '\n';
}

}  // namespace msx::detail
