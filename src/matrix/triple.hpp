// Coordinate-format (COO) entry type and helpers.
#pragma once

#include <tuple>

namespace msx {

// One (row, col, value) entry of a sparse matrix in coordinate form.
template <class IT, class VT>
struct Triple {
  IT row{};
  IT col{};
  VT val{};

  friend bool operator==(const Triple&, const Triple&) = default;
};

// Row-major ordering (row, then column) — the order CSR construction needs.
template <class IT, class VT>
bool row_major_less(const Triple<IT, VT>& a, const Triple<IT, VT>& b) {
  return std::tie(a.row, a.col) < std::tie(b.row, b.col);
}

// Column-major ordering (column, then row) — the order CSC construction needs.
template <class IT, class VT>
bool col_major_less(const Triple<IT, VT>& a, const Triple<IT, VT>& b) {
  return std::tie(a.col, a.row) < std::tie(b.col, b.row);
}

}  // namespace msx
