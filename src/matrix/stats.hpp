// Matrix structural statistics: the quantities the paper's analysis is
// phrased in (degrees and their skew, density, bandwidth §4.2, mask/input
// density ratios §4.3). Used by matrix_tools, the suite report and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "matrix/csr.hpp"

namespace msx {

template <class IT>
struct MatrixStats {
  IT nrows = 0;
  IT ncols = 0;
  std::size_t nnz = 0;
  IT min_degree = 0;
  IT max_degree = 0;
  double mean_degree = 0.0;
  double degree_stddev = 0.0;   // population stddev of row degrees
  double degree_skew = 0.0;     // max/mean — 1 for regular, large for hubs
  std::size_t empty_rows = 0;
  double density = 0.0;         // nnz / (nrows*ncols)
  IT bandwidth = 0;             // max |i - j| over nonzeros (§4.2's beta)
};

template <class IT, class VT>
MatrixStats<IT> matrix_stats(const CSRMatrix<IT, VT>& a) {
  MatrixStats<IT> s;
  s.nrows = a.nrows();
  s.ncols = a.ncols();
  s.nnz = a.nnz();
  if (a.nrows() == 0) return s;

  s.min_degree = a.row_nnz(0);
  double sum = 0.0, sum_sq = 0.0;
  for (IT i = 0; i < a.nrows(); ++i) {
    const IT d = a.row_nnz(i);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    if (d == 0) ++s.empty_rows;
    sum += d;
    sum_sq += static_cast<double>(d) * d;
    const auto row = a.row(i);
    for (IT p = 0; p < row.size(); ++p) {
      const IT dist = row.cols[p] > i ? row.cols[p] - i : i - row.cols[p];
      s.bandwidth = std::max(s.bandwidth, dist);
    }
  }
  const double n = static_cast<double>(a.nrows());
  s.mean_degree = sum / n;
  const double var = sum_sq / n - s.mean_degree * s.mean_degree;
  s.degree_stddev = var > 0 ? std::sqrt(var) : 0.0;
  s.degree_skew = s.mean_degree > 0
                      ? static_cast<double>(s.max_degree) / s.mean_degree
                      : 0.0;
  if (a.ncols() > 0) {
    s.density = static_cast<double>(a.nnz()) /
                (static_cast<double>(a.nrows()) * static_cast<double>(a.ncols()));
  }
  return s;
}

// Degree histogram in power-of-two buckets: bucket b counts rows with
// degree in [2^b, 2^(b+1)) (bucket 0 additionally holds degree-0 rows at
// index 0 separately — see return docs).
// Returns {count of degree-0 rows, then bucket counts for degrees >= 1}.
template <class IT, class VT>
std::vector<std::size_t> degree_histogram(const CSRMatrix<IT, VT>& a) {
  std::vector<std::size_t> hist(1, 0);
  for (IT i = 0; i < a.nrows(); ++i) {
    const IT d = a.row_nnz(i);
    if (d == 0) {
      ++hist[0];
      continue;
    }
    std::size_t bucket = 1;
    IT threshold = 1;
    while (threshold * 2 <= d) {
      threshold *= 2;
      ++bucket;
    }
    if (hist.size() <= bucket) hist.resize(bucket + 1, 0);
    ++hist[bucket];
  }
  return hist;
}

}  // namespace msx
