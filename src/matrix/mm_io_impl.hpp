// Template implementations for MatrixMarket file helpers.
#pragma once

#include <fstream>

#include "common/platform.hpp"

namespace msx {

template <class IT, class VT>
CSRMatrix<IT, VT> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  check_arg(in.good(), "cannot open MatrixMarket file: " + path);
  return read_matrix_market<IT, VT>(in);
}

template <class IT, class VT>
void write_matrix_market_file(const std::string& path,
                              const CSRMatrix<IT, VT>& a, bool pattern_only) {
  std::ofstream out(path);
  check_arg(out.good(), "cannot open file for writing: " + path);
  write_matrix_market(out, a, pattern_only);
}

}  // namespace msx
