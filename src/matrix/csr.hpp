// Compressed Sparse Row matrix — the primary storage format of the library.
//
// Invariants maintained by all builders and kernels:
//   * rowptr has nrows+1 entries, rowptr[0] == 0, non-decreasing;
//   * column indices within each row are strictly increasing (sorted,
//     duplicate-free) — the Heap, MCA and Inner algorithms depend on this;
//   * colidx and values have rowptr[nrows] entries each.
// Values are arbitrary semiring elements; pattern-only users may ignore them.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/platform.hpp"

namespace msx {

template <class IT, class VT>
class CSRMatrix {
 public:
  using index_type = IT;
  using value_type = VT;

  CSRMatrix() : rowptr_(1, IT{0}) {}

  // Empty matrix with the given shape.
  CSRMatrix(IT nrows, IT ncols)
      : nrows_(nrows), ncols_(ncols),
        rowptr_(static_cast<std::size_t>(nrows) + 1, IT{0}) {
    check_arg(nrows >= 0 && ncols >= 0, "matrix shape must be non-negative");
  }

  // Adopts prebuilt arrays. Callers must uphold the class invariants; this is
  // validated in debug/bounds-check builds via validate().
  CSRMatrix(IT nrows, IT ncols, std::vector<IT> rowptr, std::vector<IT> colidx,
            std::vector<VT> values)
      : nrows_(nrows), ncols_(ncols), rowptr_(std::move(rowptr)),
        colidx_(std::move(colidx)), values_(std::move(values)) {
    check_arg(rowptr_.size() == static_cast<std::size_t>(nrows_) + 1,
              "rowptr size must be nrows+1");
    check_arg(colidx_.size() == values_.size(),
              "colidx/values size mismatch");
    check_arg(static_cast<std::size_t>(rowptr_.back()) == colidx_.size(),
              "rowptr back must equal nnz");
  }

  IT nrows() const { return nrows_; }
  IT ncols() const { return ncols_; }
  std::size_t nnz() const { return colidx_.size(); }

  std::span<const IT> rowptr() const { return rowptr_; }
  std::span<const IT> colidx() const { return colidx_; }
  std::span<const VT> values() const { return values_; }

  std::span<IT> mutable_rowptr() { return rowptr_; }
  std::span<IT> mutable_colidx() { return colidx_; }
  std::span<VT> mutable_values() { return values_; }

  IT row_nnz(IT i) const {
    MSX_ASSERT(i >= 0 && i < nrows_);
    return rowptr_[static_cast<std::size_t>(i) + 1] -
           rowptr_[static_cast<std::size_t>(i)];
  }

  // Read-only view of one row.
  struct RowView {
    std::span<const IT> cols;
    std::span<const VT> vals;
    IT size() const { return static_cast<IT>(cols.size()); }
    bool empty() const { return cols.empty(); }
  };

  RowView row(IT i) const {
    MSX_ASSERT(i >= 0 && i < nrows_);
    const auto lo = static_cast<std::size_t>(rowptr_[i]);
    const auto hi = static_cast<std::size_t>(rowptr_[i + 1]);
    return RowView{std::span<const IT>(colidx_.data() + lo, hi - lo),
                   std::span<const VT>(values_.data() + lo, hi - lo)};
  }

  // Bytes held by the index/value arrays — the serialization and cache
  // accounting hook (wire protocol payload sizing, PlanCache byte budget,
  // executor admission control).
  std::size_t storage_bytes() const {
    return rowptr_.capacity() * sizeof(IT) + colidx_.capacity() * sizeof(IT) +
           values_.capacity() * sizeof(VT);
  }

  // Structural + value equality (shape, pattern, values).
  friend bool operator==(const CSRMatrix& a, const CSRMatrix& b) {
    return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ &&
           a.rowptr_ == b.rowptr_ && a.colidx_ == b.colidx_ &&
           a.values_ == b.values_;
  }

  // Verifies all class invariants; returns false (and fills `why` if given)
  // on the first violation. Used by tests and debug builds.
  bool validate(std::string* why = nullptr) const {
    auto fail = [&](const char* msg) {
      if (why) *why = msg;
      return false;
    };
    if (nrows_ < 0 || ncols_ < 0) return fail("negative shape");
    if (rowptr_.size() != static_cast<std::size_t>(nrows_) + 1)
      return fail("rowptr size != nrows+1");
    if (rowptr_[0] != 0) return fail("rowptr[0] != 0");
    if (colidx_.size() != values_.size()) return fail("colidx/values mismatch");
    if (static_cast<std::size_t>(rowptr_.back()) != colidx_.size())
      return fail("rowptr back != nnz");
    for (IT i = 0; i < nrows_; ++i) {
      if (rowptr_[i] > rowptr_[i + 1]) return fail("rowptr not monotone");
      for (IT p = rowptr_[i]; p < rowptr_[i + 1]; ++p) {
        if (colidx_[p] < 0 || colidx_[p] >= ncols_)
          return fail("column index out of range");
        if (p > rowptr_[i] && colidx_[p - 1] >= colidx_[p])
          return fail("row columns not strictly increasing");
      }
    }
    return true;
  }

 private:
  IT nrows_ = 0;
  IT ncols_ = 0;
  std::vector<IT> rowptr_;
  std::vector<IT> colidx_;
  std::vector<VT> values_;
};

// Lightweight pattern-only view of a mask stored in CSR. Only the pattern of
// the mask participates in Masked SpGEMM (§2 of the paper), so the mask's
// value type never matters to the kernels.
template <class IT>
struct MaskView {
  IT nrows = 0;
  IT ncols = 0;
  const IT* rowptr = nullptr;
  const IT* colidx = nullptr;

  std::span<const IT> row(IT i) const {
    MSX_ASSERT(i >= 0 && i < nrows);
    return std::span<const IT>(colidx + rowptr[i],
                               static_cast<std::size_t>(rowptr[i + 1]) -
                                   static_cast<std::size_t>(rowptr[i]));
  }
  IT row_nnz(IT i) const { return rowptr[i + 1] - rowptr[i]; }
  std::size_t nnz() const { return static_cast<std::size_t>(rowptr[nrows]); }
};

template <class IT, class VT>
MaskView<IT> mask_of(const CSRMatrix<IT, VT>& m) {
  return MaskView<IT>{m.nrows(), m.ncols(), m.rowptr().data(),
                      m.colidx().data()};
}

}  // namespace msx
