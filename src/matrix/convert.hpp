// Format conversions: CSR <-> CSC and explicit transposition.
//
// Transposition uses a parallel counting pass + scatter. The scatter writes
// preserve source order within each target row/column, so sortedness of the
// output follows from sortedness of the input's major dimension scan.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "common/prefix_sum.hpp"
#include "matrix/csc.hpp"
#include "matrix/csr.hpp"

namespace msx {

namespace detail {

// Shared core: given (nrows, ncols, rowptr, colidx, values) of a CSR-like
// layout, produce the (colptr, rowidx, values) arrays of the transposed
// layout. Runs a counting sort over column indices. When `perm` is non-null
// it additionally records perm[dst] = src (transposed slot -> source slot),
// which lets callers refresh the transposed values in O(nnz) after a
// value-only change (see MaskedPlan::execute_values).
template <class IT, class VT>
void transpose_arrays(IT nrows, IT ncols, std::span<const IT> rowptr,
                      std::span<const IT> colidx, std::span<const VT> values,
                      std::vector<IT>& out_ptr, std::vector<IT>& out_idx,
                      std::vector<VT>& out_val,
                      std::vector<IT>* perm = nullptr) {
  const std::size_t nnz = colidx.size();
  out_ptr.assign(static_cast<std::size_t>(ncols) + 1, IT{0});
  out_idx.resize(nnz);
  out_val.resize(nnz);

  // Count entries per column (counts stored at out_ptr[j]; the scan turns
  // them into offsets in place). Serial count is fine for moderate nnz: it
  // is a single memory-bound sweep; large inputs use relaxed atomics.
  if (nnz < (std::size_t{1} << 20)) {
    for (std::size_t p = 0; p < nnz; ++p) {
      ++out_ptr[static_cast<std::size_t>(colidx[p]) + 1];
    }
  } else {
    std::vector<std::atomic<IT>> counts(static_cast<std::size_t>(ncols));
    for (auto& c : counts) c.store(IT{0}, std::memory_order_relaxed);
#pragma omp parallel for schedule(static)
    for (std::int64_t p = 0; p < static_cast<std::int64_t>(nnz); ++p) {
      counts[static_cast<std::size_t>(colidx[p])].fetch_add(
          IT{1}, std::memory_order_relaxed);
    }
    for (IT j = 0; j < ncols; ++j) {
      out_ptr[static_cast<std::size_t>(j) + 1] =
          counts[static_cast<std::size_t>(j)].load(std::memory_order_relaxed);
    }
  }
  counts_to_offsets(out_ptr);

  // Scatter. A serial sweep keeps per-column entries ordered by source row,
  // which preserves the sorted-minor-index invariant.
  if (perm != nullptr) perm->resize(nnz);
  std::vector<IT> cursor(out_ptr.begin(), out_ptr.end() - 1);
  for (IT i = 0; i < nrows; ++i) {
    for (IT p = rowptr[i]; p < rowptr[i + 1]; ++p) {
      const IT j = colidx[p];
      const IT dst = cursor[static_cast<std::size_t>(j)]++;
      out_idx[static_cast<std::size_t>(dst)] = i;
      out_val[static_cast<std::size_t>(dst)] = values[p];
      if (perm != nullptr) (*perm)[static_cast<std::size_t>(dst)] = p;
    }
  }
}

}  // namespace detail

// B in CSC form (i.e. columns of B contiguous) — required by Inner (§4.1).
template <class IT, class VT>
CSCMatrix<IT, VT> csr_to_csc(const CSRMatrix<IT, VT>& a) {
  std::vector<IT> colptr, rowidx;
  std::vector<VT> values;
  detail::transpose_arrays(a.nrows(), a.ncols(), a.rowptr(), a.colidx(),
                           a.values(), colptr, rowidx, values);
  return CSCMatrix<IT, VT>(a.nrows(), a.ncols(), std::move(colptr),
                           std::move(rowidx), std::move(values));
}

template <class IT, class VT>
CSRMatrix<IT, VT> csc_to_csr(const CSCMatrix<IT, VT>& a) {
  // A CSC matrix is the CSR layout of its transpose; transposing the arrays
  // again yields the CSR layout of the original.
  std::vector<IT> rowptr, colidx;
  std::vector<VT> values;
  detail::transpose_arrays(a.ncols(), a.nrows(), a.colptr(), a.rowidx(),
                           a.values(), rowptr, colidx, values);
  return CSRMatrix<IT, VT>(a.nrows(), a.ncols(), std::move(rowptr),
                           std::move(colidx), std::move(values));
}

// Explicit transpose in CSR form.
template <class IT, class VT>
CSRMatrix<IT, VT> transpose(const CSRMatrix<IT, VT>& a) {
  std::vector<IT> rowptr, colidx;
  std::vector<VT> values;
  detail::transpose_arrays(a.nrows(), a.ncols(), a.rowptr(), a.colidx(),
                           a.values(), rowptr, colidx, values);
  return CSRMatrix<IT, VT>(a.ncols(), a.nrows(), std::move(rowptr),
                           std::move(colidx), std::move(values));
}

}  // namespace msx
