// Doubly-Compressed Sparse Row (DCSR) — hypersparse storage (§2.1, §3).
//
// When most rows are empty (BFS/BC frontier matrices, aggressively pruned
// k-truss iterates), CSR's nrows+1 row-pointer array dominates the footprint
// and row scans touch mostly-empty metadata. DCSR (Buluç & Gilbert 2008)
// stores only the non-empty rows: a compressed row-id list plus row
// pointers over that list. This module provides the container and lossless
// conversions; algorithms iterate non-empty rows via rows().
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/platform.hpp"
#include "matrix/csr.hpp"

namespace msx {

template <class IT, class VT>
class DCSRMatrix {
 public:
  using index_type = IT;
  using value_type = VT;

  DCSRMatrix() : rowptr_(1, IT{0}) {}

  DCSRMatrix(IT nrows, IT ncols, std::vector<IT> rowids,
             std::vector<IT> rowptr, std::vector<IT> colidx,
             std::vector<VT> values)
      : nrows_(nrows), ncols_(ncols), rowids_(std::move(rowids)),
        rowptr_(std::move(rowptr)), colidx_(std::move(colidx)),
        values_(std::move(values)) {
    check_arg(rowptr_.size() == rowids_.size() + 1,
              "rowptr size must be nrows_compressed+1");
    check_arg(colidx_.size() == values_.size(), "colidx/values mismatch");
    check_arg(static_cast<std::size_t>(rowptr_.back()) == colidx_.size(),
              "rowptr back must equal nnz");
  }

  IT nrows() const { return nrows_; }
  IT ncols() const { return ncols_; }
  std::size_t nnz() const { return colidx_.size(); }
  // Number of non-empty rows (the compressed dimension).
  IT nrows_compressed() const { return static_cast<IT>(rowids_.size()); }

  std::span<const IT> rowids() const { return rowids_; }
  std::span<const IT> rowptr() const { return rowptr_; }
  std::span<const IT> colidx() const { return colidx_; }
  std::span<const VT> values() const { return values_; }

  struct RowView {
    IT row;  // original (uncompressed) row id
    std::span<const IT> cols;
    std::span<const VT> vals;
  };

  // k-th non-empty row, k in [0, nrows_compressed()).
  RowView compressed_row(IT k) const {
    MSX_ASSERT(k >= 0 && k < nrows_compressed());
    const auto lo = static_cast<std::size_t>(rowptr_[k]);
    const auto hi = static_cast<std::size_t>(rowptr_[k + 1]);
    return RowView{rowids_[static_cast<std::size_t>(k)],
                   std::span<const IT>(colidx_.data() + lo, hi - lo),
                   std::span<const VT>(values_.data() + lo, hi - lo)};
  }

  bool validate(std::string* why = nullptr) const {
    auto fail = [&](const char* msg) {
      if (why) *why = msg;
      return false;
    };
    if (rowptr_.size() != rowids_.size() + 1) return fail("rowptr size");
    if (rowptr_.empty() || rowptr_[0] != 0) return fail("rowptr[0] != 0");
    for (std::size_t k = 0; k < rowids_.size(); ++k) {
      if (rowids_[k] < 0 || rowids_[k] >= nrows_)
        return fail("row id out of range");
      if (k > 0 && rowids_[k - 1] >= rowids_[k])
        return fail("row ids not strictly increasing");
      if (rowptr_[k] >= rowptr_[k + 1])
        return fail("compressed row must be non-empty");
      for (IT p = rowptr_[k]; p < rowptr_[k + 1]; ++p) {
        if (colidx_[static_cast<std::size_t>(p)] < 0 ||
            colidx_[static_cast<std::size_t>(p)] >= ncols_)
          return fail("column index out of range");
        if (p > rowptr_[k] &&
            colidx_[static_cast<std::size_t>(p - 1)] >=
                colidx_[static_cast<std::size_t>(p)])
          return fail("row columns not strictly increasing");
      }
    }
    if (static_cast<std::size_t>(rowptr_.back()) != colidx_.size())
      return fail("rowptr back != nnz");
    return true;
  }

  friend bool operator==(const DCSRMatrix&, const DCSRMatrix&) = default;

 private:
  IT nrows_ = 0;
  IT ncols_ = 0;
  std::vector<IT> rowids_;  // non-empty row ids, strictly increasing
  std::vector<IT> rowptr_;  // offsets over rowids_
  std::vector<IT> colidx_;
  std::vector<VT> values_;
};

// CSR -> DCSR: drop empty rows.
template <class IT, class VT>
DCSRMatrix<IT, VT> csr_to_dcsr(const CSRMatrix<IT, VT>& a) {
  std::vector<IT> rowids, rowptr{IT{0}};
  for (IT i = 0; i < a.nrows(); ++i) {
    if (a.row_nnz(i) > 0) {
      rowids.push_back(i);
      rowptr.push_back(a.rowptr()[static_cast<std::size_t>(i) + 1]);
    }
  }
  // rowptr currently holds CSR end-offsets of kept rows; compact them.
  std::vector<IT> colidx(a.colidx().begin(), a.colidx().end());
  std::vector<VT> values(a.values().begin(), a.values().end());
  // CSR with empty rows dropped keeps colidx/values unchanged (empty rows
  // contribute nothing), and the end-offsets are already cumulative.
  return DCSRMatrix<IT, VT>(a.nrows(), a.ncols(), std::move(rowids),
                            std::move(rowptr), std::move(colidx),
                            std::move(values));
}

// DCSR -> CSR: reinstate empty rows.
template <class IT, class VT>
CSRMatrix<IT, VT> dcsr_to_csr(const DCSRMatrix<IT, VT>& a) {
  std::vector<IT> rowptr(static_cast<std::size_t>(a.nrows()) + 1, IT{0});
  const auto ids = a.rowids();
  const auto cptr = a.rowptr();
  for (std::size_t k = 0; k < ids.size(); ++k) {
    rowptr[static_cast<std::size_t>(ids[k]) + 1] = cptr[k + 1] - cptr[k];
  }
  for (IT i = 0; i < a.nrows(); ++i) {
    rowptr[static_cast<std::size_t>(i) + 1] +=
        rowptr[static_cast<std::size_t>(i)];
  }
  return CSRMatrix<IT, VT>(
      a.nrows(), a.ncols(), std::move(rowptr),
      std::vector<IT>(a.colidx().begin(), a.colidx().end()),
      std::vector<VT>(a.values().begin(), a.values().end()));
}

// Fraction of rows that are non-empty; hypersparse when << 1.
template <class IT, class VT>
double row_occupancy(const DCSRMatrix<IT, VT>& a) {
  if (a.nrows() == 0) return 0.0;
  return static_cast<double>(a.nrows_compressed()) /
         static_cast<double>(a.nrows());
}

}  // namespace msx
