// Compressed Sparse Column matrix.
//
// Used by the pull-based Inner algorithm, which needs B's columns in
// contiguous storage for sparse dot products (§4.1). Mirrors CSRMatrix with
// the roles of rows and columns exchanged; row indices within each column
// are strictly increasing.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/platform.hpp"

namespace msx {

template <class IT, class VT>
class CSCMatrix {
 public:
  using index_type = IT;
  using value_type = VT;

  CSCMatrix() : colptr_(1, IT{0}) {}

  CSCMatrix(IT nrows, IT ncols)
      : nrows_(nrows), ncols_(ncols),
        colptr_(static_cast<std::size_t>(ncols) + 1, IT{0}) {
    check_arg(nrows >= 0 && ncols >= 0, "matrix shape must be non-negative");
  }

  CSCMatrix(IT nrows, IT ncols, std::vector<IT> colptr, std::vector<IT> rowidx,
            std::vector<VT> values)
      : nrows_(nrows), ncols_(ncols), colptr_(std::move(colptr)),
        rowidx_(std::move(rowidx)), values_(std::move(values)) {
    check_arg(colptr_.size() == static_cast<std::size_t>(ncols_) + 1,
              "colptr size must be ncols+1");
    check_arg(rowidx_.size() == values_.size(), "rowidx/values size mismatch");
    check_arg(static_cast<std::size_t>(colptr_.back()) == rowidx_.size(),
              "colptr back must equal nnz");
  }

  IT nrows() const { return nrows_; }
  IT ncols() const { return ncols_; }
  std::size_t nnz() const { return rowidx_.size(); }

  std::span<const IT> colptr() const { return colptr_; }
  std::span<const IT> rowidx() const { return rowidx_; }
  std::span<const VT> values() const { return values_; }

  // In-place value refresh (structure fixed) — used by MaskedPlan to keep a
  // cached CSC copy of B in sync after execute_values().
  std::span<VT> mutable_values() { return values_; }

  // Bytes held by the index/value arrays (PlanCache byte accounting).
  std::size_t storage_bytes() const {
    return colptr_.capacity() * sizeof(IT) + rowidx_.capacity() * sizeof(IT) +
           values_.capacity() * sizeof(VT);
  }

  IT col_nnz(IT j) const {
    MSX_ASSERT(j >= 0 && j < ncols_);
    return colptr_[static_cast<std::size_t>(j) + 1] -
           colptr_[static_cast<std::size_t>(j)];
  }

  struct ColView {
    std::span<const IT> rows;
    std::span<const VT> vals;
    IT size() const { return static_cast<IT>(rows.size()); }
    bool empty() const { return rows.empty(); }
  };

  ColView col(IT j) const {
    MSX_ASSERT(j >= 0 && j < ncols_);
    const auto lo = static_cast<std::size_t>(colptr_[j]);
    const auto hi = static_cast<std::size_t>(colptr_[j + 1]);
    return ColView{std::span<const IT>(rowidx_.data() + lo, hi - lo),
                   std::span<const VT>(values_.data() + lo, hi - lo)};
  }

  friend bool operator==(const CSCMatrix& a, const CSCMatrix& b) {
    return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ &&
           a.colptr_ == b.colptr_ && a.rowidx_ == b.rowidx_ &&
           a.values_ == b.values_;
  }

 private:
  IT nrows_ = 0;
  IT ncols_ = 0;
  std::vector<IT> colptr_;
  std::vector<IT> rowidx_;
  std::vector<VT> values_;
};

}  // namespace msx
