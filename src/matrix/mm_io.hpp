// MatrixMarket coordinate-format I/O.
//
// Supports the subset needed to load SuiteSparse Matrix Collection graphs:
// `matrix coordinate {real|integer|pattern} {general|symmetric}`; 1-based
// indices; duplicate entries summed; symmetric storage expanded on read.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "matrix/build.hpp"
#include "matrix/csr.hpp"

namespace msx {

namespace detail {

struct MMHeader {
  bool pattern = false;
  bool symmetric = false;
  long long nrows = 0;
  long long ncols = 0;
  long long nnz = 0;
};

// Parses the banner + size line and positions the stream at the first entry.
MMHeader mm_read_header(std::istream& in);

// Reads one entry line; returns false at end of input. For pattern files the
// value is set to 1.
bool mm_read_entry(std::istream& in, bool pattern, long long& r, long long& c,
                   double& v);

void mm_write_header(std::ostream& out, bool pattern, long long nrows,
                     long long ncols, long long nnz);

}  // namespace detail

// Reads a MatrixMarket file into CSR. Symmetric files are expanded (both
// (i,j) and (j,i) stored; diagonal kept once).
template <class IT, class VT>
CSRMatrix<IT, VT> read_matrix_market(std::istream& in) {
  const auto h = detail::mm_read_header(in);
  check_arg(h.nrows >= 0 && h.ncols >= 0, "bad MatrixMarket dimensions");
  std::vector<Triple<IT, VT>> triples;
  triples.reserve(static_cast<std::size_t>(h.symmetric ? 2 * h.nnz : h.nnz));
  long long r, c;
  double v;
  long long seen = 0;
  while (seen < h.nnz && detail::mm_read_entry(in, h.pattern, r, c, v)) {
    ++seen;
    const IT ri = static_cast<IT>(r - 1);
    const IT ci = static_cast<IT>(c - 1);
    triples.push_back({ri, ci, static_cast<VT>(v)});
    if (h.symmetric && ri != ci) triples.push_back({ci, ri, static_cast<VT>(v)});
  }
  check_arg(seen == h.nnz, "MatrixMarket file truncated");
  return csr_from_triples<IT, VT>(static_cast<IT>(h.nrows),
                                  static_cast<IT>(h.ncols), std::move(triples),
                                  DuplicatePolicy::kSum);
}

template <class IT, class VT>
CSRMatrix<IT, VT> read_matrix_market_file(const std::string& path);

// Writes in `matrix coordinate real general` format (or pattern when
// pattern_only is set).
template <class IT, class VT>
void write_matrix_market(std::ostream& out, const CSRMatrix<IT, VT>& a,
                         bool pattern_only = false) {
  detail::mm_write_header(out, pattern_only, a.nrows(), a.ncols(),
                          static_cast<long long>(a.nnz()));
  // Full round-trip precision for double values.
  out.precision(17);
  for (IT i = 0; i < a.nrows(); ++i) {
    const auto row = a.row(i);
    for (IT p = 0; p < row.size(); ++p) {
      out << (i + 1) << ' ' << (row.cols[p] + 1);
      if (!pattern_only) out << ' ' << static_cast<double>(row.vals[p]);
      out << '\n';
    }
  }
}

template <class IT, class VT>
void write_matrix_market_file(const std::string& path,
                              const CSRMatrix<IT, VT>& a,
                              bool pattern_only = false);

}  // namespace msx

#include "matrix/mm_io_impl.hpp"
