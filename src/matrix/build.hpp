// Builders: construct CSR/CSC matrices from coordinate (triple) lists.
//
// Construction sorts triples, resolves duplicates according to a policy, and
// packs the result. This is where unsorted generator/file input is normalized
// into the strictly-sorted CSR invariant the kernels rely on.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/platform.hpp"
#include "common/prefix_sum.hpp"
#include "matrix/csc.hpp"
#include "matrix/csr.hpp"
#include "matrix/triple.hpp"

namespace msx {

// What to do with duplicate (row, col) coordinates.
enum class DuplicatePolicy {
  kSum,   // accumulate values (default; matches MatrixMarket semantics)
  kLast,  // keep the last occurrence
  kError, // throw std::invalid_argument
};

// Builds a CSR matrix from triples (consumed). Triples may be in any order
// and may contain duplicates.
template <class IT, class VT>
CSRMatrix<IT, VT> csr_from_triples(IT nrows, IT ncols,
                                   std::vector<Triple<IT, VT>> triples,
                                   DuplicatePolicy policy =
                                       DuplicatePolicy::kSum) {
  check_arg(nrows >= 0 && ncols >= 0, "shape must be non-negative");
  for (const auto& t : triples) {
    check_arg(t.row >= 0 && t.row < nrows && t.col >= 0 && t.col < ncols,
              "triple coordinate out of range");
  }
  std::sort(triples.begin(), triples.end(), row_major_less<IT, VT>);

  std::vector<IT> rowptr(static_cast<std::size_t>(nrows) + 1, IT{0});
  std::vector<IT> colidx;
  std::vector<VT> values;
  colidx.reserve(triples.size());
  values.reserve(triples.size());

  for (std::size_t i = 0; i < triples.size();) {
    const IT r = triples[i].row;
    const IT c = triples[i].col;
    VT v = triples[i].val;
    std::size_t j = i + 1;
    while (j < triples.size() && triples[j].row == r && triples[j].col == c) {
      switch (policy) {
        case DuplicatePolicy::kSum: v = v + triples[j].val; break;
        case DuplicatePolicy::kLast: v = triples[j].val; break;
        case DuplicatePolicy::kError:
          check_arg(false, "duplicate coordinate in triple list");
      }
      ++j;
    }
    colidx.push_back(c);
    values.push_back(v);
    ++rowptr[static_cast<std::size_t>(r) + 1];
    i = j;
  }
  for (IT r = 0; r < nrows; ++r) {
    rowptr[static_cast<std::size_t>(r) + 1] +=
        rowptr[static_cast<std::size_t>(r)];
  }
  return CSRMatrix<IT, VT>(nrows, ncols, std::move(rowptr), std::move(colidx),
                           std::move(values));
}

// Builds a CSC matrix from triples (consumed).
template <class IT, class VT>
CSCMatrix<IT, VT> csc_from_triples(IT nrows, IT ncols,
                                   std::vector<Triple<IT, VT>> triples,
                                   DuplicatePolicy policy =
                                       DuplicatePolicy::kSum) {
  check_arg(nrows >= 0 && ncols >= 0, "shape must be non-negative");
  for (const auto& t : triples) {
    check_arg(t.row >= 0 && t.row < nrows && t.col >= 0 && t.col < ncols,
              "triple coordinate out of range");
  }
  std::sort(triples.begin(), triples.end(), col_major_less<IT, VT>);

  std::vector<IT> colptr(static_cast<std::size_t>(ncols) + 1, IT{0});
  std::vector<IT> rowidx;
  std::vector<VT> values;
  rowidx.reserve(triples.size());
  values.reserve(triples.size());

  for (std::size_t i = 0; i < triples.size();) {
    const IT r = triples[i].row;
    const IT c = triples[i].col;
    VT v = triples[i].val;
    std::size_t j = i + 1;
    while (j < triples.size() && triples[j].row == r && triples[j].col == c) {
      switch (policy) {
        case DuplicatePolicy::kSum: v = v + triples[j].val; break;
        case DuplicatePolicy::kLast: v = triples[j].val; break;
        case DuplicatePolicy::kError:
          check_arg(false, "duplicate coordinate in triple list");
      }
      ++j;
    }
    rowidx.push_back(r);
    values.push_back(v);
    ++colptr[static_cast<std::size_t>(c) + 1];
    i = j;
  }
  for (IT c = 0; c < ncols; ++c) {
    colptr[static_cast<std::size_t>(c) + 1] +=
        colptr[static_cast<std::size_t>(c)];
  }
  return CSCMatrix<IT, VT>(nrows, ncols, std::move(colptr), std::move(rowidx),
                           std::move(values));
}

// Builds a pattern matrix (all values = one) from (row, col) edges.
template <class IT, class VT = double>
CSRMatrix<IT, VT> csr_from_edges(IT nrows, IT ncols,
                                 const std::vector<std::pair<IT, IT>>& edges) {
  std::vector<Triple<IT, VT>> triples;
  triples.reserve(edges.size());
  for (const auto& [r, c] : edges) triples.push_back({r, c, VT{1}});
  return csr_from_triples<IT, VT>(nrows, ncols, std::move(triples),
                                  DuplicatePolicy::kLast);
}

// Dense row-major initializer-list style builder; zero entries are dropped.
// Intended for tests and examples, not performance.
template <class IT, class VT>
CSRMatrix<IT, VT> csr_from_dense(const std::vector<std::vector<VT>>& rows) {
  const IT nrows = static_cast<IT>(rows.size());
  IT ncols = 0;
  for (const auto& r : rows) ncols = std::max(ncols, static_cast<IT>(r.size()));
  std::vector<Triple<IT, VT>> triples;
  for (IT i = 0; i < nrows; ++i) {
    for (IT j = 0; j < static_cast<IT>(rows[i].size()); ++j) {
      if (rows[i][j] != VT{}) triples.push_back({i, j, rows[i][j]});
    }
  }
  return csr_from_triples<IT, VT>(nrows, ncols, std::move(triples));
}

// Extracts all entries as row-major-sorted triples.
template <class IT, class VT>
std::vector<Triple<IT, VT>> to_triples(const CSRMatrix<IT, VT>& a) {
  std::vector<Triple<IT, VT>> out;
  out.reserve(a.nnz());
  for (IT i = 0; i < a.nrows(); ++i) {
    const auto row = a.row(i);
    for (IT p = 0; p < row.size(); ++p) {
      out.push_back({i, row.cols[p], row.vals[p]});
    }
  }
  return out;
}

}  // namespace msx
