// MaskedClient — the unified, future-returning way to consume masked SpGEMM
// (ISSUE 5 tentpole).
//
// The repo grew four divergent entry points for C = M .* (A·B): the
// stateless masked_spgemm free function, MaskedPlan (manual reuse),
// BatchExecutor::submit (concurrent, copy-at-submit) and the blocking
// ShardRouter::request (one outstanding request per calling thread). The
// client API folds them behind one surface with one set of semantics:
//
//   MaskedClient  — constructed from a Backend; vends Sessions.
//   Session       — registers stationary operands once
//                   (register_structure(StructureSpec) -> StructureHandle,
//                   versioned) and then pipelines many products:
//                   submit(A[, M], handle, opts) returns std::future<Result>
//                   with bounded in-flight depth and per-request Priority.
//                   update(handle, EdgeDelta) applies an edge batch and
//                   returns the next-version handle — streaming graphs mutate
//                   in place instead of re-registering.
//   Result        — typed outcome (kOk / kOverloaded / kShardDown /
//                   kBadRequest / kInternalError / kStaleStructure) instead
//                   of an ad-hoc exception zoo; value() rethrows for callers
//                   that prefer exceptions.
//   Backend       — where the products actually run: LocalBackend
//                   (BatchExecutor + PlanCache in-process, zero-copy handle
//                   reuse) or ShardedBackend (pipelined connections to a
//                   shard fleet, request-id-matched completion, failover
//                   re-submission). One code path scales from one socket to
//                   many processes — the property the distributed SpGEMM
//                   literature (Buluç & Gilbert) attributes to handle-based
//                   pipelined interfaces.
//
// Results are bit-identical to direct masked_spgemm calls with the same
// options regardless of backend (tests/client/ holds the line).
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/platform.hpp"
#include "common/thread_annotations.hpp"
#include "core/delta.hpp"
#include "core/options.hpp"
#include "matrix/csr.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"  // Priority
#include "semiring/semirings.hpp"

namespace msx::client {

// Typed outcome taxonomy. Transport- and admission-level failures are data,
// not exceptions: a caller pipelining hundreds of futures must be able to
// inspect each outcome without try/catch scaffolding around every get().
enum class RequestStatus {
  kOk,
  kOverloaded,      // back-pressure: every eligible shard/executor refused
  kShardDown,       // no shard could serve it (all down, or client shut down)
  kBadRequest,      // validation failed (shapes, unknown structure, options)
  kInternalError,   // anything else thrown while serving
  kStaleStructure,  // submitted against a superseded structure version;
                    // retryable — resubmit with the handle update() returned
};

const char* to_string(RequestStatus s);

// One request's outcome: a matrix on kOk, a status + diagnostic otherwise.
template <class IT, class VT>
struct ClientResult {
  RequestStatus status = RequestStatus::kOk;
  std::string message;        // empty on kOk
  CSRMatrix<IT, VT> matrix;   // valid on kOk

  bool ok() const { return status == RequestStatus::kOk; }

  // The matrix, or a thrown std::runtime_error carrying the taxonomy — the
  // bridge for callers that prefer exceptions.
  CSRMatrix<IT, VT>& value() {
    if (!ok()) {
      throw std::runtime_error(std::string("masked client: ") +
                               to_string(status) +
                               (message.empty() ? "" : ": " + message));
    }
    return matrix;
  }
};

// Per-request options: how to compute (MaskedOptions) and how urgently
// (Priority — interactive requests jump batch queues end to end: the
// executor's lanes locally, the per-connection send queues remotely).
struct SubmitOptions {
  MaskedOptions masked;
  Priority priority = Priority::kBatch;
};

struct SessionConfig {
  // Bounded pipelining: submit() blocks once this many requests are in
  // flight, which keeps a fast producer from ballooning queues anywhere
  // downstream. 16–64 keeps a shard pipeline full without unbounded memory.
  std::size_t max_in_flight = 32;

  // Bounded registrations: 0 means unbounded (the default); otherwise the
  // session keeps at most this many structures live, evicting the least
  // recently used (touched by submit/update) with an unregister over the
  // wire. Submitting an evicted handle yields kBadRequest — size the quota
  // for the working set, not the churn.
  std::size_t max_structures = 0;
};

// Where products run. Implementations: LocalBackend (local_backend.hpp),
// ShardedBackend (sharded_backend.hpp). All methods are thread-safe.
template <class SR, class IT, class VT>
  requires Semiring<SR>
class Backend {
 public:
  using Mat = CSRMatrix<IT, VT>;
  using Result = ClientResult<IT, typename SR::value_type>;
  using Completion = std::function<void(Result)>;

  virtual ~Backend() = default;

  // Installs stationary operands {B[, M]} at version 1 and returns their id.
  // The backend holds the shared operands for zero-copy reuse (and, sharded,
  // ships them to a shard once per connection instead of once per product).
  // `replicas` is a placement hint for hot structures: a sharded backend
  // registers the structure's panels on that many distinct shards and
  // spreads (and fails over) panel work across the replica set; backends
  // without placement (local) ignore it.
  virtual std::uint64_t register_structure(std::shared_ptr<const Mat> b,
                                           std::shared_ptr<const Mat> m,
                                           int replicas = 1) = 0;
  virtual void release_structure(std::uint64_t structure_id) = 0;

  // Advances a registered structure to `new_b` (the delta already applied by
  // the caller — once, client-side) and returns the new version. The delta
  // rides along so backends can patch warm plans (locally via the plan
  // cache's lineage migration; sharded, it is what crosses the wire — the
  // shard re-applies it instead of receiving the matrix). `new_m` is the
  // structure's mask after the update (the same pointer as `new_b` for
  // self-masked structures, the old mask otherwise, null if none).
  virtual std::uint64_t update_structure(
      std::uint64_t structure_id,
      std::shared_ptr<const EdgeDelta<IT, VT>> delta,
      std::shared_ptr<const Mat> new_b, std::shared_ptr<const Mat> new_m) = 0;

  // Asynchronously computes C = M .* (A·B) against a registered structure at
  // a specific version. A submit whose version no longer matches the live
  // registration completes with kStaleStructure — never a result computed
  // against the wrong matrix generation. `mask_override` null means "use the
  // registered M". Returns immediately; `done` is invoked exactly once —
  // possibly on another thread, possibly before this call returns — with the
  // typed outcome. Never throws for per-request failures.
  virtual void submit(std::uint64_t structure_id, std::uint64_t version,
                      std::shared_ptr<const Mat> a,
                      std::shared_ptr<const Mat> mask_override,
                      const MaskedOptions& opts, Priority priority,
                      Completion done) = 0;

  // Blocks until every completion for requests submitted so far has been
  // delivered.
  virtual void drain() = 0;

  virtual std::string name() const = 0;

  // Prometheus text exposition for everything behind this backend: the
  // client-side registry plus whatever the backend can reach (the local
  // executor's registry; a sharded backend appends each live shard's page
  // fetched over the wire via kMetricsRequest). Best-effort: unreachable
  // shards are skipped, never an error.
  virtual std::string metrics() { return obs::Registry::global().render(); }
};

// What to register: the one way to describe a stationary-operand set. The
// previous API grew four register_structure overloads (shared_ptr pairs,
// value copies, implicit alias detection by address); the builder states the
// intent instead:
//
//   s.register_structure(StructureSpec(B))                    — no mask
//   s.register_structure(StructureSpec(B).mask(M))            — independent M
//   s.register_structure(StructureSpec(B).self_mask())        — M aliases B
//
// Aliasing is explicit: self_mask() shares the B pointer (k-truss registers
// its working matrix once and masks by it); mask(...) with a matrix that
// merely equals B still registers a distinct mask, like everywhere else in
// the library.
template <class IT, class VT>
class StructureSpec {
 public:
  using Mat = CSRMatrix<IT, VT>;

  explicit StructureSpec(std::shared_ptr<const Mat> b) : b_(std::move(b)) {
    check_arg(b_ != nullptr, "StructureSpec: null B");
  }
  // Convenience: copy a transient B into shared storage once, here.
  explicit StructureSpec(const Mat& b)
      : b_(std::make_shared<const Mat>(b)) {}

  StructureSpec& mask(std::shared_ptr<const Mat> m) {
    check_arg(m != nullptr, "StructureSpec::mask: null mask");
    m_ = std::move(m);
    return *this;
  }
  StructureSpec& mask(const Mat& m) {
    m_ = std::make_shared<const Mat>(m);
    return *this;
  }
  // The mask IS the stationary matrix (one registration, one shipment).
  StructureSpec& self_mask() {
    m_ = b_;
    return *this;
  }
  // Hot-structure replication: keep each panel of this structure live on
  // `r` distinct shards so 2D panel work spreads across (and fails over
  // within) the replica set. 1 (the default) means no replication; local
  // backends ignore the hint.
  StructureSpec& replicate(int r) {
    check_arg(r >= 1, "StructureSpec::replicate: replicas must be >= 1");
    replicas_ = r;
    return *this;
  }

  const std::shared_ptr<const Mat>& b() const { return b_; }
  const std::shared_ptr<const Mat>& mask_ptr() const { return m_; }
  int replicas() const { return replicas_; }

 private:
  std::shared_ptr<const Mat> b_;
  std::shared_ptr<const Mat> m_;
  int replicas_ = 1;
};

// A registered stationary-operand set at a specific version. A plain value:
// copies share the registration; release through the session that created
// it. Session::update() returns a NEW handle at the next version — the old
// handle keeps working as an identity (release/LRU) but its submits resolve
// to kStaleStructure once the update is live.
template <class IT, class VT>
class StructureHandle {
 public:
  StructureHandle() = default;

  std::uint64_t id() const { return id_; }
  std::uint64_t version() const { return version_; }
  bool valid() const { return id_ != 0; }
  bool has_mask() const { return m_ != nullptr; }
  const std::shared_ptr<const CSRMatrix<IT, VT>>& b() const { return b_; }
  const std::shared_ptr<const CSRMatrix<IT, VT>>& mask() const { return m_; }

 private:
  template <class, class, class>
  friend class Session;

  StructureHandle(std::uint64_t id, std::uint64_t version,
                  std::shared_ptr<const CSRMatrix<IT, VT>> b,
                  std::shared_ptr<const CSRMatrix<IT, VT>> m)
      : id_(id), version_(version), b_(std::move(b)), m_(std::move(m)) {}

  std::uint64_t id_ = 0;
  std::uint64_t version_ = 0;
  std::shared_ptr<const CSRMatrix<IT, VT>> b_;
  std::shared_ptr<const CSRMatrix<IT, VT>> m_;
};

// One caller's pipelined stream of products. Move-only. Destroying a session
// drains its in-flight requests and releases its registrations; the backend
// (shared with the client and any sibling sessions) stays up.
template <class SR, class IT, class VT>
  requires Semiring<SR>
class Session {
 public:
  using Mat = CSRMatrix<IT, VT>;
  using Result = ClientResult<IT, typename SR::value_type>;
  using Handle = StructureHandle<IT, VT>;

  Session(std::shared_ptr<Backend<SR, IT, VT>> backend, SessionConfig cfg)
      : backend_(std::move(backend)),
        cfg_(cfg),
        st_(std::make_shared<State>()) {
    check_arg(backend_ != nullptr, "Session: null backend");
    check_arg(cfg_.max_in_flight > 0, "Session: max_in_flight must be > 0");
  }

  Session(Session&&) = default;
  Session& operator=(Session&& other) {
    if (this != &other) {
      close();  // the replaced session's registrations must not leak
      backend_ = std::move(other.backend_);
      cfg_ = other.cfg_;
      st_ = std::move(other.st_);
      registered_ = std::move(other.registered_);
    }
    return *this;
  }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  ~Session() { close(); }

  // Drains in-flight requests and releases every structure this session
  // registered. Idempotent; run by the destructor and by move-assignment
  // onto a live session.
  void close() {
    if (st_ == nullptr) return;  // moved-from or already closed
    drain();
    for (std::uint64_t id : registered_) backend_->release_structure(id);
    registered_.clear();
    st_.reset();
    backend_.reset();
  }

  // Registers stationary operands described by a StructureSpec — the single
  // entry point (the former shared_ptr/value/alias-sniffing overloads are
  // gone; see the README migration table). The handle starts at version 1;
  // update() advances it. If the session has a max_structures quota, the
  // least recently used live registration is evicted (released on the
  // backend, unregister on the wire) to make room.
  Handle register_structure(StructureSpec<IT, VT> spec) {
    check_arg(st_ != nullptr, "Session::register_structure: session closed");
    if (cfg_.max_structures > 0 &&
        registered_.size() >= cfg_.max_structures) {
      const std::uint64_t victim = registered_.front();  // front = LRU
      registered_.erase(registered_.begin());
      backend_->release_structure(victim);
    }
    auto b = spec.b();
    auto m = spec.mask_ptr();
    const std::uint64_t id =
        backend_->register_structure(b, m, spec.replicas());
    registered_.push_back(id);
    return Handle(id, /*version=*/1, std::move(b), std::move(m));
  }

  // Applies an edge insert/delete batch to the registered structure and
  // returns a NEW handle at the next version. The patched B is materialized
  // once, here; backends reuse it (locally) or re-apply the shipped delta
  // (sharded — the matrix never crosses the wire). A self-masked structure's
  // mask follows B. The old handle's in-flight and future submits resolve to
  // kStaleStructure once the update is live; results already computed against
  // the old version are unaffected. Throws std::invalid_argument for a
  // malformed delta (out-of-range endpoint, mismatched arrays) — the
  // structure is untouched in that case.
  Handle update(const Handle& h, const EdgeDelta<IT, VT>& delta) {
    check_arg(st_ != nullptr, "Session::update: session closed");
    check_arg(h.valid(), "Session::update: invalid structure handle");
    auto new_b = std::make_shared<const Mat>(apply_edge_delta(*h.b(), delta));
    auto new_m = h.mask() == h.b() ? new_b : h.mask();
    auto sd = std::make_shared<const EdgeDelta<IT, VT>>(delta);
    const std::uint64_t version =
        backend_->update_structure(h.id(), std::move(sd), new_b, new_m);
    touch(h.id());
    return Handle(h.id(), version, std::move(new_b), std::move(new_m));
  }

  // Drops the registration (backend-side resources freed); outstanding
  // submits against it should be drained first. The handle becomes invalid.
  void release(Handle& h) {
    if (!h.valid() || backend_ == nullptr) return;
    for (auto it = registered_.begin(); it != registered_.end(); ++it) {
      if (*it == h.id()) {
        registered_.erase(it);
        break;
      }
    }
    backend_->release_structure(h.id());
    h = Handle();
  }

  // Pipelines C = M .* (A·B) using the structure's registered mask. Blocks
  // only when max_in_flight requests are already outstanding. Invalid local
  // arguments surface as kBadRequest results (same taxonomy as remote
  // validation), not exceptions.
  std::future<Result> submit(std::shared_ptr<const Mat> a, const Handle& h,
                             const SubmitOptions& opts = {}) {
    return submit(std::move(a), nullptr, h, opts);
  }

  // Per-request mask form (BFS/BC: the visited set changes every level while
  // B stays put). `mask` may alias `a` or the registered B by shared_ptr
  // identity. Null mask means "use the registered M".
  std::future<Result> submit(std::shared_ptr<const Mat> a,
                             std::shared_ptr<const Mat> mask, const Handle& h,
                             const SubmitOptions& opts = {}) {
    if (st_ == nullptr) {
      return fail_now(RequestStatus::kBadRequest, "session closed");
    }
    if (!h.valid()) return fail_now(RequestStatus::kBadRequest,
                                    "invalid structure handle");
    if (a == nullptr) {
      return fail_now(RequestStatus::kBadRequest, "null A operand");
    }
    if (mask == nullptr && !h.has_mask()) {
      return fail_now(RequestStatus::kBadRequest,
                      "no mask: structure has none registered and none was "
                      "passed");
    }
    touch(h.id());
    {
      MutexLock lock(&st_->mu);
      while (st_->in_flight >= cfg_.max_in_flight) st_->cv.wait(st_->mu);
      ++st_->in_flight;
    }
    auto promise = std::make_shared<std::promise<Result>>();
    auto future = promise->get_future();
    auto st = st_;
    // Request-scoped tracing starts here: mint the trace id, record the root
    // span when the completion lands. Backends pick the context up from the
    // thread-local while this call is on the stack — no signature plumbing.
    const std::uint64_t t0 = obs::now_ns();
    obs::TraceId trace;
    std::uint64_t root_span = 0;
    if (obs::trace_enabled()) {
      trace = obs::mint_trace_id();
      root_span = obs::next_span_id();
    }
    obs::Histogram* h_req = h_request_;
    obs::ScopedTraceContext tctx({trace, root_span, "client"});
    backend_->submit(h.id(), h.version(), std::move(a), std::move(mask),
                     opts.masked, opts.priority,
                     [st, promise, trace, root_span, t0, h_req](Result r) {
                       const std::uint64_t dur = obs::now_ns() - t0;
                       h_req->observe_ns(dur);
                       if (trace.valid()) {
                         obs::record_span("client.submit", trace, root_span,
                                          /*parent_id=*/0, t0, dur, "client");
                         obs::maybe_log_slow(trace, dur);
                       }
                       promise->set_value(std::move(r));
                       {
                         MutexLock lock(&st->mu);
                         --st->in_flight;
                       }
                       st->cv.notify_all();
                     });
    return future;
  }

  // Convenience: copy a transient A (and mask) into shared storage.
  std::future<Result> submit(const Mat& a, const Handle& h,
                             const SubmitOptions& opts = {}) {
    return submit(std::make_shared<const Mat>(a), nullptr, h, opts);
  }

  // Blocks until every request submitted through this session has resolved.
  void drain() {
    if (st_ == nullptr) return;
    MutexLock lock(&st_->mu);
    while (st_->in_flight != 0) st_->cv.wait(st_->mu);
  }

  std::size_t in_flight() const {
    if (st_ == nullptr) return 0;
    MutexLock lock(&st_->mu);
    return st_->in_flight;
  }

  Backend<SR, IT, VT>& backend() { return *backend_; }

 private:
  struct State {
    mutable Mutex mu{LockRank::kClientSession, "Session::State::mu"};
    CondVar cv;
    std::size_t in_flight MSX_GUARDED_BY(mu) = 0;
  };

  // Marks a structure most-recently-used for the max_structures LRU quota
  // (registered_ is ordered LRU-front). No-op for ids already released.
  void touch(std::uint64_t id) {
    for (auto it = registered_.begin(); it != registered_.end(); ++it) {
      if (*it == id) {
        registered_.erase(it);
        registered_.push_back(id);
        return;
      }
    }
  }

  std::future<Result> fail_now(RequestStatus status, std::string message) {
    std::promise<Result> p;
    Result r;
    r.status = status;
    r.message = std::move(message);
    p.set_value(std::move(r));
    return p.get_future();
  }

  std::shared_ptr<Backend<SR, IT, VT>> backend_;
  SessionConfig cfg_;
  std::shared_ptr<State> st_;
  // End-to-end submit→completion latency as observed by this client process
  // (all sessions share the one global series). Registry entries are
  // immortal, so the pointer outlives every session.
  obs::Histogram* h_request_ =
      obs::Registry::global().histogram("msx_client_request_seconds");
  // Live registrations in LRU order (front = least recently used). Released
  // at session close; also the eviction order under max_structures.
  std::vector<std::uint64_t> registered_;
};

// The entry point: owns (a share of) a backend and vends sessions. Cheap to
// copy — copies share the backend.
template <class SR, class IT, class VT>
  requires Semiring<SR>
class MaskedClient {
 public:
  using Mat = CSRMatrix<IT, VT>;
  using Result = ClientResult<IT, typename SR::value_type>;

  explicit MaskedClient(std::shared_ptr<Backend<SR, IT, VT>> backend)
      : backend_(std::move(backend)) {
    check_arg(backend_ != nullptr, "MaskedClient: null backend");
  }

  Session<SR, IT, VT> open_session(SessionConfig cfg = {}) {
    return Session<SR, IT, VT>(backend_, cfg);
  }

  Backend<SR, IT, VT>& backend() { return *backend_; }
  std::shared_ptr<Backend<SR, IT, VT>> backend_ptr() { return backend_; }

  // Blocks until every request submitted through any session has resolved.
  void drain() { backend_->drain(); }

  // Prometheus text for the whole stack this client can see: client-side
  // series, the backend's own, and (sharded) each reachable shard's page.
  std::string metrics() { return backend_->metrics(); }

 private:
  std::shared_ptr<Backend<SR, IT, VT>> backend_;
};

}  // namespace msx::client
