// LocalBackend — the client API served in-process by the concurrent runtime
// (ISSUE 5 tentpole).
//
// Registered structures are held as shared operands, and every submit goes
// through BatchExecutor::submit_shared: nothing is copied per request, the
// structure-keyed PlanCache serves repeats warm, and Priority maps straight
// onto the executor's two-level queues. Completion rides the executor's
// on_complete hook (the job's future is ready when it fires), so drain() is
// exactly wait_idle().
//
// Error taxonomy mapping: BatchRejected -> kOverloaded, std::invalid_argument
// (shape/option validation, thrown inside the job) -> kBadRequest, a version
// mismatch against the live registration -> kStaleStructure, anything else
// -> kInternalError. kShardDown cannot happen locally.
#pragma once

#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "client/client.hpp"
#include "common/thread_annotations.hpp"
#include "runtime/batch.hpp"

namespace msx::client {

template <class SR, class IT, class VT>
  requires Semiring<SR>
class LocalBackend final : public Backend<SR, IT, VT> {
 public:
  using Base = Backend<SR, IT, VT>;
  using Mat = typename Base::Mat;
  using Result = typename Base::Result;
  using Completion = typename Base::Completion;
  using Executor = BatchExecutor<SR, IT, VT>;

  // Owns its executor.
  explicit LocalBackend(const BatchLimits& limits = {})
      : owned_(std::make_unique<Executor>(limits)), exec_(owned_.get()) {}

  // Borrows an executor shared with other parts of the process (it must
  // outlive the backend).
  explicit LocalBackend(Executor& exec) : exec_(&exec) {}

  ~LocalBackend() override { drain(); }

  std::uint64_t register_structure(std::shared_ptr<const Mat> b,
                                   std::shared_ptr<const Mat> m,
                                   int replicas = 1) override {
    (void)replicas;  // placement hint; everything is local here
    check_arg(b != nullptr, "LocalBackend: null B");
    MutexLock lock(&mu_);
    const std::uint64_t id = next_id_++;
    structures_[id] = Structure{std::move(b), std::move(m)};
    return id;
  }

  void release_structure(std::uint64_t structure_id) override {
    MutexLock lock(&mu_);
    structures_.erase(structure_id);
  }

  std::uint64_t update_structure(std::uint64_t structure_id,
                                 std::shared_ptr<const EdgeDelta<IT, VT>> delta,
                                 std::shared_ptr<const Mat> new_b,
                                 std::shared_ptr<const Mat> new_m) override {
    check_arg(new_b != nullptr, "LocalBackend: null updated B");
    MutexLock lock(&mu_);
    const auto it = structures_.find(structure_id);
    check_arg(it != structures_.end(),
              "LocalBackend: update for unknown structure id");
    Structure& s = it->second;
    auto lineage = std::make_shared<PlanLineage<IT, VT>>();
    lineage->old_b = s.b;
    // Computed once per delta and shared with every plan instance the cache
    // migrates forward (delta_touched_rows sorts; don't repeat it per plan).
    lineage->touched = std::make_shared<const std::vector<IT>>(
        delta_touched_rows(*delta));
    lineage->delta = std::move(delta);
    s.b = std::move(new_b);
    s.m = std::move(new_m);
    s.lineage = std::move(lineage);
    return ++s.version;
  }

  void submit(std::uint64_t structure_id, std::uint64_t version,
              std::shared_ptr<const Mat> a,
              std::shared_ptr<const Mat> mask_override,
              const MaskedOptions& opts, Priority priority,
              Completion done) override {
    Structure s;
    {
      MutexLock lock(&mu_);
      const auto it = structures_.find(structure_id);
      if (it == structures_.end()) {
        s.b = nullptr;
      } else {
        s = it->second;
      }
    }
    if (s.b == nullptr) {
      deliver(done, RequestStatus::kBadRequest,
              "unknown structure id " + std::to_string(structure_id));
      return;
    }
    if (version != s.version) {
      deliver(done, RequestStatus::kStaleStructure,
              "structure " + std::to_string(structure_id) +
                  " submitted at version " + std::to_string(version) +
                  " but is at version " + std::to_string(s.version));
      return;
    }
    auto m = mask_override != nullptr ? std::move(mask_override) : s.m;
    if (m == nullptr) {
      deliver(done, RequestStatus::kBadRequest,
              "structure registered without a mask");
      return;
    }

    // The executor's completion hook fires on the worker right after the
    // job's future becomes ready; `bound` closes the tiny window between
    // submit_shared returning the future and the hook consuming it.
    struct Pending {
      std::promise<void> bound;
      std::future<typename Executor::output_matrix> fut;
    };
    auto pending = std::make_shared<Pending>();
    JobOptions job;
    job.priority = priority;
    // Session::submit is on the stack: adopt its trace so the executor's
    // exec.queue / exec.run (and phase.*) spans nest under the client root.
    job.trace = obs::current_trace();
    job.trace.component = "local";
    job.on_complete = [pending, done]() {
      pending->bound.get_future().wait();
      Result r;
      try {
        r.matrix = pending->fut.get();
      } catch (const std::invalid_argument& e) {
        r.status = RequestStatus::kBadRequest;
        r.message = e.what();
      } catch (const std::exception& e) {
        r.status = RequestStatus::kInternalError;
        r.message = e.what();
      }
      done(std::move(r));
    };
    try {
      pending->fut =
          exec_->submit_shared(std::move(a), s.b, std::move(m), opts,
                               std::move(job), s.lineage);
      pending->bound.set_value();
    } catch (const BatchRejected& e) {
      // Not enqueued: the hook never fires, deliver here.
      deliver(done, RequestStatus::kOverloaded, e.what());
    } catch (const std::invalid_argument& e) {
      deliver(done, RequestStatus::kBadRequest, e.what());
    } catch (const std::exception& e) {
      deliver(done, RequestStatus::kInternalError, e.what());
    }
  }

  void drain() override { exec_->wait_idle(); }

  std::string name() const override { return "local"; }

  // Client-side series plus the in-process executor's registry.
  std::string metrics() override {
    exec_->publish_metrics();
    return obs::Registry::global().render() + exec_->metrics().render();
  }

  Executor& executor() { return *exec_; }

 private:
  struct Structure {
    std::shared_ptr<const Mat> b;
    std::shared_ptr<const Mat> m;
    std::uint64_t version = 1;
    // Most recent update's {old B, delta}: lets the plan cache migrate a warm
    // plan for the previous version instead of building cold.
    std::shared_ptr<const PlanLineage<IT, VT>> lineage;
  };

  static void deliver(const Completion& done, RequestStatus status,
                      std::string message) {
    Result r;
    r.status = status;
    r.message = std::move(message);
    done(std::move(r));
  }

  std::unique_ptr<Executor> owned_;
  Executor* exec_;
  Mutex mu_{LockRank::kClientBackend, "LocalBackend::mu_"};
  std::unordered_map<std::uint64_t, Structure> structures_ MSX_GUARDED_BY(mu_);
  std::uint64_t next_id_ MSX_GUARDED_BY(mu_) = 1;
};

// Convenience: a client over a fresh local runtime.
template <class SR, class IT, class VT>
MaskedClient<SR, IT, VT> make_local_client(const BatchLimits& limits = {}) {
  return MaskedClient<SR, IT, VT>(
      std::make_shared<LocalBackend<SR, IT, VT>>(limits));
}

}  // namespace msx::client
