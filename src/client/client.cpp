#include "client/client.hpp"

namespace msx::client {

const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kOverloaded: return "overloaded";
    case RequestStatus::kShardDown: return "shard-down";
    case RequestStatus::kBadRequest: return "bad-request";
    case RequestStatus::kInternalError: return "internal-error";
    case RequestStatus::kStaleStructure: return "stale-structure";
  }
  return "?";
}

}  // namespace msx::client
