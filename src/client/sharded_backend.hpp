// ShardedBackend — pipelined async client for a fleet of ServiceShards
// (ISSUE 5 tentpole). Replaces the blocking ShardRouter::request path for
// clients that keep products in flight.
//
// Per shard there is ONE connection with a writer/reader thread pair:
//
//   * the writer drains a two-level (interactive-first) send queue of frames
//     — structure registrations, updates, submits, unregistrations — as
//     scatter-gather writes referencing the operands in place;
//   * the reader matches responses to requests by request id through the
//     connection's in-flight map, so completions resolve to the right future
//     no matter the arrival order.
//
// Stationary operands are the whole point: a registered structure's B (and
// optional M) is shipped and hashed once per shard connection
// (kRegisterRequest), after which each submit carries only what varies —
// often nothing but flags, when A and the mask alias B as in k-truss. The
// blocking router serializes, checksums and re-fingerprints B on every
// single call; at service scale that per-request O(nnz(B)) tax is what the
// session protocol removes, on top of keeping the shard's pipeline full.
//
// Failure semantics: when a connection dies (dial failure, transport error,
// garbled frame) the shard is marked down, its connection generation is
// bumped (invalidating that connection's registrations, which died with it
// server-side), and every request that was queued or in flight on it is
// re-dispatched to the next shard on the ring — re-registering structures
// there lazily — so a mid-pipeline shard kill loses nothing and duplicates
// nothing (each request completes exactly once; products are pure, so
// re-execution is safe). kOverloaded answers re-route the one request
// without marking the shard down. When every eligible shard is exhausted the
// request completes with kShardDown (or kOverloaded when back-pressure was
// the reason). Destroying the backend resolves any still-in-flight futures
// with kShardDown rather than leaving them hanging.
//
// Optional health probing (off by default): every probe_interval, down
// shards get a cheap kStatsRequest on a fresh dial and auto-rejoin the ring
// on success — the distributed analogue of the router's mark_up.
//
// 2D products (service/distributed.hpp): a submit whose estimated flops
// clear dist_flop_threshold (MaskedOptions::dist overrides) is cut into an
// A-row-panel × B-col-panel grid. Each column panel of B (and of the
// registered mask) is registered once per owning shard as an ordinary
// versioned structure; each (row, col) panel task is an ordinary pipelined
// submit whose mask is the registered panel mask row-windowed server-side
// (wire v4 kSubMaskRows). Panel results come back as zero-copy views over
// the receive payload and are merged client-side into the bit-identical
// full result. StructureSpec::replicate(R) keeps each hot panel live on R
// shards; panel placement spreads over the replica set weighted by the
// shard-reported execute-time EWMA, and mid-flight shard failure
// re-dispatches the lost panel tasks to surviving replicas through the
// same orphan machinery ordinary requests use.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "client/client.hpp"
#include "common/thread_annotations.hpp"
#include "core/flops.hpp"
#include "runtime/plan_cache.hpp"
#include "service/distributed.hpp"
#include "service/router.hpp"  // ShardEndpoint, ConsistentHashRing
#include "service/shard.hpp"
#include "service/transport.hpp"
#include "service/wire.hpp"

namespace msx::client {

struct ShardedBackendConfig {
  // Ring points per shard (see RouterConfig::vnodes).
  int vnodes = 64;
  // Health probing of down shards; zero disables (default — tests drive
  // probe_down_shards() explicitly).
  std::chrono::milliseconds probe_interval{0};
  // A submit whose estimated multiply count reaches this goes 2D
  // (MaskedOptions::dist/dist_flop_threshold override per request). ~64M
  // flops is where panel scatter overhead is clearly amortized on the RMAT
  // inputs the benches use.
  std::uint64_t dist_flop_threshold = 1ull << 26;
};

struct ShardedBackendStats {
  std::vector<std::uint64_t> routed;   // kOk completions per shard
  // Per-shard EWMA of shard-reported execute time (wire v4 exec_nanos),
  // 0.0 until the first kOk — what 2D panel placement weights by.
  std::vector<double> ewma_nanos;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;         // completions delivered (any status)
  std::uint64_t failover_resubmits = 0;
  std::uint64_t overload_reroutes = 0;
  std::uint64_t down_marks = 0;
  std::uint64_t probes = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t dist2d_products = 0;   // submits that went 2D
  std::uint64_t dist2d_panels = 0;     // panel tasks scattered for them
};

// Structure digest for routing points: hashes a matrix's pattern once so a
// registered B never needs re-hashing per submit (the blocking router's
// plan_fingerprint walks B's arrays on every call). Requests with identical
// operand structure and options map to the same point — which is all
// consistent hashing needs — and the point is deterministic across client
// instances, so independent clients agree on shard affinity.
template <class IT, class VT>
std::uint64_t matrix_structure_digest(const CSRMatrix<IT, VT>& m,
                                      std::uint64_t seed) {
  std::uint64_t h =
      plan_hash_bytes(seed, m.rowptr().data(), m.rowptr().size_bytes());
  h = plan_hash_bytes(h, m.colidx().data(), m.colidx().size_bytes());
  const std::uint64_t dims[] = {static_cast<std::uint64_t>(m.nrows()),
                                static_cast<std::uint64_t>(m.ncols())};
  return plan_hash_bytes(h, dims, sizeof dims);
}

template <class SR, class IT, class VT>
  requires Semiring<SR>
class ShardedBackend final : public Backend<SR, IT, VT> {
 public:
  using Base = Backend<SR, IT, VT>;
  using Mat = typename Base::Mat;
  using VTC = typename SR::value_type;
  using Result = typename Base::Result;
  using Completion = typename Base::Completion;

  explicit ShardedBackend(std::vector<service::ShardEndpoint> endpoints,
                          ShardedBackendConfig cfg = {})
      : endpoints_(std::move(endpoints)),
        cfg_(cfg),
        ring_(endpoints_.size(), cfg.vnodes),
        down_(endpoints_.size(), 0),
        routed_(endpoints_.size(), 0),
        ewma_nanos_(endpoints_.size(), 0.0) {
    check_arg(!endpoints_.empty(), "ShardedBackend: no shard endpoints");
    conns_.reserve(endpoints_.size());
    for (std::size_t i = 0; i < endpoints_.size(); ++i) {
      conns_.push_back(std::make_unique<Conn>());
    }
    if (cfg_.probe_interval.count() > 0) {
      prober_ = std::thread([this] { probe_loop(); });
    }
  }

  ~ShardedBackend() override { shutdown(); }

  ShardedBackend(const ShardedBackend&) = delete;
  ShardedBackend& operator=(const ShardedBackend&) = delete;

  // --- Backend --------------------------------------------------------------

  std::uint64_t register_structure(std::shared_ptr<const Mat> b,
                                   std::shared_ptr<const Mat> m,
                                   int replicas = 1) override {
    check_arg(b != nullptr, "ShardedBackend: null B");
    check_arg(replicas >= 1, "ShardedBackend: replicas must be >= 1");
    auto s = std::make_shared<Structure>();
    s->id = next_structure_.fetch_add(1, std::memory_order_relaxed);
    s->b = std::move(b);
    s->m = std::move(m);
    s->replicas = replicas;
    s->b_digest = matrix_structure_digest(*s->b, kDigestSeedB);
    s->m_digest =
        s->m == nullptr
            ? 0
            : (s->m == s->b ? s->b_digest
                            : matrix_structure_digest(*s->m, kDigestSeedM));
    s->reg_gen.assign(endpoints_.size(), 0);  // gens start at 1: unregistered
    MutexLock lock(&mu_);
    structures_[s->id] = s;
    return s->id;
  }

  void release_structure(std::uint64_t structure_id) override {
    MutexLock lock(&mu_);
    const auto it = structures_.find(structure_id);
    if (it == structures_.end()) return;
    const auto s = it->second;
    structures_.erase(it);
    if (stopping_) return;
    enqueue_unregister_locked(*s);
    if (s->plan2d != nullptr) {
      for (const auto& p : s->plan2d->panels) enqueue_unregister_locked(*p);
    }
  }

  std::uint64_t update_structure(std::uint64_t structure_id,
                                 std::shared_ptr<const EdgeDelta<IT, VT>> delta,
                                 std::shared_ptr<const Mat> new_b,
                                 std::shared_ptr<const Mat> new_m) override {
    check_arg(new_b != nullptr, "ShardedBackend: null updated B");
    check_arg(delta != nullptr, "ShardedBackend: null delta");
    MutexLock lock(&mu_);
    const auto it = structures_.find(structure_id);
    check_arg(it != structures_.end(),
              "ShardedBackend: update for unknown structure id");
    Structure& s = *it->second;
    s.b = std::move(new_b);
    s.m = std::move(new_m);
    const std::uint64_t version = ++s.version;
    if (stopping_) return version;
    // Only the delta crosses the wire, and only to connections that hold the
    // old registration; everywhere else the next lazy registration ships the
    // already-updated B. Updates ride the interactive queue so no submit can
    // overtake them — a submit enqueued before this update may still be
    // overtaken (it sits in sendq_lo) and come back kStaleStructure, which is
    // exactly the race the typed status exists for.
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      Conn& c = *conns_[i];
      if (c.running && s.reg_gen[i] == c.gen) {
        SendItem item;
        item.kind = SendItem::Kind::kUpdate;
        item.structure_id = structure_id;
        item.version = version;
        item.delta = delta;
        c.sendq_hi.push_back(std::move(item));
        c.cv.notify_all();
      }
    }
    update_panels_locked(s, delta, version);
    return version;
  }

  void submit(std::uint64_t structure_id, std::uint64_t version,
              std::shared_ptr<const Mat> a,
              std::shared_ptr<const Mat> mask_override,
              const MaskedOptions& opts, Priority priority,
              Completion done) override {
    reap_retired();
    std::shared_ptr<Structure> s;
    {
      MutexLock lock(&mu_);
      const auto it = structures_.find(structure_id);
      if (it != structures_.end()) s = it->second;
    }
    auto req = std::make_shared<Request>();
    req->done = std::move(done);
    if (obs::trace_enabled()) {
      const obs::TraceContext tc = obs::current_trace();
      req->trace = tc.id;
      req->trace_parent = tc.parent_span;
    }
    if (s == nullptr || a == nullptr) {
      Result r;
      r.status = RequestStatus::kBadRequest;
      r.message = s == nullptr
                      ? "unknown structure id " + std::to_string(structure_id)
                      : "null A operand";
      {
        MutexLock lock(&mu_);
        ++submitted_;
        ++inflight_total_;
      }
      finish(req, std::move(r));
      return;
    }
    req->structure = std::move(s);
    req->version = version;
    req->a = std::move(a);
    req->mask = std::move(mask_override);
    req->opts = opts;
    req->priority = priority;
    req->excluded.assign(endpoints_.size(), 0);
    req->point = route_point(*req);
    {
      MutexLock lock(&mu_);
      ++submitted_;
      ++inflight_total_;
    }
    if (try_submit_2d(req)) return;
    dispatch(req);
  }

  void drain() override {
    MutexLock lock(&mu_);
    while (inflight_total_ != 0) drain_cv_.wait(mu_);
  }

  std::string name() const override { return "sharded"; }

  // Client-side series, backend routing/failover series, then every
  // reachable shard's page fetched over the wire (kMetricsRequest on a
  // fresh dial). Down or unreachable shards are skipped — a metrics scrape
  // must never fail because part of the fleet is.
  std::string metrics() override {
    const ShardedBackendStats s = stats();
    metrics_.counter("msx_backend_submitted_total")->set(s.submitted);
    metrics_.counter("msx_backend_completed_total")->set(s.completed);
    metrics_.counter("msx_backend_failover_resubmits_total")
        ->set(s.failover_resubmits);
    metrics_.counter("msx_backend_overload_reroutes_total")
        ->set(s.overload_reroutes);
    metrics_.counter("msx_backend_down_marks_total")->set(s.down_marks);
    metrics_.counter("msx_backend_probes_total")->set(s.probes);
    metrics_.counter("msx_backend_rejoins_total")->set(s.rejoins);
    metrics_.counter("msx_backend_dist2d_products_total")
        ->set(s.dist2d_products);
    metrics_.counter("msx_backend_dist2d_panels_total")->set(s.dist2d_panels);
    {
      MutexLock lock(&mu_);
      metrics_.gauge("msx_backend_inflight")
          ->set(static_cast<double>(inflight_total_));
    }
    for (std::size_t i = 0; i < endpoints_.size(); ++i) {
      const std::string label = "shard=\"" + endpoints_[i].name + "\"";
      metrics_.counter("msx_backend_routed_total", label)->set(s.routed[i]);
      metrics_.gauge("msx_backend_ewma_nanos", label)->set(s.ewma_nanos[i]);
      metrics_.gauge("msx_backend_shard_up", label)
          ->set(is_down(i) ? 0.0 : 1.0);
    }
    std::string out = obs::Registry::global().render() + metrics_.render();
    for (std::size_t i = 0; i < endpoints_.size(); ++i) {
      if (is_down(i)) continue;
      auto page = service::probe_metrics(endpoints_[i]);
      if (page.has_value()) out += *page;
    }
    return out;
  }

  // --- fleet management -----------------------------------------------------

  void mark_down(std::size_t shard) {
    check_arg(shard < endpoints_.size(), "ShardedBackend: shard out of range");
    MutexLock lock(&mu_);
    if (!down_[shard]) {
      down_[shard] = 1;
      ++down_marks_;
    }
  }

  void mark_up(std::size_t shard) {
    check_arg(shard < endpoints_.size(), "ShardedBackend: shard out of range");
    MutexLock lock(&mu_);
    down_[shard] = 0;
  }

  bool is_down(std::size_t shard) const {
    MutexLock lock(&mu_);
    return down_[shard] != 0;
  }

  std::size_t num_shards() const { return endpoints_.size(); }

  // One probing round over every down shard (kStatsRequest on a fresh dial,
  // mark_up on success); public so tests and schedulers can drive it without
  // the background thread. Returns how many shards rejoined.
  std::size_t probe_down_shards() {
    std::size_t rejoined = 0;
    for (std::size_t i = 0; i < endpoints_.size(); ++i) {
      if (!is_down(i)) continue;
      {
        MutexLock lock(&mu_);
        ++probes_;
      }
      if (!service::probe_endpoint(endpoints_[i]).has_value()) continue;
      mark_up(i);
      ++rejoined;
      MutexLock lock(&mu_);
      ++rejoins_;
    }
    return rejoined;
  }

  // Blocking stats probe of one shard on a fresh connection (benches and
  // affinity accounting; not part of the pipelined data path).
  service::ServiceStats shard_stats(std::size_t shard) {
    check_arg(shard < endpoints_.size(), "ShardedBackend: shard out of range");
    auto stats = service::probe_endpoint(endpoints_[shard]);
    if (!stats.has_value()) {
      throw service::TransportError("ShardedBackend: stats probe failed: " +
                                    endpoints_[shard].name);
    }
    return *stats;
  }

  ShardedBackendStats stats() const {
    MutexLock lock(&mu_);
    ShardedBackendStats out;
    out.routed = routed_;
    out.ewma_nanos = ewma_nanos_;
    out.submitted = submitted_;
    out.completed = completed_;
    out.failover_resubmits = failover_resubmits_;
    out.overload_reroutes = overload_reroutes_;
    out.down_marks = down_marks_;
    out.probes = probes_;
    out.rejoins = rejoins_;
    out.dist2d_products = dist2d_products_;
    out.dist2d_panels = dist2d_panels_;
    return out;
  }

  // Stops the connection threads and resolves every queued or in-flight
  // request with kShardDown — futures never hang across a client shutdown.
  // Idempotent; also run by the destructor.
  void shutdown() {
    std::vector<std::thread> threads;
    {
      MutexLock lock(&mu_);
      stopping_ = true;
      for (auto& cptr : conns_) {
        Conn& c = *cptr;
        if (c.stream != nullptr) c.stream->shutdown();
        c.cv.notify_all();
        if (c.writer.joinable()) threads.push_back(std::move(c.writer));
        if (c.reader.joinable()) threads.push_back(std::move(c.reader));
      }
      for (auto& r : retired_) threads.push_back(std::move(r.thread));
      retired_.clear();
    }
    probe_cv_.notify_all();
    if (prober_.joinable()) prober_.join();
    for (auto& t : threads) t.join();
    // Anything still queued or in flight resolves now — futures must not
    // hang across a client shutdown.
    std::vector<RequestPtr> leftovers;
    {
      MutexLock lock(&mu_);
      for (auto& cptr : conns_) {
        for (auto& [rid, r] : cptr->inflight) leftovers.push_back(r);
        cptr->inflight.clear();
        cptr->sendq_hi.clear();
        cptr->sendq_lo.clear();
      }
    }
    for (auto& r : leftovers) {
      Result err;
      err.status = RequestStatus::kShardDown;
      err.message = "client shut down with the request in flight";
      settle(r, std::move(err));
    }
  }

 private:
  static constexpr std::uint64_t kDigestSeedA = 0x636c69656e742d41ull;
  static constexpr std::uint64_t kDigestSeedB = 0x636c69656e742d42ull;
  static constexpr std::uint64_t kDigestSeedM = 0x636c69656e742d4dull;
  static constexpr std::uint64_t kPointSeed = 0x636c69656e742d70ull;
  static constexpr std::uint64_t kDigestSeed2D = 0x636c69656e742d32ull;

  struct Plan2D;

  struct Structure {
    std::uint64_t id = 0;
    std::shared_ptr<const Mat> b;
    std::shared_ptr<const Mat> m;  // null unless registered with a mask
    std::uint64_t version = 1;     // advanced by update_structure (mu_)
    // Digests are computed at registration and FIXED across updates: a
    // streaming structure keeps its shard affinity under churn instead of
    // migrating (and re-shipping B) every delta. Trade-off: a long-lived,
    // heavily mutated structure routes by its original pattern.
    std::uint64_t b_digest = 0;
    std::uint64_t m_digest = 0;
    // Per shard: the connection generation this structure was registered on
    // (registrations are connection-scoped server-side, so a bumped
    // generation means "register again before the next submit"). Guarded by
    // the owning backend's mu_ — a cross-object guard MSX_GUARDED_BY cannot
    // name, so the contract is enforced by this comment and the debug
    // lock-order checker's coverage of mu_ itself.
    std::vector<std::uint64_t> reg_gen;
    // Replica placement hint for 2D panels (StructureSpec::replicate).
    int replicas = 1;
    // The structure's 2D plan, built lazily by the first submit that goes 2D
    // and patched in lockstep with updates (mu_). Panel structures live only
    // here — never in structures_, so user ids cannot collide with them.
    std::shared_ptr<Plan2D> plan2d;
  };

  // A structure's column decomposition: C panel structures (B and mask
  // column slices registered on shards like any other structure) plus the
  // bounds that cut them. Row panels are per-submit (A varies); column
  // panels are per-structure, which is what makes them registrable.
  struct Plan2D {
    std::uint64_t version = 0;  // the structure version the panels mirror
    int requested_cols = 0;     // the panel count this plan was built for
    std::shared_ptr<const Mat> built_m;  // parent mask the slices came from
    std::vector<std::int64_t> col_start;
    std::vector<std::shared_ptr<Structure>> panels;
  };

  struct Gather2D;

  struct Request {
    std::shared_ptr<Structure> structure;
    std::uint64_t version = 0;  // the version this submit was issued against
    std::shared_ptr<const Mat> a;
    std::shared_ptr<const Mat> mask;  // null = use registered M
    MaskedOptions opts;
    Priority priority = Priority::kBatch;
    std::uint64_t point = 0;
    // Trace context captured at submit (thread-local from Session::submit);
    // rides the wire as the v5 kSubTraced triple so shard-side spans join
    // the client's timeline. Invalid when tracing is off.
    obs::TraceId trace;
    std::uint64_t trace_parent = 0;
    std::vector<char> excluded;  // shards that answered kOverloaded (mu_)
    bool overloaded = false;     // any overload reroute happened (mu_)
    Completion done;
    // --- 2D panel task state (unset on ordinary requests) ---
    std::shared_ptr<Gather2D> gather;  // non-null marks a panel task
    std::size_t slot = 0;              // its cell in the gather grid
    bool mask_rows = false;            // wire v4 kSubMaskRows window
    std::uint64_t mask_r0 = 0, mask_r1 = 0;
    // Replica set to place on (EWMA/load-scored); the ring walk takes over
    // when every replica is down or excluded, so failover never strands a
    // panel task.
    std::vector<int> candidates;
  };
  using RequestPtr = std::shared_ptr<Request>;

  // Client-side rendezvous of one 2D product's panel tasks. Slots are filled
  // from reader threads without a lock: each panel task settles exactly once
  // (the same exactly-once lifecycle ordinary requests have), writes only
  // its own slot, and the acq_rel decrement chain on `remaining` publishes
  // every slot (and any failure claim) to whichever thread decrements last
  // and runs the merge.
  struct Gather2D {
    RequestPtr parent;
    std::vector<std::int64_t> row_start;
    IT ncols = 0;
    struct PanelSlot {
      std::vector<std::uint8_t> payload;  // owns the bytes the view aliases
      service::CSRView<IT, VTC> view;
    };
    std::vector<PanelSlot> slots;
    std::atomic<int> remaining{0};
    // 0 = clean, 1 = failure claimed; the claimant alone writes the fields.
    std::atomic<int> fail_state{0};
    RequestStatus fail_status = RequestStatus::kOk;
    std::string fail_message;
  };

  struct SendItem {
    enum class Kind { kRegister, kSubmit, kUnregister, kUpdate };
    Kind kind = Kind::kSubmit;
    std::uint64_t rid = 0;  // submit
    RequestPtr req;         // submit
    // Register ships a SNAPSHOT of {B, M, version} taken under mu_ at
    // enqueue time, not the live Structure: an update landing between
    // enqueue and serialization must not change what this frame says (the
    // update frame queued behind it carries the change).
    std::shared_ptr<const Mat> reg_b;                  // register
    std::shared_ptr<const Mat> reg_m;                  // register (may be null)
    std::uint64_t version = 0;                         // register / update
    std::shared_ptr<const EdgeDelta<IT, VT>> delta;    // update
    std::uint64_t structure_id = 0;  // unregister / register / update
  };

  // One shard's connection state, all guarded by the OWNING backend's mu_
  // except the stream I/O itself (exactly one writer and one reader thread
  // use the stream concurrently, which Stream supports by contract). The
  // guard is cross-object, so MSX_GUARDED_BY cannot name it — the contract
  // lives in this comment; every access site already holds mu_.
  struct Conn {
    std::shared_ptr<service::Stream> stream;  // threads hold their own refs
    std::thread writer, reader;
    // Set by each thread as its very last action, so a retired handle with
    // the flag up can be joined without ever blocking (or self-joining from
    // a completion callback still running on that thread).
    std::shared_ptr<std::atomic<bool>> writer_exited, reader_exited;
    std::deque<SendItem> sendq_hi, sendq_lo;
    std::unordered_map<std::uint64_t, RequestPtr> inflight;
    std::uint64_t gen = 1;
    bool running = false;
    CondVar cv;  // writer wakeup, waits on the backend's mu_
  };

  // A previous connection incarnation's thread, parked until provably done.
  struct Retired {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> exited;
  };

  std::uint64_t route_point(const Request& req) const {
    const Structure& s = *req.structure;
    const bool a_is_b = req.a == s.b;
    const std::uint64_t a_digest =
        a_is_b ? s.b_digest : matrix_structure_digest(*req.a, kDigestSeedA);
    std::uint64_t m_digest;
    std::uint64_t m_source;  // keeps aliased and equal-structure masks apart
    if (req.mask == nullptr) {
      m_digest = s.m_digest;
      m_source = 0;
    } else if (req.mask == req.a) {
      m_digest = a_digest;
      m_source = 1;
    } else if (req.mask == s.b) {
      m_digest = s.b_digest;
      m_source = 2;
    } else {
      m_digest = matrix_structure_digest(*req.mask, kDigestSeedM);
      m_source = 3;
    }
    const MaskedOptions& o = req.opts;
    const std::uint64_t header[] = {
        a_digest,
        s.b_digest,
        m_digest,
        (a_is_b ? 1u : 0u) | (m_source << 1),
        static_cast<std::uint64_t>(o.algo),
        static_cast<std::uint64_t>(o.phases),
        static_cast<std::uint64_t>(o.kind),
        static_cast<std::uint64_t>(o.schedule),
        static_cast<std::uint64_t>(o.cost_model),
        static_cast<std::uint64_t>(o.chunk),
        static_cast<std::uint64_t>(o.threads),
        static_cast<std::uint64_t>(o.heap_ninspect),
        o.inner_gallop ? 1u : 0u,
        sizeof(IT),
    };
    return plan_hash_bytes(kPointSeed, header, sizeof header);
  }

  // Routes the request to the first eligible shard (down and per-request
  // excluded shards skipped), lazily dialing the connection and registering
  // the structure on it. Falls through shards as dials fail; completes the
  // request with a typed error when none is left.
  void dispatch(const RequestPtr& req) {
    Result err;
    {
      MutexLock lock(&mu_);
      for (;;) {
        if (stopping_) {
          err.status = RequestStatus::kShardDown;
          err.message = "client shutting down";
          break;
        }
        std::vector<char> skip = down_;
        for (std::size_t i = 0; i < skip.size(); ++i) {
          skip[i] = static_cast<char>(skip[i] | req->excluded[i]);
        }
        int shard = -1;
        if (!req->candidates.empty()) {
          // 2D panel task: prefer the panel's replica set, scored by the
          // shard-reported execute-time EWMA scaled by queue depth, so a
          // slow or loaded replica sheds panel work to its peers.
          double best = 0.0;
          for (const int cand : req->candidates) {
            const auto ci = static_cast<std::size_t>(cand);
            if (skip[ci]) continue;
            const double e = ewma_nanos_[ci] > 0.0 ? ewma_nanos_[ci] : 1.0;
            const double score =
                e * (1.0 + static_cast<double>(conns_[ci]->inflight.size()));
            if (shard < 0 || score < best) {
              best = score;
              shard = cand;
            }
          }
        }
        // Replica set exhausted (or an ordinary request): walk the ring. A
        // panel spilling off its replicas re-registers lazily wherever it
        // lands, so failover loses nothing.
        if (shard < 0) shard = ring_.pick(req->point, skip);
        if (shard < 0) {
          err.status = req->overloaded ? RequestStatus::kOverloaded
                                       : RequestStatus::kShardDown;
          err.message = req->overloaded
                            ? "every eligible shard is overloaded or down"
                            : "no shard could serve the request";
          break;
        }
        const auto i = static_cast<std::size_t>(shard);
        if (!ensure_conn_locked(i)) continue;  // dial failed -> marked down
        Conn& c = *conns_[i];
        Structure& s = *req->structure;
        if (s.reg_gen[i] != c.gen) {
          // First sight of this structure on this connection: enqueue its
          // registration ahead of the submit. Registrations ride the
          // interactive queue so no submit (either level) can overtake them.
          s.reg_gen[i] = c.gen;
          SendItem reg;
          reg.kind = SendItem::Kind::kRegister;
          reg.structure_id = s.id;
          reg.reg_b = s.b;
          reg.reg_m = s.m;
          reg.version = s.version;
          c.sendq_hi.push_back(std::move(reg));
        }
        const std::uint64_t rid =
            next_rid_.fetch_add(1, std::memory_order_relaxed);
        c.inflight[rid] = req;
        SendItem item;
        item.kind = SendItem::Kind::kSubmit;
        item.rid = rid;
        item.req = req;
        (req->priority == Priority::kInteractive ? c.sendq_hi : c.sendq_lo)
            .push_back(std::move(item));
        c.cv.notify_all();
        return;
      }
    }
    settle(req, std::move(err));
  }

  // Dials and starts the connection's thread pair if it is not running.
  // Dial failure marks the shard down and returns false. Endpoint dials are
  // expected to be fast (loopback/local sockets); a slow WAN dial would
  // briefly hold the backend mutex.
  bool ensure_conn_locked(std::size_t shard) MSX_REQUIRES(mu_) {
    Conn& c = *conns_[shard];
    if (c.running) return true;
    // Previous incarnation's threads have exited (or will momentarily);
    // their handles are parked and reaped once their exit flag is up
    // (reap_retired), or at shutdown at the latest.
    if (c.writer.joinable()) {
      retired_.push_back(Retired{std::move(c.writer), c.writer_exited});
    }
    if (c.reader.joinable()) {
      retired_.push_back(Retired{std::move(c.reader), c.reader_exited});
    }
    std::unique_ptr<service::Stream> stream;
    try {
      stream = endpoints_[shard].connect();
    } catch (const service::TransportError&) {
      stream = nullptr;
    }
    if (stream == nullptr) {
      if (!down_[shard]) {
        down_[shard] = 1;
        ++down_marks_;
      }
      return false;
    }
    c.stream = std::shared_ptr<service::Stream>(std::move(stream));
    c.running = true;
    const std::uint64_t gen = c.gen;
    auto s = c.stream;
    c.writer_exited = std::make_shared<std::atomic<bool>>(false);
    c.reader_exited = std::make_shared<std::atomic<bool>>(false);
    c.writer = std::thread([this, shard, gen, s, done = c.writer_exited] {
      writer_loop(shard, gen, *s);
      done->store(true, std::memory_order_release);
    });
    c.reader = std::thread([this, shard, gen, s, done = c.reader_exited] {
      reader_loop(shard, gen, *s);
      done->store(true, std::memory_order_release);
    });
    return true;
  }

  // Joins retired connection threads that have provably exited, so a
  // flapping shard cannot accumulate zombie handles for the backend's
  // lifetime. Called from submit(); shutdown joins the rest regardless.
  void reap_retired() {
    std::vector<Retired> done;
    {
      MutexLock lock(&mu_);
      for (auto it = retired_.begin(); it != retired_.end();) {
        if (it->exited->load(std::memory_order_acquire)) {
          done.push_back(std::move(*it));
          it = retired_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto& r : done) r.thread.join();
  }

  void writer_loop(std::size_t shard, std::uint64_t gen, service::Stream& s) {
    for (;;) {
      SendItem item;
      {
        MutexLock lock(&mu_);
        Conn& c = *conns_[shard];
        while (!stopping_ && c.gen == gen && c.sendq_hi.empty() &&
               c.sendq_lo.empty()) {
          c.cv.wait(mu_);
        }
        if (stopping_ || c.gen != gen) return;
        auto& q = c.sendq_hi.empty() ? c.sendq_lo : c.sendq_hi;
        item = std::move(q.front());
        q.pop_front();
      }
      try {
        switch (item.kind) {
          case SendItem::Kind::kRegister: {
            service::GatherPayload g;
            service::encode_register_parts(g, item.structure_id, item.version,
                                           *item.reg_b, item.reg_m.get());
            send_frame_parts(s, service::MessageType::kRegisterRequest, 0, g);
            break;
          }
          case SendItem::Kind::kUpdate: {
            service::GatherPayload g;
            service::encode_update_parts(g, item.structure_id, item.version,
                                         *item.delta);
            send_frame_parts(s, service::MessageType::kUpdateRequest, 0, g);
            break;
          }
          case SendItem::Kind::kUnregister: {
            const auto payload = service::encode_unregister(item.structure_id);
            send_frame(s, service::MessageType::kUnregisterRequest, 0,
                       payload);
            break;
          }
          case SendItem::Kind::kSubmit: {
            const std::uint64_t t0 = obs::now_ns();
            service::GatherPayload g;
            build_submit(g, *item.req);
            send_frame_parts(s, service::MessageType::kSubmitRequest,
                             item.rid, g);
            if (obs::trace_enabled() && item.req->trace.valid()) {
              // Serialization + socket write of this request's frame.
              obs::record_span("wire.send", item.req->trace,
                               obs::next_span_id(), item.req->trace_parent,
                               t0, obs::now_ns() - t0, "client");
            }
            break;
          }
        }
      } catch (const service::TransportError&) {
        conn_failed(shard, gen);
        return;
      } catch (const service::WireError&) {
        conn_failed(shard, gen);
        return;
      }
    }
  }

  void build_submit(service::GatherPayload& g, const Request& req) {
    const Structure& s = *req.structure;
    std::uint8_t flags = 0;
    const bool a_is_b = req.a == s.b;
    if (a_is_b) flags |= service::kSubAIsB;
    const Mat* inline_a = a_is_b ? nullptr : req.a.get();
    const Mat* inline_m = nullptr;
    if (req.mask == nullptr) {
      flags |= service::kSubMRegistered;
    } else if (req.mask == req.a) {
      flags |= service::kSubMIsA;
    } else if (req.mask == s.b) {
      flags |= service::kSubMIsB;
    } else {
      inline_m = req.mask.get();
    }
    if (req.priority == Priority::kInteractive) {
      flags |= service::kSubInteractive;
    }
    if (req.mask_rows) flags |= service::kSubMaskRows;
    if (req.trace.valid()) flags |= service::kSubTraced;
    service::encode_submit_parts(g, s.id, req.version, flags, inline_a,
                                 inline_m, req.opts, req.mask_r0, req.mask_r1,
                                 req.trace.hi, req.trace.lo, req.trace_parent);
  }

  void reader_loop(std::size_t shard, std::uint64_t gen, service::Stream& s) {
    service::FrameHeader header;
    std::vector<std::uint8_t> payload;
    try {
      while (recv_frame(s, header, payload)) {
        if (header.type != service::MessageType::kResponse) break;
        // Peek the matched request first — without consuming it — to pick
        // the decode path; decoding happens before the erase so a garbled
        // payload fails over the request instead of losing it.
        RequestPtr req;
        {
          MutexLock lock(&mu_);
          Conn& c = *conns_[shard];
          if (c.gen != gen) return;
          const auto it = c.inflight.find(header.request_id);
          if (it == c.inflight.end()) break;  // protocol violation
          req = it->second;
        }
        const bool is_panel = req->gather != nullptr;
        service::WireResponse<IT, VTC> resp;
        service::WireResponseView<IT, VTC> view;
        if (is_panel) {
          // Zero-copy receive: the panel result stays spans over the payload
          // buffer, which moves wholesale into the gather slot on kOk — the
          // merge reads it in place, no per-panel matrix materialization.
          view = service::decode_response_view<IT, VTC>(payload);
          resp.status = view.status;
          resp.exec_nanos = view.exec_nanos;
          resp.message = view.message;
        } else {
          resp = service::decode_response<IT, VTC>(payload);
        }
        {
          MutexLock lock(&mu_);
          Conn& c = *conns_[shard];
          if (c.gen != gen) return;
          const auto it = c.inflight.find(header.request_id);
          if (it == c.inflight.end()) break;  // protocol violation
          c.inflight.erase(it);
        }
        switch (resp.status) {
          case service::WireStatus::kOk: {
            {
              MutexLock lock(&mu_);
              ++routed_[shard];
              service::record_ewma_locked(ewma_nanos_[shard],
                                          resp.exec_nanos);
            }
            if (is_panel) {
              auto& slot = req->gather->slots[req->slot];
              slot.payload = std::move(payload);  // the view aliases it
              slot.view = view.result;
              panel_done(req->gather);
            } else {
              Result r;
              r.matrix = std::move(resp.result);
              finish(req, std::move(r));
            }
            break;
          }
          case service::WireStatus::kOverloaded: {
            // Back-pressure: spill this one request to the next shard; the
            // overloaded shard keeps its ring position and affinity.
            {
              MutexLock lock(&mu_);
              ++overload_reroutes_;
              req->excluded[shard] = 1;
              req->overloaded = true;
            }
            dispatch(req);
            break;
          }
          case service::WireStatus::kBadRequest: {
            Result r;
            r.status = RequestStatus::kBadRequest;
            r.message = std::move(resp.message);
            settle(req, std::move(r));
            break;
          }
          case service::WireStatus::kInternalError: {
            Result r;
            r.status = RequestStatus::kInternalError;
            r.message = std::move(resp.message);
            settle(req, std::move(r));
            break;
          }
          case service::WireStatus::kStaleStructure: {
            // Every shard would give the same answer (the update fanned out
            // ahead of us): deliver, don't reroute. The caller retries with
            // the handle update() returned. For a panel task this fails the
            // whole gather the same way — the parent resolves
            // kStaleStructure once the remaining panels settle.
            Result r;
            r.status = RequestStatus::kStaleStructure;
            r.message = std::move(resp.message);
            settle(req, std::move(r));
            break;
          }
        }
      }
      conn_failed(shard, gen);  // EOF or protocol violation
    } catch (const service::TransportError&) {
      conn_failed(shard, gen);
    } catch (const service::WireError&) {
      conn_failed(shard, gen);
    }
  }

  // A connection died: mark the shard down, bump the generation (server-side
  // registrations died with the connection) and re-dispatch everything that
  // was queued or awaiting a response on it. Exactly one of the connection's
  // threads wins the generation check; the other exits quietly.
  void conn_failed(std::size_t shard, std::uint64_t gen) {
    std::vector<RequestPtr> orphans;
    bool was_stopping = false;
    {
      MutexLock lock(&mu_);
      Conn& c = *conns_[shard];
      if (c.gen != gen) return;  // stale notification
      ++c.gen;
      c.running = false;
      if (c.stream != nullptr) c.stream->shutdown();  // wake the peer thread
      c.stream.reset();
      if (!down_[shard]) {
        down_[shard] = 1;
        ++down_marks_;
      }
      orphans.reserve(c.inflight.size());
      for (auto& [rid, r] : c.inflight) orphans.push_back(r);
      // Queued submits are a subset of the in-flight map (inserted at
      // dispatch); registrations and unregistrations are connection-scoped
      // and simply die with it.
      c.inflight.clear();
      c.sendq_hi.clear();
      c.sendq_lo.clear();
      c.cv.notify_all();
      was_stopping = stopping_;
      // Orphans failed at shutdown are not re-submissions — only count the
      // ones that actually go back out.
      if (!was_stopping) failover_resubmits_ += orphans.size();
    }
    for (auto& r : orphans) {
      if (was_stopping) {
        Result err;
        err.status = RequestStatus::kShardDown;
        err.message = "client shutting down";
        settle(r, std::move(err));
      } else {
        // Panel tasks re-dispatch like any orphan — their replica candidates
        // skip the shard just marked down, so a mid-scatter shard kill moves
        // the lost panels to surviving replicas with no loss or duplication.
        dispatch(r);
      }
    }
  }

  // Delivers the outcome (outside any lock) and settles the drain gauge.
  // Parents and ordinary requests only — panel tasks go through settle().
  void finish(const RequestPtr& req, Result r) {
    req->done(std::move(r));
    {
      MutexLock lock(&mu_);
      ++completed_;
      --inflight_total_;
    }
    drain_cv_.notify_all();
  }

  // The one terminal-outcome entry point that works for both kinds of
  // request: ordinary requests (and 2D parents) deliver their completion; a
  // panel task folds the outcome into its gather instead — only the parent
  // counts toward completed_/inflight_total_, so drain() waits for whole
  // products, not panel fragments.
  void settle(const RequestPtr& req, Result r) {
    if (req->gather == nullptr) {
      finish(req, std::move(r));
      return;
    }
    auto& g = *req->gather;
    int expect = 0;
    if (g.fail_state.compare_exchange_strong(expect, 1,
                                             std::memory_order_acq_rel)) {
      // First failure wins; its writes are published to the merging thread
      // by the acq_rel decrement chain on `remaining`.
      g.fail_status = r.status;
      g.fail_message = std::move(r.message);
    }
    panel_done(req->gather);
  }

  // One panel task has settled (result stored or failure recorded); the last
  // one to do so completes the parent.
  void panel_done(const std::shared_ptr<Gather2D>& g) {
    if (g->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      gather_complete(g);
    }
  }

  // Every panel has settled: merge the grid (reading the zero-copy views in
  // place) or surface the first failure. Runs on whichever thread settled
  // last, outside any lock — merge is the only client-side compute of the
  // 2D path.
  void gather_complete(const std::shared_ptr<Gather2D>& g) {
    Result r;
    if (g->fail_state.load(std::memory_order_acquire) != 0) {
      r.status = g->fail_status;
      r.message = g->fail_message;
    } else {
      const std::uint64_t t_merge = obs::now_ns();
      std::vector<service::CSRView<IT, VTC>> views;
      views.reserve(g->slots.size());
      for (const auto& slot : g->slots) views.push_back(slot.view);
      try {
        r.matrix = service::merge_panel_grid<IT, VTC>(
            std::span<const service::CSRView<IT, VTC>>(views),
            std::span<const std::int64_t>(g->row_start), g->ncols);
      } catch (const std::exception& e) {
        r.status = RequestStatus::kInternalError;
        r.message = std::string("2D merge failed: ") + e.what();
      }
      const RequestPtr& parent = g->parent;
      if (obs::trace_enabled() && parent->trace.valid()) {
        obs::record_span("2d.merge", parent->trace, obs::next_span_id(),
                         parent->trace_parent, t_merge,
                         obs::now_ns() - t_merge, "client");
      }
    }
    finish(g->parent, std::move(r));
  }

  // Decides whether this submit runs as a 2D panel grid and, if so,
  // scatters it; false falls through to the ordinary single-shard path.
  // Eligibility: an eligible fleet (>= 2 shards), the registered mask in
  // use (panel masks are column slices of it; a per-request mask override
  // would have to be sliced and shipped per panel, which defeats the
  // registration), a version-current structure, and — under kAuto — an
  // estimated multiply count clearing the threshold (one O(nnz(A)) sweep,
  // the same cost row planning pays anyway).
  bool try_submit_2d(const RequestPtr& req) {
    const MaskedOptions& o = req->opts;
    if (o.dist == Dist2D::kNever || endpoints_.size() < 2) return false;
    if (req->mask != nullptr) return false;
    Structure& s = *req->structure;
    std::shared_ptr<const Mat> b;
    std::shared_ptr<const Mat> m;
    std::shared_ptr<Plan2D> plan;
    std::uint64_t version;
    int replicas;
    {
      MutexLock lock(&mu_);
      b = s.b;
      m = s.m;
      version = s.version;
      plan = s.plan2d;
      replicas = s.replicas;
    }
    if (m == nullptr) return false;
    // Stale or invalid submits take the ordinary path so the shard's answer
    // (kStaleStructure / kBadRequest) keeps its exact single-shard wording.
    if (req->version != version) return false;
    if (req->a->ncols() != b->nrows()) return false;
    if (o.dist == Dist2D::kAuto) {
      const std::uint64_t threshold = o.dist_flop_threshold != 0
                                          ? o.dist_flop_threshold
                                          : cfg_.dist_flop_threshold;
      if (total_flops(*req->a, *b) < threshold) return false;
    }
    const int want_c =
        o.dist_col_panels > 0
            ? o.dist_col_panels
            : static_cast<int>(std::min<std::size_t>(endpoints_.size(), 4));
    const int want_r =
        o.dist_row_panels > 0
            ? o.dist_row_panels
            : std::max(1, static_cast<int>(endpoints_.size()) / want_c);
    if (plan == nullptr || plan->version != version ||
        plan->requested_cols != want_c) {
      // Build outside the lock (slicing is the expensive part), install
      // under it; a racing submit's plan wins if it got there first.
      auto fresh = build_plan2d(b, m, version, s.b_digest, s.m_digest,
                                replicas, want_c);
      MutexLock lock(&mu_);
      if (s.version != version) return false;  // updated underneath us
      if (s.plan2d != nullptr && s.plan2d->version == version &&
          s.plan2d->requested_cols == want_c) {
        plan = s.plan2d;
      } else {
        if (s.plan2d != nullptr) {
          for (const auto& p : s.plan2d->panels) {
            enqueue_unregister_locked(*p);
          }
        }
        s.plan2d = fresh;
        plan = std::move(fresh);
      }
    }
    const std::vector<std::int64_t> row_start =
        service::plan_row_panels(*req->a, *b, want_r);
    const std::size_t nr = row_start.size() - 1;
    const std::size_t nc = plan->panels.size();
    if (nr * nc < 2) return false;  // degenerate grid: not worth scattering

    auto g = std::make_shared<Gather2D>();
    g->parent = req;
    g->row_start = row_start;
    g->ncols = b->ncols();
    g->slots.resize(nr * nc);
    g->remaining.store(static_cast<int>(nr * nc),
                       std::memory_order_relaxed);
    {
      MutexLock lock(&mu_);
      ++dist2d_products_;
      dist2d_panels_ += nr * nc;
    }
    const std::uint64_t t_scatter = obs::now_ns();
    for (std::size_t r = 0; r < nr; ++r) {
      // One row slice of A per row panel, shared across its column panels.
      auto a_panel = std::make_shared<const Mat>(
          service::slice_rows(*req->a, row_start[r], row_start[r + 1]));
      for (std::size_t j = 0; j < nc; ++j) {
        const auto& panel = plan->panels[j];
        auto child = std::make_shared<Request>();
        child->structure = panel;
        child->version = version;
        child->a = a_panel;
        child->opts = o;
        child->priority = req->priority;
        // Panel tasks share the parent's trace and nest under its root span
        // directly (they run long after scatter returns).
        child->trace = req->trace;
        child->trace_parent = req->trace_parent;
        child->excluded.assign(endpoints_.size(), 0);
        child->mask_rows = true;
        child->mask_r0 = static_cast<std::uint64_t>(row_start[r]);
        child->mask_r1 = static_cast<std::uint64_t>(row_start[r + 1]);
        // Affinity point: same panel + same row window -> same shard, so a
        // repeated 2D product hits warm plans panel-for-panel.
        const std::uint64_t hdr[] = {panel->b_digest, child->mask_r0,
                                     child->mask_r1,
                                     static_cast<std::uint64_t>(o.algo)};
        child->point = plan_hash_bytes(kPointSeed, hdr, sizeof hdr);
        child->candidates =
            service::replica_shards(ring_, panel->b_digest, panel->replicas);
        child->gather = g;
        child->slot = r * nc + j;
        dispatch(child);
      }
    }
    if (obs::trace_enabled() && req->trace.valid()) {
      // Row slicing + panel-task dispatch for the whole grid.
      obs::record_span("2d.scatter", req->trace, obs::next_span_id(),
                       req->trace_parent, t_scatter,
                       obs::now_ns() - t_scatter, "client");
    }
    return true;
  }

  // Cuts B (and the mask) into column panels and wraps each pair as a panel
  // Structure with its own synthetic digest, ready to register on shards
  // like any other structure. Self-masked parents keep the alias: the panel
  // mask IS the panel B pointer, so registration ships one matrix.
  std::shared_ptr<Plan2D> build_plan2d(const std::shared_ptr<const Mat>& b,
                                       const std::shared_ptr<const Mat>& m,
                                       std::uint64_t version,
                                       std::uint64_t b_digest,
                                       std::uint64_t m_digest, int replicas,
                                       int ncolpanels) {
    auto plan = std::make_shared<Plan2D>();
    plan->version = version;
    plan->requested_cols = ncolpanels;
    plan->built_m = m;
    plan->col_start = service::plan_col_panels(*b, ncolpanels);
    const std::size_t nc = plan->col_start.size() - 1;
    plan->panels.reserve(nc);
    for (std::size_t j = 0; j < nc; ++j) {
      const std::int64_t lo = plan->col_start[j];
      const std::int64_t hi = plan->col_start[j + 1];
      auto p = std::make_shared<Structure>();
      p->id = next_structure_.fetch_add(1, std::memory_order_relaxed);
      p->b = std::make_shared<const Mat>(service::slice_cols(*b, lo, hi));
      p->m = m == b ? p->b
                    : std::make_shared<const Mat>(
                          service::slice_cols(*m, lo, hi));
      p->version = version;
      const std::uint64_t salt[] = {b_digest, static_cast<std::uint64_t>(j),
                                    static_cast<std::uint64_t>(lo),
                                    static_cast<std::uint64_t>(hi)};
      p->b_digest = plan_hash_bytes(kDigestSeed2D, salt, sizeof salt);
      p->m_digest =
          m == b ? p->b_digest : plan_hash_bytes(p->b_digest, &m_digest,
                                                 sizeof m_digest);
      p->reg_gen.assign(endpoints_.size(), 0);
      p->replicas = replicas;
      plan->panels.push_back(std::move(p));
    }
    return plan;
  }

  // Keeps a 2D plan's panels coherent with a parent update: each panel has
  // the COLUMN SLICE of the delta applied locally — equivalent to
  // re-slicing the new B, at delta cost instead of O(nnz) — and fanned out
  // to every connection that holds the panel. Panels the delta never
  // touches still get their (empty) slice so every panel's version advances
  // in lockstep with the parent; a submit racing this update gets
  // kStaleStructure from whichever panel shard sees it late, never a
  // mixed-version merge. A mask replaced wholesale (neither self-masked nor
  // carried over) cannot be described by the delta — the plan is dropped
  // and the next 2D submit rebuilds from the new pair.
  void update_panels_locked(
      Structure& s, const std::shared_ptr<const EdgeDelta<IT, VT>>& delta,
      std::uint64_t version) MSX_REQUIRES(mu_) {
    if (s.plan2d == nullptr) return;
    Plan2D& plan = *s.plan2d;
    const bool self_masked = s.m == s.b;
    if (!self_masked && s.m != plan.built_m) {
      for (const auto& p : plan.panels) enqueue_unregister_locked(*p);
      s.plan2d = nullptr;
      return;
    }
    for (std::size_t j = 0; j < plan.panels.size(); ++j) {
      Structure& p = *plan.panels[j];
      auto sliced = std::make_shared<const EdgeDelta<IT, VT>>(
          service::slice_delta_cols(*delta, plan.col_start[j],
                                    plan.col_start[j + 1]));
      const bool panel_self = p.m == p.b;
      auto nb = std::make_shared<const Mat>(apply_edge_delta(*p.b, *sliced));
      p.b = nb;
      if (panel_self) p.m = std::move(nb);
      p.version = version;
      for (std::size_t i = 0; i < conns_.size(); ++i) {
        Conn& c = *conns_[i];
        if (c.running && p.reg_gen[i] == c.gen) {
          SendItem item;
          item.kind = SendItem::Kind::kUpdate;
          item.structure_id = p.id;
          item.version = version;
          item.delta = sliced;
          c.sendq_hi.push_back(std::move(item));
          c.cv.notify_all();
        }
      }
    }
    plan.version = version;
    if (self_masked) plan.built_m = s.m;
  }

  // Queues an unregister on every connection that holds this structure's
  // registration (release, panel teardown, plan invalidation).
  void enqueue_unregister_locked(const Structure& st) MSX_REQUIRES(mu_) {
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      Conn& c = *conns_[i];
      if (c.running && st.reg_gen[i] == c.gen) {
        SendItem item;
        item.kind = SendItem::Kind::kUnregister;
        item.structure_id = st.id;
        c.sendq_hi.push_back(std::move(item));
        c.cv.notify_all();
      }
    }
  }

  // Sleep an interval under the lock, probe outside it. (A spurious wakeup
  // probes early, which is harmless — probing is idempotent.)
  void probe_loop() {
    for (;;) {
      {
        MutexLock lock(&mu_);
        if (stopping_) return;
        probe_cv_.wait_for(mu_, cfg_.probe_interval);
        if (stopping_) return;
      }
      probe_down_shards();
    }
  }

  std::vector<service::ShardEndpoint> endpoints_;
  ShardedBackendConfig cfg_;
  service::ConsistentHashRing ring_;

  mutable Mutex mu_{LockRank::kClientBackend, "ShardedBackend::mu_"};
  std::vector<char> down_ MSX_GUARDED_BY(mu_);
  // The vector itself is fixed after the constructor; each Conn's contents
  // are guarded by mu_ (see Conn).
  std::vector<std::unique_ptr<Conn>> conns_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Structure>> structures_
      MSX_GUARDED_BY(mu_);
  std::vector<Retired> retired_
      MSX_GUARDED_BY(mu_);  // prior conn threads awaiting join
  std::vector<std::uint64_t> routed_ MSX_GUARDED_BY(mu_);
  std::vector<double> ewma_nanos_ MSX_GUARDED_BY(mu_);
  std::uint64_t dist2d_products_ MSX_GUARDED_BY(mu_) = 0;
  std::uint64_t dist2d_panels_ MSX_GUARDED_BY(mu_) = 0;
  std::uint64_t submitted_ MSX_GUARDED_BY(mu_) = 0;
  std::uint64_t completed_ MSX_GUARDED_BY(mu_) = 0;
  std::uint64_t inflight_total_ MSX_GUARDED_BY(mu_) = 0;
  std::uint64_t failover_resubmits_ MSX_GUARDED_BY(mu_) = 0;
  std::uint64_t overload_reroutes_ MSX_GUARDED_BY(mu_) = 0;
  std::uint64_t down_marks_ MSX_GUARDED_BY(mu_) = 0;
  std::uint64_t probes_ MSX_GUARDED_BY(mu_) = 0;
  std::uint64_t rejoins_ MSX_GUARDED_BY(mu_) = 0;
  bool stopping_ MSX_GUARDED_BY(mu_) = false;
  CondVar drain_cv_;
  CondVar probe_cv_;
  // Backend-level series (routing, failover, 2D). Per-instance, not the
  // process-global registry, so two backends in one process don't collide.
  obs::Registry metrics_;
  std::atomic<std::uint64_t> next_rid_{1};
  std::atomic<std::uint64_t> next_structure_{1};
  std::thread prober_;
};

// Convenience: a client over a shard fleet.
template <class SR, class IT, class VT>
MaskedClient<SR, IT, VT> make_sharded_client(
    std::vector<service::ShardEndpoint> endpoints,
    ShardedBackendConfig cfg = {}) {
  return MaskedClient<SR, IT, VT>(std::make_shared<ShardedBackend<SR, IT, VT>>(
      std::move(endpoints), cfg));
}

}  // namespace msx::client
