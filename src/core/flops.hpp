// Flops accounting for SpGEMM-style products.
//
// flops(A·B) counts the scalar multiply operations a row-by-row algorithm
// performs: Σ over nonzeros A(i,k) of nnz(B(k,:)). The paper's GFLOPS
// metrics (Figs. 10, 14) follow the Nagasaka et al. convention of counting
// each multiply-add as two floating-point operations.
#pragma once

#include <cstddef>
#include <vector>

#include "common/parallel.hpp"
#include "common/platform.hpp"
#include "matrix/csr.hpp"

namespace msx {

// flops contributed by row i of A (number of multiplies).
template <class IT, class VT, class VT2>
std::size_t row_flops(const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT2>& b,
                      IT i) {
  std::size_t f = 0;
  const auto arow = a.row(i);
  for (IT p = 0; p < arow.size(); ++p) {
    f += static_cast<std::size_t>(b.row_nnz(arow.cols[p]));
  }
  return f;
}

// Total multiplies of A·B.
template <class IT, class VT, class VT2>
std::size_t total_flops(const CSRMatrix<IT, VT>& a,
                        const CSRMatrix<IT, VT2>& b) {
  check_arg(a.ncols() == b.nrows(), "flops: inner dimension mismatch");
  std::size_t total = 0;
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(a.nrows()); ++i) {
    total += row_flops(a, b, static_cast<IT>(i));
  }
  return total;
}

// GFLOPS given multiply count and elapsed seconds (2 flops per multiply).
inline double gflops(std::size_t multiplies, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return 2.0 * static_cast<double>(multiplies) / seconds / 1e9;
}

}  // namespace msx
