// Edge deltas — the sparse-patch unit of the streaming/dynamic-graph layer
// (ISSUE 7 tentpole).
//
// An EdgeDelta is a batch of edge inserts and deletes against one CSR
// matrix. apply_edge_delta() materializes the patched matrix by splicing
// only the touched rows; untouched rows are block-copied. The same delta
// object travels the whole stack: MaskedPlan::apply_delta patches plan
// state in place, the wire protocol ships it as kUpdateRequest (the delta,
// not the matrix), and Session::update() applies it to a registered
// structure on either backend.
//
// Semantics (documented in README "Streaming"):
//   * deletes apply before inserts — delete+insert of the same edge in one
//     batch replaces its value;
//   * inserting an edge that already exists overwrites its value;
//   * duplicate inserts of the same edge in one batch: the last wins;
//   * deleting an absent edge is a no-op;
//   * out-of-range coordinates throw std::invalid_argument (the shape is
//     fixed — deltas mutate the edge set, never the dimensions).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/platform.hpp"
#include "matrix/csc.hpp"
#include "matrix/csr.hpp"

namespace msx {

// A batch of edge mutations, structure-of-arrays so the wire layer can ship
// each array as one scatter-gather part.
template <class IT, class VT>
struct EdgeDelta {
  std::vector<IT> ins_row;
  std::vector<IT> ins_col;
  std::vector<VT> ins_val;
  std::vector<IT> del_row;
  std::vector<IT> del_col;

  void insert(IT r, IT c, VT v) {
    ins_row.push_back(r);
    ins_col.push_back(c);
    ins_val.push_back(std::move(v));
  }
  void erase(IT r, IT c) {
    del_row.push_back(r);
    del_col.push_back(c);
  }
  bool empty() const { return ins_row.empty() && del_row.empty(); }
  std::size_t size() const { return ins_row.size() + del_row.size(); }
  void clear() {
    ins_row.clear();
    ins_col.clear();
    ins_val.clear();
    del_row.clear();
    del_col.clear();
  }
};

// Sorted, duplicate-free list of the rows a delta touches — the seed of the
// touched-output-row analysis in MaskedPlan::apply_delta.
template <class IT, class VT>
std::vector<IT> delta_touched_rows(const EdgeDelta<IT, VT>& delta) {
  std::vector<IT> rows;
  rows.reserve(delta.ins_row.size() + delta.del_row.size());
  rows.insert(rows.end(), delta.ins_row.begin(), delta.ins_row.end());
  rows.insert(rows.end(), delta.del_row.begin(), delta.del_row.end());
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

// Applies `delta` to `m` and returns the patched matrix. Touched rows are
// merged edit-by-edit; untouched rows are copied wholesale. The input is
// never modified (CSR spans cannot resize in place), so callers holding the
// old matrix keep a consistent snapshot — the property the versioned
// structure registry relies on.
template <class IT, class VT>
CSRMatrix<IT, VT> apply_edge_delta(const CSRMatrix<IT, VT>& m,
                                   const EdgeDelta<IT, VT>& delta) {
  check_arg(delta.ins_row.size() == delta.ins_col.size() &&
                delta.ins_row.size() == delta.ins_val.size(),
            "apply_edge_delta: insert arrays must be parallel");
  check_arg(delta.del_row.size() == delta.del_col.size(),
            "apply_edge_delta: delete arrays must be parallel");
  const IT nrows = m.nrows();
  const IT ncols = m.ncols();
  auto in_range = [&](IT r, IT c) {
    return r >= IT{0} && r < nrows && c >= IT{0} && c < ncols;
  };
  for (std::size_t k = 0; k < delta.ins_row.size(); ++k) {
    check_arg(in_range(delta.ins_row[k], delta.ins_col[k]),
              "apply_edge_delta: insert out of range at index " +
                  std::to_string(k));
  }
  for (std::size_t k = 0; k < delta.del_row.size(); ++k) {
    check_arg(in_range(delta.del_row[k], delta.del_col[k]),
              "apply_edge_delta: delete out of range at index " +
                  std::to_string(k));
  }
  if (delta.empty()) return m;

  // Per-edit records sorted by (row, col, seq); deletes carry seq below all
  // inserts so they apply first, and among duplicate inserts the highest
  // seq (the last one issued) wins.
  struct Edit {
    IT row;
    IT col;
    std::size_t seq;  // 0 for deletes; 1+k for insert k
    bool is_insert;
  };
  std::vector<Edit> edits;
  edits.reserve(delta.size());
  for (std::size_t k = 0; k < delta.del_row.size(); ++k) {
    edits.push_back(Edit{delta.del_row[k], delta.del_col[k], 0, false});
  }
  for (std::size_t k = 0; k < delta.ins_row.size(); ++k) {
    edits.push_back(Edit{delta.ins_row[k], delta.ins_col[k], k + 1, true});
  }
  std::sort(edits.begin(), edits.end(), [](const Edit& x, const Edit& y) {
    if (x.row != y.row) return x.row < y.row;
    if (x.col != y.col) return x.col < y.col;
    return x.seq < y.seq;
  });

  const auto old_rowptr = m.rowptr();
  const auto old_colidx = m.colidx();
  const auto old_values = m.values();

  std::vector<IT> rowptr;
  std::vector<IT> colidx;
  std::vector<VT> values;
  rowptr.reserve(static_cast<std::size_t>(nrows) + 1);
  colidx.reserve(m.nnz() + delta.ins_row.size());
  values.reserve(m.nnz() + delta.ins_row.size());
  rowptr.push_back(IT{0});

  std::size_t e = 0;  // cursor into edits
  for (IT i = 0; i < nrows; ++i) {
    const auto lo = static_cast<std::size_t>(old_rowptr[i]);
    const auto hi = static_cast<std::size_t>(old_rowptr[i + 1]);
    if (e >= edits.size() || edits[e].row != i) {
      // Untouched row: block copy.
      colidx.insert(colidx.end(), old_colidx.begin() + lo,
                    old_colidx.begin() + hi);
      values.insert(values.end(), old_values.begin() + lo,
                    old_values.begin() + hi);
      rowptr.push_back(static_cast<IT>(colidx.size()));
      continue;
    }
    // Touched row: merge the sorted old row with the sorted edit run.
    std::size_t p = lo;
    while (e < edits.size() && edits[e].row == i) {
      const IT c = edits[e].col;
      // Collapse the edit group for column c: deletes first, then inserts in
      // issue order — the surviving state is decided by the last record.
      bool insert_wins = false;
      std::size_t win = 0;
      while (e < edits.size() && edits[e].row == i && edits[e].col == c) {
        insert_wins = edits[e].is_insert;
        if (insert_wins) win = edits[e].seq - 1;
        ++e;
      }
      while (p < hi && old_colidx[p] < c) {
        colidx.push_back(old_colidx[p]);
        values.push_back(old_values[p]);
        ++p;
      }
      const bool existed = (p < hi && old_colidx[p] == c);
      if (existed) ++p;  // old entry is replaced or deleted
      if (insert_wins) {
        colidx.push_back(c);
        values.push_back(delta.ins_val[win]);
      }
    }
    colidx.insert(colidx.end(), old_colidx.begin() + p,
                  old_colidx.begin() + hi);
    values.insert(values.end(), old_values.begin() + p,
                  old_values.begin() + hi);
    rowptr.push_back(static_cast<IT>(colidx.size()));
  }

  return CSRMatrix<IT, VT>(nrows, ncols, std::move(rowptr), std::move(colidx),
                           std::move(values));
}

// Applies `delta` to a CSC mirror in place, splicing only the touched
// *columns* — the transpose of apply_edge_delta's row splice, with identical
// edit semantics (deletes before inserts, last duplicate insert wins). The
// lazy alternative to rebuilding the whole transpose after a delta: for a
// k-edge batch only the k distinct columns are merged, every other column's
// structure and values are block-copied. The result is exactly
// build_csc_cache(apply_edge_delta(b, delta)) minus the refresh permutation
// (which shifts globally under structural edits — callers fall back to
// refresh_csc_values below). Returns the number of columns spliced.
template <class IT, class VT>
std::size_t patch_csc_for_delta(CSCMatrix<IT, VT>& csc,
                                const EdgeDelta<IT, VT>& delta) {
  if (delta.empty()) return 0;
  const IT ncsr_rows = csc.nrows();
  const IT ncols = csc.ncols();
  auto in_range = [&](IT r, IT c) {
    return r >= IT{0} && r < ncsr_rows && c >= IT{0} && c < ncols;
  };
  for (std::size_t k = 0; k < delta.ins_row.size(); ++k) {
    check_arg(in_range(delta.ins_row[k], delta.ins_col[k]),
              "patch_csc_for_delta: insert out of range at index " +
                  std::to_string(k));
  }
  for (std::size_t k = 0; k < delta.del_row.size(); ++k) {
    check_arg(in_range(delta.del_row[k], delta.del_col[k]),
              "patch_csc_for_delta: delete out of range at index " +
                  std::to_string(k));
  }

  // Same records as apply_edge_delta, keyed (col, row, seq): within one
  // (col, row) group the delete sorts first and the last insert decides.
  struct Edit {
    IT col;
    IT row;
    std::size_t seq;  // 0 for deletes; 1+k for insert k
    bool is_insert;
  };
  std::vector<Edit> edits;
  edits.reserve(delta.size());
  for (std::size_t k = 0; k < delta.del_row.size(); ++k) {
    edits.push_back(Edit{delta.del_col[k], delta.del_row[k], 0, false});
  }
  for (std::size_t k = 0; k < delta.ins_row.size(); ++k) {
    edits.push_back(Edit{delta.ins_col[k], delta.ins_row[k], k + 1, true});
  }
  std::sort(edits.begin(), edits.end(), [](const Edit& x, const Edit& y) {
    if (x.col != y.col) return x.col < y.col;
    if (x.row != y.row) return x.row < y.row;
    return x.seq < y.seq;
  });

  const auto old_colptr = csc.colptr();
  const auto old_rowidx = csc.rowidx();
  const auto old_values = csc.values();

  std::vector<IT> colptr;
  std::vector<IT> rowidx;
  std::vector<VT> values;
  colptr.reserve(static_cast<std::size_t>(ncols) + 1);
  rowidx.reserve(csc.nnz() + delta.ins_row.size());
  values.reserve(csc.nnz() + delta.ins_row.size());
  colptr.push_back(IT{0});

  std::size_t patched = 0;
  std::size_t e = 0;  // cursor into edits
  for (IT j = 0; j < ncols; ++j) {
    const auto lo = static_cast<std::size_t>(old_colptr[j]);
    const auto hi = static_cast<std::size_t>(old_colptr[j + 1]);
    if (e >= edits.size() || edits[e].col != j) {
      rowidx.insert(rowidx.end(), old_rowidx.begin() + lo,
                    old_rowidx.begin() + hi);
      values.insert(values.end(), old_values.begin() + lo,
                    old_values.begin() + hi);
      colptr.push_back(static_cast<IT>(rowidx.size()));
      continue;
    }
    ++patched;
    std::size_t p = lo;
    while (e < edits.size() && edits[e].col == j) {
      const IT r = edits[e].row;
      bool insert_wins = false;
      std::size_t win = 0;
      while (e < edits.size() && edits[e].col == j && edits[e].row == r) {
        insert_wins = edits[e].is_insert;
        if (insert_wins) win = edits[e].seq - 1;
        ++e;
      }
      while (p < hi && old_rowidx[p] < r) {
        rowidx.push_back(old_rowidx[p]);
        values.push_back(old_values[p]);
        ++p;
      }
      const bool existed = (p < hi && old_rowidx[p] == r);
      if (existed) ++p;
      if (insert_wins) {
        rowidx.push_back(r);
        values.push_back(delta.ins_val[win]);
      }
    }
    rowidx.insert(rowidx.end(), old_rowidx.begin() + p,
                  old_rowidx.begin() + hi);
    values.insert(values.end(), old_values.begin() + p,
                  old_values.begin() + hi);
    colptr.push_back(static_cast<IT>(rowidx.size()));
  }

  csc = CSCMatrix<IT, VT>(ncsr_rows, ncols, std::move(colptr),
                          std::move(rowidx), std::move(values));
  return patched;
}

// Refreshes a CSC mirror's values from its CSR source without a slot
// permutation: one cursor per column, walking the CSR in row order. Rows
// ascend, so each column's cursor writes its entries in exactly the CSC's
// row order. O(nnz) like the permutation refresh, minus the O(nnz) index
// array — the fallback execute_values() uses once a delta patch has
// invalidated csc_perm.
template <class IT, class VT>
void refresh_csc_values(const CSRMatrix<IT, VT>& b, CSCMatrix<IT, VT>& csc) {
  check_arg(b.nnz() == csc.nnz() && b.ncols() == csc.ncols(),
            "refresh_csc_values: CSC mirror does not match the CSR source");
  const auto colptr = csc.colptr();
  std::vector<IT> cursors(colptr.begin(), colptr.end() - 1);
  auto out = csc.mutable_values();
  const auto rowptr = b.rowptr();
  const auto colidx = b.colidx();
  const auto vals = b.values();
  const IT nrows = b.nrows();
  for (IT i = 0; i < nrows; ++i) {
    const auto lo = static_cast<std::size_t>(rowptr[i]);
    const auto hi = static_cast<std::size_t>(rowptr[i + 1]);
    for (std::size_t p = lo; p < hi; ++p) {
      const auto c = static_cast<std::size_t>(colidx[p]);
      out[static_cast<std::size_t>(cursors[c]++)] = vals[p];
    }
  }
}

}  // namespace msx
