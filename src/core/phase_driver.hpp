// One-phase / two-phase output construction shared by all kernels (paper §6).
//
// Two-phase (2P): a symbolic pass computes exact per-row counts, row pointers
// come from a prefix sum, and the numeric pass writes straight into the final
// arrays — minimal memory, double traversal.
//
// One-phase (1P): per-row upper bounds (nnz of the mask row for masked calls;
// min(flops, unmasked columns) for complemented ones) size a temporary
// buffer; the numeric pass fills it once and rows are then compacted into the
// final arrays. The mask makes these bounds tight enough that 1P usually wins
// (§8) — the reverse of the plain-SpGEMM folklore.
//
// Two entry points: the classic one constructs per-thread workspaces for the
// call; the workspace-injection overload lets a MaskedPlan (core/plan.hpp)
// reuse accumulators and a previously computed symbolic rowptr across calls.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "common/platform.hpp"
#include "common/prefix_sum.hpp"
#include "core/options.hpp"
#include "core/partition.hpp"
#include "matrix/csr.hpp"

namespace msx {

// Cached result of a two-phase symbolic pass. Valid as long as the operand
// and mask *structures* are unchanged — value refreshes keep it alive, any
// rebind must invalidate().
template <class IT>
struct TwoPhaseCache {
  std::vector<IT> rowptr;  // nrows+1 offsets, counts_to_offsets applied
  bool valid = false;
  void invalidate() {
    valid = false;
    rowptr.clear();
  }
};

// Workspace-injection form: `workspaces` must have one slot per thread of the
// parallel region (the caller sizes it; see MaskedPlan). When `symbolic` is
// non-null and valid, the two-phase symbolic pass is skipped and its rowptr
// reused; when non-null and invalid, the freshly computed rowptr is cached.
// `partition` plays the same role for the flop-balanced row partition: under
// Schedule::kFlopBalanced the symbolic, numeric, bound and compaction passes
// all dispatch the partition's blocks, and a valid cache skips rebuilding it.
template <class Kernel>
CSRMatrix<typename Kernel::index_type, typename Kernel::output_value>
run_masked_kernel(const Kernel& kernel, const MaskedOptions& opts,
                  PerThread<typename Kernel::Workspace>& workspaces,
                  TwoPhaseCache<typename Kernel::index_type>* symbolic,
                  PartitionCache* partition = nullptr) {
  using IT = typename Kernel::index_type;
  using OVT = typename Kernel::output_value;

  const IT nrows = kernel.nrows();
  const IT ncols = kernel.ncols();
  ScopedNumThreads thread_guard(opts.threads);

  // Schedule::kAuto resolves here, to the flop-balanced partition: it is
  // never slower than dynamic once hub rows appear, and plans amortize the
  // one cost-estimation sweep its build adds (a cold masked-kind call pays
  // ~nothing extra — the 1P bound pass is O(1) per row — while complemented
  // and baseline kernels estimate twice on their first call only).
  const Schedule schedule = opts.schedule == Schedule::kAuto
                                ? Schedule::kFlopBalanced
                                : opts.schedule;

  // Resolve (or reuse) the flop-balanced partition once; every pass below
  // then dispatches the same blocks.
  RowPartition local_partition;
  const RowPartition* blocks = nullptr;
  if (schedule == Schedule::kFlopBalanced) {
    if (partition != nullptr && partition->valid) {
      blocks = &partition->partition;
    } else {
      // cost_row is an optional part of the kernel interface; kernels
      // without one (the plain-SpGEMM baselines) are partitioned by their
      // 1P upper bound, which tracks flops for unmasked products.
      auto built = build_row_partition(
          nrows, partition_target_blocks(max_threads()), [&](IT i) {
            if constexpr (requires { kernel.cost_row(i, opts.cost_model); }) {
              return kernel.cost_row(i, opts.cost_model);
            } else {
              return kernel.upper_bound_row(i) + 1;
            }
          });
      if (partition != nullptr) {
        partition->partition = std::move(built);
        partition->valid = true;
        blocks = &partition->partition;
      } else {
        local_partition = std::move(built);
        blocks = &local_partition;
      }
    }
  }
  // `fallback` is what non-flop-balanced calls use: the requested schedule
  // for kernel passes, static for the cheap bookkeeping passes.
  const auto run_rows = [&](Schedule fallback, auto&& body) {
    if (blocks != nullptr) {
      parallel_for_blocks<IT>(blocks->bounds(), body);
    } else {
      parallel_for(IT{0}, nrows, fallback, body, opts.chunk);
    }
  };

  if (opts.phases == PhaseMode::kTwoPhase) {
    // --- symbolic phase: exact row sizes (or a cached prior result) ---
    std::vector<IT> rowptr;
    if (symbolic != nullptr && symbolic->valid) {
      rowptr = symbolic->rowptr;
    } else {
      rowptr.assign(static_cast<std::size_t>(nrows) + 1, IT{0});
      run_rows(schedule, [&](IT i) {
        rowptr[static_cast<std::size_t>(i) + 1] =
            kernel.symbolic_row(workspaces.local(), i);
      });
      counts_to_offsets(rowptr);
      if (symbolic != nullptr) {
        symbolic->rowptr = rowptr;
        symbolic->valid = true;
      }
    }

    // --- numeric phase: write into exact-size arrays ---
    const auto nnz = static_cast<std::size_t>(rowptr.back());
    std::vector<IT> colidx(nnz);
    std::vector<OVT> values(nnz);
    run_rows(schedule, [&](IT i) {
      const auto base =
          static_cast<std::size_t>(rowptr[static_cast<std::size_t>(i)]);
      [[maybe_unused]] const IT written = kernel.numeric_row(
          workspaces.local(), i, colidx.data() + base, values.data() + base);
      MSX_ASSERT(written == rowptr[static_cast<std::size_t>(i) + 1] -
                                rowptr[static_cast<std::size_t>(i)]);
    });
    return CSRMatrix<IT, OVT>(nrows, ncols, std::move(rowptr),
                              std::move(colidx), std::move(values));
  }

  // --- one-phase: upper-bound temporary, then compact ---
  std::vector<std::size_t> bounds(static_cast<std::size_t>(nrows) + 1, 0);
  run_rows(Schedule::kStatic, [&](IT i) {
    bounds[static_cast<std::size_t>(i) + 1] = kernel.upper_bound_row(i);
  });
  counts_to_offsets(bounds);
  const std::size_t cap = bounds.back();

  std::vector<IT> tmp_cols(cap);
  std::vector<OVT> tmp_vals(cap);
  std::vector<IT> rowptr(static_cast<std::size_t>(nrows) + 1, IT{0});

  run_rows(schedule, [&](IT i) {
    const std::size_t base = bounds[static_cast<std::size_t>(i)];
    rowptr[static_cast<std::size_t>(i) + 1] = kernel.numeric_row(
        workspaces.local(), i, tmp_cols.data() + base, tmp_vals.data() + base);
  });
  counts_to_offsets(rowptr);

  const auto nnz = static_cast<std::size_t>(rowptr.back());
  std::vector<IT> colidx(nnz);
  std::vector<OVT> values(nnz);
  run_rows(Schedule::kStatic, [&](IT i) {
    const std::size_t src = bounds[static_cast<std::size_t>(i)];
    const auto dst = static_cast<std::size_t>(rowptr[static_cast<std::size_t>(i)]);
    const auto len = static_cast<std::size_t>(
        rowptr[static_cast<std::size_t>(i) + 1] -
        rowptr[static_cast<std::size_t>(i)]);
    for (std::size_t p = 0; p < len; ++p) {
      colidx[dst + p] = tmp_cols[src + p];
      values[dst + p] = tmp_vals[src + p];
    }
  });
  return CSRMatrix<IT, OVT>(nrows, ncols, std::move(rowptr), std::move(colidx),
                            std::move(values));
}

// Classic form: per-call workspaces, no symbolic or partition caching. The
// thread guard runs before the PerThread pool is sized so an opts.threads
// larger than the current OpenMP default still gets one slot per thread.
template <class Kernel>
CSRMatrix<typename Kernel::index_type, typename Kernel::output_value>
run_masked_kernel(const Kernel& kernel, const MaskedOptions& opts) {
  ScopedNumThreads thread_guard(opts.threads);
  PerThread<typename Kernel::Workspace> workspaces;
  return run_masked_kernel(kernel, opts, workspaces,
                           static_cast<TwoPhaseCache<
                               typename Kernel::index_type>*>(nullptr));
}

}  // namespace msx
