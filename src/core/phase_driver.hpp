// One-phase / two-phase output construction shared by all kernels (paper §6).
//
// Two-phase (2P): a symbolic pass computes exact per-row counts, row pointers
// come from a prefix sum, and the numeric pass writes straight into the final
// arrays — minimal memory, double traversal.
//
// One-phase (1P): per-row upper bounds (nnz of the mask row for masked calls;
// min(flops, unmasked columns) for complemented ones) size a temporary
// buffer; the numeric pass fills it once and rows are then compacted into the
// final arrays. The mask makes these bounds tight enough that 1P usually wins
// (§8) — the reverse of the plain-SpGEMM folklore.
//
// Two entry points: the classic one constructs per-thread workspaces for the
// call; the workspace-injection overload lets a MaskedPlan (core/plan.hpp)
// reuse accumulators and a previously computed symbolic rowptr across calls.
//
// Every pass dispatches through an ExecContext (common/exec_context.hpp):
// the default OpenMP context reproduces the historical behaviour exactly,
// while the runtime/ batch executor passes serial contexts (small jobs, one
// per pool worker) or arena contexts (large jobs cooperatively executed by
// the pool). Workspace slots come from the context, never from global
// OpenMP thread ids.
#pragma once

#include <chrono>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/exec_context.hpp"
#include "common/parallel.hpp"
#include "common/platform.hpp"
#include "common/prefix_sum.hpp"
#include "core/options.hpp"
#include "core/partition.hpp"
#include "matrix/csr.hpp"
#include "obs/trace.hpp"

namespace msx {

// Cached result of a two-phase symbolic pass. Valid as long as the operand
// and mask *structures* are unchanged — value refreshes keep it alive, any
// rebind must invalidate().
template <class IT>
struct TwoPhaseCache {
  std::vector<IT> rowptr;  // nrows+1 offsets, counts_to_offsets applied
  bool valid = false;
  void invalidate() {
    valid = false;
    rowptr.clear();
  }
};

namespace detail {

// counts_to_offsets that stays off OpenMP outside the OpenMP context: the
// parallel scan would fork a team from a pool worker, which the runtime's
// serial/arena modes exist to avoid (and which would hide the runtime's
// concurrency from TSan).
template <class T>
void offsets_inplace(std::vector<T>& v, const ExecContext& ctx) {
  if (ctx.is_openmp()) {
    counts_to_offsets(v);
  } else {
    MSX_ASSERT(!v.empty() && v[0] == T{});
    inclusive_scan_serial(v.data(), v.size());
  }
}

}  // namespace detail

// Workspace-injection form: `workspaces` must have one slot per context
// worker (the caller sizes it from ctx.concurrency(); see the kernel
// registry). When `symbolic` is non-null and valid, the two-phase symbolic
// pass is skipped and its rowptr reused; when non-null and invalid, the
// freshly computed rowptr is cached. `partition` plays the same role for the
// flop-balanced row partition: under Schedule::kFlopBalanced the symbolic,
// numeric, bound and compaction passes all dispatch the partition's blocks,
// and a valid cache skips rebuilding it. `timings`, when non-null, receives
// the per-block numeric-pass wall time of this run (adaptive plans feed it
// to the FeedbackStore); it stays empty for non-partitioned dispatch.
template <class Kernel>
CSRMatrix<typename Kernel::index_type, typename Kernel::output_value>
run_masked_kernel(const Kernel& kernel, const MaskedOptions& opts,
                  PerThread<typename Kernel::Workspace>& workspaces,
                  TwoPhaseCache<typename Kernel::index_type>* symbolic,
                  PartitionCache* partition = nullptr,
                  const ExecContext& ctx = ExecContext::openmp(),
                  BlockTimings* timings = nullptr) {
  using IT = typename Kernel::index_type;
  using OVT = typename Kernel::output_value;

  // Per-block accumulator sizing (ROADMAP item): a kernel that reports the
  // columns a row can touch (width_row) and consumes a per-block bound
  // (begin_block) gets its accumulator sized by the widest row *of the
  // block* instead of the full matrix width.
  constexpr bool kHasBlockSizing =
      requires(const Kernel& k, typename Kernel::Workspace& w) {
        { k.width_row(IT{0}) } -> std::convertible_to<std::int64_t>;
        k.begin_block(w, std::int64_t{});
      };

  // Adaptive per-block execution (src/adaptive/): a kernel that plans a
  // per-block mode (plan_block_modes fills RowPartition::block_mode) and
  // switches engines per workspace (select_mode) gets the mode set in the
  // per-block prologue; everything else about dispatch is unchanged.
  constexpr bool kHasModeSelect =
      requires(const Kernel& k, typename Kernel::Workspace& w,
               RowPartition& p, const ExecContext& c) {
        k.plan_block_modes(p, c);
        k.select_mode(w, std::uint8_t{}, std::int64_t{});
        { k.default_mode() } -> std::convertible_to<std::uint8_t>;
      };

  const IT nrows = kernel.nrows();
  const IT ncols = kernel.ncols();
  // The thread-count override is an OpenMP concept; serial and arena
  // contexts bring their own workers.
  ScopedNumThreads thread_guard(ctx.is_openmp() ? opts.threads : 0);

  // Schedule::kAuto resolves here. The flop-balanced partition is never
  // slower than dynamic once hub rows appear, and plans amortize the one
  // cost-estimation sweep its build adds — but on tiny inputs that sweep and
  // its prefix sum are the dominant cost, so inputs whose O(1) work hint
  // falls below kAutoScheduleTinyWork stay on static and skip the partition
  // entirely (measured with bench_ablation_schedule; see options.hpp).
  Schedule schedule = opts.schedule;
  if (schedule == Schedule::kAuto) {
    schedule = Schedule::kFlopBalanced;
    if constexpr (requires { kernel.work_hint(); }) {
      if (kernel.work_hint() < kAutoScheduleTinyWork) {
        schedule = Schedule::kStatic;
      }
    }
  }
  // A serial context executes blocks in row order anyway, so the partition
  // build would be pure overhead — run the plain row loop instead.
  if (ctx.is_serial() && schedule == Schedule::kFlopBalanced) {
    schedule = Schedule::kStatic;
  }

  // Resolve (or reuse) the flop-balanced partition once; every pass below
  // then dispatches the same blocks.
  RowPartition local_partition;
  RowPartition* blocks = nullptr;
  if (schedule == Schedule::kFlopBalanced) {
    if (partition != nullptr && partition->valid) {
      blocks = &partition->partition;
    } else {
      // cost_row is an optional part of the kernel interface; kernels
      // without one (the plain-SpGEMM baselines) are partitioned by their
      // 1P upper bound, which tracks flops for unmasked products.
      auto built = build_row_partition(
          nrows, partition_target_blocks(ctx.concurrency(opts.threads)),
          [&](IT i) {
            if constexpr (requires { kernel.cost_row(i, opts.cost_model); }) {
              return kernel.cost_row(i, opts.cost_model);
            } else {
              return kernel.upper_bound_row(i) + 1;
            }
          },
          ctx);
      if (partition != nullptr) {
        partition->partition = std::move(built);
        partition->valid = true;
        blocks = &partition->partition;
      } else {
        local_partition = std::move(built);
        blocks = &local_partition;
      }
    }
    if constexpr (kHasBlockSizing) {
      // Computed once per structure: cached partitions carry their widths
      // across executes, so warm plans never repeat this sweep.
      if (blocks->block_width.empty()) {
        compute_block_widths(*blocks, ctx, [&](std::int64_t i) {
          return kernel.width_row(static_cast<IT>(i));
        });
      }
    }
    if constexpr (kHasModeSelect) {
      // Like block widths, modes live with the partition: planned once per
      // structure, then re-moded in place by the FeedbackStore between
      // executes (never re-planned here).
      if (blocks->block_mode.size() !=
          static_cast<std::size_t>(blocks->blocks())) {
        kernel.plan_block_modes(*blocks, ctx);
      }
    }
  }
  if constexpr (kHasBlockSizing) {
    // Non-partitioned dispatch never runs the per-block prologue, so any
    // bound left behind by a previous partitioned run on these retained
    // workspaces would undersize the accumulator (the arrays are grow-only
    // and may cover only that run's widest block). Clear every slot up
    // front; partitioned dispatch refreshes the bound at each block entry.
    // Mode-select kernels additionally pin every slot to the kernel's
    // whole-product default mode.
    if (blocks == nullptr) {
      for (std::size_t t = 0; t < workspaces.size(); ++t) {
        if constexpr (kHasModeSelect) {
          kernel.select_mode(workspaces.slot(t), kernel.default_mode(), 0);
        } else {
          kernel.begin_block(workspaces.slot(t), 0);
        }
      }
    }
  }
  if (timings != nullptr) {
    const auto nb =
        blocks != nullptr ? static_cast<std::size_t>(blocks->blocks()) : 0;
    timings->nanos.assign(nb, 0);
    timings->mode.assign(nb, 0);
  }

  // `fallback` is what non-flop-balanced calls use: the requested schedule
  // for kernel passes, static for the cheap bookkeeping passes. Bodies
  // receive their workspace slot already resolved — and, under the
  // partition, a per-block prologue has sized the accumulator bound (and,
  // for mode-select kernels, picked the block's engine) first. `timed`
  // marks the numeric passes: when the caller wants BlockTimings, those are
  // the passes whose per-block wall time is recorded. Each block's entry is
  // written only by the worker that ran the block, so no synchronization.
  const auto run_rows = [&](Schedule fallback, bool timed, auto&& body) {
    if (blocks != nullptr) {
      const bool record = timed && timings != nullptr;
      ctx.for_block_ranges<IT>(
          blocks->bounds(), [&](int slot, int blk, IT lo, IT hi) {
            auto& ws = workspaces.slot(static_cast<std::size_t>(slot));
            const auto ublk = static_cast<std::size_t>(blk);
            const std::int64_t width =
                ublk < blocks->block_width.size() ? blocks->block_width[ublk]
                                                  : 0;
            if constexpr (kHasModeSelect) {
              const std::uint8_t mode = ublk < blocks->block_mode.size()
                                            ? blocks->block_mode[ublk]
                                            : kernel.default_mode();
              kernel.select_mode(ws, mode, width);
              if (record) timings->mode[ublk] = mode;
            } else if constexpr (kHasBlockSizing) {
              if (ublk < blocks->block_width.size()) {
                kernel.begin_block(ws, width);
              }
            }
            if (record) {
              const auto t0 = std::chrono::steady_clock::now();
              for (IT i = lo; i < hi; ++i) body(ws, i);
              const auto t1 = std::chrono::steady_clock::now();
              timings->nanos[ublk] += static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(t1 -
                                                                       t0)
                      .count());
            } else {
              for (IT i = lo; i < hi; ++i) body(ws, i);
            }
          });
    } else {
      ctx.for_rows(nrows, fallback, opts.chunk, [&](int slot, IT i) {
        body(workspaces.slot(static_cast<std::size_t>(slot)), i);
      });
    }
  };

  if (opts.phases == PhaseMode::kTwoPhase) {
    // --- symbolic phase: exact row sizes (or a cached prior result) ---
    std::vector<IT> rowptr;
    if (symbolic != nullptr && symbolic->valid) {
      rowptr = symbolic->rowptr;
    } else {
      obs::ScopedSpan span("phase.symbolic");
      rowptr.assign(static_cast<std::size_t>(nrows) + 1, IT{0});
      run_rows(schedule, false, [&](auto& ws, IT i) {
        rowptr[static_cast<std::size_t>(i) + 1] = kernel.symbolic_row(ws, i);
      });
      detail::offsets_inplace(rowptr, ctx);
      if (symbolic != nullptr) {
        symbolic->rowptr = rowptr;
        symbolic->valid = true;
      }
    }

    // --- numeric phase: write into exact-size arrays ---
    obs::ScopedSpan span("phase.numeric");
    const auto nnz = static_cast<std::size_t>(rowptr.back());
    std::vector<IT> colidx(nnz);
    std::vector<OVT> values(nnz);
    run_rows(schedule, true, [&](auto& ws, IT i) {
      const auto base =
          static_cast<std::size_t>(rowptr[static_cast<std::size_t>(i)]);
      [[maybe_unused]] const IT written = kernel.numeric_row(
          ws, i, colidx.data() + base, values.data() + base);
      MSX_ASSERT(written == rowptr[static_cast<std::size_t>(i) + 1] -
                                rowptr[static_cast<std::size_t>(i)]);
    });
    return CSRMatrix<IT, OVT>(nrows, ncols, std::move(rowptr),
                              std::move(colidx), std::move(values));
  }

  // --- one-phase: upper-bound temporary, then compact ---
  std::vector<std::size_t> bounds(static_cast<std::size_t>(nrows) + 1, 0);
  {
    obs::ScopedSpan span("phase.bound");
    run_rows(Schedule::kStatic, false, [&](auto&, IT i) {
      bounds[static_cast<std::size_t>(i) + 1] = kernel.upper_bound_row(i);
    });
    detail::offsets_inplace(bounds, ctx);
  }
  const std::size_t cap = bounds.back();

  std::vector<IT> tmp_cols(cap);
  std::vector<OVT> tmp_vals(cap);
  std::vector<IT> rowptr(static_cast<std::size_t>(nrows) + 1, IT{0});

  {
    obs::ScopedSpan span("phase.numeric");
    run_rows(schedule, true, [&](auto& ws, IT i) {
      const std::size_t base = bounds[static_cast<std::size_t>(i)];
      rowptr[static_cast<std::size_t>(i) + 1] = kernel.numeric_row(
          ws, i, tmp_cols.data() + base, tmp_vals.data() + base);
    });
    detail::offsets_inplace(rowptr, ctx);
  }

  obs::ScopedSpan span("phase.compact");
  const auto nnz = static_cast<std::size_t>(rowptr.back());
  std::vector<IT> colidx(nnz);
  std::vector<OVT> values(nnz);
  run_rows(Schedule::kStatic, false, [&](auto&, IT i) {
    const std::size_t src = bounds[static_cast<std::size_t>(i)];
    const auto dst = static_cast<std::size_t>(rowptr[static_cast<std::size_t>(i)]);
    const auto len = static_cast<std::size_t>(
        rowptr[static_cast<std::size_t>(i) + 1] -
        rowptr[static_cast<std::size_t>(i)]);
    for (std::size_t p = 0; p < len; ++p) {
      colidx[dst + p] = tmp_cols[src + p];
      values[dst + p] = tmp_vals[src + p];
    }
  });
  return CSRMatrix<IT, OVT>(nrows, ncols, std::move(rowptr), std::move(colidx),
                            std::move(values));
}

// Classic form: per-call workspaces, no symbolic or partition caching. The
// thread guard runs before the PerThread pool is sized so an opts.threads
// larger than the current OpenMP default still gets one slot per thread.
template <class Kernel>
CSRMatrix<typename Kernel::index_type, typename Kernel::output_value>
run_masked_kernel(const Kernel& kernel, const MaskedOptions& opts) {
  ScopedNumThreads thread_guard(opts.threads);
  PerThread<typename Kernel::Workspace> workspaces;
  return run_masked_kernel(kernel, opts, workspaces,
                           static_cast<TwoPhaseCache<
                               typename Kernel::index_type>*>(nullptr));
}

}  // namespace msx
