// Inner row kernel — pull-based Masked SpGEMM via sparse dot products
// (paper §4.1).
//
// For every unmasked output position (i, j), computes A(i,:) · B(:,j) as a
// sorted two-pointer intersection. Requires B in CSC form; the public API
// transposes once up front (the paper assumes B is stored column-major for
// this algorithm). Work is mask-driven: O(nnz(m)) dot products per row, at
// least nnz(M)-way parallel. Wins when the mask is much sparser than the
// inputs; loses temporal locality on B's columns when the mask is dense.
//
// The complemented variant must consider every column not in the mask row —
// inherently expensive (the paper excludes dot-based schemes from the
// complement-heavy BC benchmark for this reason) but implemented for
// completeness.
#pragma once

#include <cstddef>

#include "core/kernel_common.hpp"
#include "matrix/csc.hpp"
#include "matrix/csr.hpp"
#include "semiring/semirings.hpp"

namespace msx {

template <class SR, class IT, class VT, bool Complemented>
  requires Semiring<SR>
class InnerKernel {
 public:
  using index_type = IT;
  using output_value = typename SR::value_type;

  struct Workspace {  // dot products need no scratch state
    void reset() {}
  };

  // gallop selects exponential-probe intersection instead of the two-pointer
  // merge; pays off when |A row| and |B column| differ by large factors.
  InnerKernel(const CSRMatrix<IT, VT>& a, const CSCMatrix<IT, VT>& b_csc,
              MaskView<IT> m, bool gallop = false)
      : a_(a), b_(b_csc), m_(m), gallop_(gallop) {}

  IT nrows() const { return a_.nrows(); }
  IT ncols() const { return b_.ncols(); }

  std::size_t upper_bound_row(IT i) const {
    const auto mask_nnz = static_cast<std::size_t>(m_.row_nnz(i));
    if constexpr (Complemented) {
      return static_cast<std::size_t>(m_.ncols) - mask_nnz;
    } else {
      return mask_nnz;
    }
  }

  // Pull-based work is mask-driven: the native (kAuto/kMaskNnz) cost is the
  // number of dot products the row performs. kFlops charges each dot its
  // merge length — exact per mask entry for the masked kind, approximated
  // with B's mean column population for the complemented scan (an exact sum
  // there would itself cost O(nrows·ncols)).
  std::size_t cost_row(IT i, CostModel model) const {
    const std::size_t dots = upper_bound_row(i);
    if (model != CostModel::kFlops) return dots + 1;
    const auto arow = a_.row(i);
    if constexpr (!Complemented) {
      std::size_t cost = 0;
      for (IT j : m_.row(i)) {
        cost += static_cast<std::size_t>(arow.size()) +
                static_cast<std::size_t>(b_.col_nnz(j));
      }
      return cost + 1;
    } else {
      const std::size_t avg_col =
          b_.ncols() > 0 ? b_.nnz() / static_cast<std::size_t>(b_.ncols()) : 0;
      return dots * (static_cast<std::size_t>(arow.size()) + avg_col) + 1;
    }
  }

  double work_hint() const {
    return detail::estimate_pull_work(static_cast<double>(m_.nnz()),
                                      static_cast<double>(a_.nnz()),
                                      static_cast<double>(b_.nnz()),
                                      static_cast<double>(a_.nrows()));
  }

  IT numeric_row(Workspace&, IT i, IT* out_cols,
                 output_value* out_vals) const {
    return process_row<false>(i, out_cols, out_vals);
  }

  IT symbolic_row(Workspace&, IT i) const {
    return process_row<true>(i, nullptr, nullptr);
  }

 private:
  // Sparse dot product A(i,:)·B(:,j). Returns true if any index matched;
  // `out` receives the accumulated value. In symbolic mode stops at the
  // first match.
  template <bool SymbolicOnly>
  bool dot(typename CSRMatrix<IT, VT>::RowView arow, IT j,
           output_value& out) const {
    if (gallop_) return dot_gallop<SymbolicOnly>(arow, j, out);
    const auto bcol = b_.col(j);
    IT pa = 0;
    IT pb = 0;
    const IT na = arow.size();
    const IT nb = bcol.size();
    bool any = false;
    output_value sum = SR::zero();
    while (pa < na && pb < nb) {
      const IT ka = arow.cols[pa];
      const IT kb = bcol.rows[pb];
      if (ka == kb) {
        if constexpr (SymbolicOnly) {
          return true;
        } else {
          const auto prod =
              SR::mul(static_cast<output_value>(arow.vals[pa]),
                      static_cast<output_value>(bcol.vals[pb]));
          sum = any ? SR::add(sum, prod) : prod;
          any = true;
          ++pa;
          ++pb;
        }
      } else if (ka < kb) {
        ++pa;
      } else {
        ++pb;
      }
    }
    out = sum;
    return any;
  }

  // Exponential-probe (galloping) lower bound: first p in [lo, n) with
  // keys[p] >= target, assuming keys sorted.
  static IT gallop_lower_bound(const IT* keys, IT lo, IT n, IT target) {
    IT step = 1;
    IT hi = lo;
    while (hi < n && keys[hi] < target) {
      lo = hi + 1;
      hi += step;
      step *= 2;
    }
    if (hi > n) hi = n;
    // binary search in (lo-1, hi]
    while (lo < hi) {
      const IT mid = lo + (hi - lo) / 2;
      if (keys[mid] < target) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Galloping intersection: iterate the shorter side, gallop in the longer.
  template <bool SymbolicOnly>
  bool dot_gallop(typename CSRMatrix<IT, VT>::RowView arow, IT j,
                  output_value& out) const {
    const auto bcol = b_.col(j);
    const IT na = arow.size();
    const IT nb = bcol.size();
    bool any = false;
    output_value sum = SR::zero();
    // walk the shorter list, search the longer
    if (na <= nb) {
      IT pb = 0;
      for (IT pa = 0; pa < na && pb < nb; ++pa) {
        pb = gallop_lower_bound(bcol.rows.data(), pb, nb, arow.cols[pa]);
        if (pb < nb && bcol.rows[pb] == arow.cols[pa]) {
          if constexpr (SymbolicOnly) return true;
          const auto prod =
              SR::mul(static_cast<output_value>(arow.vals[pa]),
                      static_cast<output_value>(bcol.vals[pb]));
          sum = any ? SR::add(sum, prod) : prod;
          any = true;
          ++pb;
        }
      }
    } else {
      IT pa = 0;
      for (IT pb = 0; pb < nb && pa < na; ++pb) {
        pa = gallop_lower_bound(arow.cols.data(), pa, na, bcol.rows[pb]);
        if (pa < na && arow.cols[pa] == bcol.rows[pb]) {
          if constexpr (SymbolicOnly) return true;
          const auto prod =
              SR::mul(static_cast<output_value>(arow.vals[pa]),
                      static_cast<output_value>(bcol.vals[pb]));
          sum = any ? SR::add(sum, prod) : prod;
          any = true;
          ++pa;
        }
      }
    }
    out = sum;
    return any;
  }

  template <bool SymbolicOnly>
  IT process_row(IT i, IT* out_cols, output_value* out_vals) const {
    const auto arow = a_.row(i);
    if (arow.empty()) return 0;
    const auto mrow = m_.row(i);
    IT cnt = 0;
    output_value v{};

    if constexpr (!Complemented) {
      for (IT j : mrow) {
        if (dot<SymbolicOnly>(arow, j, v)) {
          if constexpr (SymbolicOnly) {
            ++cnt;
          } else {
            out_cols[cnt] = j;
            out_vals[cnt] = v;
            ++cnt;
          }
        }
      }
    } else {
      // Walk all columns, skipping those present in the (sorted) mask row.
      IT mq = 0;
      const IT mn = static_cast<IT>(mrow.size());
      for (IT j = 0; j < b_.ncols(); ++j) {
        while (mq < mn && mrow[mq] < j) ++mq;
        if (mq < mn && mrow[mq] == j) continue;
        if (b_.col_nnz(j) == 0) continue;
        if (dot<SymbolicOnly>(arow, j, v)) {
          if constexpr (SymbolicOnly) {
            ++cnt;
          } else {
            out_cols[cnt] = j;
            out_vals[cnt] = v;
            ++cnt;
          }
        }
      }
    }
    return cnt;
  }

  const CSRMatrix<IT, VT>& a_;
  const CSCMatrix<IT, VT>& b_;
  MaskView<IT> m_;
  bool gallop_ = false;
};

}  // namespace msx
