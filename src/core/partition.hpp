// Flop-balanced work partitioning (ISSUE 2 tentpole).
//
// Row-parallel drivers that hand out *rows* suffer on power-law inputs: a
// handful of hub rows carry most of the flops and serialize the tail of the
// loop no matter which OpenMP schedule distributes them. Buluç & Gilbert and
// Nagasaka-style SpGEMM implementations partition by *flops* instead; this
// header brings that to the masked setting.
//
// A RowPartition is built once per operand structure: the per-row cost
// (masked flops for push kernels, mask nnz for pull kernels — see
// Kernel::cost_row and CostModel in core/options.hpp) is prefix-summed and
// binary-searched into ~8×threads contiguous row blocks of near-equal cost.
// The phase driver then dispatches those blocks dynamically
// (parallel_for_blocks) for the symbolic, numeric and one-phase bound
// passes, and a MaskedPlan caches the partition across execute() calls
// alongside the two-phase symbolic rowptr.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/parallel.hpp"
#include "common/prefix_sum.hpp"

namespace msx {

// Contiguous row blocks of near-equal estimated cost. block_start holds
// blocks()+1 ascending boundaries with block_start.front() == 0 and
// block_start.back() == nrows; every row belongs to exactly one block, so
// per-row output contracts (each row writes its own CSR segment) are
// unaffected by which thread runs which block.
struct RowPartition {
  std::vector<std::int64_t> block_start;

  int blocks() const {
    return block_start.empty() ? 0
                               : static_cast<int>(block_start.size()) - 1;
  }
  std::int64_t rows() const {
    return block_start.empty() ? 0 : block_start.back();
  }
  std::span<const std::int64_t> bounds() const { return block_start; }
};

// Target block count for `threads` workers: ~8 blocks per thread is fine
// enough for dynamic stealing to absorb cost-model error yet coarse enough
// that per-block dispatch overhead stays negligible.
int partition_target_blocks(int threads);

// Splits a per-row cost prefix sum (nrows+1 entries, prefix[0] == 0,
// non-decreasing) into min(nblocks, nrows) blocks whose cost is as close to
// total/nblocks as contiguity allows. A single dominant row gets a block of
// its own (it cannot be split, but it no longer drags neighbours with it);
// zero total cost degenerates to an even row split; an empty matrix yields
// zero blocks.
RowPartition partition_from_cost_prefix(std::span<const std::uint64_t> prefix,
                                        int nblocks);

// Builds the cost prefix in parallel from a per-row cost callback and splits
// it. This is the one pass over the input the flop-balanced schedule adds;
// plans amortize it across executions (PartitionCache below).
template <class IT, class CostFn>
RowPartition build_row_partition(IT nrows, int nblocks, CostFn&& cost) {
  std::vector<std::uint64_t> prefix(static_cast<std::size_t>(nrows) + 1, 0);
  parallel_for(IT{0}, nrows, Schedule::kStatic, [&](IT i) {
    prefix[static_cast<std::size_t>(i) + 1] =
        static_cast<std::uint64_t>(cost(i));
  });
  inclusive_scan(prefix.data(), prefix.size());
  return partition_from_cost_prefix(prefix, nblocks);
}

// Cached partition for plan reuse. Valid as long as the operand and mask
// structures are unchanged — execute_values() keeps it, rebind() must
// invalidate(). Mirrors TwoPhaseCache in core/phase_driver.hpp.
struct PartitionCache {
  RowPartition partition;
  bool valid = false;
  void invalidate() {
    valid = false;
    partition.block_start.clear();
  }
};

}  // namespace msx
