// Flop-balanced work partitioning (ISSUE 2 tentpole).
//
// Row-parallel drivers that hand out *rows* suffer on power-law inputs: a
// handful of hub rows carry most of the flops and serialize the tail of the
// loop no matter which OpenMP schedule distributes them. Buluç & Gilbert and
// Nagasaka-style SpGEMM implementations partition by *flops* instead; this
// header brings that to the masked setting.
//
// A RowPartition is built once per operand structure: the per-row cost
// (masked flops for push kernels, mask nnz for pull kernels — see
// Kernel::cost_row and CostModel in core/options.hpp) is prefix-summed and
// binary-searched into ~8×workers contiguous row blocks of near-equal cost.
// The phase driver then dispatches those blocks dynamically
// (ExecContext::for_block_ranges) for the symbolic, numeric and one-phase
// bound passes, and a MaskedPlan caches the partition across execute() calls
// alongside the two-phase symbolic rowptr. Kernels with dense accumulators
// additionally attach a per-block width (the widest column any row of the
// block can touch) so their working set shrinks to the block's needs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/exec_context.hpp"
#include "common/parallel.hpp"
#include "common/prefix_sum.hpp"

namespace msx {

// Contiguous row blocks of near-equal estimated cost. block_start holds
// blocks()+1 ascending boundaries with block_start.front() == 0 and
// block_start.back() == nrows; every row belongs to exactly one block, so
// per-row output contracts (each row writes its own CSR segment) are
// unaffected by which thread runs which block.
struct RowPartition {
  std::vector<std::int64_t> block_start;
  // Optional per-block accumulator bound: 1 + the highest column index the
  // rows of the block can touch (compute_block_widths). Empty until a
  // kernel with per-block sizing asks for it; parallel to blocks() once
  // filled. Shares the partition's lifetime, so plan caching amortizes it.
  std::vector<std::int64_t> block_width;
  // Adaptive per-block execution (src/adaptive/): the execution mode each
  // block dispatches (adaptive::BlockMode as uint8), plus the ModePlanner's
  // predicted unit cost per mode — blocks() × 3 entries, mode-minor — which
  // the FeedbackStore scales by observed coefficients when re-moding. Empty
  // until an adaptive kernel plans modes; same lifetime as block_width.
  std::vector<std::uint8_t> block_mode;
  std::vector<double> block_mode_cost;

  int blocks() const {
    return block_start.empty() ? 0
                               : static_cast<int>(block_start.size()) - 1;
  }
  std::int64_t rows() const {
    return block_start.empty() ? 0 : block_start.back();
  }
  std::span<const std::int64_t> bounds() const { return block_start; }
};

// Target block count for `workers` execution slots: ~8 blocks per worker is
// fine enough for dynamic stealing to absorb cost-model error yet coarse
// enough that per-block dispatch overhead stays negligible.
int partition_target_blocks(int workers);

// Splits a per-row cost prefix sum (nrows+1 entries, prefix[0] == 0,
// non-decreasing) into min(nblocks, nrows) blocks whose cost is as close to
// total/nblocks as contiguity allows. A single dominant row gets a block of
// its own (it cannot be split, but it no longer drags neighbours with it);
// zero total cost degenerates to an even row split; an empty matrix yields
// zero blocks.
RowPartition partition_from_cost_prefix(std::span<const std::uint64_t> prefix,
                                        int nblocks);

// Builds the cost prefix from a per-row cost callback and splits it. This is
// the one pass over the input the flop-balanced schedule adds; plans
// amortize it across executions (PartitionCache below). The context decides
// who runs the sweep: OpenMP team (default), the calling thread, or an
// arena's workers — and keeps the prefix scan off OpenMP outside the OpenMP
// mode.
template <class IT, class CostFn>
RowPartition build_row_partition(IT nrows, int nblocks, CostFn&& cost,
                                 const ExecContext& ctx =
                                     ExecContext::openmp()) {
  std::vector<std::uint64_t> prefix(static_cast<std::size_t>(nrows) + 1, 0);
  ctx.for_rows(nrows, Schedule::kStatic, 0, [&](int, IT i) {
    prefix[static_cast<std::size_t>(i) + 1] =
        static_cast<std::uint64_t>(cost(i));
  });
  if (ctx.is_openmp()) {
    inclusive_scan(prefix.data(), prefix.size());
  } else {
    inclusive_scan_serial(prefix.data(), prefix.size());
  }
  return partition_from_cost_prefix(prefix, nblocks);
}

// Fills part.block_width with the per-block maximum of width(i) (the
// kernel's per-row column bound). One sweep over the rows; cached partitions
// keep the result, so plans pay it once per structure.
template <class WidthFn>
void compute_block_widths(RowPartition& part, const ExecContext& ctx,
                          WidthFn&& width) {
  part.block_width.assign(static_cast<std::size_t>(part.blocks()), 0);
  ctx.for_block_ranges<std::int64_t>(
      part.bounds(), [&](int, int blk, std::int64_t lo, std::int64_t hi) {
        std::int64_t w = 0;
        for (std::int64_t i = lo; i < hi; ++i) {
          w = std::max(w, static_cast<std::int64_t>(width(i)));
        }
        part.block_width[static_cast<std::size_t>(blk)] = w;
      });
}

// Cached partition for plan reuse. Valid as long as the operand and mask
// structures are unchanged — execute_values() keeps it, rebind() must
// invalidate(). Mirrors TwoPhaseCache in core/phase_driver.hpp.
struct PartitionCache {
  RowPartition partition;
  bool valid = false;
  void invalidate() {
    valid = false;
    partition.block_start.clear();
    partition.block_width.clear();
    partition.block_mode.clear();
    partition.block_mode_cost.clear();
  }
};

// Per-block numeric-pass wall time of one run, recorded by the phase driver
// when the caller passes a BlockTimings out-param (adaptive plans do; see
// MaskedPlan). Parallel to the partition's blocks; `mode` is the
// adaptive::BlockMode each block dispatched (0 for non-adaptive kernels).
// Each block's entry is written by exactly the worker that ran the block,
// so no synchronization is needed beyond the dispatch barrier.
struct BlockTimings {
  std::vector<std::uint64_t> nanos;
  std::vector<std::uint8_t> mode;
  bool empty() const { return nanos.empty(); }
};

}  // namespace msx
