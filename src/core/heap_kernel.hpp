// Heap row kernel — Masked SpGEMM via k-way merge (paper §5.5, Algorithms
// 4–5, after Buluç & Gilbert's column-column heap algorithm).
//
// A min-heap of row iterators streams the multiset {B(k,j) : A(i,k) ≠ 0} in
// column order; a 2-way merge against the sorted mask row keeps only the
// intersection (masked) or the set difference (complemented). Products for
// the same column arrive consecutively, so accumulation happens directly
// into the tail of the output — no accumulator array at all, giving the
// smallest memory footprint of the four push algorithms.
//
// NInspect (Algorithm 5) controls how far ahead the mask is inspected before
// an iterator is (re-)inserted into the heap:
//   0  — insert unconditionally,
//   1  — inspect one mask element (the paper's "Heap"),
//   ∞  — advance until a mask hit is proven (the paper's "HeapDot").
// Complemented masks use the mirrored rule: look-ahead skips B entries that
// are provably PRESENT in the mask row (they can never emit), inspecting at
// most NInspect mask positions — the paper's complement configuration is
// NInspect = 0, larger values are an extension that trades mask scans for
// fewer heap operations.
#pragma once

#include <cstddef>

#include "accum/kmerge_heap.hpp"
#include "core/kernel_common.hpp"
#include "matrix/csr.hpp"
#include "semiring/semirings.hpp"

namespace msx {

template <class SR, class IT, class VT, bool Complemented>
  requires Semiring<SR>
class HeapKernel {
 public:
  using index_type = IT;
  using output_value = typename SR::value_type;

  struct Workspace {
    KMergeHeap<IT> heap;
    void reset() { heap.release(); }
  };

  HeapKernel(const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
             MaskView<IT> m, std::size_t ninspect)
      : a_(a), b_(b), m_(m), ninspect_(ninspect) {}

  IT nrows() const { return a_.nrows(); }
  IT ncols() const { return b_.ncols(); }

  std::size_t upper_bound_row(IT i) const {
    return detail::masked_upper_bound(
        a_, b_, m_, i,
        Complemented ? MaskKind::kComplement : MaskKind::kMask);
  }

  std::size_t cost_row(IT i, CostModel model) const {
    return detail::push_row_cost(a_, b_, m_, i, model);
  }

  double work_hint() const { return detail::push_work_hint(a_, b_); }

  IT numeric_row(Workspace& ws, IT i, IT* out_cols,
                 output_value* out_vals) const {
    return process_row<false>(ws, i, out_cols, out_vals);
  }

  IT symbolic_row(Workspace& ws, IT i) const {
    return process_row<true>(ws, i, nullptr, nullptr);
  }

 private:
  // Applies Algorithm 5: advances the cursor past B entries that provably
  // cannot emit, inspecting at most ninspect_ mask positions (starting at the
  // global cursor mpos). Masked: skips entries that cannot match any
  // remaining mask entry. Complemented: skips entries proven present in the
  // mask row. Returns false when the cursor should be dropped instead of
  // (re-)inserted.
  bool inspect(MergeCursor<IT>& cur, std::span<const IT> mrow, IT mpos) const {
    if (cur.bpos >= cur.bend) return false;
    const auto* bcols = b_.colidx().data();
    cur.col = bcols[cur.bpos];
    if (ninspect_ == 0) return true;

    std::size_t to_inspect = ninspect_;
    const IT mn = static_cast<IT>(mrow.size());
    IT mq = mpos;

    if constexpr (Complemented) {
      // Every mask entry before mpos is < the cursor's column (the driver
      // advances mpos past emitted columns), so a B entry equal to a mask
      // entry at mq >= mpos is the only way it can be masked out.
      while (cur.bpos < cur.bend && mq < mn) {
        const IT bc = bcols[cur.bpos];
        const IT mc = mrow[mq];
        if (bc < mc) {
          cur.col = bc;
          return true;  // not in the mask: a complement candidate
        }
        if (bc == mc) {
          ++cur.bpos;  // provably masked out: can never emit
          ++mq;
        } else {
          ++mq;
        }
        if (--to_inspect == 0) break;
      }
      if (cur.bpos >= cur.bend) return false;
      cur.col = bcols[cur.bpos];
      return true;  // budget or mask exhausted: let the merge decide
    } else {
      while (cur.bpos < cur.bend && mq < mn) {
        const IT bc = bcols[cur.bpos];
        const IT mc = mrow[mq];
        if (bc == mc) {
          cur.col = bc;
          return true;
        }
        if (bc < mc) {
          ++cur.bpos;
        } else {
          ++mq;
          if (--to_inspect == 0) {
            cur.col = bcols[cur.bpos];
            return true;
          }
        }
      }
      return false;  // B row or mask exhausted: no intersection remains
    }
  }

  template <bool SymbolicOnly>
  IT process_row(Workspace& ws, IT i, IT* out_cols,
                 output_value* out_vals) const {
    const auto arow = a_.row(i);
    const auto mrow = m_.row(i);
    if (arow.empty()) return 0;
    if constexpr (!Complemented) {
      if (mrow.empty()) return 0;
    }

    const auto* bvals = b_.values().data();
    const auto* brptr = b_.rowptr().data();

    auto& heap = ws.heap;
    heap.clear();
    heap.reserve(static_cast<std::size_t>(arow.size()));
    IT mpos = 0;
    const IT mn = static_cast<IT>(mrow.size());

    for (IT p = 0; p < arow.size(); ++p) {
      const IT k = arow.cols[p];
      MergeCursor<IT> cur{IT{0}, brptr[k], brptr[k + 1], p};
      if (inspect(cur, mrow, mpos)) heap.push(cur);
    }

    IT cnt = 0;
    IT prev_col = IT{-1};
    bool have_prev = false;
    while (!heap.empty()) {
      MergeCursor<IT> cur = heap.top();

      // Advance the shared mask cursor up to the current column.
      while (mpos < mn && mrow[mpos] < cur.col) ++mpos;
      bool emit;
      if constexpr (Complemented) {
        emit = !(mpos < mn && mrow[mpos] == cur.col);
      } else {
        if (mpos == mn) break;  // mask exhausted: nothing further survives
        emit = (mrow[mpos] == cur.col);
      }

      if (emit) {
        if constexpr (SymbolicOnly) {
          if (!have_prev || prev_col != cur.col) {
            ++cnt;
            prev_col = cur.col;
            have_prev = true;
          }
        } else {
          const auto prod =
              SR::mul(static_cast<output_value>(arow.vals[cur.arow]),
                      static_cast<output_value>(bvals[cur.bpos]));
          if (have_prev && prev_col == cur.col) {
            out_vals[cnt - 1] = SR::add(out_vals[cnt - 1], prod);
          } else {
            out_cols[cnt] = cur.col;
            out_vals[cnt] = prod;
            ++cnt;
            prev_col = cur.col;
            have_prev = true;
          }
        }
      }

      // Advance this cursor and re-insert (or drop) it.
      ++cur.bpos;
      if (inspect(cur, mrow, mpos)) {
        heap.replace_top(cur);
      } else {
        heap.pop();
      }
    }
    return cnt;
  }

  const CSRMatrix<IT, VT>& a_;
  const CSRMatrix<IT, VT>& b_;
  MaskView<IT> m_;
  std::size_t ninspect_;
};

}  // namespace msx
