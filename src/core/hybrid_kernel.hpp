// Hybrid row kernel — per-row algorithm selection (paper §9 future work:
// "hybrid algorithms that can use different accumulators in the same Masked
// SpGEMM depending on the density of the mask and parts of matrices being
// processed").
//
// For each output row the kernel compares a cost estimate of the pull-based
// dot-product approach (mask-driven) against the push-based MSA approach
// (input-driven) and runs the cheaper one:
//   cost_pull(i) ≈ nnz(m_i) · (nnz(A_i,:) + avg nnz of B columns)
//   cost_push(i) ≈ flops_i + nnz(m_i)
// Complemented calls always push (pull over a complement scans all columns).
#pragma once

#include <cstddef>

#include "core/inner_kernel.hpp"
#include "core/kernel_common.hpp"
#include "core/msa_kernel.hpp"
#include "matrix/csc.hpp"
#include "matrix/csr.hpp"
#include "semiring/semirings.hpp"

namespace msx {

template <class SR, class IT, class VT, bool Complemented>
  requires Semiring<SR>
class HybridKernel {
 public:
  using index_type = IT;
  using output_value = typename SR::value_type;
  using Push = MSAKernel<SR, IT, VT, Complemented>;
  using Pull = InnerKernel<SR, IT, VT, Complemented>;

  struct Workspace {
    typename Push::Workspace push;
    typename Pull::Workspace pull;
    void reset() {
      push.reset();
      pull.reset();
    }
  };

  HybridKernel(const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
               const CSCMatrix<IT, VT>& b_csc, MaskView<IT> m)
      : a_(a), b_(b), push_(a, b, m), pull_(a, b_csc, m), m_(m) {
    avg_col_nnz_ =
        b.ncols() > 0
            ? static_cast<double>(b.nnz()) / static_cast<double>(b.ncols())
            : 0.0;
  }

  IT nrows() const { return a_.nrows(); }
  IT ncols() const { return b_.ncols(); }

  std::size_t upper_bound_row(IT i) const { return push_.upper_bound_row(i); }

  // Cost follows the side the per-row selector will actually run. Pull rows
  // are always charged their merge lengths (Inner's kFlops model) so both
  // sides contribute in the same unit to one partition.
  std::size_t cost_row(IT i, CostModel model) const {
    if (model == CostModel::kMaskNnz) {
      return static_cast<std::size_t>(m_.row_nnz(i)) + 1;
    }
    return use_pull(i) ? pull_.cost_row(i, CostModel::kFlops)
                       : push_.cost_row(i, model);
  }

  double work_hint() const { return detail::push_work_hint(a_, b_); }

  IT numeric_row(Workspace& ws, IT i, IT* out_cols,
                 output_value* out_vals) const {
    if (use_pull(i)) return pull_.numeric_row(ws.pull, i, out_cols, out_vals);
    return push_.numeric_row(ws.push, i, out_cols, out_vals);
  }

  IT symbolic_row(Workspace& ws, IT i) const {
    if (use_pull(i)) return pull_.symbolic_row(ws.pull, i);
    return push_.symbolic_row(ws.push, i);
  }

  // Exposed for tests/ablation: the per-row decision.
  bool use_pull(IT i) const {
    if constexpr (Complemented) return false;
    const auto mask_nnz = static_cast<double>(m_.row_nnz(i));
    if (mask_nnz == 0.0) return false;  // either way the row is empty
    const auto arow = a_.row(i);
    std::size_t flops = 0;
    for (IT p = 0; p < arow.size(); ++p) {
      flops += static_cast<std::size_t>(b_.row_nnz(arow.cols[p]));
    }
    const double cost_pull =
        mask_nnz * (static_cast<double>(arow.size()) + avg_col_nnz_);
    const double cost_push = static_cast<double>(flops) + mask_nnz;
    return cost_pull < cost_push;
  }

 private:
  const CSRMatrix<IT, VT>& a_;
  const CSRMatrix<IT, VT>& b_;
  Push push_;
  Pull pull_;
  MaskView<IT> m_;
  double avg_col_nnz_ = 0.0;
};

}  // namespace msx
