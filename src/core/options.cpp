#include "core/options.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace msx {

namespace {

std::string lower(const std::string& name) {
  std::string s = name;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

void validate_masked_options(const MaskedOptions& opts) {
  if (opts.algo == MaskedAlgo::kHeapDot && opts.heap_ninspect != 1 &&
      opts.heap_ninspect != kNInspectInfinity) {
    throw std::invalid_argument(
        "MaskedOptions: heap_ninspect has no effect under kHeapDot (which "
        "always inspects to infinity); use kHeap to choose a finite "
        "look-ahead");
  }
  if (opts.chunk < 0) {
    throw std::invalid_argument(
        "MaskedOptions: chunk must be >= 0 (0 = library default)");
  }
  if (opts.dist_row_panels < 0 || opts.dist_col_panels < 0) {
    throw std::invalid_argument(
        "MaskedOptions: panel counts must be >= 0 (0 = automatic)");
  }
}

const char* to_string(MaskedAlgo a) {
  switch (a) {
    case MaskedAlgo::kMSA: return "MSA";
    case MaskedAlgo::kHash: return "Hash";
    case MaskedAlgo::kMCA: return "MCA";
    case MaskedAlgo::kHeap: return "Heap";
    case MaskedAlgo::kHeapDot: return "HeapDot";
    case MaskedAlgo::kInner: return "Inner";
    case MaskedAlgo::kHybrid: return "Hybrid";
    case MaskedAlgo::kMSABitmap: return "MSAB";
    case MaskedAlgo::kAuto: return "Auto";
  }
  return "?";
}

const char* to_string(PhaseMode p) {
  return p == PhaseMode::kOnePhase ? "1P" : "2P";
}

const char* to_string(MaskKind k) {
  return k == MaskKind::kMask ? "mask" : "complement";
}

const char* to_string(CostModel c) {
  switch (c) {
    case CostModel::kAuto: return "auto";
    case CostModel::kFlops: return "flops";
    case CostModel::kMaskNnz: return "masknnz";
  }
  return "?";
}

const char* to_string(AdaptiveMode m) {
  switch (m) {
    case AdaptiveMode::kOff: return "off";
    case AdaptiveMode::kAuto: return "auto";
    case AdaptiveMode::kForceSparse: return "sparse";
    case AdaptiveMode::kForceBitmap: return "bitmap";
    case AdaptiveMode::kForceDense: return "dense";
  }
  return "?";
}

AdaptiveMode adaptive_mode_from_string(const std::string& name) {
  const std::string s = lower(name);
  if (s == "off" || s == "none") return AdaptiveMode::kOff;
  if (s == "auto" || s == "on") return AdaptiveMode::kAuto;
  if (s == "sparse" || s == "force-sparse") return AdaptiveMode::kForceSparse;
  if (s == "bitmap" || s == "force-bitmap") return AdaptiveMode::kForceBitmap;
  if (s == "dense" || s == "force-dense") return AdaptiveMode::kForceDense;
  throw std::invalid_argument("unknown adaptive mode: " + name);
}

AdaptiveMode adaptive_mode_from_env(AdaptiveMode dflt) {
  const char* v = std::getenv("MSX_ADAPTIVE");
  if (v == nullptr || *v == '\0') return dflt;
  try {
    return adaptive_mode_from_string(v);
  } catch (const std::invalid_argument&) {
    return dflt;
  }
}

Schedule schedule_from_string(const std::string& name) {
  const std::string s = lower(name);
  if (s == "auto") return Schedule::kAuto;
  if (s == "static") return Schedule::kStatic;
  if (s == "dynamic") return Schedule::kDynamic;
  if (s == "guided") return Schedule::kGuided;
  if (s == "flopbalanced" || s == "flop-balanced") {
    return Schedule::kFlopBalanced;
  }
  throw std::invalid_argument("unknown schedule: " + name);
}

CostModel cost_model_from_string(const std::string& name) {
  const std::string s = lower(name);
  if (s == "auto") return CostModel::kAuto;
  if (s == "flops") return CostModel::kFlops;
  if (s == "masknnz" || s == "mask-nnz") return CostModel::kMaskNnz;
  throw std::invalid_argument("unknown cost model: " + name);
}

MaskedAlgo algo_from_string(const std::string& name) {
  const std::string s = lower(name);
  if (s == "msa") return MaskedAlgo::kMSA;
  if (s == "hash") return MaskedAlgo::kHash;
  if (s == "mca") return MaskedAlgo::kMCA;
  if (s == "heap") return MaskedAlgo::kHeap;
  if (s == "heapdot") return MaskedAlgo::kHeapDot;
  if (s == "inner") return MaskedAlgo::kInner;
  if (s == "hybrid") return MaskedAlgo::kHybrid;
  if (s == "msab" || s == "msabitmap") return MaskedAlgo::kMSABitmap;
  if (s == "auto") return MaskedAlgo::kAuto;
  throw std::invalid_argument("unknown masked SpGEMM algorithm: " + name);
}

std::string scheme_name(MaskedAlgo a, PhaseMode p) {
  return std::string(to_string(a)) + "-" + to_string(p);
}

}  // namespace msx
