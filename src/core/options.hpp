// Options controlling a Masked SpGEMM call: algorithm family, phase mode,
// mask kind, threading and the Heap look-ahead parameter.
#pragma once

#include <cstddef>
#include <limits>
#include <string>

#include "common/parallel.hpp"

namespace msx {

// Algorithm families evaluated in the paper (§8) plus extensions.
enum class MaskedAlgo {
  kMSA,        // masked sparse accumulator (§5.2)
  kHash,       // hash accumulator (§5.3)
  kMCA,        // mask compressed accumulator (§5.4) — no complement support
  kHeap,       // heap with NInspect = 1 (§5.5)
  kHeapDot,    // heap with NInspect = ∞ (§5.5)
  kInner,      // pull-based dot products (§4.1)
  kHybrid,     // per-row algorithm choice (paper §9 future work)
  kMSABitmap,  // MSA with 2-bit packed states (extension; complement calls
               // fall back to the byte-state MSA)
  kAuto,       // whole-call heuristic choice (Fig. 7 decision surface)
};

enum class PhaseMode {
  kOnePhase,  // upper-bound allocation + compaction (suffix 1P)
  kTwoPhase,  // symbolic + numeric (suffix 2P)
};

enum class MaskKind {
  kMask,        // C = M .* (A B)
  kComplement,  // C = ¬M .* (A B)
};

inline constexpr std::size_t kNInspectInfinity =
    std::numeric_limits<std::size_t>::max();

// Schedule::kAuto tiny-input cutoff: calls whose O(1) work hint
// (Kernel::work_hint — estimated multiplies of the product) falls below this
// stay on the static schedule and skip the flop-balanced partition's
// cost-estimation sweep and prefix sum, which dominate at this scale.
// Measured with bench_ablation_schedule (the tiny workload rows): below
// ~1e5 estimated flops the partition build costs more than it saves, above
// it the flop-balanced schedule wins as soon as the degree distribution
// skews. The batch executor reuses the same threshold as the default
// boundary between "run serial for inter-job parallelism" and "give the job
// the whole pool" (runtime/batch.hpp).
inline constexpr double kAutoScheduleTinyWork = 1e5;

// Per-row cost model driving Schedule::kFlopBalanced partitions
// (core/partition.hpp). kAuto picks each kernel's native notion of work:
// masked flops for the push-based families, nnz of the mask row for the
// pull-based ones (whose work is mask-driven, not flop-driven).
enum class CostModel {
  kAuto,
  kFlops,    // force masked flops (Σ nnz(B(k,:)) over A(i,k) ≠ 0)
  kMaskNnz,  // force nnz(mask row)
};

// Whether a sharded submit may be split into a 2D panel grid and scattered
// across the fleet (client/sharded_backend.hpp). Client-side only: these
// knobs never cross the wire and are not part of the plan fingerprint — a
// panel task reaching a shard is an ordinary masked product.
enum class Dist2D {
  kAuto,   // split when the estimated flops exceed the backend threshold
  kNever,  // always single-shard (and what panel tasks themselves carry)
  kForce,  // split whenever a 2D plan is possible (tests, experiments)
};

// Per-block execution-mode selection (the adaptive engine, src/adaptive/).
// Like Dist2D this knob is an execution hint, not plan identity: it never
// crosses the wire and is not part of the plan fingerprint — every mode
// produces bit-identical CSR output, so a cached plan may serve requests
// with any setting. Only the offer-order push families engage the engine
// (MSA, Hash, MSABitmap, or kAuto when it resolves to one of them); the
// heap, pull-based and MCA algorithms ignore the knob — their accumulation
// order differs, so swapping accumulators under them would break
// bit-identity.
enum class AdaptiveMode {
  kOff,          // fixed accumulator chosen by MaskedAlgo (default)
  kAuto,         // density-driven per-block choice + online cost feedback
  kForceSparse,  // every block on the hash accumulator
  kForceBitmap,  // every block on the bitmap MSA (byte MSA for complement)
  kForceDense,   // every block on the dense row tile (accum/dense_tile.hpp)
};

struct MaskedOptions {
  MaskedAlgo algo = MaskedAlgo::kAuto;
  PhaseMode phases = PhaseMode::kOnePhase;
  MaskKind kind = MaskKind::kMask;
  int threads = 0;  // 0 = current OpenMP default
  // kFlopBalanced partitions rows into ~8×threads blocks of near-equal
  // estimated cost (see cost_model); the OpenMP schedules hand out raw row
  // ranges. The kAuto default resolves to kFlopBalanced inside the masked
  // drivers; any explicitly chosen schedule is honoured as-is.
  Schedule schedule = Schedule::kAuto;
  int chunk = 0;  // dynamic-schedule chunk; 0 = library default; must be >= 0
  CostModel cost_model = CostModel::kAuto;
  // Heap mask look-ahead (§5.5): 0 = never inspect, 1 = Heap, ∞ = HeapDot.
  // Honoured when algo == kHeap for BOTH mask kinds: the complemented path
  // uses mirrored look-ahead (skip B entries proven present in the mask; see
  // heap_kernel.hpp) instead of silently forcing 0 as earlier versions did.
  // kHeapDot always runs with ∞ — setting any other explicit value together
  // with kHeapDot is rejected by validate_masked_options (pick kHeap and set
  // heap_ninspect instead). Ignored by every non-heap algorithm.
  std::size_t heap_ninspect = 1;
  // Inner dot products: galloping (exponential-probe binary search) instead
  // of the two-pointer merge — pays off when one operand is much longer.
  bool inner_gallop = false;
  // --- distributed 2D decomposition (client-side; not serialized, not part
  // of the plan fingerprint — see Dist2D above) ------------------------------
  Dist2D dist = Dist2D::kAuto;
  // kAuto splits once estimated product flops reach this; 0 = the backend's
  // configured threshold (ShardedBackendConfig::dist_flop_threshold).
  std::uint64_t dist_flop_threshold = 0;
  // Panel grid shape; 0 = automatic (col panels ≈ live shards capped at 4,
  // row panels from the flop-balanced row split). Must be >= 0.
  int dist_row_panels = 0;
  int dist_col_panels = 0;
  // --- adaptive per-block execution (fingerprint-neutral, like dist; see
  // AdaptiveMode above and src/adaptive/) ----------------------------------
  AdaptiveMode adaptive = AdaptiveMode::kOff;
};

// Rejects contradictory option combinations at the API boundary (throws
// std::invalid_argument). Today that is kHeapDot combined with an explicit
// heap_ninspect that is neither the default (1) nor kNInspectInfinity —
// HeapDot is by definition the ∞ configuration, so any other request would
// be silently ignored — and a negative chunk, which OpenMP would otherwise
// accept with unspecified behaviour. Called by masked_spgemm and masked_plan.
void validate_masked_options(const MaskedOptions& opts);

const char* to_string(MaskedAlgo a);
const char* to_string(PhaseMode p);
const char* to_string(MaskKind k);
const char* to_string(CostModel c);
const char* to_string(AdaptiveMode m);

// Parses names like "msa", "heapdot" (case-insensitive); throws on unknown.
MaskedAlgo algo_from_string(const std::string& name);

// Parses "auto" / "static" / "dynamic" / "guided" / "flopbalanced"
// (case-insensitive, "flop-balanced" accepted); throws on unknown. The
// CLI/env seam for the --schedule knob of the benches and apps.
Schedule schedule_from_string(const std::string& name);

// Parses "auto" / "flops" / "masknnz" (case-insensitive, "mask-nnz"
// accepted); throws on unknown.
CostModel cost_model_from_string(const std::string& name);

// Parses "off" / "auto" / "sparse" / "bitmap" / "dense" (case-insensitive,
// "force-" prefixes accepted); throws on unknown. The CLI/env seam for the
// --adaptive knob of the benches and the MSX_ADAPTIVE variable.
AdaptiveMode adaptive_mode_from_string(const std::string& name);

// Resolves the MSX_ADAPTIVE environment variable (same vocabulary as
// adaptive_mode_from_string); `dflt` when unset or unparsable.
AdaptiveMode adaptive_mode_from_env(AdaptiveMode dflt = AdaptiveMode::kOff);

// Canonical scheme label used in benchmark output, e.g. "MSA-1P".
std::string scheme_name(MaskedAlgo a, PhaseMode p);

}  // namespace msx
