// Serial reference oracle for Masked SpGEMM.
//
// Straightforward dense-accumulator (SPA) implementation used to validate
// every parallel algorithm in the test suite. Deliberately simple: one dense
// value array + occupancy flags, explicit mask application at gather time.
// Structural semantics: an output entry exists iff the mask admits it and at
// least one product contributed (numerically zero sums are kept).
#pragma once

#include <algorithm>
#include <vector>

#include "common/platform.hpp"
#include "core/options.hpp"
#include "matrix/csr.hpp"
#include "semiring/semirings.hpp"

namespace msx {

template <class SR, class IT, class VT, class MT>
  requires Semiring<SR>
CSRMatrix<IT, typename SR::value_type> reference_masked_spgemm(
    const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
    const CSRMatrix<IT, MT>& m, MaskKind kind = MaskKind::kMask) {
  using OVT = typename SR::value_type;
  check_arg(a.ncols() == b.nrows(), "inner dimension mismatch");
  check_arg(m.nrows() == a.nrows() && m.ncols() == b.ncols(),
            "mask shape mismatch");

  const IT nrows = a.nrows();
  const IT ncols = b.ncols();
  std::vector<OVT> dense(static_cast<std::size_t>(ncols), SR::zero());
  std::vector<char> occupied(static_cast<std::size_t>(ncols), 0);
  std::vector<IT> touched;

  std::vector<IT> rowptr(static_cast<std::size_t>(nrows) + 1, IT{0});
  std::vector<IT> colidx;
  std::vector<OVT> values;

  for (IT i = 0; i < nrows; ++i) {
    touched.clear();
    const auto arow = a.row(i);
    for (IT p = 0; p < arow.size(); ++p) {
      const auto aval = static_cast<OVT>(arow.vals[p]);
      const auto brow = b.row(arow.cols[p]);
      for (IT q = 0; q < brow.size(); ++q) {
        const IT j = brow.cols[q];
        const auto prod = SR::mul(aval, static_cast<OVT>(brow.vals[q]));
        if (occupied[static_cast<std::size_t>(j)]) {
          dense[static_cast<std::size_t>(j)] =
              SR::add(dense[static_cast<std::size_t>(j)], prod);
        } else {
          occupied[static_cast<std::size_t>(j)] = 1;
          dense[static_cast<std::size_t>(j)] = prod;
          touched.push_back(j);
        }
      }
    }

    const auto mrow = m.row(i);
    if (kind == MaskKind::kMask) {
      for (IT p = 0; p < mrow.size(); ++p) {
        const IT j = mrow.cols[p];
        if (occupied[static_cast<std::size_t>(j)]) {
          colidx.push_back(j);
          values.push_back(dense[static_cast<std::size_t>(j)]);
        }
      }
    } else {
      std::sort(touched.begin(), touched.end());
      for (IT j : touched) {
        const bool masked = std::binary_search(mrow.cols.begin(),
                                               mrow.cols.end(), j);
        if (!masked) {
          colidx.push_back(j);
          values.push_back(dense[static_cast<std::size_t>(j)]);
        }
      }
    }
    rowptr[static_cast<std::size_t>(i) + 1] = static_cast<IT>(colidx.size());

    for (IT j : touched) {
      occupied[static_cast<std::size_t>(j)] = 0;
      dense[static_cast<std::size_t>(j)] = SR::zero();
    }
  }

  return CSRMatrix<IT, OVT>(nrows, ncols, std::move(rowptr), std::move(colidx),
                            std::move(values));
}

}  // namespace msx
