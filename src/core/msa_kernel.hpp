// MSA row kernel — push-based Masked SpGEMM with the Masked Sparse
// Accumulator (paper §5.2, Algorithm 2).
//
// Per output row i:   v = m ⊙ Σ_{A(i,k)≠0} A(i,k) · B(k,:)
// The accumulator's ALLOWED states are seeded from the mask row, every
// product is offered lazily (never evaluated for masked-out columns), and
// the gather walks the mask row so the output inherits its ordering.
#pragma once

#include <algorithm>
#include <cstdint>

#include "accum/msa.hpp"
#include "core/kernel_common.hpp"
#include "matrix/csr.hpp"
#include "semiring/semirings.hpp"

namespace msx {

// AccOverride substitutes a different accumulator with the same interface
// (e.g. MSABitmapMasked); void selects the paper's byte-state MSA.
template <class SR, class IT, class VT, bool Complemented,
          class AccOverride = void>
  requires Semiring<SR>
class MSAKernel {
 public:
  using index_type = IT;
  using output_value = typename SR::value_type;
  using Acc = std::conditional_t<
      std::is_void_v<AccOverride>,
      std::conditional_t<Complemented, MSAComplement<IT, output_value>,
                         MSAMasked<IT, output_value>>,
      AccOverride>;

  struct Workspace {
    Acc acc;
    // Accumulator column bound for the current partition block (0 = full
    // matrix width). Set by begin_block under the flop-balanced schedule.
    std::int64_t col_bound = 0;
    void reset() {
      acc.clear();
      col_bound = 0;
    }
  };

  MSAKernel(const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
            MaskView<IT> m)
      : a_(a), b_(b), m_(m) {}

  IT nrows() const { return a_.nrows(); }
  IT ncols() const { return b_.ncols(); }

  std::size_t upper_bound_row(IT i) const {
    return detail::masked_upper_bound(
        a_, b_, m_, i,
        Complemented ? MaskKind::kComplement : MaskKind::kMask);
  }

  std::size_t cost_row(IT i, CostModel model) const {
    return detail::push_row_cost(a_, b_, m_, i, model);
  }

  double work_hint() const { return detail::push_work_hint(a_, b_); }

  // Per-block accumulator sizing: the MSA state/value arrays are dense over
  // the matrix width, but only ever probed at columns the block's rows can
  // touch — so the phase driver sizes them by the block's widest row.
  std::int64_t width_row(IT i) const {
    return detail::push_row_width(a_, b_, m_, i);
  }
  void begin_block(Workspace& ws, std::int64_t width) const {
    ws.col_bound = width;
  }

  IT numeric_row(Workspace& ws, IT i, IT* out_cols,
                 output_value* out_vals) const {
    const auto arow = a_.row(i);
    const auto mrow = m_.row(i);
    if (arow.empty()) return 0;
    if constexpr (!Complemented) {
      if (mrow.empty()) return 0;
    }
    auto& acc = ws.acc;
    acc.init(acc_cols(ws));
    acc.prepare(mrow);
    constexpr auto add = [](output_value x, output_value y) {
      return SR::add(x, y);
    };
    for (IT p = 0; p < arow.size(); ++p) {
      const auto aval = static_cast<output_value>(arow.vals[p]);
      const auto brow = b_.row(arow.cols[p]);
      for (IT q = 0; q < brow.size(); ++q) {
        acc.insert(
            brow.cols[q],
            [&] { return SR::mul(aval, static_cast<output_value>(brow.vals[q])); },
            add);
      }
    }
    return acc.gather_and_reset(mrow, out_cols, out_vals);
  }

  IT symbolic_row(Workspace& ws, IT i) const {
    const auto arow = a_.row(i);
    const auto mrow = m_.row(i);
    if (arow.empty()) return 0;
    if constexpr (!Complemented) {
      if (mrow.empty()) return 0;
    }
    auto& acc = ws.acc;
    acc.init(acc_cols(ws));
    acc.prepare(mrow);
    IT cnt = 0;
    for (IT p = 0; p < arow.size(); ++p) {
      const auto brow = b_.row(arow.cols[p]);
      for (IT q = 0; q < brow.size(); ++q) {
        cnt += acc.insert_symbolic(brow.cols[q]);
      }
    }
    acc.reset(mrow);
    return cnt;
  }

 private:
  // Columns the accumulator must cover for the current block: the block
  // width when the partition provided one, the full matrix width otherwise.
  IT acc_cols(const Workspace& ws) const {
    if (ws.col_bound <= 0) return b_.ncols();
    return static_cast<IT>(std::min<std::int64_t>(
        ws.col_bound, static_cast<std::int64_t>(b_.ncols())));
  }

  const CSRMatrix<IT, VT>& a_;
  const CSRMatrix<IT, VT>& b_;
  MaskView<IT> m_;
};

}  // namespace msx
