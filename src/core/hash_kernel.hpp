// Hash row kernel — push-based Masked SpGEMM with the hash accumulator
// (paper §5.3).
//
// Identical control flow to the MSA kernel, but the accumulator's working
// set is O(nnz(mask row)) rather than O(ncols): initialization no longer
// depends on the matrix width, at the price of hashing each access.
#pragma once

#include <algorithm>
#include <cstdint>

#include "accum/hash.hpp"
#include "core/kernel_common.hpp"
#include "matrix/csr.hpp"
#include "semiring/semirings.hpp"

namespace msx {

template <class SR, class IT, class VT, bool Complemented>
  requires Semiring<SR>
class HashKernel {
 public:
  using index_type = IT;
  using output_value = typename SR::value_type;
  using Acc = std::conditional_t<Complemented,
                                 HashComplement<IT, output_value>,
                                 HashMasked<IT, output_value>>;

  struct Workspace {
    Acc acc;
    // Block column bound (0 = none). The masked table is already sized per
    // row; the complemented table's extra-key bound is capped by it, since
    // no key of the block reaches past the block width.
    std::int64_t col_bound = 0;
    void reset() {
      acc.clear();
      col_bound = 0;
    }
  };

  HashKernel(const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
             MaskView<IT> m)
      : a_(a), b_(b), m_(m) {}

  IT nrows() const { return a_.nrows(); }
  IT ncols() const { return b_.ncols(); }

  std::size_t upper_bound_row(IT i) const {
    return detail::masked_upper_bound(
        a_, b_, m_, i,
        Complemented ? MaskKind::kComplement : MaskKind::kMask);
  }

  std::size_t cost_row(IT i, CostModel model) const {
    return detail::push_row_cost(a_, b_, m_, i, model);
  }

  double work_hint() const { return detail::push_work_hint(a_, b_); }

  // Per-block sizing only pays for the complemented table (the masked table
  // tracks nnz(mask row) regardless of the matrix width).
  std::int64_t width_row(IT i) const
    requires Complemented
  {
    return detail::push_row_width(a_, b_, m_, i);
  }
  void begin_block(Workspace& ws, std::int64_t width) const
    requires Complemented
  {
    ws.col_bound = width;
  }

  IT numeric_row(Workspace& ws, IT i, IT* out_cols,
                 output_value* out_vals) const {
    const auto arow = a_.row(i);
    const auto mrow = m_.row(i);
    if (arow.empty()) return 0;
    if constexpr (!Complemented) {
      if (mrow.empty()) return 0;
    }
    auto& acc = ws.acc;
    if constexpr (Complemented) {
      acc.prepare(mrow, extra_bound(ws, i));
    } else {
      acc.prepare(mrow);
    }
    constexpr auto add = [](output_value x, output_value y) {
      return SR::add(x, y);
    };
    for (IT p = 0; p < arow.size(); ++p) {
      const auto aval = static_cast<output_value>(arow.vals[p]);
      const auto brow = b_.row(arow.cols[p]);
      for (IT q = 0; q < brow.size(); ++q) {
        acc.insert(
            brow.cols[q],
            [&] { return SR::mul(aval, static_cast<output_value>(brow.vals[q])); },
            add);
      }
    }
    if constexpr (Complemented) {
      return acc.gather(out_cols, out_vals);
    } else {
      return acc.gather(mrow, out_cols, out_vals);
    }
  }

  IT symbolic_row(Workspace& ws, IT i) const {
    const auto arow = a_.row(i);
    const auto mrow = m_.row(i);
    if (arow.empty()) return 0;
    if constexpr (!Complemented) {
      if (mrow.empty()) return 0;
    }
    auto& acc = ws.acc;
    if constexpr (Complemented) {
      acc.prepare(mrow, extra_bound(ws, i));
    } else {
      acc.prepare(mrow);
    }
    IT cnt = 0;
    for (IT p = 0; p < arow.size(); ++p) {
      const auto brow = b_.row(arow.cols[p]);
      for (IT q = 0; q < brow.size(); ++q) {
        cnt += acc.insert_symbolic(brow.cols[q]);
      }
    }
    return cnt;
  }

 private:
  // Complemented rows can insert at most min(upper bound, block width)
  // distinct non-mask keys: every insertable key is a column index below the
  // block width.
  std::size_t extra_bound(const Workspace& ws, IT i) const {
    const std::size_t bound = upper_bound_row(i);
    if (ws.col_bound <= 0) return bound;
    return std::min(bound, static_cast<std::size_t>(ws.col_bound));
  }

  const CSRMatrix<IT, VT>& a_;
  const CSRMatrix<IT, VT>& b_;
  MaskView<IT> m_;
};

}  // namespace msx
