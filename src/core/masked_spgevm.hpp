// Masked sparse vector-matrix product: v⊺ = m⊺ ⊙ (u⊺B).
//
// This is the operation the paper's Algorithms 2–4 are stated on (§5): one
// row of Masked SpGEMM. The implementation reuses the matrix kernels by
// viewing u and m as 1×n matrices, so every algorithm family, phase mode and
// mask kind of the matrix API is available — and the SpGEVM results are
// guaranteed consistent with the SpGEMM ones.
//
// The sparse-vector form is what masked traversals consume: a BFS/BC
// frontier step is exactly  next = ¬visited ⊙ (frontier⊺ · A).
#pragma once

#include <utility>
#include <vector>

#include "core/masked_spgemm.hpp"
#include "matrix/csc.hpp"
#include "matrix/csr.hpp"
#include "semiring/semirings.hpp"
#include "vector/sparse_vector.hpp"

namespace msx {

namespace detail {

// Wraps a sparse vector as a single-row CSR matrix (copies the index/value
// arrays; O(nnz), negligible next to the product itself).
template <class IT, class VT>
CSRMatrix<IT, VT> as_row_matrix(const SparseVector<IT, VT>& v) {
  return CSRMatrix<IT, VT>(
      1, v.size(), {IT{0}, static_cast<IT>(v.nnz())},
      std::vector<IT>(v.indices().begin(), v.indices().end()),
      std::vector<VT>(v.values().begin(), v.values().end()));
}

template <class IT, class VT>
SparseVector<IT, VT> first_row_as_vector(const CSRMatrix<IT, VT>& m) {
  const auto row = m.row(0);
  return SparseVector<IT, VT>(
      m.ncols(), std::vector<IT>(row.cols.begin(), row.cols.end()),
      std::vector<VT>(row.vals.begin(), row.vals.end()));
}

}  // namespace detail

// v = m ⊙ (u⊺B) on semiring SR. u's size must equal B's row count; the mask
// and result have B's column count.
template <class SR, class IT, class VT, class MT>
  requires Semiring<SR>
SparseVector<IT, typename SR::value_type> masked_spgevm(
    const SparseVector<IT, VT>& u, const CSRMatrix<IT, VT>& b,
    const SparseVector<IT, MT>& m, const MaskedOptions& opts = {}) {
  check_arg(u.size() == b.nrows(), "masked_spgevm: u size != B rows");
  check_arg(m.size() == b.ncols(), "masked_spgevm: mask size != B cols");
  const auto urow = detail::as_row_matrix(u);
  const auto mrow = detail::as_row_matrix(m);
  auto c = masked_spgemm<SR>(urow, b, mrow, opts);
  return detail::first_row_as_vector(c);
}

// Same with a caller-prepared CSC copy of B (for the pull-based algorithms;
// avoids a per-call transpose, which matters when SpGEVM runs in a loop as
// in direction-optimized traversals).
template <class SR, class IT, class VT, class MT>
  requires Semiring<SR>
SparseVector<IT, typename SR::value_type> masked_spgevm_with_csc(
    const SparseVector<IT, VT>& u, const CSRMatrix<IT, VT>& b,
    const CSCMatrix<IT, VT>& b_csc, const SparseVector<IT, MT>& m,
    const MaskedOptions& opts = {}) {
  check_arg(u.size() == b.nrows(), "masked_spgevm: u size != B rows");
  check_arg(m.size() == b.ncols(), "masked_spgevm: mask size != B cols");
  const auto urow = detail::as_row_matrix(u);
  const auto mrow = detail::as_row_matrix(m);
  auto c = masked_spgemm_with_csc<SR>(urow, b, b_csc, mrow, opts);
  return detail::first_row_as_vector(c);
}

}  // namespace msx
