// Kernel registry: one table mapping (MaskedAlgo, MaskKind) to type-erased
// kernel factories.
//
// Replaces the monolithic switch that used to live in detail::dispatch. Each
// algorithm family registers exactly one Entry per supported mask kind; an
// absent pair (e.g. MCA × complement) is how "unsupported" is expressed.
// Documented fallbacks (MSABitmap complement running the byte-state MSA,
// HeapDot forcing NInspect = ∞) are encoded in the registered maker, so the
// whole decision surface is in this file.
//
// A factory produces a PlanKernelBase: a type-erased executable kernel that
// owns its per-thread workspaces. Binding operands is cheap and repeatable;
// the expensive accumulator state survives bind() so a MaskedPlan
// (core/plan.hpp) can execute many times — or rebind to new structure —
// without reallocating scratch memory. The stateless masked_spgemm free
// functions run a throwaway instance of the same machinery.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "accum/msa_bitmap.hpp"
#include "adaptive/adaptive_kernel.hpp"
#include "common/thread_annotations.hpp"
#include "common/timer.hpp"
#include "core/hash_kernel.hpp"
#include "core/heap_kernel.hpp"
#include "core/hybrid_kernel.hpp"
#include "core/inner_kernel.hpp"
#include "core/mca_kernel.hpp"
#include "core/msa_kernel.hpp"
#include "core/options.hpp"
#include "core/phase_driver.hpp"
#include "matrix/csc.hpp"
#include "matrix/csr.hpp"
#include "semiring/semirings.hpp"

namespace msx {

// Operand bundle a plan kernel binds to. `b_csc` must be non-null iff the
// matching registry entry has needs_csc set.
template <class IT, class VT>
struct KernelOperands {
  const CSRMatrix<IT, VT>* a = nullptr;
  const CSRMatrix<IT, VT>* b = nullptr;
  const CSCMatrix<IT, VT>* b_csc = nullptr;
  MaskView<IT> mask;
};

// Type-erased executable kernel. Implementations hold the concrete row
// kernel plus a PerThread<Workspace> pool that persists across bind()/run().
template <class SR, class IT, class VT>
class PlanKernelBase {
 public:
  using output_matrix = CSRMatrix<IT, typename SR::value_type>;

  virtual ~PlanKernelBase() = default;

  // (Re)binds operands and options. Retains per-thread workspaces — this is
  // the cheap half of the plan/execute split.
  virtual void bind(const KernelOperands<IT, VT>& in,
                    const MaskedOptions& opts) = 0;

  // Runs the phase driver over the bound operands. `symbolic` (optional)
  // carries a cached two-phase rowptr across calls; `partition` (optional)
  // carries the flop-balanced row partition the same way. `ctx` decides who
  // executes the passes (OpenMP team, the calling thread, or a task arena)
  // and how many workspace slots the run leases. `timings` (optional)
  // receives the run's per-block numeric-pass wall time — adaptive plans
  // feed it to the FeedbackStore. Concurrent run() calls are safe once the
  // caches are warm (each leases its own workspace pool); bind() must not
  // race with run().
  virtual output_matrix run(TwoPhaseCache<IT>* symbolic,
                            PartitionCache* partition, const ExecContext& ctx,
                            BlockTimings* timings) = 0;

  output_matrix run(TwoPhaseCache<IT>* symbolic,
                    PartitionCache* partition = nullptr) {
    return run(symbolic, partition, ExecContext::openmp(), nullptr);
  }

  output_matrix run(TwoPhaseCache<IT>* symbolic, PartitionCache* partition,
                    const ExecContext& ctx) {
    return run(symbolic, partition, ctx, nullptr);
  }

  // Releases all per-thread scratch memory (accumulator arrays, heaps).
  // The next run() regrows them on demand.
  virtual void reset_workspaces() = 0;

  // Time the most recent run() spent on lazy setup (workspace-pool
  // allocation). ~0 once the pool exists — what plan reuse amortizes.
  virtual double last_setup_seconds() const = 0;

  // Recomputes the exact two-phase symbolic count for just the listed rows
  // (counts[j] = |C(rows[j], :)|). Serial on the calling thread — the delta
  // path patches a handful of rows, not the matrix. rows and counts must be
  // the same length.
  virtual void symbolic_rows(std::span<const IT> rows,
                             std::span<IT> counts) = 0;

  // For kernels with per-block accumulator sizing: recompute block_width for
  // every partition block that intersects the sorted `rows` list (a delta
  // can widen a row past the cached block bound — a stale-small bound would
  // undersize the accumulator). Returns the number of blocks refreshed; 0
  // for kernels without block sizing or when no widths are cached.
  virtual int refresh_block_widths(RowPartition& part,
                                   std::span<const IT> rows) = 0;
};

namespace detail {

// Concrete plan kernel: Maker::make(operands, opts) constructs the row
// kernel; workspaces outlive rebinds so accumulators keep their capacity.
template <class SR, class IT, class VT, class Maker>
class PlanKernelImpl final : public PlanKernelBase<SR, IT, VT> {
 public:
  using Kernel = decltype(Maker::make(
      std::declval<const KernelOperands<IT, VT>&>(),
      std::declval<const MaskedOptions&>()));
  using Workspace = typename Kernel::Workspace;
  using output_matrix = typename PlanKernelBase<SR, IT, VT>::output_matrix;

  void bind(const KernelOperands<IT, VT>& in,
            const MaskedOptions& opts) override {
    kernel_.emplace(Maker::make(in, opts));
    opts_ = opts;
  }

  output_matrix run(TwoPhaseCache<IT>* symbolic, PartitionCache* partition,
                    const ExecContext& ctx, BlockTimings* timings) override {
    check_arg(kernel_.has_value(), "plan kernel: run() before bind()");
    // Lease a workspace pool for this run. Sequential executes keep reusing
    // the same pool (the plan-reuse win); concurrent executes each get their
    // own, so jobs never share accumulators (the lease pool grows to the
    // observed concurrency and is retained for later runs).
    WorkspaceLease lease = lease_workspaces(
        static_cast<std::size_t>(ctx.concurrency(opts_.threads)));
    return run_masked_kernel(*kernel_, opts_, *lease.pool, symbolic,
                             partition, ctx, timings);
  }

  void reset_workspaces() override {
    MutexLock lock(&ws_mu_);
    for (auto& pool : ws_free_) {
      for (std::size_t t = 0; t < pool->size(); ++t) {
        pool->slot(t).reset();
      }
    }
  }

  double last_setup_seconds() const override {
    return last_setup_seconds_.load(std::memory_order_relaxed);
  }

  void symbolic_rows(std::span<const IT> rows,
                     std::span<IT> counts) override {
    check_arg(kernel_.has_value(),
              "plan kernel: symbolic_rows() before bind()");
    check_arg(rows.size() == counts.size(),
              "plan kernel: symbolic_rows spans must be the same length");
    WorkspaceLease lease = lease_workspaces(1);
    auto& ws = lease.pool->slot(0);
    if constexpr (kHasBlockSizing) {
      // Clear any per-block bound a previous partitioned run left behind —
      // these rows are evaluated at full matrix width.
      kernel_->begin_block(ws, 0);
    }
    for (std::size_t j = 0; j < rows.size(); ++j) {
      counts[j] = kernel_->symbolic_row(ws, rows[j]);
    }
  }

  int refresh_block_widths(RowPartition& part,
                           std::span<const IT> rows) override {
    check_arg(kernel_.has_value(),
              "plan kernel: refresh_block_widths() before bind()");
    if constexpr (kHasBlockSizing) {
      if (part.block_width.empty() || rows.empty()) return 0;
      const auto& bs = part.block_start;
      int refreshed = 0;
      std::size_t r = 0;  // cursor into the sorted touched-row list
      for (int blk = 0; blk < part.blocks(); ++blk) {
        const std::int64_t lo = bs[static_cast<std::size_t>(blk)];
        const std::int64_t hi = bs[static_cast<std::size_t>(blk) + 1];
        while (r < rows.size() && static_cast<std::int64_t>(rows[r]) < lo) {
          ++r;
        }
        if (r >= rows.size()) break;
        if (static_cast<std::int64_t>(rows[r]) >= hi) continue;
        std::int64_t w = 0;
        for (std::int64_t i = lo; i < hi; ++i) {
          w = std::max(w, static_cast<std::int64_t>(
                              kernel_->width_row(static_cast<IT>(i))));
        }
        part.block_width[static_cast<std::size_t>(blk)] = w;
        ++refreshed;
        while (r < rows.size() && static_cast<std::int64_t>(rows[r]) < hi) {
          ++r;
        }
      }
      return refreshed;
    } else {
      (void)part;
      (void)rows;
      return 0;
    }
  }

 private:
  static constexpr bool kHasBlockSizing =
      requires(const Kernel& k, Workspace& w) {
        { k.width_row(IT{0}) } -> std::convertible_to<std::int64_t>;
        k.begin_block(w, std::int64_t{});
      };

  // RAII lease: returns the pool to the free list when the run finishes
  // (including on exceptions).
  struct WorkspaceLease {
    PlanKernelImpl* owner = nullptr;
    std::unique_ptr<PerThread<Workspace>> pool;
    ~WorkspaceLease() {
      if (pool != nullptr) {
        MutexLock lock(&owner->ws_mu_);
        owner->ws_free_.push_back(std::move(pool));
      }
    }
  };

  WorkspaceLease lease_workspaces(std::size_t needed) {
    std::unique_ptr<PerThread<Workspace>> pool;
    {
      MutexLock lock(&ws_mu_);
      if (!ws_free_.empty()) {
        pool = std::move(ws_free_.back());
        ws_free_.pop_back();
      }
    }
    if (pool == nullptr || pool->size() < needed) {
      WallTimer timer;
      pool = std::make_unique<PerThread<Workspace>>(
          static_cast<int>(needed));
      last_setup_seconds_.store(timer.seconds(), std::memory_order_relaxed);
    } else {
      last_setup_seconds_.store(0.0, std::memory_order_relaxed);
    }
    return WorkspaceLease{this, std::move(pool)};
  }

  std::optional<Kernel> kernel_;
  Mutex ws_mu_{LockRank::kKernelWorkspace, "PlanKernelImpl::ws_mu_"};
  std::vector<std::unique_ptr<PerThread<Workspace>>> ws_free_
      MSX_GUARDED_BY(ws_mu_);
  MaskedOptions opts_;
  std::atomic<double> last_setup_seconds_{0.0};
};

// --- makers: how each registry entry constructs its row kernel ---

template <class SR, class IT, class VT, bool Complemented>
struct MakeMSA {
  static auto make(const KernelOperands<IT, VT>& in, const MaskedOptions&) {
    return MSAKernel<SR, IT, VT, Complemented>(*in.a, *in.b, in.mask);
  }
};

template <class SR, class IT, class VT>
struct MakeMSABitmap {
  static auto make(const KernelOperands<IT, VT>& in, const MaskedOptions&) {
    return MSAKernel<SR, IT, VT, false,
                     MSABitmapMasked<IT, typename SR::value_type>>(
        *in.a, *in.b, in.mask);
  }
};

template <class SR, class IT, class VT, bool Complemented>
struct MakeHash {
  static auto make(const KernelOperands<IT, VT>& in, const MaskedOptions&) {
    return HashKernel<SR, IT, VT, Complemented>(*in.a, *in.b, in.mask);
  }
};

template <class SR, class IT, class VT>
struct MakeMCA {
  static auto make(const KernelOperands<IT, VT>& in, const MaskedOptions&) {
    return MCAKernel<SR, IT, VT>(*in.a, *in.b, in.mask);
  }
};

// ForceInfinity distinguishes HeapDot (NInspect = ∞ regardless of options)
// from Heap (the caller's heap_ninspect, honoured for both mask kinds —
// the complement path uses complement-aware look-ahead, see heap_kernel.hpp).
template <class SR, class IT, class VT, bool Complemented, bool ForceInfinity>
struct MakeHeap {
  static auto make(const KernelOperands<IT, VT>& in,
                   const MaskedOptions& opts) {
    const std::size_t ninspect =
        ForceInfinity ? kNInspectInfinity : opts.heap_ninspect;
    return HeapKernel<SR, IT, VT, Complemented>(*in.a, *in.b, in.mask,
                                                ninspect);
  }
};

template <class SR, class IT, class VT, bool Complemented>
struct MakeInner {
  static auto make(const KernelOperands<IT, VT>& in,
                   const MaskedOptions& opts) {
    return InnerKernel<SR, IT, VT, Complemented>(*in.a, *in.b_csc, in.mask,
                                                 opts.inner_gallop);
  }
};

template <class SR, class IT, class VT, bool Complemented>
struct MakeHybrid {
  static auto make(const KernelOperands<IT, VT>& in, const MaskedOptions&) {
    return HybridKernel<SR, IT, VT, Complemented>(*in.a, *in.b, *in.b_csc,
                                                  in.mask);
  }
};

// Adaptive per-block engine (src/adaptive/): one kernel owning the sparse /
// bitmap / dense push engines and dispatching per partition block. Not a
// table entry — MaskedOptions::adaptive is fingerprint-neutral and must not
// change which (algo, kind) pair a plan resolves to, so the plan swaps the
// factory itself (see adaptive_factory below and MaskedPlan's ctor).
template <class SR, class IT, class VT, bool Complemented>
struct MakeAdaptive {
  static auto make(const KernelOperands<IT, VT>& in,
                   const MaskedOptions& opts) {
    return adaptive::AdaptiveKernel<SR, IT, VT, Complemented>(
        *in.a, *in.b, in.mask, opts.adaptive);
  }
};

}  // namespace detail

// The registry itself: a static table, one row per supported
// (algorithm, mask-kind) pair. New algorithm families register here and
// nowhere else.
template <class SR, class IT, class VT>
  requires Semiring<SR>
struct KernelRegistry {
  using Base = PlanKernelBase<SR, IT, VT>;
  using Factory = std::unique_ptr<Base> (*)();

  struct Entry {
    MaskedAlgo algo;
    MaskKind kind;
    bool needs_csc;  // entry requires operands.b_csc (pull-based families)
    Factory make;
  };

  template <class Maker>
  static std::unique_ptr<Base> factory() {
    return std::make_unique<detail::PlanKernelImpl<SR, IT, VT, Maker>>();
  }

  static std::span<const Entry> entries() {
    using namespace detail;
    static const std::array<Entry, 15> table = {{
        {MaskedAlgo::kMSA, MaskKind::kMask, false,
         &factory<MakeMSA<SR, IT, VT, false>>},
        {MaskedAlgo::kMSA, MaskKind::kComplement, false,
         &factory<MakeMSA<SR, IT, VT, true>>},
        {MaskedAlgo::kHash, MaskKind::kMask, false,
         &factory<MakeHash<SR, IT, VT, false>>},
        {MaskedAlgo::kHash, MaskKind::kComplement, false,
         &factory<MakeHash<SR, IT, VT, true>>},
        // MCA × complement is deliberately absent (paper §8.4).
        {MaskedAlgo::kMCA, MaskKind::kMask, false,
         &factory<MakeMCA<SR, IT, VT>>},
        {MaskedAlgo::kHeap, MaskKind::kMask, false,
         &factory<MakeHeap<SR, IT, VT, false, false>>},
        {MaskedAlgo::kHeap, MaskKind::kComplement, false,
         &factory<MakeHeap<SR, IT, VT, true, false>>},
        {MaskedAlgo::kHeapDot, MaskKind::kMask, false,
         &factory<MakeHeap<SR, IT, VT, false, true>>},
        {MaskedAlgo::kHeapDot, MaskKind::kComplement, false,
         &factory<MakeHeap<SR, IT, VT, true, true>>},
        {MaskedAlgo::kInner, MaskKind::kMask, true,
         &factory<MakeInner<SR, IT, VT, false>>},
        {MaskedAlgo::kInner, MaskKind::kComplement, true,
         &factory<MakeInner<SR, IT, VT, true>>},
        {MaskedAlgo::kHybrid, MaskKind::kMask, true,
         &factory<MakeHybrid<SR, IT, VT, false>>},
        {MaskedAlgo::kHybrid, MaskKind::kComplement, true,
         &factory<MakeHybrid<SR, IT, VT, true>>},
        {MaskedAlgo::kMSABitmap, MaskKind::kMask, false,
         &factory<MakeMSABitmap<SR, IT, VT>>},
        // Extension fallback: the bitmap layout keeps no touched list, so
        // complemented calls run the byte-state complement MSA.
        {MaskedAlgo::kMSABitmap, MaskKind::kComplement, false,
         &factory<MakeMSA<SR, IT, VT, true>>},
    }};
    return table;
  }

  // nullptr when the pair is unsupported; callers turn that into an
  // invalid_argument with a family-specific message (see unsupported_combo
  // in core/plan.cpp).
  static const Entry* find(MaskedAlgo algo, MaskKind kind) {
    for (const Entry& e : entries()) {
      if (e.algo == algo && e.kind == kind) return &e;
    }
    return nullptr;
  }

  // Factory for the adaptive engine (never needs a CSC mirror — all three of
  // its engines are push-based). Used when adaptive::engine_eligible says the
  // resolved algorithm's kernel can be replaced; deliberately outside the
  // table so the (algo, kind) decision surface is unchanged by the knob.
  static Factory adaptive_factory(MaskKind kind) {
    using namespace detail;
    return kind == MaskKind::kComplement
               ? &factory<MakeAdaptive<SR, IT, VT, true>>
               : &factory<MakeAdaptive<SR, IT, VT, false>>;
  }
};

}  // namespace msx
