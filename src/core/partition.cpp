#include "core/partition.hpp"

#include <algorithm>

#include "common/platform.hpp"

namespace msx {

int partition_target_blocks(int workers) {
  if (workers < 1) workers = 1;
  return 8 * workers;
}

RowPartition partition_from_cost_prefix(std::span<const std::uint64_t> prefix,
                                        int nblocks) {
  check_arg(!prefix.empty() && prefix.front() == 0,
            "partition: prefix must have nrows+1 entries starting at 0");
  const auto nrows = static_cast<std::int64_t>(prefix.size()) - 1;

  RowPartition part;
  if (nrows == 0) {
    part.block_start = {0};
    return part;
  }

  const auto nb = static_cast<std::int64_t>(
      std::max<std::int64_t>(1, std::min<std::int64_t>(nblocks, nrows)));
  const std::uint64_t total = prefix.back();

  part.block_start.reserve(static_cast<std::size_t>(nb) + 1);
  part.block_start.push_back(0);
  for (std::int64_t b = 1; b < nb; ++b) {
    std::int64_t boundary;
    if (total == 0) {
      boundary = nrows * b / nb;  // no cost signal: even row split
    } else {
      // First row index whose prefix cost reaches b/nb of the total. The
      // intermediate product needs 128 bits: total can exceed 2^32 flops.
      const auto target = static_cast<std::uint64_t>(
          static_cast<unsigned __int128>(total) * static_cast<std::uint64_t>(b) /
          static_cast<std::uint64_t>(nb));
      boundary = std::lower_bound(prefix.begin(), prefix.end(), target) -
                 prefix.begin();
    }
    // Keep boundaries strictly increasing and leave one row for each of the
    // remaining blocks (nb <= nrows guarantees the window is non-empty).
    // When one hub row swallows several targets this is what isolates it in
    // a block of its own instead of emitting empty blocks.
    const std::int64_t lo = part.block_start.back() + 1;
    const std::int64_t hi = nrows - (nb - b);
    part.block_start.push_back(std::clamp(boundary, lo, hi));
  }
  part.block_start.push_back(nrows);
  return part;
}

}  // namespace msx
