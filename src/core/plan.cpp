#include "core/plan.hpp"

#include <string>

#include "core/options.hpp"

namespace msx {
namespace detail {

MaskedAlgo choose_auto_algo(double rows, double a_nnz, double b_nnz,
                            double m_nnz, std::int64_t b_ncols,
                            MaskKind kind) {
  if (kind == MaskKind::kComplement) return MaskedAlgo::kMSA;
  const double r = rows > 0.0 ? rows : 1.0;
  const double dm = m_nnz / r;
  const double din = 0.5 * (a_nnz + b_nnz) / r;
  if (dm * 8.0 <= din) return MaskedAlgo::kInner;
  if (din * 8.0 <= dm) return MaskedAlgo::kHeap;
  return b_ncols <= (std::int64_t{1} << 16) ? MaskedAlgo::kMSA
                                            : MaskedAlgo::kHash;
}

std::string unsupported_combo_message(MaskedAlgo algo, MaskKind kind) {
  if (algo == MaskedAlgo::kMCA && kind == MaskKind::kComplement) {
    return "MCA does not support complemented masks (paper §8.4); choose "
           "MSA, Hash or Heap instead";
  }
  return std::string("masked_spgemm: algorithm ") + to_string(algo) +
         " does not support mask kind '" + to_string(kind) +
         "' (no kernel registered)";
}

}  // namespace detail
}  // namespace msx
