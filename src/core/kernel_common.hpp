// Shared pieces of the row kernels.
//
// Every kernel presents the same compile-time interface to the phase driver
// (core/phase_driver.hpp):
//
//   using index_type / output_value;
//   struct Workspace;                       // per-thread scratch
//   IT nrows() const; IT ncols() const;
//   std::size_t upper_bound_row(IT i) const;            // 1P allocation
//   IT symbolic_row(Workspace&, IT i) const;             // 2P pass 1
//   IT numeric_row(Workspace&, IT i, IT* cols, OVT* vals) const;
//   std::size_t cost_row(IT i, CostModel) const;         // optional: the
//       per-row work estimate behind Schedule::kFlopBalanced partitions
//       (kernels without it fall back to upper_bound_row + 1)
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "core/options.hpp"
#include "matrix/csr.hpp"

namespace msx {

namespace detail {

// Upper bound on a masked output row: the mask row itself (§5.4's
// observation). For complemented masks: at most every unmasked column, and
// no more than the row's flops.
template <class IT, class VTA, class VTB>
std::size_t masked_upper_bound(const CSRMatrix<IT, VTA>& a,
                               const CSRMatrix<IT, VTB>& b,
                               const MaskView<IT>& m, IT i, MaskKind kind) {
  const std::size_t mask_nnz = static_cast<std::size_t>(m.row_nnz(i));
  if (kind == MaskKind::kMask) return mask_nnz;
  std::size_t flops = 0;
  const auto arow = a.row(i);
  for (IT p = 0; p < arow.size(); ++p) {
    flops += static_cast<std::size_t>(b.row_nnz(arow.cols[p]));
  }
  const std::size_t unmasked =
      static_cast<std::size_t>(m.ncols) - mask_nnz;
  return std::min(flops, unmasked);
}

// O(1) whole-call work estimates — the scalar core shared by every kernel's
// work_hint() (the kAuto schedule's tiny-input cutoff, options.hpp) and the
// batch executor's moldable policy (runtime/batch.hpp). Push-based families
// do ~flops(A·B) work, approximated as nnz(A) times B's mean row degree;
// pull-based families do mask-driven work, approximated as nnz(M) times the
// mean combined row/column degree of the inputs.
inline double estimate_push_work(double a_nnz, double b_nnz, double b_nrows) {
  return a_nnz * (b_nnz / (b_nrows > 0.0 ? b_nrows : 1.0));
}

inline double estimate_pull_work(double m_nnz, double a_nnz, double b_nnz,
                                 double rows) {
  return m_nnz * ((a_nnz + b_nnz) / (rows > 0.0 ? rows : 1.0));
}

template <class IT, class VTA, class VTB>
double push_work_hint(const CSRMatrix<IT, VTA>& a,
                      const CSRMatrix<IT, VTB>& b) {
  return estimate_push_work(static_cast<double>(a.nnz()),
                            static_cast<double>(b.nnz()),
                            static_cast<double>(b.nrows()));
}

// Per-row column bound for dense-accumulator kernels: 1 + the highest column
// index row i can touch — any column of a B row the row multiplies with,
// plus the mask row itself (both mask kinds seed accumulator states from the
// mask). Relies on the CSR invariant that row columns are sorted, so each
// referenced row contributes its last column in O(1).
template <class IT, class VTA, class VTB>
std::int64_t push_row_width(const CSRMatrix<IT, VTA>& a,
                            const CSRMatrix<IT, VTB>& b, const MaskView<IT>& m,
                            IT i) {
  std::int64_t w = 0;
  const auto arow = a.row(i);
  for (IT p = 0; p < arow.size(); ++p) {
    const auto brow = b.row(arow.cols[p]);
    if (!brow.empty()) {
      w = std::max(
          w, static_cast<std::int64_t>(brow.cols[brow.cols.size() - 1]) + 1);
    }
  }
  const auto mrow = m.row(i);
  if (!mrow.empty()) {
    w = std::max(w,
                 static_cast<std::int64_t>(mrow[mrow.size() - 1]) + 1);
  }
  return w;
}

// Per-row cost estimate for push-based kernels, used by the flop-balanced
// partition (core/partition.hpp). The native (kAuto/kFlops) notion is the
// multiplies the row performs plus the mask walk; kMaskNnz substitutes the
// mask row size for workloads known to be gather-bound. The +1 keeps empty
// rows at a nominal cost so blocks of them still amortize loop overhead
// evenly instead of collapsing to zero-width boundaries.
template <class IT, class VTA, class VTB>
std::size_t push_row_cost(const CSRMatrix<IT, VTA>& a,
                          const CSRMatrix<IT, VTB>& b, const MaskView<IT>& m,
                          IT i, CostModel model) {
  if (model == CostModel::kMaskNnz) {
    return static_cast<std::size_t>(m.row_nnz(i)) + 1;
  }
  std::size_t flops = 0;
  const auto arow = a.row(i);
  for (IT p = 0; p < arow.size(); ++p) {
    flops += static_cast<std::size_t>(b.row_nnz(arow.cols[p]));
  }
  return flops + static_cast<std::size_t>(m.row_nnz(i)) + 1;
}

}  // namespace detail

}  // namespace msx
