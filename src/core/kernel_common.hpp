// Shared pieces of the row kernels.
//
// Every kernel presents the same compile-time interface to the phase driver
// (core/phase_driver.hpp):
//
//   using index_type / output_value;
//   struct Workspace;                       // per-thread scratch
//   IT nrows() const; IT ncols() const;
//   std::size_t upper_bound_row(IT i) const;            // 1P allocation
//   IT symbolic_row(Workspace&, IT i) const;             // 2P pass 1
//   IT numeric_row(Workspace&, IT i, IT* cols, OVT* vals) const;
//   std::size_t cost_row(IT i, CostModel) const;         // optional: the
//       per-row work estimate behind Schedule::kFlopBalanced partitions
//       (kernels without it fall back to upper_bound_row + 1)
#pragma once

#include <algorithm>
#include <cstddef>
#include <type_traits>

#include "core/options.hpp"
#include "matrix/csr.hpp"

namespace msx {

namespace detail {

// Upper bound on a masked output row: the mask row itself (§5.4's
// observation). For complemented masks: at most every unmasked column, and
// no more than the row's flops.
template <class IT, class VTA, class VTB>
std::size_t masked_upper_bound(const CSRMatrix<IT, VTA>& a,
                               const CSRMatrix<IT, VTB>& b,
                               const MaskView<IT>& m, IT i, MaskKind kind) {
  const std::size_t mask_nnz = static_cast<std::size_t>(m.row_nnz(i));
  if (kind == MaskKind::kMask) return mask_nnz;
  std::size_t flops = 0;
  const auto arow = a.row(i);
  for (IT p = 0; p < arow.size(); ++p) {
    flops += static_cast<std::size_t>(b.row_nnz(arow.cols[p]));
  }
  const std::size_t unmasked =
      static_cast<std::size_t>(m.ncols) - mask_nnz;
  return std::min(flops, unmasked);
}

// Per-row cost estimate for push-based kernels, used by the flop-balanced
// partition (core/partition.hpp). The native (kAuto/kFlops) notion is the
// multiplies the row performs plus the mask walk; kMaskNnz substitutes the
// mask row size for workloads known to be gather-bound. The +1 keeps empty
// rows at a nominal cost so blocks of them still amortize loop overhead
// evenly instead of collapsing to zero-width boundaries.
template <class IT, class VTA, class VTB>
std::size_t push_row_cost(const CSRMatrix<IT, VTA>& a,
                          const CSRMatrix<IT, VTB>& b, const MaskView<IT>& m,
                          IT i, CostModel model) {
  if (model == CostModel::kMaskNnz) {
    return static_cast<std::size_t>(m.row_nnz(i)) + 1;
  }
  std::size_t flops = 0;
  const auto arow = a.row(i);
  for (IT p = 0; p < arow.size(); ++p) {
    flops += static_cast<std::size_t>(b.row_nnz(arow.cols[p]));
  }
  return flops + static_cast<std::size_t>(m.row_nnz(i)) + 1;
}

}  // namespace detail

}  // namespace msx
