// Plan/execute API for repeated Masked SpGEMM — the seam the iterative
// workloads of the paper (§8.2–§8.4: triangle counting, k-truss, BC) stand
// on.
//
// A stateless masked_spgemm call re-resolves kAuto, re-transposes B for the
// pull-based families and reallocates every per-thread accumulator on every
// invocation. masked_plan<SR>(A, B, M, opts) pays those costs once and
// returns a MaskedPlan that can run the product many times:
//
//   auto plan = msx::masked_plan<msx::PlusTimes<double>>(a, b, m, opts);
//   auto c1 = plan.execute();                  // full speed, no setup
//   auto c2 = plan.execute();                  // reuses workspaces + caches
//   auto c3 = plan.execute_values(av, bv);     // new numerics, same pattern
//   plan.rebind(a2, b2, m2);                   // new structure, warm scratch
//
// What the plan retains between calls:
//   * the resolved algorithm (kAuto is decided once, at plan time),
//   * a cached CSC copy of B plus a value-refresh permutation (Inner/Hybrid),
//   * the per-thread accumulator workspaces (PerThread<Workspace>),
//   * the two-phase symbolic rowptr (valid until the structure changes),
//   * the flop-balanced row partition (Schedule::kFlopBalanced; same
//     lifetime as the symbolic rowptr).
//
// The plan owns copies of its operands, so callers may drop or mutate their
// matrices freely between calls; execute_values() refreshes the owned values
// in place for iterations that change numerics but not sparsity.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "adaptive/feedback.hpp"
#include "common/exec_context.hpp"
#include "common/timer.hpp"
#include "core/delta.hpp"
#include "core/kernel_registry.hpp"
#include "core/options.hpp"
#include "core/partition.hpp"
#include "core/phase_driver.hpp"
#include "matrix/convert.hpp"
#include "matrix/csc.hpp"
#include "matrix/csr.hpp"
#include "semiring/semirings.hpp"

namespace msx {

namespace detail {

// Scalar core of the whole-call Auto heuristic (Fig. 7 decision surface);
// lives in plan.cpp so the decision logic is compiled once, not once per
// semiring instantiation.
MaskedAlgo choose_auto_algo(double rows, double a_nnz, double b_nnz,
                            double m_nnz, std::int64_t b_ncols, MaskKind kind);

// Error text for a (algorithm, mask-kind) pair absent from the registry.
std::string unsupported_combo_message(MaskedAlgo algo, MaskKind kind);

// Whole-call heuristic following the Fig. 7 empirical decision surface:
// Inner when the mask is much sparser than the inputs, Heap when the inputs
// are much sparser than the mask, otherwise MSA (small matrices, dense
// accumulator fits cache) or Hash (large matrices).
template <class IT, class VT, class MT>
MaskedAlgo choose_auto(const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
                       const CSRMatrix<IT, MT>& m, MaskKind kind) {
  return choose_auto_algo(static_cast<double>(a.nrows()),
                          static_cast<double>(a.nnz()),
                          static_cast<double>(b.nnz()),
                          static_cast<double>(m.nnz()),
                          static_cast<std::int64_t>(b.ncols()), kind);
}

// Builds the CSC copy of B that the pull-based families need, plus the
// permutation perm[csc_slot] = csr_slot used to refresh the CSC values in
// O(nnz) when execute_values() swaps B's numerics. The transpose itself is
// the shared counting-sort core from matrix/convert.hpp.
template <class IT, class VT>
CSCMatrix<IT, VT> build_csc_cache(const CSRMatrix<IT, VT>& b,
                                  std::vector<IT>& perm) {
  std::vector<IT> colptr, rowidx;
  std::vector<VT> csc_values;
  transpose_arrays(b.nrows(), b.ncols(), b.rowptr(), b.colidx(), b.values(),
                   colptr, rowidx, csc_values, &perm);
  return CSCMatrix<IT, VT>(b.nrows(), b.ncols(), std::move(colptr),
                           std::move(rowidx), std::move(csc_values));
}

}  // namespace detail

// What MaskedPlan::apply_delta did to the retained plan state — the
// observable contract of delta rebind (and what micro_streaming reports).
struct DeltaStats {
  std::size_t rows_touched = 0;         // B rows the delta edited
  std::size_t out_rows_resymbolic = 0;  // output rows re-run symbolically
  int blocks_refreshed = 0;             // partition blocks with new widths
  int blocks_total = 0;                 // blocks in the retained partition
  bool symbolic_patched = false;        // 2P rowptr spliced (not rebuilt)
  bool partition_kept = false;          // row partition survived the delta
  std::size_t csc_cols_patched = 0;     // CSC columns spliced (pull families)
  bool csc_patched = false;             // CSC spliced in place, not rebuilt
};

// A prepared, reusable Masked SpGEMM: C = M .* (A·B) (or the complemented
// form) on semiring SR. Created by masked_plan(); move-only.
template <class SR, class IT, class VT>
  requires Semiring<SR>
class MaskedPlan {
 public:
  using output_value = typename SR::value_type;
  using output_matrix = CSRMatrix<IT, output_value>;

  template <class MT>
  MaskedPlan(const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
             const CSRMatrix<IT, MT>& m, const MaskedOptions& opts = {})
      : ops_(std::make_unique<Operands>()) {
    WallTimer timer;
    validate_masked_options(opts);
    opts_ = opts;
    if (opts_.algo == MaskedAlgo::kAuto) {
      opts_.algo = detail::choose_auto(a, b, m, opts_.kind);
    }
    const auto* entry = Registry::find(opts_.algo, opts_.kind);
    check_arg(entry != nullptr,
              detail::unsupported_combo_message(opts_.algo, opts_.kind));
    // Adaptive per-block engine (src/adaptive/): when the resolved
    // algorithm is one of the offer-order push families, the knob swaps the
    // kernel for the mode-switching engine. Deliberately after the registry
    // lookup — `adaptive` is fingerprint-neutral and must not change which
    // (algo, kind) pairs are legal, and algo() still reports the resolved
    // family.
    adaptive_ = adaptive::engine_eligible(opts_.algo, opts_.adaptive);
    if (adaptive_) {
      needs_csc_ = false;  // all three adaptive engines push
      kernel_ = Registry::adaptive_factory(opts_.kind)();
    } else {
      needs_csc_ = entry->needs_csc;
      kernel_ = entry->make();
    }
    adopt_structure(a, b, m, /*keep_b=*/false);
    setup_seconds_ = timer.seconds();
  }

  MaskedPlan(MaskedPlan&&) noexcept = default;
  MaskedPlan& operator=(MaskedPlan&&) noexcept = default;
  MaskedPlan(const MaskedPlan&) = delete;
  MaskedPlan& operator=(const MaskedPlan&) = delete;

  // Runs the prepared product. Bit-identical to a fresh masked_spgemm call
  // with the plan's resolved options.
  output_matrix execute() { return execute(ExecContext::openmp()); }

  // Context-aware form (common/exec_context.hpp): a serial context runs the
  // product on the calling thread with no OpenMP region, an arena context
  // runs it cooperatively on a thread pool. Concurrent execute() calls are
  // safe once every cache the run will consult is already valid — each run
  // then only reads them and leases its own workspace pool. Caveat: a
  // serial-context execute skips the flop-balanced partition entirely, so
  // it does NOT warm the partition cache; under a partitioned schedule,
  // warm with one OpenMP/arena-context execute() (or serialize) before
  // going concurrent. An *adaptive* plan under AdaptiveMode::kAuto
  // additionally re-modes the cached partition's block modes at the top of
  // every execute — a mutation — so adaptive kAuto executes must be
  // serialized by the caller (the runtime's plan cache already leases
  // plans exclusively). execute_values()/rebind() always remain exclusive:
  // they mutate the stored operands.
  output_matrix execute(const ExecContext& ctx) {
    // Close the feedback loop before running: observed per-block timings
    // from earlier executes of this structure re-mode the cached partition
    // in place (O(blocks), no replan). Forced modes skip this — they still
    // *record* below, feeding calibration, but never deviate from the pin.
    if (adaptive_ && opts_.adaptive == AdaptiveMode::kAuto &&
        partition_.valid && !partition_.partition.block_mode.empty()) {
      last_remodes_ = adaptive::FeedbackStore::global().remode(
          adaptive_digest_, partition_.partition);
    }
    BlockTimings timings;
    auto c = kernel_->run(
        opts_.phases == PhaseMode::kTwoPhase ? &symbolic_ : nullptr,
        &partition_, ctx, adaptive_ ? &timings : nullptr);
    if (adaptive_ && !timings.empty()) {
      adaptive::FeedbackStore::global().record(
          adaptive_digest_, partition_.partition, timings);
    }
    // Recorded for the single-owner (OpenMP) usage only: concurrent warmed
    // executes would race on the member, and runtime contexts track their
    // own stats.
    if (ctx.is_openmp()) {
      last_execute_setup_seconds_ = kernel_->last_setup_seconds();
    }
    return c;
  }

  output_matrix execute_values(std::span<const VT> a_values,
                               std::span<const VT> b_values) {
    return execute_values(a_values, b_values, ExecContext::openmp());
  }

  // Replaces the numeric values of A and/or B (empty span = unchanged) and
  // runs. Structure — and therefore the cached CSC pattern and the two-phase
  // symbolic rowptr — is untouched; the CSC values are refreshed in O(nnz)
  // through the stored permutation. When the plan was built with B aliasing
  // A (same object), both spans target the single stored matrix and the
  // B span, if given, wins.
  output_matrix execute_values(std::span<const VT> a_values,
                               std::span<const VT> b_values,
                               const ExecContext& ctx) {
    if (!a_values.empty()) {
      check_arg(a_values.size() == ops_->a.nnz(),
                "MaskedPlan::execute_values: A value count != nnz(A)");
      std::copy(a_values.begin(), a_values.end(),
                ops_->a.mutable_values().begin());
    }
    if (!b_values.empty()) {
      auto& b = ops_->mutable_b();
      check_arg(b_values.size() == b.nnz(),
                "MaskedPlan::execute_values: B value count != nnz(B)");
      std::copy(b_values.begin(), b_values.end(), b.mutable_values().begin());
    }
    const bool b_changed =
        !b_values.empty() || (ops_->b_is_a && !a_values.empty());
    if (needs_csc_ && b_changed) {
      if (!ops_->csc_perm.empty()) {
        const auto b_vals = ops_->b().values();
        auto csc_vals = ops_->b_csc.mutable_values();
        for (std::size_t p = 0; p < csc_vals.size(); ++p) {
          csc_vals[p] = b_vals[static_cast<std::size_t>(ops_->csc_perm[p])];
        }
      } else {
        // A delta patch spliced the CSC in place and dropped the stale slot
        // permutation (it shifts globally under structural edits); the
        // cursor refresh costs the same O(nnz) without the index array.
        refresh_csc_values(ops_->b(), ops_->b_csc);
      }
    }
    return execute(ctx);
  }

  // Rebinds all three operands to new structure. The resolved algorithm,
  // options and per-thread workspaces are retained (accumulators keep their
  // capacity — the point of planning iterative workloads like k-truss).
  template <class MT>
  void rebind(const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
              const CSRMatrix<IT, MT>& m) {
    WallTimer timer;
    adopt_structure(a, b, m, /*keep_b=*/false);
    setup_seconds_ = timer.seconds();
  }

  // Rebinds A and the mask while keeping B — and its cached CSC — in place.
  // The shape of the stationary-B iteration (BC sweeps, BFS levels).
  template <class MT>
  void rebind(const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, MT>& m) {
    WallTimer timer;
    if (ops_->b_is_a) {
      // B aliased the outgoing A; materialize it before A is replaced.
      // (adopt_structure recomputes the mask aliasing for the new operands.)
      ops_->b_storage = std::move(ops_->a);
      ops_->b_is_a = false;
    }
    adopt_structure(a, ops_->b(), m, /*keep_b=*/true);
    setup_seconds_ = timer.seconds();
  }

  // Applies an edge insert/delete batch to B as a sparse patch — the delta
  // rebind at the heart of streaming serving. Unlike rebind(), plan state
  // survives:
  //   * the two-phase symbolic rowptr is spliced, re-running the symbolic
  //     kernel only for output rows the delta can affect (a row's output
  //     depends only on A(i,:), the B rows it references, and M(i,:));
  //   * the flop-balanced row partition keeps its block boundaries (results
  //     are schedule-invariant; slightly stale balance is harmless), with
  //     per-block accumulator widths refreshed only for touched blocks;
  //   * per-thread workspaces are retained as always.
  // The CSC copy of B (pull-based families) is rebuilt in full: the refresh
  // permutation shifts globally under any structural edit. When B aliases A
  // the delta applies to both; a mask aliasing A or B tracks automatically,
  // while an independently-owned mask is never modified. Exclusive like
  // rebind(): must not race with execute().
  // `touched_rows`, when given, must equal delta_touched_rows(delta) — a
  // caller fanning one delta out to many plan instances (or panel shards)
  // computes it once and passes it here instead of re-deriving it per call
  // (PlanLineage::touched is the usual carrier).
  DeltaStats apply_delta(const EdgeDelta<IT, VT>& delta,
                         const std::vector<IT>* touched_rows = nullptr) {
    WallTimer timer;
    DeltaStats st;
    st.blocks_total = partition_.partition.blocks();
    st.partition_kept = partition_.valid;
    st.symbolic_patched = symbolic_.valid;
    if (delta.empty()) {
      last_delta_seconds_ = timer.seconds();
      return st;
    }

    // (a) Patch B. The old matrix stays intact until the swap, so a failed
    // validation leaves the plan untouched.
    auto patched = apply_edge_delta(ops_->b(), delta);
    std::vector<IT> touched_local;
    if (touched_rows == nullptr) touched_local = delta_touched_rows(delta);
    const std::vector<IT>& touched_b =
        touched_rows != nullptr ? *touched_rows : touched_local;
    st.rows_touched = touched_b.size();
    ops_->mutable_b() = std::move(patched);

    // (b) Splice the CSC mirror column-by-column — only the delta's touched
    // columns are merged, everything else is block-copied. The value-refresh
    // permutation cannot survive a structural edit (slots shift globally),
    // so it is dropped; execute_values() falls back to the cursor-based
    // refresh.
    if (needs_csc_) {
      st.csc_cols_patched = patch_csc_for_delta(ops_->b_csc, delta);
      st.csc_patched = true;
      ops_->csc_perm.clear();
    }

    // (c) Output rows the delta can affect. Row i of C depends only on
    // A(i,:), the B rows A(i,:) references, and M(i,:) — so i is touched iff
    // some referenced B row changed, or (under aliasing) row i of A or M
    // itself changed.
    const IT nrows = ops_->a.nrows();
    const IT b_rows = ops_->b().nrows();
    std::vector<char> changed(static_cast<std::size_t>(b_rows), 0);
    for (IT r : touched_b) changed[static_cast<std::size_t>(r)] = 1;
    const bool self_touch = ops_->b_is_a || ops_->mask_is_b;
    std::vector<IT> touched_out;
    const auto arp = ops_->a.rowptr();
    const auto aci = ops_->a.colidx();
    for (IT i = 0; i < nrows; ++i) {
      bool t = self_touch && i < b_rows &&
               changed[static_cast<std::size_t>(i)] != 0;
      if (!t) {
        const auto lo = static_cast<std::size_t>(arp[i]);
        const auto hi = static_cast<std::size_t>(arp[i + 1]);
        for (std::size_t p = lo; p < hi; ++p) {
          if (changed[static_cast<std::size_t>(aci[p])] != 0) {
            t = true;
            break;
          }
        }
      }
      if (t) touched_out.push_back(i);
    }

    // (d) Re-bind: the kernel holds references into B's (reallocated)
    // arrays. Workspaces survive bind — that is the plan/execute split.
    KernelOperands<IT, VT> in;
    in.a = &ops_->a;
    in.b = &ops_->b();
    in.b_csc = needs_csc_ ? &ops_->b_csc : nullptr;
    in.mask = ops_->mask_view();
    kernel_->bind(in, opts_);

    // (e) Splice the cached two-phase rowptr: untouched rows keep their old
    // exact counts, touched rows are re-run through the symbolic kernel.
    if (symbolic_.valid) {
      std::vector<IT> counts(touched_out.size());
      kernel_->symbolic_rows(touched_out, counts);
      auto& rp = symbolic_.rowptr;
      std::vector<IT> patched_rp(rp.size());
      patched_rp[0] = IT{0};
      std::size_t j = 0;
      for (IT i = 0; i < nrows; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        IT cnt;
        if (j < touched_out.size() && touched_out[j] == i) {
          cnt = counts[j];
          ++j;
        } else {
          cnt = rp[ui + 1] - rp[ui];
        }
        patched_rp[ui + 1] = patched_rp[ui] + cnt;
      }
      rp = std::move(patched_rp);
      st.out_rows_resymbolic = touched_out.size();
    }

    // (f) Keep the partition's block boundaries but refresh accumulator
    // widths for blocks holding touched rows — a delta can widen a row past
    // the cached block bound, and a stale-small bound would undersize the
    // accumulator.
    if (partition_.valid) {
      st.blocks_refreshed =
          kernel_->refresh_block_widths(partition_.partition, touched_out);
      // Adaptive plans replan block modes on the next execute: a delta can
      // flip a block's density regime (modes are cheap to replan — one
      // stats sweep — unlike the partition itself, which is kept). The
      // structure digest is deliberately unchanged: prior observations
      // remain the best estimate for the barely-changed structure.
      partition_.partition.block_mode.clear();
      partition_.partition.block_mode_cost.clear();
    }

    last_delta_seconds_ = timer.seconds();
    return st;
  }

  // Structural time of the most recent apply_delta().
  double last_delta_seconds() const { return last_delta_seconds_; }

  // Resolved configuration (algo() never reports kAuto).
  MaskedAlgo algo() const { return opts_.algo; }
  PhaseMode phases() const { return opts_.phases; }
  const MaskedOptions& options() const { return opts_; }
  // True when the plan holds a CSC copy of B (pull-based families).
  bool caches_csc() const { return needs_csc_; }

  // True when the plan runs the adaptive per-block engine (src/adaptive/)
  // instead of the resolved algorithm's own kernel. algo() still reports
  // the resolved family — `adaptive` is an execution hint, not identity.
  bool adaptive_engine() const { return adaptive_; }
  // Blocks whose mode the FeedbackStore changed at the top of the most
  // recent execute() (kAuto only; 0 otherwise).
  int last_remodes() const { return last_remodes_; }
  // Planned blocks per adaptive::BlockMode in the cached partition
  // (index = BlockMode value); all zero until a partitioned adaptive
  // execute has planned modes.
  std::array<int, adaptive::kBlockModeCount> adaptive_mode_histogram() const {
    std::array<int, adaptive::kBlockModeCount> h{};
    for (const std::uint8_t m : partition_.partition.block_mode) {
      h[std::min<std::size_t>(m, adaptive::kBlockModeCount - 1)] += 1;
    }
    return h;
  }

  IT nrows() const { return ops_->a.nrows(); }
  IT ncols() const { return ops_->b.ncols(); }

  // Structural setup time of the last plan/rebind (auto resolution, operand
  // copies, CSC transpose, kernel bind).
  double setup_seconds() const { return setup_seconds_; }
  // Lazy setup performed inside the most recent execute() — per-thread
  // workspace (re)allocation. ~0 from the second call on.
  double last_execute_setup_seconds() const {
    return last_execute_setup_seconds_;
  }

  // Drops all per-thread scratch memory (accumulator arrays, heaps); the
  // next execute() regrows it. For callers parking a long-lived plan.
  void reset_workspaces() { kernel_->reset_workspaces(); }

  // Drops the cached two-phase symbolic rowptr so the next execute() redoes
  // the symbolic pass. Benchmarks that must charge 2P's full per-call cost
  // (the 1P-vs-2P comparisons of §8) call this inside the timed region;
  // normal reuse keeps the cache.
  void invalidate_symbolic_cache() { symbolic_.invalidate(); }

  // Same for the flop-balanced row partition: benchmarks charging the full
  // per-call cost of Schedule::kFlopBalanced drop it inside the timed
  // region; normal reuse keeps it (execute_values() never touches it — cost
  // depends only on structure).
  void invalidate_partition_cache() { partition_.invalidate(); }

  // True once an execute() under Schedule::kFlopBalanced (or the kAuto
  // default, which resolves to it) has built and retained the row partition
  // for the current structure.
  bool partition_cached() const { return partition_.valid; }
  // Block count of the cached partition (0 when none is cached).
  int partition_blocks() const { return partition_.partition.blocks(); }

  // Bytes this plan holds onto between executes: operand copies, the CSC
  // copy of B plus its refresh permutation, the owned mask pattern, the
  // two-phase symbolic rowptr and the row partition. Per-thread accumulator
  // scratch is excluded (it is sized by the run context, pooled in the
  // kernel, and reclaimable via reset_workspaces()). This is the unit the
  // PlanCache's byte budget accounts in.
  std::size_t resident_bytes() const {
    auto vec_bytes = [](const auto& v) {
      return v.capacity() * sizeof(v[0]);
    };
    std::size_t n = sizeof(*this) + sizeof(Operands);
    n += ops_->a.storage_bytes();
    if (!ops_->b_is_a) n += ops_->b_storage.storage_bytes();
    n += ops_->b_csc.storage_bytes();
    n += vec_bytes(ops_->csc_perm);
    n += vec_bytes(ops_->mask_rowptr) + vec_bytes(ops_->mask_colidx);
    n += vec_bytes(symbolic_.rowptr);
    n += vec_bytes(partition_.partition.block_start) +
         vec_bytes(partition_.partition.block_width) +
         vec_bytes(partition_.partition.block_mode) +
         vec_bytes(partition_.partition.block_mode_cost);
    return n;
  }

 private:
  using Registry = KernelRegistry<SR, IT, VT>;

  // Operands live behind a unique_ptr so the kernel's references stay valid
  // when the plan itself is moved. Aliased callers (k-truss binds the same
  // matrix as A, B and mask) are detected by address so the plan stores a
  // single copy instead of three.
  struct Operands {
    CSRMatrix<IT, VT> a;
    CSRMatrix<IT, VT> b_storage;  // empty when b_is_a
    bool b_is_a = false;          // B aliases A
    CSCMatrix<IT, VT> b_csc;      // populated iff needs_csc_
    std::vector<IT> csc_perm;     // csc slot -> csr slot, for value refresh
    bool mask_is_a = false;       // mask pattern aliases A (or B, below)
    bool mask_is_b = false;
    std::vector<IT> mask_rowptr{0};  // owned pattern when no alias
    std::vector<IT> mask_colidx;
    IT mask_nrows = 0;
    IT mask_ncols = 0;

    const CSRMatrix<IT, VT>& b() const { return b_is_a ? a : b_storage; }
    CSRMatrix<IT, VT>& mutable_b() { return b_is_a ? a : b_storage; }

    MaskView<IT> mask_view() const {
      if (mask_is_a) return mask_of(a);
      if (mask_is_b) return mask_of(b());
      return MaskView<IT>{mask_nrows, mask_ncols, mask_rowptr.data(),
                          mask_colidx.data()};
    }
  };

  template <class MT>
  void adopt_structure(const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
                       const CSRMatrix<IT, MT>& m, bool keep_b) {
    check_arg(a.ncols() == b.nrows(),
              "masked_plan: inner dimension mismatch");
    check_arg(m.nrows() == a.nrows() && m.ncols() == b.ncols(),
              "masked_plan: mask shape must match the output shape");

    // Address-level aliasing between the caller's operands. Equal addresses
    // imply the same object (and hence MT == VT for the mask), so the plan's
    // copy of A/B can double as the other operand / mask pattern.
    const void* pa = static_cast<const void*>(&a);
    const void* pb = static_cast<const void*>(&b);
    const void* pm = static_cast<const void*>(&m);

    ops_->a = a;
    if (!keep_b) {
      ops_->b_is_a = (pb == pa);
      if (ops_->b_is_a) {
        ops_->b_storage = CSRMatrix<IT, VT>();
      } else {
        ops_->b_storage = b;
      }
      if (needs_csc_) {
        ops_->b_csc = detail::build_csc_cache(ops_->b(), ops_->csc_perm);
      }
    }
    ops_->mask_is_a = (pm == pa);
    ops_->mask_is_b = !ops_->mask_is_a && !keep_b && (pm == pb);
    if (ops_->mask_is_a || ops_->mask_is_b) {
      ops_->mask_rowptr.assign(1, IT{0});
      ops_->mask_colidx.clear();
    } else {
      ops_->mask_rowptr.assign(m.rowptr().begin(), m.rowptr().end());
      ops_->mask_colidx.assign(m.colidx().begin(), m.colidx().end());
      ops_->mask_nrows = m.nrows();
      ops_->mask_ncols = m.ncols();
    }

    KernelOperands<IT, VT> in;
    in.a = &ops_->a;
    in.b = &ops_->b();
    in.b_csc = needs_csc_ ? &ops_->b_csc : nullptr;
    in.mask = ops_->mask_view();
    kernel_->bind(in, opts_);
    symbolic_.invalidate();
    partition_.invalidate();

    // Feedback key for the adaptive engine: a sampled O(1) fingerprint of
    // the operand structures (adaptive/feedback.hpp). Computed per adopted
    // structure and deliberately NOT refreshed by apply_delta — prior
    // per-block observations remain the best estimate after a sparse patch.
    if (adaptive_) {
      std::uint64_t h = adaptive::kDigestSeed;
      h = adaptive::structure_digest<IT>(h, ops_->a.nrows(), ops_->a.ncols(),
                                         ops_->a.rowptr(), ops_->a.colidx());
      if (!ops_->b_is_a) {
        h = adaptive::structure_digest<IT>(h, ops_->b().nrows(),
                                           ops_->b().ncols(),
                                           ops_->b().rowptr(),
                                           ops_->b().colidx());
      }
      const auto mv = ops_->mask_view();
      h = adaptive::structure_digest<IT>(
          h, mv.nrows, mv.ncols,
          std::span<const IT>(mv.rowptr, static_cast<std::size_t>(mv.nrows) + 1),
          std::span<const IT>(mv.colidx, static_cast<std::size_t>(mv.nnz())));
      h = adaptive::digest_mix(h, static_cast<std::uint64_t>(opts_.kind));
      adaptive_digest_ = h;
    }
  }

  MaskedOptions opts_;
  bool needs_csc_ = false;
  bool adaptive_ = false;
  std::unique_ptr<Operands> ops_;
  std::unique_ptr<PlanKernelBase<SR, IT, VT>> kernel_;
  TwoPhaseCache<IT> symbolic_;
  PartitionCache partition_;
  std::uint64_t adaptive_digest_ = 0;
  int last_remodes_ = 0;
  double setup_seconds_ = 0.0;
  double last_execute_setup_seconds_ = 0.0;
  double last_delta_seconds_ = 0.0;
};

// Builds a reusable plan for C = M .* (A·B) (or the complemented form) on
// semiring SR. Resolves kAuto, copies the operands, transposes B once if the
// chosen family pulls, and prepares per-thread workspaces for execute().
template <class SR, class IT, class VT, class MT>
  requires Semiring<SR>
MaskedPlan<SR, IT, VT> masked_plan(const CSRMatrix<IT, VT>& a,
                                   const CSRMatrix<IT, VT>& b,
                                   const CSRMatrix<IT, MT>& m,
                                   const MaskedOptions& opts = {}) {
  return MaskedPlan<SR, IT, VT>(a, b, m, opts);
}

}  // namespace msx
