// MCA row kernel — push-based Masked SpGEMM with the novel Mask Compressed
// Accumulator (paper §5.4, Algorithm 3).
//
// Accumulator arrays are sized nnz(mask row) and indexed by a key's rank in
// the mask row; the rank for each product is found by merging the sorted B
// row with the sorted mask row (two pointers). Time per row:
// O(nnz(u)·nnz(m) + flops(uB)). MCA does not support complemented masks (the
// output would not be bounded by the mask), matching the paper (§8.4: "MCA
// is not included because it does not support complemented Masked SpGEMM").
#pragma once

#include "accum/mca.hpp"
#include "core/kernel_common.hpp"
#include "matrix/csr.hpp"
#include "semiring/semirings.hpp"

namespace msx {

template <class SR, class IT, class VT>
  requires Semiring<SR>
class MCAKernel {
 public:
  using index_type = IT;
  using output_value = typename SR::value_type;

  struct Workspace {
    MCAAccumulator<IT, output_value> acc;
    void reset() { acc.clear(); }
  };

  MCAKernel(const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
            MaskView<IT> m)
      : a_(a), b_(b), m_(m) {}

  IT nrows() const { return a_.nrows(); }
  IT ncols() const { return b_.ncols(); }

  std::size_t upper_bound_row(IT i) const {
    return static_cast<std::size_t>(m_.row_nnz(i));
  }

  std::size_t cost_row(IT i, CostModel model) const {
    return detail::push_row_cost(a_, b_, m_, i, model);
  }

  double work_hint() const { return detail::push_work_hint(a_, b_); }

  IT numeric_row(Workspace& ws, IT i, IT* out_cols,
                 output_value* out_vals) const {
    const auto arow = a_.row(i);
    const auto mrow = m_.row(i);
    if (arow.empty() || mrow.empty()) return 0;

    auto& acc = ws.acc;
    acc.prepare(static_cast<IT>(mrow.size()));
    constexpr auto add = [](output_value x, output_value y) {
      return SR::add(x, y);
    };
    for (IT p = 0; p < arow.size(); ++p) {
      const auto aval = static_cast<output_value>(arow.vals[p]);
      const auto brow = b_.row(arow.cols[p]);
      // Two-pointer merge of the B row against the mask row; matches insert
      // at the mask rank.
      IT bq = 0;
      IT mq = 0;
      const IT bn = brow.size();
      const IT mn = static_cast<IT>(mrow.size());
      while (bq < bn && mq < mn) {
        const IT bc = brow.cols[bq];
        const IT mc = mrow[mq];
        if (bc < mc) {
          ++bq;
        } else if (mc < bc) {
          ++mq;
        } else {
          acc.insert(
              mq,
              [&] {
                return SR::mul(aval,
                               static_cast<output_value>(brow.vals[bq]));
              },
              add);
          ++bq;
          ++mq;
        }
      }
    }
    return acc.gather(mrow, out_cols, out_vals);
  }

  IT symbolic_row(Workspace& ws, IT i) const {
    const auto arow = a_.row(i);
    const auto mrow = m_.row(i);
    if (arow.empty() || mrow.empty()) return 0;

    auto& acc = ws.acc;
    acc.prepare(static_cast<IT>(mrow.size()));
    IT cnt = 0;
    for (IT p = 0; p < arow.size(); ++p) {
      const auto brow = b_.row(arow.cols[p]);
      IT bq = 0;
      IT mq = 0;
      const IT bn = brow.size();
      const IT mn = static_cast<IT>(mrow.size());
      while (bq < bn && mq < mn) {
        const IT bc = brow.cols[bq];
        const IT mc = mrow[mq];
        if (bc < mc) {
          ++bq;
        } else if (mc < bc) {
          ++mq;
        } else {
          cnt += acc.insert_symbolic(mq);
          ++bq;
          ++mq;
        }
      }
    }
    return cnt;
  }

 private:
  const CSRMatrix<IT, VT>& a_;
  const CSRMatrix<IT, VT>& b_;
  MaskView<IT> m_;
};

}  // namespace msx
