// Public entry point: C = M .* (A·B)  or  C = ¬M .* (A·B)  on a semiring.
//
// Dispatches to the algorithm families of the paper (§5: MSA, Hash, MCA,
// Heap/HeapDot; §4.1: Inner) under either phase mode (§6), plus the Hybrid
// per-row selector and an Auto whole-call heuristic derived from the Fig. 7
// decision surface.
//
//   auto c = masked_spgemm<PlusTimes<double>>(a, b, m, opts);
//
// These free functions are thin wrappers over a throwaway run of the
// plan/execute machinery (core/plan.hpp + core/kernel_registry.hpp): the
// registry picks the kernel, the phase driver builds the output. Callers that
// invoke the same product repeatedly should hold a MaskedPlan instead — it
// amortizes kAuto resolution, B's CSC transpose and the per-thread
// accumulator allocations that these wrappers pay on every call.
//
// The pull-based algorithms need B in CSC form; masked_spgemm builds it on
// the fly (charged to the call), while masked_spgemm_with_csc accepts a
// caller-prepared CSC, matching the paper's assumption that B is already
// stored column-major for Inner.
#pragma once

#include <cstddef>

#include "core/kernel_registry.hpp"
#include "core/options.hpp"
#include "core/phase_driver.hpp"
#include "core/plan.hpp"
#include "matrix/convert.hpp"
#include "matrix/csc.hpp"
#include "matrix/csr.hpp"
#include "semiring/semirings.hpp"

namespace msx {

namespace detail {

// One-shot dispatch: registry lookup, throwaway kernel, zero operand copies.
template <class SR, class IT, class VT, class MT>
CSRMatrix<IT, typename SR::value_type> dispatch(
    const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
    const CSCMatrix<IT, VT>* b_csc, const CSRMatrix<IT, MT>& m,
    MaskedOptions opts) {
  check_arg(a.ncols() == b.nrows(), "masked_spgemm: inner dimension mismatch");
  check_arg(m.nrows() == a.nrows() && m.ncols() == b.ncols(),
            "masked_spgemm: mask shape must match the output shape");
  validate_masked_options(opts);

  if (opts.algo == MaskedAlgo::kAuto) {
    opts.algo = choose_auto(a, b, m, opts.kind);
  }

  const auto* entry = KernelRegistry<SR, IT, VT>::find(opts.algo, opts.kind);
  check_arg(entry != nullptr,
            unsupported_combo_message(opts.algo, opts.kind));

  // Adaptive per-block engine: when the resolved algorithm is one of the
  // offer-order push families, the knob swaps the kernel — same eligibility
  // rule as MaskedPlan. Stateless calls plan modes per local partition but
  // record no feedback (no retained structure to key it on; hold a plan for
  // the feedback loop).
  if (adaptive::engine_eligible(opts.algo, opts.adaptive)) {
    auto kernel = KernelRegistry<SR, IT, VT>::adaptive_factory(opts.kind)();
    KernelOperands<IT, VT> in;
    in.a = &a;
    in.b = &b;
    in.mask = mask_of(m);
    kernel->bind(in, opts);
    return kernel->run(nullptr);
  }

  // Pull-based and hybrid paths need B in CSC form.
  CSCMatrix<IT, VT> owned_csc;
  if (entry->needs_csc && b_csc == nullptr) {
    owned_csc = csr_to_csc(b);
    b_csc = &owned_csc;
  }

  auto kernel = entry->make();
  KernelOperands<IT, VT> in;
  in.a = &a;
  in.b = &b;
  in.b_csc = entry->needs_csc ? b_csc : nullptr;
  in.mask = mask_of(m);
  kernel->bind(in, opts);
  return kernel->run(nullptr);
}

}  // namespace detail

// Computes C = M .* (A·B) (or the complemented form) on semiring SR.
template <class SR, class IT, class VT, class MT>
  requires Semiring<SR>
CSRMatrix<IT, typename SR::value_type> masked_spgemm(
    const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
    const CSRMatrix<IT, MT>& m, const MaskedOptions& opts = {}) {
  return detail::dispatch<SR>(a, b, static_cast<const CSCMatrix<IT, VT>*>(nullptr),
                              m, opts);
}

// Same, with a caller-prepared CSC copy of B for the pull-based algorithms
// (keeps the transpose out of the timed region, as the paper assumes for
// Inner — contrast with the SS:DOT-like baseline which transposes per call).
template <class SR, class IT, class VT, class MT>
  requires Semiring<SR>
CSRMatrix<IT, typename SR::value_type> masked_spgemm_with_csc(
    const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
    const CSCMatrix<IT, VT>& b_csc, const CSRMatrix<IT, MT>& m,
    const MaskedOptions& opts = {}) {
  check_arg(b_csc.nrows() == b.nrows() && b_csc.ncols() == b.ncols(),
            "masked_spgemm: CSC copy shape mismatch");
  return detail::dispatch<SR>(a, b, &b_csc, m, opts);
}

// Convenience default: arithmetic semiring over the matrices' value type.
template <class IT, class VT, class MT>
CSRMatrix<IT, VT> masked_spgemm_arithmetic(const CSRMatrix<IT, VT>& a,
                                           const CSRMatrix<IT, VT>& b,
                                           const CSRMatrix<IT, MT>& m,
                                           const MaskedOptions& opts = {}) {
  return masked_spgemm<PlusTimes<VT>>(a, b, m, opts);
}

}  // namespace msx
