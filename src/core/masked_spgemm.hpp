// Public entry point: C = M .* (A·B)  or  C = ¬M .* (A·B)  on a semiring.
//
// Dispatches to the algorithm families of the paper (§5: MSA, Hash, MCA,
// Heap/HeapDot; §4.1: Inner) under either phase mode (§6), plus the Hybrid
// per-row selector and an Auto whole-call heuristic derived from the Fig. 7
// decision surface.
//
//   auto c = masked_spgemm<PlusTimes<double>>(a, b, m, opts);
//
// The pull-based algorithms need B in CSC form; masked_spgemm builds it on
// the fly (charged to the call), while masked_spgemm_with_csc accepts a
// caller-prepared CSC, matching the paper's assumption that B is already
// stored column-major for Inner.
#pragma once

#include <cstddef>

#include "accum/msa_bitmap.hpp"
#include "core/hash_kernel.hpp"
#include "core/heap_kernel.hpp"
#include "core/hybrid_kernel.hpp"
#include "core/inner_kernel.hpp"
#include "core/mca_kernel.hpp"
#include "core/msa_kernel.hpp"
#include "core/options.hpp"
#include "core/phase_driver.hpp"
#include "matrix/convert.hpp"
#include "matrix/csc.hpp"
#include "matrix/csr.hpp"
#include "semiring/semirings.hpp"

namespace msx {

namespace detail {

// Whole-call heuristic following the Fig. 7 empirical decision surface:
// Inner when the mask is much sparser than the inputs, Heap when the inputs
// are much sparser than the mask, otherwise MSA (small matrices, dense
// accumulator fits cache) or Hash (large matrices).
template <class IT, class VT, class MT>
MaskedAlgo choose_auto(const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
                       const CSRMatrix<IT, MT>& m, MaskKind kind) {
  if (kind == MaskKind::kComplement) return MaskedAlgo::kMSA;
  const double rows = static_cast<double>(a.nrows() > 0 ? a.nrows() : 1);
  const double dm = static_cast<double>(m.nnz()) / rows;
  const double din = 0.5 * (static_cast<double>(a.nnz()) +
                            static_cast<double>(b.nnz())) /
                     rows;
  if (dm * 8.0 <= din) return MaskedAlgo::kInner;
  if (din * 8.0 <= dm) return MaskedAlgo::kHeap;
  return b.ncols() <= (IT{1} << 16) ? MaskedAlgo::kMSA : MaskedAlgo::kHash;
}

template <class SR, class IT, class VT, class MT>
CSRMatrix<IT, typename SR::value_type> dispatch(
    const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
    const CSCMatrix<IT, VT>* b_csc, const CSRMatrix<IT, MT>& m,
    MaskedOptions opts) {
  check_arg(a.ncols() == b.nrows(), "masked_spgemm: inner dimension mismatch");
  check_arg(m.nrows() == a.nrows() && m.ncols() == b.ncols(),
            "masked_spgemm: mask shape must match the output shape");

  const MaskView<IT> mask = mask_of(m);
  const bool comp = (opts.kind == MaskKind::kComplement);

  if (opts.algo == MaskedAlgo::kAuto) {
    opts.algo = choose_auto(a, b, m, opts.kind);
  }

  // Pull-based and hybrid paths need B in CSC form.
  CSCMatrix<IT, VT> owned_csc;
  if ((opts.algo == MaskedAlgo::kInner || opts.algo == MaskedAlgo::kHybrid) &&
      b_csc == nullptr) {
    owned_csc = csr_to_csc(b);
    b_csc = &owned_csc;
  }

  switch (opts.algo) {
    case MaskedAlgo::kMSA:
      if (comp) {
        return run_masked_kernel(MSAKernel<SR, IT, VT, true>(a, b, mask),
                                 opts);
      }
      return run_masked_kernel(MSAKernel<SR, IT, VT, false>(a, b, mask), opts);

    case MaskedAlgo::kHash:
      if (comp) {
        return run_masked_kernel(HashKernel<SR, IT, VT, true>(a, b, mask),
                                 opts);
      }
      return run_masked_kernel(HashKernel<SR, IT, VT, false>(a, b, mask),
                               opts);

    case MaskedAlgo::kMCA:
      check_arg(!comp,
                "MCA does not support complemented masks (paper §8.4); "
                "choose MSA, Hash or Heap instead");
      return run_masked_kernel(MCAKernel<SR, IT, VT>(a, b, mask), opts);

    case MaskedAlgo::kHeap:
      if (comp) {
        return run_masked_kernel(
            HeapKernel<SR, IT, VT, true>(a, b, mask, 0), opts);
      }
      return run_masked_kernel(
          HeapKernel<SR, IT, VT, false>(a, b, mask, opts.heap_ninspect),
          opts);

    case MaskedAlgo::kHeapDot:
      if (comp) {
        return run_masked_kernel(
            HeapKernel<SR, IT, VT, true>(a, b, mask, 0), opts);
      }
      return run_masked_kernel(
          HeapKernel<SR, IT, VT, false>(a, b, mask, kNInspectInfinity), opts);

    case MaskedAlgo::kInner:
      if (comp) {
        return run_masked_kernel(
            InnerKernel<SR, IT, VT, true>(a, *b_csc, mask, opts.inner_gallop),
            opts);
      }
      return run_masked_kernel(
          InnerKernel<SR, IT, VT, false>(a, *b_csc, mask, opts.inner_gallop),
          opts);

    case MaskedAlgo::kMSABitmap:
      // Extension: 2-bit packed MSA states. The complement variant needs a
      // touched list, which the bitmap layout does not keep — fall back to
      // the byte-state complement MSA.
      if (comp) {
        return run_masked_kernel(MSAKernel<SR, IT, VT, true>(a, b, mask),
                                 opts);
      }
      return run_masked_kernel(
          MSAKernel<SR, IT, VT, false,
                    MSABitmapMasked<IT, typename SR::value_type>>(a, b, mask),
          opts);

    case MaskedAlgo::kHybrid:
      if (comp) {
        return run_masked_kernel(
            HybridKernel<SR, IT, VT, true>(a, b, *b_csc, mask), opts);
      }
      return run_masked_kernel(
          HybridKernel<SR, IT, VT, false>(a, b, *b_csc, mask), opts);

    case MaskedAlgo::kAuto:
      break;  // resolved above
  }
  check_arg(false, "unreachable: unhandled masked SpGEMM algorithm");
  return CSRMatrix<IT, typename SR::value_type>();
}

}  // namespace detail

// Computes C = M .* (A·B) (or the complemented form) on semiring SR.
template <class SR, class IT, class VT, class MT>
  requires Semiring<SR>
CSRMatrix<IT, typename SR::value_type> masked_spgemm(
    const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
    const CSRMatrix<IT, MT>& m, const MaskedOptions& opts = {}) {
  return detail::dispatch<SR>(a, b, static_cast<const CSCMatrix<IT, VT>*>(nullptr),
                              m, opts);
}

// Same, with a caller-prepared CSC copy of B for the pull-based algorithms
// (keeps the transpose out of the timed region, as the paper assumes for
// Inner — contrast with the SS:DOT-like baseline which transposes per call).
template <class SR, class IT, class VT, class MT>
  requires Semiring<SR>
CSRMatrix<IT, typename SR::value_type> masked_spgemm_with_csc(
    const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
    const CSCMatrix<IT, VT>& b_csc, const CSRMatrix<IT, MT>& m,
    const MaskedOptions& opts = {}) {
  check_arg(b_csc.nrows() == b.nrows() && b_csc.ncols() == b.ncols(),
            "masked_spgemm: CSC copy shape mismatch");
  return detail::dispatch<SR>(a, b, &b_csc, m, opts);
}

// Convenience default: arithmetic semiring over the matrices' value type.
template <class IT, class VT, class MT>
CSRMatrix<IT, VT> masked_spgemm_arithmetic(const CSRMatrix<IT, VT>& a,
                                           const CSRMatrix<IT, VT>& b,
                                           const CSRMatrix<IT, MT>& m,
                                           const MaskedOptions& opts = {}) {
  return masked_spgemm<PlusTimes<VT>>(a, b, m, opts);
}

}  // namespace msx
