// Plain (unmasked) SpGEMM — Gustavson's row-by-row algorithm with a hash
// accumulator (Algorithm 1 of the paper; accumulator after Nagasaka et al.).
//
// Serves three roles: the substrate of the SpGEMM-then-mask baseline
// (Fig. 1's "plain" path), a correctness cross-check for the masked
// algorithms, and a general-purpose library operation.
#pragma once

#include <cstddef>

#include "accum/hash.hpp"
#include "core/phase_driver.hpp"
#include "matrix/csr.hpp"
#include "semiring/semirings.hpp"

namespace msx {

namespace detail {

// Unmasked Gustavson row kernel: reuses the complement hash accumulator with
// an empty mask (every key allowed, touched list tracks output pattern).
template <class SR, class IT, class VT>
  requires Semiring<SR>
class PlainHashKernel {
 public:
  using index_type = IT;
  using output_value = typename SR::value_type;

  struct Workspace {
    HashComplement<IT, output_value> acc;
  };

  PlainHashKernel(const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b)
      : a_(a), b_(b) {}

  IT nrows() const { return a_.nrows(); }
  IT ncols() const { return b_.ncols(); }

  std::size_t upper_bound_row(IT i) const {
    std::size_t flops = 0;
    const auto arow = a_.row(i);
    for (IT p = 0; p < arow.size(); ++p) {
      flops += static_cast<std::size_t>(b_.row_nnz(arow.cols[p]));
    }
    return std::min(flops, static_cast<std::size_t>(b_.ncols()));
  }

  IT numeric_row(Workspace& ws, IT i, IT* out_cols,
                 output_value* out_vals) const {
    const auto arow = a_.row(i);
    if (arow.empty()) return 0;
    auto& acc = ws.acc;
    acc.prepare(std::span<const IT>{}, upper_bound_row(i));
    constexpr auto add = [](output_value x, output_value y) {
      return SR::add(x, y);
    };
    for (IT p = 0; p < arow.size(); ++p) {
      const auto aval = static_cast<output_value>(arow.vals[p]);
      const auto brow = b_.row(arow.cols[p]);
      for (IT q = 0; q < brow.size(); ++q) {
        acc.insert(
            brow.cols[q],
            [&] { return SR::mul(aval, static_cast<output_value>(brow.vals[q])); },
            add);
      }
    }
    return acc.gather(out_cols, out_vals);
  }

  IT symbolic_row(Workspace& ws, IT i) const {
    const auto arow = a_.row(i);
    if (arow.empty()) return 0;
    auto& acc = ws.acc;
    acc.prepare(std::span<const IT>{}, upper_bound_row(i));
    IT cnt = 0;
    for (IT p = 0; p < arow.size(); ++p) {
      const auto brow = b_.row(arow.cols[p]);
      for (IT q = 0; q < brow.size(); ++q) {
        cnt += acc.insert_symbolic(brow.cols[q]);
      }
    }
    return cnt;
  }

 private:
  const CSRMatrix<IT, VT>& a_;
  const CSRMatrix<IT, VT>& b_;
};

}  // namespace detail

// C = A·B on semiring SR (no mask). Defaults to the two-phase construction
// conventional for plain SpGEMM.
template <class SR, class IT, class VT>
  requires Semiring<SR>
CSRMatrix<IT, typename SR::value_type> spgemm(
    const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
    MaskedOptions opts = {.phases = PhaseMode::kTwoPhase}) {
  check_arg(a.ncols() == b.nrows(), "spgemm: inner dimension mismatch");
  return run_masked_kernel(detail::PlainHashKernel<SR, IT, VT>(a, b), opts);
}

}  // namespace msx
