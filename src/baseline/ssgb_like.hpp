// SuiteSparse:GraphBLAS-like baselines (paper §8: SS:DOT and SS:SAXPY).
//
// SuiteSparse itself is not an offline dependency here; these implement the
// *strategies* the paper attributes to SS:GB, which is what its comparison
// isolates (the paper explicitly avoids an apples-to-apples library
// comparison, §3):
//
//  * ss_dot_like  — pull-based dot-product algorithm. Crucially, B is
//    transposed *inside* the call: "the matrix B is transposed in the
//    library before each Masked SpGEMM, increasing overhead" (§8.4).
//  * ss_saxpy_like — push-based Gustavson with a dense SPA per thread; the
//    mask is applied only at gather time rather than inside the accumulator,
//    i.e. the mask does not suppress any product computation.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/inner_kernel.hpp"
#include "core/kernel_common.hpp"
#include "core/phase_driver.hpp"
#include "matrix/convert.hpp"
#include "matrix/csr.hpp"
#include "semiring/semirings.hpp"

namespace msx {

// Pull-based baseline: dot products over mask entries, with the CSC
// conversion of B charged to every call.
template <class SR, class IT, class VT, class MT>
  requires Semiring<SR>
CSRMatrix<IT, typename SR::value_type> ss_dot_like(
    const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
    const CSRMatrix<IT, MT>& m, MaskKind kind = MaskKind::kMask,
    MaskedOptions opts = {}) {
  check_arg(a.ncols() == b.nrows(), "ss_dot_like: inner dimension mismatch");
  check_arg(m.nrows() == a.nrows() && m.ncols() == b.ncols(),
            "ss_dot_like: mask shape mismatch");
  const CSCMatrix<IT, VT> b_csc = csr_to_csc(b);  // per-call transpose
  const MaskView<IT> mask = mask_of(m);
  if (kind == MaskKind::kComplement) {
    return run_masked_kernel(
        InnerKernel<SR, IT, VT, true>(a, b_csc, mask), opts);
  }
  return run_masked_kernel(InnerKernel<SR, IT, VT, false>(a, b_csc, mask),
                           opts);
}

namespace detail {

// Dense sparse-accumulator (SPA) kernel that ignores the mask during
// accumulation and filters at gather time.
template <class SR, class IT, class VT, bool Complemented>
  requires Semiring<SR>
class SaxpySpaKernel {
 public:
  using index_type = IT;
  using output_value = typename SR::value_type;

  struct Workspace {
    std::vector<output_value> dense;
    std::vector<char> occupied;
    std::vector<IT> touched;
  };

  SaxpySpaKernel(const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
                 MaskView<IT> m)
      : a_(a), b_(b), m_(m) {}

  IT nrows() const { return a_.nrows(); }
  IT ncols() const { return b_.ncols(); }

  std::size_t upper_bound_row(IT i) const {
    return masked_upper_bound(a_, b_, m_, i,
                              Complemented ? MaskKind::kComplement
                                           : MaskKind::kMask);
  }

  IT numeric_row(Workspace& ws, IT i, IT* out_cols,
                 output_value* out_vals) const {
    accumulate(ws, i);
    // Mask applied only now, at gather time.
    const auto mrow = m_.row(i);
    IT cnt = 0;
    if constexpr (!Complemented) {
      for (IT j : mrow) {
        if (ws.occupied[static_cast<std::size_t>(j)]) {
          out_cols[cnt] = j;
          out_vals[cnt] = ws.dense[static_cast<std::size_t>(j)];
          ++cnt;
        }
      }
    } else {
      std::sort(ws.touched.begin(), ws.touched.end());
      for (IT j : ws.touched) {
        if (!std::binary_search(mrow.begin(), mrow.end(), j)) {
          out_cols[cnt] = j;
          out_vals[cnt] = ws.dense[static_cast<std::size_t>(j)];
          ++cnt;
        }
      }
    }
    clear(ws);
    return cnt;
  }

  IT symbolic_row(Workspace& ws, IT i) const {
    accumulate(ws, i);
    const auto mrow = m_.row(i);
    IT cnt = 0;
    if constexpr (!Complemented) {
      for (IT j : mrow) {
        cnt += ws.occupied[static_cast<std::size_t>(j)] ? 1 : 0;
      }
    } else {
      std::sort(ws.touched.begin(), ws.touched.end());
      for (IT j : ws.touched) {
        if (!std::binary_search(mrow.begin(), mrow.end(), j)) ++cnt;
      }
    }
    clear(ws);
    return cnt;
  }

 private:
  void accumulate(Workspace& ws, IT i) const {
    if (ws.dense.size() < static_cast<std::size_t>(b_.ncols())) {
      ws.dense.resize(static_cast<std::size_t>(b_.ncols()), SR::zero());
      ws.occupied.resize(static_cast<std::size_t>(b_.ncols()), 0);
    }
    const auto arow = a_.row(i);
    for (IT p = 0; p < arow.size(); ++p) {
      const auto aval = static_cast<output_value>(arow.vals[p]);
      const auto brow = b_.row(arow.cols[p]);
      for (IT q = 0; q < brow.size(); ++q) {
        const IT j = brow.cols[q];
        const auto prod =
            SR::mul(aval, static_cast<output_value>(brow.vals[q]));
        if (ws.occupied[static_cast<std::size_t>(j)]) {
          ws.dense[static_cast<std::size_t>(j)] =
              SR::add(ws.dense[static_cast<std::size_t>(j)], prod);
        } else {
          ws.occupied[static_cast<std::size_t>(j)] = 1;
          ws.dense[static_cast<std::size_t>(j)] = prod;
          ws.touched.push_back(j);
        }
      }
    }
  }

  void clear(Workspace& ws) const {
    for (IT j : ws.touched) {
      ws.occupied[static_cast<std::size_t>(j)] = 0;
      ws.dense[static_cast<std::size_t>(j)] = SR::zero();
    }
    ws.touched.clear();
  }

  const CSRMatrix<IT, VT>& a_;
  const CSRMatrix<IT, VT>& b_;
  MaskView<IT> m_;
};

}  // namespace detail

// Push-based baseline: Gustavson + dense SPA, mask only at gather time.
template <class SR, class IT, class VT, class MT>
  requires Semiring<SR>
CSRMatrix<IT, typename SR::value_type> ss_saxpy_like(
    const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
    const CSRMatrix<IT, MT>& m, MaskKind kind = MaskKind::kMask,
    MaskedOptions opts = {}) {
  check_arg(a.ncols() == b.nrows(), "ss_saxpy_like: inner dimension mismatch");
  check_arg(m.nrows() == a.nrows() && m.ncols() == b.ncols(),
            "ss_saxpy_like: mask shape mismatch");
  const MaskView<IT> mask = mask_of(m);
  if (kind == MaskKind::kComplement) {
    return run_masked_kernel(
        detail::SaxpySpaKernel<SR, IT, VT, true>(a, b, mask), opts);
  }
  return run_masked_kernel(
      detail::SaxpySpaKernel<SR, IT, VT, false>(a, b, mask), opts);
}

}  // namespace msx
