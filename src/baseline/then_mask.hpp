// SpGEMM-then-mask baseline — the naive path of Fig. 1: compute the full
// product "as if the mask does not exist and then apply the mask to the
// output matrix". All work on masked-out entries is wasted; this baseline
// quantifies exactly that waste.
#pragma once

#include <algorithm>
#include <vector>

#include "baseline/spgemm.hpp"
#include "core/options.hpp"
#include "matrix/csr.hpp"
#include "semiring/semirings.hpp"

namespace msx {

// Element-wise mask application: keeps entries of `c` whose position is in
// (kMask) / not in (kComplement) the pattern of `m`.
template <class IT, class VT, class MT>
CSRMatrix<IT, VT> apply_mask(const CSRMatrix<IT, VT>& c,
                             const CSRMatrix<IT, MT>& m,
                             MaskKind kind = MaskKind::kMask) {
  check_arg(c.nrows() == m.nrows() && c.ncols() == m.ncols(),
            "apply_mask: shape mismatch");
  std::vector<IT> rowptr(static_cast<std::size_t>(c.nrows()) + 1, IT{0});
  std::vector<IT> colidx;
  std::vector<VT> values;
  colidx.reserve(c.nnz());
  values.reserve(c.nnz());

  for (IT i = 0; i < c.nrows(); ++i) {
    const auto crow = c.row(i);
    const auto mrow = m.row(i);
    IT pc = 0, pm = 0;
    const IT nc = crow.size(), nm = mrow.size();
    while (pc < nc) {
      while (pm < nm && mrow.cols[pm] < crow.cols[pc]) ++pm;
      const bool in_mask = (pm < nm && mrow.cols[pm] == crow.cols[pc]);
      const bool keep = (kind == MaskKind::kMask) ? in_mask : !in_mask;
      if (keep) {
        colidx.push_back(crow.cols[pc]);
        values.push_back(crow.vals[pc]);
      }
      ++pc;
    }
    rowptr[static_cast<std::size_t>(i) + 1] = static_cast<IT>(colidx.size());
  }
  return CSRMatrix<IT, VT>(c.nrows(), c.ncols(), std::move(rowptr),
                           std::move(colidx), std::move(values));
}

// C = mask ⊙ (A·B) computed the naive way: full product, then filter.
template <class SR, class IT, class VT, class MT>
  requires Semiring<SR>
CSRMatrix<IT, typename SR::value_type> spgemm_then_mask(
    const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
    const CSRMatrix<IT, MT>& m, MaskKind kind = MaskKind::kMask,
    MaskedOptions opts = {.phases = PhaseMode::kTwoPhase}) {
  auto c = spgemm<SR>(a, b, opts);
  return apply_mask(c, m, kind);
}

}  // namespace msx
