// Sparse vector: the masked SpGEVM operand type.
//
// The paper formulates every algorithm as a masked sparse vector-matrix
// product v⊺ = m⊺ ⊙ (u⊺B) (§5) — one row of the matrix-level operation.
// This type carries a sorted, duplicate-free index list plus values, the
// vector analogue of one CSR row.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/platform.hpp"

namespace msx {

template <class IT, class VT>
class SparseVector {
 public:
  using index_type = IT;
  using value_type = VT;

  SparseVector() = default;
  explicit SparseVector(IT size) : size_(size) {
    check_arg(size >= 0, "vector size must be non-negative");
  }

  // Adopts prebuilt arrays; indices must be strictly increasing.
  SparseVector(IT size, std::vector<IT> idx, std::vector<VT> val)
      : size_(size), idx_(std::move(idx)), val_(std::move(val)) {
    check_arg(idx_.size() == val_.size(), "index/value size mismatch");
  }

  // Builds from unordered (index, value) pairs; duplicate indices summed.
  static SparseVector from_entries(IT size,
                                   std::vector<std::pair<IT, VT>> entries) {
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    SparseVector v(size);
    for (const auto& [i, x] : entries) {
      check_arg(i >= 0 && i < size, "vector index out of range");
      if (!v.idx_.empty() && v.idx_.back() == i) {
        v.val_.back() = v.val_.back() + x;
      } else {
        v.idx_.push_back(i);
        v.val_.push_back(x);
      }
    }
    return v;
  }

  // Builds a dense-array view, dropping zeros.
  static SparseVector from_dense(const std::vector<VT>& dense) {
    SparseVector v(static_cast<IT>(dense.size()));
    for (std::size_t i = 0; i < dense.size(); ++i) {
      if (dense[i] != VT{}) {
        v.idx_.push_back(static_cast<IT>(i));
        v.val_.push_back(dense[i]);
      }
    }
    return v;
  }

  IT size() const { return size_; }
  std::size_t nnz() const { return idx_.size(); }
  bool empty() const { return idx_.empty(); }

  std::span<const IT> indices() const { return idx_; }
  std::span<const VT> values() const { return val_; }
  std::span<VT> mutable_values() { return val_; }

  // Appends an entry with index greater than all current ones.
  void push_back(IT i, VT x) {
    MSX_ASSERT(idx_.empty() || idx_.back() < i);
    MSX_ASSERT(i >= 0 && i < size_);
    idx_.push_back(i);
    val_.push_back(x);
  }

  void clear() {
    idx_.clear();
    val_.clear();
  }

  std::vector<VT> to_dense() const {
    std::vector<VT> dense(static_cast<std::size_t>(size_), VT{});
    for (std::size_t p = 0; p < idx_.size(); ++p) {
      dense[static_cast<std::size_t>(idx_[p])] = val_[p];
    }
    return dense;
  }

  bool validate(std::string* why = nullptr) const {
    auto fail = [&](const char* msg) {
      if (why) *why = msg;
      return false;
    };
    if (idx_.size() != val_.size()) return fail("index/value size mismatch");
    for (std::size_t p = 0; p < idx_.size(); ++p) {
      if (idx_[p] < 0 || idx_[p] >= size_) return fail("index out of range");
      if (p > 0 && idx_[p - 1] >= idx_[p])
        return fail("indices not strictly increasing");
    }
    return true;
  }

  friend bool operator==(const SparseVector&, const SparseVector&) = default;

 private:
  IT size_ = 0;
  std::vector<IT> idx_;
  std::vector<VT> val_;
};

// Structural union with added values (the frontier-merge operation).
template <class IT, class VT>
SparseVector<IT, VT> ewise_add(const SparseVector<IT, VT>& a,
                               const SparseVector<IT, VT>& b) {
  check_arg(a.size() == b.size(), "ewise_add: vector size mismatch");
  SparseVector<IT, VT> out(a.size());
  const auto ai = a.indices();
  const auto bi = b.indices();
  const auto av = a.values();
  const auto bv = b.values();
  std::size_t pa = 0, pb = 0;
  while (pa < ai.size() && pb < bi.size()) {
    if (ai[pa] < bi[pb]) {
      out.push_back(ai[pa], av[pa]);
      ++pa;
    } else if (bi[pb] < ai[pa]) {
      out.push_back(bi[pb], bv[pb]);
      ++pb;
    } else {
      out.push_back(ai[pa], av[pa] + bv[pb]);
      ++pa;
      ++pb;
    }
  }
  for (; pa < ai.size(); ++pa) out.push_back(ai[pa], av[pa]);
  for (; pb < bi.size(); ++pb) out.push_back(bi[pb], bv[pb]);
  return out;
}

}  // namespace msx
