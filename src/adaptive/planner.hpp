// ModePlanner — static per-block execution-mode selection for the adaptive
// engine (ISSUE 10 tentpole).
//
// The paper fixes one accumulator per product (§5); Wheatman et al. show
// that masked-product density shifts across row regions, and that choosing
// sparse-accumulate vs dense-tile execution *per region* beats any static
// choice. The planner maps each flop-balanced partition block (which the
// plan already carries, with per-block flops/mask-nnz/width available from
// one sweep) to one of three modes:
//
//   kSparse — hash accumulator (accum/hash.hpp): O(nnz(mask row)) working
//             set, a hash probe per product. Wins at low fill.
//   kBitmap — bitmap MSA (accum/msa_bitmap.hpp; byte MSA for complement):
//             dense packed states, branch per product, mask-walk reset.
//             Wins in the middle of the density range.
//   kDense  — dense row tile (accum/dense_tile.hpp): branch-free
//             accumulate, O(width/64) word clear per row. Wins once the
//             block's rows fill a few percent of its width.
//
// The unit-cost model below is deliberately coarse — relative shape, not
// absolute nanoseconds. The FeedbackStore (feedback.hpp) calibrates it
// online: observed per-block run_nanos yield a per-mode coefficient, and
// blocks are re-moded between execute() calls once a scaled prediction (or
// a direct observation) beats the current mode with hysteresis.
#pragma once

#include <cstdint>

#include "core/options.hpp"

namespace msx::adaptive {

// Execution mode of one partition block. Values are the RowPartition's
// block_mode encoding and the FeedbackStore's array index — keep dense.
enum class BlockMode : std::uint8_t {
  kSparse = 0,
  kBitmap = 1,
  kDense = 2,
};

inline constexpr int kBlockModeCount = 3;

inline const char* to_string(BlockMode m) {
  switch (m) {
    case BlockMode::kSparse: return "sparse";
    case BlockMode::kBitmap: return "bitmap";
    case BlockMode::kDense: return "dense";
  }
  return "?";
}

// Structure-derived per-block statistics the planner prices. `flops` is the
// masked multiply count (Σ nnz(B(k,:)) over the block's A entries),
// `mask_nnz` the mask entries walked, `width` the block's accumulator bound
// (1 + highest reachable column; the whole matrix width when no per-block
// bound is cached).
struct BlockCost {
  std::int64_t rows = 0;
  std::int64_t flops = 0;
  std::int64_t mask_nnz = 0;
  std::int64_t width = 0;
};

// Predicted unit cost of running `cost` under `mode`. Shape of each term:
// every mode pays per product and per mask entry; sparse pays the most per
// product (hash + branch), bitmap a packed-state branch, dense the least
// (test-and-set, no mask branch) but adds the per-row O(width/64) bitmap
// clear that the other modes avoid. The per-row constant keeps empty blocks
// from degenerating to zero cost.
inline double predict_block_cost(BlockMode mode, const BlockCost& c) {
  const auto rows = static_cast<double>(c.rows);
  const auto flops = static_cast<double>(c.flops);
  const auto mask = static_cast<double>(c.mask_nnz);
  const auto width = static_cast<double>(c.width);
  switch (mode) {
    case BlockMode::kSparse:
      return 3.0 * flops + 2.0 * mask + 8.0 * rows;
    case BlockMode::kBitmap:
      return 2.0 * flops + 1.2 * mask + 8.0 * rows;
    case BlockMode::kDense:
      return 1.0 * flops + 1.0 * mask + rows * (8.0 + width / 128.0);
  }
  return 0.0;
}

// Cheapest predicted mode for the block.
inline BlockMode choose_mode(const BlockCost& c) {
  BlockMode best = BlockMode::kSparse;
  double best_cost = predict_block_cost(best, c);
  for (int m = 1; m < kBlockModeCount; ++m) {
    const auto mode = static_cast<BlockMode>(m);
    const double cost = predict_block_cost(mode, c);
    if (cost < best_cost) {
      best_cost = cost;
      best = mode;
    }
  }
  return best;
}

// The forced BlockMode of a force-* AdaptiveMode; false when `opt` is
// kOff/kAuto (no forcing).
inline bool forced_mode(AdaptiveMode opt, BlockMode* out) {
  switch (opt) {
    case AdaptiveMode::kForceSparse: *out = BlockMode::kSparse; return true;
    case AdaptiveMode::kForceBitmap: *out = BlockMode::kBitmap; return true;
    case AdaptiveMode::kForceDense: *out = BlockMode::kDense; return true;
    case AdaptiveMode::kOff:
    case AdaptiveMode::kAuto:
      break;
  }
  return false;
}

// Whether the adaptive engine replaces the resolved algorithm's kernel.
// Only the offer-order push families qualify: MSA, Hash and MSABitmap all
// accumulate per column in offer order and gather in mask-row (masked) or
// ascending-column (complement) order, so swapping their accumulators —
// including the dense tile — is bit-identical. Heap merges in column order
// (different floating-point addition order), MCA stores by mask position,
// and the pull-based families don't accumulate at all; they ignore the
// knob.
inline bool engine_eligible(MaskedAlgo resolved, AdaptiveMode mode) {
  if (mode == AdaptiveMode::kOff) return false;
  return resolved == MaskedAlgo::kMSA || resolved == MaskedAlgo::kHash ||
         resolved == MaskedAlgo::kMSABitmap;
}

}  // namespace msx::adaptive
