// AdaptiveKernel — per-block execution-mode dispatch over the offer-order
// push kernels (ISSUE 10 tentpole).
//
// One row kernel that owns three interchangeable engines and switches
// between them at partition-block granularity inside a single product:
//
//   sparse — HashKernel (hash accumulator, §5.3)
//   bitmap — MSAKernel over the 2-bit bitmap MSA (byte MSA for complement,
//            mirroring the registry's documented MSABitmap fallback)
//   dense  — MSAKernel over the dense row tile (accum/dense_tile.hpp)
//
// All three accumulate per column in offer order with first-write-then-add
// discipline and gather in mask-row order (masked) or ascending column
// order (complemented), so the CSR output is bit-identical regardless of
// which mode each block — or the whole product — runs. That invariant is
// what lets the ModePlanner choose freely on cost alone, and what the
// adaptive_ test suite pins down.
//
// The phase driver (core/phase_driver.hpp) detects the mode-select
// interface (plan_block_modes / select_mode / default_mode) at compile
// time: partitioned runs plan per-block modes once per structure (cached in
// the RowPartition next to block_width) and set the workspace's mode in the
// per-block prologue; non-partitioned dispatch (static schedule, serial
// contexts, tiny inputs) runs everything in default_mode(). Forced modes
// (MaskedOptions::adaptive = force-*) bypass the planner.
#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>

#include "accum/dense_tile.hpp"
#include "accum/msa_bitmap.hpp"
#include "adaptive/feedback.hpp"
#include "adaptive/planner.hpp"
#include "common/exec_context.hpp"
#include "core/hash_kernel.hpp"
#include "core/kernel_common.hpp"
#include "core/msa_kernel.hpp"
#include "core/partition.hpp"
#include "matrix/csr.hpp"
#include "semiring/semirings.hpp"

namespace msx::adaptive {

template <class SR, class IT, class VT, bool Complemented>
  requires Semiring<SR>
class AdaptiveKernel {
 public:
  using index_type = IT;
  using output_value = typename SR::value_type;

  using SparseK = HashKernel<SR, IT, VT, Complemented>;
  // The bitmap MSA keeps no touched list, so complemented blocks run the
  // byte-state MSA — the same fallback the registry documents for
  // MaskedAlgo::kMSABitmap.
  using BitmapK = std::conditional_t<
      Complemented, MSAKernel<SR, IT, VT, true>,
      MSAKernel<SR, IT, VT, false, MSABitmapMasked<IT, output_value>>>;
  using DenseK = MSAKernel<
      SR, IT, VT, Complemented,
      std::conditional_t<Complemented, DenseTileComplement<IT, output_value>,
                         DenseTileMasked<IT, output_value>>>;

  struct Workspace {
    typename SparseK::Workspace sparse;
    typename BitmapK::Workspace bitmap;
    typename DenseK::Workspace dense;
    std::uint8_t mode = static_cast<std::uint8_t>(BlockMode::kSparse);
    void reset() {
      sparse.reset();
      bitmap.reset();
      dense.reset();
      mode = static_cast<std::uint8_t>(BlockMode::kSparse);
    }
  };

  AdaptiveKernel(const CSRMatrix<IT, VT>& a, const CSRMatrix<IT, VT>& b,
                 MaskView<IT> m, AdaptiveMode policy)
      : a_(a), b_(b), m_(m), policy_(policy), sparse_(a, b, m),
        bitmap_(a, b, m), dense_(a, b, m) {
    BlockMode forced;
    if (forced_mode(policy_, &forced)) {
      default_mode_ = static_cast<std::uint8_t>(forced);
    } else {
      // Whole-matrix fallback for non-partitioned dispatch: price the
      // product as one block from O(1) estimates.
      BlockCost c;
      c.rows = static_cast<std::int64_t>(a_.nrows());
      c.flops = static_cast<std::int64_t>(detail::push_work_hint(a_, b_));
      c.mask_nnz = static_cast<std::int64_t>(m_.nnz());
      c.width = static_cast<std::int64_t>(b_.ncols());
      default_mode_ = static_cast<std::uint8_t>(choose_mode(c));
    }
  }

  IT nrows() const { return a_.nrows(); }
  IT ncols() const { return b_.ncols(); }

  std::size_t upper_bound_row(IT i) const {
    return detail::masked_upper_bound(
        a_, b_, m_, i,
        Complemented ? MaskKind::kComplement : MaskKind::kMask);
  }

  std::size_t cost_row(IT i, CostModel model) const {
    return detail::push_row_cost(a_, b_, m_, i, model);
  }

  double work_hint() const { return detail::push_work_hint(a_, b_); }

  // Per-block accumulator sizing, forwarded to every engine (the dense and
  // bitmap arrays are width-sized; the hash table only cares when
  // complemented).
  std::int64_t width_row(IT i) const {
    return detail::push_row_width(a_, b_, m_, i);
  }
  void begin_block(Workspace& ws, std::int64_t width) const {
    if constexpr (Complemented) {
      sparse_.begin_block(ws.sparse, width);
    }
    bitmap_.begin_block(ws.bitmap, width);
    dense_.begin_block(ws.dense, width);
  }

  // --- mode-select interface consumed by the phase driver ------------------

  // Sets the engine the workspace dispatches until the next select (block
  // prologue under the partition; once per run otherwise).
  void select_mode(Workspace& ws, std::uint8_t mode,
                   std::int64_t width) const {
    ws.mode = mode;
    begin_block(ws, width);
  }

  // Mode for non-partitioned dispatch (and the symbolic_rows delta path).
  std::uint8_t default_mode() const { return default_mode_; }

  // Fills part.block_mode / block_mode_cost from one parallel sweep of
  // per-block flops and mask nnz. Forced policies still record the
  // planner's costs (the FeedbackStore calibrates its coefficients against
  // them) but pin every block to the forced mode.
  void plan_block_modes(RowPartition& part, const ExecContext& ctx) const {
    const auto nb = static_cast<std::size_t>(part.blocks());
    part.block_mode.assign(nb, default_mode_);
    part.block_mode_cost.assign(nb * static_cast<std::size_t>(kBlockModeCount),
                                0.0);
    BlockMode forced;
    const bool is_forced = forced_mode(policy_, &forced);
    ctx.for_block_ranges<std::int64_t>(
        part.bounds(),
        [&](int, int blk, std::int64_t lo, std::int64_t hi) {
          BlockCost c;
          c.rows = hi - lo;
          for (std::int64_t i = lo; i < hi; ++i) {
            const auto row = static_cast<IT>(i);
            const auto arow = a_.row(row);
            for (IT p = 0; p < arow.size(); ++p) {
              c.flops += static_cast<std::int64_t>(b_.row_nnz(arow.cols[p]));
            }
            c.mask_nnz += static_cast<std::int64_t>(m_.row_nnz(row));
          }
          const auto ublk = static_cast<std::size_t>(blk);
          c.width = ublk < part.block_width.size()
                        ? part.block_width[ublk]
                        : static_cast<std::int64_t>(b_.ncols());
          for (int m = 0; m < kBlockModeCount; ++m) {
            part.block_mode_cost[ublk * kBlockModeCount +
                                 static_cast<std::size_t>(m)] =
                predict_block_cost(static_cast<BlockMode>(m), c);
          }
          part.block_mode[ublk] = static_cast<std::uint8_t>(
              is_forced ? forced : choose_mode(c));
        });
    FeedbackStore::global().note_planned(part);
  }

  // --- row interface: dispatch on the workspace's current mode -------------

  IT numeric_row(Workspace& ws, IT i, IT* out_cols,
                 output_value* out_vals) const {
    switch (static_cast<BlockMode>(ws.mode)) {
      case BlockMode::kSparse:
        return sparse_.numeric_row(ws.sparse, i, out_cols, out_vals);
      case BlockMode::kBitmap:
        return bitmap_.numeric_row(ws.bitmap, i, out_cols, out_vals);
      case BlockMode::kDense:
        return dense_.numeric_row(ws.dense, i, out_cols, out_vals);
    }
    return 0;
  }

  IT symbolic_row(Workspace& ws, IT i) const {
    switch (static_cast<BlockMode>(ws.mode)) {
      case BlockMode::kSparse:
        return sparse_.symbolic_row(ws.sparse, i);
      case BlockMode::kBitmap:
        return bitmap_.symbolic_row(ws.bitmap, i);
      case BlockMode::kDense:
        return dense_.symbolic_row(ws.dense, i);
    }
    return 0;
  }

 private:
  const CSRMatrix<IT, VT>& a_;
  const CSRMatrix<IT, VT>& b_;
  MaskView<IT> m_;
  AdaptiveMode policy_;
  SparseK sparse_;
  BitmapK bitmap_;
  DenseK dense_;
  std::uint8_t default_mode_ = 0;
};

}  // namespace msx::adaptive
