#include "adaptive/feedback.hpp"

#include <algorithm>

namespace msx::adaptive {

FeedbackStore::FeedbackStore() {
  auto& reg = obs::Registry::global();
  plans_total_ = reg.counter("msx_adaptive_plans_total");
  mode_blocks_total_[0] =
      reg.counter("msx_adaptive_mode_blocks_total", "mode=\"sparse\"");
  mode_blocks_total_[1] =
      reg.counter("msx_adaptive_mode_blocks_total", "mode=\"bitmap\"");
  mode_blocks_total_[2] =
      reg.counter("msx_adaptive_mode_blocks_total", "mode=\"dense\"");
  records_total_ = reg.counter("msx_adaptive_feedback_records_total");
  feedback_hits_total_ = reg.counter("msx_adaptive_feedback_hits_total");
  remodes_total_ = reg.counter("msx_adaptive_remodes_total");
}

FeedbackStore& FeedbackStore::global() {
  static FeedbackStore* store = new FeedbackStore();
  return *store;
}

void FeedbackStore::record(std::uint64_t digest, const RowPartition& part,
                           const BlockTimings& timings) {
  const auto nb = static_cast<std::size_t>(part.blocks());
  if (nb == 0 || timings.nanos.size() != nb || timings.mode.size() != nb ||
      part.block_mode_cost.size() != nb * kBlockModeCount) {
    return;
  }
  MutexLock lock(&mu_);
  if (store_.size() >= kMaxEntries && store_.find(digest) == store_.end()) {
    store_.clear();
    stats_.entries = 0;
  }
  Entry& e = store_[digest];
  if (e.blocks.size() != nb) e.blocks.assign(nb, BlockObs{});
  std::uint64_t absorbed = 0;
  for (std::size_t blk = 0; blk < nb; ++blk) {
    const auto nanos = static_cast<double>(timings.nanos[blk]);
    if (nanos <= 0.0) continue;
    const int m = std::min<int>(timings.mode[blk], kBlockModeCount - 1);
    double& obs = e.blocks[blk].nanos[m];
    obs = obs > 0.0 ? (1.0 - kObsAlpha) * obs + kObsAlpha * nanos : nanos;
    const double predicted =
        part.block_mode_cost[blk * kBlockModeCount + static_cast<std::size_t>(m)];
    if (predicted > 0.0) {
      const double ratio = nanos / predicted;
      double& coeff = e.coeff[m];
      coeff = coeff > 0.0 ? (1.0 - kCoeffAlpha) * coeff + kCoeffAlpha * ratio
                          : ratio;
    }
    ++absorbed;
  }
  stats_.records += 1;
  stats_.blocks_recorded += absorbed;
  stats_.entries = store_.size();
  records_total_->inc();
}

int FeedbackStore::remode(std::uint64_t digest, RowPartition& part) {
  const auto nb = static_cast<std::size_t>(part.blocks());
  if (nb == 0 || part.block_mode.size() != nb ||
      part.block_mode_cost.size() != nb * kBlockModeCount) {
    return 0;
  }
  MutexLock lock(&mu_);
  const auto it = store_.find(digest);
  if (it == store_.end()) return 0;
  const Entry& e = it->second;
  if (e.blocks.size() != nb) return 0;  // partition reshaped; stale data
  stats_.feedback_hits += 1;
  feedback_hits_total_->inc();

  // Unobserved modes are priced coeff × prediction; with no coefficient for
  // a mode yet, fall back to the mean of the known coefficients so every
  // candidate is in (approximate) nanoseconds.
  double coeff_sum = 0.0;
  int coeff_n = 0;
  for (const double c : e.coeff) {
    if (c > 0.0) {
      coeff_sum += c;
      ++coeff_n;
    }
  }
  if (coeff_n == 0) return 0;  // recorded nothing usable yet
  const double fallback = coeff_sum / coeff_n;

  int changed = 0;
  for (std::size_t blk = 0; blk < nb; ++blk) {
    double pred[kBlockModeCount];
    for (int m = 0; m < kBlockModeCount; ++m) {
      const double obs = e.blocks[blk].nanos[m];
      if (obs > 0.0) {
        pred[m] = obs;
      } else {
        const double c = e.coeff[m] > 0.0 ? e.coeff[m] : fallback;
        pred[m] =
            c * part.block_mode_cost[blk * kBlockModeCount +
                                     static_cast<std::size_t>(m)];
      }
    }
    const int cur = std::min<int>(part.block_mode[blk], kBlockModeCount - 1);
    int best = cur;
    for (int m = 0; m < kBlockModeCount; ++m) {
      if (pred[m] < pred[best]) best = m;
    }
    if (best != cur && pred[best] < pred[cur] * (1.0 - kHysteresis)) {
      part.block_mode[blk] = static_cast<std::uint8_t>(best);
      ++changed;
    }
  }
  if (changed > 0) {
    stats_.remodes += static_cast<std::uint64_t>(changed);
    remodes_total_->inc(static_cast<std::uint64_t>(changed));
  }
  return changed;
}

void FeedbackStore::note_planned(const RowPartition& part) {
  std::uint64_t per_mode[kBlockModeCount] = {0, 0, 0};
  for (const std::uint8_t m : part.block_mode) {
    per_mode[std::min<int>(m, kBlockModeCount - 1)] += 1;
  }
  {
    MutexLock lock(&mu_);
    stats_.plans += 1;
    for (int m = 0; m < kBlockModeCount; ++m) {
      stats_.mode_blocks[m] += per_mode[m];
    }
  }
  plans_total_->inc();
  for (int m = 0; m < kBlockModeCount; ++m) {
    if (per_mode[m] > 0) mode_blocks_total_[m]->inc(per_mode[m]);
  }
}

FeedbackStats FeedbackStore::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void FeedbackStore::clear() {
  MutexLock lock(&mu_);
  store_.clear();
  stats_ = FeedbackStats{};
}

}  // namespace msx::adaptive
