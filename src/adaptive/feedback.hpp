// FeedbackStore — online cost feedback for the adaptive engine (ISSUE 10).
//
// The ModePlanner's static cost model (planner.hpp) is a shape, not a
// measurement. This store closes the loop: after every adaptive execute()
// the phase driver's per-block numeric-pass timings (BlockTimings,
// core/partition.hpp) are recorded under the plan's structure digest, and
// before the next execute() the plan asks the store to re-mode its cached
// partition — observed nanoseconds for a (block, mode) pair override the
// prediction outright, and a per-mode EWMA coefficient (observed nanos per
// predicted unit) rescales the modes that have not run yet. A block
// switches mode only when the best alternative undercuts the current mode
// by the hysteresis margin, so noise cannot make modes oscillate.
//
// Keying mirrors the PlanCache: a structure digest (sampled fingerprint of
// the operand patterns, structure_digest below) plus the block id. The
// digest is computed once per adopt_structure and deliberately kept across
// apply_delta — a streaming delta barely changes the structure, and the
// prior observations remain the best available estimate. Re-moding costs
// O(blocks) — nearly free for the k-truss/BC/streaming iteration loops the
// plan API serves — and never rebuilds the partition or replans from
// scratch.
//
// Process-wide singleton (global()), mutex-guarded; safe to use from
// concurrent plans. Publishes msx_adaptive_* counters on the global obs
// registry (mode histogram, re-mode count, feedback hits).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "adaptive/planner.hpp"
#include "common/thread_annotations.hpp"
#include "core/partition.hpp"
#include "obs/metrics.hpp"

namespace msx::adaptive {

// Snapshot of the store's activity (tests, bench reporting). The same
// numbers are exported as msx_adaptive_* counters.
struct FeedbackStats {
  std::uint64_t plans = 0;       // mode plannings observed
  std::uint64_t mode_blocks[kBlockModeCount] = {0, 0, 0};  // planned modes
  std::uint64_t records = 0;          // record() calls absorbed
  std::uint64_t blocks_recorded = 0;  // per-block observations absorbed
  std::uint64_t feedback_hits = 0;    // remode() calls with prior data
  std::uint64_t remodes = 0;          // blocks whose mode changed
  std::size_t entries = 0;            // structures resident
};

class FeedbackStore {
 public:
  FeedbackStore();

  // Process-wide store shared by every adaptive plan.
  static FeedbackStore& global();

  // Absorbs one run's per-block timings for the structure `digest`.
  // `timings.mode[blk]` is the mode the block actually ran;
  // `part.block_mode_cost` supplies the predictions the coefficients
  // calibrate against. Blocks with zero nanos (untimed) are skipped.
  void record(std::uint64_t digest, const RowPartition& part,
              const BlockTimings& timings);

  // Re-modes part.block_mode in place from this structure's observations.
  // Returns the number of blocks whose mode changed (0 when the store has
  // nothing for `digest` or the partition was reshaped). Counted as a
  // feedback hit whenever prior observations were found.
  int remode(std::uint64_t digest, RowPartition& part);

  // Mode-decision accounting hook for the planner (one call per
  // plan_block_modes); keeps the msx_adaptive_* counters in one place.
  void note_planned(const RowPartition& part);

  FeedbackStats stats() const;

  // Drops every observation (tests; also the crude size bound on overflow).
  void clear();

 private:
  // Observed numeric-pass nanos per mode for one block; 0 = never ran.
  struct BlockObs {
    double nanos[kBlockModeCount] = {0.0, 0.0, 0.0};
  };
  struct Entry {
    std::vector<BlockObs> blocks;
    // EWMA of observed-nanos / predicted-units per mode; 0 = no data yet.
    double coeff[kBlockModeCount] = {0.0, 0.0, 0.0};
  };

  // Blocks only re-mode when the best alternative is at least this much
  // cheaper than the current prediction — timing noise must not flip modes
  // back and forth.
  static constexpr double kHysteresis = 0.15;
  // EWMA weights for repeat observations.
  static constexpr double kObsAlpha = 0.5;
  static constexpr double kCoeffAlpha = 0.4;
  // Crude residency bound: the store drops everything rather than grow
  // without bound (feedback is a cache, losing it only costs a replan).
  static constexpr std::size_t kMaxEntries = 4096;

  mutable Mutex mu_{LockRank::kAdaptiveFeedback, "FeedbackStore::mu_"};
  std::unordered_map<std::uint64_t, Entry> store_ MSX_GUARDED_BY(mu_);
  FeedbackStats stats_ MSX_GUARDED_BY(mu_);

  // Counter handles resolved once against obs::Registry::global().
  obs::Counter* plans_total_;
  obs::Counter* mode_blocks_total_[kBlockModeCount];
  obs::Counter* records_total_;
  obs::Counter* feedback_hits_total_;
  obs::Counter* remodes_total_;
};

// Sampled structure fingerprint: dimensions, nnz and up to 64 evenly-spaced
// entries of each index array, folded with a Fibonacci mix. O(1) per matrix
// (unlike the PlanCache's full-array fingerprint — feedback keying tolerates
// the collision risk: a collision only mixes timings across structures).
// Chain calls to cover several operands, seeding with kDigestSeed.
inline constexpr std::uint64_t kDigestSeed = 0x6d73785f61646170ULL;  // "msx_adap"

inline std::uint64_t digest_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

template <class IT>
std::uint64_t structure_digest(std::uint64_t h, IT nrows, IT ncols,
                               std::span<const IT> rowptr,
                               std::span<const IT> colidx) {
  h = digest_mix(h, static_cast<std::uint64_t>(nrows));
  h = digest_mix(h, static_cast<std::uint64_t>(ncols));
  h = digest_mix(h, static_cast<std::uint64_t>(colidx.size()));
  constexpr std::size_t kSamples = 64;
  const auto sample = [&](std::span<const IT> arr) {
    if (arr.empty()) return;
    const std::size_t n = arr.size();
    const std::size_t take = n < kSamples ? n : kSamples;
    for (std::size_t s = 0; s < take; ++s) {
      const std::size_t idx = take == 1 ? 0 : s * (n - 1) / (take - 1);
      h = digest_mix(h, static_cast<std::uint64_t>(arr[idx]));
    }
  };
  sample(rowptr);
  sample(colidx);
  return h;
}

}  // namespace msx::adaptive
