// Deterministic structured graph generators.
//
// These complement ER/R-MAT in the workload suite: regular meshes (grid,
// torus) have no degree skew, stars and bipartite graphs are extreme-skew
// corner cases, Kronecker powers give self-similar patterns, and
// preferential attachment gives power-law degree tails. Together they span
// the structural axes the paper's 26 real-world matrices cover.
#pragma once

#include <cstdint>
#include <vector>

#include "common/platform.hpp"
#include "common/random.hpp"
#include "matrix/build.hpp"
#include "matrix/csr.hpp"
#include "matrix/triple.hpp"

namespace msx {

namespace detail {

template <class IT, class VT>
CSRMatrix<IT, VT> from_undirected_edges(
    IT n, const std::vector<std::pair<IT, IT>>& edges) {
  std::vector<Triple<IT, VT>> triples;
  triples.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    if (u == v) continue;
    triples.push_back({u, v, VT{1}});
    triples.push_back({v, u, VT{1}});
  }
  return csr_from_triples<IT, VT>(n, n, std::move(triples),
                                  DuplicatePolicy::kLast);
}

}  // namespace detail

// Path graph: 0-1-2-...-(n-1).
template <class IT, class VT>
CSRMatrix<IT, VT> path_graph(IT n) {
  std::vector<std::pair<IT, IT>> edges;
  for (IT i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  return detail::from_undirected_edges<IT, VT>(n, edges);
}

// Cycle graph: path plus the closing edge.
template <class IT, class VT>
CSRMatrix<IT, VT> cycle_graph(IT n) {
  check_arg(n >= 3, "cycle needs at least 3 vertices");
  std::vector<std::pair<IT, IT>> edges;
  for (IT i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  edges.push_back({n - 1, IT{0}});
  return detail::from_undirected_edges<IT, VT>(n, edges);
}

// Complete graph K_n.
template <class IT, class VT>
CSRMatrix<IT, VT> complete_graph(IT n) {
  std::vector<std::pair<IT, IT>> edges;
  for (IT i = 0; i < n; ++i) {
    for (IT j = i + 1; j < n; ++j) edges.push_back({i, j});
  }
  return detail::from_undirected_edges<IT, VT>(n, edges);
}

// Star graph: vertex 0 connected to all others.
template <class IT, class VT>
CSRMatrix<IT, VT> star_graph(IT n) {
  std::vector<std::pair<IT, IT>> edges;
  for (IT i = 1; i < n; ++i) edges.push_back({IT{0}, i});
  return detail::from_undirected_edges<IT, VT>(n, edges);
}

// Complete bipartite graph K_{p,q} (vertices 0..p-1 vs p..p+q-1).
template <class IT, class VT>
CSRMatrix<IT, VT> complete_bipartite(IT p, IT q) {
  std::vector<std::pair<IT, IT>> edges;
  for (IT i = 0; i < p; ++i) {
    for (IT j = 0; j < q; ++j) edges.push_back({i, static_cast<IT>(p + j)});
  }
  return detail::from_undirected_edges<IT, VT>(static_cast<IT>(p + q), edges);
}

// rows × cols 2D grid (4-neighbour mesh); torus wraps the boundary.
template <class IT, class VT>
CSRMatrix<IT, VT> grid2d(IT rows, IT cols, bool torus = false) {
  check_arg(rows > 0 && cols > 0, "grid needs positive extents");
  const IT n = rows * cols;
  auto id = [cols](IT r, IT c) { return r * cols + c; };
  std::vector<std::pair<IT, IT>> edges;
  for (IT r = 0; r < rows; ++r) {
    for (IT c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1)});
      else if (torus && cols > 2) edges.push_back({id(r, c), id(r, IT{0})});
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c)});
      else if (torus && rows > 2) edges.push_back({id(r, c), id(IT{0}, c)});
    }
  }
  return detail::from_undirected_edges<IT, VT>(n, edges);
}

// k-th Kronecker power of a small seed pattern. The pattern of the result is
// the k-fold tensor product: self-similar block structure.
template <class IT, class VT>
CSRMatrix<IT, VT> kronecker_power(const CSRMatrix<IT, VT>& seed, int k) {
  check_arg(seed.nrows() == seed.ncols(), "kronecker seed must be square");
  check_arg(k >= 1, "kronecker power must be >= 1");
  std::vector<Triple<IT, VT>> cur = to_triples(seed);
  const IT m = seed.nrows();
  IT dim = m;
  for (int it = 1; it < k; ++it) {
    std::vector<Triple<IT, VT>> next;
    next.reserve(cur.size() * seed.nnz());
    for (const auto& big : cur) {
      for (IT i = 0; i < m; ++i) {
        const auto row = seed.row(i);
        for (IT p = 0; p < row.size(); ++p) {
          next.push_back({static_cast<IT>(big.row * m + i),
                          static_cast<IT>(big.col * m + row.cols[p]),
                          static_cast<VT>(big.val * row.vals[p])});
        }
      }
    }
    cur = std::move(next);
    dim *= m;
  }
  return csr_from_triples<IT, VT>(dim, dim, std::move(cur),
                                  DuplicatePolicy::kLast);
}

// Preferential attachment (Barabási–Albert style): each new vertex attaches
// to `m` existing vertices chosen proportionally to degree. Power-law tail.
template <class IT, class VT>
CSRMatrix<IT, VT> preferential_attachment(IT n, IT m, std::uint64_t seed) {
  check_arg(m >= 1 && n > m, "need n > m >= 1");
  Xoshiro256 rng(seed);
  // endpoint list doubles as the degree-proportional sampling urn
  std::vector<IT> urn;
  urn.reserve(static_cast<std::size_t>(2 * n) * static_cast<std::size_t>(m));
  std::vector<std::pair<IT, IT>> edges;

  // Seed clique on the first m+1 vertices.
  for (IT i = 0; i <= m; ++i) {
    for (IT j = i + 1; j <= m; ++j) {
      edges.push_back({i, j});
      urn.push_back(i);
      urn.push_back(j);
    }
  }
  for (IT v = m + 1; v < n; ++v) {
    IT attached = 0;
    std::vector<IT> picked;
    while (attached < m) {
      const IT u = urn[static_cast<std::size_t>(
          rng.next_below(urn.size()))];
      bool dup = false;
      for (IT w : picked) {
        if (w == u) { dup = true; break; }
      }
      if (dup) continue;
      picked.push_back(u);
      edges.push_back({v, u});
      ++attached;
    }
    for (IT u : picked) {
      urn.push_back(u);
      urn.push_back(v);
    }
  }
  return detail::from_undirected_edges<IT, VT>(n, edges);
}

}  // namespace msx
