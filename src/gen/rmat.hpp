// R-MAT (recursive matrix) graph generator with Graph500 parameters.
//
// Used by the paper's scaling studies (Figs. 10, 11, 14, 15): "graphs
// generated with the R-MAT generator, with parameters identical to those
// used in the Graph500 benchmark" — a = 0.57, b = 0.19, c = 0.19, d = 0.05,
// edge factor 16, 2^scale vertices. Our generator samples edges recursively,
// optionally symmetrizes, removes self-loops and deduplicates.
#pragma once

#include <cstdint>
#include <vector>

#include "common/platform.hpp"
#include "common/random.hpp"
#include "matrix/build.hpp"
#include "matrix/csr.hpp"
#include "matrix/triple.hpp"

namespace msx {

struct RmatOptions {
  double a = 0.57;  // Graph500 partition probabilities
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
  int edge_factor = 16;
  bool symmetrize = true;       // store both (u,v) and (v,u)
  bool remove_self_loops = true;
  bool scramble_ids = true;     // hash vertex ids to break locality, as in
                                // Graph500's vertex permutation
};

// Generates a 2^scale × 2^scale pattern matrix with approximately
// edge_factor · 2^scale sampled edges (fewer after dedup). Values are 1.
template <class IT, class VT>
CSRMatrix<IT, VT> rmat(int scale, std::uint64_t seed,
                       const RmatOptions& opts = {}) {
  check_arg(scale >= 0 && scale < 31, "rmat scale out of range [0,30]");
  const std::uint64_t n = std::uint64_t{1} << scale;
  const std::uint64_t nedges = n * static_cast<std::uint64_t>(opts.edge_factor);

  Xoshiro256 rng(seed);
  const double ab = opts.a + opts.b;
  const double abc = ab + opts.c;

  std::vector<Triple<IT, VT>> triples;
  triples.reserve(static_cast<std::size_t>(opts.symmetrize ? 2 * nedges
                                                           : nedges));
  for (std::uint64_t e = 0; e < nedges; ++e) {
    std::uint64_t u = 0, v = 0;
    for (int bit = scale - 1; bit >= 0; --bit) {
      const double r = rng.next_double();
      if (r < opts.a) {
        // top-left quadrant: no bits set
      } else if (r < ab) {
        v |= std::uint64_t{1} << bit;
      } else if (r < abc) {
        u |= std::uint64_t{1} << bit;
      } else {
        u |= std::uint64_t{1} << bit;
        v |= std::uint64_t{1} << bit;
      }
    }
    if (opts.scramble_ids) {
      u = mix64(u + seed) & (n - 1);
      v = mix64(v + seed) & (n - 1);
    }
    if (opts.remove_self_loops && u == v) continue;
    triples.push_back({static_cast<IT>(u), static_cast<IT>(v), VT{1}});
    if (opts.symmetrize) {
      triples.push_back({static_cast<IT>(v), static_cast<IT>(u), VT{1}});
    }
  }
  return csr_from_triples<IT, VT>(static_cast<IT>(n), static_cast<IT>(n),
                                  std::move(triples), DuplicatePolicy::kLast);
}

}  // namespace msx
