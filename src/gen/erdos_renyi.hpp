// Erdős–Rényi random sparse matrices.
//
// Fig. 7's controlled density sweeps use ER inputs where the expected row
// degree is varied independently for inputs and mask; this generator draws
// `degree` distinct columns per row so nnz ≈ n · degree (exactly, unless the
// requested degree exceeds ncols).
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/parallel.hpp"
#include "common/platform.hpp"
#include "common/prefix_sum.hpp"
#include "common/random.hpp"
#include "matrix/csr.hpp"

namespace msx {

struct ErdosRenyiOptions {
  bool allow_self_loops = true;  // keep (i, i) entries
  double value_min = 0.0;        // stored values drawn uniformly from
  double value_max = 1.0;        // [value_min, value_max)
};

namespace detail {

// Floyd's algorithm: uniformly samples `want` distinct integers from
// [0, universe) in O(want) expected hash operations, unbiased.
template <class IT>
void sample_distinct(Xoshiro256& rng, IT universe, IT want,
                     std::vector<IT>& out) {
  out.clear();
  std::unordered_set<IT> chosen;
  chosen.reserve(static_cast<std::size_t>(want) * 2);
  for (IT j = universe - want; j < universe; ++j) {
    const IT t = static_cast<IT>(
        rng.next_below(static_cast<std::uint64_t>(j) + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
}

}  // namespace detail

// Generates an nrows × ncols matrix with exactly min(degree, ncols') distinct
// entries per row (ncols' excludes the diagonal when self-loops are off).
// Deterministic for a given seed, independent of thread count.
template <class IT, class VT>
CSRMatrix<IT, VT> erdos_renyi(IT nrows, IT ncols, IT degree,
                              std::uint64_t seed,
                              const ErdosRenyiOptions& opts = {}) {
  check_arg(nrows >= 0 && ncols >= 0, "shape must be non-negative");
  check_arg(degree >= 0, "degree must be non-negative");

  std::vector<IT> rowptr(static_cast<std::size_t>(nrows) + 1, IT{0});
  auto row_budget = [&](IT i) -> IT {
    IT avail = ncols;
    if (!opts.allow_self_loops && i < ncols) avail -= 1;
    return std::min(degree, avail);
  };
  for (IT i = 0; i < nrows; ++i) {
    rowptr[static_cast<std::size_t>(i) + 1] = row_budget(i);
  }
  counts_to_offsets(rowptr);

  std::vector<IT> colidx(static_cast<std::size_t>(rowptr.back()));
  std::vector<VT> values(colidx.size());

  parallel_for(IT{0}, nrows, Schedule::kDynamic, [&](IT i) {
    // Per-row RNG stream derived from (seed, i): deterministic regardless of
    // scheduling.
    Xoshiro256 rng(mix64(seed ^ mix64(static_cast<std::uint64_t>(i) + 1)));
    const IT want = row_budget(i);
    const auto base =
        static_cast<std::size_t>(rowptr[static_cast<std::size_t>(i)]);
    if (want == 0) return;

    // Sample from a universe that excludes the diagonal when requested, then
    // map the sampled ids back to column indices.
    const IT universe =
        (!opts.allow_self_loops && i < ncols) ? ncols - 1 : ncols;
    std::vector<IT> cols;
    detail::sample_distinct(rng, universe, want, cols);
    if (!opts.allow_self_loops && i < ncols) {
      for (IT& c : cols) {
        if (c >= i) ++c;  // skip over the diagonal slot
      }
    }
    std::sort(cols.begin(), cols.end());
    for (std::size_t k = 0; k < cols.size(); ++k) {
      colidx[base + k] = cols[k];
    }
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const double u = rng.next_double();
      values[base + k] = static_cast<VT>(
          opts.value_min + u * (opts.value_max - opts.value_min));
    }
  });

  return CSRMatrix<IT, VT>(nrows, ncols, std::move(rowptr), std::move(colidx),
                           std::move(values));
}

}  // namespace msx
