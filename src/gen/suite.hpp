// Named workload suites used by the benchmark figures.
//
// The paper evaluates on the 26 SuiteSparse real-world graphs used by
// Nagasaka et al. Those are not redistributable here, so the suite
// substitutes a structurally diverse, laptop-scale set of generated graphs
// covering the same axes (degree skew, density, regularity, size); see
// DESIGN.md §5. The suite is deterministic; sizes scale with a single
// `scale_shift` knob so CI runs stay fast while large runs remain possible.
// MatrixMarket files can be appended via MSX_EXTRA_MATRICES=<dir> to run the
// genuine SuiteSparse graphs when available.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "matrix/csr.hpp"

namespace msx {

using SuiteIndex = std::int32_t;
using SuiteValue = double;
using SuiteMatrix = CSRMatrix<SuiteIndex, SuiteValue>;

struct WorkloadSpec {
  std::string name;
  std::function<SuiteMatrix()> make;  // generates the (symmetric) graph
};

// Graph suite standing in for the paper's real-world set. scale_shift shifts
// every size exponent: 0 = default laptop sizes, negative = smaller (tests),
// positive = bigger (closer to the paper's range).
std::vector<WorkloadSpec> graph_suite(int scale_shift = 0);

// Looks up a single workload by name (returns empty vector if absent).
std::vector<WorkloadSpec> graph_suite_filtered(const std::string& name,
                                               int scale_shift = 0);

}  // namespace msx
