#include "gen/suite.hpp"

#include <algorithm>

#include "common/env.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "gen/structured.hpp"
#include "matrix/build.hpp"
#include "matrix/mm_io.hpp"
#include "matrix/ops.hpp"

namespace msx {

namespace {

using IT = SuiteIndex;
using VT = SuiteValue;

SuiteMatrix undirected_er(IT n, IT degree, std::uint64_t seed) {
  ErdosRenyiOptions opts;
  opts.allow_self_loops = false;
  auto a = erdos_renyi<IT, VT>(n, n, degree, seed, opts);
  return symmetrize_pattern(a);
}

int shifted(int exponent, int shift) { return std::max(4, exponent + shift); }

}  // namespace

std::vector<WorkloadSpec> graph_suite(int scale_shift) {
  std::vector<WorkloadSpec> suite;
  auto add = [&](std::string name, std::function<SuiteMatrix()> fn) {
    suite.push_back({std::move(name), std::move(fn)});
  };
  const int s = scale_shift;

  // Power-law / skewed graphs (social-network-like).
  add("rmat-s10", [s] { return rmat<IT, VT>(shifted(10, s), 1); });
  add("rmat-s11", [s] { return rmat<IT, VT>(shifted(11, s), 2); });
  add("rmat-s12", [s] { return rmat<IT, VT>(shifted(12, s), 3); });
  add("rmat-s13-ef8", [s] {
    RmatOptions o;
    o.edge_factor = 8;
    return rmat<IT, VT>(shifted(13, s), 4, o);
  });
  add("pref-attach-8", [s] {
    return preferential_attachment<IT, VT>(IT{1} << shifted(12, s), 8, 5);
  });
  add("pref-attach-16", [s] {
    return preferential_attachment<IT, VT>(IT{1} << shifted(11, s), 16, 6);
  });

  // Uniform random graphs at several densities.
  add("er-d4", [s] { return undirected_er(IT{1} << shifted(12, s), 4, 7); });
  add("er-d16", [s] { return undirected_er(IT{1} << shifted(12, s), 16, 8); });
  add("er-d64", [s] { return undirected_er(IT{1} << shifted(10, s), 64, 9); });

  // Regular meshes (road-network/PDE-like: low, uniform degree).
  add("grid2d", [s] {
    const IT side = IT{1} << shifted(6, s);
    return grid2d<IT, VT>(side, side, /*torus=*/false);
  });
  add("torus2d", [s] {
    const IT side = IT{1} << shifted(6, s);
    return grid2d<IT, VT>(side, side, /*torus=*/true);
  });

  // Self-similar Kronecker pattern.
  add("kron3x3", [s] {
    auto seed = csr_from_dense<IT, VT>({{1, 1, 0}, {0, 1, 1}, {1, 0, 1}});
    auto g = kronecker_power(seed, std::max(4, 7 + s / 2));
    return symmetrize_pattern(remove_diagonal(g));
  });

  // Extreme-skew corner cases.
  add("star", [s] { return star_graph<IT, VT>(IT{1} << shifted(12, s)); });
  add("bipartite", [s] {
    const IT half = IT{1} << shifted(7, s);
    return complete_bipartite<IT, VT>(half, half);
  });

  // Optional real matrices from disk (e.g. the genuine SuiteSparse set).
  const std::string dir = env_string("MSX_EXTRA_MATRICES", "");
  if (!dir.empty()) {
    // One file per line is overkill; we accept a colon-separated list of
    // .mtx paths for simplicity.
    std::size_t start = 0;
    while (start < dir.size()) {
      auto end = dir.find(':', start);
      if (end == std::string::npos) end = dir.size();
      std::string path = dir.substr(start, end - start);
      if (!path.empty()) {
        add("file:" + path, [path] {
          auto a = read_matrix_market_file<IT, VT>(path);
          return symmetrize_pattern(remove_diagonal(a));
        });
      }
      start = end + 1;
    }
  }
  return suite;
}

std::vector<WorkloadSpec> graph_suite_filtered(const std::string& name,
                                               int scale_shift) {
  std::vector<WorkloadSpec> out;
  for (auto& spec : graph_suite(scale_shift)) {
    if (spec.name == name) out.push_back(std::move(spec));
  }
  return out;
}

}  // namespace msx
