// Serial and parallel prefix sums.
//
// CSR construction turns per-row counts into row pointers. The library-wide
// convention: a (n+1)-sized vector with v[0] == 0 and v[i+1] holding the
// count of row i becomes the offsets array via an in-place inclusive scan —
// counts_to_offsets(). For large inputs the scan is parallelized with the
// two-pass block-sum algorithm.
#pragma once

#include <omp.h>

#include <cstddef>
#include <vector>

#include "common/platform.hpp"

namespace msx {

// In-place exclusive scan of data[0..n); returns the total sum. Serial.
template <class T>
T exclusive_scan_serial(T* data, std::size_t n) {
  T sum{};
  for (std::size_t i = 0; i < n; ++i) {
    T v = data[i];
    data[i] = sum;
    sum += v;
  }
  return sum;
}

// In-place inclusive scan of data[0..n). Serial.
template <class T>
void inclusive_scan_serial(T* data, std::size_t n) {
  T sum{};
  for (std::size_t i = 0; i < n; ++i) {
    sum += data[i];
    data[i] = sum;
  }
}

// In-place parallel inclusive scan (two-pass block-sum algorithm); falls
// back to serial for small inputs.
template <class T>
void inclusive_scan(T* data, std::size_t n) {
  constexpr std::size_t kSerialCutoff = 1 << 15;
  const int nthreads = omp_get_max_threads();
  if (n < kSerialCutoff || nthreads == 1) {
    inclusive_scan_serial(data, n);
    return;
  }

  const std::size_t nblocks = static_cast<std::size_t>(nthreads);
  const std::size_t block = ceil_div(n, nblocks);
  std::vector<T> block_sums(nblocks, T{});

#pragma omp parallel num_threads(nthreads)
  {
    const auto b = static_cast<std::size_t>(omp_get_thread_num());
    const std::size_t lo = b * block < n ? b * block : n;
    const std::size_t hi = lo + block < n ? lo + block : n;
    T sum{};
    for (std::size_t i = lo; i < hi; ++i) sum += data[i];
    block_sums[b] = sum;

#pragma omp barrier
#pragma omp single
    { exclusive_scan_serial(block_sums.data(), nblocks); }

    T run = block_sums[b];
    for (std::size_t i = lo; i < hi; ++i) {
      run += data[i];
      data[i] = run;
    }
  }
}

// In-place parallel exclusive scan; returns the total sum.
template <class T>
T exclusive_scan(T* data, std::size_t n) {
  constexpr std::size_t kSerialCutoff = 1 << 15;
  const int nthreads = omp_get_max_threads();
  if (n < kSerialCutoff || nthreads == 1) {
    return exclusive_scan_serial(data, n);
  }
  const std::size_t nblocks = static_cast<std::size_t>(nthreads);
  const std::size_t block = ceil_div(n, nblocks);
  std::vector<T> block_sums(nblocks + 1, T{});

#pragma omp parallel num_threads(nthreads)
  {
    const auto b = static_cast<std::size_t>(omp_get_thread_num());
    const std::size_t lo = b * block < n ? b * block : n;
    const std::size_t hi = lo + block < n ? lo + block : n;
    T sum{};
    for (std::size_t i = lo; i < hi; ++i) sum += data[i];
    block_sums[b] = sum;

#pragma omp barrier
#pragma omp single
    { exclusive_scan_serial(block_sums.data(), nblocks + 1); }

    T run = block_sums[b];
    for (std::size_t i = lo; i < hi; ++i) {
      T v = data[i];
      data[i] = run;
      run += v;
    }
  }
  return block_sums[nblocks];
}

// Library-wide "counts -> row pointers" operation. Input: v.size() == n+1,
// v[0] == 0, v[i+1] = count of row i. Output: v[i] = offset of row i,
// v[n] = total. (Equivalently: in-place inclusive scan of the whole vector.)
template <class T>
void counts_to_offsets(std::vector<T>& v) {
  MSX_ASSERT(!v.empty());
  MSX_ASSERT(v[0] == T{});
  inclusive_scan(v.data(), v.size());
}

}  // namespace msx
