#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace msx {

SampleStats summarize(std::vector<double> samples) {
  SampleStats s;
  s.n = samples.size();
  if (samples.empty()) return s;

  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  const std::size_t n = samples.size();
  s.median = (n % 2 == 1) ? samples[n / 2]
                          : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);

  double sum = 0.0;
  for (double x : samples) sum += x;
  s.mean = sum / static_cast<double>(n);

  if (n > 1) {
    double ss = 0.0;
    for (double x : samples) {
      const double d = x - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(n - 1));
  }
  return s;
}

double relative_stddev(const SampleStats& s) {
  return s.mean == 0.0 ? 0.0 : s.stddev / s.mean;
}

}  // namespace msx
