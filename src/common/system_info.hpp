// Host introspection printed in benchmark headers so results are
// interpretable (the paper reports Haswell/KNL configurations; we report
// whatever machine the reproduction runs on).
#pragma once

#include <string>

namespace msx {

struct SystemInfo {
  int logical_cpus = 0;
  int omp_max_threads = 0;
  std::string compiler;
  std::string build_type;
};

SystemInfo query_system_info();

// One-line summary, e.g. "cpus=8 omp_threads=8 compiler=GNU 12.2.0".
std::string system_info_line();

}  // namespace msx
