// Small descriptive-statistics helpers used by the benchmark harness.
#pragma once

#include <cstddef>
#include <vector>

namespace msx {

struct SampleStats {
  std::size_t n = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1 denominator)
};

// Computes summary statistics of the samples (copies; input left unchanged).
SampleStats summarize(std::vector<double> samples);

// Relative standard deviation (stddev / mean); 0 when mean == 0.
double relative_stddev(const SampleStats& s);

}  // namespace msx
