#include "common/env.hpp"

#include <cstdlib>
#include <exception>

namespace msx {

long long env_int(const std::string& name, long long dflt) {
  const char* v = std::getenv(name.c_str());
  if (!v || !*v) return dflt;
  try {
    return std::stoll(v);
  } catch (const std::exception&) {
    return dflt;
  }
}

std::string env_string(const std::string& name, const std::string& dflt) {
  const char* v = std::getenv(name.c_str());
  return (v && *v) ? std::string(v) : dflt;
}

}  // namespace msx
