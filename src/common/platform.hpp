// Platform macros and small compile-time helpers shared across the library.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#if defined(__GNUC__) || defined(__clang__)
#define MSX_FORCE_INLINE inline __attribute__((always_inline))
#define MSX_NO_INLINE __attribute__((noinline))
#define MSX_LIKELY(x) __builtin_expect(!!(x), 1)
#define MSX_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define MSX_RESTRICT __restrict__
#else
#define MSX_FORCE_INLINE inline
#define MSX_NO_INLINE
#define MSX_LIKELY(x) (x)
#define MSX_UNLIKELY(x) (x)
#define MSX_RESTRICT
#endif

namespace msx {

// Size of a cache line used for padding per-thread state to avoid false
// sharing. 64 bytes covers x86-64 and most aarch64 parts.
inline constexpr std::size_t kCacheLineBytes = 64;

// Debug-mode assertion used in hot paths. Enabled by the MSX_BOUNDS_CHECK
// compile definition independently of NDEBUG so Release builds can opt in.
#if defined(MSX_BOUNDS_CHECK) && MSX_BOUNDS_CHECK
#define MSX_ASSERT(cond) assert(cond)
#else
#define MSX_ASSERT(cond) ((void)0)
#endif

// Unconditional check for API-boundary validation: throws std::invalid_argument.
inline void check_arg(bool cond, const std::string& msg) {
  if (MSX_UNLIKELY(!cond)) throw std::invalid_argument(msg);
}

// Round x up to the next power of two (x > 0). Returns 1 for x == 0.
constexpr std::uint64_t next_pow2(std::uint64_t x) {
  if (x <= 1) return 1;
  --x;
  x |= x >> 1;
  x |= x >> 2;
  x |= x >> 4;
  x |= x >> 8;
  x |= x >> 16;
  x |= x >> 32;
  return x + 1;
}

// Integer ceil division.
template <class T>
constexpr T ceil_div(T a, T b) {
  return static_cast<T>((a + b - 1) / b);
}

}  // namespace msx
