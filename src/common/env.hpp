// Environment-variable helpers shared by the bench harness.
#pragma once

#include <string>

namespace msx {

// Reads an integer from the environment; returns dflt if unset/unparsable.
long long env_int(const std::string& name, long long dflt);

// Reads a string from the environment; returns dflt if unset.
std::string env_string(const std::string& name, const std::string& dflt);

}  // namespace msx
