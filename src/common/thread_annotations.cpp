// Debug lock-order checker runtime (see thread_annotations.hpp).
//
// Per-thread bookkeeping only: each thread records the ranked mutexes it
// currently holds, and acquiring a ranked mutex while holding one of equal or
// higher rank is a hierarchy violation. No global state, no atomics, no
// locking of its own — the held stack is thread_local, so the checker adds a
// handful of stores per acquisition in debug builds and does not perturb the
// schedules TSan explores.
#include "common/thread_annotations.hpp"

#if MSX_LOCK_ORDER_CHECK

#include <cstdio>
#include <cstdlib>

namespace msx {

namespace {

// Deepest legal nesting is the full hierarchy (currently 12 layers); 32
// leaves generous headroom for unranked leaf mutexes held alongside.
constexpr int kMaxHeld = 32;

struct HeldEntry {
  const void* mutex;
  LockRank rank;
  const char* name;
  const char* file;
  int line;
};

struct HeldStack {
  HeldEntry entries[kMaxHeld];
  int depth = 0;
};

thread_local HeldStack t_held;

LockOrderHandler g_handler = nullptr;

void default_handler(const LockOrderViolation& v) {
  std::fprintf(
      stderr,
      "msx: lock-order violation: acquiring \"%s\" (rank %u) at %s:%d while "
      "holding \"%s\" (rank %u) acquired at %s:%d\n"
      "msx: the lock hierarchy requires strictly increasing ranks; see "
      "LockRank in src/common/thread_annotations.hpp\n",
      v.acquiring_name, static_cast<unsigned>(v.acquiring_rank),
      v.acquiring_file, v.acquiring_line, v.held_name,
      static_cast<unsigned>(v.held_rank), v.held_file, v.held_line);
  std::abort();
}

}  // namespace

LockOrderHandler set_lock_order_handler(LockOrderHandler handler) {
  LockOrderHandler prev = g_handler;
  g_handler = handler;
  return prev;
}

namespace detail {

void lock_order_on_acquire(const void* mutex, LockRank rank, const char* name,
                           const char* file, int line) {
  HeldStack& held = t_held;
  if (rank != LockRank::kUnranked) {
    for (int i = 0; i < held.depth; ++i) {
      const HeldEntry& e = held.entries[i];
      if (e.rank != LockRank::kUnranked && e.rank >= rank) {
        LockOrderViolation v{e.name, e.rank,  e.file, e.line,
                             name,   rank,    file,   line};
        if (g_handler != nullptr) {
          g_handler(v);
        } else {
          default_handler(v);
        }
        // Handler returned (test seam): record the acquisition anyway so the
        // release bookkeeping stays balanced.
        break;
      }
    }
  }
  if (held.depth < kMaxHeld) {
    held.entries[held.depth] = HeldEntry{mutex, rank, name, file, line};
    ++held.depth;
  }
  // Overflow: silently stop tracking the excess — order checks still run
  // against the first kMaxHeld held mutexes.
}

void lock_order_on_release(const void* mutex) {
  HeldStack& held = t_held;
  // Releases are usually LIFO (scoped locks) — scan from the top.
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.entries[i].mutex == mutex) {
      for (int j = i; j + 1 < held.depth; ++j) {
        held.entries[j] = held.entries[j + 1];
      }
      --held.depth;
      return;
    }
  }
  // Not found: either stack overflowed past kMaxHeld or the mutex was locked
  // through native_handle(); nothing to unwind.
}

}  // namespace detail

}  // namespace msx

#else  // !MSX_LOCK_ORDER_CHECK

// Release builds compile the checker away; keep the TU non-empty for
// portability of the build graph.
namespace msx::detail {
void thread_annotations_release_anchor() {}
}  // namespace msx::detail

#endif  // MSX_LOCK_ORDER_CHECK
