#include "common/cli.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace msx {
namespace {

std::string env_name(const std::string& key) {
  std::string name = "MSX_";
  for (char c : key) {
    name += (c == '-') ? '_' : static_cast<char>(std::toupper(c));
  }
  return name;
}

bool parse_bool(const std::string& v) {
  std::string s = v;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s.empty() || s == "1" || s == "true" || s == "yes" || s == "on")
    return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  throw std::invalid_argument("cannot parse boolean value: " + v);
}

}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "";  // bare flag
    }
  }
}

std::optional<std::string> ArgParser::raw(const std::string& key) const {
  if (auto it = options_.find(key); it != options_.end()) return it->second;
  if (const char* env = std::getenv(env_name(key).c_str())) {
    return std::string(env);
  }
  return std::nullopt;
}

bool ArgParser::has(const std::string& key) const {
  return raw(key).has_value();
}

std::string ArgParser::get_string(const std::string& key,
                                  const std::string& dflt) const {
  auto v = raw(key);
  return v ? *v : dflt;
}

long long ArgParser::get_int(const std::string& key, long long dflt) const {
  auto v = raw(key);
  if (!v || v->empty()) return dflt;
  return std::stoll(*v);
}

double ArgParser::get_double(const std::string& key, double dflt) const {
  auto v = raw(key);
  if (!v || v->empty()) return dflt;
  return std::stod(*v);
}

bool ArgParser::get_bool(const std::string& key, bool dflt) const {
  auto v = raw(key);
  if (!v) return dflt;
  return parse_bool(*v);
}

}  // namespace msx
