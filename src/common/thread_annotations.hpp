// Compile-time concurrency correctness layer (ISSUE 6 tentpole).
//
// Three pieces, stacked:
//
//   1. Capability macros for Clang's -Wthread-safety analysis. On Clang every
//      MSX_GUARDED_BY / MSX_REQUIRES / MSX_ACQUIRE contract is checked at
//      compile time — an access to a guarded member without its mutex held is
//      a build error under -Werror=thread-safety. On every other compiler the
//      macros expand to nothing, so gcc builds (and the ASan/TSan CI jobs)
//      are unaffected.
//
//   2. Annotated synchronization primitives: msx::Mutex (a capability),
//      msx::MutexLock (a scoped capability) and msx::CondVar (waits declare
//      MSX_REQUIRES on the mutex). These wrap std::mutex /
//      std::condition_variable with zero Release-mode overhead —
//      tests/runtime/test_lock_order.cpp pins sizeof(msx::Mutex) ==
//      sizeof(std::mutex) in Release — and are what lets the static analysis
//      see the library's locking at all: libstdc++'s primitives carry no
//      annotations.
//
//   3. A debug-build lock-order checker. The static analysis proves "right
//      mutex for this member" but cannot see cross-layer acquisition ORDER
//      (executor → plan cache → connection pool spans compilation units and
//      callbacks). Each Mutex therefore carries a LockRank; in debug builds
//      acquiring a ranked mutex while holding one of equal or higher rank
//      reports both hold sites and aborts (tests can intercept via
//      set_lock_order_handler). Release builds compile the checker away
//      entirely.
//
// The only MSX_NO_THREAD_SAFETY_ANALYSIS escapes in the library live in this
// header, on the wrapper bodies themselves — the analysis cannot see through
// std::mutex, so the wrappers assert their contracts rather than derive them.
#pragma once

#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <mutex>

// --- 1. capability macros ---------------------------------------------------

#if defined(__clang__)
#define MSX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MSX_THREAD_ANNOTATION(x)  // no-op on gcc/MSVC: contracts are Clang-checked
#endif

// A type whose instances are capabilities (mutexes).
#define MSX_CAPABILITY(x) MSX_THREAD_ANNOTATION(capability(x))
// An RAII type that acquires a capability in its constructor and releases it
// in its destructor.
#define MSX_SCOPED_CAPABILITY MSX_THREAD_ANNOTATION(scoped_lockable)
// Member may only be read/written while holding the given mutex(es).
#define MSX_GUARDED_BY(x) MSX_THREAD_ANNOTATION(guarded_by(x))
// Pointer member: the pointee (not the pointer) is guarded.
#define MSX_PT_GUARDED_BY(x) MSX_THREAD_ANNOTATION(pt_guarded_by(x))
// Function contract: caller must hold the mutex(es).
#define MSX_REQUIRES(...) \
  MSX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
// Function acquires / releases the mutex(es).
#define MSX_ACQUIRE(...) MSX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MSX_RELEASE(...) MSX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MSX_TRY_ACQUIRE(...) \
  MSX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// Function must be called WITHOUT the mutex(es) held (self-deadlock guard).
#define MSX_EXCLUDES(...) MSX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Function returns a reference to the given capability.
#define MSX_RETURN_CAPABILITY(x) MSX_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch: disables the analysis inside one function body. Reserved for
// the wrapper implementations below; library code must not use it.
#define MSX_NO_THREAD_SAFETY_ANALYSIS \
  MSX_THREAD_ANNOTATION(no_thread_safety_analysis)

// --- lock-order checking switch ---------------------------------------------

// On in debug builds (and overridable either way with -DMSX_LOCK_ORDER_CHECK).
// When off, msx::Mutex is layout- and code-identical to std::mutex.
#ifndef MSX_LOCK_ORDER_CHECK
#ifdef NDEBUG
#define MSX_LOCK_ORDER_CHECK 0
#else
#define MSX_LOCK_ORDER_CHECK 1
#endif
#endif

namespace msx {

// The library-wide lock hierarchy: a thread may only acquire a ranked mutex
// while every ranked mutex it already holds has a strictly LOWER rank.
// Numbers therefore encode the legal acquisition order, outermost layer
// first. Gaps are deliberate room for future layers. kUnranked mutexes
// (the default) are exempt — use a rank for every mutex that can nest.
//
// Documented in README "Concurrency invariants"; the regression suite
// (tests/runtime/test_lock_order.cpp) provokes an inversion to keep the
// checker honest.
enum class LockRank : std::uint32_t {
  kUnranked = 0,         // opts out of order checking (leaf/test mutexes)
  kClientSession = 10,   // client::Session in-flight gauge
  kClientBackend = 20,   // Local/ShardedBackend registry + connection state
  kRouter = 30,          // ShardRouter health/affinity state
  kConnectionPool = 35,  // per-shard idle connection pools (nested in kRouter)
  kShard = 40,           // ServiceShard connections/listeners/stats/responses
  kExecutor = 50,        // BatchExecutor admission + wide lane
  kThreadPool = 60,      // ThreadPool task queues
  kTaskState = 65,       // per-run helper/arena completion state
  kPlanCache = 70,       // PlanCache index + lease flags
  kKernelWorkspace = 80, // plan-kernel workspace free lists
  kAdaptiveFeedback = 85, // adaptive-engine feedback store (leaf; acquired
                          // between executes, never while a workspace or
                          // plan-cache lock is held)
  kTransport = 90,       // byte queues, loopback listeners (leaf I/O)
  kObsRegistry = 95,     // obs trace-ring + metrics registries (leaf; may be
                         // acquired while holding any of the above)
};

#if MSX_LOCK_ORDER_CHECK

// Everything the checker knows about one rank violation: where the already-
// held mutex was acquired and where the inverted acquisition is happening.
struct LockOrderViolation {
  const char* held_name;
  LockRank held_rank;
  const char* held_file;
  int held_line;
  const char* acquiring_name;
  LockRank acquiring_rank;
  const char* acquiring_file;
  int acquiring_line;
};

// Installed handler receives the violation instead of the default
// report-and-abort — this is how the regression test observes the seeded
// inversion without dying. Returns the previous handler; pass nullptr to
// restore the default. Not thread-safe against concurrent violations by
// design (it is a test seam).
using LockOrderHandler = void (*)(const LockOrderViolation&);
LockOrderHandler set_lock_order_handler(LockOrderHandler handler);

namespace detail {
// Per-thread held-mutex bookkeeping (thread_annotations.cpp).
void lock_order_on_acquire(const void* mutex, LockRank rank, const char* name,
                           const char* file, int line);
void lock_order_on_release(const void* mutex);
}  // namespace detail

#endif  // MSX_LOCK_ORDER_CHECK

// --- 2. annotated primitives ------------------------------------------------

// std::mutex with a statically checkable capability and (debug) a lock rank.
// Construct with the layer's LockRank so the debug checker can assert the
// cross-layer acquisition order; the name shows up in violation reports.
class MSX_CAPABILITY("mutex") Mutex {
 public:
#if MSX_LOCK_ORDER_CHECK
  explicit Mutex(LockRank rank = LockRank::kUnranked,
                 const char* name = "mutex")
      : rank_(rank), name_(name) {}
#else
  // Release: rank and name are compile-time discarded; the object is exactly
  // a std::mutex (test_lock_order.cpp static_asserts the layout).
  explicit Mutex(LockRank = LockRank::kUnranked, const char* = "mutex") {}
#endif

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // The wrapper bodies opt out of the analysis: std::mutex carries no
  // annotations, so the analysis could not verify that lock() acquires —
  // the MSX_ACQUIRE contract is the ground truth callers are checked against.
  void lock(const char* file = __builtin_FILE(),
            int line = __builtin_LINE()) MSX_ACQUIRE()
      MSX_NO_THREAD_SAFETY_ANALYSIS {
#if MSX_LOCK_ORDER_CHECK
    detail::lock_order_on_acquire(this, rank_, name_, file, line);
#else
    (void)file;
    (void)line;
#endif
    mu_.lock();
  }

  void unlock() MSX_RELEASE() MSX_NO_THREAD_SAFETY_ANALYSIS {
    mu_.unlock();
#if MSX_LOCK_ORDER_CHECK
    detail::lock_order_on_release(this);
#endif
  }

  // try_lock is exempt from order checking: a failed attempt cannot deadlock,
  // which is exactly why lock-free fallbacks use it.
  bool try_lock(const char* file = __builtin_FILE(),
                int line = __builtin_LINE()) MSX_TRY_ACQUIRE(true)
      MSX_NO_THREAD_SAFETY_ANALYSIS {
    const bool ok = mu_.try_lock();
#if MSX_LOCK_ORDER_CHECK
    if (ok) {
      detail::lock_order_on_acquire(this, LockRank::kUnranked, name_, file,
                                    line);
    }
#else
    (void)file;
    (void)line;
#endif
    return ok;
  }

  // For interop with std waiting machinery (CondVar below); using it to
  // bypass the annotated surface forfeits the static checking.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
#if MSX_LOCK_ORDER_CHECK
  LockRank rank_;
  const char* name_;
#endif
};

// Scoped acquisition — the annotated std::lock_guard. The analysis treats
// the constructor as acquiring `mu` and the destructor as releasing it, so a
// guarded member accessed inside the scope type-checks.
class MSX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu, const char* file = __builtin_FILE(),
                     int line = __builtin_LINE()) MSX_ACQUIRE(mu)
      : mu_(mu) {
    mu_->lock(file, line);
  }
  ~MutexLock() MSX_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Condition variable bound to msx::Mutex. Waits require the mutex by
// contract, which keeps guarded predicate reads inside the wait loop
// statically checked:
//
//   MutexLock lock(&mu_);
//   while (!stop_ && queue_.empty()) cv_.wait(mu_);   // members guarded by mu_
//
// (Explicit while-loops instead of the predicate overloads of
// std::condition_variable: the analysis does not propagate capabilities into
// lambdas, so a predicate lambda reading guarded members would not check.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu` while blocked and reacquires it before
  // returning — the caller holds `mu` across the call as far as both the
  // static analysis and the lock-order checker are concerned (the checker's
  // held set is per-thread, so the handoff while blocked is invisible to it,
  // which matches the semantics: this thread cannot acquire anything while
  // parked).
  void wait(Mutex& mu) MSX_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.native_handle(), std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  // Timed wait; returns std::cv_status::timeout when `rel` elapsed. Callers
  // re-check their predicate in a loop exactly as with wait().
  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& rel)
      MSX_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.native_handle(), std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, rel);
    native.release();
    return status;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace msx
