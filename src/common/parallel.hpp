// OpenMP helpers: thread configuration, scheduled parallel loops and
// per-thread workspaces.
//
// The paper parallelizes Masked SpGEMM coarsely across output rows (§3);
// everything here supports that model: a parallel_for with a runtime-chosen
// schedule and a PerThread<T> pool that hands each OpenMP thread its own
// cache-line-padded workspace (accumulator arrays are reused across rows).
#pragma once

#include <omp.h>

#include <cstddef>
#include <cstdint>
#include <new>
#include <span>
#include <utility>
#include <vector>

#include "common/platform.hpp"

namespace msx {

// Loop scheduling policy for row-parallel drivers. Guided/dynamic help with
// the load imbalance that skewed (R-MAT-like) degree distributions create;
// kFlopBalanced goes further and partitions rows by estimated cost
// (core/partition.hpp) so a handful of hub rows cannot serialize the tail.
// kAuto — the default — lets the library pick: the masked drivers resolve it
// to kFlopBalanced; raw parallel_for treats it as dynamic. A sentinel (not
// an inferred upgrade) so that every explicitly chosen schedule, including
// kDynamic, is always honoured.
enum class Schedule {
  kAuto,
  kStatic,
  kDynamic,
  kGuided,
  kFlopBalanced,
};

inline const char* to_string(Schedule s) {
  switch (s) {
    case Schedule::kAuto: return "auto";
    case Schedule::kStatic: return "static";
    case Schedule::kDynamic: return "dynamic";
    case Schedule::kGuided: return "guided";
    case Schedule::kFlopBalanced: return "flopbalanced";
  }
  return "?";
}

// Number of threads an upcoming parallel region will use.
inline int max_threads() { return omp_get_max_threads(); }

// RAII override of the global thread count (0 = leave unchanged).
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n) : saved_(omp_get_max_threads()) {
    if (n > 0) omp_set_num_threads(n);
  }
  ~ScopedNumThreads() { omp_set_num_threads(saved_); }
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  int saved_;
};

// Parallel loop over [begin, end) with the requested schedule. The body
// receives the iteration index. Chunk size 0 lets OpenMP pick its default.
template <class Index, class Body>
void parallel_for(Index begin, Index end, Schedule sched, Body&& body,
                  int chunk = 0) {
  const std::int64_t b = static_cast<std::int64_t>(begin);
  const std::int64_t e = static_cast<std::int64_t>(end);
  switch (sched) {
    case Schedule::kStatic:
#pragma omp parallel for schedule(static)
      for (std::int64_t i = b; i < e; ++i) body(static_cast<Index>(i));
      break;
    case Schedule::kAuto:  // no partition context at this level
    case Schedule::kDynamic: {
      const int c = chunk > 0 ? chunk : 64;
#pragma omp parallel for schedule(dynamic, c)
      for (std::int64_t i = b; i < e; ++i) body(static_cast<Index>(i));
      break;
    }
    case Schedule::kGuided:
#pragma omp parallel for schedule(guided)
      for (std::int64_t i = b; i < e; ++i) body(static_cast<Index>(i));
      break;
    case Schedule::kFlopBalanced: {
      // Cost-balanced dispatch needs a precomputed partition
      // (parallel_for_blocks below); without one the best index-only
      // approximation is dynamic scheduling.
      const int c = chunk > 0 ? chunk : 64;
#pragma omp parallel for schedule(dynamic, c)
      for (std::int64_t i = b; i < e; ++i) body(static_cast<Index>(i));
      break;
    }
  }
}

// Block-granular companion of parallel_for: dispatches precomputed
// contiguous index blocks dynamically, one block at a time. `block_start`
// holds nblocks+1 ascending boundaries (block b covers [block_start[b],
// block_start[b+1])); core/partition.hpp builds them with near-equal
// estimated cost, which is what makes Schedule::kFlopBalanced immune to
// power-law row-cost skew. The body receives the executing thread's id, the
// block index and the block's [lo, hi) range — block granularity is what
// lets the phase driver run a per-block prologue (per-block accumulator
// sizing) before the row loop.
template <class Index, class Body>
void parallel_for_block_ranges(std::span<const std::int64_t> block_start,
                               Body&& body) {
  if (block_start.size() < 2) return;
  const auto nblocks = static_cast<std::int64_t>(block_start.size()) - 1;
#pragma omp parallel for schedule(dynamic, 1)
  for (std::int64_t blk = 0; blk < nblocks; ++blk) {
    const std::int64_t lo = block_start[static_cast<std::size_t>(blk)];
    const std::int64_t hi = block_start[static_cast<std::size_t>(blk) + 1];
    body(omp_get_thread_num(), static_cast<int>(blk), static_cast<Index>(lo),
         static_cast<Index>(hi));
  }
}

// Row-granular form: the body receives each index of every block exactly
// once, so any per-row output contract of parallel_for carries over
// unchanged.
template <class Index, class Body>
void parallel_for_blocks(std::span<const std::int64_t> block_start,
                         Body&& body) {
  parallel_for_block_ranges<Index>(
      block_start, [&](int, int, Index lo, Index hi) {
        for (Index i = lo; i < hi; ++i) body(i);
      });
}

// Per-thread object pool. Each slot is aligned to a cache line so adjacent
// threads' workspaces never share a line. Objects are default-constructed
// lazily; local() must be called from inside a parallel region (or serial
// code, where it returns slot 0).
template <class T>
class PerThread {
 public:
  PerThread() : slots_(static_cast<std::size_t>(omp_get_max_threads())) {}
  explicit PerThread(int nthreads)
      : slots_(static_cast<std::size_t>(nthreads > 0 ? nthreads
                                                     : omp_get_max_threads())) {}

  T& local() {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    MSX_ASSERT(tid < slots_.size());
    return slots_[tid].value;
  }

  std::size_t size() const { return slots_.size(); }
  T& slot(std::size_t i) { return slots_[i].value; }
  const T& slot(std::size_t i) const { return slots_[i].value; }

 private:
  struct alignas(kCacheLineBytes) Padded {
    T value{};
  };
  std::vector<Padded> slots_;
};

}  // namespace msx
