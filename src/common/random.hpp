// Deterministic, fast pseudo-random number generation.
//
// All generators in the library are seeded explicitly so that every matrix,
// workload and test is reproducible bit-for-bit across runs and thread
// counts. SplitMix64 is used for seeding / hashing, Xoshiro256** for bulk
// stream generation (both public-domain algorithms by Blackman & Vigna).
#pragma once

#include <cstdint>
#include <limits>

#include "common/platform.hpp"

namespace msx {

// SplitMix64: tiny, high-quality 64-bit mixer. Good for seed expansion and
// integer hashing; every call advances the internal state by a Weyl constant.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Stateless mix of a 64-bit value; used as a cheap hash.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Xoshiro256**: fast all-purpose generator with 256-bit state.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Unbiased uniform integer in [0, bound) using Lemire's multiply-shift
  // rejection method.
  std::uint64_t next_below(std::uint64_t bound) {
    MSX_ASSERT(bound > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (MSX_UNLIKELY(lo < bound)) {
      const std::uint64_t threshold = (0ULL - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Jump the stream far ahead; used to derive independent per-thread streams.
  void long_jump() {
    static constexpr std::uint64_t kJump[] = {
        0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
        0x39109bb02acbe635ULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t jump : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (jump & (1ULL << b)) {
          s0 ^= s_[0];
          s1 ^= s_[1];
          s2 ^= s_[2];
          s3 ^= s_[3];
        }
        next();
      }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace msx
