// Execution context: who runs a parallel loop, and with how many workers.
//
// The masked drivers were written against OpenMP: every pass assumes it owns
// the global thread team and indexes per-thread workspaces by
// omp_get_thread_num(). That model breaks down the moment many products run
// concurrently (the runtime/ batch executor): a small product scheduled on
// one pool worker must not fork a team, and a large product parallelized
// over pool workers needs workspace slots that have nothing to do with
// OpenMP thread ids.
//
// ExecContext abstracts exactly that seam. Three modes:
//
//   * kOpenMP — the historical default. Loops run through parallel_for /
//     parallel_for_block_ranges, slots are OpenMP thread ids. Every
//     stateless masked_spgemm call and every plan.execute() without an
//     explicit context behaves exactly as before.
//   * kSerial — the loop body runs on the calling thread, slot 0, and no
//     OpenMP region is entered. This is how the batch executor achieves
//     inter-job parallelism for small products: one job per pool worker,
//     each fully serial inside.
//   * kArena — the loop is executed cooperatively by the calling thread
//     (always) plus however many TaskArena helpers are idle, via a shared
//     work counter. Slots are arena slots ([0, concurrency())), stable per
//     thread for the duration of one loop. This is intra-job parallelism
//     without OpenMP — runtime/thread_pool.hpp provides the arena.
//
// Loop bodies receive their slot explicitly — body(slot, ...) — so callers
// index PerThread pools with workspaces.slot(slot) instead of local().
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <span>

#include "common/parallel.hpp"
#include "common/platform.hpp"

namespace msx {

// Something that can lend worker threads to a cooperative loop. Implemented
// by runtime/thread_pool.hpp; kept abstract here so core/ never depends on
// runtime/.
class TaskArena {
 public:
  virtual ~TaskArena() = default;

  // Workspace slots a cooperative loop may occupy, including the calling
  // thread. Constant over the arena's lifetime.
  virtual int concurrency() const = 0;

  // Slot of the calling thread, in [0, concurrency()). Threads that are not
  // arena workers (e.g. the thread driving a large job) share slot 0; the
  // arena guarantees at most one such caller per run().
  virtual int current_slot() const = 0;

  // Runs body(current_slot()) on the calling thread and offers body to every
  // idle helper (each with its own slot). Returns once all invocations have
  // finished. body must terminate on its own when the shared work is
  // exhausted: helpers may begin at any time, including after the caller has
  // drained everything.
  virtual void run(const std::function<void(int)>& body) = 0;
};

class ExecContext {
 public:
  enum class Mode { kOpenMP, kSerial, kArena };

  // The historical OpenMP behaviour; default for every public entry point.
  static const ExecContext& openmp() {
    static const ExecContext ctx(Mode::kOpenMP, nullptr);
    return ctx;
  }

  // Single-threaded on the calling thread; never enters an OpenMP region.
  static ExecContext serial() { return ExecContext(Mode::kSerial, nullptr); }

  // Cooperative execution on `arena` (caller + idle helpers). The arena must
  // outlive the context.
  static ExecContext arena(TaskArena& arena) {
    return ExecContext(Mode::kArena, &arena);
  }

  Mode mode() const { return mode_; }
  bool is_openmp() const { return mode_ == Mode::kOpenMP; }
  bool is_serial() const { return mode_ == Mode::kSerial; }

  // Number of workspace slots loops may address. `threads_opt` is the
  // caller's opts.threads override, honoured only in OpenMP mode (the other
  // modes derive concurrency from the context itself).
  int concurrency(int threads_opt = 0) const {
    switch (mode_) {
      case Mode::kOpenMP:
        return threads_opt > 0 ? threads_opt : max_threads();
      case Mode::kSerial:
        return 1;
      case Mode::kArena:
        return arena_->concurrency();
    }
    return 1;
  }

  // Parallel loop over [0, nrows); body(slot, i). In OpenMP mode `sched` and
  // `chunk` are honoured exactly as parallel_for always did; the other modes
  // ignore them (serial order, or arena chunks sized for ~8 grabs per
  // worker).
  template <class Index, class Body>
  void for_rows(Index nrows, Schedule sched, int chunk, Body&& body) const {
    const auto n = static_cast<std::int64_t>(nrows);
    switch (mode_) {
      case Mode::kOpenMP:
        parallel_for(Index{0}, nrows, sched,
                     [&](Index i) { body(omp_get_thread_num(), i); }, chunk);
        return;
      case Mode::kSerial:
        for (std::int64_t i = 0; i < n; ++i) {
          body(0, static_cast<Index>(i));
        }
        return;
      case Mode::kArena: {
        if (n <= 0) return;
        // `chunk` is deliberately ignored here (as documented above): it is
        // an OpenMP dynamic-schedule tuning knob, and honouring a tiny
        // value would degrade the shared-counter loop to one fetch_add per
        // row.
        const std::int64_t workers = arena_->concurrency();
        const std::int64_t grab =
            std::max<std::int64_t>(1, n / (workers * 8));
        // A range that fits one grab cannot feed a second worker — run it
        // inline and skip the helper coordination entirely.
        if (n <= grab) {
          const int slot = arena_->current_slot();
          for (std::int64_t i = 0; i < n; ++i) {
            body(slot, static_cast<Index>(i));
          }
          return;
        }
        std::atomic<std::int64_t> next{0};
        arena_->run([&](int slot) {
          for (;;) {
            const std::int64_t lo =
                next.fetch_add(grab, std::memory_order_relaxed);
            if (lo >= n) break;
            const std::int64_t hi = std::min<std::int64_t>(n, lo + grab);
            for (std::int64_t i = lo; i < hi; ++i) {
              body(slot, static_cast<Index>(i));
            }
          }
        });
        return;
      }
    }
  }

  // Dispatches precomputed contiguous blocks (core/partition.hpp bounds:
  // nblocks+1 ascending boundaries); body(slot, blk, lo, hi) processes rows
  // [lo, hi) of block blk. Blocks are handed out dynamically in OpenMP and
  // arena modes, in order in serial mode; every block is dispatched exactly
  // once either way.
  template <class Index, class Body>
  void for_block_ranges(std::span<const std::int64_t> bounds,
                        Body&& body) const {
    if (bounds.size() < 2) return;
    const auto nblocks = static_cast<std::int64_t>(bounds.size()) - 1;
    switch (mode_) {
      case Mode::kOpenMP:
        parallel_for_block_ranges<Index>(bounds, std::forward<Body>(body));
        return;
      case Mode::kSerial:
        for (std::int64_t blk = 0; blk < nblocks; ++blk) {
          body(0, static_cast<int>(blk),
               static_cast<Index>(bounds[static_cast<std::size_t>(blk)]),
               static_cast<Index>(bounds[static_cast<std::size_t>(blk) + 1]));
        }
        return;
      case Mode::kArena: {
        if (nblocks == 1) {  // nothing to share — skip helper coordination
          body(arena_->current_slot(), 0, static_cast<Index>(bounds[0]),
               static_cast<Index>(bounds[1]));
          return;
        }
        std::atomic<std::int64_t> next{0};
        arena_->run([&](int slot) {
          for (;;) {
            const std::int64_t blk =
                next.fetch_add(1, std::memory_order_relaxed);
            if (blk >= nblocks) break;
            body(slot, static_cast<int>(blk),
                 static_cast<Index>(bounds[static_cast<std::size_t>(blk)]),
                 static_cast<Index>(
                     bounds[static_cast<std::size_t>(blk) + 1]));
          }
        });
        return;
      }
    }
  }

 private:
  ExecContext(Mode mode, TaskArena* arena) : mode_(mode), arena_(arena) {}

  Mode mode_;
  TaskArena* arena_;
};

}  // namespace msx
