#include "common/system_info.hpp"

#include <omp.h>

#include <sstream>
#include <thread>

namespace msx {

SystemInfo query_system_info() {
  SystemInfo info;
  info.logical_cpus = static_cast<int>(std::thread::hardware_concurrency());
  info.omp_max_threads = omp_get_max_threads();
#if defined(__clang__)
  info.compiler = "Clang " __clang_version__;
#elif defined(__GNUC__)
  {
    std::ostringstream os;
    os << "GNU " << __GNUC__ << "." << __GNUC_MINOR__ << "."
       << __GNUC_PATCHLEVEL__;
    info.compiler = os.str();
  }
#else
  info.compiler = "unknown";
#endif
#if defined(NDEBUG)
  info.build_type = "Release";
#else
  info.build_type = "Debug";
#endif
  return info;
}

std::string system_info_line() {
  const SystemInfo info = query_system_info();
  std::ostringstream os;
  os << "cpus=" << info.logical_cpus << " omp_threads=" << info.omp_max_threads
     << " compiler=" << info.compiler << " build=" << info.build_type;
  return os.str();
}

}  // namespace msx
