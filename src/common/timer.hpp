// Wall-clock timing helpers.
#pragma once

#include <chrono>
#include <utility>

namespace msx {

// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Time a single call; returns elapsed seconds.
template <class F>
double time_call(F&& f) {
  WallTimer t;
  std::forward<F>(f)();
  return t.seconds();
}

}  // namespace msx
