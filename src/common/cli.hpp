// Minimal command-line/environment option parsing for benches and examples.
//
// Accepted forms: --key=value, --key value, --flag. Every option can also be
// supplied through the environment as MSX_KEY (uppercased, '-' -> '_');
// explicit command-line values win over the environment.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace msx {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  // Value lookup with environment fallback and default.
  std::string get_string(const std::string& key, const std::string& dflt) const;
  long long get_int(const std::string& key, long long dflt) const;
  double get_double(const std::string& key, double dflt) const;
  bool get_bool(const std::string& key, bool dflt) const;

  // True if --key appeared on the command line or MSX_KEY is set.
  bool has(const std::string& key) const;

  // Positional (non --option) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  const std::string& program() const { return program_; }

 private:
  std::optional<std::string> raw(const std::string& key) const;

  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace msx
