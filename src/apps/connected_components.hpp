// Connected components via masked label propagation.
//
// Classic min-label propagation expressed on the (min, first) semiring: each
// round, vertices whose label improved last round (the frontier) push their
// labels to neighbours with a masked SpGEVM; a vertex adopts the minimum
// incoming label if it beats its current one. The "mask" role here is the
// frontier sparsity itself — only changed labels propagate — which is the
// traversal pattern the paper's introduction motivates masked products with.
// Terminates when no label changes (diameter-bounded rounds on each
// component).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/masked_spgevm.hpp"
#include "matrix/csr.hpp"
#include "semiring/semirings.hpp"
#include "vector/sparse_vector.hpp"

namespace msx {

struct CCResult {
  std::vector<std::int64_t> labels;  // per-vertex component id (min vertex)
  std::int64_t num_components = 0;
  int rounds = 0;
};

// `graph` must have a symmetric pattern. Isolated vertices form their own
// components.
template <class IT, class VT>
CCResult connected_components(const CSRMatrix<IT, VT>& graph,
                              MaskedOptions opts = {}) {
  check_arg(graph.nrows() == graph.ncols(), "cc: matrix must be square");
  const IT n = graph.nrows();
  check_arg(opts.algo != MaskedAlgo::kMCA,
            "cc: frontier propagation uses an empty mask; pick another algo");
  opts.kind = MaskKind::kComplement;  // empty mask complement = plain SpGEVM

  using L = std::int64_t;
  const CSRMatrix<IT, L> a(
      n, n, std::vector<IT>(graph.rowptr().begin(), graph.rowptr().end()),
      std::vector<IT>(graph.colidx().begin(), graph.colidx().end()),
      std::vector<L>(graph.nnz(), 1));

  CCResult result;
  result.labels.resize(static_cast<std::size_t>(n));
  for (IT v = 0; v < n; ++v) {
    result.labels[static_cast<std::size_t>(v)] = v;
  }

  // Frontier: vertices whose label changed last round, valued by label.
  SparseVector<IT, L> frontier(n);
  for (IT v = 0; v < n; ++v) frontier.push_back(v, v);
  const SparseVector<IT, L> no_mask(n);

  while (!frontier.empty()) {
    ++result.rounds;
    // candidates[v] = min over frontier in-neighbours u of label[u].
    auto candidates =
        masked_spgevm<MinFirst<L>>(frontier, a, no_mask, opts);
    SparseVector<IT, L> next(n);
    const auto ci = candidates.indices();
    const auto cv = candidates.values();
    for (std::size_t p = 0; p < ci.size(); ++p) {
      auto& label = result.labels[static_cast<std::size_t>(ci[p])];
      if (cv[p] < label) {
        label = cv[p];
        next.push_back(ci[p], cv[p]);
      }
    }
    frontier = std::move(next);
  }

  for (IT v = 0; v < n; ++v) {
    result.num_components +=
        (result.labels[static_cast<std::size_t>(v)] == v);
  }
  return result;
}

}  // namespace msx
