// Triangle counting via Masked SpGEMM (paper §8.2).
//
// Vertices are relabeled in non-increasing degree order (Lumsdaine et al.'s
// optimization, cited by the paper), L is the strictly-lower-triangular part
// of the relabeled adjacency matrix, and the triangle count is
// sum(L .* (L·L)) on the plus-pair semiring — "known to be among the fastest
// ways to compute Triangle Counting". The masked product is the measured
// kernel; relabeling/extraction are reported separately.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "client/client.hpp"
#include "common/timer.hpp"
#include "core/flops.hpp"
#include "core/plan.hpp"
#include "matrix/ops.hpp"
#include "semiring/semirings.hpp"

namespace msx {

struct TriCountResult {
  std::uint64_t triangles = 0;
  double seconds_spgemm = 0.0;  // the Masked SpGEMM only (what §8.2 reports)
  double seconds_total = 0.0;   // including relabel + extraction + reduction
  std::size_t multiplies = 0;   // flops of the masked product's operands
  MaskedAlgo algo = MaskedAlgo::kAuto;  // resolved once by the plan
};

// Which masked formulation counts each triangle exactly once. All are
// mathematically equivalent; they trade the shapes of the mask and inputs
// (Azad et al. / Wolf et al., cited by the paper):
//   kLL : sum(L .* (L·L))  — the paper's choice (§8.2)
//   kLU : sum(L .* (L·U))  — wedge through the middle vertex
//   kUU : sum(U .* (U·U))  — the upper-triangular mirror
enum class TriCountVariant {
  kLL,
  kLU,
  kUU,
};

// `graph` must have a symmetric pattern without self-loops (use
// symmetrize_pattern / remove_diagonal to normalize arbitrary input).
template <class IT, class VT>
TriCountResult triangle_count(const CSRMatrix<IT, VT>& graph,
                              const MaskedOptions& opts = {},
                              TriCountVariant variant = TriCountVariant::kLL) {
  check_arg(graph.nrows() == graph.ncols(),
            "triangle_count: adjacency matrix must be square");
  WallTimer total;

  const auto perm = degree_order_desc(graph);
  const auto relabeled = permute_symmetric(graph, perm);

  TriCountResult result;
  CSRMatrix<IT, std::int64_t> c;
  // Plan/execute split: plan construction carries the setup the paper keeps
  // outside the timed kernel (algorithm resolution; B's CSC copy for the
  // pull-based families), so seconds_spgemm times the masked product alone.
  using SR = PlusPair<std::int64_t>;
  switch (variant) {
    case TriCountVariant::kLL: {
      const auto lower = tril_strict(relabeled);
      result.multiplies = total_flops(lower, lower);
      auto plan = masked_plan<SR>(lower, lower, lower, opts);
      result.algo = plan.algo();
      WallTimer kernel;
      c = plan.execute();
      result.seconds_spgemm = kernel.seconds();
      break;
    }
    case TriCountVariant::kLU: {
      const auto lower = tril_strict(relabeled);
      const auto upper = triu_strict(relabeled);
      result.multiplies = total_flops(lower, upper);
      auto plan = masked_plan<SR>(lower, upper, lower, opts);
      result.algo = plan.algo();
      WallTimer kernel;
      c = plan.execute();
      result.seconds_spgemm = kernel.seconds();
      break;
    }
    case TriCountVariant::kUU: {
      const auto upper = triu_strict(relabeled);
      result.multiplies = total_flops(upper, upper);
      auto plan = masked_plan<SR>(upper, upper, upper, opts);
      result.algo = plan.algo();
      WallTimer kernel;
      c = plan.execute();
      result.seconds_spgemm = kernel.seconds();
      break;
    }
  }

  result.triangles = static_cast<std::uint64_t>(reduce_sum(c));
  result.seconds_total = total.seconds();
  return result;
}

// Client-session variant (ISSUE 5): the masked product is submitted through
// a MaskedClient session, so the same call serves the local runtime or a
// shard fleet. The triangular factors are registered as the stationary
// structure; for kLL/kUU the submit is fully aliased (flags only on the
// wire).
template <class IT, class VT>
TriCountResult triangle_count(
    const CSRMatrix<IT, VT>& graph,
    client::Session<PlusPair<std::int64_t>, IT, std::int64_t>& session,
    const MaskedOptions& opts = {},
    TriCountVariant variant = TriCountVariant::kLL) {
  check_arg(graph.nrows() == graph.ncols(),
            "triangle_count: adjacency matrix must be square");
  WallTimer total;

  const auto perm = degree_order_desc(graph);
  const auto relabeled_vt = permute_symmetric(graph, perm);
  // The session is typed over the plus-pair semiring's int64 operands.
  using Mat = CSRMatrix<IT, std::int64_t>;
  const Mat relabeled(
      relabeled_vt.nrows(), relabeled_vt.ncols(),
      std::vector<IT>(relabeled_vt.rowptr().begin(),
                      relabeled_vt.rowptr().end()),
      std::vector<IT>(relabeled_vt.colidx().begin(),
                      relabeled_vt.colidx().end()),
      std::vector<std::int64_t>(relabeled_vt.nnz(), 1));

  TriCountResult result;
  result.algo = opts.algo;  // resolution happens backend-side
  client::SubmitOptions sopts;
  sopts.masked = opts;
  Mat c;
  auto run = [&](std::shared_ptr<const Mat> a, std::shared_ptr<const Mat> b,
                 std::shared_ptr<const Mat> m) {
    result.multiplies = total_flops(*a, *b);
    auto spec = client::StructureSpec<IT, std::int64_t>(b);
    if (m == b) spec.self_mask();
    auto handle = session.register_structure(std::move(spec));
    WallTimer kernel;
    auto fut = m == b ? session.submit(a, handle, sopts)
                      : session.submit(a, m, handle, sopts);
    c = std::move(fut.get().value());
    result.seconds_spgemm = kernel.seconds();
    session.release(handle);
  };
  switch (variant) {
    case TriCountVariant::kLL: {
      auto lower = std::make_shared<const Mat>(tril_strict(relabeled));
      run(lower, lower, lower);
      break;
    }
    case TriCountVariant::kLU: {
      auto lower = std::make_shared<const Mat>(tril_strict(relabeled));
      auto upper = std::make_shared<const Mat>(triu_strict(relabeled));
      run(lower, upper, lower);
      break;
    }
    case TriCountVariant::kUU: {
      auto upper = std::make_shared<const Mat>(triu_strict(relabeled));
      run(upper, upper, upper);
      break;
    }
  }

  result.triangles = static_cast<std::uint64_t>(reduce_sum(c));
  result.seconds_total = total.seconds();
  return result;
}

}  // namespace msx
