// Triangle counting via Masked SpGEMM (paper §8.2).
//
// Vertices are relabeled in non-increasing degree order (Lumsdaine et al.'s
// optimization, cited by the paper), L is the strictly-lower-triangular part
// of the relabeled adjacency matrix, and the triangle count is
// sum(L .* (L·L)) on the plus-pair semiring — "known to be among the fastest
// ways to compute Triangle Counting". The masked product is the measured
// kernel; relabeling/extraction are reported separately.
#pragma once

#include <cstdint>

#include "common/timer.hpp"
#include "core/flops.hpp"
#include "core/plan.hpp"
#include "matrix/ops.hpp"
#include "semiring/semirings.hpp"

namespace msx {

struct TriCountResult {
  std::uint64_t triangles = 0;
  double seconds_spgemm = 0.0;  // the Masked SpGEMM only (what §8.2 reports)
  double seconds_total = 0.0;   // including relabel + extraction + reduction
  std::size_t multiplies = 0;   // flops of the masked product's operands
  MaskedAlgo algo = MaskedAlgo::kAuto;  // resolved once by the plan
};

// Which masked formulation counts each triangle exactly once. All are
// mathematically equivalent; they trade the shapes of the mask and inputs
// (Azad et al. / Wolf et al., cited by the paper):
//   kLL : sum(L .* (L·L))  — the paper's choice (§8.2)
//   kLU : sum(L .* (L·U))  — wedge through the middle vertex
//   kUU : sum(U .* (U·U))  — the upper-triangular mirror
enum class TriCountVariant {
  kLL,
  kLU,
  kUU,
};

// `graph` must have a symmetric pattern without self-loops (use
// symmetrize_pattern / remove_diagonal to normalize arbitrary input).
template <class IT, class VT>
TriCountResult triangle_count(const CSRMatrix<IT, VT>& graph,
                              const MaskedOptions& opts = {},
                              TriCountVariant variant = TriCountVariant::kLL) {
  check_arg(graph.nrows() == graph.ncols(),
            "triangle_count: adjacency matrix must be square");
  WallTimer total;

  const auto perm = degree_order_desc(graph);
  const auto relabeled = permute_symmetric(graph, perm);

  TriCountResult result;
  CSRMatrix<IT, std::int64_t> c;
  // Plan/execute split: plan construction carries the setup the paper keeps
  // outside the timed kernel (algorithm resolution; B's CSC copy for the
  // pull-based families), so seconds_spgemm times the masked product alone.
  using SR = PlusPair<std::int64_t>;
  switch (variant) {
    case TriCountVariant::kLL: {
      const auto lower = tril_strict(relabeled);
      result.multiplies = total_flops(lower, lower);
      auto plan = masked_plan<SR>(lower, lower, lower, opts);
      result.algo = plan.algo();
      WallTimer kernel;
      c = plan.execute();
      result.seconds_spgemm = kernel.seconds();
      break;
    }
    case TriCountVariant::kLU: {
      const auto lower = tril_strict(relabeled);
      const auto upper = triu_strict(relabeled);
      result.multiplies = total_flops(lower, upper);
      auto plan = masked_plan<SR>(lower, upper, lower, opts);
      result.algo = plan.algo();
      WallTimer kernel;
      c = plan.execute();
      result.seconds_spgemm = kernel.seconds();
      break;
    }
    case TriCountVariant::kUU: {
      const auto upper = triu_strict(relabeled);
      result.multiplies = total_flops(upper, upper);
      auto plan = masked_plan<SR>(upper, upper, upper, opts);
      result.algo = plan.algo();
      WallTimer kernel;
      c = plan.execute();
      result.seconds_spgemm = kernel.seconds();
      break;
    }
  }

  result.triangles = static_cast<std::uint64_t>(reduce_sum(c));
  result.seconds_total = total.seconds();
  return result;
}

}  // namespace msx
