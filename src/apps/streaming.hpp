// Incremental app loops over the streaming client API (delta rebind
// tentpole): the graph lives server-side as a registered, versioned
// structure; edge churn flows through Session::update(handle, EdgeDelta)
// instead of re-registering, so the backend patches warm plans (sparse
// re-symbolic over touched rows) rather than rebuilding them, and every
// query runs against a consistent matrix generation or comes back
// kStaleStructure.
//
// Three maintenance loops, mirroring the batch apps:
//
//   StreamingTriangleCounter — L = strict lower triangle, self-masked;
//     count() is the fully aliased C = L .* (L·L) submit of tricount's kLL
//     variant. Unlike the batch app there is NO degree relabel: vertex ids
//     must stay stable under churn, so the orientation is by raw vertex id
//     ((max, min) per undirected edge). Counts match the batch app exactly;
//     only the per-count constant differs.
//
//   StreamingKTruss — the live symmetric adjacency is the registered,
//     self-masked structure; truss(k) runs the support/prune fixed point
//     with round 1 against the live handle (riding the delta-patched plan)
//     and later rounds on transient registrations, like the batch app.
//
//   LiveGraphBFS — the adjacency is registered without a mask; bfs(source)
//     runs direction-optimized levels with per-request frontier/visited
//     masks against whatever version the graph is at when the call starts.
//
// All three buffer mutations in an EdgeDelta and apply them on flush() (or
// implicitly before a query): one update per batch of edges is the intended
// granularity — per-edge updates work but pay a version bump each.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "apps/ktruss.hpp"  // KTrussResult
#include "apps/dobfs.hpp"   // DOBFSResult, BFSDirection
#include "client/client.hpp"
#include "core/delta.hpp"
#include "core/flops.hpp"
#include "core/masked_spgevm.hpp"
#include "matrix/ops.hpp"
#include "semiring/semirings.hpp"
#include "vector/sparse_vector.hpp"

namespace msx {

// Maintains the triangle count of an undirected simple graph under edge
// churn. `graph` seeds the edge set (symmetric pattern, no self-loops).
template <class IT>
class StreamingTriangleCounter {
 public:
  using VT = std::int64_t;
  using SR = PlusPair<std::int64_t>;
  using Mat = CSRMatrix<IT, VT>;
  using Sess = client::Session<SR, IT, VT>;

  template <class VTIn>
  StreamingTriangleCounter(const CSRMatrix<IT, VTIn>& graph, Sess& session)
      : session_(&session) {
    check_arg(graph.nrows() == graph.ncols(),
              "StreamingTriangleCounter: adjacency matrix must be square");
    const Mat ones(
        graph.nrows(), graph.ncols(),
        std::vector<IT>(graph.rowptr().begin(), graph.rowptr().end()),
        std::vector<IT>(graph.colidx().begin(), graph.colidx().end()),
        std::vector<std::int64_t>(graph.nnz(), 1));
    auto lower = std::make_shared<const Mat>(tril_strict(ones));
    handle_ = session_->register_structure(
        client::StructureSpec<IT, VT>(std::move(lower)).self_mask());
  }

  ~StreamingTriangleCounter() { close(); }
  StreamingTriangleCounter(const StreamingTriangleCounter&) = delete;
  StreamingTriangleCounter& operator=(const StreamingTriangleCounter&) =
      delete;

  // Buffered mutations; (u, v) is undirected, self-loops rejected. Inserting
  // a present edge or erasing an absent one is a no-op (EdgeDelta semantics).
  void insert_edge(IT u, IT v) {
    check_arg(u != v, "StreamingTriangleCounter: self-loop");
    pending_.insert(std::max(u, v), std::min(u, v), 1);
  }
  void erase_edge(IT u, IT v) {
    check_arg(u != v, "StreamingTriangleCounter: self-loop");
    pending_.erase(std::max(u, v), std::min(u, v));
  }

  // Applies buffered mutations as one versioned update. The old handle (and
  // any in-flight count against it) goes stale by design.
  void flush() {
    if (pending_.empty()) return;
    handle_ = session_->update(handle_, pending_);
    pending_.clear();
  }

  // Triangles in the current graph (buffered mutations applied first).
  std::int64_t count(const MaskedOptions& opts = {}) {
    flush();
    client::SubmitOptions sopts;
    sopts.masked = opts;
    auto res = session_->submit(handle_.b(), handle_, sopts).get();
    std::int64_t total = 0;
    for (const auto v : res.value().values()) total += v;
    return total;
  }

  std::uint64_t version() const { return handle_.version(); }
  const Mat& lower() const { return *handle_.b(); }

  void close() {
    if (session_ != nullptr && handle_.valid()) session_->release(handle_);
    session_ = nullptr;
  }

 private:
  Sess* session_;
  typename Sess::Handle handle_;
  EdgeDelta<IT, VT> pending_;
};

// Maintains a graph under churn and answers k-truss queries from the live
// structure. `graph` seeds the edge set (symmetric pattern, no self-loops).
template <class IT>
class StreamingKTruss {
 public:
  using VT = std::int64_t;
  using SR = PlusPair<std::int64_t>;
  using Mat = CSRMatrix<IT, VT>;
  using Sess = client::Session<SR, IT, VT>;

  template <class VTIn>
  StreamingKTruss(const CSRMatrix<IT, VTIn>& graph, Sess& session)
      : session_(&session) {
    check_arg(graph.nrows() == graph.ncols(),
              "StreamingKTruss: adjacency matrix must be square");
    auto a = std::make_shared<const Mat>(
        graph.nrows(), graph.ncols(),
        std::vector<IT>(graph.rowptr().begin(), graph.rowptr().end()),
        std::vector<IT>(graph.colidx().begin(), graph.colidx().end()),
        std::vector<std::int64_t>(graph.nnz(), 1));
    handle_ = session_->register_structure(
        client::StructureSpec<IT, VT>(std::move(a)).self_mask());
  }

  ~StreamingKTruss() { close(); }
  StreamingKTruss(const StreamingKTruss&) = delete;
  StreamingKTruss& operator=(const StreamingKTruss&) = delete;

  // Buffered symmetric mutations (both directed slots per undirected edge).
  void insert_edge(IT u, IT v) {
    check_arg(u != v, "StreamingKTruss: self-loop");
    pending_.insert(u, v, 1);
    pending_.insert(v, u, 1);
  }
  void erase_edge(IT u, IT v) {
    check_arg(u != v, "StreamingKTruss: self-loop");
    pending_.erase(u, v);
    pending_.erase(v, u);
  }

  void flush() {
    if (pending_.empty()) return;
    handle_ = session_->update(handle_, pending_);
    pending_.clear();
  }

  // k-truss of the current graph (buffered mutations applied first). Round 1
  // computes per-edge support fully aliased against the live handle — the
  // submit that benefits from the delta-patched plan; the peeling rounds
  // operate on shrinking transient edge sets, registered per round like the
  // batch app.
  KTrussResult<IT> truss(int k, const MaskedOptions& opts = {}) {
    check_arg(k >= 3, "StreamingKTruss: k must be at least 3");
    flush();
    WallTimer total;
    const auto support_needed = static_cast<std::int64_t>(k - 2);
    client::SubmitOptions sopts;
    sopts.masked = opts;

    KTrussResult<IT> result;
    result.algo = opts.algo;
    std::shared_ptr<const Mat> a = handle_.b();
    bool live_round = true;
    typename Sess::Handle transient;
    while (true) {
      ++result.iterations;
      result.multiplies += total_flops(*a, *a);
      const auto& h = live_round ? handle_ : transient;
      WallTimer kernel;
      auto res = session_->submit(a, h, sopts).get();
      result.seconds_spgemm += kernel.seconds();
      if (!live_round) session_->release(transient);
      auto support = std::move(res.value());

      auto pruned = filter(support, [&](IT, IT, const std::int64_t& v) {
        return v >= support_needed;
      });
      const bool converged = (pruned.nnz() == a->nnz());
      a = std::make_shared<const Mat>(spones(pruned));
      if (converged || a->nnz() == 0) break;
      live_round = false;
      transient = session_->register_structure(
          client::StructureSpec<IT, VT>(a).self_mask());
    }

    result.remaining_edges = a->nnz();
    result.truss = *a;
    result.seconds_total = total.seconds();
    return result;
  }

  std::uint64_t version() const { return handle_.version(); }
  const Mat& adjacency() const { return *handle_.b(); }

  void close() {
    if (session_ != nullptr && handle_.valid()) session_->release(handle_);
    session_ = nullptr;
  }

 private:
  Sess* session_;
  typename Sess::Handle handle_;
  EdgeDelta<IT, VT> pending_;
};

// BFS from fresh seeds against a live graph: the adjacency is the versioned
// structure, every level's frontier and visited set are per-request operands.
template <class IT>
class LiveGraphBFS {
 public:
  using VT = std::int64_t;
  using SR = PlusPair<std::int64_t>;
  using Mat = CSRMatrix<IT, VT>;
  using Sess = client::Session<SR, IT, VT>;

  template <class VTIn>
  LiveGraphBFS(const CSRMatrix<IT, VTIn>& graph, Sess& session)
      : session_(&session) {
    check_arg(graph.nrows() == graph.ncols(),
              "LiveGraphBFS: adjacency matrix must be square");
    auto a = std::make_shared<const Mat>(
        graph.nrows(), graph.ncols(),
        std::vector<IT>(graph.rowptr().begin(), graph.rowptr().end()),
        std::vector<IT>(graph.colidx().begin(), graph.colidx().end()),
        std::vector<std::int64_t>(graph.nnz(), 1));
    handle_ =
        session_->register_structure(client::StructureSpec<IT, VT>(a));
  }

  ~LiveGraphBFS() { close(); }
  LiveGraphBFS(const LiveGraphBFS&) = delete;
  LiveGraphBFS& operator=(const LiveGraphBFS&) = delete;

  void insert_edge(IT u, IT v) {
    check_arg(u != v, "LiveGraphBFS: self-loop");
    pending_.insert(u, v, 1);
    pending_.insert(v, u, 1);
  }
  void erase_edge(IT u, IT v) {
    check_arg(u != v, "LiveGraphBFS: self-loop");
    pending_.erase(u, v);
    pending_.erase(v, u);
  }

  void flush() {
    if (pending_.empty()) return;
    handle_ = session_->update(handle_, pending_);
    pending_.clear();
  }

  // Levels from `source` on the current graph (buffered mutations applied
  // first). Same direction-optimized loop as the batch client app; the graph
  // version is pinned for the whole traversal by the handle.
  DOBFSResult bfs(IT source, BFSDirection direction = BFSDirection::kAdaptive,
                  double alpha = 4.0) {
    flush();
    const auto a = handle_.b();
    const IT n = a->nrows();
    check_arg(source >= 0 && source < n, "LiveGraphBFS: source out of range");
    using SV = SparseVector<IT, std::int64_t>;

    DOBFSResult result;
    result.levels.assign(static_cast<std::size_t>(n), -1);
    result.levels[static_cast<std::size_t>(source)] = 0;

    SV frontier(n);
    frontier.push_back(source, 1);
    SV visited = frontier;

    client::SubmitOptions push_opts;
    push_opts.masked.kind = MaskKind::kComplement;
    push_opts.masked.algo = MaskedAlgo::kMSA;
    client::SubmitOptions pull_opts = push_opts;
    pull_opts.masked.algo = MaskedAlgo::kInner;

    std::size_t unvisited_edges = a->nnz();
    unvisited_edges -= static_cast<std::size_t>(a->row_nnz(source));

    std::int32_t depth = 0;
    while (!frontier.empty()) {
      std::size_t frontier_edges = 0;
      for (IT v : frontier.indices()) {
        frontier_edges += static_cast<std::size_t>(a->row_nnz(v));
      }
      bool pull;
      switch (direction) {
        case BFSDirection::kPushOnly: pull = false; break;
        case BFSDirection::kPullOnly: pull = true; break;
        case BFSDirection::kAdaptive:
        default:
          pull = static_cast<double>(frontier_edges) >
                 static_cast<double>(unvisited_edges) / alpha;
          break;
      }

      auto frontier_row =
          std::make_shared<const Mat>(detail::as_row_matrix(frontier));
      auto visited_row =
          std::make_shared<const Mat>(detail::as_row_matrix(visited));
      auto res = session_
                     ->submit(frontier_row, visited_row, handle_,
                              pull ? pull_opts : push_opts)
                     .get();
      SV next = detail::first_row_as_vector(res.value());
      if (next.empty()) break;
      (pull ? result.pull_levels : result.push_levels) += 1;

      ++depth;
      for (IT v : next.indices()) {
        result.levels[static_cast<std::size_t>(v)] = depth;
        unvisited_edges -= static_cast<std::size_t>(a->row_nnz(v));
      }
      visited = ewise_add(visited, next);
      frontier = std::move(next);
    }
    result.depth = depth;
    return result;
  }

  std::uint64_t version() const { return handle_.version(); }
  const Mat& adjacency() const { return *handle_.b(); }

  void close() {
    if (session_ != nullptr && handle_.valid()) session_->release(handle_);
    session_ = nullptr;
  }

 private:
  Sess* session_;
  typename Sess::Handle handle_;
  EdgeDelta<IT, VT> pending_;
};

}  // namespace msx
