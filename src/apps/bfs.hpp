// Multi-source breadth-first search via complemented Masked SpGEMM.
//
// The paper's introduction motivates the masked product with "any
// multi-source graph traversal where the mask serves as a filter to avoid
// rediscovery of previously discovered vertices" — this is that primitive in
// its pure form: each BFS level is F ← ¬Visited .* (F·A).
#pragma once

#include <algorithm>
#include <cstdint>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "core/masked_spgemm.hpp"
#include "matrix/build.hpp"
#include "matrix/ops.hpp"
#include "runtime/batch.hpp"
#include "semiring/semirings.hpp"

namespace msx {

struct BFSResult {
  // levels[q * n + v] = BFS depth of vertex v from source q, or -1 if
  // unreachable.
  std::vector<std::int32_t> levels;
  int depth = 0;  // deepest level reached across the batch
};

template <class IT, class VT>
BFSResult multi_source_bfs(const CSRMatrix<IT, VT>& graph,
                           const std::vector<IT>& sources,
                           MaskedOptions opts = {}) {
  check_arg(graph.nrows() == graph.ncols(), "bfs: matrix must be square");
  const IT n = graph.nrows();
  const IT batch = static_cast<IT>(sources.size());
  check_arg(batch > 0, "bfs: need at least one source");
  check_arg(opts.algo != MaskedAlgo::kMCA,
            "bfs: MCA does not support complemented masks");
  opts.kind = MaskKind::kComplement;

  using Mat = CSRMatrix<IT, std::int64_t>;
  const Mat a(n, n,
              std::vector<IT>(graph.rowptr().begin(), graph.rowptr().end()),
              std::vector<IT>(graph.colidx().begin(), graph.colidx().end()),
              std::vector<std::int64_t>(graph.nnz(), 1));

  BFSResult result;
  result.levels.assign(static_cast<std::size_t>(batch) *
                           static_cast<std::size_t>(n),
                       -1);
  auto set_level = [&](IT q, IT v, std::int32_t lvl) {
    result.levels[static_cast<std::size_t>(q) * static_cast<std::size_t>(n) +
                  static_cast<std::size_t>(v)] = lvl;
  };

  std::vector<Triple<IT, std::int64_t>> seeds;
  for (IT q = 0; q < batch; ++q) {
    seeds.push_back({q, sources[static_cast<std::size_t>(q)], 1});
    set_level(q, sources[static_cast<std::size_t>(q)], 0);
  }
  Mat frontier = csr_from_triples<IT, std::int64_t>(batch, n, std::move(seeds),
                                                    DuplicatePolicy::kLast);
  Mat visited = frontier;

  std::int32_t depth = 0;
  while (frontier.nnz() > 0) {
    Mat next =
        masked_spgemm<PlusPair<std::int64_t>>(frontier, a, visited, opts);
    if (next.nnz() == 0) break;
    ++depth;
    for (IT q = 0; q < batch; ++q) {
      const auto row = next.row(q);
      for (IT p = 0; p < row.size(); ++p) set_level(q, row.cols[p], depth);
    }
    visited = ewise_add(visited, next);
    frontier = std::move(next);
  }
  result.depth = depth;
  return result;
}

// Executor-batched variant: sources are split into chunks of `chunk_size`
// and each BFS round submits every active chunk's level product — mutually
// independent complemented masked SpGEMMs — to the BatchExecutor
// concurrently. Levels are bit-identical to the single-batch function (the
// products are row-parallel; a chunk's rows see exactly the rows they would
// inside the monolithic frontier). The adjacency matrix is shared with the
// executor, so only the small frontier/visited matrices cross the submit
// boundary per round.
template <class IT, class VT>
BFSResult multi_source_bfs(const CSRMatrix<IT, VT>& graph,
                           const std::vector<IT>& sources,
                           BatchExecutor<PlusPair<std::int64_t>, IT,
                                         std::int64_t>& exec,
                           std::size_t chunk_size, MaskedOptions opts = {}) {
  check_arg(graph.nrows() == graph.ncols(), "bfs: matrix must be square");
  check_arg(chunk_size > 0, "bfs: chunk size must be positive");
  const IT n = graph.nrows();
  const IT batch = static_cast<IT>(sources.size());
  check_arg(batch > 0, "bfs: need at least one source");
  check_arg(opts.algo != MaskedAlgo::kMCA,
            "bfs: MCA does not support complemented masks");
  opts.kind = MaskKind::kComplement;

  using Mat = CSRMatrix<IT, std::int64_t>;
  const auto a = std::make_shared<const Mat>(
      n, n, std::vector<IT>(graph.rowptr().begin(), graph.rowptr().end()),
      std::vector<IT>(graph.colidx().begin(), graph.colidx().end()),
      std::vector<std::int64_t>(graph.nnz(), 1));

  BFSResult result;
  result.levels.assign(static_cast<std::size_t>(batch) *
                           static_cast<std::size_t>(n),
                       -1);

  struct Chunk {
    IT first_source = 0;  // global row offset of this chunk's sources
    std::shared_ptr<const Mat> frontier;
    std::shared_ptr<const Mat> visited;
    bool active = true;
  };
  std::vector<Chunk> chunks;
  for (IT lo = 0; lo < batch; lo += static_cast<IT>(chunk_size)) {
    const IT hi = std::min(batch, lo + static_cast<IT>(chunk_size));
    Chunk c;
    c.first_source = lo;
    std::vector<Triple<IT, std::int64_t>> seeds;
    for (IT q = lo; q < hi; ++q) {
      seeds.push_back({q - lo, sources[static_cast<std::size_t>(q)], 1});
      result.levels[static_cast<std::size_t>(q) * static_cast<std::size_t>(n) +
                    static_cast<std::size_t>(
                        sources[static_cast<std::size_t>(q)])] = 0;
    }
    auto frontier = std::make_shared<const Mat>(csr_from_triples<IT, std::int64_t>(
        hi - lo, n, std::move(seeds), DuplicatePolicy::kLast));
    c.visited = frontier;
    c.frontier = frontier;
    chunks.push_back(std::move(c));
  }

  std::int32_t depth = 0;
  bool any_active = true;
  while (any_active) {
    std::vector<std::pair<std::size_t, std::future<Mat>>> round;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      if (!chunks[c].active) continue;
      round.emplace_back(c, exec.submit_shared(chunks[c].frontier, a,
                                               chunks[c].visited, opts));
    }
    any_active = false;
    for (auto& [c, fut] : round) {
      Chunk& ch = chunks[c];
      Mat next = fut.get();
      if (next.nnz() == 0) {
        ch.active = false;
        continue;
      }
      const auto cb = next.nrows();
      for (IT q = 0; q < cb; ++q) {
        const auto row = next.row(q);
        for (IT p = 0; p < row.size(); ++p) {
          result.levels[static_cast<std::size_t>(ch.first_source + q) *
                            static_cast<std::size_t>(n) +
                        static_cast<std::size_t>(row.cols[p])] = depth + 1;
        }
      }
      ch.visited = std::make_shared<const Mat>(ewise_add(*ch.visited, next));
      ch.frontier = std::make_shared<const Mat>(std::move(next));
      any_active = true;
    }
    if (any_active) ++depth;
  }
  result.depth = depth;
  return result;
}

}  // namespace msx
