// Multi-source breadth-first search via complemented Masked SpGEMM.
//
// The paper's introduction motivates the masked product with "any
// multi-source graph traversal where the mask serves as a filter to avoid
// rediscovery of previously discovered vertices" — this is that primitive in
// its pure form: each BFS level is F ← ¬Visited .* (F·A).
#pragma once

#include <cstdint>
#include <vector>

#include "core/masked_spgemm.hpp"
#include "matrix/build.hpp"
#include "matrix/ops.hpp"
#include "semiring/semirings.hpp"

namespace msx {

struct BFSResult {
  // levels[q * n + v] = BFS depth of vertex v from source q, or -1 if
  // unreachable.
  std::vector<std::int32_t> levels;
  int depth = 0;  // deepest level reached across the batch
};

template <class IT, class VT>
BFSResult multi_source_bfs(const CSRMatrix<IT, VT>& graph,
                           const std::vector<IT>& sources,
                           MaskedOptions opts = {}) {
  check_arg(graph.nrows() == graph.ncols(), "bfs: matrix must be square");
  const IT n = graph.nrows();
  const IT batch = static_cast<IT>(sources.size());
  check_arg(batch > 0, "bfs: need at least one source");
  check_arg(opts.algo != MaskedAlgo::kMCA,
            "bfs: MCA does not support complemented masks");
  opts.kind = MaskKind::kComplement;

  using Mat = CSRMatrix<IT, std::int64_t>;
  const Mat a(n, n,
              std::vector<IT>(graph.rowptr().begin(), graph.rowptr().end()),
              std::vector<IT>(graph.colidx().begin(), graph.colidx().end()),
              std::vector<std::int64_t>(graph.nnz(), 1));

  BFSResult result;
  result.levels.assign(static_cast<std::size_t>(batch) *
                           static_cast<std::size_t>(n),
                       -1);
  auto set_level = [&](IT q, IT v, std::int32_t lvl) {
    result.levels[static_cast<std::size_t>(q) * static_cast<std::size_t>(n) +
                  static_cast<std::size_t>(v)] = lvl;
  };

  std::vector<Triple<IT, std::int64_t>> seeds;
  for (IT q = 0; q < batch; ++q) {
    seeds.push_back({q, sources[static_cast<std::size_t>(q)], 1});
    set_level(q, sources[static_cast<std::size_t>(q)], 0);
  }
  Mat frontier = csr_from_triples<IT, std::int64_t>(batch, n, std::move(seeds),
                                                    DuplicatePolicy::kLast);
  Mat visited = frontier;

  std::int32_t depth = 0;
  while (frontier.nnz() > 0) {
    Mat next =
        masked_spgemm<PlusPair<std::int64_t>>(frontier, a, visited, opts);
    if (next.nnz() == 0) break;
    ++depth;
    for (IT q = 0; q < batch; ++q) {
      const auto row = next.row(q);
      for (IT p = 0; p < row.size(); ++p) set_level(q, row.cols[p], depth);
    }
    visited = ewise_add(visited, next);
    frontier = std::move(next);
  }
  result.depth = depth;
  return result;
}

}  // namespace msx
