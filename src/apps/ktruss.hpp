// k-truss decomposition via iterated Masked SpGEMM (paper §8.3).
//
// The k-truss of a graph is the maximal subgraph in which every edge is
// supported by at least k-2 triangles. Each iteration computes per-edge
// support with C = A .* (A·A) on the plus-pair semiring (mask = the current
// edge set), prunes edges below the threshold, and repeats until a fixed
// point — "using Masked SpGEMM in an iterative manner where the graph keeps
// changing due to pruning of some edges". The paper's metric (Fig. 14) is
// the sum of flops across all Masked SpGEMM calls divided by the total time
// spent in them.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "client/client.hpp"
#include "common/timer.hpp"
#include "core/flops.hpp"
#include "core/plan.hpp"
#include "matrix/ops.hpp"
#include "semiring/semirings.hpp"

namespace msx {

template <class IT>
struct KTrussResult {
  int iterations = 0;
  std::size_t remaining_edges = 0;  // directed edge slots (nnz of pattern)
  double seconds_spgemm = 0.0;      // total time in Masked SpGEMM calls
  double seconds_total = 0.0;
  std::size_t multiplies = 0;       // summed flops over all iterations
  MaskedAlgo algo = MaskedAlgo::kAuto;  // resolved once by the plan
  CSRMatrix<IT, std::int64_t> truss;  // final k-truss (values = 1)
};

// `graph` must have a symmetric pattern without self-loops. k >= 3.
template <class IT, class VT>
KTrussResult<IT> ktruss(const CSRMatrix<IT, VT>& graph, int k,
                        const MaskedOptions& opts = {}) {
  check_arg(graph.nrows() == graph.ncols(), "ktruss: matrix must be square");
  check_arg(k >= 3, "ktruss: k must be at least 3");
  WallTimer total;

  using SR = PlusPair<std::int64_t>;
  const auto support_needed = static_cast<std::int64_t>(k - 2);

  // Work on an int64-valued copy so support counts and the pattern share a
  // matrix type between iterations.
  CSRMatrix<IT, std::int64_t> a(
      graph.nrows(), graph.ncols(),
      std::vector<IT>(graph.rowptr().begin(), graph.rowptr().end()),
      std::vector<IT>(graph.colidx().begin(), graph.colidx().end()),
      std::vector<std::int64_t>(graph.nnz(), 1));

  KTrussResult<IT> result;
  // Plan once outside the pruning loop: kAuto resolves against the full
  // graph, and each iteration's rebind keeps the per-thread accumulators
  // (and any cached CSC of the edge set) warm while the structure shrinks.
  auto plan = masked_plan<SR>(a, a, a, opts);
  result.algo = plan.algo();
  while (true) {
    ++result.iterations;
    result.multiplies += total_flops(a, a);

    WallTimer kernel;
    auto support = plan.execute();
    result.seconds_spgemm += kernel.seconds();

    auto pruned = filter(support, [&](IT, IT, const std::int64_t& v) {
      return v >= support_needed;
    });
    // Fixed point: support's pattern is a subset of a's, so equal nnz means
    // nothing was pruned (entries of `a` with zero support are absent from
    // `support` and count as pruned).
    const bool converged = (pruned.nnz() == a.nnz());
    a = spones(pruned);
    if (converged || a.nnz() == 0) break;
    plan.rebind(a, a, a);
  }

  result.remaining_edges = a.nnz();
  result.truss = std::move(a);
  result.seconds_total = total.seconds();
  return result;
}

// Client-session round loop (ISSUE 5): each iteration registers the current
// edge set as a structure — A, B and the mask all alias it, so a sharded
// backend ships the (shrinking) graph once per round and the submit itself
// is nothing but flags — computes per-edge support through the session, and
// releases the structure after pruning. One code path serves the local
// runtime and a shard fleet.
template <class IT, class VT>
KTrussResult<IT> ktruss(
    const CSRMatrix<IT, VT>& graph, int k,
    client::Session<PlusPair<std::int64_t>, IT, std::int64_t>& session,
    const MaskedOptions& opts = {}) {
  check_arg(graph.nrows() == graph.ncols(), "ktruss: matrix must be square");
  check_arg(k >= 3, "ktruss: k must be at least 3");
  WallTimer total;

  const auto support_needed = static_cast<std::int64_t>(k - 2);
  using Mat = CSRMatrix<IT, std::int64_t>;
  auto a = std::make_shared<const Mat>(
      graph.nrows(), graph.ncols(),
      std::vector<IT>(graph.rowptr().begin(), graph.rowptr().end()),
      std::vector<IT>(graph.colidx().begin(), graph.colidx().end()),
      std::vector<std::int64_t>(graph.nnz(), 1));

  KTrussResult<IT> result;
  result.algo = opts.algo;  // resolution happens backend-side per round
  client::SubmitOptions sopts;
  sopts.masked = opts;
  while (true) {
    ++result.iterations;
    result.multiplies += total_flops(*a, *a);

    auto handle = session.register_structure(
        client::StructureSpec<IT, std::int64_t>(a).self_mask());
    WallTimer kernel;
    auto res = session.submit(a, handle, sopts).get();
    result.seconds_spgemm += kernel.seconds();
    session.release(handle);
    auto support = std::move(res.value());  // throws on typed failure

    auto pruned = filter(support, [&](IT, IT, const std::int64_t& v) {
      return v >= support_needed;
    });
    const bool converged = (pruned.nnz() == a->nnz());
    a = std::make_shared<const Mat>(spones(pruned));
    if (converged || a->nnz() == 0) break;
  }

  result.remaining_edges = a->nnz();
  result.truss = *a;
  result.seconds_total = total.seconds();
  return result;
}

}  // namespace msx
