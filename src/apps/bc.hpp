// Batched betweenness centrality via Masked SpGEMM (paper §8.4).
//
// Multi-source two-stage algorithm after Brandes, expressed in linear
// algebra (the form GraphBLAS implementations use): the forward BFS sweep
// accumulates shortest-path counts with a *complemented* masked product
// (the visited set masks out rediscoveries), and the backward dependency
// sweep uses a regular masked product against the previous frontier — "uses
// both a complemented and non-complemented Masked SpGEMM".
//
// Frontiers are b×n sparse matrices (one row per source); per-source path
// counts live in the frontier values; dependencies accumulate in a dense
// b×n array. The paper's metric (Figs. 15, 16) is TEPS =
// batch_size × num_edges / total_time; batch 512 in the paper, configurable
// here.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "client/client.hpp"
#include "common/timer.hpp"
#include "core/plan.hpp"
#include "matrix/build.hpp"
#include "matrix/ops.hpp"
#include "runtime/batch.hpp"
#include "semiring/semirings.hpp"

namespace msx {

struct BCResult {
  std::vector<double> centrality;  // per-vertex score (summed over sources)
  int depth = 0;                   // BFS levels explored (max over batch)
  double seconds_forward = 0.0;
  double seconds_backward = 0.0;
  double seconds_total = 0.0;
  // TEPS convention of the paper (§8.4): batch_size × num_edges / time.
  double mteps(std::size_t num_edges, std::size_t batch) const {
    if (seconds_total <= 0.0) return 0.0;
    return static_cast<double>(batch) * static_cast<double>(num_edges) /
           seconds_total / 1e6;
  }
};

// `graph` must have a symmetric pattern without self-loops; `sources` are
// the batch roots (duplicates allowed).
template <class IT, class VT>
BCResult betweenness_centrality(const CSRMatrix<IT, VT>& graph,
                                const std::vector<IT>& sources,
                                MaskedOptions opts = {}) {
  check_arg(graph.nrows() == graph.ncols(), "bc: matrix must be square");
  const IT n = graph.nrows();
  const IT batch = static_cast<IT>(sources.size());
  check_arg(batch > 0, "bc: need at least one source");
  for (IT s : sources) check_arg(s >= 0 && s < n, "bc: source out of range");
  // MCA cannot express the complemented forward step (paper §8.4).
  check_arg(opts.algo != MaskedAlgo::kMCA,
            "bc: MCA does not support complemented masks");

  using Mat = CSRMatrix<IT, double>;
  WallTimer total;

  // Adjacency with double values (1.0 per edge) for the plus-times semiring.
  const Mat a(n, n,
              std::vector<IT>(graph.rowptr().begin(), graph.rowptr().end()),
              std::vector<IT>(graph.colidx().begin(), graph.colidx().end()),
              std::vector<double>(graph.nnz(), 1.0));

  // Initial frontier: one row per source; sigma(source) = 1.
  std::vector<Triple<IT, double>> seeds;
  seeds.reserve(static_cast<std::size_t>(batch));
  for (IT q = 0; q < batch; ++q) {
    seeds.push_back({q, sources[static_cast<std::size_t>(q)], 1.0});
  }
  Mat frontier = csr_from_triples<IT, double>(batch, n, std::move(seeds),
                                              DuplicatePolicy::kSum);

  // numsp = accumulated shortest-path counts (also the visited mask).
  Mat numsp = frontier;
  std::vector<Mat> levels;  // levels[d] = frontier at depth d with sigma
  levels.push_back(frontier);

  // ---- forward sweep ----
  // The adjacency matrix is the stationary operand of every level, so one
  // plan serves the whole sweep: each level rebinds only the (tiny) frontier
  // and visited mask, keeping the per-thread accumulators warm.
  WallTimer fwd;
  MaskedOptions fwd_opts = opts;
  fwd_opts.kind = MaskKind::kComplement;
  auto fwd_plan = masked_plan<PlusTimes<double>>(frontier, a, numsp, fwd_opts);
  while (true) {
    Mat next = fwd_plan.execute();
    if (next.nnz() == 0) break;
    numsp = ewise_add(numsp, next);
    levels.push_back(next);
    frontier = std::move(next);
    fwd_plan.rebind(frontier, numsp);
  }
  BCResult result;
  result.depth = static_cast<int>(levels.size()) - 1;
  result.seconds_forward = fwd.seconds();

  // ---- backward sweep ----
  WallTimer bwd;
  std::vector<double> delta(static_cast<std::size_t>(batch) *
                                static_cast<std::size_t>(n),
                            0.0);
  MaskedOptions bwd_opts = opts;
  bwd_opts.kind = MaskKind::kMask;
  // Same stationary-B shape as the forward sweep; constructed on the first
  // backward level (there may be none) and rebound per depth afterwards.
  std::optional<MaskedPlan<PlusTimes<double>, IT, double>> bwd_plan;

  for (std::size_t d = levels.size() - 1; d >= 1; --d) {
    const Mat& cur = levels[d];
    const Mat& prev = levels[d - 1];

    // W = (1 + delta) / sigma on the pattern of the depth-d frontier.
    Mat w = cur;
    {
      auto vals = w.mutable_values();
      const auto rp = w.rowptr();
      const auto ci = w.colidx();
      for (IT q = 0; q < batch; ++q) {
        for (IT p = rp[q]; p < rp[q + 1]; ++p) {
          const auto idx = static_cast<std::size_t>(q) *
                               static_cast<std::size_t>(n) +
                           static_cast<std::size_t>(ci[p]);
          vals[p] = (1.0 + delta[idx]) / vals[p];
        }
      }
    }

    // W2 = prev .* (W · Aᵀ); A is symmetric so Aᵀ = A.
    if (!bwd_plan.has_value()) {
      bwd_plan.emplace(w, a, prev, bwd_opts);
    } else {
      bwd_plan->rebind(w, prev);
    }
    Mat w2 = bwd_plan->execute();

    // delta(q,i) += W2(q,i) * sigma_prev(q,i). W2's pattern is a subset of
    // prev's, so a per-row lockstep walk finds sigma.
    const auto rp2 = w2.rowptr();
    const auto ci2 = w2.colidx();
    const auto vl2 = w2.values();
    for (IT q = 0; q < batch; ++q) {
      const auto prow = prev.row(q);
      IT pp = 0;
      for (IT p = rp2[q]; p < rp2[q + 1]; ++p) {
        const IT i = ci2[p];
        while (prow.cols[pp] != i) ++pp;  // subset guarantee: always found
        const auto idx = static_cast<std::size_t>(q) *
                             static_cast<std::size_t>(n) +
                         static_cast<std::size_t>(i);
        delta[idx] += vl2[p] * prow.vals[pp];
      }
    }
  }
  result.seconds_backward = bwd.seconds();

  // Reduce over the batch dimension. Brandes excludes the source itself
  // (δ_s(s) accumulates the count of vertices reachable from s, which is not
  // a betweenness contribution), so zero it before reducing.
  for (IT q = 0; q < batch; ++q) {
    delta[static_cast<std::size_t>(q) * static_cast<std::size_t>(n) +
          static_cast<std::size_t>(sources[static_cast<std::size_t>(q)])] = 0.0;
  }
  result.centrality.assign(static_cast<std::size_t>(n), 0.0);
  for (IT q = 0; q < batch; ++q) {
    for (IT v = 0; v < n; ++v) {
      result.centrality[static_cast<std::size_t>(v)] +=
          delta[static_cast<std::size_t>(q) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(v)];
    }
  }
  result.seconds_total = total.seconds();
  return result;
}

// Executor-batched variant: the source batch is split into chunks of
// `chunk_size`, and every round the per-chunk level products — mutually
// independent masked SpGEMMs — run concurrently through the BatchExecutor
// (runtime/batch.hpp) instead of sequentially. Per-vertex scores are
// bit-identical to the single-batch function above: the products are
// row-parallel (a chunk's rows compute exactly what they compute inside the
// monolithic frontier), and the final reduction adds chunk contributions in
// source order.
//
// The adjacency matrix is shared with the executor (submit_shared), so only
// the small frontier/mask matrices cross the submit boundary per round.
template <class IT, class VT>
BCResult betweenness_centrality(
    const CSRMatrix<IT, VT>& graph, const std::vector<IT>& sources,
    BatchExecutor<PlusTimes<double>, IT, double>& exec, std::size_t chunk_size,
    MaskedOptions opts = {}) {
  check_arg(graph.nrows() == graph.ncols(), "bc: matrix must be square");
  check_arg(chunk_size > 0, "bc: chunk size must be positive");
  const IT n = graph.nrows();
  const IT batch = static_cast<IT>(sources.size());
  check_arg(batch > 0, "bc: need at least one source");
  for (IT s : sources) check_arg(s >= 0 && s < n, "bc: source out of range");
  check_arg(opts.algo != MaskedAlgo::kMCA,
            "bc: MCA does not support complemented masks");

  using Mat = CSRMatrix<IT, double>;
  WallTimer total;

  const auto a = std::make_shared<const Mat>(
      n, n, std::vector<IT>(graph.rowptr().begin(), graph.rowptr().end()),
      std::vector<IT>(graph.colidx().begin(), graph.colidx().end()),
      std::vector<double>(graph.nnz(), 1.0));

  struct Chunk {
    std::vector<IT> sources;           // chunk's slice of the batch roots
    std::shared_ptr<const Mat> frontier;
    std::shared_ptr<const Mat> numsp;  // accumulated counts = visited mask
    std::vector<Mat> levels;
    std::vector<double> delta;         // chunk_batch × n dependency scores
    bool active = true;
  };

  std::vector<Chunk> chunks;
  for (std::size_t lo = 0; lo < sources.size(); lo += chunk_size) {
    const std::size_t hi = std::min(sources.size(), lo + chunk_size);
    Chunk c;
    c.sources.assign(sources.begin() + static_cast<std::ptrdiff_t>(lo),
                     sources.begin() + static_cast<std::ptrdiff_t>(hi));
    std::vector<Triple<IT, double>> seeds;
    seeds.reserve(c.sources.size());
    for (std::size_t q = 0; q < c.sources.size(); ++q) {
      seeds.push_back({static_cast<IT>(q), c.sources[q], 1.0});
    }
    auto frontier = std::make_shared<const Mat>(csr_from_triples<IT, double>(
        static_cast<IT>(c.sources.size()), n, std::move(seeds),
        DuplicatePolicy::kSum));
    c.numsp = frontier;
    c.frontier = frontier;
    c.levels.push_back(*frontier);
    c.delta.assign(c.sources.size() * static_cast<std::size_t>(n), 0.0);
    chunks.push_back(std::move(c));
  }

  // ---- forward sweep: all active chunks advance one level per round ----
  WallTimer fwd;
  MaskedOptions fwd_opts = opts;
  fwd_opts.kind = MaskKind::kComplement;
  bool any_active = true;
  while (any_active) {
    std::vector<std::pair<std::size_t, std::future<Mat>>> round;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      if (!chunks[c].active) continue;
      round.emplace_back(
          c, exec.submit_shared(chunks[c].frontier, a, chunks[c].numsp,
                                fwd_opts));
    }
    any_active = false;
    for (auto& [c, fut] : round) {
      Mat next = fut.get();
      if (next.nnz() == 0) {
        chunks[c].active = false;
        continue;
      }
      chunks[c].numsp =
          std::make_shared<const Mat>(ewise_add(*chunks[c].numsp, next));
      chunks[c].levels.push_back(next);
      chunks[c].frontier = std::make_shared<const Mat>(std::move(next));
      any_active = true;
    }
  }
  BCResult result;
  std::size_t max_depth = 0;
  for (const auto& c : chunks) max_depth = std::max(max_depth, c.levels.size());
  result.depth = static_cast<int>(max_depth) - 1;
  result.seconds_forward = fwd.seconds();

  // ---- backward sweep: chunks deep enough participate in each round ----
  WallTimer bwd;
  MaskedOptions bwd_opts = opts;
  bwd_opts.kind = MaskKind::kMask;
  for (std::size_t d = max_depth - 1; d >= 1; --d) {
    std::vector<std::pair<std::size_t, std::future<Mat>>> round;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      Chunk& ch = chunks[c];
      if (ch.levels.size() <= d) continue;
      const Mat& cur = ch.levels[d];
      const auto cb = static_cast<IT>(ch.sources.size());

      // W = (1 + delta) / sigma on the pattern of the depth-d frontier.
      auto w = std::make_shared<Mat>(cur);
      {
        auto vals = w->mutable_values();
        const auto rp = w->rowptr();
        const auto ci = w->colidx();
        for (IT q = 0; q < cb; ++q) {
          for (IT p = rp[q]; p < rp[q + 1]; ++p) {
            const auto idx = static_cast<std::size_t>(q) *
                                 static_cast<std::size_t>(n) +
                             static_cast<std::size_t>(ci[p]);
            vals[p] = (1.0 + ch.delta[idx]) / vals[p];
          }
        }
      }
      auto prev =
          std::make_shared<const Mat>(ch.levels[d - 1]);  // mask operand
      round.emplace_back(
          c, exec.submit_shared(std::shared_ptr<const Mat>(std::move(w)), a,
                                std::move(prev), bwd_opts));
    }
    for (auto& [c, fut] : round) {
      Chunk& ch = chunks[c];
      const Mat w2 = fut.get();
      const Mat& prev = ch.levels[d - 1];
      const auto cb = static_cast<IT>(ch.sources.size());
      const auto rp2 = w2.rowptr();
      const auto ci2 = w2.colidx();
      const auto vl2 = w2.values();
      for (IT q = 0; q < cb; ++q) {
        const auto prow = prev.row(q);
        IT pp = 0;
        for (IT p = rp2[q]; p < rp2[q + 1]; ++p) {
          const IT i = ci2[p];
          while (prow.cols[pp] != i) ++pp;  // subset guarantee: always found
          const auto idx = static_cast<std::size_t>(q) *
                               static_cast<std::size_t>(n) +
                           static_cast<std::size_t>(i);
          ch.delta[idx] += vl2[p] * prow.vals[pp];
        }
      }
    }
  }
  result.seconds_backward = bwd.seconds();

  // Reduce chunk deltas in source order (matches the monolithic loop).
  result.centrality.assign(static_cast<std::size_t>(n), 0.0);
  for (auto& ch : chunks) {
    for (std::size_t q = 0; q < ch.sources.size(); ++q) {
      ch.delta[q * static_cast<std::size_t>(n) +
               static_cast<std::size_t>(ch.sources[q])] = 0.0;
    }
    for (std::size_t q = 0; q < ch.sources.size(); ++q) {
      for (IT v = 0; v < n; ++v) {
        result.centrality[static_cast<std::size_t>(v)] +=
            ch.delta[q * static_cast<std::size_t>(n) +
                     static_cast<std::size_t>(v)];
      }
    }
  }
  result.seconds_total = total.seconds();
  return result;
}

// Client-session variant (ISSUE 5): the adjacency matrix — the stationary
// operand of every level product in both sweeps — is registered ONCE as the
// session structure; each round then pipelines the per-chunk level products
// (independent masked SpGEMMs: complemented forward, plain backward) with
// only the small frontier/mask matrices crossing the submit boundary. The
// same code path runs on a LocalBackend (executor underneath, like the
// overload above) or a ShardedBackend (the fleet sees the adjacency once per
// shard). Scores are bit-identical to the monolithic function: products are
// row-parallel and the reduction adds chunk contributions in source order.
template <class IT, class VT>
BCResult betweenness_centrality(
    const CSRMatrix<IT, VT>& graph, const std::vector<IT>& sources,
    client::Session<PlusTimes<double>, IT, double>& session,
    std::size_t chunk_size, MaskedOptions opts = {}) {
  check_arg(graph.nrows() == graph.ncols(), "bc: matrix must be square");
  check_arg(chunk_size > 0, "bc: chunk size must be positive");
  const IT n = graph.nrows();
  const IT batch = static_cast<IT>(sources.size());
  check_arg(batch > 0, "bc: need at least one source");
  for (IT s : sources) check_arg(s >= 0 && s < n, "bc: source out of range");
  check_arg(opts.algo != MaskedAlgo::kMCA,
            "bc: MCA does not support complemented masks");

  using Mat = CSRMatrix<IT, double>;
  using Result = client::ClientResult<IT, double>;
  WallTimer total;

  const auto a = std::make_shared<const Mat>(
      n, n, std::vector<IT>(graph.rowptr().begin(), graph.rowptr().end()),
      std::vector<IT>(graph.colidx().begin(), graph.colidx().end()),
      std::vector<double>(graph.nnz(), 1.0));
  auto handle =
      session.register_structure(client::StructureSpec<IT, double>(a));

  struct Chunk {
    std::vector<IT> sources;
    std::shared_ptr<const Mat> frontier;
    std::shared_ptr<const Mat> numsp;
    std::vector<Mat> levels;
    std::vector<double> delta;
    bool active = true;
  };

  std::vector<Chunk> chunks;
  for (std::size_t lo = 0; lo < sources.size(); lo += chunk_size) {
    const std::size_t hi = std::min(sources.size(), lo + chunk_size);
    Chunk c;
    c.sources.assign(sources.begin() + static_cast<std::ptrdiff_t>(lo),
                     sources.begin() + static_cast<std::ptrdiff_t>(hi));
    std::vector<Triple<IT, double>> seeds;
    seeds.reserve(c.sources.size());
    for (std::size_t q = 0; q < c.sources.size(); ++q) {
      seeds.push_back({static_cast<IT>(q), c.sources[q], 1.0});
    }
    auto frontier = std::make_shared<const Mat>(csr_from_triples<IT, double>(
        static_cast<IT>(c.sources.size()), n, std::move(seeds),
        DuplicatePolicy::kSum));
    c.numsp = frontier;
    c.frontier = frontier;
    c.levels.push_back(*frontier);
    c.delta.assign(c.sources.size() * static_cast<std::size_t>(n), 0.0);
    chunks.push_back(std::move(c));
  }

  // ---- forward sweep: all active chunks advance one level per round ----
  WallTimer fwd;
  client::SubmitOptions fwd_opts;
  fwd_opts.masked = opts;
  fwd_opts.masked.kind = MaskKind::kComplement;
  bool any_active = true;
  while (any_active) {
    std::vector<std::pair<std::size_t, std::future<Result>>> round;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      if (!chunks[c].active) continue;
      round.emplace_back(c, session.submit(chunks[c].frontier,
                                           chunks[c].numsp, handle,
                                           fwd_opts));
    }
    any_active = false;
    for (auto& [c, fut] : round) {
      Mat next = std::move(fut.get().value());
      if (next.nnz() == 0) {
        chunks[c].active = false;
        continue;
      }
      chunks[c].numsp =
          std::make_shared<const Mat>(ewise_add(*chunks[c].numsp, next));
      chunks[c].levels.push_back(next);
      chunks[c].frontier = std::make_shared<const Mat>(std::move(next));
      any_active = true;
    }
  }
  BCResult result;
  std::size_t max_depth = 0;
  for (const auto& c : chunks) max_depth = std::max(max_depth, c.levels.size());
  result.depth = static_cast<int>(max_depth) - 1;
  result.seconds_forward = fwd.seconds();

  // ---- backward sweep ----
  WallTimer bwd;
  client::SubmitOptions bwd_opts;
  bwd_opts.masked = opts;
  bwd_opts.masked.kind = MaskKind::kMask;
  for (std::size_t d = max_depth - 1; d >= 1; --d) {
    std::vector<std::pair<std::size_t, std::future<Result>>> round;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      Chunk& ch = chunks[c];
      if (ch.levels.size() <= d) continue;
      const Mat& cur = ch.levels[d];
      const auto cb = static_cast<IT>(ch.sources.size());

      // W = (1 + delta) / sigma on the pattern of the depth-d frontier.
      auto w = std::make_shared<Mat>(cur);
      {
        auto vals = w->mutable_values();
        const auto rp = w->rowptr();
        const auto ci = w->colidx();
        for (IT q = 0; q < cb; ++q) {
          for (IT p = rp[q]; p < rp[q + 1]; ++p) {
            const auto idx = static_cast<std::size_t>(q) *
                                 static_cast<std::size_t>(n) +
                             static_cast<std::size_t>(ci[p]);
            vals[p] = (1.0 + ch.delta[idx]) / vals[p];
          }
        }
      }
      auto prev = std::make_shared<const Mat>(ch.levels[d - 1]);
      round.emplace_back(
          c, session.submit(std::shared_ptr<const Mat>(std::move(w)),
                            std::move(prev), handle, bwd_opts));
    }
    for (auto& [c, fut] : round) {
      Chunk& ch = chunks[c];
      const Mat w2 = std::move(fut.get().value());
      const Mat& prev = ch.levels[d - 1];
      const auto cb = static_cast<IT>(ch.sources.size());
      const auto rp2 = w2.rowptr();
      const auto ci2 = w2.colidx();
      const auto vl2 = w2.values();
      for (IT q = 0; q < cb; ++q) {
        const auto prow = prev.row(q);
        IT pp = 0;
        for (IT p = rp2[q]; p < rp2[q + 1]; ++p) {
          const IT i = ci2[p];
          while (prow.cols[pp] != i) ++pp;  // subset guarantee: always found
          const auto idx = static_cast<std::size_t>(q) *
                               static_cast<std::size_t>(n) +
                           static_cast<std::size_t>(i);
          ch.delta[idx] += vl2[p] * prow.vals[pp];
        }
      }
    }
  }
  result.seconds_backward = bwd.seconds();
  session.release(handle);

  // Reduce chunk deltas in source order (matches the monolithic loop).
  result.centrality.assign(static_cast<std::size_t>(n), 0.0);
  for (auto& ch : chunks) {
    for (std::size_t q = 0; q < ch.sources.size(); ++q) {
      ch.delta[q * static_cast<std::size_t>(n) +
               static_cast<std::size_t>(ch.sources[q])] = 0.0;
    }
    for (std::size_t q = 0; q < ch.sources.size(); ++q) {
      for (IT v = 0; v < n; ++v) {
        result.centrality[static_cast<std::size_t>(v)] +=
            ch.delta[q * static_cast<std::size_t>(n) +
                     static_cast<std::size_t>(v)];
      }
    }
  }
  result.seconds_total = total.seconds();
  return result;
}

}  // namespace msx
