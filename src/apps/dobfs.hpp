// Direction-optimized BFS on masked SpGEVM (paper §4).
//
// "The concept of masking has been first applied to sparse-matrix-vector
// multiplication to implement the direction-optimized graph traversal" —
// this app is that algorithm: each level computes
//     next = ¬visited ⊙ (frontier⊺ · A)
// choosing per level between the *push* formulation (frontier-driven MSA
// accumulation, cheap for small frontiers) and the *pull* formulation
// (unvisited vertices probe their neighbours via Inner dot products, cheap
// when most of the graph is already visited). The switch uses Beamer's
// heuristic: pull when the frontier's outgoing edges outnumber the edges of
// the unvisited region divided by alpha.
#pragma once

#include <cstdint>
#include <vector>

#include "core/masked_spgevm.hpp"
#include "matrix/convert.hpp"
#include "matrix/ops.hpp"
#include "semiring/semirings.hpp"
#include "vector/sparse_vector.hpp"

namespace msx {

struct DOBFSResult {
  std::vector<std::int32_t> levels;  // per-vertex depth; -1 unreachable
  int depth = 0;
  int push_levels = 0;  // levels executed with the push formulation
  int pull_levels = 0;  // levels executed with the pull formulation
};

enum class BFSDirection {
  kAdaptive,  // Beamer's push/pull switch
  kPushOnly,
  kPullOnly,
};

// `graph` must have a symmetric pattern without self-loops.
template <class IT, class VT>
DOBFSResult direction_optimized_bfs(const CSRMatrix<IT, VT>& graph, IT source,
                                    BFSDirection direction =
                                        BFSDirection::kAdaptive,
                                    double alpha = 4.0) {
  check_arg(graph.nrows() == graph.ncols(), "dobfs: matrix must be square");
  const IT n = graph.nrows();
  check_arg(source >= 0 && source < n, "dobfs: source out of range");

  using SV = SparseVector<IT, std::int64_t>;
  const CSRMatrix<IT, std::int64_t> a(
      n, n, std::vector<IT>(graph.rowptr().begin(), graph.rowptr().end()),
      std::vector<IT>(graph.colidx().begin(), graph.colidx().end()),
      std::vector<std::int64_t>(graph.nnz(), 1));
  // Symmetric pattern, but the pull path needs a genuine CSC object; built
  // once up front (the paper's Inner assumes a column-major copy exists).
  const auto a_csc = csr_to_csc(a);

  DOBFSResult result;
  result.levels.assign(static_cast<std::size_t>(n), -1);
  result.levels[static_cast<std::size_t>(source)] = 0;

  SV frontier(n);
  frontier.push_back(source, 1);
  SV visited = frontier;  // pattern of discovered vertices

  // Total degree of the not-yet-visited region, maintained incrementally.
  std::size_t unvisited_edges = a.nnz();
  unvisited_edges -= static_cast<std::size_t>(a.row_nnz(source));

  std::int32_t depth = 0;
  while (!frontier.empty()) {
    // Frontier's outgoing edge count drives the direction decision.
    std::size_t frontier_edges = 0;
    for (IT v : frontier.indices()) {
      frontier_edges += static_cast<std::size_t>(a.row_nnz(v));
    }
    bool pull;
    switch (direction) {
      case BFSDirection::kPushOnly: pull = false; break;
      case BFSDirection::kPullOnly: pull = true; break;
      case BFSDirection::kAdaptive:
      default:
        pull = static_cast<double>(frontier_edges) >
               static_cast<double>(unvisited_edges) / alpha;
        break;
    }

    MaskedOptions opts;
    opts.kind = MaskKind::kComplement;
    opts.algo = pull ? MaskedAlgo::kInner : MaskedAlgo::kMSA;
    auto next = masked_spgevm_with_csc<PlusPair<std::int64_t>>(
        frontier, a, a_csc, visited, opts);
    if (next.empty()) break;
    (pull ? result.pull_levels : result.push_levels) += 1;

    ++depth;
    for (IT v : next.indices()) {
      result.levels[static_cast<std::size_t>(v)] = depth;
      unvisited_edges -= static_cast<std::size_t>(a.row_nnz(v));
    }
    visited = ewise_add(visited, next);
    frontier = std::move(next);
  }
  result.depth = depth;
  return result;
}

}  // namespace msx
