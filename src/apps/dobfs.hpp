// Direction-optimized BFS on masked SpGEVM (paper §4).
//
// "The concept of masking has been first applied to sparse-matrix-vector
// multiplication to implement the direction-optimized graph traversal" —
// this app is that algorithm: each level computes
//     next = ¬visited ⊙ (frontier⊺ · A)
// choosing per level between the *push* formulation (frontier-driven MSA
// accumulation, cheap for small frontiers) and the *pull* formulation
// (unvisited vertices probe their neighbours via Inner dot products, cheap
// when most of the graph is already visited). The switch uses Beamer's
// heuristic: pull when the frontier's outgoing edges outnumber the edges of
// the unvisited region divided by alpha.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "client/client.hpp"
#include "core/masked_spgevm.hpp"
#include "core/plan.hpp"
#include "matrix/ops.hpp"
#include "semiring/semirings.hpp"
#include "vector/sparse_vector.hpp"

namespace msx {

struct DOBFSResult {
  std::vector<std::int32_t> levels;  // per-vertex depth; -1 unreachable
  int depth = 0;
  int push_levels = 0;  // levels executed with the push formulation
  int pull_levels = 0;  // levels executed with the pull formulation
};

enum class BFSDirection {
  kAdaptive,  // Beamer's push/pull switch
  kPushOnly,
  kPullOnly,
};

// `graph` must have a symmetric pattern without self-loops.
template <class IT, class VT>
DOBFSResult direction_optimized_bfs(const CSRMatrix<IT, VT>& graph, IT source,
                                    BFSDirection direction =
                                        BFSDirection::kAdaptive,
                                    double alpha = 4.0) {
  check_arg(graph.nrows() == graph.ncols(), "dobfs: matrix must be square");
  const IT n = graph.nrows();
  check_arg(source >= 0 && source < n, "dobfs: source out of range");

  using SR = PlusPair<std::int64_t>;
  using SV = SparseVector<IT, std::int64_t>;
  const CSRMatrix<IT, std::int64_t> a(
      n, n, std::vector<IT>(graph.rowptr().begin(), graph.rowptr().end()),
      std::vector<IT>(graph.colidx().begin(), graph.colidx().end()),
      std::vector<std::int64_t>(graph.nnz(), 1));

  DOBFSResult result;
  result.levels.assign(static_cast<std::size_t>(n), -1);
  result.levels[static_cast<std::size_t>(source)] = 0;

  SV frontier(n);
  frontier.push_back(source, 1);
  SV visited = frontier;  // pattern of discovered vertices

  // One plan per formulation, constructed outside the level loop with the
  // stationary adjacency as B: the push plan keeps its MSA accumulators
  // warm, the pull plan owns the CSC copy of A that Inner needs (the paper
  // assumes the column-major copy exists — previously rebuilt by hand here).
  // Each level rebinds only the 1×n frontier and visited-mask rows.
  MaskedOptions push_opts;
  push_opts.kind = MaskKind::kComplement;
  push_opts.algo = MaskedAlgo::kMSA;
  // schedule is left at kAuto: like the other apps, both plans ride the
  // flop-balanced partition it resolves to (a 1×n frontier yields a single
  // block — cheap — and the scheduling story stays uniform).
  MaskedOptions pull_opts = push_opts;
  pull_opts.algo = MaskedAlgo::kInner;
  const auto frontier_row = detail::as_row_matrix(frontier);
  const auto visited_row = detail::as_row_matrix(visited);
  std::optional<MaskedPlan<SR, IT, std::int64_t>> push_plan;
  std::optional<MaskedPlan<SR, IT, std::int64_t>> pull_plan;
  if (direction != BFSDirection::kPullOnly) {
    push_plan.emplace(frontier_row, a, visited_row, push_opts);
  }
  if (direction != BFSDirection::kPushOnly) {
    pull_plan.emplace(frontier_row, a, visited_row, pull_opts);
  }

  // Total degree of the not-yet-visited region, maintained incrementally.
  std::size_t unvisited_edges = a.nnz();
  unvisited_edges -= static_cast<std::size_t>(a.row_nnz(source));

  std::int32_t depth = 0;
  while (!frontier.empty()) {
    // Frontier's outgoing edge count drives the direction decision.
    std::size_t frontier_edges = 0;
    for (IT v : frontier.indices()) {
      frontier_edges += static_cast<std::size_t>(a.row_nnz(v));
    }
    bool pull;
    switch (direction) {
      case BFSDirection::kPushOnly: pull = false; break;
      case BFSDirection::kPullOnly: pull = true; break;
      case BFSDirection::kAdaptive:
      default:
        pull = static_cast<double>(frontier_edges) >
               static_cast<double>(unvisited_edges) / alpha;
        break;
    }

    auto& plan = pull ? *pull_plan : *push_plan;
    plan.rebind(detail::as_row_matrix(frontier),
                detail::as_row_matrix(visited));
    auto next_row = plan.execute();
    SV next = detail::first_row_as_vector(next_row);
    if (next.empty()) break;
    (pull ? result.pull_levels : result.push_levels) += 1;

    ++depth;
    for (IT v : next.indices()) {
      result.levels[static_cast<std::size_t>(v)] = depth;
      unvisited_edges -= static_cast<std::size_t>(a.row_nnz(v));
    }
    visited = ewise_add(visited, next);
    frontier = std::move(next);
  }
  result.depth = depth;
  return result;
}

// Client-session variant (ISSUE 5): the adjacency matrix is registered once
// as the stationary structure; every level submits the 1×n frontier row with
// the visited row as the per-request complement mask, switching the
// algorithm option between the push (MSA) and pull (Inner) formulations per
// Beamer's heuristic. Levels are sequential by nature (each needs the last),
// so this exercises the handle-reuse side of the client rather than
// pipelining depth.
template <class IT, class VT>
DOBFSResult direction_optimized_bfs(
    const CSRMatrix<IT, VT>& graph, IT source,
    client::Session<PlusPair<std::int64_t>, IT, std::int64_t>& session,
    BFSDirection direction = BFSDirection::kAdaptive, double alpha = 4.0) {
  check_arg(graph.nrows() == graph.ncols(), "dobfs: matrix must be square");
  const IT n = graph.nrows();
  check_arg(source >= 0 && source < n, "dobfs: source out of range");

  using SV = SparseVector<IT, std::int64_t>;
  using Mat = CSRMatrix<IT, std::int64_t>;
  const auto a = std::make_shared<const Mat>(
      n, n, std::vector<IT>(graph.rowptr().begin(), graph.rowptr().end()),
      std::vector<IT>(graph.colidx().begin(), graph.colidx().end()),
      std::vector<std::int64_t>(graph.nnz(), 1));
  auto handle = session.register_structure(
      client::StructureSpec<IT, std::int64_t>(a));

  DOBFSResult result;
  result.levels.assign(static_cast<std::size_t>(n), -1);
  result.levels[static_cast<std::size_t>(source)] = 0;

  SV frontier(n);
  frontier.push_back(source, 1);
  SV visited = frontier;

  client::SubmitOptions push_opts;
  push_opts.masked.kind = MaskKind::kComplement;
  push_opts.masked.algo = MaskedAlgo::kMSA;
  client::SubmitOptions pull_opts = push_opts;
  pull_opts.masked.algo = MaskedAlgo::kInner;

  std::size_t unvisited_edges = a->nnz();
  unvisited_edges -= static_cast<std::size_t>(a->row_nnz(source));

  std::int32_t depth = 0;
  while (!frontier.empty()) {
    std::size_t frontier_edges = 0;
    for (IT v : frontier.indices()) {
      frontier_edges += static_cast<std::size_t>(a->row_nnz(v));
    }
    bool pull;
    switch (direction) {
      case BFSDirection::kPushOnly: pull = false; break;
      case BFSDirection::kPullOnly: pull = true; break;
      case BFSDirection::kAdaptive:
      default:
        pull = static_cast<double>(frontier_edges) >
               static_cast<double>(unvisited_edges) / alpha;
        break;
    }

    auto frontier_row =
        std::make_shared<const Mat>(detail::as_row_matrix(frontier));
    auto visited_row =
        std::make_shared<const Mat>(detail::as_row_matrix(visited));
    auto res = session
                   .submit(frontier_row, visited_row, handle,
                           pull ? pull_opts : push_opts)
                   .get();
    SV next = detail::first_row_as_vector(res.value());
    if (next.empty()) break;
    (pull ? result.pull_levels : result.push_levels) += 1;

    ++depth;
    for (IT v : next.indices()) {
      result.levels[static_cast<std::size_t>(v)] = depth;
      unvisited_edges -= static_cast<std::size_t>(a->row_nnz(v));
    }
    visited = ewise_add(visited, next);
    frontier = std::move(next);
  }
  session.release(handle);
  result.depth = depth;
  return result;
}

}  // namespace msx
