// Dense row-tile accumulator — the "dense" execution mode of the adaptive
// per-block engine (src/adaptive/).
//
// Wheatman et al. (Masked Matrix Multiplication for Emergent Sparsity)
// observe that once a row's fill fraction crosses a few percent, the
// branch-per-insert discipline of sparse accumulators loses to a dense tile
// that accumulates unconditionally and pays one O(width) sweep per row.
// This accumulator is that tile, shaped to the MSA interface
// (init / prepare / insert / insert_symbolic / gather_and_reset / reset /
// clear) so MSAKernel can be instantiated with it via AccOverride, exactly
// like MSABitmapMasked.
//
// Layout: a 1-bit "set" bitmap (64 columns per word) plus a dense value
// array. A numeric insert is a single word test-and-set and a value write —
// no allowed-state branch at all: products at masked-out columns are
// materialized and discarded at gather (compute is cheaper than the
// mispredicted branch at high fill; semiring ops are pure, so evaluating a
// discarded product is safe). The per-row cost this buys back is the
// O(width/64) word clear after every row — the term the ModePlanner's cost
// model gates dense mode on.
//
// Bit-identity contract (the load-bearing property): values accumulate in
// offer order with first-write-then-add discipline (never zero-init +
// unconditional add, which would turn a first value of -0.0 into +0.0), and
// the gather emits mask-row order (masked) or ascending column order
// (complemented) — byte MSA, bitmap MSA and the hash accumulator do exactly
// the same, so every mode of the adaptive engine produces bit-identical CSR
// output.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/platform.hpp"

namespace msx {

namespace detail {

inline constexpr std::size_t kDenseTileWordBits = 64;

inline std::size_t dense_tile_words(std::size_t ncols) {
  return (ncols + kDenseTileWordBits - 1) / kDenseTileWordBits;
}

}  // namespace detail

// Dense tile for the non-complemented mask. The `allowed` bitmap (seeded
// from the mask row) exists only for the symbolic pass, where the exact
// count of mask-hits must be known at insert time; the numeric pass ignores
// it and filters at gather by walking the mask row.
template <class IT, class VT>
class DenseTileMasked {
 public:
  // Ensures the bitmap and value array cover `ncols` columns. Idempotent;
  // newly grown space starts unset.
  void init(IT ncols) {
    const std::size_t words =
        detail::dense_tile_words(static_cast<std::size_t>(ncols));
    if (words > set_.size()) {
      set_.resize(words, 0);
      allowed_.resize(words, 0);
    }
    if (static_cast<std::size_t>(ncols) > values_.size()) {
      values_.resize(static_cast<std::size_t>(ncols));
    }
    cur_words_ = words;
  }

  void prepare(std::span<const IT> mask_cols) {
    for (IT j : mask_cols) {
      allowed_[word_of(j)] |= bit_of(j);
    }
  }

  // Unconditional accumulate: one test-and-set on the bitmap, no mask
  // branch. First write vs add keeps the value bit-identical to the sparse
  // accumulators' offer-order sum.
  template <class F, class Add>
  MSX_FORCE_INLINE void insert(IT key, F&& value_fn, Add&& add) {
    std::uint64_t& word = set_[word_of(key)];
    const std::uint64_t bit = bit_of(key);
    auto& v = values_[static_cast<std::size_t>(key)];
    if (word & bit) {
      v = add(v, value_fn());
    } else {
      word |= bit;
      v = value_fn();
    }
  }

  // Symbolic insert: 1 on the first set of an allowed key (the numeric
  // shortcut is unavailable here — the count must be exact at insert time).
  MSX_FORCE_INLINE IT insert_symbolic(IT key) {
    std::uint64_t& word = set_[word_of(key)];
    const std::uint64_t bit = bit_of(key);
    if ((word & bit) || !(allowed_[word_of(key)] & bit)) {
      word |= bit;
      return 0;
    }
    word |= bit;
    return 1;
  }

  // Gathers set mask columns in mask-row order, then pays the dense mode's
  // per-row sweep: a word-level clear of the whole set bitmap (non-mask
  // offers left bits behind that a mask walk cannot reach).
  IT gather_and_reset(std::span<const IT> mask_cols, IT* out_cols,
                      VT* out_vals) {
    IT cnt = 0;
    for (IT j : mask_cols) {
      if (set_[word_of(j)] & bit_of(j)) {
        out_cols[cnt] = j;
        out_vals[cnt] = values_[static_cast<std::size_t>(j)];
        ++cnt;
      }
      allowed_[word_of(j)] &= ~bit_of(j);
    }
    std::fill(set_.begin(),
              set_.begin() + static_cast<std::ptrdiff_t>(cur_words_), 0);
    return cnt;
  }

  // Resets after a symbolic pass (no output).
  void reset(std::span<const IT> mask_cols) {
    for (IT j : mask_cols) {
      allowed_[word_of(j)] &= ~bit_of(j);
    }
    std::fill(set_.begin(),
              set_.begin() + static_cast<std::ptrdiff_t>(cur_words_), 0);
  }

  // Releases the backing arrays entirely (plan workspace-reset hook).
  void clear() {
    set_ = {};
    allowed_ = {};
    values_ = {};
    cur_words_ = 0;
  }

 private:
  static std::size_t word_of(IT key) {
    return static_cast<std::size_t>(key) / detail::kDenseTileWordBits;
  }
  static std::uint64_t bit_of(IT key) {
    return std::uint64_t{1}
           << (static_cast<std::size_t>(key) % detail::kDenseTileWordBits);
  }

  std::vector<std::uint64_t> set_;
  std::vector<std::uint64_t> allowed_;
  std::vector<VT> values_;
  std::size_t cur_words_ = 0;
};

// Dense tile for the complemented mask: mask columns are banned, everything
// else is fair game. The gather scans (set & ~banned) words in ascending
// order — the same sorted-by-column output the complement MSA and hash
// accumulators produce after sorting their touched lists, without the sort.
template <class IT, class VT>
class DenseTileComplement {
 public:
  void init(IT ncols) {
    const std::size_t words =
        detail::dense_tile_words(static_cast<std::size_t>(ncols));
    if (words > set_.size()) {
      set_.resize(words, 0);
      banned_.resize(words, 0);
    }
    if (static_cast<std::size_t>(ncols) > values_.size()) {
      values_.resize(static_cast<std::size_t>(ncols));
    }
    cur_words_ = words;
  }

  void prepare(std::span<const IT> mask_cols) {
    for (IT j : mask_cols) {
      banned_[word_of(j)] |= bit_of(j);
    }
  }

  // Banned columns accumulate too (and are dropped by the gather's ~banned
  // filter); non-banned columns see exactly the offer-order sum.
  template <class F, class Add>
  MSX_FORCE_INLINE void insert(IT key, F&& value_fn, Add&& add) {
    std::uint64_t& word = set_[word_of(key)];
    const std::uint64_t bit = bit_of(key);
    auto& v = values_[static_cast<std::size_t>(key)];
    if (word & bit) {
      v = add(v, value_fn());
    } else {
      word |= bit;
      v = value_fn();
    }
  }

  MSX_FORCE_INLINE IT insert_symbolic(IT key) {
    std::uint64_t& word = set_[word_of(key)];
    const std::uint64_t bit = bit_of(key);
    if ((word & bit) || (banned_[word_of(key)] & bit)) {
      word |= bit;
      return 0;
    }
    word |= bit;
    return 1;
  }

  // Word-tiled gather: ctz walks each (set & ~banned) word's bits in
  // ascending column order, so the output is sorted without a touched list.
  IT gather_and_reset(std::span<const IT> mask_cols, IT* out_cols,
                      VT* out_vals) {
    IT cnt = 0;
    for (std::size_t w = 0; w < cur_words_; ++w) {
      std::uint64_t live = set_[w] & ~banned_[w];
      while (live != 0) {
        const int b = std::countr_zero(live);
        live &= live - 1;
        const IT j = static_cast<IT>(w * detail::kDenseTileWordBits +
                                     static_cast<std::size_t>(b));
        out_cols[cnt] = j;
        out_vals[cnt] = values_[static_cast<std::size_t>(j)];
        ++cnt;
      }
      set_[w] = 0;
    }
    for (IT j : mask_cols) {
      banned_[word_of(j)] &= ~bit_of(j);
    }
    return cnt;
  }

  void reset(std::span<const IT> mask_cols) {
    std::fill(set_.begin(),
              set_.begin() + static_cast<std::ptrdiff_t>(cur_words_), 0);
    for (IT j : mask_cols) {
      banned_[word_of(j)] &= ~bit_of(j);
    }
  }

  // Releases the backing arrays entirely (plan workspace-reset hook).
  void clear() {
    set_ = {};
    banned_ = {};
    values_ = {};
    cur_words_ = 0;
  }

 private:
  static std::size_t word_of(IT key) {
    return static_cast<std::size_t>(key) / detail::kDenseTileWordBits;
  }
  static std::uint64_t bit_of(IT key) {
    return std::uint64_t{1}
           << (static_cast<std::size_t>(key) % detail::kDenseTileWordBits);
  }

  std::vector<std::uint64_t> set_;
  std::vector<std::uint64_t> banned_;
  std::vector<VT> values_;
  std::size_t cur_words_ = 0;
};

}  // namespace msx
