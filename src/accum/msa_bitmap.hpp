// Bitmap MSA — an extension of the paper's MSA accumulator (§5.2) that
// packs the three states into 2 bits per column (4 columns per byte,
// 32 per 64-bit word) instead of one byte per column.
//
// Rationale: the paper attributes MSA's large-matrix slowdown to its dense
// O(ncols) state array falling out of cache (§5.3, §8.1). Packing shrinks
// the state working set 4×, trading a shift/mask per access — the same
// trade SS:GB's bitmap format makes. The values array is untouched (values
// are only written for mask hits).
//
// Interface-compatible with MSAMasked so the MSA kernel can be instantiated
// with either (see MaskedAlgo::kMSABitmap).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "accum/msa.hpp"  // AccState
#include "common/platform.hpp"

namespace msx {

template <class IT, class VT>
class MSABitmapMasked {
 public:
  void init(IT ncols) {
    const auto words = static_cast<std::size_t>(ncols + kPerWord - 1) /
                       kPerWord;
    if (words > states_.size()) {
      states_.resize(words, 0);  // 0 == NOTALLOWED everywhere
      values_.resize(static_cast<std::size_t>(ncols));
    } else if (static_cast<std::size_t>(ncols) > values_.size()) {
      values_.resize(static_cast<std::size_t>(ncols));
    }
  }

  void prepare(std::span<const IT> mask_cols) {
    for (IT j : mask_cols) set_state(j, AccState::kAllowed);
  }

  template <class F, class Add>
  MSX_FORCE_INLINE void insert(IT key, F&& value_fn, Add&& add) {
    const AccState st = get_state(key);
    if (st == AccState::kNotAllowed) return;
    auto& v = values_[static_cast<std::size_t>(key)];
    if (st == AccState::kSet) {
      v = add(v, value_fn());
    } else {
      set_state(key, AccState::kSet);
      v = value_fn();
    }
  }

  MSX_FORCE_INLINE IT insert_symbolic(IT key) {
    if (get_state(key) != AccState::kAllowed) return 0;
    set_state(key, AccState::kSet);
    return 1;
  }

  IT gather_and_reset(std::span<const IT> mask_cols, IT* out_cols,
                      VT* out_vals) {
    IT cnt = 0;
    for (IT j : mask_cols) {
      if (get_state(j) == AccState::kSet) {
        out_cols[cnt] = j;
        out_vals[cnt] = values_[static_cast<std::size_t>(j)];
        ++cnt;
      }
      set_state(j, AccState::kNotAllowed);
    }
    return cnt;
  }

  void reset(std::span<const IT> mask_cols) {
    for (IT j : mask_cols) set_state(j, AccState::kNotAllowed);
  }

  // Releases the backing arrays entirely (plan workspace-reset hook).
  void clear() {
    states_ = {};
    values_ = {};
  }

 private:
  static constexpr std::size_t kPerWord = 32;  // 2 bits per state

  MSX_FORCE_INLINE AccState get_state(IT key) const {
    const auto k = static_cast<std::size_t>(key);
    const std::uint64_t word = states_[k / kPerWord];
    return static_cast<AccState>((word >> (2 * (k % kPerWord))) & 3u);
  }

  MSX_FORCE_INLINE void set_state(IT key, AccState st) {
    const auto k = static_cast<std::size_t>(key);
    std::uint64_t& word = states_[k / kPerWord];
    const auto shift = 2 * (k % kPerWord);
    word = (word & ~(std::uint64_t{3} << shift)) |
           (static_cast<std::uint64_t>(st) << shift);
  }

  std::vector<std::uint64_t> states_;
  std::vector<VT> values_;
};

}  // namespace msx
