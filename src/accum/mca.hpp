// Mask Compressed Accumulator (MCA) — paper §5.4, the novel accumulator.
//
// Observation: a masked output row can never hold more entries than the mask
// row, so the accumulator arrays are sized nnz(mask row) and indexed by a
// key's *rank within the mask row* rather than by column index. Because the
// mask itself defines which keys exist, only two states are needed
// (ALLOWED/SET, Fig. 5); the NOTALLOWED state is structurally impossible.
//
// The caller (the MCA kernel) computes ranks by merging each B row with the
// sorted mask row — the accumulator itself is a dense rank-indexed array
// that fits in L1 for typical mask rows.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "common/platform.hpp"
#include "accum/msa.hpp"  // AccState

namespace msx {

template <class IT, class VT>
class MCAAccumulator {
 public:
  // Sizes the arrays for a mask row of `mask_nnz` entries and resets every
  // slot to ALLOWED. (AccState::kAllowed == 1, so a bytewise memset works.)
  void prepare(IT mask_nnz) {
    const auto n = static_cast<std::size_t>(mask_nnz);
    if (n > states_.size()) {
      states_.resize(n);
      values_.resize(n);
    }
    std::memset(states_.data(), static_cast<int>(AccState::kAllowed), n);
  }

  // Inserts at mask rank `idx` (precomputed by the kernel's merge).
  template <class F, class Add>
  MSX_FORCE_INLINE void insert(IT idx, F&& value_fn, Add&& add) {
    MSX_ASSERT(static_cast<std::size_t>(idx) < states_.size());
    auto& st = states_[static_cast<std::size_t>(idx)];
    auto& v = values_[static_cast<std::size_t>(idx)];
    if (st == AccState::kSet) {
      v = add(v, value_fn());
    } else {
      st = AccState::kSet;
      v = value_fn();
    }
  }

  MSX_FORCE_INLINE IT insert_symbolic(IT idx) {
    auto& st = states_[static_cast<std::size_t>(idx)];
    if (st == AccState::kSet) return 0;
    st = AccState::kSet;
    return 1;
  }

  // Gathers SET ranks in order, translating ranks back to column indices via
  // the mask row. Output is sorted because the mask row is.
  IT gather(std::span<const IT> mask_cols, IT* out_cols, VT* out_vals) const {
    IT cnt = 0;
    for (std::size_t idx = 0; idx < mask_cols.size(); ++idx) {
      if (states_[idx] == AccState::kSet) {
        out_cols[cnt] = mask_cols[idx];
        out_vals[cnt] = values_[idx];
        ++cnt;
      }
    }
    return cnt;
  }

  // Releases the backing arrays entirely (plan workspace-reset hook).
  void clear() {
    states_ = {};
    values_ = {};
  }

 private:
  std::vector<AccState> states_;
  std::vector<VT> values_;
};

}  // namespace msx
