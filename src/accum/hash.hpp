// Hash accumulator — paper §5.3.
//
// A single open-addressing table with linear probing holds (key, state,
// value) together. Per the paper: no resizing (the masked table can never
// hold more than nnz(mask row) keys), and a load factor of 0.25 — capacity is
// the next power of two ≥ 4 × the key bound. The table is cleared by
// memset-ing the key array of the active capacity before each row; compared
// with MSA this shrinks the working set from O(ncols) to O(nnz(m)) at the
// price of hashing on every access.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "common/platform.hpp"
#include "common/random.hpp"
#include "accum/msa.hpp"  // AccState

namespace msx {

namespace detail {

// Fibonacci-style multiplicative hash into [0, capacity) for pow2 capacity.
template <class IT>
MSX_FORCE_INLINE std::size_t hash_key(IT key, std::size_t mask_bits) {
  const std::uint64_t h =
      static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
  return static_cast<std::size_t>(h >> (64 - mask_bits));
}

constexpr std::size_t log2_pow2(std::size_t x) {
  std::size_t b = 0;
  while ((std::size_t{1} << b) < x) ++b;
  return b;
}

}  // namespace detail

// Hash accumulator for the non-complemented mask. Only mask keys are ever
// stored: prepare() seeds them as ALLOWED, and insert() drops any key that
// probes to an empty slot.
template <class IT, class VT>
class HashMasked {
 public:
  static constexpr IT kEmpty = static_cast<IT>(-1);

  // Sizes and clears the table for a row whose mask has `mask_cols` entries,
  // then seeds the mask keys as ALLOWED.
  void prepare(std::span<const IT> mask_cols) {
    const std::size_t want = next_pow2(
        std::max<std::size_t>(8, 4 * mask_cols.size()));
    if (want > keys_.size()) {
      keys_.assign(want, kEmpty);
      states_.resize(want);
      values_.resize(want);
      capacity_ = want;
      bits_ = detail::log2_pow2(want);
    } else {
      // Shrink the active window to the row's needs: clearing cost tracks
      // nnz(m), not the high-water mark.
      capacity_ = want;
      bits_ = detail::log2_pow2(want);
      std::memset(keys_.data(), 0xFF, capacity_ * sizeof(IT));
    }
    for (IT j : mask_cols) {
      std::size_t s = detail::hash_key(j, bits_);
      while (keys_[s] != kEmpty) {
        MSX_ASSERT(keys_[s] != j);  // mask rows are duplicate-free
        s = (s + 1) & (capacity_ - 1);
      }
      keys_[s] = j;
      states_[s] = AccState::kAllowed;
    }
  }

  template <class F, class Add>
  MSX_FORCE_INLINE void insert(IT key, F&& value_fn, Add&& add) {
    std::size_t s = detail::hash_key(key, bits_);
    while (true) {
      if (keys_[s] == key) break;
      if (keys_[s] == kEmpty) return;  // not in mask: discard
      s = (s + 1) & (capacity_ - 1);
    }
    if (states_[s] == AccState::kSet) {
      values_[s] = add(values_[s], value_fn());
    } else {
      states_[s] = AccState::kSet;
      values_[s] = value_fn();
    }
  }

  MSX_FORCE_INLINE IT insert_symbolic(IT key) {
    std::size_t s = detail::hash_key(key, bits_);
    while (true) {
      if (keys_[s] == key) break;
      if (keys_[s] == kEmpty) return 0;
      s = (s + 1) & (capacity_ - 1);
    }
    if (states_[s] != AccState::kAllowed) return 0;
    states_[s] = AccState::kSet;
    return 1;
  }

  // Gathers SET values in mask order; the table is implicitly discarded (the
  // next prepare() clears it).
  IT gather(std::span<const IT> mask_cols, IT* out_cols, VT* out_vals) const {
    IT cnt = 0;
    for (IT j : mask_cols) {
      std::size_t s = detail::hash_key(j, bits_);
      while (keys_[s] != j) {
        MSX_ASSERT(keys_[s] != kEmpty);
        s = (s + 1) & (capacity_ - 1);
      }
      if (states_[s] == AccState::kSet) {
        out_cols[cnt] = j;
        out_vals[cnt] = values_[s];
        ++cnt;
      }
    }
    return cnt;
  }

  std::size_t capacity() const { return capacity_; }

  // Releases the table entirely (plan workspace-reset hook).
  void clear() {
    keys_ = {};
    states_ = {};
    values_ = {};
    capacity_ = 0;
    bits_ = 0;
  }

 private:
  std::vector<IT> keys_;
  std::vector<AccState> states_;
  std::vector<VT> values_;
  std::size_t capacity_ = 0;
  std::size_t bits_ = 0;
};

// Hash accumulator for the complemented mask: mask keys are seeded as
// NOTALLOWED, new keys are inserted freely and recorded in a touched list
// (output is sorted during gather).
template <class IT, class VT>
class HashComplement {
 public:
  static constexpr IT kEmpty = static_cast<IT>(-1);

  // `extra_bound` is an upper bound on distinct non-mask keys that may be
  // inserted for this row (the driver passes min(flops, ncols)).
  void prepare(std::span<const IT> mask_cols, std::size_t extra_bound) {
    const std::size_t want = next_pow2(std::max<std::size_t>(
        8, 4 * (mask_cols.size() + extra_bound)));
    if (want > keys_.size()) {
      keys_.assign(want, kEmpty);
      states_.resize(want);
      values_.resize(want);
    } else {
      std::memset(keys_.data(), 0xFF, want * sizeof(IT));
    }
    capacity_ = want;
    bits_ = detail::log2_pow2(want);
    touched_.clear();
    for (IT j : mask_cols) {
      std::size_t s = detail::hash_key(j, bits_);
      while (keys_[s] != kEmpty) {
        MSX_ASSERT(keys_[s] != j);
        s = (s + 1) & (capacity_ - 1);
      }
      keys_[s] = j;
      states_[s] = AccState::kNotAllowed;
    }
  }

  template <class F, class Add>
  MSX_FORCE_INLINE void insert(IT key, F&& value_fn, Add&& add) {
    std::size_t s = detail::hash_key(key, bits_);
    while (keys_[s] != kEmpty && keys_[s] != key) {
      s = (s + 1) & (capacity_ - 1);
    }
    if (keys_[s] == kEmpty) {
      keys_[s] = key;
      states_[s] = AccState::kSet;
      values_[s] = value_fn();
      touched_.push_back(key);
      return;
    }
    if (states_[s] == AccState::kNotAllowed) return;  // masked out
    values_[s] = add(values_[s], value_fn());
  }

  MSX_FORCE_INLINE IT insert_symbolic(IT key) {
    std::size_t s = detail::hash_key(key, bits_);
    while (keys_[s] != kEmpty && keys_[s] != key) {
      s = (s + 1) & (capacity_ - 1);
    }
    if (keys_[s] == kEmpty) {
      keys_[s] = key;
      states_[s] = AccState::kSet;
      touched_.push_back(key);
      return 1;
    }
    return 0;
  }

  // Gathers inserted values sorted by column index.
  IT gather(IT* out_cols, VT* out_vals) {
    std::sort(touched_.begin(), touched_.end());
    IT cnt = 0;
    for (IT j : touched_) {
      std::size_t s = detail::hash_key(j, bits_);
      while (keys_[s] != j) s = (s + 1) & (capacity_ - 1);
      out_cols[cnt] = j;
      out_vals[cnt] = values_[s];
      ++cnt;
    }
    return cnt;
  }

  std::size_t touched_count() const { return touched_.size(); }
  std::size_t capacity() const { return capacity_; }

  // Releases the table entirely (plan workspace-reset hook).
  void clear() {
    keys_ = {};
    states_ = {};
    values_ = {};
    touched_ = {};
    capacity_ = 0;
    bits_ = 0;
  }

 private:
  std::vector<IT> keys_;
  std::vector<AccState> states_;
  std::vector<VT> values_;
  std::vector<IT> touched_;
  std::size_t capacity_ = 0;
  std::size_t bits_ = 0;
};

}  // namespace msx
