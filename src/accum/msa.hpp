// Masked Sparse Accumulator (MSA) — paper §5.2.
//
// Two dense arrays (`states`, `values`) of length ncols. The three-state
// automaton NOTALLOWED -> ALLOWED -> SET (Fig. 3) ensures products whose
// column is masked out are never materialized: `insert` takes the value as a
// lazy callable that is only evaluated when the key is ALLOWED or SET.
//
// Cost model (paper): init O(ncols) once per thread; per row
// O(nnz(m) + flops(uB)). The dense arrays give O(1) access but poor cache
// behaviour on large matrices — exactly the MSA-vs-Hash tradeoff the paper
// studies.
//
// Reset discipline: after processing a row, the masked variant restores
// NOTALLOWED by re-walking the mask row (gather does this); the arrays are
// never cleared wholesale after the initial allocation. The semiring "add"
// is passed per call so it inlines.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/platform.hpp"

namespace msx {

// Entry states shared by the MSA/Hash/MCA accumulators.
enum class AccState : std::uint8_t {
  kNotAllowed = 0,
  kAllowed = 1,
  kSet = 2,
};

// MSA for the non-complemented mask: only keys present in the mask row may
// hold values.
template <class IT, class VT>
class MSAMasked {
 public:
  // Ensures backing arrays cover `ncols` columns. Idempotent; newly grown
  // space starts NOTALLOWED.
  void init(IT ncols) {
    if (static_cast<std::size_t>(ncols) > states_.size()) {
      states_.resize(static_cast<std::size_t>(ncols), AccState::kNotAllowed);
      values_.resize(static_cast<std::size_t>(ncols));
    }
  }

  // Marks every key of the mask row ALLOWED.
  void prepare(std::span<const IT> mask_cols) {
    for (IT j : mask_cols) {
      MSX_ASSERT(static_cast<std::size_t>(j) < states_.size());
      states_[static_cast<std::size_t>(j)] = AccState::kAllowed;
    }
  }

  // Inserts key with a lazily-computed value; discarded unless the mask
  // allows the key. `add` is the semiring addition.
  template <class F, class Add>
  MSX_FORCE_INLINE void insert(IT key, F&& value_fn, Add&& add) {
    auto& st = states_[static_cast<std::size_t>(key)];
    if (st == AccState::kNotAllowed) return;
    auto& v = values_[static_cast<std::size_t>(key)];
    if (st == AccState::kSet) {
      v = add(v, value_fn());
    } else {
      st = AccState::kSet;
      v = value_fn();
    }
  }

  // Symbolic insert: returns 1 on the first ALLOWED -> SET transition.
  MSX_FORCE_INLINE IT insert_symbolic(IT key) {
    auto& st = states_[static_cast<std::size_t>(key)];
    if (st != AccState::kAllowed) return 0;
    st = AccState::kSet;
    return 1;
  }

  // Gathers SET values in mask order (keeps output sorted and stable, §5.2)
  // and resets all touched states to NOTALLOWED. Returns entries written.
  IT gather_and_reset(std::span<const IT> mask_cols, IT* out_cols,
                      VT* out_vals) {
    IT cnt = 0;
    for (IT j : mask_cols) {
      auto& st = states_[static_cast<std::size_t>(j)];
      if (st == AccState::kSet) {
        out_cols[cnt] = j;
        out_vals[cnt] = values_[static_cast<std::size_t>(j)];
        ++cnt;
      }
      st = AccState::kNotAllowed;
    }
    return cnt;
  }

  // Resets states after a symbolic pass (no output).
  void reset(std::span<const IT> mask_cols) {
    for (IT j : mask_cols) {
      states_[static_cast<std::size_t>(j)] = AccState::kNotAllowed;
    }
  }

  // Releases the backing arrays entirely (plan workspace-reset hook); the
  // next init() regrows them.
  void clear() {
    states_ = {};
    values_ = {};
  }

 private:
  std::vector<AccState> states_;
  std::vector<VT> values_;
};

// MSA for the complemented mask: every key is allowed by default, mask keys
// are disallowed, and a touched list records insertions so gathering does
// not scan the whole array (§5.2, complemented case; the technique goes back
// to Gustavson).
template <class IT, class VT>
class MSAComplement {
 public:
  void init(IT ncols) {
    if (static_cast<std::size_t>(ncols) > states_.size()) {
      states_.resize(static_cast<std::size_t>(ncols), AccState::kAllowed);
      values_.resize(static_cast<std::size_t>(ncols));
    }
  }

  // Disallows every key of the mask row.
  void prepare(std::span<const IT> mask_cols) {
    for (IT j : mask_cols) {
      states_[static_cast<std::size_t>(j)] = AccState::kNotAllowed;
    }
    touched_.clear();
  }

  template <class F, class Add>
  MSX_FORCE_INLINE void insert(IT key, F&& value_fn, Add&& add) {
    auto& st = states_[static_cast<std::size_t>(key)];
    if (st == AccState::kNotAllowed) return;
    auto& v = values_[static_cast<std::size_t>(key)];
    if (st == AccState::kSet) {
      v = add(v, value_fn());
    } else {
      st = AccState::kSet;
      v = value_fn();
      touched_.push_back(key);
    }
  }

  MSX_FORCE_INLINE IT insert_symbolic(IT key) {
    auto& st = states_[static_cast<std::size_t>(key)];
    if (st != AccState::kAllowed) return 0;
    st = AccState::kSet;
    touched_.push_back(key);
    return 1;
  }

  // Gathers inserted values sorted by column, then restores the default
  // ALLOWED state for both touched and mask entries.
  IT gather_and_reset(std::span<const IT> mask_cols, IT* out_cols,
                      VT* out_vals) {
    std::sort(touched_.begin(), touched_.end());
    IT cnt = 0;
    for (IT j : touched_) {
      out_cols[cnt] = j;
      out_vals[cnt] = values_[static_cast<std::size_t>(j)];
      states_[static_cast<std::size_t>(j)] = AccState::kAllowed;
      ++cnt;
    }
    for (IT j : mask_cols) {
      states_[static_cast<std::size_t>(j)] = AccState::kAllowed;
    }
    touched_.clear();
    return cnt;
  }

  void reset(std::span<const IT> mask_cols) {
    for (IT j : touched_) {
      states_[static_cast<std::size_t>(j)] = AccState::kAllowed;
    }
    for (IT j : mask_cols) {
      states_[static_cast<std::size_t>(j)] = AccState::kAllowed;
    }
    touched_.clear();
  }

  std::size_t touched_count() const { return touched_.size(); }

  // Releases the backing arrays entirely (plan workspace-reset hook).
  void clear() {
    states_ = {};
    values_ = {};
    touched_ = {};
  }

 private:
  std::vector<AccState> states_;
  std::vector<VT> values_;
  std::vector<IT> touched_;
};

}  // namespace msx
