// Flat binary min-heap of sparse-row iterators — the engine of the Heap
// algorithm (paper §5.5, after Buluç & Gilbert's column-column algorithm).
//
// The heap holds one iterator per nonzero of the A row, each pointing into a
// row of B; popping in column order streams the multiset
// S = { B(k,j) : u_k ≠ 0 } in sorted order without materializing it — the
// classic k-way merge (Knuth TAOCP v3).
#pragma once

#include <cstddef>
#include <vector>

#include "common/platform.hpp"

namespace msx {

// One merge cursor: the current column of B at position `bpos` of row `arow`
// (arow indexes into the A row's nonzeros so kernels can fetch A's value).
template <class IT>
struct MergeCursor {
  IT col;   // current column id = B.colidx[bpos]
  IT bpos;  // current position in B's colidx/values arrays
  IT bend;  // one-past-end position of the B row
  IT arow;  // index of the originating nonzero within the A row
};

template <class IT>
class KMergeHeap {
 public:
  void clear() { heap_.clear(); }
  // Releases the heap storage entirely (plan workspace-reset hook); clear()
  // keeps capacity for the next row, release() drops it.
  void release() { heap_ = {}; }
  void reserve(std::size_t n) { heap_.reserve(n); }
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  const MergeCursor<IT>& top() const {
    MSX_ASSERT(!heap_.empty());
    return heap_.front();
  }

  void push(const MergeCursor<IT>& c) {
    heap_.push_back(c);
    sift_up(heap_.size() - 1);
  }

  void pop() {
    MSX_ASSERT(!heap_.empty());
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }

  // pop+push fused: replaces the minimum and restores the heap property with
  // a single sift-down.
  void replace_top(const MergeCursor<IT>& c) {
    MSX_ASSERT(!heap_.empty());
    heap_.front() = c;
    sift_down(0);
  }

 private:
  // Column ties break on the originating A-row position so equal-column
  // products always pop in ascending k. That pins the floating-point
  // accumulation order to a function of the contributing k set alone, which
  // keeps heap results bit-identical when B is column-sliced into panels
  // (the distributed 2D path merges panel outputs by direct concatenation).
  static bool less(const MergeCursor<IT>& a, const MergeCursor<IT>& b) {
    if (a.col != b.col) return a.col < b.col;
    return a.arow < b.arow;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!less(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t l = 2 * i + 1;
      const std::size_t r = l + 1;
      std::size_t m = i;
      if (l < n && less(heap_[l], heap_[m])) m = l;
      if (r < n && less(heap_[r], heap_[m])) m = r;
      if (m == i) return;
      std::swap(heap_[i], heap_[m]);
      i = m;
    }
  }

  std::vector<MergeCursor<IT>> heap_;
};

}  // namespace msx
