// Unified metrics plane (ISSUE 9 tentpole): named counters, gauges and
// log-bucket latency histograms behind one registry + snapshot API,
// rendered as Prometheus text exposition. The registry subsumes the
// ad-hoc stats structs (ServiceStats / BatchStats / PlanCacheStats stay
// as typed views; their owners publish into a registry before rendering)
// and is served over the wire by the kMetricsRequest op.
//
// Concurrency: instrument handles (Counter*/Gauge*/Histogram*) are
// resolved once under the registry mutex (LockRank::kObsRegistry, the
// highest rank — safe to acquire while holding anything) and are then
// plain atomics: add/set/observe are lock-free and safe from any thread.
// Entries are never removed, so handles stay valid for the registry's
// lifetime.
//
// MSX_METRICS=0 turns histogram observation into a no-op (counters and
// gauges are single relaxed atomics and stay on — they back the stats
// structs that existed before this subsystem).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"

namespace msx::obs {

bool metrics_enabled();
void set_metrics_enabled(bool on);

// --- instruments ----------------------------------------------------------

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  // Snapshot-style publish: counters mirrored from an existing stats struct
  // are set to the struct's value rather than incremented.
  void set(std::uint64_t n) { v_.store(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Log2-bucket latency histogram. observe_ns(v) lands in bucket
// bit_width(v) (bucket b covers [2^(b-1), 2^b - 1] ns; bucket 0 holds
// zeros), so the full uint64 nanosecond range fits in 65 fixed buckets
// and observation is two relaxed fetch_adds plus a bit_width. Quantiles
// report the upper bound of the bucket containing the requested rank —
// within 2x of the true value, which is the resolution log buckets buy.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void observe_ns(std::uint64_t nanos) {
    if (!metrics_enabled()) return;
    buckets_[std::bit_width(nanos)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(nanos, std::memory_order_relaxed);
  }
  void observe_seconds(double seconds) {
    if (seconds < 0) seconds = 0;
    observe_ns(static_cast<std::uint64_t>(seconds * 1e9));
  }

  std::uint64_t count() const;
  double sum_seconds() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) / 1e9;
  }
  // Upper bound (seconds) of the bucket holding rank ceil(q * count);
  // 0 when empty. q in [0, 1].
  double quantile(double q) const;
  // Inclusive upper bound of bucket b in nanoseconds (2^b - 1).
  static std::uint64_t bucket_upper_ns(std::size_t b) {
    return b >= 64 ? ~0ull : (1ull << b) - 1;
  }
  std::uint64_t bucket_count(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_ns_{0};
};

// --- registry -------------------------------------------------------------

// Keyed by (name, labels) where labels is a pre-formatted Prometheus label
// body, e.g. `shard="s0"` (no braces). Lookup interns the entry on first
// use and returns a stable handle.
class Registry {
 public:
  Counter* counter(const std::string& name, const std::string& labels = "");
  Gauge* gauge(const std::string& name, const std::string& labels = "");
  Histogram* histogram(const std::string& name,
                       const std::string& labels = "");

  // nullptr when the instrument was never created (benches probe this
  // after a run; tests assert absence in disabled mode).
  const Histogram* find_histogram(const std::string& name,
                                  const std::string& labels = "") const;

  // Prometheus text exposition. `extra_labels` (same format as `labels`)
  // is merged into every sample — how a shard stamps `shard="name"` onto
  // its executor's registry without coordinating at observe time.
  // Histograms render as summaries: {quantile="0.5|0.95|0.99"} samples
  // plus _sum and _count.
  std::string render(const std::string& extra_labels = "") const;

  // Process-wide registry (client-side request metrics, standalone
  // executors). Server components own private registries so in-process
  // shard fleets do not collide.
  static Registry& global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string labels;
    Kind kind;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };

  Entry* find_or_create(const std::string& name, const std::string& labels,
                        Kind kind);

  mutable Mutex mu_{LockRank::kObsRegistry, "obs::Registry::mu_"};
  // Insertion-ordered so rendered output is stable; linear lookup is fine
  // at the tens-of-instruments scale (handles are cached by callers).
  std::vector<std::unique_ptr<Entry>> entries_ MSX_GUARDED_BY(mu_);
};

}  // namespace msx::obs
