#include "obs/metrics.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/env.hpp"

namespace msx::obs {

namespace {

std::atomic<bool> g_metrics_enabled{env_int("MSX_METRICS", 1) != 0};

std::string merge_labels(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return a + "," + b;
}

void append_sample(std::string& out, const std::string& name,
                   const std::string& labels, double value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, " %.9g\n", value);
  out += buf;
}

void append_sample(std::string& out, const std::string& name,
                   const std::string& labels, std::uint64_t value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, " %" PRIu64 "\n", value);
  out += buf;
}

}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

// --- Histogram ------------------------------------------------------------

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::quantile(double q) const {
  std::array<std::uint64_t, kBuckets> snap;
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    snap[b] = buckets_[b].load(std::memory_order_relaxed);
    total += snap[b];
  }
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     std::ceil(q * static_cast<double>(total))));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cum += snap[b];
    if (cum >= rank) {
      return static_cast<double>(bucket_upper_ns(b)) / 1e9;
    }
  }
  return static_cast<double>(bucket_upper_ns(kBuckets - 1)) / 1e9;
}

// --- Registry -------------------------------------------------------------

Registry::Entry* Registry::find_or_create(const std::string& name,
                                          const std::string& labels,
                                          Kind kind) {
  MutexLock lock(&mu_);
  for (const auto& e : entries_) {
    if (e->name == name && e->labels == labels && e->kind == kind) {
      return e.get();
    }
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->labels = labels;
  e->kind = kind;
  switch (kind) {
    case Kind::kCounter: e->c = std::make_unique<Counter>(); break;
    case Kind::kGauge: e->g = std::make_unique<Gauge>(); break;
    case Kind::kHistogram: e->h = std::make_unique<Histogram>(); break;
  }
  entries_.push_back(std::move(e));
  return entries_.back().get();
}

Counter* Registry::counter(const std::string& name,
                           const std::string& labels) {
  return find_or_create(name, labels, Kind::kCounter)->c.get();
}

Gauge* Registry::gauge(const std::string& name, const std::string& labels) {
  return find_or_create(name, labels, Kind::kGauge)->g.get();
}

Histogram* Registry::histogram(const std::string& name,
                               const std::string& labels) {
  return find_or_create(name, labels, Kind::kHistogram)->h.get();
}

const Histogram* Registry::find_histogram(const std::string& name,
                                          const std::string& labels) const {
  MutexLock lock(&mu_);
  for (const auto& e : entries_) {
    if (e->name == name && e->labels == labels &&
        e->kind == Kind::kHistogram) {
      return e->h.get();
    }
  }
  return nullptr;
}

std::string Registry::render(const std::string& extra_labels) const {
  MutexLock lock(&mu_);
  std::string out;
  std::vector<std::string> typed;  // names with an emitted # TYPE line
  const auto emit_type = [&](const std::string& name, const char* type) {
    for (const auto& t : typed) {
      if (t == name) return;
    }
    typed.push_back(name);
    out += "# TYPE " + name + " " + type + "\n";
  };
  for (const auto& e : entries_) {
    const std::string labels = merge_labels(e->labels, extra_labels);
    switch (e->kind) {
      case Kind::kCounter:
        emit_type(e->name, "counter");
        append_sample(out, e->name, labels, e->c->value());
        break;
      case Kind::kGauge:
        emit_type(e->name, "gauge");
        append_sample(out, e->name, labels, e->g->value());
        break;
      case Kind::kHistogram: {
        emit_type(e->name, "summary");
        const Histogram& h = *e->h;
        append_sample(out, e->name,
                      merge_labels(labels, "quantile=\"0.5\""),
                      h.quantile(0.5));
        append_sample(out, e->name,
                      merge_labels(labels, "quantile=\"0.95\""),
                      h.quantile(0.95));
        append_sample(out, e->name,
                      merge_labels(labels, "quantile=\"0.99\""),
                      h.quantile(0.99));
        append_sample(out, e->name + "_sum", labels, h.sum_seconds());
        append_sample(out, e->name + "_count", labels, h.count());
        break;
      }
    }
  }
  return out;
}

Registry& Registry::global() {
  static Registry* reg = new Registry();  // immortal (shutdown-safe)
  return *reg;
}

}  // namespace msx::obs
