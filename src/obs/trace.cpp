#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <memory>
#include <random>

#include "common/env.hpp"

namespace msx::obs {

namespace {

// splitmix64 — cheap, well-mixed; good enough for trace-id uniqueness.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t process_seed() {
  static const std::uint64_t seed = [] {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }();
  return seed;
}

std::atomic<bool> g_trace_enabled{env_int("MSX_TRACE", 0) != 0};
std::atomic<std::uint64_t> g_slow_ns{
    static_cast<std::uint64_t>(env_int("MSX_TRACE_SLOW_MS", 0)) * 1000000ull};
std::atomic<std::uint64_t> g_id_counter{1};
std::atomic<std::uint64_t> g_span_counter{1};

// --- per-thread rings -----------------------------------------------------

struct SpanRing {
  SpanRing(std::size_t cap, std::uint32_t tid_ord)
      : slots(cap), tid(tid_ord) {}

  std::vector<SpanRecord> slots;
  // Total records ever written. The owning thread is the only writer: it
  // fills slots[head % cap] and then publishes with a release store, so a
  // collector's acquire load sees fully written slots below head.
  std::atomic<std::uint64_t> head{0};
  std::uint32_t tid;

  void push(const SpanRecord& r) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    slots[h % slots.size()] = r;
    head.store(h + 1, std::memory_order_release);
  }
};

struct RingRegistry {
  Mutex mu{LockRank::kObsRegistry, "obs::RingRegistry::mu"};
  std::vector<std::unique_ptr<SpanRing>> rings MSX_GUARDED_BY(mu);

  SpanRing* create() {
    const auto cap = static_cast<std::size_t>(
        std::max<long long>(64, env_int("MSX_TRACE_RING", 4096)));
    MutexLock lock(&mu);
    rings.push_back(std::make_unique<SpanRing>(
        cap, static_cast<std::uint32_t>(rings.size())));
    return rings.back().get();
  }
};

RingRegistry& ring_registry() {
  static RingRegistry* reg = new RingRegistry();  // immortal: threads may
  return *reg;                                    // record during shutdown
}

SpanRing& thread_ring() {
  thread_local SpanRing* ring = ring_registry().create();
  return *ring;
}

thread_local TraceContext t_trace_ctx;

}  // namespace

// --- identity -------------------------------------------------------------

TraceId mint_trace_id() {
  const std::uint64_t n =
      g_id_counter.fetch_add(1, std::memory_order_relaxed);
  TraceId id;
  id.hi = splitmix64(process_seed() ^ n);
  id.lo = splitmix64(process_seed() + (n << 1) + 1);
  if (!id.valid()) id.lo = 1;
  return id;
}

std::uint64_t next_span_id() {
  return g_span_counter.fetch_add(1, std::memory_order_relaxed);
}

std::string trace_hex(const TraceId& id) {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016" PRIx64 "%016" PRIx64, id.hi, id.lo);
  return buf;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// --- knobs ----------------------------------------------------------------

bool trace_enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t slow_threshold_ns() {
  return g_slow_ns.load(std::memory_order_relaxed);
}

void set_slow_threshold_ns(std::uint64_t ns) {
  g_slow_ns.store(ns, std::memory_order_relaxed);
}

// --- context + recording --------------------------------------------------

TraceContext current_trace() { return t_trace_ctx; }

void set_current_trace(const TraceContext& ctx) { t_trace_ctx = ctx; }

void record_span(const char* name, const TraceId& trace,
                 std::uint64_t span_id, std::uint64_t parent_id,
                 std::uint64_t start_ns, std::uint64_t dur_ns,
                 const char* component) {
  if (!trace_enabled()) return;
  SpanRing& ring = thread_ring();
  SpanRecord r;
  r.trace = trace;
  r.span_id = span_id;
  r.parent_id = parent_id;
  r.name = name != nullptr ? name : "";
  if (component != nullptr) {
    std::strncpy(r.component, component, kComponentBytes - 1);
  }
  r.start_ns = start_ns;
  r.dur_ns = dur_ns;
  r.tid = ring.tid;
  ring.push(r);
}

void ScopedSpan::begin(const char* name) {
  ctx_ = current_trace();
  name_ = name;
  span_id_ = next_span_id();
  start_ns_ = now_ns();
  set_current_trace({ctx_.id, span_id_, ctx_.component});
  active_ = true;
}

void ScopedSpan::end() {
  set_current_trace(ctx_);
  record_span(name_, ctx_.id, span_id_, ctx_.parent_span, start_ns_,
              now_ns() - start_ns_, ctx_.component);
  active_ = false;
}

// --- collection -----------------------------------------------------------

std::vector<SpanRecord> collect_spans() {
  std::vector<SpanRecord> out;
  RingRegistry& reg = ring_registry();
  MutexLock lock(&reg.mu);
  for (const auto& ring : reg.rings) {
    const std::uint64_t h = ring->head.load(std::memory_order_acquire);
    const std::uint64_t cap = ring->slots.size();
    const std::uint64_t n = h < cap ? h : cap;
    for (std::uint64_t i = h - n; i < h; ++i) {
      out.push_back(ring->slots[i % cap]);
    }
  }
  return out;
}

void clear_spans() {
  RingRegistry& reg = ring_registry();
  MutexLock lock(&reg.mu);
  for (const auto& ring : reg.rings) {
    ring->head.store(0, std::memory_order_release);
  }
}

// --- export ---------------------------------------------------------------

namespace {

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

std::string chrome_trace_json(const std::vector<SpanRecord>& spans) {
  // One Chrome "process" per component so Perfetto groups client, each
  // shard, and the executor threads into labelled tracks.
  std::map<std::string, int> pids;
  for (const auto& s : spans) {
    const std::string comp = s.component[0] != '\0' ? s.component : "msx";
    pids.emplace(comp, static_cast<int>(pids.size()) + 1);
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [comp, pid] : pids) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"";
    append_json_escaped(out, comp.c_str());
    out += "\"}}";
  }
  char buf[160];
  for (const auto& s : spans) {
    const std::string comp = s.component[0] != '\0' ? s.component : "msx";
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, s.name);
    out += "\",\"cat\":\"msx\",\"ph\":\"X\"";
    std::snprintf(buf, sizeof buf,
                  ",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%u",
                  static_cast<double>(s.start_ns) / 1e3,
                  static_cast<double>(s.dur_ns) / 1e3, pids[comp], s.tid);
    out += buf;
    out += ",\"args\":{\"trace_id\":\"" + trace_hex(s.trace) +
           "\",\"span_id\":" + std::to_string(s.span_id) +
           ",\"parent_id\":" + std::to_string(s.parent_id) + "}}";
  }
  out += "]}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string json = chrome_trace_json(collect_spans());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write trace: %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

// --- slow-request log -----------------------------------------------------

namespace {

void log_tree(const std::vector<SpanRecord>& spans, std::uint64_t parent,
              int depth, std::uint64_t t0) {
  for (const auto& s : spans) {
    if (s.parent_id != parent) continue;
    std::fprintf(stderr, "  %*s%-18s %10.3fms @ +%.3fms [%s] tid=%u\n",
                 depth * 2, "", s.name,
                 static_cast<double>(s.dur_ns) / 1e6,
                 static_cast<double>(s.start_ns - t0) / 1e6,
                 s.component[0] != '\0' ? s.component : "msx", s.tid);
    log_tree(spans, s.span_id, depth + 1, t0);
  }
}

}  // namespace

void maybe_log_slow(const TraceId& trace, std::uint64_t total_ns) {
  const std::uint64_t threshold = slow_threshold_ns();
  if (threshold == 0 || total_ns < threshold || !trace.valid()) return;
  std::vector<SpanRecord> mine;
  for (const auto& s : collect_spans()) {
    if (s.trace == trace) mine.push_back(s);
  }
  std::sort(mine.begin(), mine.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns < b.start_ns;
            });
  std::uint64_t t0 = mine.empty() ? 0 : mine.front().start_ns;
  std::fprintf(stderr,
               "obs: SLOW REQUEST trace=%s total=%.3fms (%zu spans)\n",
               trace_hex(trace).c_str(),
               static_cast<double>(total_ns) / 1e6, mine.size());
  // Roots are spans whose parent is not among the collected spans (their
  // parent may live in a ring that already wrapped).
  std::vector<char> has_parent(mine.size(), 0);
  for (std::size_t i = 0; i < mine.size(); ++i) {
    for (const auto& s : mine) {
      if (s.span_id == mine[i].parent_id) {
        has_parent[i] = 1;
        break;
      }
    }
  }
  for (std::size_t i = 0; i < mine.size(); ++i) {
    if (has_parent[i]) continue;
    const auto& root = mine[i];
    std::fprintf(stderr, "  %-18s %10.3fms @ +%.3fms [%s] tid=%u\n",
                 root.name, static_cast<double>(root.dur_ns) / 1e6,
                 static_cast<double>(root.start_ns - t0) / 1e6,
                 root.component[0] != '\0' ? root.component : "msx",
                 root.tid);
    log_tree(mine, root.span_id, 1, t0);
  }
}

}  // namespace msx::obs
