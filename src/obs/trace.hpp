// Request-scoped tracing (ISSUE 9 tentpole).
//
// A 128-bit trace id is minted at Session::submit, carried through wire
// frames (wire v5 trace-context field) and the executor's JobOptions, and
// every hop records spans: client dispatch, per-shard send/receive,
// executor queue wait vs. run, the symbolic/numeric/compact phases inside
// phase_driver, delta apply, and the 2D scatter/panel/merge path. One
// forced 2D product therefore yields a single merged timeline across the
// client and every shard it touched.
//
// Span storage is a lock-free per-thread ring buffer: the recording thread
// is the only writer; it fills a slot and then publishes the new head with
// a release store. Collectors (export, slow-request log) read the head
// with an acquire load and walk the published slots. Rings are registered
// in a global registry guarded by an msx::Mutex at LockRank::kObsRegistry —
// the highest rank, so a thread may record its first span (and register
// its ring) while holding any other lock in the system. A writer that laps
// a concurrent collector can tear the oldest slots; collectors are
// expected to run at quiescent points (after drain()/join), which every
// in-tree caller does.
//
// Everything is gated on the MSX_TRACE env knob (default off) or
// set_trace_enabled(); disabled, ScopedSpan is a relaxed load and a
// branch — the CI overhead gate holds micro_batch_throughput with
// MSX_TRACE=0 within 1% of baseline.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"

namespace msx::obs {

// --- trace identity -------------------------------------------------------

struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  bool valid() const { return (hi | lo) != 0; }
  friend bool operator==(const TraceId& a, const TraceId& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

// Fresh 128-bit id: process-random seed mixed with a monotone counter, so
// ids are unique within a process and collide across processes with
// splitmix-quality probability.
TraceId mint_trace_id();

// Fresh non-zero span id (process-wide counter).
std::uint64_t next_span_id();

// 32-hex-char rendering for logs and Chrome trace args.
std::string trace_hex(const TraceId& id);

// Monotonic clock, nanoseconds. All spans share this one domain (shards
// run in-process), so timelines merge without clock alignment.
std::uint64_t now_ns();

// --- enable knobs ---------------------------------------------------------

// MSX_TRACE=1 enables span recording (default off). Runtime-toggleable:
// set_trace_enabled() overrides the env knob (tests, --trace modes).
bool trace_enabled();
void set_trace_enabled(bool on);

// Slow-request threshold in nanoseconds; 0 disables the log. Env knob
// MSX_TRACE_SLOW_MS (milliseconds), default 0.
std::uint64_t slow_threshold_ns();
void set_slow_threshold_ns(std::uint64_t ns);

// --- span records ---------------------------------------------------------

inline constexpr std::size_t kComponentBytes = 24;

struct SpanRecord {
  TraceId trace;             // zero id = component-local span (still shown)
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  const char* name = "";        // static-storage string literal
  char component[kComponentBytes] = {0};  // copied; "" = process scope
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  // small per-thread ordinal, stable per ring
};

// The ambient trace of the current thread: what ScopedSpan parents itself
// under and what phase_driver picks up without signature plumbing. The
// executor sets it from JobOptions before running a job.
struct TraceContext {
  TraceId id;
  std::uint64_t parent_span = 0;
  const char* component = "";  // stable for the span's lifetime
};

TraceContext current_trace();
void set_current_trace(const TraceContext& ctx);

// Saves/restores the ambient context (RAII).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx)
      : saved_(current_trace()) {
    set_current_trace(ctx);
  }
  ~ScopedTraceContext() { set_current_trace(saved_); }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

// Appends one finished span to the calling thread's ring (no-op when
// tracing is disabled). `component` may be nullptr/"" for process scope.
void record_span(const char* name, const TraceId& trace,
                 std::uint64_t span_id, std::uint64_t parent_id,
                 std::uint64_t start_ns, std::uint64_t dur_ns,
                 const char* component = nullptr);

// RAII span under the ambient context: mints a span id, becomes the parent
// of nested spans on this thread, records itself on destruction. Inactive
// (one relaxed load, one branch) when tracing is disabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (!trace_enabled()) return;
    begin(name);
  }
  ~ScopedSpan() {
    if (active_) end();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }
  std::uint64_t span_id() const { return span_id_; }

 private:
  void begin(const char* name);
  void end();

  bool active_ = false;
  const char* name_ = "";
  TraceContext ctx_;          // context as of begin (restored parent)
  std::uint64_t span_id_ = 0;
  std::uint64_t start_ns_ = 0;
};

// --- collection & export --------------------------------------------------

// Snapshot of every thread's published spans (call at a quiescent point;
// see the file comment). Order is per-thread record order.
std::vector<SpanRecord> collect_spans();

// Drops all published spans (tests and --trace runs that want a clean
// capture window).
void clear_spans();

// Chrome trace-event JSON ("traceEvents" array of ph:"X" slices, one pid
// per component with process_name metadata) — loads in Perfetto / about:
// tracing as a single merged timeline.
std::string chrome_trace_json(const std::vector<SpanRecord>& spans);

// collect_spans() + chrome_trace_json() to a file. False on I/O failure.
bool write_chrome_trace(const std::string& path);

// Dumps the span tree of `trace` to stderr (indented by parent/child) when
// total_ns exceeds the slow threshold; no-op otherwise. Called where total
// request latency is known (Session completion).
void maybe_log_slow(const TraceId& trace, std::uint64_t total_ns);

}  // namespace msx::obs
