// GraphBLAS-style semiring definitions.
//
// A semiring supplies the "multiply" applied to A·B element pairs and the
// "add" that the accumulator uses to merge products for the same output
// column. The paper states its algorithms on the arithmetic semiring for
// clarity (§2); applications use others: triangle counting and k-truss use
// plus-pair (the product of two present entries counts 1), betweenness
// centrality uses plus-times over floats.
#pragma once

#include <algorithm>
#include <concepts>
#include <limits>

namespace msx {

// Compile-time interface every semiring satisfies:
//   value_type zero()                   — additive identity
//   value_type add(value_type, value_type)
//   value_type mul(value_type, value_type)
template <class SR>
concept Semiring = requires(typename SR::value_type a,
                            typename SR::value_type b) {
  { SR::zero() } -> std::convertible_to<typename SR::value_type>;
  { SR::add(a, b) } -> std::convertible_to<typename SR::value_type>;
  { SR::mul(a, b) } -> std::convertible_to<typename SR::value_type>;
};

// Standard arithmetic (+, ×).
template <class VT>
struct PlusTimes {
  using value_type = VT;
  static constexpr VT zero() { return VT{}; }
  static constexpr VT add(VT a, VT b) { return a + b; }
  static constexpr VT mul(VT a, VT b) { return a * b; }
};

// (+, pair): multiply yields 1 whenever both operands are present.
// The workhorse of triangle counting / k-truss support counting.
template <class VT>
struct PlusPair {
  using value_type = VT;
  static constexpr VT zero() { return VT{}; }
  static constexpr VT add(VT a, VT b) { return a + b; }
  static constexpr VT mul(VT, VT) { return VT{1}; }
};

// (+, first): multiply returns the left operand (value of A).
template <class VT>
struct PlusFirst {
  using value_type = VT;
  static constexpr VT zero() { return VT{}; }
  static constexpr VT add(VT a, VT b) { return a + b; }
  static constexpr VT mul(VT a, VT) { return a; }
};

// (+, second): multiply returns the right operand (value of B).
template <class VT>
struct PlusSecond {
  using value_type = VT;
  static constexpr VT zero() { return VT{}; }
  static constexpr VT add(VT a, VT b) { return a + b; }
  static constexpr VT mul(VT, VT b) { return b; }
};

// (min, first): multiply returns the left operand, add keeps the minimum —
// label propagation (connected components) and min-parent selection.
template <class VT>
struct MinFirst {
  using value_type = VT;
  static constexpr VT zero() { return std::numeric_limits<VT>::max(); }
  static constexpr VT add(VT a, VT b) { return a < b ? a : b; }
  static constexpr VT mul(VT a, VT) { return a; }
};

// Tropical (min, +) semiring — shortest-path relaxations.
template <class VT>
struct MinPlus {
  using value_type = VT;
  static constexpr VT zero() { return std::numeric_limits<VT>::max(); }
  static constexpr VT add(VT a, VT b) { return a < b ? a : b; }
  static constexpr VT mul(VT a, VT b) {
    // Saturating add so zero() stays absorbing.
    if (a == zero() || b == zero()) return zero();
    return a + b;
  }
};

// Boolean (or, and) semiring — reachability.
struct OrAnd {
  using value_type = bool;
  static constexpr bool zero() { return false; }
  static constexpr bool add(bool a, bool b) { return a || b; }
  static constexpr bool mul(bool a, bool b) { return a && b; }
};

static_assert(Semiring<PlusTimes<double>>);
static_assert(Semiring<PlusPair<int>>);
static_assert(Semiring<PlusFirst<double>>);
static_assert(Semiring<PlusSecond<double>>);
static_assert(Semiring<MinFirst<int>>);
static_assert(Semiring<MinPlus<double>>);
static_assert(Semiring<OrAnd>);

}  // namespace msx
