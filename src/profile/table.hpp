// Fixed-width table printer for benchmark output.
#pragma once

#include <string>
#include <vector>

namespace msx {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Formats numbers compactly (helper for callers).
  static std::string num(double v, int precision = 3);

  // Prints with aligned columns to stdout.
  void print() const;

  // Prints as CSV to stdout.
  void print_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace msx
