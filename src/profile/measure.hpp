// Measurement loops for the benchmark harness.
#pragma once

#include <functional>

#include "common/stats.hpp"

namespace msx {

struct MeasureConfig {
  int warmup = 1;   // untimed runs before measurement
  int reps = 3;     // timed repetitions
  double min_seconds = 0.0;  // keep repeating until this much time measured
};

// Runs fn `warmup` times untimed, then `reps` times timed (at least
// min_seconds of total measured time) and returns per-rep statistics.
// The paper reports parallel runtime; we report the minimum over reps as the
// headline number (least noise) with mean/stddev retained.
SampleStats measure(const std::function<void()>& fn,
                    const MeasureConfig& cfg = {});

// Headline metric used across benches: minimum of the measured samples.
double best_seconds(const SampleStats& s);

}  // namespace msx
