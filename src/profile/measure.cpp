#include "profile/measure.hpp"

#include <vector>

#include "common/timer.hpp"

namespace msx {

SampleStats measure(const std::function<void()>& fn, const MeasureConfig& cfg) {
  for (int i = 0; i < cfg.warmup; ++i) fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(cfg.reps));
  double total = 0.0;
  int done = 0;
  while (done < cfg.reps || total < cfg.min_seconds) {
    WallTimer t;
    fn();
    const double s = t.seconds();
    samples.push_back(s);
    total += s;
    ++done;
    if (done >= cfg.reps && cfg.min_seconds <= 0.0) break;
    if (done >= 1000) break;  // hard cap against pathological configs
  }
  return summarize(std::move(samples));
}

double best_seconds(const SampleStats& s) { return s.min; }

}  // namespace msx
