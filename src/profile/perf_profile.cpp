#include "profile/perf_profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace msx {

namespace {

bool valid_time(double t) { return std::isfinite(t) && t > 0.0; }

}  // namespace

std::vector<ProfileSeries> performance_profiles(const ProfileInput& in,
                                                double x_max) {
  const std::size_t ns = in.schemes.size();
  const std::size_t nc = in.cases.size();

  // Per-case best over schemes that ran.
  std::vector<double> best(nc, std::numeric_limits<double>::infinity());
  for (std::size_t c = 0; c < nc; ++c) {
    for (std::size_t s = 0; s < ns; ++s) {
      const double t = in.seconds[s][c];
      if (valid_time(t)) best[c] = std::min(best[c], t);
    }
  }

  std::vector<ProfileSeries> out;
  out.reserve(ns);
  for (std::size_t s = 0; s < ns; ++s) {
    // Collect this scheme's ratios; sort them to get the step function.
    std::vector<double> ratios;
    for (std::size_t c = 0; c < nc; ++c) {
      const double t = in.seconds[s][c];
      if (!valid_time(t) || !std::isfinite(best[c])) continue;
      const double r = t / best[c];
      if (r <= x_max) ratios.push_back(r);
    }
    std::sort(ratios.begin(), ratios.end());

    ProfileSeries series;
    series.scheme = in.schemes[s];
    const double denom = nc > 0 ? static_cast<double>(nc) : 1.0;
    for (std::size_t k = 0; k < ratios.size(); ++k) {
      series.x.push_back(ratios[k]);
      series.y.push_back(static_cast<double>(k + 1) / denom);
    }
    out.push_back(std::move(series));
  }
  return out;
}

void print_profiles_csv(const std::vector<ProfileSeries>& series) {
  std::printf("scheme,x,y\n");
  for (const auto& s : series) {
    for (std::size_t k = 0; k < s.x.size(); ++k) {
      std::printf("%s,%.4f,%.4f\n", s.scheme.c_str(), s.x[k], s.y[k]);
    }
  }
}

double win_fraction(const ProfileSeries& s) {
  double y = 0.0;
  for (std::size_t k = 0; k < s.x.size(); ++k) {
    if (s.x[k] <= 1.0 + 1e-12) y = s.y[k];
  }
  return y;
}

void print_profiles_ascii(const std::vector<ProfileSeries>& series,
                          double x_max, int width, int height) {
  if (series.empty() || width < 10 || height < 4) return;
  // Sample each series on a uniform x grid (step function: y at largest
  // recorded x <= grid point).
  static const char kGlyphs[] = "#*+ox%@&=~^$!?";
  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t s = 0; s < series.size(); ++s) {
    const char glyph = kGlyphs[s % (sizeof(kGlyphs) - 1)];
    for (int px = 0; px < width; ++px) {
      const double x =
          1.0 + (x_max - 1.0) * static_cast<double>(px) / (width - 1);
      double y = 0.0;
      for (std::size_t k = 0; k < series[s].x.size(); ++k) {
        if (series[s].x[k] <= x) y = series[s].y[k];
      }
      const int py = static_cast<int>(std::lround((1.0 - y) * (height - 1)));
      canvas[static_cast<std::size_t>(py)][static_cast<std::size_t>(px)] = glyph;
    }
  }
  std::printf("  y=1.0 ");
  for (int i = 0; i < width; ++i) std::printf("-");
  std::printf("\n");
  for (int r = 0; r < height; ++r) {
    std::printf("        |%s\n", canvas[static_cast<std::size_t>(r)].c_str());
  }
  std::printf("  y=0.0 ");
  for (int i = 0; i < width; ++i) std::printf("-");
  std::printf("\n         x=1.0%*s x=%.1f\n", width - 12, "", x_max);
  for (std::size_t s = 0; s < series.size(); ++s) {
    std::printf("    %c = %s (wins %.0f%%)\n", kGlyphs[s % (sizeof(kGlyphs) - 1)],
                series[s].scheme.c_str(), 100.0 * win_fraction(series[s]));
  }
}

}  // namespace msx
