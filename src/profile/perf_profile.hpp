// Dolan–Moré performance profiles (the paper's headline comparison plots,
// Figs. 8, 9, 12, 13, 16).
//
// Given runtimes t[s][c] for scheme s on case c, the profile of scheme s is
// the fraction of cases where t[s][c] <= x * min_s' t[s'][c], plotted over
// the ratio x >= 1. A scheme whose curve hugs the y-axis is best: at x = 1
// its value is the fraction of cases it outright wins.
#pragma once

#include <string>
#include <vector>

namespace msx {

struct ProfileInput {
  std::vector<std::string> schemes;         // row labels
  std::vector<std::string> cases;           // column labels
  // seconds[s][c]; NaN or <= 0 marks "did not run / not supported".
  std::vector<std::vector<double>> seconds;
};

struct ProfileSeries {
  std::string scheme;
  std::vector<double> x;  // runtime ratio relative to per-case best
  std::vector<double> y;  // fraction of cases within that ratio
};

// Computes one series per scheme. Ratios are capped at `x_max` (cases worse
// than x_max, or that did not run, never contribute).
std::vector<ProfileSeries> performance_profiles(const ProfileInput& in,
                                                double x_max = 3.0);

// Emits the series as CSV rows: scheme,x,y
void print_profiles_csv(const std::vector<ProfileSeries>& series);

// Renders a coarse ASCII plot (x on [1, x_max], y on [0, 1]) for quick
// terminal inspection.
void print_profiles_ascii(const std::vector<ProfileSeries>& series,
                          double x_max = 3.0, int width = 60, int height = 16);

// Convenience: fraction of cases the scheme wins outright (y at x = 1).
double win_fraction(const ProfileSeries& s);

}  // namespace msx
