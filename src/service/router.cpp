#include "service/router.hpp"

#include <algorithm>

#include "common/platform.hpp"

namespace msx::service {

namespace {

// Seed for the ring's vnode points — any fixed constant works, it only has
// to be the same in every process that builds the ring.
constexpr std::uint64_t kRingSeed = 0x72696e672d763031ull;  // "ring-v01"

}  // namespace

std::optional<ServiceStats> probe_endpoint(const ShardEndpoint& endpoint) {
  try {
    auto stream = endpoint.connect();
    if (stream == nullptr) return std::nullopt;
    GatherPayload empty;
    send_frame_parts(*stream, MessageType::kStatsRequest, 0, empty);
    FrameHeader header;
    std::vector<std::uint8_t> reply;
    if (!recv_frame(*stream, header, reply) ||
        header.type != MessageType::kStatsResponse) {
      return std::nullopt;
    }
    return decode_stats(reply);
  } catch (const TransportError&) {
    return std::nullopt;
  } catch (const WireError&) {
    return std::nullopt;
  }
}

std::optional<std::string> probe_metrics(const ShardEndpoint& endpoint) {
  try {
    auto stream = endpoint.connect();
    if (stream == nullptr) return std::nullopt;
    GatherPayload empty;
    send_frame_parts(*stream, MessageType::kMetricsRequest, 0, empty);
    FrameHeader header;
    std::vector<std::uint8_t> reply;
    if (!recv_frame(*stream, header, reply) ||
        header.type != MessageType::kMetricsResponse) {
      return std::nullopt;
    }
    return decode_metrics_text(reply);
  } catch (const TransportError&) {
    return std::nullopt;
  } catch (const WireError&) {
    return std::nullopt;
  }
}

ConsistentHashRing::ConsistentHashRing(std::size_t nshards, int vnodes)
    : nshards_(nshards) {
  check_arg(vnodes > 0, "ConsistentHashRing: vnodes must be positive");
  ring_.reserve(nshards * static_cast<std::size_t>(vnodes));
  for (std::size_t s = 0; s < nshards; ++s) {
    for (int v = 0; v < vnodes; ++v) {
      const std::uint64_t id[2] = {static_cast<std::uint64_t>(s),
                                   static_cast<std::uint64_t>(v)};
      ring_.push_back(VNode{plan_hash_bytes(kRingSeed, id, sizeof id),
                            static_cast<std::uint32_t>(s)});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const VNode& a, const VNode& b) {
              return a.point != b.point ? a.point < b.point
                                        : a.shard < b.shard;
            });
}

int ConsistentHashRing::pick(std::uint64_t point,
                             const std::vector<char>& skip) const {
  if (ring_.empty()) return -1;
  MSX_ASSERT(skip.size() == nshards_);
  // First vnode at or clockwise of the point, wrapping at the top.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const VNode& v, std::uint64_t p) { return v.point < p; });
  const std::size_t start =
      it == ring_.end() ? 0 : static_cast<std::size_t>(it - ring_.begin());
  for (std::size_t off = 0; off < ring_.size(); ++off) {
    const VNode& v = ring_[(start + off) % ring_.size()];
    if (v.shard < skip.size() && skip[v.shard]) continue;
    return static_cast<int>(v.shard);
  }
  return -1;  // every shard skipped
}

std::uint64_t ring_point(const PlanKey& key) {
  // The halves are independently seeded streams; fold them so a collision
  // in one alone cannot collapse two keys to the same point.
  std::uint64_t h = key.h1 ^ (key.h2 * 0x9e3779b97f4a7c15ull);
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 32;
  return h;
}

}  // namespace msx::service
