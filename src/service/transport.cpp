#include "service/transport.hpp"

#include <chrono>
#include <cstring>
#include <deque>
#include <thread>

#include "common/thread_annotations.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

namespace msx::service {

bool read_exact(Stream& s, void* data, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < len) {
    const std::size_t n = s.read_some(p + got, len - got);
    if (n == 0) {
      if (got == 0) return false;
      throw WireError("wire: connection closed mid-frame");
    }
    got += n;
  }
  return true;
}

void send_frame(Stream& s, MessageType type, std::uint64_t request_id,
                std::span<const std::uint8_t> payload) {
  const auto header = encode_frame_header(type, request_id, payload);
  s.write_all(header.data(), header.size());
  if (!payload.empty()) s.write_all(payload.data(), payload.size());
}

void send_frame_parts(Stream& s, MessageType type, std::uint64_t request_id,
                      GatherPayload& payload) {
  const auto parts = payload.parts();
  const auto header = encode_frame_header_raw(
      type, request_id, payload.total_bytes(),
      plan_hash_parts(kWireChecksumSeed, parts));
  std::vector<std::span<const std::uint8_t>> all;
  all.reserve(parts.size() + 1);
  all.push_back(std::span<const std::uint8_t>(header));
  all.insert(all.end(), parts.begin(), parts.end());
  s.write_parts(all);
}

bool recv_frame(Stream& s, FrameHeader& header,
                std::vector<std::uint8_t>& payload) {
  std::uint8_t raw[kFrameHeaderBytes];
  if (!read_exact(s, raw, sizeof raw)) return false;
  header = decode_frame_header(std::span<const std::uint8_t>(raw, sizeof raw));
  payload.resize(static_cast<std::size_t>(header.payload_len));
  if (header.payload_len > 0 && !read_exact(s, payload.data(), payload.size())) {
    throw WireError("wire: connection closed before payload");
  }
  verify_payload(header, payload);
  return true;
}

// --- loopback --------------------------------------------------------------

namespace {

// One direction of a loopback pipe: a bounded FIFO of bytes. Writers block
// while full (back-pressure), readers block while empty; close() wakes both.
class ByteQueue {
 public:
  explicit ByteQueue(std::size_t capacity) : capacity_(capacity) {}

  void write_all(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    MutexLock lock(&mu_);
    while (len > 0) {
      while (!closed_ && size() >= capacity_) writable_.wait(mu_);
      if (closed_) throw TransportError("loopback: peer closed");
      const std::size_t room = capacity_ - size();
      const std::size_t chunk = room < len ? room : len;
      buf_.insert(buf_.end(), p, p + chunk);
      p += chunk;
      len -= chunk;
      readable_.notify_all();
    }
  }

  std::size_t read_some(void* data, std::size_t len) {
    MutexLock lock(&mu_);
    while (!closed_ && size() == 0) readable_.wait(mu_);
    if (size() == 0) return 0;  // closed and drained -> EOF
    const std::size_t chunk = size() < len ? size() : len;
    std::memcpy(data, buf_.data() + head_, chunk);
    head_ += chunk;
    // Compact once the dead prefix dominates, keeping reads O(1) amortized.
    if (head_ > 4096 && head_ * 2 > buf_.size()) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    writable_.notify_all();
    return chunk;
  }

  void close() {
    MutexLock lock(&mu_);
    closed_ = true;
    readable_.notify_all();
    writable_.notify_all();
  }

 private:
  std::size_t size() const MSX_REQUIRES(mu_) { return buf_.size() - head_; }

  Mutex mu_{LockRank::kTransport, "ByteQueue::mu_"};
  CondVar readable_;
  CondVar writable_;
  std::vector<std::uint8_t> buf_ MSX_GUARDED_BY(mu_);
  std::size_t head_ MSX_GUARDED_BY(mu_) = 0;
  std::size_t capacity_;  // immutable after construction
  bool closed_ MSX_GUARDED_BY(mu_) = false;
};

class LoopbackStream final : public Stream {
 public:
  LoopbackStream(std::shared_ptr<ByteQueue> in, std::shared_ptr<ByteQueue> out)
      : in_(std::move(in)), out_(std::move(out)) {}
  ~LoopbackStream() override { shutdown(); }

  void write_all(const void* data, std::size_t len) override {
    out_->write_all(data, len);
  }
  std::size_t read_some(void* data, std::size_t len) override {
    return in_->read_some(data, len);
  }
  void shutdown() override {
    in_->close();
    out_->close();
  }

 private:
  std::shared_ptr<ByteQueue> in_;
  std::shared_ptr<ByteQueue> out_;
};

}  // namespace

std::pair<std::unique_ptr<Stream>, std::unique_ptr<Stream>> loopback_pair(
    std::size_t capacity_bytes) {
  auto q1 = std::make_shared<ByteQueue>(capacity_bytes);
  auto q2 = std::make_shared<ByteQueue>(capacity_bytes);
  return {std::make_unique<LoopbackStream>(q1, q2),
          std::make_unique<LoopbackStream>(q2, q1)};
}

struct LoopbackListener::Impl {
  Mutex mu{LockRank::kTransport, "LoopbackListener::Impl::mu"};
  CondVar cv;
  std::deque<std::unique_ptr<Stream>> pending MSX_GUARDED_BY(mu);
  std::size_t capacity;  // immutable after the constructor
  bool closed MSX_GUARDED_BY(mu) = false;
};

LoopbackListener::LoopbackListener(std::size_t capacity_bytes)
    : impl_(std::make_unique<Impl>()) {
  impl_->capacity = capacity_bytes;
}

LoopbackListener::~LoopbackListener() { close(); }

std::unique_ptr<Stream> LoopbackListener::connect() {
  auto [client, server] = loopback_pair(impl_->capacity);
  {
    MutexLock lock(&impl_->mu);
    if (impl_->closed) throw TransportError("loopback: listener closed");
    impl_->pending.push_back(std::move(server));
  }
  impl_->cv.notify_one();
  return std::move(client);
}

std::unique_ptr<Stream> LoopbackListener::accept() {
  MutexLock lock(&impl_->mu);
  while (!impl_->closed && impl_->pending.empty()) impl_->cv.wait(impl_->mu);
  if (impl_->pending.empty()) return nullptr;
  auto s = std::move(impl_->pending.front());
  impl_->pending.pop_front();
  return s;
}

void LoopbackListener::close() {
  MutexLock lock(&impl_->mu);
  impl_->closed = true;
  impl_->pending.clear();
  impl_->cv.notify_all();
}

// --- sockets ---------------------------------------------------------------

namespace {

class FdStream final : public Stream {
 public:
  explicit FdStream(int fd) : fd_(fd) {}
  ~FdStream() override {
    shutdown();
    ::close(fd_);
  }

  void write_all(const void* data, std::size_t len) override {
    const auto* p = static_cast<const std::uint8_t*>(data);
    while (len > 0) {
      const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw TransportError(std::string("socket send: ") +
                             std::strerror(errno));
      }
      p += n;
      len -= static_cast<std::size_t>(n);
    }
  }

  // Scatter-gather: one sendmsg per batch of up to kMaxIov spans (sendmsg
  // rather than writev for MSG_NOSIGNAL). Short writes advance the iovec
  // window in place.
  void write_parts(
      std::span<const std::span<const std::uint8_t>> parts) override {
    static constexpr std::size_t kMaxIov = 64;  // well under any IOV_MAX
    iovec iov[kMaxIov];
    std::size_t i = 0;
    while (i < parts.size()) {
      std::size_t n = 0;
      std::size_t bytes = 0;
      for (; n < kMaxIov && i + n < parts.size(); ++n) {
        const auto& part = parts[i + n];
        iov[n].iov_base = const_cast<std::uint8_t*>(part.data());
        iov[n].iov_len = part.size();
        bytes += part.size();
      }
      std::size_t first = 0;
      while (bytes > 0) {
        msghdr msg{};
        msg.msg_iov = iov + first;
        msg.msg_iovlen = n - first;
        const ssize_t sent = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
        if (sent < 0) {
          if (errno == EINTR) continue;
          throw TransportError(std::string("socket sendmsg: ") +
                               std::strerror(errno));
        }
        std::size_t done = static_cast<std::size_t>(sent);
        bytes -= done;
        while (done > 0 && done >= iov[first].iov_len) {
          done -= iov[first].iov_len;
          ++first;
        }
        if (done > 0) {
          iov[first].iov_base =
              static_cast<std::uint8_t*>(iov[first].iov_base) + done;
          iov[first].iov_len -= done;
        }
      }
      i += n;
    }
  }

  std::size_t read_some(void* data, std::size_t len) override {
    for (;;) {
      const ssize_t n = ::recv(fd_, data, len, 0);
      if (n >= 0) return static_cast<std::size_t>(n);
      if (errno == EINTR) continue;
      throw TransportError(std::string("socket recv: ") +
                           std::strerror(errno));
    }
  }

  void shutdown() override { ::shutdown(fd_, SHUT_RDWR); }

 private:
  int fd_;
};

class FdListener final : public Listener {
 public:
  FdListener(int fd, std::string address)
      : fd_(fd), address_(std::move(address)) {}
  ~FdListener() override {
    close();
    ::close(fd_);
  }

  std::unique_ptr<Stream> accept() override {
    for (;;) {
      const int client = ::accept(fd_, nullptr, nullptr);
      if (client >= 0) return std::make_unique<FdStream>(client);
      // Transient failures must not kill the accept loop: a peer that reset
      // before we accepted (ECONNABORTED, EPROTO) just skips one
      // connection, and fd exhaustion (EMFILE/ENFILE) backs off briefly —
      // the shard reaps closed connections, so pressure clears.
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;
      }
      if (errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return nullptr;  // listener shut down (EBADF/EINVAL from close())
    }
  }

  void close() override { ::shutdown(fd_, SHUT_RDWR); }
  std::string address() const override { return address_; }

 private:
  int fd_;
  std::string address_;
};

[[noreturn]] void throw_errno(const char* what) {
  throw TransportError(std::string(what) + ": " + std::strerror(errno));
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    throw TransportError("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_addr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw TransportError("bad IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

std::unique_ptr<Listener> listen_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("unix socket");
  ::unlink(path.c_str());
  const auto addr = unix_addr(path);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 64) < 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("unix bind/listen");
  }
  return std::make_unique<FdListener>(fd, path);
}

std::unique_ptr<Stream> connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("unix socket");
  const auto addr = unix_addr(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("unix connect");
  }
  return std::make_unique<FdStream>(fd);
}

std::unique_ptr<Listener> listen_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("tcp socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  auto addr = tcp_addr(host, port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 64) < 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("tcp bind/listen");
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  return std::make_unique<FdListener>(
      fd, host + ":" + std::to_string(ntohs(addr.sin_port)));
}

std::unique_ptr<Stream> connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("tcp socket");
  const auto addr = tcp_addr(host, port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("tcp connect");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return std::make_unique<FdStream>(fd);
}

}  // namespace msx::service
