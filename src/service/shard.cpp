#include "service/shard.hpp"

namespace msx::service {

namespace detail {

ConnectionSet::~ConnectionSet() { close(); }

void ConnectionSet::adopt(std::unique_ptr<Stream> s,
                          std::function<void(Stream&)> serve) {
  MutexLock lock(&mu_);
  reap_finished_locked();
  if (closed_) s->shutdown();  // late accept during stop(): serve exits fast
  auto conn = std::make_unique<Conn>();
  conn->stream = std::move(s);
  conn->done = std::make_shared<std::atomic<bool>>(false);
  Stream* raw = conn->stream.get();
  conn->thread = std::thread(
      [raw, done = conn->done, serve = std::move(serve)] {
        serve(*raw);
        done->store(true, std::memory_order_release);
      });
  conns_.push_back(std::move(conn));
}

void ConnectionSet::add_thread(std::thread t) {
  MutexLock lock(&mu_);
  threads_.push_back(std::move(t));
}

// Joins and frees every connection whose serve callback has returned — the
// done flag is the last thing the serving thread stores, so join() returns
// almost immediately.
void ConnectionSet::reap_finished_locked() {
  auto it = conns_.begin();
  while (it != conns_.end()) {
    if ((*it)->done->load(std::memory_order_acquire)) {
      (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void ConnectionSet::close() {
  {
    MutexLock lock(&mu_);
    closed_ = true;
    for (auto& c : conns_) c->stream->shutdown();
  }
  // Join until quiescent: an accept thread being joined may have adopted a
  // final connection (registered after closed_, so already shut down) that
  // lands in conns_ while we drain.
  for (;;) {
    std::unique_ptr<Conn> conn;
    std::thread t;
    {
      MutexLock lock(&mu_);
      if (!conns_.empty()) {
        conn = std::move(conns_.back());
        conns_.pop_back();
      } else if (!threads_.empty()) {
        t = std::move(threads_.back());
        threads_.pop_back();
      } else {
        break;
      }
    }
    if (conn != nullptr) {
      conn->stream->shutdown();  // adopted after the shutdown sweep above
      if (conn->thread.joinable()) conn->thread.join();
    } else if (t.joinable()) {
      t.join();
    }
  }
}

}  // namespace detail

void fold_executor_stats(const BatchStats& exec_stats, ServiceStats& out) {
  out.jobs_submitted = exec_stats.submitted;
  out.jobs_completed = exec_stats.completed;
  out.cache_hits = exec_stats.cache.hits;
  out.cache_misses = exec_stats.cache.misses;
  out.cache_grows = exec_stats.cache.grows;
  out.cache_evictions = exec_stats.cache.evictions;
  out.cache_instances = exec_stats.cache.instances;
  out.cache_bytes = exec_stats.cache.bytes_held;
}

}  // namespace msx::service
