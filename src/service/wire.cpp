#include "service/wire.hpp"

namespace msx::service {

const char* to_string(MessageType t) {
  switch (t) {
    case MessageType::kRequest: return "request";
    case MessageType::kResponse: return "response";
    case MessageType::kStatsRequest: return "stats-request";
    case MessageType::kStatsResponse: return "stats-response";
    case MessageType::kRegisterRequest: return "register";
    case MessageType::kSubmitRequest: return "submit";
    case MessageType::kUnregisterRequest: return "unregister";
    case MessageType::kUpdateRequest: return "update";
    case MessageType::kMetricsRequest: return "metrics-request";
    case MessageType::kMetricsResponse: return "metrics-response";
  }
  return "?";
}

const char* to_string(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kOverloaded: return "overloaded";
    case WireStatus::kBadRequest: return "bad-request";
    case WireStatus::kInternalError: return "internal-error";
    case WireStatus::kStaleStructure: return "stale-structure";
  }
  return "?";
}

std::vector<std::uint8_t> encode_frame_header_raw(MessageType type,
                                                  std::uint64_t request_id,
                                                  std::uint64_t payload_len,
                                                  std::uint64_t checksum) {
  std::vector<std::uint8_t> bytes(kFrameHeaderBytes);
  std::uint8_t* p = bytes.data();
  auto put = [&p](const auto v) {
    std::memcpy(p, &v, sizeof v);
    p += sizeof v;
  };
  put(kWireMagic);
  put(kWireVersion);
  put(static_cast<std::uint16_t>(type));
  put(request_id);
  put(payload_len);
  put(checksum);
  MSX_ASSERT(p == bytes.data() + kFrameHeaderBytes);
  return bytes;
}

std::vector<std::uint8_t> encode_frame_header(
    MessageType type, std::uint64_t request_id,
    std::span<const std::uint8_t> payload) {
  return encode_frame_header_raw(
      type, request_id, payload.size(),
      plan_hash_bytes(kWireChecksumSeed, payload.data(), payload.size()));
}

FrameHeader decode_frame_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kFrameHeaderBytes) {
    throw WireError("wire: short frame header");
  }
  WireReader r(bytes);
  if (r.get_u32() != kWireMagic) throw WireError("wire: bad magic");
  // The 32-byte header layout has been stable since v1, so a mismatched
  // version is parsed in full first: the request id lets the server answer
  // the old peer with a versioned error on the right id (WireVersionError)
  // rather than dropping the connection with no explanation.
  FrameHeader h;
  h.version = r.get_u16();
  const std::uint16_t type = r.get_u16();
  h.request_id = r.get_u64();
  h.payload_len = r.get_u64();
  h.checksum = r.get_u64();
  if (h.version != kWireVersion) {
    throw WireVersionError(h.version, h.request_id);
  }
  if (type < static_cast<std::uint16_t>(MessageType::kRequest) ||
      type > static_cast<std::uint16_t>(MessageType::kMetricsResponse)) {
    throw WireError("wire: unknown message type " + std::to_string(type));
  }
  h.type = static_cast<MessageType>(type);
  if (h.payload_len > kMaxPayloadBytes) {
    throw WireError("wire: payload length exceeds limit");
  }
  return h;
}

void verify_payload(const FrameHeader& header,
                    std::span<const std::uint8_t> payload) {
  if (payload.size() != header.payload_len) {
    throw WireError("wire: payload length mismatch");
  }
  const std::uint64_t sum =
      plan_hash_bytes(kWireChecksumSeed, payload.data(), payload.size());
  if (sum != header.checksum) throw WireError("wire: checksum mismatch");
}

namespace {

template <class E>
E checked_enum(std::uint32_t raw, E max, const char* what) {
  if (raw > static_cast<std::uint32_t>(max)) {
    throw WireError(std::string("wire: unknown ") + what + " value " +
                    std::to_string(raw));
  }
  return static_cast<E>(raw);
}

}  // namespace

MaskedOptions read_options(WireReader& r) {
  MaskedOptions opts;
  opts.algo = checked_enum(r.get_u32(), MaskedAlgo::kAuto, "algo");
  opts.phases = checked_enum(r.get_u32(), PhaseMode::kTwoPhase, "phase mode");
  opts.kind = checked_enum(r.get_u32(), MaskKind::kComplement, "mask kind");
  opts.schedule =
      checked_enum(r.get_u32(), Schedule::kFlopBalanced, "schedule");
  opts.cost_model =
      checked_enum(r.get_u32(), CostModel::kMaskNnz, "cost model");
  opts.threads = r.get_i32();
  opts.chunk = r.get_i32();
  opts.heap_ninspect = static_cast<std::size_t>(r.get_u64());
  const std::uint8_t gallop = r.get_u8();
  if (gallop > 1) throw WireError("wire: bad inner_gallop flag");
  opts.inner_gallop = gallop != 0;
  return opts;
}

std::vector<std::uint8_t> encode_error_response(WireStatus status,
                                                const std::string& message,
                                                std::uint64_t exec_nanos) {
  MSX_ASSERT(status != WireStatus::kOk);
  WireWriter w;
  w.put_u32(static_cast<std::uint32_t>(status));
  w.put_u64(exec_nanos);
  w.put_u64(0);  // queue_nanos (v5): unknown on the error path
  w.put_u64(0);  // run_nanos
  w.put_string(message);
  return w.take();
}

std::vector<std::uint8_t> encode_metrics_text(const std::string& text) {
  WireWriter w;
  w.put_string(text);
  return w.take();
}

std::string decode_metrics_text(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  std::string text = r.get_string();
  if (!r.exhausted()) throw WireError("wire: trailing bytes in metrics");
  return text;
}

std::vector<std::uint8_t> encode_stats(const ServiceStats& s) {
  const std::uint64_t fields[] = {
      s.requests,        s.responses,      s.errors,
      s.overloaded,      s.bytes_in,       s.bytes_out,
      s.jobs_submitted,  s.jobs_completed, s.cache_hits,
      s.cache_misses,    s.cache_grows,    s.cache_evictions,
      s.cache_instances, s.cache_bytes,    s.registrations,
      s.updates,         s.stale,
  };
  WireWriter w;
  w.put_array(std::span<const std::uint64_t>(fields));
  return w.take();
}

ServiceStats decode_stats(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  const auto fields = r.get_array<std::uint64_t>();
  if (!r.exhausted()) throw WireError("wire: trailing bytes in stats");
  // Count-prefixed so a newer peer may append fields; this version needs its
  // own 14.
  if (fields.size() < 14) throw WireError("wire: short stats payload");
  ServiceStats s;
  s.requests = fields[0];
  s.responses = fields[1];
  s.errors = fields[2];
  s.overloaded = fields[3];
  s.bytes_in = fields[4];
  s.bytes_out = fields[5];
  s.jobs_submitted = fields[6];
  s.jobs_completed = fields[7];
  s.cache_hits = fields[8];
  s.cache_misses = fields[9];
  s.cache_grows = fields[10];
  s.cache_evictions = fields[11];
  s.cache_instances = fields[12];
  s.cache_bytes = fields[13];
  // Appended in v2/v3; count-prefixed, so a shorter (older) payload still
  // decodes with the counters at zero.
  if (fields.size() > 14) s.registrations = fields[14];
  if (fields.size() > 15) s.updates = fields[15];
  if (fields.size() > 16) s.stale = fields[16];
  return s;
}

}  // namespace msx::service
