#include "service/distributed.hpp"

namespace msx::service {

std::vector<std::int64_t> panel_bounds_from_cost(
    std::span<const std::uint64_t> prefix, int npanels) {
  RowPartition part = partition_from_cost_prefix(prefix, npanels);
  if (part.block_start.size() < 2) {
    // Empty dimension: one degenerate panel keeps grid arithmetic uniform.
    return {0, static_cast<std::int64_t>(prefix.size()) - 1};
  }
  return std::move(part.block_start);
}

std::vector<int> replica_shards(const ConsistentHashRing& ring,
                                std::uint64_t point, int replicas) {
  std::vector<char> skip(ring.nshards(), 0);
  std::vector<int> out;
  const auto want = std::min<std::size_t>(
      replicas > 0 ? static_cast<std::size_t>(replicas) : 1, ring.nshards());
  out.reserve(want);
  while (out.size() < want) {
    const int s = ring.pick(point, skip);
    if (s < 0) break;  // fleet exhausted (want was capped, but be safe)
    out.push_back(s);
    skip[static_cast<std::size_t>(s)] = 1;
  }
  return out;
}

}  // namespace msx::service
