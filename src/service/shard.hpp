// ServiceShard — one masked-SpGEMM server process (ISSUE 4 tentpole).
//
// A shard accepts framed requests over any Transport (loopback for tests
// and co-located deployments, Unix/TCP sockets across processes/hosts) and
// drains them through the concurrent runtime: every product request becomes
// a BatchExecutor job, so a shard inherits the moldable small/wide policy,
// the structure-keyed PlanCache, and — new in this PR — bounded-queue
// admission. Under AdmissionPolicy::kReject a flooded shard answers
// kOverloaded instead of queueing unboundedly, and the router fails the
// request over to the next shard on the ring.
//
// Per connection: the reader thread decodes and submits requests and a
// sender thread streams responses back in submission order, so a connection
// can keep many requests in flight (the executor runs them concurrently)
// while the wire stays a simple FIFO of frames. Request ids are echoed
// verbatim; a kStatsRequest is answered in-line from the shard's counters,
// which is how the router reads warm-hit rates for affinity accounting.
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/batch.hpp"
#include "service/distributed.hpp"  // slice_rows (mask row windows)
#include "service/transport.hpp"
#include "service/wire.hpp"

namespace msx::service {

struct ShardConfig {
  std::string name = "shard";
  // Executor limits: pool size, plan-cache capacity/bytes, admission bounds.
  // Service deployments typically set max_pending_jobs (and kReject) so
  // overload turns into kOverloaded responses the router can reroute.
  BatchLimits limits;
};

namespace detail {

// Owns a shard's connections: each adopted stream plus the thread serving
// it. Finished connections (serve callback returned) are reaped — joined
// and freed, releasing the stream's fd — opportunistically on every adopt,
// so a long-running shard cycling through short-lived connections stays
// bounded. close() shuts every stream down (unblocking reader/sender
// loops) and joins everything; streams adopted after close() are shut down
// on arrival so a late accept cannot outlive stop(). Non-template
// (shard.cpp).
class ConnectionSet {
 public:
  ConnectionSet() = default;
  ~ConnectionSet();
  ConnectionSet(const ConnectionSet&) = delete;
  ConnectionSet& operator=(const ConnectionSet&) = delete;

  // Takes ownership of the stream and runs `serve(*stream)` on a new
  // thread; both are reclaimed once serve returns.
  void adopt(std::unique_ptr<Stream> s, std::function<void(Stream&)> serve);
  // Auxiliary long-lived thread (a listener's accept loop); joined at
  // close().
  void add_thread(std::thread t);
  void close();

 private:
  struct Conn {
    std::unique_ptr<Stream> stream;
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void reap_finished_locked() MSX_REQUIRES(mu_);

  Mutex mu_{LockRank::kShard, "ConnectionSet::mu_"};
  std::vector<std::unique_ptr<Conn>> conns_ MSX_GUARDED_BY(mu_);
  std::vector<std::thread> threads_ MSX_GUARDED_BY(mu_);
  bool closed_ MSX_GUARDED_BY(mu_) = false;
};

}  // namespace detail

// Folds executor counters into the wire-level ones (shard.cpp).
void fold_executor_stats(const BatchStats& exec_stats, ServiceStats& out);

template <class SR, class IT, class VT>
class ServiceShard {
 public:
  using Executor = BatchExecutor<SR, IT, VT>;
  using Mat = CSRMatrix<IT, VT>;
  using output_matrix = typename Executor::output_matrix;

  explicit ServiceShard(ShardConfig cfg = {})
      : cfg_(std::move(cfg)), exec_(cfg_.limits) {}

  // Stops accepting, closes every connection, joins the serving threads and
  // drains the executor.
  ~ServiceShard() { stop(); }

  ServiceShard(const ServiceShard&) = delete;
  ServiceShard& operator=(const ServiceShard&) = delete;

  // Adopts a connection and serves it on a background thread until the peer
  // closes (or the stream turns out corrupt); the connection's resources
  // are reclaimed after that.
  void attach(std::unique_ptr<Stream> stream) {
    conns_.adopt(std::move(stream), [this](Stream& s) { serve_stream(s); });
  }

  // Adopts a listener and accepts connections on a background thread.
  void serve(std::unique_ptr<Listener> listener) {
    Listener* raw = nullptr;
    {
      MutexLock lock(&listeners_mu_);
      listeners_.push_back(std::move(listener));
      raw = listeners_.back().get();
    }
    conns_.add_thread(std::thread([this, raw] {
      while (auto s = raw->accept()) attach(std::move(s));
    }));
  }

  // Serves one connection on the calling thread (deterministic tests).
  void serve_stream(Stream& s) {
    ResponseQueue responses;
    // Session protocol (wire v2): structures registered by this connection,
    // alive exactly as long as it is. Only the reader thread touches it.
    std::unordered_map<std::uint64_t, Registered> registry;

    std::thread sender([&] { sender_loop(s, responses); });

    FrameHeader header;
    std::vector<std::uint8_t> payload;
    try {
      while (recv_frame(s, header, payload)) {
        count_in(payload.size());
        Pending p;
        p.rid = header.request_id;
        switch (header.type) {
          case MessageType::kStatsRequest:
            p.type = MessageType::kStatsResponse;
            p.immediate = encode_stats(stats());
            break;
          case MessageType::kRequest:
            p.type = MessageType::kResponse;
            handle_request(payload, p);
            break;
          case MessageType::kRegisterRequest:
            // One-way: a malformed registration throws WireError below and
            // tears the connection down like any other malformed frame.
            handle_register(payload, registry);
            continue;
          case MessageType::kUnregisterRequest:
            registry.erase(decode_unregister(payload));
            continue;
          case MessageType::kSubmitRequest:
            p.type = MessageType::kResponse;
            handle_submit(payload, registry, p);
            break;
          case MessageType::kUpdateRequest:
            // One-way like register: FIFO frame ordering means a submit
            // behind this update sees the new version and matrix.
            handle_update(payload, registry);
            continue;
          case MessageType::kMetricsRequest:
            p.type = MessageType::kMetricsResponse;
            p.immediate = encode_metrics_text(metrics_text());
            break;
          default:
            p.type = MessageType::kResponse;
            p.immediate = encode_error_response(
                WireStatus::kBadRequest,
                std::string("unexpected message type: ") +
                    to_string(header.type));
            break;
        }
        responses.push(std::move(p));
      }
    } catch (const WireVersionError& e) {
      // A peer speaking another protocol version: answer on its own request
      // id with an error naming both versions so it fails fast instead of
      // hanging on a silently dropped connection, then close — nothing else
      // it sends can be trusted to parse.
      Pending p;
      p.rid = e.request_id();
      p.type = MessageType::kResponse;
      p.immediate = encode_error_response(WireStatus::kBadRequest, e.what());
      responses.push(std::move(p));
    } catch (const WireError&) {
      // Malformed frame: the stream can no longer be trusted — drop it.
    } catch (const TransportError&) {
    }
    responses.close();
    sender.join();
    s.shutdown();
  }

  // Close listeners first (accept loops end), then every connection, then
  // join. Idempotent.
  void stop() {
    {
      MutexLock lock(&listeners_mu_);
      for (auto& l : listeners_) l->close();
    }
    conns_.close();
  }

  // Wire counters merged with the executor's (cache hit/miss, job counts).
  ServiceStats stats() const {
    ServiceStats out;
    {
      MutexLock lock(&stats_mu_);
      out = wire_stats_;
    }
    fold_executor_stats(exec_.stats(), out);
    return out;
  }

  Executor& executor() { return exec_; }
  const ShardConfig& config() const { return cfg_; }

  // The shard's metrics plane as Prometheus text: the executor's registry
  // (live latency histograms + BatchStats/PlanCacheStats mirrors) plus the
  // wire counters, every sample labelled shard="<name>" so an in-process
  // fleet scrapes without collisions. Served over the wire by
  // kMetricsRequest; also directly callable for co-located deployments.
  std::string metrics_text() {
    const ServiceStats s = stats();
    obs::Registry& reg = exec_.metrics();
    reg.counter("msx_shard_requests_total")->set(s.requests);
    reg.counter("msx_shard_responses_total")->set(s.responses);
    reg.counter("msx_shard_errors_total")->set(s.errors);
    reg.counter("msx_shard_overloaded_total")->set(s.overloaded);
    reg.counter("msx_shard_stale_total")->set(s.stale);
    reg.counter("msx_shard_registrations_total")->set(s.registrations);
    reg.counter("msx_shard_updates_total")->set(s.updates);
    reg.counter("msx_shard_bytes_in_total")->set(s.bytes_in);
    reg.counter("msx_shard_bytes_out_total")->set(s.bytes_out);
    reg.gauge("msx_shard_warm_hit_rate")->set(s.warm_hit_rate());
    exec_.publish_metrics();
    return reg.render("shard=\"" + cfg_.name + "\"");
  }

 private:
  // One queued response: either a submitted job's future (encoded by the
  // sender when it completes) or a pre-encoded payload.
  struct Pending {
    std::uint64_t rid = 0;
    MessageType type = MessageType::kResponse;
    std::optional<std::future<output_matrix>> fut;
    std::vector<std::uint8_t> immediate;
    // Frame receipt time: the sender stamps receipt→result into the wire v4
    // exec_nanos response field, the cost-model feedback clients fold into
    // their per-shard EWMA. Includes queue wait on purpose — a loaded shard
    // should look expensive to the 2D placer.
    std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();
    // v5: the executor stamps the queue/run split here inside the job body
    // (future-ready ordering makes the sender's read race-free).
    std::shared_ptr<JobTiming> timing;
    // v5: trace context from a kSubTraced submit. span_id is minted at
    // receipt so the executor's spans nest under the shard.request span the
    // sender records once the result is known.
    obs::TraceId trace;
    std::uint64_t span_id = 0;
    std::uint64_t parent_span = 0;
  };

  // Response FIFO between one connection's reader and its sender thread —
  // was four loose stack locals shared by reference, which the thread-safety
  // analysis cannot type; as a struct the guarded members carry their
  // MSX_GUARDED_BY contracts and both loops go through checked methods.
  struct ResponseQueue {
    Mutex mu{LockRank::kShard, "ServiceShard::ResponseQueue::mu"};
    CondVar cv;
    std::deque<Pending> items MSX_GUARDED_BY(mu);
    bool closed MSX_GUARDED_BY(mu) = false;

    void push(Pending p) {
      {
        MutexLock lock(&mu);
        items.push_back(std::move(p));
      }
      cv.notify_one();
    }

    // Reader finished: wake the sender so it drains and exits.
    void close() {
      {
        MutexLock lock(&mu);
        closed = true;
      }
      cv.notify_all();
    }

    // Blocks for the next response; false once closed and drained.
    bool pop(Pending& out) {
      MutexLock lock(&mu);
      while (!closed && items.empty()) cv.wait(mu);
      if (items.empty()) return false;
      out = std::move(items.front());
      items.pop_front();
      return true;
    }
  };

  // A structure installed by kRegisterRequest: shared operands the executor
  // reuses across every submit that references them (one PlanCache key per
  // recurring product shape, zero per-request operand copies).
  struct Registered {
    std::shared_ptr<const Mat> b;
    std::shared_ptr<const Mat> m;  // null unless registered with a mask
    std::uint64_t version = 1;     // bumped by kUpdateRequest
    // Set by the most recent update: lets the executor's plan cache migrate
    // the superseded structure's warm plans forward via apply_delta.
    std::shared_ptr<const PlanLineage<IT, VT>> lineage;
    // Row windows of the registered mask (wire v4 kSubMaskRows), keyed
    // (r0 << 32) | r1. A 2D client resubmits the same row panels against a
    // registered panel structure, so each window is sliced once per version
    // (cleared on update). Reader-thread-only like the registry itself.
    std::unordered_map<std::uint64_t, std::shared_ptr<const Mat>> mask_slices;

    std::shared_ptr<const Mat> mask_slice(std::uint64_t r0, std::uint64_t r1) {
      const bool cacheable = r1 < (1ull << 32);
      const std::uint64_t key = (r0 << 32) | r1;
      if (cacheable) {
        const auto hit = mask_slices.find(key);
        if (hit != mask_slices.end()) return hit->second;
      }
      auto s = std::make_shared<const Mat>(
          slice_rows(*m, static_cast<std::int64_t>(r0),
                     static_cast<std::int64_t>(r1)));
      if (cacheable) mask_slices.emplace(key, s);
      return s;
    }
  };

  // Decodes and submits one product request; on any validation/admission
  // failure fills p.immediate with the matching error payload instead.
  void handle_request(std::span<const std::uint8_t> payload, Pending& p) {
    {
      MutexLock lock(&stats_mu_);
      ++wire_stats_.requests;
    }
    try {
      auto req = decode_request<IT, VT>(payload);
      // Rebuild the client's aliasing with shared operands so the executor
      // copies nothing extra and its PlanCache fingerprint matches the one
      // the router hashed.
      auto a = std::make_shared<const Mat>(std::move(req.a));
      auto b = req.b_is_a
                   ? a
                   : std::make_shared<const Mat>(std::move(req.b_storage));
      auto m = req.m_is_a
                   ? a
                   : (req.m_is_b ? b
                                 : std::make_shared<const Mat>(
                                       std::move(req.m_storage)));
      p.timing = std::make_shared<JobTiming>();
      JobOptions job;
      job.timing = p.timing;
      p.fut = exec_.submit_shared(std::move(a), std::move(b), std::move(m),
                                  req.opts, std::move(job));
    } catch (const BatchRejected& e) {
      p.immediate = encode_error_response(WireStatus::kOverloaded, e.what());
    } catch (const WireError& e) {
      p.immediate = encode_error_response(WireStatus::kBadRequest, e.what());
    } catch (const std::invalid_argument& e) {
      p.immediate = encode_error_response(WireStatus::kBadRequest, e.what());
    } catch (const std::exception& e) {
      p.immediate = encode_error_response(WireStatus::kInternalError,
                                          e.what());
    }
  }

  // Installs (or replaces) a registered structure. Decode failures propagate
  // as WireError to the reader loop, which drops the connection.
  void handle_register(std::span<const std::uint8_t> payload,
                       std::unordered_map<std::uint64_t, Registered>& registry) {
    auto reg = decode_register<IT, VT>(payload);
    Registered rec;
    rec.b = std::make_shared<const Mat>(std::move(reg.b));
    if (reg.has_mask) {
      rec.m = reg.mask_is_b
                  ? rec.b
                  : std::make_shared<const Mat>(std::move(reg.m_storage));
    }
    rec.version = reg.version;
    registry[reg.structure_id] = std::move(rec);
    MutexLock lock(&stats_mu_);
    ++wire_stats_.registrations;
  }

  // Applies a structure update: the delta is materialized server-side (the
  // patched B never crosses the wire), the registration flips to the new
  // matrix and version atomically w.r.t. this connection's FIFO, and the
  // lineage is kept so warm plans migrate instead of rebuilding. One-way; a
  // bad delta (unknown id, out-of-range edge) is a protocol violation that
  // tears the connection down like any malformed frame.
  void handle_update(std::span<const std::uint8_t> payload,
                     std::unordered_map<std::uint64_t, Registered>& registry) {
    auto upd = decode_update<IT, VT>(payload);
    const auto it = registry.find(upd.structure_id);
    if (it == registry.end()) {
      throw WireError("wire: update for unknown structure id " +
                      std::to_string(upd.structure_id));
    }
    obs::ScopedSpan span("delta.apply");
    Registered& reg = it->second;
    std::shared_ptr<const Mat> old_b = reg.b;
    std::shared_ptr<const Mat> new_b;
    try {
      new_b = std::make_shared<const Mat>(apply_edge_delta(*old_b, upd.delta));
    } catch (const std::invalid_argument& e) {
      throw WireError(std::string("wire: invalid update delta: ") + e.what());
    }
    auto lineage = std::make_shared<PlanLineage<IT, VT>>();
    lineage->old_b = old_b;
    // Touched rows computed once per delta; every warm plan this lineage
    // migrates (there can be many instances per key) reuses it.
    lineage->touched = std::make_shared<const std::vector<IT>>(
        delta_touched_rows(upd.delta));
    lineage->delta =
        std::make_shared<const EdgeDelta<IT, VT>>(std::move(upd.delta));
    if (reg.m == old_b) reg.m = new_b;  // a self-masked structure tracks B
    reg.b = std::move(new_b);
    reg.version = upd.new_version;
    reg.lineage = std::move(lineage);
    reg.mask_slices.clear();  // windows of the superseded mask
    MutexLock lock(&stats_mu_);
    ++wire_stats_.updates;
  }

  // Decodes and submits one session product: operands resolve against the
  // connection's registry, so only what the client actually shipped (a small
  // A and/or mask, often nothing but flags) is copied here.
  void handle_submit(std::span<const std::uint8_t> payload,
                     std::unordered_map<std::uint64_t, Registered>& registry,
                     Pending& p) {
    {
      MutexLock lock(&stats_mu_);
      ++wire_stats_.requests;
    }
    try {
      auto sub = decode_submit<IT, VT>(payload);
      const auto it = registry.find(sub.structure_id);
      if (it == registry.end()) {
        p.immediate = encode_error_response(
            WireStatus::kBadRequest,
            "unknown structure id " + std::to_string(sub.structure_id));
        return;
      }
      Registered& reg = it->second;
      if (sub.version != reg.version) {
        // Typed and retryable: the client raced an update (or kept an old
        // handle). Never run against the wrong matrix generation.
        p.immediate = encode_error_response(
            WireStatus::kStaleStructure,
            "structure " + std::to_string(sub.structure_id) +
                " submitted at version " + std::to_string(sub.version) +
                " but is at version " + std::to_string(reg.version));
        return;
      }
      auto b = reg.b;
      auto a = sub.a_is_b
                   ? b
                   : std::make_shared<const Mat>(std::move(sub.a_storage));
      std::shared_ptr<const Mat> m;
      if (sub.m_is_a) {
        m = a;
      } else if (sub.m_is_b) {
        m = b;
      } else if (sub.m_registered) {
        if (reg.m == nullptr) {
          p.immediate = encode_error_response(
              WireStatus::kBadRequest,
              "structure registered without a mask");
          return;
        }
        if (sub.mask_rows) {
          // 2D panel task: the client's A is one row panel; the matching
          // rows of the registered (column-sliced) mask complete the 2D
          // slice server-side, so the full mask never re-crosses the wire.
          if (sub.mask_r1 > static_cast<std::uint64_t>(reg.m->nrows())) {
            p.immediate = encode_error_response(
                WireStatus::kBadRequest,
                "mask row window [" + std::to_string(sub.mask_r0) + ", " +
                    std::to_string(sub.mask_r1) + ") exceeds the " +
                    std::to_string(reg.m->nrows()) + "-row registered mask");
            return;
          }
          m = reg.mask_slice(sub.mask_r0, sub.mask_r1);
        } else {
          m = reg.m;
        }
      } else {
        m = std::make_shared<const Mat>(std::move(sub.m_storage));
      }
      JobOptions job;
      job.priority = sub.priority;
      p.timing = std::make_shared<JobTiming>();
      job.timing = p.timing;
      if (sub.traced && obs::trace_enabled()) {
        p.trace = obs::TraceId{sub.trace_hi, sub.trace_lo};
        p.parent_span = sub.trace_parent;
        p.span_id = obs::next_span_id();
        // The job's spans (exec.queue/exec.run, phase.*) parent under this
        // shard's request span and carry its name as their component.
        job.trace = {p.trace, p.span_id, cfg_.name.c_str()};
      }
      p.fut = exec_.submit_shared(std::move(a), std::move(b), std::move(m),
                                  sub.opts, std::move(job), reg.lineage);
    } catch (const BatchRejected& e) {
      p.immediate = encode_error_response(WireStatus::kOverloaded, e.what());
    } catch (const WireError& e) {
      p.immediate = encode_error_response(WireStatus::kBadRequest, e.what());
    } catch (const std::invalid_argument& e) {
      p.immediate = encode_error_response(WireStatus::kBadRequest, e.what());
    } catch (const std::exception& e) {
      p.immediate = encode_error_response(WireStatus::kInternalError,
                                          e.what());
    }
  }

  // Drains the response queue in FIFO (submission) order. Execution is
  // concurrent across the queue; only response bytes serialize here.
  void sender_loop(Stream& s, ResponseQueue& responses) {
    for (;;) {
      Pending p;
      if (!responses.pop(p)) return;
      // Results go out as gather frames referencing the matrix in place (no
      // payload-assembly copy); error payloads are small and pre-encoded.
      std::optional<output_matrix> result;
      std::vector<std::uint8_t> payload;
      std::uint64_t nanos = 0;
      if (p.fut.has_value()) {
        try {
          result = p.fut->get();
        } catch (const BatchRejected& e) {
          payload = encode_error_response(WireStatus::kOverloaded, e.what());
        } catch (const std::invalid_argument& e) {
          payload = encode_error_response(WireStatus::kBadRequest, e.what());
        } catch (const std::exception& e) {
          payload =
              encode_error_response(WireStatus::kInternalError, e.what());
        }
        nanos = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - p.t0)
                .count());
        h_request_->observe_ns(nanos);
        if (obs::trace_enabled() && p.trace.valid()) {
          // Receipt-to-result on this shard; the executor's exec.queue /
          // exec.run (and phase.*) spans already nest under p.span_id.
          const std::uint64_t t0_ns = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  p.t0.time_since_epoch())
                  .count());
          obs::record_span("shard.request", p.trace, p.span_id,
                           p.parent_span, t0_ns, nanos, cfg_.name.c_str());
        }
      } else {
        payload = std::move(p.immediate);
      }
      try {
        if (result.has_value()) {
          GatherPayload g;
          const JobTiming* t = p.timing.get();
          encode_response_parts(g, *result, nanos,
                                t != nullptr ? t->queue_ns : 0,
                                t != nullptr ? t->run_ns : 0);
          count_out_ok(p.type, g.total_bytes());
          send_frame_parts(s, p.type, p.rid, g);
        } else {
          count_out(p.type, payload);
          send_frame(s, p.type, p.rid, payload);
        }
      } catch (const TransportError&) {
        // Peer gone: keep draining the queue so in-flight futures are
        // consumed (results discarded), then exit via reader_done.
      }
    }
  }

  void count_in(std::size_t payload_bytes) {
    MutexLock lock(&stats_mu_);
    wire_stats_.bytes_in += payload_bytes;
  }

  // Accounting for a kOk result sent via the gather path (no contiguous
  // payload to sniff the status from).
  void count_out_ok(MessageType type, std::size_t payload_bytes) {
    MutexLock lock(&stats_mu_);
    wire_stats_.bytes_out += payload_bytes;
    if (type == MessageType::kResponse) ++wire_stats_.responses;
  }

  void count_out(MessageType type, std::span<const std::uint8_t> payload) {
    WireStatus status = WireStatus::kOk;
    if (type == MessageType::kResponse && payload.size() >= 4) {
      std::uint32_t raw;
      std::memcpy(&raw, payload.data(), 4);
      status = static_cast<WireStatus>(raw);
    }
    MutexLock lock(&stats_mu_);
    wire_stats_.bytes_out += payload.size();
    if (type == MessageType::kResponse) {
      ++wire_stats_.responses;
      if (status == WireStatus::kOverloaded) {
        ++wire_stats_.overloaded;
      } else if (status == WireStatus::kStaleStructure) {
        // Expected under churn (update raced a submit), not a server fault.
        ++wire_stats_.stale;
      } else if (status != WireStatus::kOk) {
        ++wire_stats_.errors;
      }
    }
  }

  ShardConfig cfg_;
  Executor exec_;
  // Receipt-to-result latency per product request served by this shard.
  obs::Histogram* h_request_ =
      exec_.metrics().histogram("msx_shard_request_seconds");
  detail::ConnectionSet conns_;
  Mutex listeners_mu_{LockRank::kShard, "ServiceShard::listeners_mu_"};
  std::vector<std::unique_ptr<Listener>> listeners_
      MSX_GUARDED_BY(listeners_mu_);
  mutable Mutex stats_mu_{LockRank::kShard, "ServiceShard::stats_mu_"};
  ServiceStats wire_stats_ MSX_GUARDED_BY(stats_mu_);
};

}  // namespace msx::service
