// ShardRouter — fingerprint-affinity client for a fleet of ServiceShards
// (ISSUE 4 tentpole).
//
// The router computes the PlanCache's 128-bit structure fingerprint
// client-side (runtime/plan_cache.hpp: plan_fingerprint over operand
// structure, aliasing and options) and consistent-hashes it across the
// shards. Repeated structures therefore always land on the same shard —
// whose PlanCache already holds the warm CSC-of-B, symbolic rowptr and
// partition for them — which is the distributed analogue of plan reuse:
// who owns which operand structure dominates performance at scale (Buluç &
// Gilbert), and for masked products ownership means plan affinity.
//
// The ring is classic consistent hashing: each shard owns `vnodes` points;
// a key is served by the first point clockwise from its hash. Failover is
// rehash-by-walk: a down shard's points are skipped, so its keys spill to
// the next shard on the ring (and only its keys — everyone else's affinity
// is untouched). A shard is marked down automatically on transport failure;
// kOverloaded responses reroute the one request without poisoning affinity.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"
#include "core/options.hpp"
#include "matrix/csr.hpp"
#include "runtime/plan_cache.hpp"
#include "service/transport.hpp"
#include "service/wire.hpp"

namespace msx::service {

// How the router reaches one shard: a name for reporting plus a dialer
// (loopback listener connect, connect_unix, connect_tcp, ...).
struct ShardEndpoint {
  std::string name;
  std::function<std::unique_ptr<Stream>()> connect;
};

// Dials the endpoint fresh and exchanges one kStatsRequest; nullopt when the
// dial, exchange or decode fails. The shared health-probe / stats primitive
// of the router and the sharded client backend (router.cpp).
std::optional<ServiceStats> probe_endpoint(const ShardEndpoint& endpoint);

// Dials the endpoint fresh and exchanges one kMetricsRequest, returning the
// shard's Prometheus text page; nullopt when the dial, exchange or decode
// fails. Best-effort by design — metrics scrapes skip unreachable shards.
std::optional<std::string> probe_metrics(const ShardEndpoint& endpoint);

struct RouterConfig {
  // Ring points per shard. More vnodes = smoother key spread across shards
  // (64 keeps the max/min load ratio tight without bloating the ring).
  int vnodes = 64;
  // Health probing: every interval, each down shard gets a cheap
  // kStatsRequest on a fresh connection; success marks it up again, so a
  // restarted shard rejoins the ring without operator intervention. Zero
  // disables probing (the default — tests drive mark_up explicitly).
  std::chrono::milliseconds probe_interval{0};
};

struct RouterStats {
  std::vector<std::uint64_t> routed;   // completed requests per shard
  // Per-shard EWMA of the shard-reported execute time (wire v4 exec_nanos),
  // 0.0 until the first kOk answer — the cost-model feedback signal the 2D
  // scatter path weights panel placement by.
  std::vector<double> ewma_nanos;
  std::uint64_t failovers = 0;         // transport/wire failures rerouted
  std::uint64_t overload_reroutes = 0; // kOverloaded answers rerouted
  std::uint64_t down_marks = 0;        // shards auto-marked down
  std::uint64_t probes = 0;            // health probes attempted
  std::uint64_t rejoins = 0;           // down shards probed back up
};

// Maps a fingerprint (or any point) to a shard, skipping flagged shards.
// Deterministic across processes: the ring depends only on (nshards,
// vnodes). Not thread-safe by itself — the router serializes access.
class ConsistentHashRing {
 public:
  ConsistentHashRing(std::size_t nshards, int vnodes);

  // First shard clockwise from `point` whose skip flag is 0; -1 when every
  // shard is skipped.
  int pick(std::uint64_t point, const std::vector<char>& skip) const;

  std::size_t nshards() const { return nshards_; }

 private:
  struct VNode {
    std::uint64_t point;
    std::uint32_t shard;
  };
  std::vector<VNode> ring_;
  std::size_t nshards_;
};

// Folds the 128-bit fingerprint into the ring's 64-bit point space.
std::uint64_t ring_point(const PlanKey& key);

// Folds one shard-reported execute time into a per-shard EWMA slot.
// alpha = 1/4: enough history to damp per-request noise, light enough to
// track a shard warming its plan cache (or losing it after a restart).
// Shards that never reported (nanos == 0, a pre-v4 peer would not get here)
// leave the slot at 0.0, which consumers read as "no estimate yet".
inline void record_ewma_locked(double& slot, std::uint64_t nanos) {
  if (nanos == 0) return;
  slot = slot == 0.0 ? static_cast<double>(nanos)
                     : 0.75 * slot + 0.25 * static_cast<double>(nanos);
}

template <class SR, class IT, class VT>
class ShardRouter {
 public:
  using Mat = CSRMatrix<IT, VT>;
  using output_matrix = CSRMatrix<IT, typename SR::value_type>;

  explicit ShardRouter(std::vector<ShardEndpoint> endpoints,
                       RouterConfig cfg = {})
      : endpoints_(std::move(endpoints)),
        cfg_(cfg),
        ring_(endpoints_.size(), cfg.vnodes),
        down_(endpoints_.size(), 0),
        pools_(endpoints_.size()) {
    check_arg(!endpoints_.empty(), "ShardRouter: no shard endpoints");
    routed_.assign(endpoints_.size(), 0);
    ewma_nanos_.assign(endpoints_.size(), 0.0);
    if (cfg_.probe_interval.count() > 0) {
      prober_ = std::thread([this] { probe_loop(); });
    }
  }

  ~ShardRouter() {
    if (prober_.joinable()) {
      {
        MutexLock lock(&stats_mu_);
        stopping_ = true;
      }
      probe_cv_.notify_all();
      prober_.join();
    }
  }

  // C = M .* (A·B) (or the complemented form) served by the shard owning
  // this structure fingerprint. Bit-identical to a local masked_spgemm with
  // the same options. Throws std::invalid_argument on a kBadRequest answer
  // (mirroring the local API), std::runtime_error on kInternalError, and
  // TransportError once every shard has been tried without success.
  //
  // NOTE: this is the blocking, ship-every-operand path — one outstanding
  // request per calling thread, with B serialized and fingerprinted per
  // call. New code should prefer the pipelined client
  // (client/sharded_backend.hpp), which registers stationary operands once
  // per shard and keeps many requests in flight; this entry point remains
  // for one-shot callers and as the wire-compatibility baseline.
  output_matrix request(const Mat& a, const Mat& b, const Mat& m,
                        const MaskedOptions& opts = {}) {
    const PlanKey key = plan_fingerprint(a, b, m, opts);
    // Gather payload: operand arrays are referenced in place (a/b/m outlive
    // the call) and re-sent as-is on failover.
    GatherPayload payload;
    encode_request_parts(payload, a, b, m, opts);
    const std::uint64_t rid =
        next_rid_.fetch_add(1, std::memory_order_relaxed);

    std::vector<char> skip = down_snapshot();
    for (;;) {
      const int shard = ring_.pick(ring_point(key), skip);
      if (shard < 0) {
        throw TransportError("ShardRouter: no shard could serve the request");
      }
      const auto i = static_cast<std::size_t>(shard);
      WireResponse<IT, typename SR::value_type> resp;
      try {
        const auto reply =
            exchange(i, MessageType::kRequest, rid, payload);
        resp = decode_response<IT, typename SR::value_type>(reply);
      } catch (const TransportError&) {
        mark_down(i);
        skip[i] = 1;
        count_failover(/*overload=*/false);
        continue;
      } catch (const WireError&) {
        // Garbled reply: treat the shard as unhealthy, reroute.
        mark_down(i);
        skip[i] = 1;
        count_failover(/*overload=*/false);
        continue;
      }
      switch (resp.status) {
        case WireStatus::kOk: {
          MutexLock lock(&stats_mu_);
          ++routed_[i];
          record_ewma_locked(ewma_nanos_[i], resp.exec_nanos);
          return std::move(resp.result);
        }
        case WireStatus::kOverloaded:
          // Back-pressure: this one request spills over; affinity for the
          // structure is unchanged (the shard stays up on the ring).
          skip[i] = 1;
          count_failover(/*overload=*/true);
          continue;
        case WireStatus::kBadRequest:
          throw std::invalid_argument(resp.message);
        case WireStatus::kInternalError:
          throw std::runtime_error(resp.message);
        case WireStatus::kStaleStructure:
          // The blocking router ships full operands per request and never
          // registers structures, so a shard cannot see a stale version
          // here; surface it as a protocol violation if one ever arrives.
          throw WireError("wire: stale-structure status on a stateless "
                          "request");
      }
      throw WireError("wire: unhandled response status");
    }
  }

  // The shard the ring currently assigns this request to (no I/O) — the
  // affinity probe the tests and the demo report on.
  int route(const Mat& a, const Mat& b, const Mat& m,
            const MaskedOptions& opts = {}) const {
    return ring_.pick(ring_point(plan_fingerprint(a, b, m, opts)),
                      down_snapshot());
  }

  // Reads a shard's counters over the wire (kStatsRequest).
  ServiceStats shard_stats(std::size_t shard) {
    check_arg(shard < endpoints_.size(), "ShardRouter: shard out of range");
    const std::uint64_t rid =
        next_rid_.fetch_add(1, std::memory_order_relaxed);
    GatherPayload empty;
    const auto reply = exchange(shard, MessageType::kStatsRequest, rid, empty);
    return decode_stats(reply);
  }

  void mark_down(std::size_t shard) {
    check_arg(shard < endpoints_.size(), "ShardRouter: shard out of range");
    MutexLock lock(&stats_mu_);
    if (!down_[shard]) {
      down_[shard] = 1;
      ++down_marks_;
    }
    // Pooled connections to a down shard are stale; drop them so mark_up
    // starts fresh. Nests kRouter -> kConnectionPool (the legal order).
    pools_[shard].clear();
  }

  void mark_up(std::size_t shard) {
    check_arg(shard < endpoints_.size(), "ShardRouter: shard out of range");
    MutexLock lock(&stats_mu_);
    down_[shard] = 0;
  }

  bool is_down(std::size_t shard) const {
    MutexLock lock(&stats_mu_);
    return down_[shard] != 0;
  }

  RouterStats stats() const {
    MutexLock lock(&stats_mu_);
    RouterStats out;
    out.routed = routed_;
    out.ewma_nanos = ewma_nanos_;
    out.failovers = failovers_;
    out.overload_reroutes = overload_reroutes_;
    out.down_marks = down_marks_;
    out.probes = probes_;
    out.rejoins = rejoins_;
    return out;
  }

  // One probing round over every down shard: dial fresh, exchange a
  // kStatsRequest, mark_up on success. Public so tests (and deployments
  // that schedule probing themselves) can drive it without the background
  // thread. Returns the number of shards brought back up.
  std::size_t probe_down_shards() {
    std::size_t rejoined = 0;
    for (std::size_t i = 0; i < endpoints_.size(); ++i) {
      if (!is_down(i)) continue;
      {
        MutexLock lock(&stats_mu_);
        ++probes_;
      }
      if (!probe_endpoint(endpoints_[i]).has_value()) continue;
      mark_up(i);
      ++rejoined;
      MutexLock lock(&stats_mu_);
      ++rejoins_;
    }
    return rejoined;
  }

  std::size_t num_shards() const { return endpoints_.size(); }
  const std::string& shard_name(std::size_t i) const {
    return endpoints_[i].name;
  }

 private:
  // Idle connections to one shard. Self-locking methods rather than exposed
  // mutex + vector: callers would have to name pools_[shard].mu in capability
  // expressions, which the analysis matches only syntactically.
  class ConnPool {
   public:
    std::unique_ptr<Stream> try_pop() {
      MutexLock lock(&mu_);
      if (idle_.empty()) return nullptr;
      auto s = std::move(idle_.back());
      idle_.pop_back();
      return s;
    }
    void push(std::unique_ptr<Stream> s) {
      MutexLock lock(&mu_);
      idle_.push_back(std::move(s));
    }
    void clear() {
      MutexLock lock(&mu_);
      idle_.clear();
    }

   private:
    Mutex mu_{LockRank::kConnectionPool, "ShardRouter::ConnPool::mu_"};
    std::vector<std::unique_ptr<Stream>> idle_ MSX_GUARDED_BY(mu_);
  };

  std::vector<char> down_snapshot() const {
    MutexLock lock(&stats_mu_);
    return down_;
  }

  void count_failover(bool overload) {
    MutexLock lock(&stats_mu_);
    if (overload) {
      ++overload_reroutes_;
    } else {
      ++failovers_;
    }
  }

  // One request/response exchange on a pooled connection. The connection is
  // returned to the pool only after a clean exchange; any failure discards
  // it (its stream state is unknown) and rethrows for the failover path.
  std::vector<std::uint8_t> exchange(std::size_t shard, MessageType type,
                                     std::uint64_t rid,
                                     GatherPayload& payload) {
    auto stream = checkout(shard);
    FrameHeader header;
    std::vector<std::uint8_t> reply;
    send_frame_parts(*stream, type, rid, payload);
    if (!recv_frame(*stream, header, reply)) {
      throw TransportError("ShardRouter: shard closed the connection");
    }
    if (header.request_id != rid) {
      throw WireError("wire: response id mismatch");
    }
    const MessageType want = type == MessageType::kStatsRequest
                                 ? MessageType::kStatsResponse
                                 : MessageType::kResponse;
    if (header.type != want) {
      throw WireError("wire: unexpected response type");
    }
    checkin(shard, std::move(stream));
    return reply;
  }

  std::unique_ptr<Stream> checkout(std::size_t shard) {
    if (auto s = pools_[shard].try_pop()) return s;
    auto s = endpoints_[shard].connect();
    if (s == nullptr) {
      throw TransportError("ShardRouter: dial failed: " +
                           endpoints_[shard].name);
    }
    return s;
  }

  void checkin(std::size_t shard, std::unique_ptr<Stream> s) {
    pools_[shard].push(std::move(s));
  }

  // Sleep an interval under the lock, probe outside it. (A spurious wakeup
  // probes early, which is harmless — probing is idempotent.)
  void probe_loop() {
    for (;;) {
      {
        MutexLock lock(&stats_mu_);
        if (stopping_) return;
        probe_cv_.wait_for(stats_mu_, cfg_.probe_interval);
        if (stopping_) return;
      }
      probe_down_shards();
    }
  }

  std::vector<ShardEndpoint> endpoints_;
  RouterConfig cfg_;
  ConsistentHashRing ring_;
  mutable Mutex stats_mu_{LockRank::kRouter, "ShardRouter::stats_mu_"};
  std::vector<char> down_ MSX_GUARDED_BY(stats_mu_);
  std::vector<std::uint64_t> routed_ MSX_GUARDED_BY(stats_mu_);
  std::vector<double> ewma_nanos_ MSX_GUARDED_BY(stats_mu_);
  std::uint64_t failovers_ MSX_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t overload_reroutes_ MSX_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t down_marks_ MSX_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t probes_ MSX_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t rejoins_ MSX_GUARDED_BY(stats_mu_) = 0;
  bool stopping_ MSX_GUARDED_BY(stats_mu_) = false;
  CondVar probe_cv_;
  std::vector<ConnPool> pools_;
  std::atomic<std::uint64_t> next_rid_{1};
  std::thread prober_;
};

}  // namespace msx::service
