// Pluggable byte transports for the service layer (ISSUE 4 tentpole).
//
// Shard and router speak frames over a Stream — a blocking, bidirectional
// byte pipe. Three implementations:
//
//   * loopback — an in-process pair of bounded byte queues. Deterministic,
//     no file descriptors, no ports: the transport the tests and the bench
//     run on, and a real deployment option for co-located shards.
//   * Unix domain sockets — same-host cross-process deployment.
//   * TCP — cross-host deployment (IPv4; host "127.0.0.1" for local use).
//
// A Listener accepts Streams; LoopbackListener doubles as its own dialer
// (connect() hands back the client end of a fresh pair). Frame send/recv on
// top of a Stream lives here too, so every transport shares one framing
// path: header, checksum verification, truncation handling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "service/wire.hpp"

namespace msx::service {

// Connection-level failures: peer gone, listener closed, dial refused.
// Distinct from WireError (malformed bytes on an otherwise healthy pipe) so
// the router can mark a shard down on the former and fail the one request on
// the latter.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Blocking bidirectional byte pipe. Thread-compatible: one reader plus one
// writer may use a Stream concurrently; shutdown() may be called from any
// thread and wakes both.
class Stream {
 public:
  virtual ~Stream() = default;
  // Writes the whole buffer; throws TransportError when the pipe is closed.
  virtual void write_all(const void* data, std::size_t len) = 0;
  // Writes every span in order (scatter-gather). Socket streams override
  // this with sendmsg/writev so a whole frame — header plus each operand
  // array — leaves in one syscall without being coalesced into a single
  // buffer first; the default writes part by part.
  virtual void write_parts(std::span<const std::span<const std::uint8_t>> parts) {
    for (const auto& part : parts) {
      if (!part.empty()) write_all(part.data(), part.size());
    }
  }
  // Reads 1..len bytes, blocking until data or EOF; returns 0 on EOF.
  virtual std::size_t read_some(void* data, std::size_t len) = 0;
  // Closes both directions; blocked readers see EOF, writers TransportError.
  virtual void shutdown() = 0;
};

// Fills `len` bytes; returns false on clean EOF at offset 0 and throws
// WireError on EOF mid-buffer (a truncated frame).
bool read_exact(Stream& s, void* data, std::size_t len);

class Listener {
 public:
  virtual ~Listener() = default;
  // Blocks for the next connection; nullptr once close()d.
  virtual std::unique_ptr<Stream> accept() = 0;
  virtual void close() = 0;
  virtual std::string address() const = 0;
};

// --- loopback --------------------------------------------------------------

// Two ends of an in-process pipe. Each direction is a bounded byte queue
// (capacity_bytes), so a flooded receiver back-pressures the sender exactly
// like a socket send buffer would. Dropping either end EOFs the peer.
std::pair<std::unique_ptr<Stream>, std::unique_ptr<Stream>> loopback_pair(
    std::size_t capacity_bytes = 1 << 20);

class LoopbackListener final : public Listener {
 public:
  explicit LoopbackListener(std::size_t capacity_bytes = 1 << 20);
  ~LoopbackListener() override;

  // Client side: creates a fresh pair, queues the server end for accept().
  // Throws TransportError after close().
  std::unique_ptr<Stream> connect();

  std::unique_ptr<Stream> accept() override;
  void close() override;
  std::string address() const override { return "loopback"; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// --- sockets ---------------------------------------------------------------

// Unix domain sockets (an existing socket file at `path` is replaced).
std::unique_ptr<Listener> listen_unix(const std::string& path);
std::unique_ptr<Stream> connect_unix(const std::string& path);

// TCP over IPv4. Port 0 binds an ephemeral port; the Listener's address()
// reports the bound "host:port".
std::unique_ptr<Listener> listen_tcp(const std::string& host, int port);
std::unique_ptr<Stream> connect_tcp(const std::string& host, int port);

// --- framing over a Stream -------------------------------------------------

void send_frame(Stream& s, MessageType type, std::uint64_t request_id,
                std::span<const std::uint8_t> payload);

// Scatter-gather send: checksums the parts in place (plan_hash_parts) and
// hands header + parts to Stream::write_parts as one batch. Wire-identical
// to send_frame over the flattened payload.
void send_frame_parts(Stream& s, MessageType type, std::uint64_t request_id,
                      GatherPayload& payload);

// Receives one frame. Returns false on clean EOF between frames; throws
// WireError on a malformed/truncated/corrupt frame and TransportError on
// connection failure. The payload is checksum-verified before returning.
bool recv_frame(Stream& s, FrameHeader& header,
                std::vector<std::uint8_t>& payload);

}  // namespace msx::service
