// Wire protocol for the sharded masked-SpGEMM service (ISSUE 4 tentpole).
//
// A compact binary format carrying CSR operands, MaskedOptions and results
// between a ShardRouter client and a ServiceShard server. Every message is a
// frame:
//
//   [magic u32][version u16][type u16][request_id u64][payload_len u64]
//   [checksum u64]  — 32-byte header, then payload_len payload bytes.
//
// The checksum is plan_hash_bytes over the payload (the same streaming hash
// the PlanCache fingerprint uses), so a corrupt or truncated frame is
// rejected before any of it is interpreted. The payload encodes scalars
// little-endian and arrays as raw element bytes; element types are tagged
// (index width + value code) and verified at decode, so a client and server
// built with different instantiations fail loudly instead of misreading.
//
// Aliasing is first-class: a request stores each distinct operand once and
// flags B==A / M==A / M==B, which keeps k-truss-style traffic small on the
// wire AND reproduces the exact aliasing the PlanCache fingerprint keys on —
// the router and the shard compute identical PlanKeys for a request, which
// is what makes fingerprint-affinity routing line up with warm cache hits.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/delta.hpp"
#include "core/options.hpp"
#include "matrix/csr.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/thread_pool.hpp"  // Priority (submit frames carry it)

namespace msx::service {

// Malformed traffic: bad magic/version, checksum mismatch, truncated
// payload, unknown enum value, element-type mismatch.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class MessageType : std::uint16_t {
  kRequest = 1,        // masked product request carrying every operand
  kResponse = 2,       // result (or error status)
  kStatsRequest = 3,   // shard stats probe (affinity accounting)
  kStatsResponse = 4,  // ServiceStats payload
  // Session protocol (wire v2, async client): a connection registers its
  // stationary operands once and then pipelines many products that reference
  // them by id — the stationary B (and optionally M) crosses the wire and is
  // hashed exactly once per connection instead of once per product.
  kRegisterRequest = 5,    // install {B[, M]} under a client-chosen id
  kSubmitRequest = 6,      // product against a registered structure
  kUnregisterRequest = 7,  // drop a registered structure
  // Streaming protocol (wire v3): mutate a registered structure in place by
  // shipping the edge delta — not the patched matrix — and a new version
  // number. One-way like register/unregister (FIFO frame ordering makes a
  // submit behind an update see the new version).
  kUpdateRequest = 8,
  // Observability protocol (wire v5): pull a shard's metrics registry as
  // Prometheus text exposition. Request carries no payload; the response
  // payload is one length-prefixed string.
  kMetricsRequest = 9,
  kMetricsResponse = 10,
};

enum class WireStatus : std::uint32_t {
  kOk = 0,
  kOverloaded = 1,     // admission control rejected the job (back-pressure)
  kBadRequest = 2,     // validation failed (shapes, unsupported combo, ...)
  kInternalError = 3,  // anything else thrown while serving
  // v3: the submit named a structure version that has been superseded by an
  // update. Typed and retryable — resubmit against the current handle; never
  // answered with a stale (wrong) result.
  kStaleStructure = 4,
};

const char* to_string(MessageType t);
const char* to_string(WireStatus s);

inline constexpr std::uint32_t kWireMagic = 0x4D535857u;  // "WXSM" on the wire
// v2 added the session message types (kRegisterRequest/kSubmitRequest/
// kUnregisterRequest) behind the same frame layout. v3 adds kUpdateRequest
// plus a version field on register/submit payloads (streaming structures)
// and the kStaleStructure status. v4 (distributed 2D products) aligns every
// array's elements to an 8-byte payload offset so receivers can hand out
// spans over the payload instead of copying arrays out, carries the shard's
// execute time on every response (load-aware routing), and adds the
// kSubMaskRows row window so a panel task can run against a row slice of the
// registered mask. v5 (observability) adds the optional kSubTraced
// trace-context triple on submits, splits the response timing into
// exec/queue/run nanoseconds, and adds kMetricsRequest/kMetricsResponse
// (Prometheus text pull). The 32-byte header layout has never changed, so a
// mismatched peer is parsed far enough to reject it loudly on its own
// request id (WireVersionError) instead of hanging.
inline constexpr std::uint16_t kWireVersion = 5;
inline constexpr std::size_t kFrameHeaderBytes = 32;
// Upper bound on a single payload; a corrupt length field must not turn into
// a multi-gigabyte allocation.
inline constexpr std::uint64_t kMaxPayloadBytes = 1ull << 31;
inline constexpr std::uint64_t kWireChecksumSeed = 0x6d73782d77697265ull;

// A structurally valid frame from a peer speaking another protocol version.
// Carries the peer's version and request id so a server can answer with a
// clean versioned error on the same id instead of silently dropping the
// connection (the v2↔v3 compatibility contract).
class WireVersionError : public WireError {
 public:
  WireVersionError(std::uint16_t peer_version, std::uint64_t request_id)
      : WireError("wire: unsupported version " + std::to_string(peer_version) +
                  " (this peer speaks version " +
                  std::to_string(kWireVersion) + ")"),
        peer_version_(peer_version),
        request_id_(request_id) {}

  std::uint16_t peer_version() const { return peer_version_; }
  std::uint64_t request_id() const { return request_id_; }

 private:
  std::uint16_t peer_version_;
  std::uint64_t request_id_;
};

struct FrameHeader {
  std::uint16_t version = kWireVersion;
  MessageType type = MessageType::kRequest;
  std::uint64_t request_id = 0;
  std::uint64_t payload_len = 0;
  std::uint64_t checksum = 0;
};

// Header bytes for a frame carrying `payload` (checksum computed here).
std::vector<std::uint8_t> encode_frame_header(MessageType type,
                                              std::uint64_t request_id,
                                              std::span<const std::uint8_t> payload);

// Header bytes for a payload whose length and checksum were computed
// elsewhere — the scatter-gather writer checksums its parts in place
// (plan_hash_parts) instead of materializing the payload.
std::vector<std::uint8_t> encode_frame_header_raw(MessageType type,
                                                  std::uint64_t request_id,
                                                  std::uint64_t payload_len,
                                                  std::uint64_t checksum);

// Parses and validates magic/version/length bounds; throws WireError.
FrameHeader decode_frame_header(std::span<const std::uint8_t> bytes);

// Throws WireError when the payload does not hash to the header's checksum.
void verify_payload(const FrameHeader& header,
                    std::span<const std::uint8_t> payload);

// --- scalar/array encoding -------------------------------------------------

static_assert(std::endian::native == std::endian::little,
              "wire format is little-endian; add byte-swapping for BE hosts");

// v4: array elements start at an 8-byte offset from the payload start
// (deterministic zero padding after the length prefix, emitted identically
// by WireWriter and GatherPayload and skipped by WireReader). Receive
// payloads land in fresh allocations (>= 16-byte aligned), so an 8-aligned
// offset makes every element pointer valid for direct reinterpretation —
// the zero-copy receive path (get_array_view / read_csr_view) depends on it.
inline constexpr std::size_t kWireArrayAlign = 8;

inline constexpr std::size_t wire_align_pad(std::size_t offset) {
  return (kWireArrayAlign - offset % kWireArrayAlign) % kWireArrayAlign;
}

class WireWriter {
 public:
  void put_u8(std::uint8_t v) { put_raw(&v, 1); }
  void put_u16(std::uint16_t v) { put_raw(&v, 2); }
  void put_u32(std::uint32_t v) { put_raw(&v, 4); }
  void put_u64(std::uint64_t v) { put_raw(&v, 8); }
  void put_i32(std::int32_t v) { put_raw(&v, 4); }
  void put_i64(std::int64_t v) { put_raw(&v, 8); }

  void put_string(const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    put_raw(s.data(), s.size());
  }

  // Raw element bytes of a trivially copyable span, elements padded to an
  // 8-byte payload offset (valid only when this writer builds the payload
  // from offset zero, which every encoder here does).
  template <class T>
  void put_array(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put_u64(static_cast<std::uint64_t>(v.size()));
    buf_.resize(buf_.size() + wire_align_pad(buf_.size()), 0);
    put_raw(v.data(), v.size_bytes());
  }

  std::span<const std::uint8_t> bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void put_raw(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }
  std::vector<std::uint8_t> buf_;
};

// Bounds-checked reader over a payload; any overrun throws WireError, which
// is how a truncated payload surfaces no matter where the cut landed.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t get_u8() { return get_scalar<std::uint8_t>(); }
  std::uint16_t get_u16() { return get_scalar<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_scalar<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_scalar<std::uint64_t>(); }
  std::int32_t get_i32() { return get_scalar<std::int32_t>(); }
  std::int64_t get_i64() { return get_scalar<std::int64_t>(); }

  std::string get_string() {
    const std::uint32_t n = get_u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  template <class T>
  std::vector<T> get_array() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = array_header<T>();
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n > 0) {
      std::memcpy(v.data(), bytes_.data() + pos_, v.size() * sizeof(T));
      pos_ += v.size() * sizeof(T);
    }
    return v;
  }

  // Zero-copy form: a span over the payload bytes themselves (v4 aligns the
  // elements, so the reinterpretation is valid whenever the payload buffer
  // is at least 8-byte aligned — a fresh vector allocation always is). The
  // span aliases the payload; the caller keeps the buffer alive.
  template <class T>
  std::span<const T> get_array_view() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = array_header<T>();
    const auto* p = bytes_.data() + pos_;
    if (reinterpret_cast<std::uintptr_t>(p) % alignof(T) != 0) {
      throw WireError("wire: misaligned array view");
    }
    pos_ += static_cast<std::size_t>(n) * sizeof(T);
    return std::span<const T>(reinterpret_cast<const T*>(p),
                              static_cast<std::size_t>(n));
  }

  bool exhausted() const { return pos_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  template <class T>
  T get_scalar() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  // Length prefix + alignment skip shared by the copying and view readers;
  // leaves pos_ at the first element byte with the whole array bounds-checked.
  template <class T>
  std::uint64_t array_header() {
    const std::uint64_t n = get_u64();
    const std::size_t pad = wire_align_pad(pos_);
    need(pad);
    pos_ += pad;
    if (n > bytes_.size() / sizeof(T)) {
      throw WireError("wire: array length exceeds payload");
    }
    need(static_cast<std::size_t>(n) * sizeof(T));
    return n;
  }
  void need(std::size_t n) {
    if (remaining() < n) throw WireError("wire: truncated payload");
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// --- scatter-gather payloads -----------------------------------------------

// A payload described as an ordered list of byte spans instead of one
// contiguous buffer: small metadata runs (flags, options, dims, array length
// prefixes) are owned by the payload, while large arrays (rowptr / colidx /
// values) stay where they live and are referenced in place. A socket
// transport sends the whole frame as one writev/sendmsg batch, which drops
// the payload-assembly copy that dominates the send side for large operands.
// The referenced arrays must stay alive and unchanged until the frame is
// written. The receive side is unaffected: it still reads one contiguous
// payload and verifies one checksum (plan_hash_parts == plan_hash_bytes over
// the concatenation).
class GatherPayload {
 public:
  // Metadata writer for small scalars; its bytes are spliced (in order)
  // between the referenced spans.
  void put_u8(std::uint8_t v) { meta_.put_u8(v); }
  void put_u32(std::uint32_t v) { meta_.put_u32(v); }
  void put_u64(std::uint64_t v) { meta_.put_u64(v); }
  void put_i32(std::int32_t v) { meta_.put_i32(v); }

  // References `bytes` in place as the next run of the payload.
  void add_span(std::span<const std::uint8_t> bytes) {
    flush_meta();
    if (!bytes.empty()) {
      parts_.push_back(bytes);
      total_ += bytes.size();
    }
  }

  // Length-prefixed array, the prefix in metadata and the elements in place —
  // the wire image is identical to WireWriter::put_array, including the v4
  // alignment padding (offset = flushed parts + unflushed metadata).
  template <class T>
  void add_array(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put_u64(static_cast<std::uint64_t>(v.size()));
    const std::size_t pad = wire_align_pad(total_ + meta_.bytes().size());
    for (std::size_t i = 0; i < pad; ++i) put_u8(0);
    add_span(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(v.data()), v.size_bytes()));
  }

  // The ordered spans (trailing metadata flushed). The returned spans alias
  // this object and the referenced arrays.
  std::span<const std::span<const std::uint8_t>> parts() {
    flush_meta();
    return parts_;
  }

  std::size_t total_bytes() {
    flush_meta();
    return total_;
  }

  // Contiguous copy of the payload — the compatibility path for transports
  // and tests that want one buffer.
  std::vector<std::uint8_t> flatten() {
    std::vector<std::uint8_t> out;
    out.reserve(total_bytes());
    for (const auto& part : parts()) {
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

 private:
  void flush_meta() {
    if (meta_.bytes().empty()) return;
    owned_.push_back(meta_.take());
    meta_ = WireWriter();  // moved-from writer state is unspecified; reset
    parts_.push_back(std::span<const std::uint8_t>(owned_.back()));
    total_ += owned_.back().size();
  }

  WireWriter meta_;
  // Vector-of-vectors: the heap buffers spans point into are stable under
  // push_back even though the vector objects move.
  std::vector<std::vector<std::uint8_t>> owned_;
  std::vector<std::span<const std::uint8_t>> parts_;
  std::size_t total_ = 0;
};

// --- element type tags -----------------------------------------------------

template <class T>
struct WireValueCode;  // deliberately undefined for unsupported types
template <>
struct WireValueCode<double> { static constexpr std::uint8_t value = 1; };
template <>
struct WireValueCode<float> { static constexpr std::uint8_t value = 2; };
template <>
struct WireValueCode<std::int32_t> { static constexpr std::uint8_t value = 3; };
template <>
struct WireValueCode<std::int64_t> { static constexpr std::uint8_t value = 4; };
template <>
struct WireValueCode<std::uint32_t> { static constexpr std::uint8_t value = 5; };
template <>
struct WireValueCode<std::uint64_t> { static constexpr std::uint8_t value = 6; };

// --- matrices --------------------------------------------------------------

template <class IT, class VT>
void write_csr(WireWriter& w, const CSRMatrix<IT, VT>& m) {
  w.put_u8(static_cast<std::uint8_t>(sizeof(IT)));
  w.put_u8(WireValueCode<VT>::value);
  w.put_u64(static_cast<std::uint64_t>(m.nrows()));
  w.put_u64(static_cast<std::uint64_t>(m.ncols()));
  w.put_array(m.rowptr());
  w.put_array(m.colidx());
  w.put_array(m.values());
}

template <class IT, class VT>
CSRMatrix<IT, VT> read_csr(WireReader& r) {
  if (r.get_u8() != sizeof(IT)) throw WireError("wire: index width mismatch");
  if (r.get_u8() != WireValueCode<VT>::value) {
    throw WireError("wire: value type mismatch");
  }
  const std::uint64_t nrows = r.get_u64();
  const std::uint64_t ncols = r.get_u64();
  auto rowptr = r.get_array<IT>();
  auto colidx = r.get_array<IT>();
  auto values = r.get_array<VT>();
  CSRMatrix<IT, VT> m;
  try {
    m = CSRMatrix<IT, VT>(static_cast<IT>(nrows), static_cast<IT>(ncols),
                          std::move(rowptr), std::move(colidx),
                          std::move(values));
  } catch (const std::invalid_argument& e) {
    throw WireError(std::string("wire: inconsistent CSR arrays: ") + e.what());
  }
  std::string why;
  if (!m.validate(&why)) {
    throw WireError("wire: CSR invariant violated: " + why);
  }
  return m;
}

// Same wire image as write_csr, but the three arrays are referenced in place
// (scatter-gather) instead of copied into the payload.
template <class IT, class VT>
void write_csr_parts(GatherPayload& g, const CSRMatrix<IT, VT>& m) {
  g.put_u8(static_cast<std::uint8_t>(sizeof(IT)));
  g.put_u8(WireValueCode<VT>::value);
  g.put_u64(static_cast<std::uint64_t>(m.nrows()));
  g.put_u64(static_cast<std::uint64_t>(m.ncols()));
  g.add_array(m.rowptr());
  g.add_array(m.colidx());
  g.add_array(m.values());
}

// A CSR result viewed in place over the receive payload (v4 zero-copy): the
// spans alias the payload buffer, which must outlive them. The row pointer
// is validated (monotone, consistent with the array lengths) because
// downstream merging indexes the element spans through it; per-entry column
// checks are left to the consumer, who walks every entry anyway.
template <class IT, class VT>
struct CSRView {
  IT nrows = 0;
  IT ncols = 0;
  std::span<const IT> rowptr;
  std::span<const IT> colidx;
  std::span<const VT> values;
};

template <class IT, class VT>
CSRView<IT, VT> read_csr_view(WireReader& r) {
  if (r.get_u8() != sizeof(IT)) throw WireError("wire: index width mismatch");
  if (r.get_u8() != WireValueCode<VT>::value) {
    throw WireError("wire: value type mismatch");
  }
  CSRView<IT, VT> v;
  v.nrows = static_cast<IT>(r.get_u64());
  v.ncols = static_cast<IT>(r.get_u64());
  v.rowptr = r.get_array_view<IT>();
  v.colidx = r.get_array_view<IT>();
  v.values = r.get_array_view<VT>();
  if (v.rowptr.size() != static_cast<std::size_t>(v.nrows) + 1 ||
      v.rowptr.front() != IT{0} ||
      static_cast<std::size_t>(v.rowptr.back()) != v.colidx.size() ||
      v.colidx.size() != v.values.size()) {
    throw WireError("wire: inconsistent CSR arrays");
  }
  for (std::size_t i = 0; i + 1 < v.rowptr.size(); ++i) {
    if (v.rowptr[i] > v.rowptr[i + 1]) {
      throw WireError("wire: CSR rowptr not monotone");
    }
  }
  return v;
}

// --- options ---------------------------------------------------------------

// Templated over the writer so the contiguous (WireWriter) and gather
// (GatherPayload) paths emit identical bytes from one definition.
template <class Writer>
void write_options(Writer& w, const MaskedOptions& opts) {
  w.put_u32(static_cast<std::uint32_t>(opts.algo));
  w.put_u32(static_cast<std::uint32_t>(opts.phases));
  w.put_u32(static_cast<std::uint32_t>(opts.kind));
  w.put_u32(static_cast<std::uint32_t>(opts.schedule));
  w.put_u32(static_cast<std::uint32_t>(opts.cost_model));
  w.put_i32(opts.threads);
  w.put_i32(opts.chunk);
  w.put_u64(static_cast<std::uint64_t>(opts.heap_ninspect));
  w.put_u8(opts.inner_gallop ? 1 : 0);
}

// Range-checks every enum; throws WireError on values this version does not
// know (a frame from a newer peer must not be silently misinterpreted).
MaskedOptions read_options(WireReader& r);

// --- request ---------------------------------------------------------------

// A decoded request. Aliased operands are stored once; b()/mask() resolve
// the aliases so the shard can hand the executor the same object identity
// the client expressed (identical PlanCache fingerprints on both sides).
template <class IT, class VT>
struct WireRequest {
  MaskedOptions opts;
  bool b_is_a = false;
  bool m_is_a = false;
  bool m_is_b = false;
  CSRMatrix<IT, VT> a;
  CSRMatrix<IT, VT> b_storage;  // empty when b_is_a
  CSRMatrix<IT, VT> m_storage;  // empty when m_is_a || m_is_b

  const CSRMatrix<IT, VT>& b() const { return b_is_a ? a : b_storage; }
  const CSRMatrix<IT, VT>& mask() const {
    if (m_is_a) return a;
    if (m_is_b) return b();
    return m_storage;
  }

  PlanKey fingerprint() const {
    return plan_fingerprint(a, b(), mask(), opts);
  }
};

inline constexpr std::uint8_t kAliasBIsA = 1;
inline constexpr std::uint8_t kAliasMIsA = 2;
inline constexpr std::uint8_t kAliasMIsB = 4;

// Builds a request payload as gather parts (operand arrays referenced in
// place; they must outlive the send). Aliases are detected by address,
// exactly like masked_plan / BatchExecutor::submit.
template <class IT, class VT>
void encode_request_parts(GatherPayload& g, const CSRMatrix<IT, VT>& a,
                          const CSRMatrix<IT, VT>& b,
                          const CSRMatrix<IT, VT>& m,
                          const MaskedOptions& opts) {
  const bool b_is_a = static_cast<const void*>(&b) == static_cast<const void*>(&a);
  const bool m_is_a = static_cast<const void*>(&m) == static_cast<const void*>(&a);
  const bool m_is_b =
      !m_is_a && static_cast<const void*>(&m) == static_cast<const void*>(&b);
  std::uint8_t flags = 0;
  if (b_is_a) flags |= kAliasBIsA;
  if (m_is_a) flags |= kAliasMIsA;
  if (m_is_b) flags |= kAliasMIsB;
  g.put_u8(flags);
  write_options(g, opts);
  write_csr_parts(g, a);
  if (!b_is_a) write_csr_parts(g, b);
  if (!m_is_a && !m_is_b) write_csr_parts(g, m);
}

// Contiguous form of encode_request_parts (tests, non-gather callers).
template <class IT, class VT>
std::vector<std::uint8_t> encode_request(const CSRMatrix<IT, VT>& a,
                                         const CSRMatrix<IT, VT>& b,
                                         const CSRMatrix<IT, VT>& m,
                                         const MaskedOptions& opts) {
  GatherPayload g;
  encode_request_parts(g, a, b, m, opts);
  return g.flatten();
}

template <class IT, class VT>
WireRequest<IT, VT> decode_request(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  WireRequest<IT, VT> req;
  const std::uint8_t flags = r.get_u8();
  if ((flags & ~(kAliasBIsA | kAliasMIsA | kAliasMIsB)) != 0) {
    throw WireError("wire: unknown alias flags");
  }
  req.b_is_a = (flags & kAliasBIsA) != 0;
  req.m_is_a = (flags & kAliasMIsA) != 0;
  req.m_is_b = (flags & kAliasMIsB) != 0;
  if (req.m_is_a && req.m_is_b) throw WireError("wire: contradictory aliases");
  req.opts = read_options(r);
  req.a = read_csr<IT, VT>(r);
  if (!req.b_is_a) req.b_storage = read_csr<IT, VT>(r);
  if (!req.m_is_a && !req.m_is_b) req.m_storage = read_csr<IT, VT>(r);
  if (!r.exhausted()) throw WireError("wire: trailing bytes in request");
  return req;
}

// --- session protocol (wire v2) --------------------------------------------
//
// A connection-scoped structure registry: kRegisterRequest installs the
// stationary operands {B[, M]} under a client-chosen id, kSubmitRequest then
// references them by id and ships only what varies per product (typically a
// small A and/or mask). Registrations live exactly as long as the
// connection, so a reconnect implies re-registration and a dropped client
// can never leak server memory. Register/unregister are one-way (no
// response): frames on a connection are processed in order, so a submit
// behind a register is guaranteed to find it, and a malformed registration
// tears the connection down like any other malformed frame.

inline constexpr std::uint8_t kRegHasMask = 1;  // {B, M} registered together
inline constexpr std::uint8_t kRegMaskIsB = 2;  // registered M aliases B

// Submit flags: where A and the mask come from. Exactly one mask source must
// hold (inline mask when none of the M bits is set).
inline constexpr std::uint8_t kSubAIsB = 1;         // A aliases registered B
inline constexpr std::uint8_t kSubMIsA = 2;         // mask aliases A
inline constexpr std::uint8_t kSubMIsB = 4;         // mask aliases registered B
inline constexpr std::uint8_t kSubMRegistered = 8;  // mask = registered M
inline constexpr std::uint8_t kSubInteractive = 16; // Priority::kInteractive
// v4 (2D panel tasks): the mask is rows [mask_r0, mask_r1) of the registered
// M, rebased to row 0 — the row window matching an inlined A row panel.
// Requires kSubMRegistered; the payload gains two u64s after the flag byte.
inline constexpr std::uint8_t kSubMaskRows = 32;
// v5 (observability): the submit carries its request trace context — the
// 128-bit trace id and the client-side parent span id — as three u64s after
// the mask row window. The shard parents its spans under it so one product
// yields a single merged timeline across client and shards.
inline constexpr std::uint8_t kSubTraced = 64;

template <class IT, class VT>
struct WireRegister {
  std::uint64_t structure_id = 0;
  std::uint64_t version = 1;  // v3: structure version installed with the body
  bool has_mask = false;
  bool mask_is_b = false;
  CSRMatrix<IT, VT> b;
  CSRMatrix<IT, VT> m_storage;  // valid when has_mask && !mask_is_b
};

// `version` lets a failover re-registration install the structure at its
// current (post-update) version so queued submits keep matching.
template <class IT, class VT>
void encode_register_parts(GatherPayload& g, std::uint64_t structure_id,
                           std::uint64_t version, const CSRMatrix<IT, VT>& b,
                           const CSRMatrix<IT, VT>* m) {
  const bool mask_is_b =
      m != nullptr && static_cast<const void*>(m) == static_cast<const void*>(&b);
  std::uint8_t flags = 0;
  if (m != nullptr) flags |= kRegHasMask;
  if (mask_is_b) flags |= kRegMaskIsB;
  g.put_u64(structure_id);
  g.put_u64(version);
  g.put_u8(flags);
  write_csr_parts(g, b);
  if (m != nullptr && !mask_is_b) write_csr_parts(g, *m);
}

template <class IT, class VT>
WireRegister<IT, VT> decode_register(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  WireRegister<IT, VT> reg;
  reg.structure_id = r.get_u64();
  reg.version = r.get_u64();
  const std::uint8_t flags = r.get_u8();
  if ((flags & ~(kRegHasMask | kRegMaskIsB)) != 0) {
    throw WireError("wire: unknown register flags");
  }
  reg.has_mask = (flags & kRegHasMask) != 0;
  reg.mask_is_b = (flags & kRegMaskIsB) != 0;
  if (reg.mask_is_b && !reg.has_mask) {
    throw WireError("wire: contradictory register flags");
  }
  reg.b = read_csr<IT, VT>(r);
  if (reg.has_mask && !reg.mask_is_b) reg.m_storage = read_csr<IT, VT>(r);
  if (!r.exhausted()) throw WireError("wire: trailing bytes in register");
  return reg;
}

template <class IT, class VT>
struct WireSubmit {
  std::uint64_t structure_id = 0;
  std::uint64_t version = 1;  // v3: the structure version this submit targets
  bool a_is_b = false;
  bool m_is_a = false;
  bool m_is_b = false;
  bool m_registered = false;
  // v4: run against rows [mask_r0, mask_r1) of the registered mask, rebased
  // to row 0 (panel tasks ship only their A row panel inline).
  bool mask_rows = false;
  std::uint64_t mask_r0 = 0;
  std::uint64_t mask_r1 = 0;
  // v5: request trace context (all-zero when the submit was not traced).
  bool traced = false;
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t trace_parent = 0;
  Priority priority = Priority::kBatch;
  MaskedOptions opts;
  CSRMatrix<IT, VT> a_storage;  // valid unless a_is_b
  CSRMatrix<IT, VT> m_storage;  // valid when the mask is inline
};

// A submit carries the version its handle was issued at; the shard answers
// kStaleStructure when an update has superseded it (never a wrong result).
template <class IT, class VT>
void encode_submit_parts(GatherPayload& g, std::uint64_t structure_id,
                         std::uint64_t version, std::uint8_t flags,
                         const CSRMatrix<IT, VT>* a,
                         const CSRMatrix<IT, VT>* m,
                         const MaskedOptions& opts,
                         std::uint64_t mask_r0 = 0,
                         std::uint64_t mask_r1 = 0,
                         std::uint64_t trace_hi = 0,
                         std::uint64_t trace_lo = 0,
                         std::uint64_t trace_parent = 0) {
  g.put_u64(structure_id);
  g.put_u64(version);
  g.put_u8(flags);
  if ((flags & kSubMaskRows) != 0) {
    g.put_u64(mask_r0);
    g.put_u64(mask_r1);
  }
  if ((flags & kSubTraced) != 0) {
    g.put_u64(trace_hi);
    g.put_u64(trace_lo);
    g.put_u64(trace_parent);
  }
  write_options(g, opts);
  if ((flags & kSubAIsB) == 0) write_csr_parts(g, *a);
  if ((flags & (kSubMIsA | kSubMIsB | kSubMRegistered)) == 0) {
    write_csr_parts(g, *m);
  }
}

template <class IT, class VT>
WireSubmit<IT, VT> decode_submit(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  WireSubmit<IT, VT> sub;
  sub.structure_id = r.get_u64();
  sub.version = r.get_u64();
  const std::uint8_t flags = r.get_u8();
  if ((flags & ~(kSubAIsB | kSubMIsA | kSubMIsB | kSubMRegistered |
                 kSubInteractive | kSubMaskRows | kSubTraced)) != 0) {
    throw WireError("wire: unknown submit flags");
  }
  sub.a_is_b = (flags & kSubAIsB) != 0;
  sub.m_is_a = (flags & kSubMIsA) != 0;
  sub.m_is_b = (flags & kSubMIsB) != 0;
  sub.m_registered = (flags & kSubMRegistered) != 0;
  sub.mask_rows = (flags & kSubMaskRows) != 0;
  sub.traced = (flags & kSubTraced) != 0;
  sub.priority = (flags & kSubInteractive) != 0 ? Priority::kInteractive
                                                : Priority::kBatch;
  if (static_cast<int>(sub.m_is_a) + static_cast<int>(sub.m_is_b) +
          static_cast<int>(sub.m_registered) > 1) {
    throw WireError("wire: contradictory submit mask flags");
  }
  if (sub.mask_rows && !sub.m_registered) {
    throw WireError("wire: mask row window requires the registered mask");
  }
  if (sub.mask_rows) {
    sub.mask_r0 = r.get_u64();
    sub.mask_r1 = r.get_u64();
    if (sub.mask_r0 > sub.mask_r1) {
      throw WireError("wire: inverted mask row window");
    }
  }
  if (sub.traced) {
    sub.trace_hi = r.get_u64();
    sub.trace_lo = r.get_u64();
    sub.trace_parent = r.get_u64();
  }
  sub.opts = read_options(r);
  if (!sub.a_is_b) sub.a_storage = read_csr<IT, VT>(r);
  if (!sub.m_is_a && !sub.m_is_b && !sub.m_registered) {
    sub.m_storage = read_csr<IT, VT>(r);
  }
  if (!r.exhausted()) throw WireError("wire: trailing bytes in submit");
  return sub;
}

inline std::vector<std::uint8_t> encode_unregister(std::uint64_t structure_id) {
  WireWriter w;
  w.put_u64(structure_id);
  return w.take();
}

inline std::uint64_t decode_unregister(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  const std::uint64_t id = r.get_u64();
  if (!r.exhausted()) throw WireError("wire: trailing bytes in unregister");
  return id;
}

// --- structure update (wire v3) ---------------------------------------------
//
// Ships an EdgeDelta against a registered structure's B plus the version the
// update produces. The shard applies the delta server-side (the patched
// matrix never crosses the wire) and bumps the registration to new_version;
// in-flight submits carrying the superseded version get kStaleStructure.

template <class IT, class VT>
struct WireUpdate {
  std::uint64_t structure_id = 0;
  std::uint64_t new_version = 0;
  EdgeDelta<IT, VT> delta;
};

template <class IT, class VT>
void encode_update_parts(GatherPayload& g, std::uint64_t structure_id,
                         std::uint64_t new_version,
                         const EdgeDelta<IT, VT>& delta) {
  g.put_u64(structure_id);
  g.put_u64(new_version);
  g.put_u8(static_cast<std::uint8_t>(sizeof(IT)));
  g.put_u8(WireValueCode<VT>::value);
  g.add_array(std::span<const IT>(delta.ins_row));
  g.add_array(std::span<const IT>(delta.ins_col));
  g.add_array(std::span<const VT>(delta.ins_val));
  g.add_array(std::span<const IT>(delta.del_row));
  g.add_array(std::span<const IT>(delta.del_col));
}

template <class IT, class VT>
std::vector<std::uint8_t> encode_update(std::uint64_t structure_id,
                                        std::uint64_t new_version,
                                        const EdgeDelta<IT, VT>& delta) {
  GatherPayload g;
  encode_update_parts(g, structure_id, new_version, delta);
  return g.flatten();
}

template <class IT, class VT>
WireUpdate<IT, VT> decode_update(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  WireUpdate<IT, VT> upd;
  upd.structure_id = r.get_u64();
  upd.new_version = r.get_u64();
  if (r.get_u8() != sizeof(IT)) throw WireError("wire: index width mismatch");
  if (r.get_u8() != WireValueCode<VT>::value) {
    throw WireError("wire: value type mismatch");
  }
  upd.delta.ins_row = r.get_array<IT>();
  upd.delta.ins_col = r.get_array<IT>();
  upd.delta.ins_val = r.get_array<VT>();
  upd.delta.del_row = r.get_array<IT>();
  upd.delta.del_col = r.get_array<IT>();
  if (!r.exhausted()) throw WireError("wire: trailing bytes in update");
  if (upd.delta.ins_row.size() != upd.delta.ins_col.size() ||
      upd.delta.ins_row.size() != upd.delta.ins_val.size() ||
      upd.delta.del_row.size() != upd.delta.del_col.size()) {
    throw WireError("wire: update delta arrays are not parallel");
  }
  return upd;
}

// --- response --------------------------------------------------------------

// Gather form: the result's arrays are referenced in place (the caller keeps
// the matrix alive until the frame is written), so a shard answering with a
// large C pays no payload-assembly copy either. v4: every response carries
// the shard's service time for the request (queue + execute, nanoseconds)
// right after the status — the cost-model feedback the client-side EWMA
// routing consumes. v5 splits that total into its components: queue_nanos
// (admission to execution start) and run_nanos (kernel execution), the
// per-hop breakdown the tracing plane stitches into the request timeline.
// exec_nanos keeps its receipt-to-result meaning so the EWMA signal is
// unchanged.
template <class IT, class VT>
void encode_response_parts(GatherPayload& g, const CSRMatrix<IT, VT>& result,
                           std::uint64_t exec_nanos = 0,
                           std::uint64_t queue_nanos = 0,
                           std::uint64_t run_nanos = 0) {
  g.put_u32(static_cast<std::uint32_t>(WireStatus::kOk));
  g.put_u64(exec_nanos);
  g.put_u64(queue_nanos);
  g.put_u64(run_nanos);
  write_csr_parts(g, result);
}

template <class IT, class VT>
std::vector<std::uint8_t> encode_response(const CSRMatrix<IT, VT>& result,
                                          std::uint64_t exec_nanos = 0,
                                          std::uint64_t queue_nanos = 0,
                                          std::uint64_t run_nanos = 0) {
  GatherPayload g;
  encode_response_parts(g, result, exec_nanos, queue_nanos, run_nanos);
  return g.flatten();
}

std::vector<std::uint8_t> encode_error_response(WireStatus status,
                                                const std::string& message,
                                                std::uint64_t exec_nanos = 0);

// Decoded response: either a result matrix or (status, message).
template <class IT, class VT>
struct WireResponse {
  WireStatus status = WireStatus::kOk;
  std::uint64_t exec_nanos = 0;   // shard service time (v4; 0 when unknown)
  std::uint64_t queue_nanos = 0;  // v5: executor admission -> run start
  std::uint64_t run_nanos = 0;    // v5: kernel execution time
  std::string message;            // empty on kOk
  CSRMatrix<IT, VT> result;       // valid on kOk
};

namespace detail {

inline WireStatus read_response_status(WireReader& r) {
  const std::uint32_t status = r.get_u32();
  if (status > static_cast<std::uint32_t>(WireStatus::kStaleStructure)) {
    throw WireError("wire: unknown response status");
  }
  return static_cast<WireStatus>(status);
}

}  // namespace detail

template <class IT, class VT>
WireResponse<IT, VT> decode_response(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  WireResponse<IT, VT> resp;
  resp.status = detail::read_response_status(r);
  resp.exec_nanos = r.get_u64();
  resp.queue_nanos = r.get_u64();
  resp.run_nanos = r.get_u64();
  if (resp.status == WireStatus::kOk) {
    resp.result = read_csr<IT, VT>(r);
  } else {
    resp.message = r.get_string();
  }
  if (!r.exhausted()) throw WireError("wire: trailing bytes in response");
  return resp;
}

// Zero-copy decode: the result arrays are handed out as spans over the
// payload (no copy). The caller owns the payload buffer and must keep it
// alive as long as the view — the 2D gather path holds each panel's payload
// until the merged result is built directly from these spans.
template <class IT, class VT>
struct WireResponseView {
  WireStatus status = WireStatus::kOk;
  std::uint64_t exec_nanos = 0;
  std::uint64_t queue_nanos = 0;  // v5 timing split (see WireResponse)
  std::uint64_t run_nanos = 0;
  std::string message;       // empty on kOk
  CSRView<IT, VT> result;    // valid on kOk; aliases the payload
};

template <class IT, class VT>
WireResponseView<IT, VT> decode_response_view(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  WireResponseView<IT, VT> resp;
  resp.status = detail::read_response_status(r);
  resp.exec_nanos = r.get_u64();
  resp.queue_nanos = r.get_u64();
  resp.run_nanos = r.get_u64();
  if (resp.status == WireStatus::kOk) {
    resp.result = read_csr_view<IT, VT>(r);
  } else {
    resp.message = r.get_string();
  }
  if (!r.exhausted()) throw WireError("wire: trailing bytes in response");
  return resp;
}

// --- stats -----------------------------------------------------------------

// Shard-side counters exposed over the wire for affinity accounting: the
// router (or an operator) reads warm hit rates per shard without touching
// the shard process.
struct ServiceStats {
  std::uint64_t requests = 0;    // product requests received
  std::uint64_t registrations = 0;  // structures installed (session protocol)
  std::uint64_t updates = 0;     // structure deltas applied (wire v3)
  std::uint64_t stale = 0;       // kStaleStructure responses (version races)
  std::uint64_t responses = 0;   // responses sent (any status)
  std::uint64_t errors = 0;      // kBadRequest + kInternalError responses
  std::uint64_t overloaded = 0;  // kOverloaded responses (back-pressure)
  std::uint64_t bytes_in = 0;    // payload bytes received
  std::uint64_t bytes_out = 0;   // payload bytes sent
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_grows = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_instances = 0;
  std::uint64_t cache_bytes = 0;

  // Warm-plan rate over all product requests that reached the executor.
  double warm_hit_rate() const {
    const auto total = cache_hits + cache_misses + cache_grows;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
};

std::vector<std::uint8_t> encode_stats(const ServiceStats& s);
ServiceStats decode_stats(std::span<const std::uint8_t> payload);

// --- metrics (wire v5) ------------------------------------------------------

// kMetricsResponse payload: the shard's metrics registry rendered as
// Prometheus text exposition, shipped as one length-prefixed string. Text
// (not binary counters) so the shape of the registry can evolve without a
// wire change and an operator can curl it straight into a scrape file.
std::vector<std::uint8_t> encode_metrics_text(const std::string& text);
std::string decode_metrics_text(std::span<const std::uint8_t> payload);

}  // namespace msx::service
