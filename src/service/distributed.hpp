// Distributed 2D masked products (ISSUE 8 tentpole): the planning, slicing
// and merging layer that lets one oversized masked product run as an
// A-row-panel × B-col-panel task grid scattered across the shard fleet.
//
// Decomposition, following the Buluç–Gilbert 2D SpGEMM line adapted to the
// masked setting:
//
//   * B is cut into C column panels. A panel keeps B's full shape and global
//     column indices — entries outside its column range are dropped, nothing
//     is rebased — so A·B_j is an ordinary product whose support is confined
//     to the panel's columns. That confinement is what makes the mask slice
//     correct for BOTH mask kinds: M_j (the same column slice of M) selects
//     exactly M's entries there under kMask, and under kComplement the extra
//     "allowed" columns outside the panel contribute nothing because the
//     product is structurally zero there.
//   * A is cut into R row panels by the existing flop-balanced RowPartition
//     machinery (per-row flops against the FULL B), rebased to row 0; the
//     mask rows follow via the wire-v4 kSubMaskRows window on the registered
//     panel mask.
//   * Each (r, j) task is therefore a self-contained masked product; the
//     client concatenates row panels and, within each row, splices the col
//     panels back in ascending column order (their ranges are disjoint), so
//     the merged CSR is exactly the single-shard result: per output entry
//     the same B(k, c) contributions accumulate in the same k order.
//
// This header is deliberately backend-agnostic: planning produces plain
// boundary vectors, slicing produces ordinary CSRMatrix / EdgeDelta values
// (registered and updated over the wire like any structure), and the merge
// consumes CSRView spans straight over receive payloads (wire v4 zero-copy).
// The scatter/gather executor and replica placement live in
// client/sharded_backend.hpp.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/prefix_sum.hpp"
#include "core/delta.hpp"
#include "core/flops.hpp"
#include "core/partition.hpp"
#include "matrix/csr.hpp"
#include "service/router.hpp"  // ConsistentHashRing
#include "service/wire.hpp"    // CSRView

namespace msx::service {

// --- planning ---------------------------------------------------------------

// Splits a cost prefix sum (n+1 entries, prefix[0] == 0) into at most
// `npanels` contiguous near-equal-cost panels, returning the panels+1
// ascending boundaries (front 0, back n). Reuses the flop-balanced
// RowPartition splitter; degenerates to {0, n} when n == 0 (distributed.cpp).
std::vector<std::int64_t> panel_bounds_from_cost(
    std::span<const std::uint64_t> prefix, int npanels);

// The first `replicas` distinct shards clockwise from `point` on the ring —
// the replica set of a hot panel. Deterministic across client instances
// (the ring depends only on (nshards, vnodes)), capped at the fleet size
// (distributed.cpp).
std::vector<int> replica_shards(const ConsistentHashRing& ring,
                                std::uint64_t point, int replicas);

// Column-panel boundaries for B: per-column nnz is the cost (the column mass
// a panel task must scan), balanced the same way row partitions are.
template <class IT, class VT>
std::vector<std::int64_t> plan_col_panels(const CSRMatrix<IT, VT>& b,
                                          int npanels) {
  std::vector<std::uint64_t> prefix(static_cast<std::size_t>(b.ncols()) + 1,
                                    0);
  for (const IT c : b.colidx()) {
    ++prefix[static_cast<std::size_t>(c) + 1];
  }
  inclusive_scan_serial(prefix.data(), prefix.size());
  return panel_bounds_from_cost(prefix, npanels);
}

// Row-panel boundaries for A against the full B: the same per-row flops cost
// the flop-balanced schedule uses, so panel tasks carry near-equal work.
template <class IT, class VT, class VT2>
std::vector<std::int64_t> plan_row_panels(const CSRMatrix<IT, VT>& a,
                                          const CSRMatrix<IT, VT2>& b,
                                          int npanels) {
  RowPartition part = build_row_partition(
      a.nrows(), npanels,
      [&](IT i) { return row_flops(a, b, i); });
  if (part.block_start.empty()) {
    return {0, static_cast<std::int64_t>(a.nrows())};
  }
  return std::move(part.block_start);
}

// --- slicing ----------------------------------------------------------------

// B column panel: entries with column outside [lo, hi) dropped, shape and
// column indices unchanged (see the header comment for why full width).
template <class IT, class VT>
CSRMatrix<IT, VT> slice_cols(const CSRMatrix<IT, VT>& m, std::int64_t lo,
                             std::int64_t hi) {
  check_arg(lo >= 0 && lo <= hi && hi <= static_cast<std::int64_t>(m.ncols()),
            "slice_cols: bad column range");
  const auto rp = m.rowptr();
  const auto ci = m.colidx();
  const auto vv = m.values();
  const IT nrows = m.nrows();
  std::vector<IT> rowptr(static_cast<std::size_t>(nrows) + 1, 0);
  // Columns are strictly increasing per row: the panel's slice of a row is
  // one contiguous run found by binary search.
  const auto row_range = [&](IT i) {
    const auto* base = ci.data();
    const auto* first = base + rp[i];
    const auto* last = base + rp[i + 1];
    const auto* s = std::lower_bound(first, last, static_cast<IT>(lo));
    const auto* e = std::lower_bound(s, last, static_cast<IT>(hi));
    return std::pair<std::size_t, std::size_t>(
        static_cast<std::size_t>(s - base), static_cast<std::size_t>(e - base));
  };
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(nrows); ++i) {
    const auto [s, e] = row_range(static_cast<IT>(i));
    rowptr[static_cast<std::size_t>(i) + 1] = static_cast<IT>(e - s);
  }
  counts_to_offsets(rowptr);
  std::vector<IT> colidx(static_cast<std::size_t>(rowptr.back()));
  std::vector<VT> values(colidx.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(nrows); ++i) {
    const auto [s, e] = row_range(static_cast<IT>(i));
    const auto out = static_cast<std::size_t>(rowptr[i]);
    std::copy(ci.begin() + s, ci.begin() + e, colidx.begin() + out);
    std::copy(vv.begin() + s, vv.begin() + e, values.begin() + out);
  }
  return CSRMatrix<IT, VT>(nrows, m.ncols(), std::move(rowptr),
                           std::move(colidx), std::move(values));
}

// A row panel (or a mask row window): rows [r0, r1) rebased to row 0.
template <class IT, class VT>
CSRMatrix<IT, VT> slice_rows(const CSRMatrix<IT, VT>& m, std::int64_t r0,
                             std::int64_t r1) {
  check_arg(r0 >= 0 && r0 <= r1 && r1 <= static_cast<std::int64_t>(m.nrows()),
            "slice_rows: bad row range");
  const auto rp = m.rowptr();
  const auto ci = m.colidx();
  const auto vv = m.values();
  const auto nrows = static_cast<IT>(r1 - r0);
  const auto base = static_cast<std::size_t>(rp[r0]);
  const auto end = static_cast<std::size_t>(rp[r1]);
  std::vector<IT> rowptr(static_cast<std::size_t>(nrows) + 1);
  for (std::int64_t i = r0; i <= r1; ++i) {
    rowptr[static_cast<std::size_t>(i - r0)] =
        static_cast<IT>(rp[i] - static_cast<IT>(base));
  }
  std::vector<IT> colidx(ci.begin() + base, ci.begin() + end);
  std::vector<VT> values(vv.begin() + base, vv.begin() + end);
  return CSRMatrix<IT, VT>(nrows, m.ncols(), std::move(rowptr),
                           std::move(colidx), std::move(values));
}

// The column slice of an edge delta: edits landing in [lo, hi) — the part of
// a structure update that concerns one column panel. Row indices are global
// (panels keep B's full shape). Panels whose range the delta never touches
// get an EMPTY delta, which still crosses the wire so every panel's version
// advances in step (apply_edge_delta is the identity for an empty delta).
template <class IT, class VT>
EdgeDelta<IT, VT> slice_delta_cols(const EdgeDelta<IT, VT>& delta,
                                   std::int64_t lo, std::int64_t hi) {
  EdgeDelta<IT, VT> out;
  for (std::size_t k = 0; k < delta.ins_row.size(); ++k) {
    const auto c = static_cast<std::int64_t>(delta.ins_col[k]);
    if (c >= lo && c < hi) {
      out.insert(delta.ins_row[k], delta.ins_col[k], delta.ins_val[k]);
    }
  }
  for (std::size_t k = 0; k < delta.del_row.size(); ++k) {
    const auto c = static_cast<std::int64_t>(delta.del_col[k]);
    if (c >= lo && c < hi) {
      out.erase(delta.del_row[k], delta.del_col[k]);
    }
  }
  return out;
}

// --- merging ----------------------------------------------------------------

// Reassembles the full product from an R×C grid of panel results, row-major
// (slots[r*C + j]), reading entries straight out of the panel views (which
// alias receive payloads — wire v4 zero-copy). Row panel r covers global
// rows [row_start[r], row_start[r+1]); within a row, panels are spliced in
// ascending j order, which IS ascending column order because panel column
// ranges are disjoint and ascending — validated cheaply at the seams.
// Bit-identical to single-shard execution whenever per-entry accumulation
// is exact or order-independent (each output entry receives the same
// contributions in the same k order as the undecomposed product).
template <class IT, class VT>
CSRMatrix<IT, VT> merge_panel_grid(std::span<const CSRView<IT, VT>> slots,
                                   std::span<const std::int64_t> row_start,
                                   IT ncols) {
  check_arg(row_start.size() >= 2, "merge: missing row panel bounds");
  const std::size_t nr = row_start.size() - 1;
  check_arg(nr > 0 && slots.size() % nr == 0,
            "merge: slot grid does not match row panels");
  const std::size_t nc = slots.size() / nr;
  const auto nrows = static_cast<IT>(row_start.back());
  for (std::size_t r = 0; r < nr; ++r) {
    const auto want = row_start[r + 1] - row_start[r];
    for (std::size_t j = 0; j < nc; ++j) {
      const auto& s = slots[r * nc + j];
      check_arg(static_cast<std::int64_t>(s.nrows) == want &&
                    s.ncols == ncols,
                "merge: panel result shape mismatch");
    }
  }

  std::vector<IT> rowptr(static_cast<std::size_t>(nrows) + 1, 0);
  for (std::size_t r = 0; r < nr; ++r) {
    const std::int64_t g0 = row_start[r];
    const std::int64_t rows = row_start[r + 1] - g0;
#pragma omp parallel for schedule(static)
    for (std::int64_t li = 0; li < rows; ++li) {
      IT cnt = 0;
      for (std::size_t j = 0; j < nc; ++j) {
        const auto& s = slots[r * nc + j];
        cnt += s.rowptr[li + 1] - s.rowptr[li];
      }
      rowptr[static_cast<std::size_t>(g0 + li) + 1] = cnt;
    }
  }
  counts_to_offsets(rowptr);

  std::vector<IT> colidx(static_cast<std::size_t>(rowptr.back()));
  std::vector<VT> values(colidx.size());
  for (std::size_t r = 0; r < nr; ++r) {
    const std::int64_t g0 = row_start[r];
    const std::int64_t rows = row_start[r + 1] - g0;
#pragma omp parallel for schedule(static)
    for (std::int64_t li = 0; li < rows; ++li) {
      auto out = static_cast<std::size_t>(rowptr[g0 + li]);
      bool seam_ok = true;
      IT prev_last = 0;
      bool have_prev = false;
      for (std::size_t j = 0; j < nc; ++j) {
        const auto& s = slots[r * nc + j];
        const auto lo = static_cast<std::size_t>(s.rowptr[li]);
        const auto hi = static_cast<std::size_t>(s.rowptr[li + 1]);
        if (lo == hi) continue;
        if (have_prev && s.colidx[lo] <= prev_last) seam_ok = false;
        prev_last = s.colidx[hi - 1];
        have_prev = true;
        std::copy(s.colidx.begin() + lo, s.colidx.begin() + hi,
                  colidx.begin() + out);
        std::copy(s.values.begin() + lo, s.values.begin() + hi,
                  values.begin() + out);
        out += hi - lo;
      }
      // check_arg throws; keep the throw out of the parallel loop body's hot
      // path but still fail loudly on overlapping panel ranges.
      if (!seam_ok) {
        rowptr[g0 + li] = static_cast<IT>(-1);  // flagged below
      }
    }
  }
  for (std::size_t r = 0; r < nr; ++r) {
    const std::int64_t g0 = row_start[r];
    for (std::int64_t li = 0; li < row_start[r + 1] - g0; ++li) {
      check_arg(rowptr[g0 + li] != static_cast<IT>(-1),
                "merge: panel column ranges overlap");
    }
  }
  return CSRMatrix<IT, VT>(nrows, ncols, std::move(rowptr), std::move(colidx),
                           std::move(values));
}

}  // namespace msx::service
