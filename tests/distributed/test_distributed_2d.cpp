// The distributed 2D layer in isolation (ISSUE 8 tentpole): panel planning
// over cost prefixes, column/row/delta slicing, replica placement on the
// consistent ring, and the panel-grid merge — including its seam validation,
// which is what catches a mis-sliced panel before it silently corrupts a
// merged product.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/delta.hpp"
#include "gen/erdos_renyi.hpp"
#include "matrix/csr.hpp"
#include "service/distributed.hpp"
#include "service/router.hpp"

using namespace msx;
using namespace msx::service;

using IT = int32_t;
using VT = double;
using Mat = CSRMatrix<IT, VT>;
using View = CSRView<IT, VT>;

namespace {

View view_of(const Mat& m) {
  return View{m.nrows(), m.ncols(), m.rowptr(), m.colidx(), m.values()};
}

// Brute-force reference slice: keep entries with column in [lo, hi).
Mat ref_slice_cols(const Mat& m, std::int64_t lo, std::int64_t hi) {
  std::vector<IT> rowptr{0}, colidx;
  std::vector<VT> values;
  for (IT i = 0; i < m.nrows(); ++i) {
    const auto row = m.row(i);
    for (IT t = 0; t < row.size(); ++t) {
      if (row.cols[t] >= static_cast<IT>(lo) &&
          row.cols[t] < static_cast<IT>(hi)) {
        colidx.push_back(row.cols[t]);
        values.push_back(row.vals[t]);
      }
    }
    rowptr.push_back(static_cast<IT>(colidx.size()));
  }
  return Mat(m.nrows(), m.ncols(), std::move(rowptr), std::move(colidx),
             std::move(values));
}

}  // namespace

// --- planning ---------------------------------------------------------------

TEST(Distributed2D, PanelBoundsCoverAndBalance) {
  // 100 items of unit cost -> 4 panels of 25 each.
  std::vector<std::uint64_t> prefix(101);
  std::iota(prefix.begin(), prefix.end(), 0u);
  const auto bounds = panel_bounds_from_cost(prefix, 4);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), 100);
  for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
    EXPECT_LT(bounds[k], bounds[k + 1]);
    EXPECT_NEAR(static_cast<double>(bounds[k + 1] - bounds[k]), 25.0, 5.0);
  }
}

TEST(Distributed2D, PanelBoundsDegenerateInputs) {
  // Empty cost domain -> one trivial panel.
  std::vector<std::uint64_t> empty{0};
  const auto b0 = panel_bounds_from_cost(empty, 4);
  ASSERT_GE(b0.size(), 2u);
  EXPECT_EQ(b0.front(), 0);
  EXPECT_EQ(b0.back(), 0);

  // More panels than items still yields ascending bounds covering [0, n].
  std::vector<std::uint64_t> tiny{0, 1, 2};
  const auto b1 = panel_bounds_from_cost(tiny, 8);
  EXPECT_EQ(b1.front(), 0);
  EXPECT_EQ(b1.back(), 2);
  for (std::size_t k = 0; k + 1 < b1.size(); ++k) EXPECT_LE(b1[k], b1[k + 1]);
}

TEST(Distributed2D, ColPanelsSplitByColumnMass) {
  const auto b = erdos_renyi<IT, VT>(200, 160, 6, 42);
  const auto bounds = plan_col_panels(b, 4);
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), 160);
  // Panel nnz within 2x of each other on this near-uniform matrix.
  std::vector<std::int64_t> mass;
  for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
    const auto p = slice_cols(b, bounds[k], bounds[k + 1]);
    mass.push_back(static_cast<std::int64_t>(p.nnz()));
  }
  const auto [lo, hi] = std::minmax_element(mass.begin(), mass.end());
  EXPECT_LE(*hi, 2 * std::max<std::int64_t>(*lo, 1));
}

TEST(Distributed2D, RowPanelsCoverAllRows) {
  const auto a = erdos_renyi<IT, VT>(150, 120, 5, 7);
  const auto b = erdos_renyi<IT, VT>(120, 120, 5, 8);
  const auto bounds = plan_row_panels(a, b, 3);
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), 150);
  for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
    EXPECT_LE(bounds[k], bounds[k + 1]);
  }
}

// --- slicing ----------------------------------------------------------------

TEST(Distributed2D, SliceColsMatchesBruteForceAndKeepsShape) {
  const auto m = erdos_renyi<IT, VT>(80, 64, 6, 11);
  const std::int64_t cuts[] = {0, 13, 40, 64};
  std::size_t total = 0;
  for (int k = 0; k < 3; ++k) {
    const auto p = slice_cols(m, cuts[k], cuts[k + 1]);
    EXPECT_EQ(p.nrows(), m.nrows());  // full shape, global columns
    EXPECT_EQ(p.ncols(), m.ncols());
    EXPECT_TRUE(p == ref_slice_cols(m, cuts[k], cuts[k + 1]));
    total += p.nnz();
  }
  EXPECT_EQ(total, m.nnz());  // disjoint ranges partition every entry

  // Empty range is a valid (empty) panel.
  const auto e = slice_cols(m, 20, 20);
  EXPECT_EQ(e.nnz(), 0u);
  EXPECT_EQ(e.nrows(), m.nrows());
}

TEST(Distributed2D, SliceRowsRebasesToRowZero) {
  const auto m = erdos_renyi<IT, VT>(60, 50, 5, 21);
  const auto p = slice_rows(m, 17, 41);
  ASSERT_EQ(p.nrows(), 24);
  EXPECT_EQ(p.ncols(), m.ncols());
  EXPECT_EQ(p.rowptr()[0], 0);
  for (IT li = 0; li < p.nrows(); ++li) {
    const auto got = p.row(li);
    const auto want = m.row(static_cast<IT>(17 + li));
    ASSERT_EQ(got.size(), want.size());
    for (IT t = 0; t < got.size(); ++t) {
      EXPECT_EQ(got.cols[t], want.cols[t]);
      EXPECT_EQ(got.vals[t], want.vals[t]);
    }
  }
}

TEST(Distributed2D, SliceDeltaColsPartitionsEdits) {
  EdgeDelta<IT, VT> d;
  d.insert(3, 5, 1.0);
  d.insert(7, 20, 2.0);
  d.insert(1, 33, 3.0);
  d.erase(2, 5);
  d.erase(9, 33);

  const auto left = slice_delta_cols(d, 0, 16);
  EXPECT_EQ(left.ins_row.size(), 1u);
  EXPECT_EQ(left.ins_col[0], 5);
  EXPECT_EQ(left.del_row.size(), 1u);

  const auto mid = slice_delta_cols(d, 16, 32);
  EXPECT_EQ(mid.ins_row.size(), 1u);
  EXPECT_EQ(mid.ins_col[0], 20);
  EXPECT_EQ(mid.del_row.size(), 0u);

  const auto right = slice_delta_cols(d, 32, 64);
  EXPECT_EQ(right.ins_row.size(), 1u);
  EXPECT_EQ(right.del_row.size(), 1u);

  // Untouched panel: empty delta (still shipped so versions stay coherent).
  const auto none = slice_delta_cols(d, 40, 48);
  EXPECT_TRUE(none.ins_row.empty() && none.del_row.empty());
}

// --- replica placement ------------------------------------------------------

TEST(Distributed2D, ReplicaShardsDistinctDeterministicCapped) {
  const ConsistentHashRing ring(5, 64);
  const std::uint64_t point = 0x9e3779b97f4a7c15ull;
  const auto r3 = replica_shards(ring, point, 3);
  ASSERT_EQ(r3.size(), 3u);
  // Distinct shards, and the first is exactly the unskipped pick.
  EXPECT_EQ(r3[0], ring.pick(point, std::vector<char>(5, 0)));
  EXPECT_NE(r3[0], r3[1]);
  EXPECT_NE(r3[1], r3[2]);
  EXPECT_NE(r3[0], r3[2]);
  // Deterministic across ring instances (clients agree on placement).
  const ConsistentHashRing ring2(5, 64);
  EXPECT_EQ(replica_shards(ring2, point, 3), r3);
  // Capped at the fleet size; nonsense replica counts clamp to 1.
  EXPECT_EQ(replica_shards(ring, point, 99).size(), 5u);
  EXPECT_EQ(replica_shards(ring, point, 0).size(), 1u);
}

// --- merging ----------------------------------------------------------------

TEST(Distributed2D, MergeGridReassemblesExactly) {
  const auto m = erdos_renyi<IT, VT>(90, 70, 6, 33);
  // 3 row panels x 3 col panels, deliberately uneven (one empty col range).
  const std::vector<std::int64_t> row_start{0, 30, 31, 90};
  const std::int64_t col_cut[] = {0, 25, 25, 70};
  std::vector<Mat> panels;  // keeps storage alive behind the views
  for (std::size_t r = 0; r + 1 < row_start.size(); ++r) {
    const auto rows = slice_rows(m, row_start[r], row_start[r + 1]);
    for (int j = 0; j < 3; ++j) {
      panels.push_back(slice_cols(rows, col_cut[j], col_cut[j + 1]));
    }
  }
  std::vector<View> slots;
  for (const auto& p : panels) slots.push_back(view_of(p));
  const auto merged = merge_panel_grid<IT, VT>(
      std::span<const View>(slots), std::span<const std::int64_t>(row_start),
      m.ncols());
  EXPECT_TRUE(merged == m);
}

TEST(Distributed2D, MergeSingleRowAndSingleColGrids) {
  const auto m = erdos_renyi<IT, VT>(40, 48, 5, 9);
  {
    // 1 x N: column panels only.
    const std::vector<std::int64_t> row_start{0, 40};
    std::vector<Mat> panels{slice_cols(m, 0, 16), slice_cols(m, 16, 48)};
    std::vector<View> slots{view_of(panels[0]), view_of(panels[1])};
    const auto merged = merge_panel_grid<IT, VT>(
        std::span<const View>(slots), std::span<const std::int64_t>(row_start),
        m.ncols());
    EXPECT_TRUE(merged == m);
  }
  {
    // N x 1: row panels only.
    const std::vector<std::int64_t> row_start{0, 11, 40};
    std::vector<Mat> panels{slice_rows(m, 0, 11), slice_rows(m, 11, 40)};
    std::vector<View> slots{view_of(panels[0]), view_of(panels[1])};
    const auto merged = merge_panel_grid<IT, VT>(
        std::span<const View>(slots), std::span<const std::int64_t>(row_start),
        m.ncols());
    EXPECT_TRUE(merged == m);
  }
}

TEST(Distributed2D, MergeRejectsShapeMismatchAndOverlap) {
  const auto m = erdos_renyi<IT, VT>(30, 30, 4, 5);
  const std::vector<std::int64_t> row_start{0, 30};

  const auto merge = [&](const std::vector<View>& slots) {
    return merge_panel_grid<IT, VT>(std::span<const View>(slots),
                                    std::span<const std::int64_t>(row_start),
                                    m.ncols());
  };
  // Wrong row count in a slot.
  {
    const auto bad = slice_rows(m, 0, 29);
    const std::vector<View> slots{view_of(bad)};
    EXPECT_THROW(merge(slots), std::invalid_argument);
  }
  // Overlapping column ranges: both "panels" carry the full matrix, so the
  // second panel's first column ties the first panel's last -> seam check.
  {
    const std::vector<View> slots{view_of(m), view_of(m)};
    EXPECT_THROW(merge(slots), std::invalid_argument);
  }
}
