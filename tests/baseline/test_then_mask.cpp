#include "baseline/then_mask.hpp"

#include <gtest/gtest.h>

#include "core/masked_spgemm.hpp"
#include "core/reference.hpp"
#include "gen/erdos_renyi.hpp"
#include "matrix/build.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

TEST(ApplyMask, KeepsOnlyMaskedPositions) {
  auto c = csr_from_dense<IT, VT>({{1, 2, 3}, {4, 5, 6}});
  auto m = csr_from_dense<IT, VT>({{1, 0, 1}, {0, 1, 0}});
  auto masked = apply_mask(c, m);
  auto expect = csr_from_dense<IT, VT>({{1, 0, 3}, {0, 5, 0}});
  EXPECT_EQ(masked, expect);
}

TEST(ApplyMask, ComplementKeepsUnmasked) {
  auto c = csr_from_dense<IT, VT>({{1, 2, 3}, {4, 5, 6}});
  auto m = csr_from_dense<IT, VT>({{1, 0, 1}, {0, 1, 0}});
  auto comp = apply_mask(c, m, MaskKind::kComplement);
  auto expect = csr_from_dense<IT, VT>({{0, 2, 0}, {4, 0, 6}});
  EXPECT_EQ(comp, expect);
}

TEST(ApplyMask, ShapeMismatchThrows) {
  CSRMatrix<IT, VT> c(2, 2), m(2, 3);
  EXPECT_THROW(apply_mask(c, m), std::invalid_argument);
}

TEST(ThenMask, AgreesWithMaskedSpgemm) {
  auto a = erdos_renyi<IT, VT>(70, 70, 6, 1);
  auto b = erdos_renyi<IT, VT>(70, 70, 6, 2);
  auto m = erdos_renyi<IT, VT>(70, 70, 9, 3);
  auto naive = spgemm_then_mask<PlusTimes<VT>>(a, b, m);
  auto fused = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  EXPECT_EQ(naive, fused);
}

TEST(ThenMask, ComplementAgrees) {
  auto a = erdos_renyi<IT, VT>(50, 50, 5, 4);
  auto b = erdos_renyi<IT, VT>(50, 50, 5, 5);
  auto m = erdos_renyi<IT, VT>(50, 50, 7, 6);
  auto naive =
      spgemm_then_mask<PlusTimes<VT>>(a, b, m, MaskKind::kComplement);
  auto fused =
      reference_masked_spgemm<PlusTimes<VT>>(a, b, m, MaskKind::kComplement);
  EXPECT_EQ(naive, fused);
}

}  // namespace
}  // namespace msx
