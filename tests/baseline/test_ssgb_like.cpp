#include "baseline/ssgb_like.hpp"

#include <gtest/gtest.h>

#include "core/reference.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "matrix/build.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

TEST(SSDotLike, MatchesReferenceMasked) {
  auto a = erdos_renyi<IT, VT>(80, 80, 6, 1);
  auto b = erdos_renyi<IT, VT>(80, 80, 6, 2);
  auto m = erdos_renyi<IT, VT>(80, 80, 8, 3);
  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  EXPECT_EQ((ss_dot_like<PlusTimes<VT>>(a, b, m)), want);
}

TEST(SSDotLike, MatchesReferenceComplement) {
  auto a = erdos_renyi<IT, VT>(40, 40, 5, 4);
  auto b = erdos_renyi<IT, VT>(40, 40, 5, 5);
  auto m = erdos_renyi<IT, VT>(40, 40, 6, 6);
  auto want =
      reference_masked_spgemm<PlusTimes<VT>>(a, b, m, MaskKind::kComplement);
  EXPECT_EQ((ss_dot_like<PlusTimes<VT>>(a, b, m, MaskKind::kComplement)),
            want);
}

TEST(SSSaxpyLike, MatchesReferenceMasked) {
  auto a = erdos_renyi<IT, VT>(80, 80, 6, 7);
  auto b = erdos_renyi<IT, VT>(80, 80, 6, 8);
  auto m = erdos_renyi<IT, VT>(80, 80, 8, 9);
  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  EXPECT_EQ((ss_saxpy_like<PlusTimes<VT>>(a, b, m)), want);
}

TEST(SSSaxpyLike, MatchesReferenceComplement) {
  auto a = erdos_renyi<IT, VT>(40, 40, 5, 10);
  auto b = erdos_renyi<IT, VT>(40, 40, 5, 11);
  auto m = erdos_renyi<IT, VT>(40, 40, 6, 12);
  auto want =
      reference_masked_spgemm<PlusTimes<VT>>(a, b, m, MaskKind::kComplement);
  EXPECT_EQ((ss_saxpy_like<PlusTimes<VT>>(a, b, m, MaskKind::kComplement)),
            want);
}

TEST(SSBaselines, RectangularAndSkewed) {
  auto a = erdos_renyi<IT, VT>(30, 60, 5, 13);
  auto b = erdos_renyi<IT, VT>(60, 45, 4, 14);
  auto m = erdos_renyi<IT, VT>(30, 45, 6, 15);
  auto want = reference_masked_spgemm<PlusTimes<VT>>(a, b, m);
  EXPECT_EQ((ss_dot_like<PlusTimes<VT>>(a, b, m)), want);
  EXPECT_EQ((ss_saxpy_like<PlusTimes<VT>>(a, b, m)), want);

  auto ra = rmat<IT, VT>(7, 16);
  auto rm = rmat<IT, VT>(7, 17);
  auto want2 = reference_masked_spgemm<PlusTimes<VT>>(ra, ra, rm);
  EXPECT_EQ((ss_dot_like<PlusTimes<VT>>(ra, ra, rm)), want2);
  EXPECT_EQ((ss_saxpy_like<PlusTimes<VT>>(ra, ra, rm)), want2);
}

TEST(SSBaselines, ShapeMismatchThrows) {
  CSRMatrix<IT, VT> a(3, 4), b(5, 2), m(3, 2);
  EXPECT_THROW((ss_dot_like<PlusTimes<VT>>(a, b, m)), std::invalid_argument);
  EXPECT_THROW((ss_saxpy_like<PlusTimes<VT>>(a, b, m)),
               std::invalid_argument);
}

}  // namespace
}  // namespace msx
