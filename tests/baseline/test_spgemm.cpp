#include "baseline/spgemm.hpp"

#include <gtest/gtest.h>

#include "core/reference.hpp"
#include "gen/erdos_renyi.hpp"
#include "matrix/build.hpp"
#include "matrix/ops.hpp"

namespace msx {
namespace {

using IT = int32_t;
using VT = double;

TEST(PlainSpgemm, HandComputedProduct) {
  auto a = csr_from_dense<IT, VT>({{1, 2}, {0, 3}});
  auto b = csr_from_dense<IT, VT>({{4, 0}, {5, 6}});
  auto c = spgemm<PlusTimes<VT>>(a, b);
  auto expect = csr_from_dense<IT, VT>({{14, 12}, {15, 18}});
  EXPECT_EQ(c, expect);
}

TEST(PlainSpgemm, MatchesMaskedWithEmptyComplementMask) {
  auto a = erdos_renyi<IT, VT>(80, 80, 6, 1);
  auto b = erdos_renyi<IT, VT>(80, 80, 6, 2);
  CSRMatrix<IT, VT> empty(80, 80);
  auto plain = spgemm<PlusTimes<VT>>(a, b);
  auto via_masked =
      reference_masked_spgemm<PlusTimes<VT>>(a, b, empty, MaskKind::kComplement);
  EXPECT_EQ(plain, via_masked);
}

TEST(PlainSpgemm, RectangularShapes) {
  auto a = erdos_renyi<IT, VT>(30, 50, 5, 3);
  auto b = erdos_renyi<IT, VT>(50, 20, 4, 4);
  auto c = spgemm<PlusTimes<VT>>(a, b);
  EXPECT_EQ(c.nrows(), 30);
  EXPECT_EQ(c.ncols(), 20);
  EXPECT_TRUE(c.validate());
}

TEST(PlainSpgemm, OnePhaseEqualsTwoPhase) {
  auto a = erdos_renyi<IT, VT>(60, 60, 5, 5);
  auto b = erdos_renyi<IT, VT>(60, 60, 5, 6);
  MaskedOptions o1;
  o1.phases = PhaseMode::kOnePhase;
  MaskedOptions o2;
  o2.phases = PhaseMode::kTwoPhase;
  EXPECT_EQ((spgemm<PlusTimes<VT>>(a, b, o1)), (spgemm<PlusTimes<VT>>(a, b, o2)));
}

TEST(PlainSpgemm, DimensionMismatchThrows) {
  CSRMatrix<IT, VT> a(3, 4), b(5, 2);
  EXPECT_THROW((spgemm<PlusTimes<VT>>(a, b)), std::invalid_argument);
}

TEST(PlainSpgemm, IdentityIsNeutral) {
  const IT n = 32;
  std::vector<Triple<IT, VT>> eye;
  for (IT i = 0; i < n; ++i) eye.push_back({i, i, 1.0});
  auto identity = csr_from_triples<IT, VT>(n, n, eye);
  auto a = erdos_renyi<IT, VT>(n, n, 5, 7);
  EXPECT_EQ((spgemm<PlusTimes<VT>>(a, identity)), a);
  EXPECT_EQ((spgemm<PlusTimes<VT>>(identity, a)), a);
}

}  // namespace
}  // namespace msx
