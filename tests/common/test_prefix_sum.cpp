#include "common/prefix_sum.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/random.hpp"

namespace msx {
namespace {

TEST(PrefixSum, ExclusiveSerialBasic) {
  std::vector<int> v{3, 1, 4, 1, 5};
  const int total = exclusive_scan_serial(v.data(), v.size());
  EXPECT_EQ(total, 14);
  EXPECT_EQ(v, (std::vector<int>{0, 3, 4, 8, 9}));
}

TEST(PrefixSum, ExclusiveEmpty) {
  std::vector<int> v;
  EXPECT_EQ(exclusive_scan(v.data(), 0), 0);
}

TEST(PrefixSum, InclusiveSerialBasic) {
  std::vector<int> v{3, 1, 4, 1, 5};
  inclusive_scan_serial(v.data(), v.size());
  EXPECT_EQ(v, (std::vector<int>{3, 4, 8, 9, 14}));
}

TEST(PrefixSum, ParallelMatchesSerialLarge) {
  // Above the serial cutoff so the parallel path actually runs.
  const std::size_t n = 1 << 18;
  Xoshiro256 rng(3);
  std::vector<long long> a(n), b;
  for (auto& x : a) x = static_cast<long long>(rng.next_below(100));
  b = a;

  const auto total_par = exclusive_scan(a.data(), n);
  const auto total_ser = exclusive_scan_serial(b.data(), n);
  EXPECT_EQ(total_par, total_ser);
  EXPECT_EQ(a, b);
}

TEST(PrefixSum, ParallelInclusiveMatchesSerialLarge) {
  const std::size_t n = (1 << 18) + 17;  // non-multiple of block size
  Xoshiro256 rng(4);
  std::vector<long long> a(n), b;
  for (auto& x : a) x = static_cast<long long>(rng.next_below(7));
  b = a;
  inclusive_scan(a.data(), n);
  inclusive_scan_serial(b.data(), n);
  EXPECT_EQ(a, b);
}

TEST(PrefixSum, CountsToOffsets) {
  // Convention: v[0] == 0, v[i+1] = count of row i.
  std::vector<int> v{0, 2, 0, 5, 1};
  counts_to_offsets(v);
  EXPECT_EQ(v, (std::vector<int>{0, 2, 2, 7, 8}));
}

TEST(PrefixSum, CountsToOffsetsAllEmptyRows) {
  std::vector<int> v(11, 0);
  counts_to_offsets(v);
  for (int x : v) EXPECT_EQ(x, 0);
}

TEST(PrefixSum, CountsToOffsetsLargeMatchesAccumulate) {
  const std::size_t rows = 1 << 17;
  Xoshiro256 rng(8);
  std::vector<std::size_t> counts(rows + 1, 0);
  for (std::size_t i = 1; i <= rows; ++i) counts[i] = rng.next_below(5);
  std::vector<std::size_t> expect(rows + 1, 0);
  for (std::size_t i = 1; i <= rows; ++i) expect[i] = expect[i - 1] + counts[i];
  counts_to_offsets(counts);
  EXPECT_EQ(counts, expect);
}

}  // namespace
}  // namespace msx
