#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace msx {
namespace {

ArgParser make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsForm) {
  auto p = make({"--scale=12", "--algo=msa"});
  EXPECT_EQ(p.get_int("scale", 0), 12);
  EXPECT_EQ(p.get_string("algo", ""), "msa");
}

TEST(Cli, SpaceForm) {
  auto p = make({"--scale", "14"});
  EXPECT_EQ(p.get_int("scale", 0), 14);
}

TEST(Cli, BareFlag) {
  auto p = make({"--verbose"});
  EXPECT_TRUE(p.has("verbose"));
  EXPECT_TRUE(p.get_bool("verbose", false));
}

TEST(Cli, Defaults) {
  auto p = make({});
  EXPECT_EQ(p.get_int("missing", 7), 7);
  EXPECT_EQ(p.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(p.get_string("missing", "x"), "x");
  EXPECT_FALSE(p.has("missing"));
}

TEST(Cli, BoolParsing) {
  EXPECT_TRUE(make({"--a=true"}).get_bool("a", false));
  EXPECT_TRUE(make({"--a=1"}).get_bool("a", false));
  EXPECT_TRUE(make({"--a=on"}).get_bool("a", false));
  EXPECT_FALSE(make({"--a=false"}).get_bool("a", true));
  EXPECT_FALSE(make({"--a=0"}).get_bool("a", true));
  EXPECT_FALSE(make({"--a=off"}).get_bool("a", true));
}

TEST(Cli, Positional) {
  auto p = make({"input.mtx", "--k=5", "more"});
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.mtx");
  EXPECT_EQ(p.positional()[1], "more");
}

TEST(Cli, EnvFallbackAndPrecedence) {
  setenv("MSX_SCALE", "9", 1);
  auto p1 = make({});
  EXPECT_EQ(p1.get_int("scale", 0), 9);
  auto p2 = make({"--scale=3"});
  EXPECT_EQ(p2.get_int("scale", 0), 3);  // explicit wins
  unsetenv("MSX_SCALE");
}

TEST(Cli, EnvNameMapsDashes) {
  setenv("MSX_MAX_DIM", "77", 1);
  auto p = make({});
  EXPECT_EQ(p.get_int("max-dim", 0), 77);
  unsetenv("MSX_MAX_DIM");
}

TEST(Cli, DoubleParsing) {
  auto p = make({"--ratio=2.75"});
  EXPECT_DOUBLE_EQ(p.get_double("ratio", 0.0), 2.75);
}

}  // namespace
}  // namespace msx
