#include "common/random.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace msx {
namespace {

TEST(SplitMix64, DeterministicStream) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, DeterministicStream) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextBelowInRangeAndCoversValues) {
  Xoshiro256 rng(123);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit over 2000 draws
}

TEST(Xoshiro256, NextBelowOne) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(99);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_LT(lo, 0.05);  // spread across the interval
  EXPECT_GT(hi, 0.95);
}

TEST(Xoshiro256, RoughUniformity) {
  Xoshiro256 rng(2024);
  std::vector<int> buckets(16, 0);
  const int draws = 160000;
  for (int i = 0; i < draws; ++i) ++buckets[rng.next_below(16)];
  for (int b : buckets) {
    EXPECT_NEAR(b, draws / 16, draws / 16 / 5);  // within 20 %
  }
}

TEST(Xoshiro256, LongJumpDecorrelates) {
  Xoshiro256 a(11);
  Xoshiro256 b(11);
  b.long_jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Mix64, InjectiveOnSmallRange) {
  std::set<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 4096; ++i) out.insert(mix64(i));
  EXPECT_EQ(out.size(), 4096u);
}

}  // namespace
}  // namespace msx
