#include "common/platform.hpp"

#include <gtest/gtest.h>

namespace msx {
namespace {

TEST(Platform, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
  EXPECT_EQ(next_pow2(std::uint64_t{1} << 40), std::uint64_t{1} << 40);
  EXPECT_EQ(next_pow2((std::uint64_t{1} << 40) + 1), std::uint64_t{1} << 41);
}

TEST(Platform, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div(8, 4), 2);
  EXPECT_EQ(ceil_div(std::size_t{1000001}, std::size_t{1000}), 1001u);
}

TEST(Platform, CheckArgThrows) {
  EXPECT_NO_THROW(check_arg(true, "fine"));
  EXPECT_THROW(check_arg(false, "boom"), std::invalid_argument);
  try {
    check_arg(false, "specific message");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "specific message");
  }
}

}  // namespace
}  // namespace msx
