#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace msx {
namespace {

TEST(Parallel, ParallelForCoversAllIndicesOnce) {
  for (auto sched : {Schedule::kAuto, Schedule::kStatic, Schedule::kDynamic,
                     Schedule::kGuided, Schedule::kFlopBalanced}) {
    const int n = 10007;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    parallel_for(0, n, sched, [&](int i) { hits[i].fetch_add(1); });
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " sched "
                                   << to_string(sched);
    }
  }
}

TEST(Parallel, ParallelForEmptyRange) {
  int calls = 0;
  parallel_for(5, 5, Schedule::kDynamic, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(Parallel, ScopedNumThreadsRestores) {
  const int before = omp_get_max_threads();
  {
    ScopedNumThreads guard(1);
    EXPECT_EQ(omp_get_max_threads(), 1);
  }
  EXPECT_EQ(omp_get_max_threads(), before);
}

TEST(Parallel, ScopedNumThreadsZeroIsNoop) {
  const int before = omp_get_max_threads();
  {
    ScopedNumThreads guard(0);
    EXPECT_EQ(omp_get_max_threads(), before);
  }
  EXPECT_EQ(omp_get_max_threads(), before);
}

TEST(Parallel, PerThreadSlotsAreIndependent) {
  PerThread<std::vector<int>> ws;
  parallel_for(0, 1000, Schedule::kDynamic, [&](int i) {
    ws.local().push_back(i);
  });
  std::size_t total = 0;
  for (std::size_t t = 0; t < ws.size(); ++t) total += ws.slot(t).size();
  EXPECT_EQ(total, 1000u);
}

TEST(Parallel, PerThreadLocalUsableSerially) {
  PerThread<int> ws;
  ws.local() = 41;
  EXPECT_EQ(ws.local(), 41);
}

TEST(Parallel, ScheduleNames) {
  EXPECT_STREQ(to_string(Schedule::kAuto), "auto");
  EXPECT_STREQ(to_string(Schedule::kStatic), "static");
  EXPECT_STREQ(to_string(Schedule::kDynamic), "dynamic");
  EXPECT_STREQ(to_string(Schedule::kGuided), "guided");
  EXPECT_STREQ(to_string(Schedule::kFlopBalanced), "flopbalanced");
}

TEST(Parallel, ParallelForBlocksCoversAllIndicesOnce) {
  const int n = 1000;
  const std::vector<std::int64_t> block_start{0, 1, 17, 500, 501, 1000};
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  parallel_for_blocks<int>(block_start, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Parallel, ParallelForBlocksEmptyPartition) {
  int calls = 0;
  parallel_for_blocks<int>(std::vector<std::int64_t>{0},
                           [&](int) { ++calls; });
  parallel_for_blocks<int>(std::vector<std::int64_t>{},
                           [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace msx
