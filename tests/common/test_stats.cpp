#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace msx {
namespace {

TEST(Stats, EmptySamples) {
  const auto s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Stats, SingleSample) {
  const auto s = summarize({2.5});
  EXPECT_EQ(s.n, 1u);
  EXPECT_EQ(s.min, 2.5);
  EXPECT_EQ(s.max, 2.5);
  EXPECT_EQ(s.mean, 2.5);
  EXPECT_EQ(s.median, 2.5);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Stats, KnownValues) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  // sample stddev of 1..4 = sqrt(5/3)
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
}

TEST(Stats, MedianOddCount) {
  const auto s = summarize({9.0, 1.0, 5.0});
  EXPECT_DOUBLE_EQ(s.median, 5.0);
}

TEST(Stats, UnsortedInputHandled) {
  const auto s = summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 4.0);
}

TEST(Stats, RelativeStddev) {
  SampleStats s;
  s.mean = 2.0;
  s.stddev = 0.5;
  EXPECT_DOUBLE_EQ(relative_stddev(s), 0.25);
  s.mean = 0.0;
  EXPECT_EQ(relative_stddev(s), 0.0);
}

}  // namespace
}  // namespace msx
