// Streaming dynamic-graph serving (ISSUE 7 tentpole): Session::update applies
// an EdgeDelta to a registered structure as a versioned transition — the new
// handle's submits are bit-identical to a cold plan on the mutated graph, the
// superseded handle's submits come back typed kStaleStructure (never a wrong
// result), the plan cache migrates warm plans across versions instead of
// rebuilding, the LRU quota evicts with an unregister, and the incremental
// app loops (triangle count / k-truss / BFS under churn) match their batch
// counterparts on the same mutated graph.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "apps/dobfs.hpp"
#include "apps/ktruss.hpp"
#include "apps/streaming.hpp"
#include "apps/tricount.hpp"
#include "client/client.hpp"
#include "client/local_backend.hpp"
#include "client/sharded_backend.hpp"
#include "core/delta.hpp"
#include "core/masked_spgemm.hpp"
#include "gen/erdos_renyi.hpp"
#include "matrix/ops.hpp"
#include "service/shard.hpp"

using namespace msx;
using namespace msx::client;
using msx::service::LoopbackListener;
using msx::service::ServiceShard;
using msx::service::ShardEndpoint;

using IT = int32_t;
using VT = double;
using SR = PlusTimes<VT>;
using Mat = CSRMatrix<IT, VT>;
using Client = MaskedClient<SR, IT, VT>;
using Local = LocalBackend<SR, IT, VT>;
using Shard = ServiceShard<SR, IT, VT>;
using Sharded = ShardedBackend<SR, IT, VT>;

namespace {

struct Fleet {
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<ShardEndpoint> endpoints;

  explicit Fleet(std::size_t n, service::ShardConfig cfg = {}) {
    for (std::size_t i = 0; i < n; ++i) {
      shards.push_back(std::make_unique<Shard>(cfg));
      auto listener = std::make_unique<LoopbackListener>();
      auto* raw = listener.get();
      shards.back()->serve(std::move(listener));
      endpoints.push_back(ShardEndpoint{"shard-" + std::to_string(i),
                                        [raw] { return raw->connect(); }});
    }
  }
};

// A mutation batch touching a handful of rows: overwrites, inserts into
// fresh slots, and deletes — the mixed shape a maintenance loop produces.
EdgeDelta<IT, VT> small_delta(const Mat& b) {
  EdgeDelta<IT, VT> d;
  const IT n = b.nrows();
  d.insert(0, n - 1, 4.5);           // new or overwritten corner entry
  d.insert(n / 2, 0, -2.0);          // mid-matrix insert
  if (b.row_nnz(1) > 0) d.erase(1, b.row(1).cols[0]);  // present -> absent
  d.erase(2, n - 1);                 // absent delete: no-op by contract
  return d;
}

template <class M>
bool has_edge(const M& g, IT u, IT v) {
  for (const IT c : g.row(u).cols) {
    if (c == v) return true;
  }
  return false;
}

// (present, absent) undirected edge pair to mutate in the app-loop tests.
template <class M>
std::pair<std::pair<IT, IT>, std::pair<IT, IT>> pick_edges(const M& g) {
  std::pair<IT, IT> present{-1, -1}, absent{-1, -1};
  const IT n = g.nrows();
  for (IT u = 0; u < n && present.first < 0; ++u) {
    for (const IT v : g.row(u).cols) {
      if (v > u) {
        present = {u, v};
        break;
      }
    }
  }
  for (IT u = 0; u < n && absent.first < 0; ++u) {
    for (IT v = u + 1; v < n; ++v) {
      if (!has_edge(g, u, v)) {
        absent = {u, v};
        break;
      }
    }
  }
  EXPECT_GE(present.first, 0);
  EXPECT_GE(absent.first, 0);
  return {present, absent};
}

// The batch-app reference graph: ones-valued symmetric adjacency with the
// same mutations the streaming class buffered.
template <class VTIn>
CSRMatrix<IT, std::int64_t> mutated_adjacency(
    const CSRMatrix<IT, VTIn>& g, std::pair<IT, IT> ins,
    std::pair<IT, IT> del) {
  CSRMatrix<IT, std::int64_t> ones(
      g.nrows(), g.ncols(),
      std::vector<IT>(g.rowptr().begin(), g.rowptr().end()),
      std::vector<IT>(g.colidx().begin(), g.colidx().end()),
      std::vector<std::int64_t>(g.nnz(), 1));
  EdgeDelta<IT, std::int64_t> d;
  d.insert(ins.first, ins.second, 1);
  d.insert(ins.second, ins.first, 1);
  d.erase(del.first, del.second);
  d.erase(del.second, del.first);
  return apply_edge_delta(ones, d);
}

}  // namespace

// ---------------------------------------------------------------------------
// Local backend: versioned transitions, stale submits, migration, quota.
// ---------------------------------------------------------------------------

TEST(ClientStreaming, UpdateAdvancesVersionAndMatchesColdPlan) {
  auto client = make_local_client<SR, IT, VT>();
  auto session = client.open_session();

  auto b = std::make_shared<const Mat>(erdos_renyi<IT, VT>(90, 90, 6, 10));
  auto m = std::make_shared<const Mat>(erdos_renyi<IT, VT>(90, 90, 8, 11));
  auto a = std::make_shared<const Mat>(erdos_renyi<IT, VT>(90, 90, 5, 12));
  auto h1 = session.register_structure(StructureSpec<IT, VT>(b).mask(m));
  EXPECT_EQ(h1.version(), 1u);
  ASSERT_TRUE(session.submit(a, h1).get().ok());

  const auto delta = small_delta(*b);
  auto h2 = session.update(h1, delta);
  EXPECT_EQ(h2.version(), 2u);
  EXPECT_EQ(h2.id(), h1.id());

  // The new handle computes against the mutated B, bit-identical to a cold
  // direct call on the replayed matrix.
  const Mat b2 = apply_edge_delta(*b, delta);
  EXPECT_TRUE(*h2.b() == b2);
  auto res = session.submit(a, h2).get();
  ASSERT_TRUE(res.ok()) << res.message;
  EXPECT_TRUE(res.matrix == masked_spgemm<SR>(*a, b2, *m));

  // Chained updates keep advancing the same id.
  auto h3 = session.update(h2, small_delta(*h2.b()));
  EXPECT_EQ(h3.version(), 3u);
  EXPECT_TRUE(session.submit(a, h3).get().ok());
}

TEST(ClientStreaming, SupersededHandleSubmitIsTypedStale) {
  auto client = make_local_client<SR, IT, VT>();
  auto session = client.open_session();
  auto b = std::make_shared<const Mat>(erdos_renyi<IT, VT>(60, 60, 5, 20));
  auto h1 = session.register_structure(StructureSpec<IT, VT>(b).self_mask());
  auto h2 = session.update(h1, small_delta(*b));

  auto stale = session.submit(b, h1).get();
  EXPECT_EQ(stale.status, RequestStatus::kStaleStructure);
  EXPECT_FALSE(stale.message.empty());
  EXPECT_THROW(stale.value(), std::runtime_error);

  // The typed status is the retry signal: resubmitting against the current
  // handle succeeds.
  auto res = session.submit(h2.b(), h2).get();
  ASSERT_TRUE(res.ok()) << res.message;
  EXPECT_TRUE(res.matrix ==
              masked_spgemm<SR>(*h2.b(), *h2.b(), *h2.b()));
}

TEST(ClientStreaming, UpdateMigratesWarmPlanInsteadOfRebuilding) {
  BatchLimits limits;
  BatchExecutor<SR, IT, VT> exec(limits);
  auto backend = std::make_shared<Local>(exec);
  Client client(backend);
  auto session = client.open_session();

  auto b = std::make_shared<const Mat>(erdos_renyi<IT, VT>(120, 120, 6, 30));
  auto m = std::make_shared<const Mat>(erdos_renyi<IT, VT>(120, 120, 8, 31));
  auto a = std::make_shared<const Mat>(erdos_renyi<IT, VT>(120, 120, 5, 32));
  auto h1 = session.register_structure(StructureSpec<IT, VT>(b).mask(m));

  // Warm the cache at version 1, then mutate: the version-2 submit must find
  // the version-1 plan via its lineage and patch it, not plan from scratch.
  ASSERT_TRUE(session.submit(a, h1).get().ok());
  ASSERT_EQ(exec.stats().cache.delta_migrations, 0u);

  const auto delta = small_delta(*b);
  auto h2 = session.update(h1, delta);
  auto res = session.submit(a, h2).get();
  ASSERT_TRUE(res.ok()) << res.message;
  EXPECT_TRUE(res.matrix == masked_spgemm<SR>(*a, apply_edge_delta(*b, delta),
                                              *m));
  EXPECT_EQ(exec.stats().cache.delta_migrations, 1u);
}

TEST(ClientStreaming, StructureQuotaEvictsLeastRecentlyUsed) {
  auto client = make_local_client<SR, IT, VT>();
  auto session = client.open_session({.max_in_flight = 8,
                                      .max_structures = 2});

  auto b1 = std::make_shared<const Mat>(erdos_renyi<IT, VT>(40, 40, 4, 41));
  auto b2 = std::make_shared<const Mat>(erdos_renyi<IT, VT>(44, 44, 4, 42));
  auto b3 = std::make_shared<const Mat>(erdos_renyi<IT, VT>(48, 48, 4, 43));
  auto h1 = session.register_structure(StructureSpec<IT, VT>(b1).self_mask());
  auto h2 = session.register_structure(StructureSpec<IT, VT>(b2).self_mask());

  // Touch h1 so h2 becomes the LRU victim when the third registration lands.
  ASSERT_TRUE(session.submit(b1, h1).get().ok());
  auto h3 = session.register_structure(StructureSpec<IT, VT>(b3).self_mask());

  EXPECT_EQ(session.submit(b2, h2).get().status, RequestStatus::kBadRequest);
  EXPECT_TRUE(session.submit(b1, h1).get().ok());
  EXPECT_TRUE(session.submit(b3, h3).get().ok());
}

// ---------------------------------------------------------------------------
// Incremental app loops vs their batch counterparts on the mutated graph.
// ---------------------------------------------------------------------------

TEST(ClientStreaming, TriangleCounterTracksBatchAppUnderChurn) {
  auto g = symmetrize_pattern(
      remove_diagonal(erdos_renyi<IT, VT>(80, 80, 7, 50)));
  const auto [present, absent] = pick_edges(g);

  auto client = make_local_client<PlusPair<std::int64_t>, IT, std::int64_t>();
  auto session = client.open_session();
  StreamingTriangleCounter<IT> counter(g, session);

  // Seed graph first: the count matches the batch app (triangle counts are
  // invariant under the batch app's degree relabeling).
  const auto seed = triangle_count(g);
  EXPECT_EQ(counter.count(), static_cast<std::int64_t>(seed.triangles));
  EXPECT_EQ(counter.version(), 1u);

  counter.insert_edge(absent.first, absent.second);
  counter.erase_edge(present.first, present.second);
  const auto g2 = mutated_adjacency(g, absent, present);
  const auto want = triangle_count(g2);
  EXPECT_EQ(counter.count(), static_cast<std::int64_t>(want.triangles));
  EXPECT_EQ(counter.version(), 2u);

  // Reverting the mutations restores the seed count at a later version.
  counter.erase_edge(absent.first, absent.second);
  counter.insert_edge(present.first, present.second);
  EXPECT_EQ(counter.count(), static_cast<std::int64_t>(seed.triangles));
  EXPECT_EQ(counter.version(), 3u);
}

TEST(ClientStreaming, KTrussTracksBatchAppUnderChurn) {
  auto g = symmetrize_pattern(
      remove_diagonal(erdos_renyi<IT, VT>(70, 70, 8, 60)));
  const auto [present, absent] = pick_edges(g);

  auto client = make_local_client<PlusPair<std::int64_t>, IT, std::int64_t>();
  auto session = client.open_session();
  StreamingKTruss<IT> truss(g, session);

  const auto g2 = mutated_adjacency(g, absent, present);
  truss.insert_edge(absent.first, absent.second);
  truss.erase_edge(present.first, present.second);

  for (const int k : {3, 4}) {
    const auto want = ktruss(g2, k);
    auto got = truss.truss(k);
    EXPECT_EQ(got.remaining_edges, want.remaining_edges) << "k=" << k;
    EXPECT_TRUE(got.truss == want.truss) << "k=" << k;
  }
  EXPECT_EQ(truss.version(), 2u);  // one flush covered both queries
}

TEST(ClientStreaming, LiveGraphBFSTracksBatchAppUnderChurn) {
  auto g = symmetrize_pattern(
      remove_diagonal(erdos_renyi<IT, VT>(90, 90, 4, 70)));
  const auto [present, absent] = pick_edges(g);

  auto client = make_local_client<PlusPair<std::int64_t>, IT, std::int64_t>();
  auto session = client.open_session();
  LiveGraphBFS<IT> bfs(g, session);

  const IT source = present.first;  // guaranteed non-isolated
  const auto seed = direction_optimized_bfs(g, source);
  EXPECT_EQ(bfs.bfs(source).levels, seed.levels);

  bfs.insert_edge(absent.first, absent.second);
  bfs.erase_edge(present.first, present.second);
  const auto g2 = mutated_adjacency(g, absent, present);
  const auto want = direction_optimized_bfs(g2, source);
  const auto got = bfs.bfs(source);
  EXPECT_EQ(got.levels, want.levels);
  EXPECT_EQ(got.depth, want.depth);
  EXPECT_EQ(bfs.version(), 2u);
}

// ---------------------------------------------------------------------------
// Sharded backend: the delta crosses the wire, stale submits stay typed.
// ---------------------------------------------------------------------------

TEST(ClientStreaming, ShardedUpdateShipsDeltaAndVersionsResults) {
  Fleet fleet(2);
  auto backend = std::make_shared<Sharded>(fleet.endpoints);
  Client client(backend);
  auto session = client.open_session({.max_in_flight = 8});

  auto b = std::make_shared<const Mat>(erdos_renyi<IT, VT>(100, 100, 6, 80));
  auto m = std::make_shared<const Mat>(erdos_renyi<IT, VT>(100, 100, 8, 81));
  auto a = std::make_shared<const Mat>(erdos_renyi<IT, VT>(100, 100, 5, 82));
  auto h1 = session.register_structure(StructureSpec<IT, VT>(b).mask(m));
  ASSERT_TRUE(session.submit(a, h1).get().ok());

  const auto delta = small_delta(*b);
  auto h2 = session.update(h1, delta);
  EXPECT_EQ(h2.version(), 2u);

  const Mat b2 = apply_edge_delta(*b, delta);
  auto res = session.submit(a, h2).get();
  ASSERT_TRUE(res.ok()) << res.message;
  EXPECT_TRUE(res.matrix == masked_spgemm<SR>(*a, b2, *m));

  // The superseded handle is refused server-side with the typed status.
  auto stale = session.submit(a, h1).get();
  EXPECT_EQ(stale.status, RequestStatus::kStaleStructure);

  std::uint64_t updates = 0, stales = 0;
  for (std::size_t i = 0; i < fleet.shards.size(); ++i) {
    const auto ss = backend->shard_stats(i);
    updates += ss.updates;
    stales += ss.stale;
  }
  EXPECT_GE(updates, 1u);  // the delta crossed the wire, not the matrix
  EXPECT_GE(stales, 1u);
}

// Submits racing an update: every response is either a correct version-1
// result (served before the update landed) or typed kStaleStructure (the
// update, riding the high-priority queue, overtook it) — never a wrong or
// mixed-version matrix.
TEST(ClientStreaming, StaleVersionRaceNeverYieldsWrongResult) {
  Fleet fleet(1);
  auto backend = std::make_shared<Sharded>(fleet.endpoints);
  Client client(backend);
  auto session = client.open_session({.max_in_flight = 32});

  auto b = std::make_shared<const Mat>(erdos_renyi<IT, VT>(120, 120, 6, 90));
  auto a = std::make_shared<const Mat>(erdos_renyi<IT, VT>(120, 120, 5, 91));
  auto h1 = session.register_structure(StructureSpec<IT, VT>(b).self_mask());
  const Mat want_v1 = masked_spgemm<SR>(*a, *b, *b);

  const int kInFlight = 12;
  std::vector<std::future<Client::Result>> futures;
  for (int r = 0; r < kInFlight; ++r) {
    futures.push_back(session.submit(a, h1));
  }
  auto h2 = session.update(h1, small_delta(*b));  // races the queued submits
  for (int r = 0; r < kInFlight; ++r) {
    futures.push_back(session.submit(a, h1));  // definitely superseded
  }

  int ok = 0, stale = 0;
  for (auto& f : futures) {
    auto res = f.get();
    if (res.ok()) {
      ++ok;
      EXPECT_TRUE(res.matrix == want_v1);
    } else {
      ++stale;
      EXPECT_EQ(res.status, RequestStatus::kStaleStructure);
    }
  }
  EXPECT_EQ(ok + stale, 2 * kInFlight);
  EXPECT_GE(stale, kInFlight);  // the second wave is stale by construction

  // The session recovers by resubmitting against the current handle.
  const Mat b2 = *h2.b();
  auto res = session.submit(a, h2).get();
  ASSERT_TRUE(res.ok()) << res.message;
  EXPECT_TRUE(res.matrix == masked_spgemm<SR>(*a, b2, b2));
}
