// MaskedClient over LocalBackend (ISSUE 5 tentpole): session pipelining is
// bit-identical to direct masked_spgemm, structure handles reuse shared
// operands zero-copy, the error taxonomy surfaces as typed results, and
// bounded in-flight depth throttles a fast producer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "client/local_backend.hpp"
#include "core/masked_spgemm.hpp"
#include "gen/erdos_renyi.hpp"

using namespace msx;
using namespace msx::client;

using IT = int32_t;
using VT = double;
using SR = PlusTimes<VT>;
using Mat = CSRMatrix<IT, VT>;
using Client = MaskedClient<SR, IT, VT>;
using Local = LocalBackend<SR, IT, VT>;

namespace {

void refresh(Mat& mat, int salt) {
  auto vals = mat.mutable_values();
  for (std::size_t p = 0; p < vals.size(); ++p) {
    vals[p] = 1.0 + static_cast<double>((p + static_cast<std::size_t>(salt)) % 7);
  }
}

}  // namespace

TEST(ClientLocal, PipelinedResultsBitIdenticalToDirectCalls) {
  auto client = make_local_client<SR, IT, VT>();
  auto session = client.open_session({.max_in_flight = 8});

  // Catalog of recurring structures; B and M are stationary per structure.
  const int kStructures = 4;
  const int kRequests = 24;
  std::vector<std::shared_ptr<const Mat>> bs, ms;
  std::vector<Session<SR, IT, VT>::Handle> handles;
  for (int k = 0; k < kStructures; ++k) {
    const IT rows = 60 + 12 * static_cast<IT>(k);
    bs.push_back(std::make_shared<const Mat>(
        erdos_renyi<IT, VT>(rows, rows, 5, 200 + k)));
    ms.push_back(std::make_shared<const Mat>(
        erdos_renyi<IT, VT>(rows, rows, 7, 300 + k)));
    handles.push_back(session.register_structure(
        StructureSpec<IT, VT>(bs.back()).mask(ms.back())));
  }

  std::vector<std::future<Client::Result>> futures;
  std::vector<Mat> want;
  for (int r = 0; r < kRequests; ++r) {
    const auto k = static_cast<std::size_t>(r % kStructures);
    Mat a = erdos_renyi<IT, VT>(bs[k]->nrows(), bs[k]->nrows(), 5,
                                400 + r);
    refresh(a, r);
    want.push_back(masked_spgemm<SR>(a, *bs[k], *ms[k]));
    futures.push_back(session.submit(std::make_shared<const Mat>(std::move(a)),
                                     handles[k]));
  }
  for (int r = 0; r < kRequests; ++r) {
    auto res = futures[static_cast<std::size_t>(r)].get();
    ASSERT_TRUE(res.ok()) << res.message;
    EXPECT_TRUE(res.matrix == want[static_cast<std::size_t>(r)]);
  }
}

TEST(ClientLocal, AliasedStructureUsesRegisteredMask) {
  // k-truss shape: A, B and the mask are one matrix, expressed by sharing
  // the pointer. The submit ships/copies nothing beyond the handle.
  auto client = make_local_client<SR, IT, VT>();
  auto session = client.open_session();
  auto a = std::make_shared<const Mat>(erdos_renyi<IT, VT>(90, 90, 6, 42));
  auto handle =
      session.register_structure(StructureSpec<IT, VT>(a).self_mask());

  auto res = session.submit(a, handle).get();
  ASSERT_TRUE(res.ok()) << res.message;
  EXPECT_TRUE(res.matrix == masked_spgemm<SR>(*a, *a, *a));
}

TEST(ClientLocal, PerRequestMaskOverride) {
  auto client = make_local_client<SR, IT, VT>();
  auto session = client.open_session();
  auto b = std::make_shared<const Mat>(erdos_renyi<IT, VT>(70, 70, 5, 1));
  auto handle = session.register_structure(
      StructureSpec<IT, VT>(b));  // no registered mask

  auto a = std::make_shared<const Mat>(erdos_renyi<IT, VT>(70, 70, 5, 2));
  auto m = std::make_shared<const Mat>(erdos_renyi<IT, VT>(70, 70, 7, 3));
  auto res = session.submit(a, m, handle).get();
  ASSERT_TRUE(res.ok()) << res.message;
  EXPECT_TRUE(res.matrix == masked_spgemm<SR>(*a, *b, *m));
}

TEST(ClientLocal, ErrorTaxonomyAsTypedResults) {
  auto client = make_local_client<SR, IT, VT>();
  auto session = client.open_session();
  auto b = std::make_shared<const Mat>(erdos_renyi<IT, VT>(50, 50, 5, 1));
  auto m = std::make_shared<const Mat>(erdos_renyi<IT, VT>(50, 50, 5, 2));
  auto handle =
      session.register_structure(StructureSpec<IT, VT>(b).mask(m));

  // Shape mismatch: validation happens inside the job, surfaces kBadRequest.
  auto bad_a = std::make_shared<const Mat>(erdos_renyi<IT, VT>(40, 40, 5, 3));
  auto res = session.submit(bad_a, handle).get();
  EXPECT_EQ(res.status, RequestStatus::kBadRequest);
  EXPECT_FALSE(res.message.empty());
  EXPECT_THROW(res.value(), std::runtime_error);

  // Invalid handle and missing mask resolve without touching the executor.
  Session<SR, IT, VT>::Handle invalid;
  EXPECT_EQ(session.submit(bad_a, invalid).get().status,
            RequestStatus::kBadRequest);
  auto no_mask = session.register_structure(StructureSpec<IT, VT>(b));
  EXPECT_EQ(session.submit(bad_a, no_mask).get().status,
            RequestStatus::kBadRequest);
}

TEST(ClientLocal, OverloadSurfacesAsTypedResult) {
  // A one-worker executor at its admission limit, with the worker parked:
  // the second submit is refused, typed kOverloaded — no exception.
  BatchLimits limits;
  limits.pool_threads = 1;
  limits.max_pending_jobs = 1;
  limits.admission = AdmissionPolicy::kReject;
  BatchExecutor<SR, IT, VT> exec(limits);
  auto backend = std::make_shared<Local>(exec);
  Client client(backend);
  auto session = client.open_session();

  auto b = std::make_shared<const Mat>(erdos_renyi<IT, VT>(60, 60, 5, 1));
  auto m = std::make_shared<const Mat>(erdos_renyi<IT, VT>(60, 60, 5, 2));
  auto a = std::make_shared<const Mat>(erdos_renyi<IT, VT>(60, 60, 5, 3));
  auto handle =
      session.register_structure(StructureSpec<IT, VT>(b).mask(m));

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  exec.pool().submit_detached([gate] { gate.wait(); });

  auto first = session.submit(a, handle);   // admitted, stuck behind the gate
  auto second = session.submit(a, handle);  // refused at admission
  auto rejected = second.get();
  EXPECT_EQ(rejected.status, RequestStatus::kOverloaded);

  release.set_value();
  auto ok = first.get();
  ASSERT_TRUE(ok.ok()) << ok.message;
  EXPECT_TRUE(ok.matrix == masked_spgemm<SR>(*a, *b, *m));
}

TEST(ClientLocal, BoundedInFlightDepthBlocksProducer) {
  BatchLimits limits;
  limits.pool_threads = 1;
  BatchExecutor<SR, IT, VT> exec(limits);
  auto backend = std::make_shared<Local>(exec);
  Client client(backend);
  auto session = client.open_session({.max_in_flight = 2});

  auto b = std::make_shared<const Mat>(erdos_renyi<IT, VT>(40, 40, 4, 1));
  auto handle =
      session.register_structure(StructureSpec<IT, VT>(b).self_mask());

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  exec.pool().submit_detached([gate] { gate.wait(); });

  auto f1 = session.submit(b, handle);
  auto f2 = session.submit(b, handle);
  EXPECT_EQ(session.in_flight(), 2u);

  std::atomic<bool> third_returned{false};
  std::thread producer([&] {
    auto f3 = session.submit(b, handle);
    third_returned.store(true);
    f3.get();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_returned.load());  // depth 2 reached: submit blocks

  release.set_value();
  producer.join();
  EXPECT_TRUE(third_returned.load());
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
  session.drain();
  EXPECT_EQ(session.in_flight(), 0u);
}

TEST(ClientLocal, InteractivePrioritySubmitsServeCorrectly) {
  auto client = make_local_client<SR, IT, VT>();
  auto session = client.open_session();
  auto b = std::make_shared<const Mat>(erdos_renyi<IT, VT>(50, 50, 5, 9));
  auto handle =
      session.register_structure(StructureSpec<IT, VT>(b).self_mask());
  SubmitOptions interactive;
  interactive.priority = Priority::kInteractive;
  auto res = session.submit(b, handle, interactive).get();
  ASSERT_TRUE(res.ok()) << res.message;
  EXPECT_TRUE(res.matrix == masked_spgemm<SR>(*b, *b, *b));
}

TEST(ClientLocal, SessionReleaseAndReRegister) {
  auto client = make_local_client<SR, IT, VT>();
  auto session = client.open_session();
  auto b = std::make_shared<const Mat>(erdos_renyi<IT, VT>(50, 50, 5, 4));
  auto handle =
      session.register_structure(StructureSpec<IT, VT>(b).self_mask());
  ASSERT_TRUE(session.submit(b, handle).get().ok());

  session.release(handle);
  EXPECT_FALSE(handle.valid());
  // The id is gone backend-side.
  auto stale = session.submit(b, handle).get();
  EXPECT_EQ(stale.status, RequestStatus::kBadRequest);

  auto again =
      session.register_structure(StructureSpec<IT, VT>(b).self_mask());
  EXPECT_TRUE(session.submit(b, again).get().ok());
}
