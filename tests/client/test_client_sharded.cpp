// MaskedClient over ShardedBackend (ISSUE 5 tentpole): pipelined submits are
// bit-identical to direct masked_spgemm, responses resolve to the right
// future by request id even when they arrive out of order, shutdown with
// futures in flight resolves them (typed, never hanging), a shard dying
// mid-pipeline re-submits its in-flight requests without loss or
// duplication, and down shards are probed back up (ROADMAP health-probe
// item).
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "client/client.hpp"
#include "client/sharded_backend.hpp"
#include "core/masked_spgemm.hpp"
#include "gen/erdos_renyi.hpp"
#include "service/shard.hpp"

using namespace msx;
using namespace msx::client;
using msx::service::LoopbackListener;
using msx::service::ServiceShard;
using msx::service::ShardEndpoint;

using IT = int32_t;
using VT = double;
using SR = PlusTimes<VT>;
using Mat = CSRMatrix<IT, VT>;
using Shard = ServiceShard<SR, IT, VT>;
using Client = MaskedClient<SR, IT, VT>;
using Sharded = ShardedBackend<SR, IT, VT>;

namespace {

struct Fleet {
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<ShardEndpoint> endpoints;

  explicit Fleet(std::size_t n, service::ShardConfig cfg = {}) {
    for (std::size_t i = 0; i < n; ++i) {
      shards.push_back(std::make_unique<Shard>(cfg));
      auto listener = std::make_unique<LoopbackListener>();
      auto* raw = listener.get();
      shards.back()->serve(std::move(listener));
      endpoints.push_back(ShardEndpoint{"shard-" + std::to_string(i),
                                        [raw] { return raw->connect(); }});
    }
  }
};

void refresh(Mat& mat, int salt) {
  auto vals = mat.mutable_values();
  for (std::size_t p = 0; p < vals.size(); ++p) {
    vals[p] = 1.0 + static_cast<double>((p + static_cast<std::size_t>(salt)) % 7);
  }
}

}  // namespace

TEST(ClientSharded, PipelinedBitIdenticalAcrossShards) {
  Fleet fleet(3);
  auto backend = std::make_shared<Sharded>(fleet.endpoints);
  Client client(backend);
  auto session = client.open_session({.max_in_flight = 8});

  const int kStructures = 6;
  const int kRequests = 30;
  std::vector<std::shared_ptr<const Mat>> bs, ms;
  std::vector<Session<SR, IT, VT>::Handle> handles;
  for (int k = 0; k < kStructures; ++k) {
    const IT rows = 60 + 14 * static_cast<IT>(k);
    bs.push_back(std::make_shared<const Mat>(
        erdos_renyi<IT, VT>(rows, rows, 5, 500 + k)));
    ms.push_back(std::make_shared<const Mat>(
        erdos_renyi<IT, VT>(rows, rows, 7, 600 + k)));
    handles.push_back(session.register_structure(
        StructureSpec<IT, VT>(bs[static_cast<std::size_t>(k)])
            .mask(ms[static_cast<std::size_t>(k)])));
  }

  // Per-structure A patterns stay fixed (that is what makes the shard's plan
  // cache warm); only the numeric values change per request.
  std::vector<Mat> as;
  for (int k = 0; k < kStructures; ++k) {
    as.push_back(erdos_renyi<IT, VT>(bs[static_cast<std::size_t>(k)]->nrows(),
                                     bs[static_cast<std::size_t>(k)]->nrows(),
                                     5, 700 + k));
  }
  std::vector<std::future<Client::Result>> futures;
  std::vector<Mat> want;
  for (int r = 0; r < kRequests; ++r) {
    const auto k = static_cast<std::size_t>(r % kStructures);
    Mat a = as[k];
    refresh(a, r);
    want.push_back(masked_spgemm<SR>(a, *bs[k], *ms[k]));
    futures.push_back(session.submit(std::make_shared<const Mat>(std::move(a)),
                                     handles[k]));
  }
  for (int r = 0; r < kRequests; ++r) {
    auto res = futures[static_cast<std::size_t>(r)].get();
    ASSERT_TRUE(res.ok()) << res.message;
    EXPECT_TRUE(res.matrix == want[static_cast<std::size_t>(r)]);
  }

  const auto st = backend->stats();
  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(kRequests));
  // The stationary operands were registered, not shipped per request: every
  // shard that served traffic saw at least one registration, and repeated
  // structures hit warm plans server-side.
  std::uint64_t registrations = 0, hits = 0;
  for (std::size_t i = 0; i < fleet.shards.size(); ++i) {
    const auto ss = backend->shard_stats(i);
    registrations += ss.registrations;
    hits += ss.cache_hits;
  }
  EXPECT_GE(registrations, static_cast<std::uint64_t>(kStructures));
  EXPECT_GT(hits, 0u);
}

TEST(ClientSharded, AliasedKTrussStyleSubmitShipsOnlyFlags) {
  Fleet fleet(2);
  auto backend = std::make_shared<Sharded>(fleet.endpoints);
  Client client(backend);
  auto session = client.open_session();

  auto a = std::make_shared<const Mat>(erdos_renyi<IT, VT>(80, 80, 6, 11));
  auto handle =
      session.register_structure(StructureSpec<IT, VT>(a).self_mask());
  auto res = session.submit(a, handle).get();
  ASSERT_TRUE(res.ok()) << res.message;
  EXPECT_TRUE(res.matrix == masked_spgemm<SR>(*a, *a, *a));
}

// A hand-rolled server that answers correctly but in REVERSE order of
// arrival within each batch: completions must still land on the right
// futures via request-id matching.
TEST(ClientSharded, OutOfOrderResponsesResolveByRequestId) {
  auto listener = std::make_shared<LoopbackListener>();
  const int kBatch = 4;

  std::thread server([listener] {
    auto stream = listener->accept();
    ASSERT_NE(stream, nullptr);
    std::unordered_map<std::uint64_t, service::WireRegister<IT, VT>> registry;
    std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> replies;
    service::FrameHeader header;
    std::vector<std::uint8_t> payload;
    int served = 0;
    try {
      while (recv_frame(*stream, header, payload)) {
        if (header.type == service::MessageType::kRegisterRequest) {
          auto reg = service::decode_register<IT, VT>(payload);
          registry[reg.structure_id] = std::move(reg);
          continue;
        }
        ASSERT_EQ(header.type, service::MessageType::kSubmitRequest);
        auto sub = service::decode_submit<IT, VT>(payload);
        const auto& reg = registry.at(sub.structure_id);
        const Mat& b = reg.b;
        const Mat& a = sub.a_is_b ? b : sub.a_storage;
        const Mat& m = sub.m_is_a ? a
                       : sub.m_is_b ? b
                       : sub.m_registered
                           ? (reg.mask_is_b ? reg.b : reg.m_storage)
                           : sub.m_storage;
        replies.emplace_back(header.request_id,
                             service::encode_response(
                                 masked_spgemm<SR>(a, b, m, sub.opts)));
        if (replies.size() == static_cast<std::size_t>(kBatch)) {
          // Scramble: newest first.
          for (auto it = replies.rbegin(); it != replies.rend(); ++it) {
            send_frame(*stream, service::MessageType::kResponse, it->first,
                       it->second);
          }
          replies.clear();
          served += kBatch;
          if (served >= kBatch) break;
        }
      }
    } catch (const service::TransportError&) {
    } catch (const service::WireError&) {
    }
    stream->shutdown();
  });

  {
    std::vector<ShardEndpoint> endpoints{
        {"scrambler", [listener] { return listener->connect(); }}};
    auto backend = std::make_shared<Sharded>(endpoints);
    Client client(backend);
    auto session = client.open_session({.max_in_flight = kBatch});

    std::vector<std::shared_ptr<const Mat>> bs;
    std::vector<Session<SR, IT, VT>::Handle> handles;
    std::vector<std::future<Client::Result>> futures;
    std::vector<Mat> want;
    for (int r = 0; r < kBatch; ++r) {
      // Distinct structures with distinct results so a mismatched rid would
      // be caught by content.
      const IT rows = 40 + 10 * static_cast<IT>(r);
      bs.push_back(std::make_shared<const Mat>(
          erdos_renyi<IT, VT>(rows, rows, 5, 800 + r)));
      handles.push_back(session.register_structure(
          StructureSpec<IT, VT>(bs.back()).self_mask()));
      auto a = std::make_shared<const Mat>(
          erdos_renyi<IT, VT>(rows, rows, 5, 900 + r));
      want.push_back(masked_spgemm<SR>(*a, *bs.back(), *bs.back()));
      futures.push_back(session.submit(a, handles.back()));
    }
    for (int r = 0; r < kBatch; ++r) {
      auto res = futures[static_cast<std::size_t>(r)].get();
      ASSERT_TRUE(res.ok()) << res.message;
      EXPECT_TRUE(res.matrix == want[static_cast<std::size_t>(r)]);
    }
  }
  listener->close();
  server.join();
}

// A shard that accepts a few requests and then dies mid-pipeline: every
// in-flight request is re-submitted to the surviving shard — none lost,
// none duplicated, results still correct.
TEST(ClientSharded, FailoverMidPipelineResubmitsInFlight) {
  // Flaky "shard": reads frames until it has swallowed kSwallow submits,
  // then slams the connection without answering any of them.
  auto flaky = std::make_shared<LoopbackListener>();
  const int kSwallow = 3;
  std::thread flaky_server([flaky] {
    while (auto stream = flaky->accept()) {
      service::FrameHeader header;
      std::vector<std::uint8_t> payload;
      int submits = 0;
      try {
        while (submits < kSwallow && recv_frame(*stream, header, payload)) {
          if (header.type == service::MessageType::kSubmitRequest) ++submits;
        }
      } catch (const service::TransportError&) {
      } catch (const service::WireError&) {
      }
      stream->shutdown();
    }
  });

  Fleet real(1);
  std::vector<ShardEndpoint> endpoints{
      {"flaky", [flaky] { return flaky->connect(); }},
      real.endpoints[0]};

  std::uint64_t resubmits = 0;
  {
    auto backend = std::make_shared<Sharded>(endpoints);
    Client client(backend);
    auto session = client.open_session({.max_in_flight = 16});

    // Enough structures that the flaky shard owns several (64 vnodes spread
    // structures across both shards for any seed).
    const int kStructures = 8;
    const int kRequests = 24;
    std::vector<std::shared_ptr<const Mat>> bs;
    std::vector<Session<SR, IT, VT>::Handle> handles;
    for (int k = 0; k < kStructures; ++k) {
      const IT rows = 50 + 12 * static_cast<IT>(k);
      bs.push_back(std::make_shared<const Mat>(
          erdos_renyi<IT, VT>(rows, rows, 5, 110 + k)));
      handles.push_back(session.register_structure(
          StructureSpec<IT, VT>(bs.back()).self_mask()));
    }
    std::vector<std::future<Client::Result>> futures;
    std::vector<Mat> want;
    for (int r = 0; r < kRequests; ++r) {
      const auto k = static_cast<std::size_t>(r % kStructures);
      auto a = std::make_shared<const Mat>(
          erdos_renyi<IT, VT>(bs[k]->nrows(), bs[k]->nrows(), 5, 130 + r));
      want.push_back(masked_spgemm<SR>(*a, *bs[k], *bs[k]));
      futures.push_back(session.submit(a, handles[k]));
    }
    for (int r = 0; r < kRequests; ++r) {
      auto res = futures[static_cast<std::size_t>(r)].get();
      ASSERT_TRUE(res.ok()) << res.message;  // no loss
      EXPECT_TRUE(res.matrix == want[static_cast<std::size_t>(r)]);
    }
    const auto st = backend->stats();
    EXPECT_EQ(st.completed, static_cast<std::uint64_t>(kRequests));  // no dup
    EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(kRequests));
    resubmits = st.failover_resubmits;
    // The flaky shard owned at least one structure (with 8 structures over
    // 2 shards the ring assigns both sides), so its death re-submitted
    // in-flight work and marked it down.
    EXPECT_GE(st.down_marks, 1u);
  }
  EXPECT_GE(resubmits, 1u);
  flaky->close();
  flaky_server.join();
}

// Destroying / shutting down the client with futures still in flight must
// resolve them with a typed kShardDown — never leave a future hanging.
TEST(ClientSharded, CleanShutdownResolvesInFlightFutures) {
  // A black-hole shard: accepts connections and frames, never answers.
  auto hole = std::make_shared<LoopbackListener>();
  std::thread hole_server([hole] {
    while (auto stream = hole->accept()) {
      service::FrameHeader header;
      std::vector<std::uint8_t> payload;
      try {
        while (recv_frame(*stream, header, payload)) {
        }
      } catch (const service::TransportError&) {
      } catch (const service::WireError&) {
      }
    }
  });

  std::vector<ShardEndpoint> endpoints{
      {"hole", [hole] { return hole->connect(); }}};
  auto backend = std::make_shared<Sharded>(endpoints);
  Client client(backend);

  std::vector<std::future<Client::Result>> futures;
  {
    auto session = client.open_session({.max_in_flight = 4});
    auto b = std::make_shared<const Mat>(erdos_renyi<IT, VT>(40, 40, 4, 5));
    auto handle =
      session.register_structure(StructureSpec<IT, VT>(b).self_mask());
    for (int r = 0; r < 3; ++r) futures.push_back(session.submit(b, handle));

    backend->shutdown();  // futures in flight -> resolved, typed
    for (auto& f : futures) {
      auto res = f.get();
      EXPECT_EQ(res.status, RequestStatus::kShardDown);
      EXPECT_FALSE(res.message.empty());
    }
    // Session destruction drains instantly now — nothing left in flight.
  }
  hole->close();
  hole_server.join();
}

TEST(ClientSharded, AllShardsDownYieldsTypedShardDown) {
  auto closed = std::make_shared<LoopbackListener>();
  closed->close();  // dials fail immediately
  std::vector<ShardEndpoint> endpoints{
      {"gone", [closed] { return closed->connect(); }}};
  auto backend = std::make_shared<Sharded>(endpoints);
  Client client(backend);
  auto session = client.open_session();
  auto b = std::make_shared<const Mat>(erdos_renyi<IT, VT>(30, 30, 4, 6));
  auto handle =
      session.register_structure(StructureSpec<IT, VT>(b).self_mask());
  auto res = session.submit(b, handle).get();
  EXPECT_EQ(res.status, RequestStatus::kShardDown);
}

TEST(ClientSharded, HealthProbeRejoinsDownShard) {
  Fleet fleet(2);
  auto backend = std::make_shared<Sharded>(fleet.endpoints);
  backend->mark_down(0);
  ASSERT_TRUE(backend->is_down(0));

  // Manual round: the shard is alive, so one probe brings it back.
  EXPECT_EQ(backend->probe_down_shards(), 1u);
  EXPECT_FALSE(backend->is_down(0));
  const auto st = backend->stats();
  EXPECT_GE(st.probes, 1u);
  EXPECT_EQ(st.rejoins, 1u);

  // A dead endpoint stays down.
  auto closed = std::make_shared<LoopbackListener>();
  closed->close();
  std::vector<ShardEndpoint> dead{
      {"dead", [closed] { return closed->connect(); }}};
  auto backend2 = std::make_shared<Sharded>(dead);
  backend2->mark_down(0);
  EXPECT_EQ(backend2->probe_down_shards(), 0u);
  EXPECT_TRUE(backend2->is_down(0));
}

TEST(ClientSharded, BackgroundProberRejoinsAutomatically) {
  Fleet fleet(2);
  ShardedBackendConfig cfg;
  cfg.probe_interval = std::chrono::milliseconds(5);
  auto backend = std::make_shared<Sharded>(fleet.endpoints, cfg);
  backend->mark_down(1);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (backend->is_down(1) && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_FALSE(backend->is_down(1));
}
